package cqp_test

import (
	"bufio"
	"errors"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"testing"
	"time"

	"cqp"
	"cqp/internal/obs"
	"cqp/internal/trace"
)

// writePipelineTrace mirrors cmd/cqp-gen: tick 0 reports the full
// population, later ticks re-report a seeded random fraction as the
// world advances along the road network.
func writePipelineTrace(t *testing.T, path string, objects, queries, ticks int, rate float64) {
	t.Helper()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	bw := bufio.NewWriter(f)
	tw := trace.NewWriter(bw)

	const seed = 7
	net := cqp.GenerateRoadNetwork(cqp.RoadNetworkConfig{Lattice: 8, Seed: seed})
	world := cqp.MustNewWorld(cqp.WorldConfig{Net: net, NumObjects: objects, Seed: seed})
	rng := rand.New(rand.NewSource(seed + 1))

	emitObject := func(tick, i int) {
		loc, vel := world.Object(i)
		if err := tw.WriteObject(tick, world.Now(), cqp.ObjectID(i+1), loc, vel); err != nil {
			t.Fatal(err)
		}
	}
	emitQuery := func(tick, j int) {
		loc, _ := world.Object(j % objects)
		if err := tw.WriteQuery(tick, world.Now(), cqp.QueryID(j+1), cqp.RectAt(loc, 0.08)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < objects; i++ {
		emitObject(0, i)
	}
	for j := 0; j < queries; j++ {
		emitQuery(0, j)
	}
	for tick := 1; tick <= ticks; tick++ {
		world.Advance(5)
		for i := 0; i < objects; i++ {
			if rng.Float64() < rate {
				emitObject(tick, i)
			}
		}
		for j := 0; j < queries; j++ {
			if rng.Float64() < rate {
				emitQuery(tick, j)
			}
		}
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
}

// readPipelineTrace loads a trace back, grouped by tick so the replay
// can evaluate at tick boundaries.
func readPipelineTrace(t *testing.T, path string) [][]trace.Record {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var ticks [][]trace.Record
	tr := trace.NewReader(f)
	for {
		rec, err := tr.Read()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		for len(ticks) <= rec.Tick {
			ticks = append(ticks, nil)
		}
		ticks[rec.Tick] = append(ticks[rec.Tick], rec)
	}
	return ticks
}

// TestPipelineTraceThroughServerMatchesDirect is the whole toolchain in
// one test: a cqp-gen-equivalent trace written to disk, replayed
// cqp-replay-style through a live TCP server into a client, with a
// metrics registry watching every tier. The client's converged answers
// must equal a direct core.Engine run of the same trace file, and the
// server's counters must equal the traffic both endpoints observed.
func TestPipelineTraceThroughServerMatchesDirect(t *testing.T) {
	const (
		objects = 60
		queries = 10
		ticks   = 8
	)
	path := filepath.Join(t.TempDir(), "trace.csv")
	writePipelineTrace(t, path, objects, queries, ticks, 0.4)
	batches := readPipelineTrace(t, path)

	// Reference: the same records straight into an embedded engine.
	// Range answers depend only on the latest reports, not evaluation
	// cadence, so the networked run must converge to exactly this.
	direct := cqp.MustNewEngine(cqp.Options{Bounds: cqp.R(0, 0, 1, 1), GridN: 16})
	for _, batch := range batches {
		var now float64
		for _, rec := range batch {
			if rec.IsQuery {
				direct.ReportQuery(rec.QueryUpdate())
			} else {
				direct.ReportObject(rec.ObjectUpdate())
			}
			now = rec.Time
		}
		direct.Step(now)
	}

	// The networked run: server with a registry on every tier.
	reg := cqp.NewMetricsRegistry()
	s, err := cqp.Listen("127.0.0.1:0", cqp.ServerConfig{
		Engine:  cqp.Options{Bounds: cqp.R(0, 0, 1, 1), GridN: 16},
		Metrics: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	creg := cqp.NewMetricsRegistry()
	c, err := cqp.DialOptions(s.Addr().String(), cqp.ClientOptions{Metrics: creg})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	go func() { // drain events; answers accumulate inside the client
		for range c.Events() {
		}
	}()

	// Replay (cqp-replay with -speedup 0): feed each tick's records,
	// evaluating at tick boundaries like a ticker-driven server would.
	reports := 0
	for _, batch := range batches {
		for _, rec := range batch {
			if rec.IsQuery {
				err = c.RegisterQuery(rec.QueryUpdate())
			} else {
				err = c.ReportObject(rec.ObjectUpdate())
			}
			if err != nil {
				t.Fatal(err)
			}
			reports++
		}
		s.Evaluate()
	}

	// Converge: commit acts as a barrier (same TCP stream as the
	// updates), so after a successful round-trip per query the client's
	// answer equals the server's — which must equal the direct run's.
	answersEqual := func(q cqp.QueryID) bool {
		want, _ := direct.Answer(q)
		got, ok := c.Answer(q)
		if !ok || len(got) != len(want) {
			return false
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	for q := cqp.QueryID(1); q <= queries; q++ {
		deadline := time.Now().Add(10 * time.Second)
		for !answersEqual(q) {
			if time.Now().After(deadline) {
				want, _ := direct.Answer(q)
				got, _ := c.Answer(q)
				t.Fatalf("query %d never converged to the direct run:\nclient: %v\ndirect: %v", q, got, want)
			}
			c.Commit(q)
			s.Evaluate()
			time.Sleep(5 * time.Millisecond)
		}
	}

	// The server's ledger must agree with what both endpoints saw.
	counter := func(name string) uint64 { return reg.Counter(name).Value() }
	if got := reg.Gauge("server.sessions").Value(); got != 1 {
		t.Errorf("server.sessions = %d, want 1", got)
	}
	if got := counter("server.sessions_total"); got != 1 {
		t.Errorf("server.sessions_total = %d, want 1", got)
	}
	if got := reg.Gauge("server.subscriptions").Value(); got != queries {
		t.Errorf("server.subscriptions = %d, want %d", got, queries)
	}
	// Every report and commit traveled one frame; the client also wrote
	// the initial hello-free stream, so frames_in is exactly the
	// client's successful writes. No heartbeats are configured, so the
	// stream quiesces and the counts settle to equality.
	waitCounters := func(name string, got func() uint64, want func() uint64) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for got() != want() {
			if time.Now().After(deadline) {
				t.Fatalf("%s: server=%d client=%d", name, got(), want())
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	waitCounters("server.frames_in vs client.frames_out",
		func() uint64 { return counter("server.frames_in") },
		func() uint64 { return creg.Counter("client.frames_out").Value() })
	waitCounters("server.frames_out vs client.frames_in",
		func() uint64 { return counter("server.frames_out") },
		func() uint64 { return creg.Counter("client.frames_in").Value() })
	waitCounters("server.updates.streamed vs client.updates.applied",
		func() uint64 { return counter("server.updates.streamed") },
		func() uint64 { return creg.Counter("client.updates.applied").Value() })
	if in := counter("server.frames_in"); in < uint64(reports) {
		t.Errorf("server.frames_in = %d, want at least the %d replayed reports", in, reports)
	}
	if got, evals := counter("engine.steps"), counter("server.evaluations"); got != evals {
		t.Errorf("engine.steps = %d but server.evaluations = %d: the engine should step once per evaluation", got, evals)
	}
	if counter("server.bytes_in") == 0 || counter("server.bytes_out") == 0 {
		t.Error("byte counters did not record")
	}

	// And the registry snapshot holds all three tiers — what
	// `cqp-server -metrics` serves. The server injects its wall clock
	// into the engine when a registry is configured, so the step
	// latency histogram must have filled too.
	snap := reg.Snapshot()
	for _, name := range []string{"engine.steps", "server.frames_in", "server.commits"} {
		if _, ok := snap[name]; !ok {
			t.Errorf("snapshot missing %s", name)
		}
	}
	if got := reg.Histogram("engine.step_ns", obs.DurationBuckets).Count(); got == 0 {
		t.Error("engine.step_ns is empty despite the server-injected clock")
	}
}
