package grid

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"cqp/internal/geo"
)

// modelGrid is the reference implementation for the differential test: a
// verbatim transcription of the pre-slab, map-backed grid storage. The
// flat slab grid must be observationally equivalent to it under every
// Insert/Move/Remove/Visit sequence (up to iteration order, which the
// maps randomize and the slabs fix).
type modelGrid struct {
	bounds geo.Rect
	n      int
	cellW  float64
	cellH  float64
	cells  []modelCell

	objects int
	regions int
}

type modelCell struct {
	objects map[uint64]geo.Point
	regions map[uint64]geo.Rect
}

func newModel(bounds geo.Rect, n int) *modelGrid {
	return &modelGrid{
		bounds: bounds,
		n:      n,
		cellW:  bounds.Width() / float64(n),
		cellH:  bounds.Height() / float64(n),
		cells:  make([]modelCell, n*n),
	}
}

func (g *modelGrid) cellCoords(p geo.Point) (cx, cy int) {
	cx = clamp(int((p.X-g.bounds.MinX)/g.cellW), 0, g.n-1)
	cy = clamp(int((p.Y-g.bounds.MinY)/g.cellH), 0, g.n-1)
	return cx, cy
}

func (g *modelGrid) cellIndex(p geo.Point) int {
	cx, cy := g.cellCoords(p)
	return cy*g.n + cx
}

func (g *modelGrid) cellRect(ci int) geo.Rect {
	cx, cy := ci%g.n, ci/g.n
	return geo.Rect{
		MinX: g.bounds.MinX + float64(cx)*g.cellW,
		MinY: g.bounds.MinY + float64(cy)*g.cellH,
		MaxX: g.bounds.MinX + float64(cx+1)*g.cellW,
		MaxY: g.bounds.MinY + float64(cy+1)*g.cellH,
	}
}

func (g *modelGrid) cellRange(r geo.Rect) (x1, y1, x2, y2 int, ok bool) {
	if !r.Valid() {
		return 0, 0, 0, 0, false
	}
	x1, y1 = g.cellCoords(geo.Pt(r.MinX, r.MinY))
	x2, y2 = g.cellCoords(geo.Pt(r.MaxX, r.MaxY))
	if x2 > x1 && r.MaxX == g.bounds.MinX+float64(x2)*g.cellW {
		x2--
	}
	if y2 > y1 && r.MaxY == g.bounds.MinY+float64(y2)*g.cellH {
		y2--
	}
	return x1, y1, x2, y2, true
}

func (g *modelGrid) insertObject(id uint64, p geo.Point) {
	c := &g.cells[g.cellIndex(p)]
	if c.objects == nil {
		c.objects = make(map[uint64]geo.Point)
	}
	if _, dup := c.objects[id]; !dup {
		g.objects++
	}
	c.objects[id] = p
}

func (g *modelGrid) removeObject(id uint64, p geo.Point) bool {
	c := &g.cells[g.cellIndex(p)]
	if _, ok := c.objects[id]; !ok {
		return false
	}
	delete(c.objects, id)
	g.objects--
	return true
}

func (g *modelGrid) moveObject(id uint64, old, new geo.Point) {
	oldCell, newCell := g.cellIndex(old), g.cellIndex(new)
	if oldCell == newCell {
		c := &g.cells[oldCell]
		if _, ok := c.objects[id]; ok {
			c.objects[id] = new
		} else {
			g.insertObject(id, new)
		}
		return
	}
	g.removeObject(id, old)
	g.insertObject(id, new)
}

func (g *modelGrid) insertRegion(id uint64, r geo.Rect) {
	x1, y1, x2, y2, ok := g.cellRange(r)
	if !ok {
		return
	}
	for cy := y1; cy <= y2; cy++ {
		for cx := x1; cx <= x2; cx++ {
			ci := cy*g.n + cx
			c := &g.cells[ci]
			if c.regions == nil {
				c.regions = make(map[uint64]geo.Rect)
			}
			clip, _ := r.Intersect(g.cellRect(ci))
			if _, dup := c.regions[id]; !dup {
				g.regions++
			}
			c.regions[id] = clip
		}
	}
}

func (g *modelGrid) removeRegion(id uint64, r geo.Rect) {
	x1, y1, x2, y2, ok := g.cellRange(r)
	if !ok {
		return
	}
	for cy := y1; cy <= y2; cy++ {
		for cx := x1; cx <= x2; cx++ {
			c := &g.cells[cy*g.n+cx]
			if _, exists := c.regions[id]; exists {
				delete(c.regions, id)
				g.regions--
			}
		}
	}
}

func (g *modelGrid) moveRegion(id uint64, old, new geo.Rect) {
	ox1, oy1, ox2, oy2, ook := g.cellRange(old)
	nx1, ny1, nx2, ny2, nok := g.cellRange(new)
	if ook && nok && ox1 == nx1 && oy1 == ny1 && ox2 == nx2 && oy2 == ny2 {
		g.insertRegion(id, new)
		return
	}
	g.removeRegion(id, old)
	g.insertRegion(id, new)
}

// diffCheck compares every observable of the flat grid against the model:
// totals, per-cell object and region contents, and the exact-filter
// visit over a probe rectangle.
func diffCheck(t *testing.T, g *Grid, m *modelGrid, probe geo.Rect) {
	t.Helper()
	if g.NumObjects() != m.objects {
		t.Fatalf("NumObjects: flat %d, model %d", g.NumObjects(), m.objects)
	}
	if g.NumRegionEntries() != m.regions {
		t.Fatalf("NumRegionEntries: flat %d, model %d", g.NumRegionEntries(), m.regions)
	}
	for ci := 0; ci < g.n*g.n; ci++ {
		var gotO []objEntry
		g.VisitObjectsInCell(ci, func(id uint64, p geo.Point) bool {
			gotO = append(gotO, objEntry{id, p})
			return true
		})
		var wantO []objEntry
		for id, p := range m.cells[ci].objects {
			wantO = append(wantO, objEntry{id, p})
		}
		sortObjEntries(gotO)
		sortObjEntries(wantO)
		if fmt.Sprint(gotO) != fmt.Sprint(wantO) {
			t.Fatalf("cell %d objects: flat %v, model %v", ci, gotO, wantO)
		}

		var gotR []regEntry
		g.VisitRegionsInCell(ci, func(id uint64, clip geo.Rect) bool {
			gotR = append(gotR, regEntry{id, clip})
			return true
		})
		var wantR []regEntry
		for id, r := range m.cells[ci].regions {
			wantR = append(wantR, regEntry{id, r})
		}
		sortRegEntries(gotR)
		sortRegEntries(wantR)
		if fmt.Sprint(gotR) != fmt.Sprint(wantR) {
			t.Fatalf("cell %d regions: flat %v, model %v", ci, gotR, wantR)
		}
	}

	// VisitObjectsIn must report exactly the model entries inside probe.
	var got []uint64
	g.VisitObjectsIn(probe, func(id uint64, _ geo.Point) bool {
		got = append(got, id)
		return true
	})
	var want []uint64
	if x1, y1, x2, y2, ok := m.cellRange(probe); ok {
		for cy := y1; cy <= y2; cy++ {
			for cx := x1; cx <= x2; cx++ {
				for id, p := range m.cells[cy*m.n+cx].objects {
					if probe.Contains(p) {
						want = append(want, id)
					}
				}
			}
		}
	}
	sortU64(got)
	sortU64(want)
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("VisitObjectsIn(%v): flat %v, model %v", probe, got, want)
	}
}

func sortObjEntries(es []objEntry) {
	sort.Slice(es, func(i, j int) bool {
		if es[i].key != es[j].key {
			return es[i].key < es[j].key
		}
		return es[i].p.X < es[j].p.X || (es[i].p.X == es[j].p.X && es[i].p.Y < es[j].p.Y)
	})
}

func sortRegEntries(es []regEntry) {
	sort.Slice(es, func(i, j int) bool { return es[i].key < es[j].key })
}

func sortU64(vs []uint64) {
	sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
}

// diffPoint draws a point that lands on exact cell boundaries about a
// third of the time (including the far edge of the space) and strictly
// outside the bounds occasionally, so the clamping and boundary-clipping
// paths stay covered.
func diffPoint(rng *rand.Rand, n int) geo.Point {
	coord := func() float64 {
		switch rng.Intn(6) {
		case 0: // exact interior cell boundary
			return float64(rng.Intn(n+1)) / float64(n)
		case 1: // outside the space
			return rng.Float64()*3 - 1
		default:
			return rng.Float64()
		}
	}
	return geo.Pt(coord(), coord())
}

// diffRect draws a rectangle whose edges are cell-aligned about a third
// of the time, degenerate (zero width or height) occasionally, and
// sometimes fully or partially outside the bounds.
func diffRect(rng *rand.Rand, n int) geo.Rect {
	a, b := diffPoint(rng, n), diffPoint(rng, n)
	r := geo.Rect{
		MinX: min(a.X, b.X), MinY: min(a.Y, b.Y),
		MaxX: max(a.X, b.X), MaxY: max(a.Y, b.Y),
	}
	if rng.Intn(8) == 0 { // degenerate: a segment or a point
		r.MaxX = r.MinX
	}
	return r
}

// TestDifferentialFlatVsMapGrid drives the flat slab grid and the
// map-backed reference model through identical randomized operation
// sequences — duplicate ids, stale locations on Move/Remove,
// boundary-aligned and out-of-bounds regions included — and requires
// observational equivalence after every operation.
func TestDifferentialFlatVsMapGrid(t *testing.T) {
	const (
		trials = 40
		ops    = 400
		ids    = 24 // small pool: forces duplicate and collision traffic
	)
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(1000 + trial)))
		n := []int{1, 2, 3, 4, 7, 16}[rng.Intn(6)]
		g := New(geo.R(0, 0, 1, 1), n)
		m := newModel(geo.R(0, 0, 1, 1), n)

		// Remember a plausible location/region per id so Remove and Move
		// usually refer to live entries; sometimes use a stale one.
		lastLoc := make(map[uint64]geo.Point)
		lastReg := make(map[uint64]geo.Rect)

		for op := 0; op < ops; op++ {
			id := uint64(rng.Intn(ids))
			switch rng.Intn(6) {
			case 0:
				p := diffPoint(rng, n)
				g.InsertObject(id, p)
				m.insertObject(id, p)
				lastLoc[id] = p
			case 1:
				p, ok := lastLoc[id]
				if !ok || rng.Intn(4) == 0 {
					p = diffPoint(rng, n) // stale or unknown location
				}
				if got, want := g.RemoveObject(id, p), m.removeObject(id, p); got != want {
					t.Fatalf("trial %d op %d: RemoveObject(%d, %v) = %v, model %v",
						trial, op, id, p, got, want)
				}
			case 2:
				old, ok := lastLoc[id]
				if !ok || rng.Intn(4) == 0 {
					old = diffPoint(rng, n)
				}
				p := diffPoint(rng, n)
				g.MoveObject(id, old, p)
				m.moveObject(id, old, p)
				lastLoc[id] = p
			case 3:
				r := diffRect(rng, n)
				g.InsertRegion(id, r)
				m.insertRegion(id, r)
				lastReg[id] = r
			case 4:
				r, ok := lastReg[id]
				if !ok || rng.Intn(4) == 0 {
					r = diffRect(rng, n)
				}
				g.RemoveRegion(id, r)
				m.removeRegion(id, r)
			case 5:
				old, ok := lastReg[id]
				if !ok || rng.Intn(4) == 0 {
					old = diffRect(rng, n)
				}
				r := diffRect(rng, n)
				g.MoveRegion(id, old, r)
				m.moveRegion(id, old, r)
				lastReg[id] = r
			}
			// Full-state comparison every few operations (and always at
			// the end) keeps the test fast while still catching drift
			// within a handful of ops of its cause.
			if op%5 == 0 || op == ops-1 {
				diffCheck(t, g, m, diffRect(rng, n))
			}
		}
	}
}

// TestIdxTableRandomized hammers the open-addressed (key, cell) → slot
// index directly against a plain map, covering growth, overwrite, and
// the backward-shift deletion path at high load.
func TestIdxTableRandomized(t *testing.T) {
	type ck struct {
		key  uint64
		cell int32
	}
	for trial := 0; trial < 20; trial++ {
		rng := rand.New(rand.NewSource(int64(7000 + trial)))
		var tab idxTable
		ref := make(map[ck]int32)
		keys := 1 + rng.Intn(200)
		cells := 1 + int32(rng.Intn(8))
		for op := 0; op < 4000; op++ {
			k := ck{uint64(rng.Intn(keys)), int32(rng.Intn(int(cells)))}
			switch rng.Intn(3) {
			case 0, 1:
				v := int32(rng.Intn(1 << 20))
				tab.put(k.key, k.cell, v)
				ref[k] = v
			case 2:
				got := tab.del(k.key, k.cell)
				_, want := ref[k]
				if got != want {
					t.Fatalf("trial %d op %d: del(%v) = %v, want %v", trial, op, k, got, want)
				}
				delete(ref, k)
			}
			if tab.n != len(ref) {
				t.Fatalf("trial %d op %d: size %d, want %d", trial, op, tab.n, len(ref))
			}
		}
		for k, want := range ref {
			got, ok := tab.get(k.key, k.cell)
			if !ok || got != want {
				t.Fatalf("trial %d: get(%v) = %v,%v, want %v", trial, k, got, ok, want)
			}
		}
	}
}
