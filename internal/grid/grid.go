// Package grid implements the shared uniform grid structure at the heart
// of the continuous query processor. Following the paper, one grid holds
// both objects and queries: point objects are mapped to exactly one cell by
// location, while queries (and the swept regions of predictive objects)
// are clipped to every cell their region overlaps.
//
// Storage layout. Each cell holds its entries in packed slabs — flat,
// contiguous slices of object and region entries — rather than per-cell
// hash maps. Iteration (the join's inner loop) walks contiguous memory;
// removal swaps the last entry into the vacated slot ("swap-remove"), so
// the slabs never hold holes; and a single open-addressed (key, cell) →
// slot index (idxTable) locates any entry in O(1) for Move/Remove. The
// swap-remove invariant: slabs are always dense, and the index always
// agrees with every entry's current slot. A consequence worth relying on:
// visit order is deterministic — insertion order, perturbed only by
// swap-removes — where the old map-backed cells iterated in Go's
// randomized map order.
//
// The grid stores opaque uint64 identifiers; the engine layers object and
// query semantics on top. All methods are single-threaded; the engine
// serializes access (the paper's server processes buffered updates in
// bulk, one evaluation at a time).
package grid

import (
	"fmt"
	"math"

	"cqp/internal/geo"
)

// Grid divides a rectangular space evenly into N×N equal-sized cells.
type Grid struct {
	bounds geo.Rect
	n      int
	cellW  float64
	cellH  float64
	cells  []cell

	objIdx idxTable // (key, cell) → slot in cells[cell].objs
	regIdx idxTable // (key, cell) → slot in cells[cell].regs

	// stats
	objects int
	regions int
}

// objEntry is one point entry (an object location) in a cell's slab.
type objEntry struct {
	key uint64
	p   geo.Point
}

// regEntry is one clipped region entry (a query, or a predictive
// object's swept trajectory box) in a cell's slab.
type regEntry struct {
	key  uint64
	clip geo.Rect
}

type cell struct {
	objs []objEntry
	regs []regEntry
}

// New creates a grid with n×n cells over bounds. It panics if n < 1 or
// bounds is empty, which indicates a configuration error rather than a
// runtime condition.
func New(bounds geo.Rect, n int) *Grid {
	if n < 1 {
		panic(fmt.Sprintf("grid: invalid cell count %d", n))
	}
	if bounds.Empty() {
		panic(fmt.Sprintf("grid: empty bounds %v", bounds))
	}
	return &Grid{
		bounds: bounds,
		n:      n,
		cellW:  bounds.Width() / float64(n),
		cellH:  bounds.Height() / float64(n),
		cells:  make([]cell, n*n),
	}
}

// Bounds returns the space covered by the grid.
func (g *Grid) Bounds() geo.Rect { return g.bounds }

// N returns the per-axis cell count.
func (g *Grid) N() int { return g.n }

// NumObjects returns the number of point entries stored.
func (g *Grid) NumObjects() int { return g.objects }

// NumRegionEntries returns the number of (region, cell) registrations; a
// region clipped to k cells counts k times.
func (g *Grid) NumRegionEntries() int { return g.regions }

// CellIndex returns the index of the cell containing p. Points outside the
// bounds are clamped to the nearest edge cell, so every point maps to a
// valid cell.
func (g *Grid) CellIndex(p geo.Point) int {
	cx, cy := g.cellCoords(p)
	return cy*g.n + cx
}

func (g *Grid) cellCoords(p geo.Point) (cx, cy int) {
	cx = int((p.X - g.bounds.MinX) / g.cellW)
	cy = int((p.Y - g.bounds.MinY) / g.cellH)
	cx = clamp(cx, 0, g.n-1)
	cy = clamp(cy, 0, g.n-1)
	return cx, cy
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// CellRect returns the spatial extent of cell ci.
func (g *Grid) CellRect(ci int) geo.Rect {
	cx, cy := ci%g.n, ci/g.n
	return geo.Rect{
		MinX: g.bounds.MinX + float64(cx)*g.cellW,
		MinY: g.bounds.MinY + float64(cy)*g.cellH,
		MaxX: g.bounds.MinX + float64(cx+1)*g.cellW,
		MaxY: g.bounds.MinY + float64(cy+1)*g.cellH,
	}
}

// cellRange returns the inclusive cell-coordinate range covering r's
// clamped image. A rect lying partly or wholly outside the bounds
// clamps componentwise onto the boundary cells instead of vanishing —
// the grid is a candidate generator over clamped geometry, and an
// entry must land wherever a clamped counterpart could land, no matter
// how far outside the indexed region the raw geometry sits. (Engines
// built over a sub-Region of the monitored space depend on this:
// a query region far outside a tile's Region still has to meet the
// tile's boundary-clamped objects in the edge cells.) Only an invalid
// rect registers nowhere.
func (g *Grid) cellRange(r geo.Rect) (x1, y1, x2, y2 int, ok bool) {
	if !r.Valid() {
		return 0, 0, 0, 0, false
	}
	x1, y1 = g.cellCoords(geo.Pt(r.MinX, r.MinY))
	x2, y2 = g.cellCoords(geo.Pt(r.MaxX, r.MaxY))
	// A region whose max coordinate lands exactly on a cell boundary should
	// not spill into the next cell; the clamp in cellCoords already handles
	// the far edge of the space.
	if x2 > x1 && r.MaxX == g.bounds.MinX+float64(x2)*g.cellW {
		x2--
	}
	if y2 > y1 && r.MaxY == g.bounds.MinY+float64(y2)*g.cellH {
		y2--
	}
	return x1, y1, x2, y2, true
}

// InsertObject stores a point entry for id at p. A duplicate insert into
// the same cell refreshes the stored location in place.
func (g *Grid) InsertObject(id uint64, p geo.Point) {
	ci := int32(g.CellIndex(p))
	c := &g.cells[ci]
	if slot, ok := g.objIdx.get(id, ci); ok {
		c.objs[slot].p = p
		return
	}
	c.objs = append(c.objs, objEntry{key: id, p: p})
	g.objIdx.put(id, ci, int32(len(c.objs)-1))
	g.objects++
}

// RemoveObject deletes the point entry for id previously stored at p. It
// reports whether the entry existed.
func (g *Grid) RemoveObject(id uint64, p geo.Point) bool {
	ci := int32(g.CellIndex(p))
	slot, ok := g.objIdx.get(id, ci)
	if !ok {
		return false
	}
	g.removeObjAt(ci, slot)
	g.objIdx.del(id, ci)
	g.objects--
	return true
}

// removeObjAt swap-removes the entry at slot from cell ci's object slab,
// re-pointing the index of the entry that filled the hole.
func (g *Grid) removeObjAt(ci, slot int32) {
	c := &g.cells[ci]
	last := int32(len(c.objs) - 1)
	if slot != last {
		moved := c.objs[last]
		c.objs[slot] = moved
		g.objIdx.put(moved.key, ci, slot)
	}
	c.objs = c.objs[:last]
}

// MoveObject relocates id from old to new, returning the old and new cell
// indexes. When both map to the same cell only the stored location is
// refreshed.
func (g *Grid) MoveObject(id uint64, old, new geo.Point) (oldCell, newCell int) {
	oldCell = g.CellIndex(old)
	newCell = g.CellIndex(new)
	if oldCell == newCell {
		ci := int32(oldCell)
		if slot, ok := g.objIdx.get(id, ci); ok {
			g.cells[ci].objs[slot].p = new
		} else {
			g.InsertObject(id, new)
		}
		return oldCell, newCell
	}
	g.RemoveObject(id, old)
	g.InsertObject(id, new)
	return oldCell, newCell
}

// InsertRegion registers a region entry (a query, or the swept bounding
// box of a predictive object's trajectory) in every cell it overlaps,
// storing the clipped region per cell as in the paper's query entry
// (QID, region∩cell). Re-inserting an id refreshes its clip in cells it
// already occupies.
func (g *Grid) InsertRegion(id uint64, r geo.Rect) {
	x1, y1, x2, y2, ok := g.cellRange(r)
	if !ok {
		return
	}
	for cy := y1; cy <= y2; cy++ {
		for cx := x1; cx <= x2; cx++ {
			ci := int32(cy*g.n + cx)
			clip, _ := r.Intersect(g.CellRect(int(ci)))
			c := &g.cells[ci]
			if slot, ok := g.regIdx.get(id, ci); ok {
				c.regs[slot].clip = clip
				continue
			}
			c.regs = append(c.regs, regEntry{key: id, clip: clip})
			g.regIdx.put(id, ci, int32(len(c.regs)-1))
			g.regions++
		}
	}
}

// RemoveRegion deletes the region entry for id from every cell r overlaps.
func (g *Grid) RemoveRegion(id uint64, r geo.Rect) {
	x1, y1, x2, y2, ok := g.cellRange(r)
	if !ok {
		return
	}
	for cy := y1; cy <= y2; cy++ {
		for cx := x1; cx <= x2; cx++ {
			g.removeRegionCell(id, int32(cy*g.n+cx))
		}
	}
}

// removeRegionCell deletes the region entry for id from one cell, if
// present.
func (g *Grid) removeRegionCell(id uint64, ci int32) {
	slot, ok := g.regIdx.get(id, ci)
	if !ok {
		return
	}
	c := &g.cells[ci]
	last := int32(len(c.regs) - 1)
	if slot != last {
		moved := c.regs[last]
		c.regs[slot] = moved
		g.regIdx.put(moved.key, ci, slot)
	}
	c.regs = c.regs[:last]
	g.regIdx.del(id, ci)
	g.regions--
}

// MoveRegion re-registers id from region old to region new. Only the
// cells old covers and new does not are deleted; cells both cover are
// refreshed in place. A query that moved a fraction of its own size
// keeps most of its cells, so the delete/insert churn is confined to
// its leading and trailing edges.
func (g *Grid) MoveRegion(id uint64, old, new geo.Rect) {
	ox1, oy1, ox2, oy2, ook := g.cellRange(old)
	nx1, ny1, nx2, ny2, nok := g.cellRange(new)
	if !ook || !nok {
		if ook {
			g.RemoveRegion(id, old)
		}
		if nok {
			g.InsertRegion(id, new)
		}
		return
	}
	for cy := oy1; cy <= oy2; cy++ {
		for cx := ox1; cx <= ox2; cx++ {
			if cy >= ny1 && cy <= ny2 && cx >= nx1 && cx <= nx2 {
				continue // still covered: InsertRegion refreshes it
			}
			g.removeRegionCell(id, int32(cy*g.n+cx))
		}
	}
	g.InsertRegion(id, new)
}

// CountCells returns the number of cells overlapping r without visiting
// them.
func (g *Grid) CountCells(r geo.Rect) int {
	x1, y1, x2, y2, ok := g.cellRange(r)
	if !ok {
		return 0
	}
	return (x2 - x1 + 1) * (y2 - y1 + 1)
}

// VisitCells calls fn with the index of every cell overlapping r, stopping
// early if fn returns false.
func (g *Grid) VisitCells(r geo.Rect, fn func(ci int) bool) {
	x1, y1, x2, y2, ok := g.cellRange(r)
	if !ok {
		return
	}
	for cy := y1; cy <= y2; cy++ {
		for cx := x1; cx <= x2; cx++ {
			if !fn(cy*g.n + cx) {
				return
			}
		}
	}
}

// VisitObjectsIn calls fn for every point entry lying inside r (an exact
// containment filter over the overlapping cells), stopping early if fn
// returns false. Entries must not be inserted or removed during the
// visit.
func (g *Grid) VisitObjectsIn(r geo.Rect, fn func(id uint64, p geo.Point) bool) {
	x1, y1, x2, y2, ok := g.cellRange(r)
	if !ok {
		return
	}
	for cy := y1; cy <= y2; cy++ {
		for cx := x1; cx <= x2; cx++ {
			objs := g.cells[cy*g.n+cx].objs
			for i := range objs {
				if r.Contains(objs[i].p) {
					if !fn(objs[i].key, objs[i].p) {
						return
					}
				}
			}
		}
	}
}

// VisitObjectsInCell calls fn for every point entry stored in cell ci.
func (g *Grid) VisitObjectsInCell(ci int, fn func(id uint64, p geo.Point) bool) {
	objs := g.cells[ci].objs
	for i := range objs {
		if !fn(objs[i].key, objs[i].p) {
			return
		}
	}
}

// VisitRegionsInCell calls fn for every region entry registered in cell
// ci, passing the clipped region.
func (g *Grid) VisitRegionsInCell(ci int, fn func(id uint64, clipped geo.Rect) bool) {
	regs := g.cells[ci].regs
	for i := range regs {
		if !fn(regs[i].key, regs[i].clip) {
			return
		}
	}
}

// VisitRegionsAt calls fn for every region entry registered in the cell
// containing p. These are the paper's "candidate queries" for an object at
// p; the caller filters by the query's exact region.
func (g *Grid) VisitRegionsAt(p geo.Point, fn func(id uint64, clipped geo.Rect) bool) {
	g.VisitRegionsInCell(g.CellIndex(p), fn)
}

// CountObjectsIn returns the number of point entries inside r.
func (g *Grid) CountObjectsIn(r geo.Rect) int {
	n := 0
	g.VisitObjectsIn(r, func(uint64, geo.Point) bool { n++; return true })
	return n
}

// Neighbor is one result of a k-nearest-neighbor search.
type Neighbor struct {
	ID   uint64
	P    geo.Point
	Dist float64
}

// KNearest returns the k point entries nearest to focal in ascending
// distance order. See KNearestAppend.
func (g *Grid) KNearest(focal geo.Point, k int, filter func(id uint64) bool) []Neighbor {
	return g.KNearestAppend(nil, focal, k, filter)
}

// KNearestAppend is KNearest writing its result into dst (overwritten
// from length zero, grown as needed), so steady-state callers can reuse
// one buffer across searches. It finds the k point entries nearest to
// focal in ascending distance order, using an expanding ring of cells
// with the standard best-first pruning bound: the search stops once the
// k-th candidate is closer than any unvisited ring. Fewer than k results
// are returned when the grid holds fewer objects. The filter, when
// non-nil, excludes entries for which it returns false.
func (g *Grid) KNearestAppend(dst []Neighbor, focal geo.Point, k int, filter func(id uint64) bool) []Neighbor {
	if k <= 0 {
		return dst[:0]
	}
	// dst doubles as the max-heap of the current best k: the root (index
	// 0) is the farthest candidate retained.
	heap := dst[:0]
	fcx, fcy := g.cellCoords(focal)

	for ring := 0; ring < g.n; ring++ {
		// Prune: every cell at this ring is at least ringDist away.
		if len(heap) == k {
			ringDist := float64(ring-1) * math.Min(g.cellW, g.cellH)
			if ring > 0 && ringDist > heap[0].Dist {
				break
			}
		}
		visited := false
		forRing(fcx, fcy, ring, g.n, func(cx, cy int) {
			visited = true
			objs := g.cells[cy*g.n+cx].objs
			for i := range objs {
				e := &objs[i]
				if filter != nil && !filter(e.key) {
					continue
				}
				d := focal.Dist(e.p)
				if len(heap) < k {
					heap = nnPush(heap, Neighbor{e.key, e.p, d})
				} else if d < heap[0].Dist {
					heap, _ = nnPop(heap)
					heap = nnPush(heap, Neighbor{e.key, e.p, d})
				}
			}
		})
		if !visited && ring > maxRing(fcx, fcy, g.n) {
			break
		}
	}

	// Unwind the heap in place: repeatedly pop the farthest into the slot
	// it vacates, yielding ascending distance order.
	for n := len(heap); n > 1; n-- {
		rest, top := nnPop(heap[:n])
		heap[len(rest)] = top
	}
	return heap
}

// maxRing returns the largest ring radius around (cx,cy) that still
// contains at least one valid cell.
func maxRing(cx, cy, n int) int {
	m := cx
	if v := cy; v > m {
		m = v
	}
	if v := n - 1 - cx; v > m {
		m = v
	}
	if v := n - 1 - cy; v > m {
		m = v
	}
	return m
}

// forRing visits the cells on the square ring of the given radius centered
// at (cx, cy), skipping out-of-range coordinates.
func forRing(cx, cy, ring, n int, fn func(x, y int)) {
	if ring == 0 {
		if cx >= 0 && cx < n && cy >= 0 && cy < n {
			fn(cx, cy)
		}
		return
	}
	x1, x2 := cx-ring, cx+ring
	y1, y2 := cy-ring, cy+ring
	for x := x1; x <= x2; x++ {
		if x < 0 || x >= n {
			continue
		}
		if y1 >= 0 && y1 < n {
			fn(x, y1)
		}
		if y2 >= 0 && y2 < n {
			fn(x, y2)
		}
	}
	for y := y1 + 1; y <= y2-1; y++ {
		if y < 0 || y >= n {
			continue
		}
		if x1 >= 0 && x1 < n {
			fn(x1, y)
		}
		if x2 >= 0 && x2 < n {
			fn(x2, y)
		}
	}
}

// nnPush appends n to the max-heap (keyed on distance) stored in hs.
func nnPush(hs []Neighbor, n Neighbor) []Neighbor {
	hs = append(hs, n)
	i := len(hs) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if hs[parent].Dist >= hs[i].Dist {
			break
		}
		hs[parent], hs[i] = hs[i], hs[parent]
		i = parent
	}
	return hs
}

// nnPop removes and returns the farthest neighbor (the root) from the
// max-heap stored in hs.
func nnPop(hs []Neighbor) ([]Neighbor, Neighbor) {
	top := hs[0]
	last := len(hs) - 1
	hs[0] = hs[last]
	hs = hs[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		largest := i
		if l < len(hs) && hs[l].Dist > hs[largest].Dist {
			largest = l
		}
		if r < len(hs) && hs[r].Dist > hs[largest].Dist {
			largest = r
		}
		if largest == i {
			break
		}
		hs[i], hs[largest] = hs[largest], hs[i]
		i = largest
	}
	return hs, top
}
