// Package grid implements the shared uniform grid structure at the heart
// of the continuous query processor. Following the paper, one grid holds
// both objects and queries: point objects are mapped to exactly one cell by
// location, while queries (and the swept regions of predictive objects)
// are clipped to every cell their region overlaps.
//
// The grid stores opaque uint64 identifiers; the engine layers object and
// query semantics on top. All methods are single-threaded; the engine
// serializes access (the paper's server processes buffered updates in
// bulk, one evaluation at a time).
package grid

import (
	"fmt"
	"math"

	"cqp/internal/geo"
)

// Grid divides a rectangular space evenly into N×N equal-sized cells.
type Grid struct {
	bounds geo.Rect
	n      int
	cellW  float64
	cellH  float64
	cells  []cell

	// stats
	objects int
	regions int
}

type cell struct {
	objects map[uint64]geo.Point // point entries (object locations)
	regions map[uint64]geo.Rect  // clipped region entries (queries, trajectories)
}

// New creates a grid with n×n cells over bounds. It panics if n < 1 or
// bounds is empty, which indicates a configuration error rather than a
// runtime condition.
func New(bounds geo.Rect, n int) *Grid {
	if n < 1 {
		panic(fmt.Sprintf("grid: invalid cell count %d", n))
	}
	if bounds.Empty() {
		panic(fmt.Sprintf("grid: empty bounds %v", bounds))
	}
	return &Grid{
		bounds: bounds,
		n:      n,
		cellW:  bounds.Width() / float64(n),
		cellH:  bounds.Height() / float64(n),
		cells:  make([]cell, n*n),
	}
}

// Bounds returns the space covered by the grid.
func (g *Grid) Bounds() geo.Rect { return g.bounds }

// N returns the per-axis cell count.
func (g *Grid) N() int { return g.n }

// NumObjects returns the number of point entries stored.
func (g *Grid) NumObjects() int { return g.objects }

// NumRegionEntries returns the number of (region, cell) registrations; a
// region clipped to k cells counts k times.
func (g *Grid) NumRegionEntries() int { return g.regions }

// CellIndex returns the index of the cell containing p. Points outside the
// bounds are clamped to the nearest edge cell, so every point maps to a
// valid cell.
func (g *Grid) CellIndex(p geo.Point) int {
	cx, cy := g.cellCoords(p)
	return cy*g.n + cx
}

func (g *Grid) cellCoords(p geo.Point) (cx, cy int) {
	cx = int((p.X - g.bounds.MinX) / g.cellW)
	cy = int((p.Y - g.bounds.MinY) / g.cellH)
	cx = clamp(cx, 0, g.n-1)
	cy = clamp(cy, 0, g.n-1)
	return cx, cy
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// CellRect returns the spatial extent of cell ci.
func (g *Grid) CellRect(ci int) geo.Rect {
	cx, cy := ci%g.n, ci/g.n
	return geo.Rect{
		MinX: g.bounds.MinX + float64(cx)*g.cellW,
		MinY: g.bounds.MinY + float64(cy)*g.cellH,
		MaxX: g.bounds.MinX + float64(cx+1)*g.cellW,
		MaxY: g.bounds.MinY + float64(cy+1)*g.cellH,
	}
}

// cellRange returns the inclusive cell-coordinate range overlapping r.
func (g *Grid) cellRange(r geo.Rect) (x1, y1, x2, y2 int, ok bool) {
	if !r.Intersects(g.bounds) {
		return 0, 0, 0, 0, false
	}
	x1, y1 = g.cellCoords(geo.Pt(r.MinX, r.MinY))
	x2, y2 = g.cellCoords(geo.Pt(r.MaxX, r.MaxY))
	// A region whose max coordinate lands exactly on a cell boundary should
	// not spill into the next cell; the clamp in cellCoords already handles
	// the far edge of the space.
	if x2 > x1 && r.MaxX == g.bounds.MinX+float64(x2)*g.cellW {
		x2--
	}
	if y2 > y1 && r.MaxY == g.bounds.MinY+float64(y2)*g.cellH {
		y2--
	}
	return x1, y1, x2, y2, true
}

// InsertObject stores a point entry for id at p.
func (g *Grid) InsertObject(id uint64, p geo.Point) {
	ci := g.CellIndex(p)
	c := &g.cells[ci]
	if c.objects == nil {
		c.objects = make(map[uint64]geo.Point)
	}
	if _, dup := c.objects[id]; !dup {
		g.objects++
	}
	c.objects[id] = p
}

// RemoveObject deletes the point entry for id previously stored at p. It
// reports whether the entry existed.
func (g *Grid) RemoveObject(id uint64, p geo.Point) bool {
	c := &g.cells[g.CellIndex(p)]
	if _, ok := c.objects[id]; !ok {
		return false
	}
	delete(c.objects, id)
	g.objects--
	return true
}

// MoveObject relocates id from old to new, returning the old and new cell
// indexes. When both map to the same cell only the stored location is
// refreshed.
func (g *Grid) MoveObject(id uint64, old, new geo.Point) (oldCell, newCell int) {
	oldCell = g.CellIndex(old)
	newCell = g.CellIndex(new)
	if oldCell == newCell {
		c := &g.cells[oldCell]
		if _, ok := c.objects[id]; ok {
			c.objects[id] = new
		} else {
			g.InsertObject(id, new)
		}
		return oldCell, newCell
	}
	g.RemoveObject(id, old)
	g.InsertObject(id, new)
	return oldCell, newCell
}

// InsertRegion registers a region entry (a query, or the swept bounding
// box of a predictive object's trajectory) in every cell it overlaps,
// storing the clipped region per cell as in the paper's query entry
// (QID, region∩cell).
func (g *Grid) InsertRegion(id uint64, r geo.Rect) {
	x1, y1, x2, y2, ok := g.cellRange(r)
	if !ok {
		return
	}
	for cy := y1; cy <= y2; cy++ {
		for cx := x1; cx <= x2; cx++ {
			ci := cy*g.n + cx
			c := &g.cells[ci]
			if c.regions == nil {
				c.regions = make(map[uint64]geo.Rect)
			}
			clip, _ := r.Intersect(g.CellRect(ci))
			if _, dup := c.regions[id]; !dup {
				g.regions++
			}
			c.regions[id] = clip
		}
	}
}

// RemoveRegion deletes the region entry for id from every cell r overlaps.
func (g *Grid) RemoveRegion(id uint64, r geo.Rect) {
	x1, y1, x2, y2, ok := g.cellRange(r)
	if !ok {
		return
	}
	for cy := y1; cy <= y2; cy++ {
		for cx := x1; cx <= x2; cx++ {
			c := &g.cells[cy*g.n+cx]
			if _, exists := c.regions[id]; exists {
				delete(c.regions, id)
				g.regions--
			}
		}
	}
}

// MoveRegion re-registers id from region old to region new. When both
// regions overlap exactly the same cells — the common case for a query
// that moved less than one cell width — the entries are refreshed in
// place without delete/insert churn.
func (g *Grid) MoveRegion(id uint64, old, new geo.Rect) {
	ox1, oy1, ox2, oy2, ook := g.cellRange(old)
	nx1, ny1, nx2, ny2, nok := g.cellRange(new)
	if ook && nok && ox1 == nx1 && oy1 == ny1 && ox2 == nx2 && oy2 == ny2 {
		g.InsertRegion(id, new) // same cells: overwrites every entry
		return
	}
	g.RemoveRegion(id, old)
	g.InsertRegion(id, new)
}

// CountCells returns the number of cells overlapping r without visiting
// them.
func (g *Grid) CountCells(r geo.Rect) int {
	x1, y1, x2, y2, ok := g.cellRange(r)
	if !ok {
		return 0
	}
	return (x2 - x1 + 1) * (y2 - y1 + 1)
}

// VisitCells calls fn with the index of every cell overlapping r, stopping
// early if fn returns false.
func (g *Grid) VisitCells(r geo.Rect, fn func(ci int) bool) {
	x1, y1, x2, y2, ok := g.cellRange(r)
	if !ok {
		return
	}
	for cy := y1; cy <= y2; cy++ {
		for cx := x1; cx <= x2; cx++ {
			if !fn(cy*g.n + cx) {
				return
			}
		}
	}
}

// VisitObjectsIn calls fn for every point entry lying inside r (an exact
// containment filter over the overlapping cells), stopping early if fn
// returns false.
func (g *Grid) VisitObjectsIn(r geo.Rect, fn func(id uint64, p geo.Point) bool) {
	g.VisitCells(r, func(ci int) bool {
		for id, p := range g.cells[ci].objects {
			if r.Contains(p) {
				if !fn(id, p) {
					return false
				}
			}
		}
		return true
	})
}

// VisitObjectsInCell calls fn for every point entry stored in cell ci.
func (g *Grid) VisitObjectsInCell(ci int, fn func(id uint64, p geo.Point) bool) {
	for id, p := range g.cells[ci].objects {
		if !fn(id, p) {
			return
		}
	}
}

// VisitRegionsInCell calls fn for every region entry registered in cell
// ci, passing the clipped region.
func (g *Grid) VisitRegionsInCell(ci int, fn func(id uint64, clipped geo.Rect) bool) {
	for id, r := range g.cells[ci].regions {
		if !fn(id, r) {
			return
		}
	}
}

// VisitRegionsAt calls fn for every region entry registered in the cell
// containing p. These are the paper's "candidate queries" for an object at
// p; the caller filters by the query's exact region.
func (g *Grid) VisitRegionsAt(p geo.Point, fn func(id uint64, clipped geo.Rect) bool) {
	g.VisitRegionsInCell(g.CellIndex(p), fn)
}

// CountObjectsIn returns the number of point entries inside r.
func (g *Grid) CountObjectsIn(r geo.Rect) int {
	n := 0
	g.VisitObjectsIn(r, func(uint64, geo.Point) bool { n++; return true })
	return n
}

// Neighbor is one result of a k-nearest-neighbor search.
type Neighbor struct {
	ID   uint64
	P    geo.Point
	Dist float64
}

// KNearest returns the k point entries nearest to focal in ascending
// distance order, using an expanding ring of cells with the standard
// best-first pruning bound: the search stops once the k-th candidate is
// closer than any unvisited ring. Fewer than k results are returned when
// the grid holds fewer objects. The filter, when non-nil, excludes entries
// for which it returns false.
func (g *Grid) KNearest(focal geo.Point, k int, filter func(id uint64) bool) []Neighbor {
	if k <= 0 {
		return nil
	}
	h := &nnHeap{} // max-heap of current best k
	fcx, fcy := g.cellCoords(focal)

	consider := func(id uint64, p geo.Point) {
		if filter != nil && !filter(id) {
			return
		}
		d := focal.Dist(p)
		if h.Len() < k {
			h.push(Neighbor{id, p, d})
		} else if d < h.peek().Dist {
			h.pop()
			h.push(Neighbor{id, p, d})
		}
	}

	for ring := 0; ring < g.n; ring++ {
		// Prune: every cell at this ring is at least ringDist away.
		if h.Len() == k {
			ringDist := float64(ring-1) * math.Min(g.cellW, g.cellH)
			if ring > 0 && ringDist > h.peek().Dist {
				break
			}
		}
		visited := false
		forRing(fcx, fcy, ring, g.n, func(cx, cy int) {
			visited = true
			for id, p := range g.cells[cy*g.n+cx].objects {
				consider(id, p)
			}
		})
		if !visited && ring > maxRing(fcx, fcy, g.n) {
			break
		}
	}

	out := make([]Neighbor, h.Len())
	for i := len(out) - 1; i >= 0; i-- {
		out[i] = h.pop()
	}
	return out
}

// maxRing returns the largest ring radius around (cx,cy) that still
// contains at least one valid cell.
func maxRing(cx, cy, n int) int {
	m := cx
	if v := cy; v > m {
		m = v
	}
	if v := n - 1 - cx; v > m {
		m = v
	}
	if v := n - 1 - cy; v > m {
		m = v
	}
	return m
}

// forRing visits the cells on the square ring of the given radius centered
// at (cx, cy), skipping out-of-range coordinates.
func forRing(cx, cy, ring, n int, fn func(x, y int)) {
	if ring == 0 {
		if cx >= 0 && cx < n && cy >= 0 && cy < n {
			fn(cx, cy)
		}
		return
	}
	x1, x2 := cx-ring, cx+ring
	y1, y2 := cy-ring, cy+ring
	for x := x1; x <= x2; x++ {
		if x < 0 || x >= n {
			continue
		}
		if y1 >= 0 && y1 < n {
			fn(x, y1)
		}
		if y2 >= 0 && y2 < n {
			fn(x, y2)
		}
	}
	for y := y1 + 1; y <= y2-1; y++ {
		if y < 0 || y >= n {
			continue
		}
		if x1 >= 0 && x1 < n {
			fn(x1, y)
		}
		if x2 >= 0 && x2 < n {
			fn(x2, y)
		}
	}
}

// nnHeap is a max-heap of Neighbors keyed on distance; the root is the
// farthest of the current best k.
type nnHeap struct {
	ns []Neighbor
}

func (h *nnHeap) Len() int       { return len(h.ns) }
func (h *nnHeap) peek() Neighbor { return h.ns[0] }
func (h *nnHeap) push(n Neighbor) {
	h.ns = append(h.ns, n)
	i := len(h.ns) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if h.ns[parent].Dist >= h.ns[i].Dist {
			break
		}
		h.ns[parent], h.ns[i] = h.ns[i], h.ns[parent]
		i = parent
	}
}

func (h *nnHeap) pop() Neighbor {
	top := h.ns[0]
	last := len(h.ns) - 1
	h.ns[0] = h.ns[last]
	h.ns = h.ns[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		largest := i
		if l < len(h.ns) && h.ns[l].Dist > h.ns[largest].Dist {
			largest = l
		}
		if r < len(h.ns) && h.ns[r].Dist > h.ns[largest].Dist {
			largest = r
		}
		if largest == i {
			break
		}
		h.ns[i], h.ns[largest] = h.ns[largest], h.ns[i]
		i = largest
	}
	return top
}
