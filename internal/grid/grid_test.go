package grid

import (
	"math/rand"
	"sort"
	"testing"

	"cqp/internal/geo"
)

func unitGrid(n int) *Grid { return New(geo.R(0, 0, 1, 1), n) }

func TestNewPanics(t *testing.T) {
	for _, tc := range []struct {
		name string
		fn   func()
	}{
		{"zero cells", func() { New(geo.R(0, 0, 1, 1), 0) }},
		{"empty bounds", func() { New(geo.R(0, 0, 0, 1), 4) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			tc.fn()
		})
	}
}

func TestCellIndex(t *testing.T) {
	g := unitGrid(4)
	tests := []struct {
		p    geo.Point
		want int
	}{
		{geo.Pt(0, 0), 0},
		{geo.Pt(0.99, 0.99), 15},
		{geo.Pt(0.26, 0.01), 1},
		{geo.Pt(0.01, 0.26), 4},
		// Clamping outside the bounds.
		{geo.Pt(-5, -5), 0},
		{geo.Pt(5, 5), 15},
		// The far edge belongs to the last cell.
		{geo.Pt(1, 1), 15},
	}
	for _, tc := range tests {
		if got := g.CellIndex(tc.p); got != tc.want {
			t.Errorf("CellIndex(%v) = %d, want %d", tc.p, got, tc.want)
		}
	}
}

func TestCellRectRoundTrip(t *testing.T) {
	g := unitGrid(8)
	for ci := 0; ci < 64; ci++ {
		r := g.CellRect(ci)
		if got := g.CellIndex(r.Center()); got != ci {
			t.Errorf("cell %d: center %v maps to %d", ci, r.Center(), got)
		}
	}
}

func TestObjectLifecycle(t *testing.T) {
	g := unitGrid(4)
	g.InsertObject(1, geo.Pt(0.1, 0.1))
	g.InsertObject(2, geo.Pt(0.9, 0.9))
	if g.NumObjects() != 2 {
		t.Fatalf("NumObjects = %d", g.NumObjects())
	}

	// Duplicate insert refreshes, does not double count.
	g.InsertObject(1, geo.Pt(0.12, 0.12))
	if g.NumObjects() != 2 {
		t.Fatalf("NumObjects after dup = %d", g.NumObjects())
	}

	if !g.RemoveObject(1, geo.Pt(0.12, 0.12)) {
		t.Error("RemoveObject existing = false")
	}
	if g.RemoveObject(1, geo.Pt(0.12, 0.12)) {
		t.Error("RemoveObject missing = true")
	}
	if g.NumObjects() != 1 {
		t.Fatalf("NumObjects after remove = %d", g.NumObjects())
	}
}

func TestMoveObject(t *testing.T) {
	g := unitGrid(4)
	g.InsertObject(7, geo.Pt(0.1, 0.1))

	// Same-cell move.
	oc, nc := g.MoveObject(7, geo.Pt(0.1, 0.1), geo.Pt(0.2, 0.2))
	if oc != nc {
		t.Errorf("same-cell move: %d -> %d", oc, nc)
	}

	// Cross-cell move.
	oc, nc = g.MoveObject(7, geo.Pt(0.2, 0.2), geo.Pt(0.9, 0.9))
	if oc == nc {
		t.Error("cross-cell move reported same cell")
	}
	if g.NumObjects() != 1 {
		t.Errorf("NumObjects = %d", g.NumObjects())
	}
	found := 0
	g.VisitObjectsIn(geo.R(0.75, 0.75, 1, 1), func(id uint64, p geo.Point) bool {
		if id == 7 {
			found++
		}
		return true
	})
	if found != 1 {
		t.Errorf("object not found at destination (found=%d)", found)
	}

	// Moving an object the grid lost track of re-inserts it.
	g2 := unitGrid(4)
	g2.MoveObject(9, geo.Pt(0.1, 0.1), geo.Pt(0.15, 0.15))
	if g2.NumObjects() != 1 {
		t.Errorf("move-of-unknown should insert; NumObjects = %d", g2.NumObjects())
	}
}

func TestRegionClipping(t *testing.T) {
	g := unitGrid(4) // cells of side 0.25
	r := geo.R(0.2, 0.2, 0.55, 0.3)
	g.InsertRegion(42, r)

	// Overlaps cells (0,0..?) columns 0..2, row 1 for y in [0.2,0.3): rows 0
	// (y<0.25) and 1 (y in [0.25,0.3]).
	if g.NumRegionEntries() != 6 {
		t.Fatalf("NumRegionEntries = %d, want 6", g.NumRegionEntries())
	}

	// Clipped region stored per cell must equal region ∩ cellRect.
	g.VisitCells(r, func(ci int) bool {
		cellR := g.CellRect(ci)
		g.VisitRegionsInCell(ci, func(id uint64, clipped geo.Rect) bool {
			if id != 42 {
				return true
			}
			want, ok := r.Intersect(cellR)
			if !ok || clipped != want {
				t.Errorf("cell %d: clipped = %v, want %v", ci, clipped, want)
			}
			return true
		})
		return true
	})

	g.RemoveRegion(42, r)
	if g.NumRegionEntries() != 0 {
		t.Fatalf("NumRegionEntries after remove = %d", g.NumRegionEntries())
	}
}

func TestRegionBoundaryAligned(t *testing.T) {
	g := unitGrid(4)
	// Region exactly covering one cell should register in exactly that cell
	// (max edge on the boundary must not spill over).
	g.InsertRegion(1, geo.R(0.25, 0.25, 0.5, 0.5))
	if g.NumRegionEntries() != 1 {
		t.Errorf("aligned region entries = %d, want 1", g.NumRegionEntries())
	}
	g.RemoveRegion(1, geo.R(0.25, 0.25, 0.5, 0.5))
	if g.NumRegionEntries() != 0 {
		t.Errorf("entries after remove = %d", g.NumRegionEntries())
	}
}

func TestRegionOutsideBounds(t *testing.T) {
	g := unitGrid(4)
	// A region wholly outside the bounds clamps onto the nearest boundary
	// cell: out-of-bounds geometry must stay indexable so it can meet the
	// boundary-clamped objects of a sub-Region engine (see cellRange).
	g.InsertRegion(5, geo.R(2, 2, 3, 3))
	if g.NumRegionEntries() != 1 {
		t.Errorf("clamped outside region entries = %d, want 1", g.NumRegionEntries())
	}
	g.RemoveRegion(5, geo.R(2, 2, 3, 3)) // must remove the same clamped range
	if g.NumRegionEntries() != 0 {
		t.Error("counter drifted")
	}
	// Partially overlapping region is clipped to the space.
	g.InsertRegion(6, geo.R(0.9, 0.9, 3, 3))
	if g.NumRegionEntries() != 1 {
		t.Errorf("partial overlap entries = %d, want 1", g.NumRegionEntries())
	}
	// An invalid rectangle registers nowhere.
	g.InsertRegion(7, geo.Rect{MinX: 0.5, MinY: 0.5, MaxX: 0.2, MaxY: 0.6})
	if g.NumRegionEntries() != 1 {
		t.Errorf("invalid rect entries = %d, want 1", g.NumRegionEntries())
	}
}

func TestMoveRegion(t *testing.T) {
	g := unitGrid(4)
	old := geo.R(0.1, 0.1, 0.2, 0.2)
	new := geo.R(0.6, 0.6, 0.7, 0.7)
	g.InsertRegion(9, old)
	g.MoveRegion(9, old, new)
	if g.NumRegionEntries() != 1 {
		t.Fatalf("entries = %d", g.NumRegionEntries())
	}
	seen := false
	g.VisitRegionsAt(geo.Pt(0.65, 0.65), func(id uint64, _ geo.Rect) bool {
		seen = seen || id == 9
		return true
	})
	if !seen {
		t.Error("region not found at new location")
	}
	g.VisitRegionsAt(geo.Pt(0.15, 0.15), func(id uint64, _ geo.Rect) bool {
		if id == 9 {
			t.Error("region still registered at old location")
		}
		return true
	})
}

func TestVisitObjectsInExactFilter(t *testing.T) {
	g := unitGrid(4)
	g.InsertObject(1, geo.Pt(0.10, 0.10)) // inside query
	g.InsertObject(2, geo.Pt(0.24, 0.24)) // same cell, outside query
	g.InsertObject(3, geo.Pt(0.90, 0.90)) // different cell

	var got []uint64
	g.VisitObjectsIn(geo.R(0.05, 0.05, 0.15, 0.15), func(id uint64, _ geo.Point) bool {
		got = append(got, id)
		return true
	})
	if len(got) != 1 || got[0] != 1 {
		t.Errorf("VisitObjectsIn = %v, want [1]", got)
	}
	if n := g.CountObjectsIn(geo.R(0, 0, 1, 1)); n != 3 {
		t.Errorf("CountObjectsIn all = %d", n)
	}
}

func TestVisitEarlyStop(t *testing.T) {
	g := unitGrid(4)
	for i := uint64(0); i < 10; i++ {
		g.InsertObject(i, geo.Pt(0.1, 0.1))
	}
	n := 0
	g.VisitObjectsIn(geo.R(0, 0, 1, 1), func(uint64, geo.Point) bool {
		n++
		return n < 3
	})
	if n != 3 {
		t.Errorf("early stop visited %d", n)
	}
	cells := 0
	g.VisitCells(geo.R(0, 0, 1, 1), func(int) bool {
		cells++
		return false
	})
	if cells != 1 {
		t.Errorf("VisitCells early stop visited %d", cells)
	}
}

func TestKNearestBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		g := unitGrid(1 + rng.Intn(16))
		n := 1 + rng.Intn(200)
		pts := make(map[uint64]geo.Point, n)
		for i := uint64(0); i < uint64(n); i++ {
			p := geo.Pt(rng.Float64(), rng.Float64())
			pts[i] = p
			g.InsertObject(i, p)
		}
		focal := geo.Pt(rng.Float64(), rng.Float64())
		k := 1 + rng.Intn(12)

		got := g.KNearest(focal, k, nil)

		// Brute force.
		type cand struct {
			id uint64
			d  float64
		}
		var all []cand
		for id, p := range pts {
			all = append(all, cand{id, focal.Dist(p)})
		}
		sort.Slice(all, func(i, j int) bool {
			if all[i].d != all[j].d {
				return all[i].d < all[j].d
			}
			return all[i].id < all[j].id
		})
		wantLen := k
		if n < k {
			wantLen = n
		}
		if len(got) != wantLen {
			t.Fatalf("trial %d: len = %d, want %d", trial, len(got), wantLen)
		}
		for i := 1; i < len(got); i++ {
			if got[i].Dist < got[i-1].Dist {
				t.Fatalf("trial %d: results not sorted", trial)
			}
		}
		// Distance multiset must match (ids may differ on ties).
		for i := range got {
			if diff := got[i].Dist - all[i].d; diff > 1e-9 || diff < -1e-9 {
				t.Fatalf("trial %d: dist[%d] = %v, want %v", trial, i, got[i].Dist, all[i].d)
			}
		}
	}
}

func TestKNearestFilterAndEdge(t *testing.T) {
	g := unitGrid(8)
	g.InsertObject(1, geo.Pt(0.5, 0.5))
	g.InsertObject(2, geo.Pt(0.52, 0.5))
	g.InsertObject(3, geo.Pt(0.6, 0.5))

	got := g.KNearest(geo.Pt(0.5, 0.5), 2, func(id uint64) bool { return id != 1 })
	if len(got) != 2 || got[0].ID != 2 || got[1].ID != 3 {
		t.Errorf("filtered KNearest = %+v", got)
	}
	if got := g.KNearest(geo.Pt(0.5, 0.5), 0, nil); got != nil {
		t.Errorf("k=0 should yield nil, got %v", got)
	}
	if got := g.KNearest(geo.Pt(-4, -4), 3, nil); len(got) != 3 {
		t.Errorf("focal outside bounds: len = %d", len(got))
	}
	empty := unitGrid(4)
	if got := empty.KNearest(geo.Pt(0.5, 0.5), 3, nil); len(got) != 0 {
		t.Errorf("empty grid: %v", got)
	}
}

// TestGridObjectQueryAgreement is a randomized consistency check: for any
// registered region and set of objects, VisitRegionsAt on an object inside
// the region must report that region.
func TestGridObjectQueryAgreement(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := unitGrid(10)
	regions := map[uint64]geo.Rect{}
	for q := uint64(0); q < 50; q++ {
		r := geo.RectAt(geo.Pt(rng.Float64(), rng.Float64()), 0.05+rng.Float64()*0.2)
		regions[q] = r
		g.InsertRegion(q, r)
	}
	for i := 0; i < 1000; i++ {
		p := geo.Pt(rng.Float64(), rng.Float64())
		cands := map[uint64]bool{}
		g.VisitRegionsAt(p, func(id uint64, _ geo.Rect) bool {
			cands[id] = true
			return true
		})
		for q, r := range regions {
			if r.Contains(p) && !cands[q] {
				t.Fatalf("object %v inside region %d=%v not in candidates", p, q, r)
			}
		}
	}
}
