package grid

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"cqp/internal/geo"
)

// quickPoints generates points within (and slightly beyond) the unit
// square so clamping paths are exercised.
func quickValues(vals []reflect.Value, rng *rand.Rand) {
	for i := range vals {
		vals[i] = reflect.ValueOf(rng.Float64()*1.2 - 0.1)
	}
}

var gridQuickCfg = &quick.Config{MaxCount: 500, Values: quickValues}

// TestQuickCellIndexRoundTrip: every point maps to a cell whose rectangle
// contains it (when the point is inside the bounds).
func TestQuickCellIndexRoundTrip(t *testing.T) {
	g := New(geo.R(0, 0, 1, 1), 13)
	f := func(x, y float64) bool {
		p := geo.Pt(x, y)
		ci := g.CellIndex(p)
		if ci < 0 || ci >= 13*13 {
			return false
		}
		if g.Bounds().Contains(p) {
			// Expand for boundary points shared between cells.
			return g.CellRect(ci).Expand(1e-12).Contains(p)
		}
		return true // clamped points land in an edge cell by design
	}
	if err := quick.Check(f, gridQuickCfg); err != nil {
		t.Error(err)
	}
}

// TestQuickRegionCandidatesComplete: a point inside a registered region is
// always among the candidates of its cell.
func TestQuickRegionCandidatesComplete(t *testing.T) {
	g := New(geo.R(0, 0, 1, 1), 9)
	f := func(cx, cy, side, px, py float64) bool {
		r := geo.RectAt(geo.Pt(cx, cy), 0.01+side*0.3)
		g.InsertRegion(1, r)
		defer g.RemoveRegion(1, r)
		p := geo.Pt(px, py)
		if !r.Contains(p) || !g.Bounds().Contains(p) {
			return true
		}
		found := false
		g.VisitRegionsAt(p, func(id uint64, _ geo.Rect) bool {
			found = found || id == 1
			return true
		})
		return found
	}
	if err := quick.Check(f, gridQuickCfg); err != nil {
		t.Error(err)
	}
}

// TestQuickMoveRegionEquivalence: MoveRegion leaves the grid in the same
// state as RemoveRegion + InsertRegion, including the same-cell fast path.
func TestQuickMoveRegionEquivalence(t *testing.T) {
	f := func(ax, ay, aside, bx, by, bside float64) bool {
		ra := geo.RectAt(geo.Pt(ax, ay), 0.01+aside*0.2)
		rb := geo.RectAt(geo.Pt(bx, by), 0.01+bside*0.2)

		g1 := New(geo.R(0, 0, 1, 1), 7)
		g1.InsertRegion(5, ra)
		g1.MoveRegion(5, ra, rb)

		g2 := New(geo.R(0, 0, 1, 1), 7)
		g2.InsertRegion(5, rb)

		if g1.NumRegionEntries() != g2.NumRegionEntries() {
			return false
		}
		equal := true
		g1.VisitCells(geo.R(0, 0, 1, 1), func(ci int) bool {
			var c1, c2 []geo.Rect
			g1.VisitRegionsInCell(ci, func(_ uint64, clip geo.Rect) bool {
				c1 = append(c1, clip)
				return true
			})
			g2.VisitRegionsInCell(ci, func(_ uint64, clip geo.Rect) bool {
				c2 = append(c2, clip)
				return true
			})
			if !reflect.DeepEqual(c1, c2) {
				equal = false
				return false
			}
			return true
		})
		return equal
	}
	if err := quick.Check(f, gridQuickCfg); err != nil {
		t.Error(err)
	}
}
