package grid

import (
	"math/rand"
	"testing"

	"cqp/internal/geo"
)

func benchGrid(n, objects, regions int, seed int64) *Grid {
	g := New(geo.R(0, 0, 1, 1), n)
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < objects; i++ {
		g.InsertObject(uint64(i), geo.Pt(rng.Float64(), rng.Float64()))
	}
	for j := 0; j < regions; j++ {
		g.InsertRegion(uint64(1<<32+j), geo.RectAt(geo.Pt(rng.Float64(), rng.Float64()), 0.01))
	}
	return g
}

func BenchmarkGridMoveObject(b *testing.B) {
	g := benchGrid(64, 100000, 0, 1)
	rng := rand.New(rand.NewSource(2))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := uint64(rng.Intn(100000))
		old := geo.Pt(rng.Float64(), rng.Float64())
		g.MoveObject(id, old, geo.Pt(rng.Float64(), rng.Float64()))
	}
}

func BenchmarkGridMoveRegionSameCells(b *testing.B) {
	g := benchGrid(64, 0, 10000, 1)
	rng := rand.New(rand.NewSource(2))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := uint64(1<<32 + rng.Intn(10000))
		c := geo.Pt(0.3+rng.Float64()*0.4, 0.3+rng.Float64()*0.4)
		r := geo.RectAt(c, 0.01)
		// Sub-cell-width move: exercises the in-place fast path.
		g.MoveRegion(id, r, r.Translate(geo.Vec(0.0005, 0.0005)))
	}
}

func BenchmarkGridVisitObjectsIn(b *testing.B) {
	g := benchGrid(64, 100000, 0, 1)
	rng := rand.New(rand.NewSource(3))
	b.ReportAllocs()
	b.ResetTimer()
	count := 0
	for i := 0; i < b.N; i++ {
		r := geo.RectAt(geo.Pt(rng.Float64(), rng.Float64()), 0.02)
		g.VisitObjectsIn(r, func(uint64, geo.Point) bool { count++; return true })
	}
	_ = count
}

func BenchmarkGridKNearest(b *testing.B) {
	g := benchGrid(64, 100000, 0, 1)
	rng := rand.New(rand.NewSource(4))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.KNearest(geo.Pt(rng.Float64(), rng.Float64()), 10, nil)
	}
}
