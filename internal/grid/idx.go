package grid

// idxTable maps a (key, cell) pair to the slot of its entry inside that
// cell's packed entry slice. It is the O(1) locator over the flat
// slab-backed cells: every cell-scoped lookup, move, and removal resolves
// through it instead of scanning or hashing per cell.
//
// The table is open-addressed with linear probing over a power-of-two
// slot array. Deletion uses backward-shift compaction (no tombstones), so
// probe sequences never degrade under the heavy insert/delete churn of a
// moving-object workload. A slot value of -1 marks an empty slot; live
// slot indexes are always >= 0.
type idxTable struct {
	slots []idxSlot
	n     int // live entries
}

type idxSlot struct {
	key  uint64
	cell int32
	slot int32 // -1: empty
}

const idxMinCap = 16

// idxHash mixes the composite key with a splitmix64-style finisher. The
// hash is a pure function of its inputs: grid behavior must stay
// deterministic across runs (see the determinism analyzer), so no
// per-process seed is folded in.
func idxHash(key uint64, cell int32) uint64 {
	x := key ^ uint64(uint32(cell))*0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// get returns the slot stored for (key, cell).
func (t *idxTable) get(key uint64, cell int32) (int32, bool) {
	if t.n == 0 {
		return 0, false
	}
	mask := uint64(len(t.slots) - 1)
	for i := idxHash(key, cell) & mask; ; i = (i + 1) & mask {
		s := &t.slots[i]
		if s.slot < 0 {
			return 0, false
		}
		if s.key == key && s.cell == cell {
			return s.slot, true
		}
	}
}

// put inserts or overwrites the slot stored for (key, cell).
func (t *idxTable) put(key uint64, cell int32, slot int32) {
	if len(t.slots) == 0 || (t.n+1)*4 > len(t.slots)*3 {
		t.grow()
	}
	mask := uint64(len(t.slots) - 1)
	for i := idxHash(key, cell) & mask; ; i = (i + 1) & mask {
		s := &t.slots[i]
		if s.slot < 0 {
			*s = idxSlot{key: key, cell: cell, slot: slot}
			t.n++
			return
		}
		if s.key == key && s.cell == cell {
			s.slot = slot
			return
		}
	}
}

// del removes the entry for (key, cell), reporting whether it existed.
// The cluster following the vacated slot is compacted by the standard
// backward-shift walk: every displaced entry that cannot reach its home
// slot without passing the hole is moved into it.
func (t *idxTable) del(key uint64, cell int32) bool {
	if t.n == 0 {
		return false
	}
	mask := uint64(len(t.slots) - 1)
	i := idxHash(key, cell) & mask
	for {
		s := &t.slots[i]
		if s.slot < 0 {
			return false
		}
		if s.key == key && s.cell == cell {
			break
		}
		i = (i + 1) & mask
	}
	j := i
	for {
		j = (j + 1) & mask
		s := t.slots[j]
		if s.slot < 0 {
			break
		}
		k := idxHash(s.key, s.cell) & mask
		// If the home slot k lies cyclically in (i, j], the entry at j is
		// still reachable from its home after the hole at i is emptied;
		// leave it in place.
		var reachable bool
		if i <= j {
			reachable = i < k && k <= j
		} else {
			reachable = i < k || k <= j
		}
		if reachable {
			continue
		}
		t.slots[i] = s
		i = j
	}
	t.slots[i].slot = -1
	t.n--
	return true
}

// grow doubles the table (or allocates the initial one) and re-inserts
// every live entry.
func (t *idxTable) grow() {
	capacity := idxMinCap
	if len(t.slots) > 0 {
		capacity = len(t.slots) * 2
	}
	old := t.slots
	t.slots = make([]idxSlot, capacity)
	for i := range t.slots {
		t.slots[i].slot = -1
	}
	mask := uint64(capacity - 1)
	for _, s := range old {
		if s.slot < 0 {
			continue
		}
		for i := idxHash(s.key, s.cell) & mask; ; i = (i + 1) & mask {
			if t.slots[i].slot < 0 {
				t.slots[i] = s
				break
			}
		}
	}
}
