package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// LockSend flags a mutex held across a blocking channel operation or a
// blocking I/O call — the deadlock shape the server's session/outbox
// design and the shard worker protocol exist to avoid: a goroutine that
// blocks on a channel (or a stalled peer) while holding the lock that
// the draining goroutine needs wedges the whole engine.
//
// The analysis is intraprocedural and position-based: within one
// function body it tracks mu.Lock()/mu.RLock() ... mu.Unlock()/
// mu.RUnlock() spans (a deferred unlock holds to function end) and
// reports, inside a span:
//
//   - channel sends and receives, including range-over-channel, unless
//     they sit in a select that has a default clause (non-blocking);
//   - calls to known-blocking primitives: Read/Write/Flush on
//     internal/wire, net, and bufio types, (*sync.WaitGroup).Wait,
//     net.Listener.Accept, and time.Sleep.
//
// Function literals started with `go` are separate goroutines and are
// analyzed as their own contexts.
var LockSend = &Analyzer{
	Name: "locksend",
	Doc: "flag mutexes held across blocking channel operations or blocking " +
		"I/O — the session/outbox deadlock shape; drain outside the lock or " +
		"use a buffered, non-blocking handoff",
	Run: runLockSend,
}

func runLockSend(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					checkLockSpans(pass, fn.Body)
				}
				return false
			case *ast.FuncLit:
				checkLockSpans(pass, fn.Body)
				return false
			}
			return true
		})
	}
	return nil
}

// lockEvent is one Lock/Unlock call on a mutex root, ordered by
// position.
type lockEvent struct {
	pos  token.Pos
	root types.Object
	name string // printable receiver, e.g. "s.mu"
	lock bool
}

// checkLockSpans analyzes one function body in isolation.
func checkLockSpans(pass *Pass, body *ast.BlockStmt) {
	info := pass.TypesInfo
	var events []lockEvent

	// Pass 1: collect lock/unlock events. Nested function literals are
	// separate contexts: their own walk handles them.
	inspectSameContext(body, func(n ast.Node) {
		var call *ast.CallExpr
		deferred := false
		switch x := n.(type) {
		case *ast.DeferStmt:
			call = x.Call
			deferred = true
		case *ast.ExprStmt:
			c, ok := x.X.(*ast.CallExpr)
			if !ok {
				return
			}
			call = c
		default:
			return
		}
		root, name, kind := mutexCall(info, call)
		if root == nil {
			return
		}
		switch kind {
		case "Lock", "RLock":
			if !deferred {
				events = append(events, lockEvent{pos: call.Pos(), root: root, name: name, lock: true})
			}
		case "Unlock", "RUnlock":
			if deferred {
				// Deferred unlock: the lock is held to function end; no
				// closing event.
				return
			}
			events = append(events, lockEvent{pos: call.Pos(), root: root, name: name})
		}
	})
	if len(events) == 0 {
		return
	}
	sort.Slice(events, func(i, j int) bool { return events[i].pos < events[j].pos })

	heldAt := func(pos token.Pos) (types.Object, string, token.Pos) {
		held := make(map[types.Object]lockEvent)
		for _, ev := range events {
			if ev.pos >= pos {
				break
			}
			if ev.lock {
				held[ev.root] = ev
			} else {
				delete(held, ev.root)
			}
		}
		for root, ev := range held {
			return root, ev.name, ev.pos
		}
		return nil, "", token.NoPos
	}

	// Pass 2: find blocking operations and test whether a lock is held.
	report := func(pos token.Pos, what string) {
		if root, name, lockPos := heldAt(pos); root != nil {
			pass.Reportf(pos, "%s while holding %s (locked at line %d): blocking under a lock is the outbox deadlock shape — move the blocking operation outside the critical section", what, name, pass.Fset.Position(lockPos).Line)
		}
	}
	inspectSameContextAll(body, func(n ast.Node, selDefault bool) {
		switch x := n.(type) {
		case *ast.SendStmt:
			if !selDefault {
				report(x.Arrow, "channel send")
			}
		case *ast.UnaryExpr:
			if x.Op == token.ARROW && !selDefault {
				report(x.OpPos, "channel receive")
			}
		case *ast.RangeStmt:
			if t := info.TypeOf(x.X); t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					report(x.For, "range over channel")
				}
			}
		case *ast.CallExpr:
			if what := blockingCall(info, x); what != "" {
				report(x.Pos(), what)
			}
		}
	})
}

// mutexCall recognizes (root).Lock/RLock/Unlock/RUnlock() where the
// method is defined on a sync or project mutex type.
func mutexCall(info *types.Info, call *ast.CallExpr) (root types.Object, name, kind string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, "", ""
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Type().(*types.Signature).Recv() == nil {
		return nil, "", ""
	}
	switch fn.Name() {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return nil, "", ""
	}
	if pkgPathOf(fn) != "sync" {
		return nil, "", ""
	}
	root = rootObject(info, sel.X)
	if root == nil {
		return nil, "", ""
	}
	return root, exprString(sel.X), fn.Name()
}

// blockingCall classifies calls to known-blocking primitives.
func blockingCall(info *types.Info, call *ast.CallExpr) string {
	fn := funcOf(info, call)
	if fn == nil {
		return ""
	}
	sig := fn.Type().(*types.Signature)
	path := pkgPathOf(fn)
	if sig.Recv() == nil {
		if path == "time" && fn.Name() == "Sleep" {
			return "time.Sleep"
		}
		return ""
	}
	switch fn.Name() {
	case "Read", "Write", "Flush", "ReadFull", "WriteString":
		switch {
		case path == "net" || path == "bufio" || path == "io":
			return "blocking " + shortPkg(path) + " " + fn.Name()
		case hasSuffix(path, "internal/wire"):
			return "blocking wire." + fn.Name()
		}
	case "Wait":
		if path == "sync" {
			return "sync.WaitGroup.Wait"
		}
	case "Accept":
		if path == "net" {
			return "net.Listener.Accept"
		}
	}
	return ""
}

// inspectSameContext walks nodes of one function body without
// descending into nested function literals.
func inspectSameContext(body *ast.BlockStmt, visit func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			visit(n)
		}
		return true
	})
}

// inspectSameContextAll is inspectSameContext plus a flag telling the
// visitor whether the node sits inside a select statement that has a
// default clause (where channel operations are non-blocking).
func inspectSameContextAll(body *ast.BlockStmt, visit func(n ast.Node, inSelectWithDefault bool)) {
	var walk func(n ast.Node, selDefault bool)
	walk = func(n ast.Node, selDefault bool) {
		if n == nil {
			return
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return
		}
		if sel, ok := n.(*ast.SelectStmt); ok {
			hasDefault := false
			for _, c := range sel.Body.List {
				if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
					hasDefault = true
				}
			}
			for _, c := range sel.Body.List {
				cc := c.(*ast.CommClause)
				walk(cc.Comm, hasDefault)
				for _, s := range cc.Body {
					// The clause bodies run after the communication
					// resolved; blocking there is blocking regardless.
					walk(s, false)
				}
			}
			return
		}
		visit(n, selDefault)
		var children []ast.Node
		ast.Inspect(n, func(c ast.Node) bool {
			if c == n {
				return true
			}
			if c != nil {
				children = append(children, c)
			}
			return false
		})
		for _, c := range children {
			walk(c, selDefault)
		}
	}
	for _, s := range body.List {
		walk(s, false)
	}
}

func hasSuffix(s, suf string) bool {
	return len(s) >= len(suf) && s[len(s)-len(suf):] == suf
}

func exprString(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprString(x.X) + "." + x.Sel.Name
	case *ast.ParenExpr:
		return exprString(x.X)
	case *ast.StarExpr:
		return exprString(x.X)
	case *ast.UnaryExpr:
		return exprString(x.X)
	case *ast.IndexExpr:
		return exprString(x.X) + "[...]"
	default:
		return "mutex"
	}
}
