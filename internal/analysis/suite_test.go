package analysis_test

import (
	"testing"

	"cqp/internal/analysis"
	"cqp/internal/analysis/analysistest"
)

// Each analyzer runs over its fixture package in testdata/src/<name>;
// the fixtures carry positive cases (lines with `// want` expectations)
// and negative cases (the sanctioned idioms, which must stay silent).

func TestDeterminism(t *testing.T) {
	analysistest.Run(t, analysis.Determinism, "determinism")
}

func TestMapOrder(t *testing.T) {
	analysistest.Run(t, analysis.MapOrder, "maporder")
}

func TestLockSend(t *testing.T) {
	analysistest.Run(t, analysis.LockSend, "locksend")
}

func TestErrAdrift(t *testing.T) {
	analysistest.Run(t, analysis.ErrAdrift, "erradrift")
}

func TestValidateFirst(t *testing.T) {
	analysistest.Run(t, analysis.ValidateFirst, "validatefirst")
}

func TestGoLifecycle(t *testing.T) {
	analysistest.Run(t, analysis.GoLifecycle, "golifecycle")
}

func TestWireSym(t *testing.T) {
	analysistest.Run(t, analysis.WireSym, "wiresym")
}

func TestAtomicMix(t *testing.T) {
	analysistest.Run(t, analysis.AtomicMix, "atomicmix")
}

func TestAllowAudit(t *testing.T) {
	analysistest.Run(t, analysis.AllowAudit, "allowaudit")
}
