package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// ValidateFirst flags methods that mutate receiver state before their
// parameter validation has passed — the applyQueryUpdate bug class: a
// malformed query report must be rejected *before* it auto-commits the
// query or overwrites its timestamp, otherwise an invalid input mutates
// protocol state it was never entitled to touch.
//
// The analysis is deliberately narrow to stay precise. Within each
// method body it looks for a top-level validation guard:
//
//   - a `switch` over an expression derived only from parameters with a
//     clause that just returns (the kind-dispatch rejection idiom), or
//   - an `if` whose condition is derived only from parameters and calls
//     a validator (a function or method whose name contains "valid"),
//     and whose body terminates.
//
// If such a guard exists, any earlier top-level statement that writes a
// receiver field, writes through a receiver map, or deletes from one is
// reported.
var ValidateFirst = &Analyzer{
	Name: "validatefirst",
	Doc: "flag receiver-state mutation before parameter validation: invalid " +
		"reports must be rejected before they commit answers or overwrite " +
		"engine state",
	Run: runValidateFirst,
}

func runValidateFirst(pass *Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || fd.Recv == nil || len(fd.Recv.List) == 0 {
				continue
			}
			checkValidateFirst(pass, fd)
		}
	}
	return nil
}

func checkValidateFirst(pass *Pass, fd *ast.FuncDecl) {
	info := pass.TypesInfo
	recv := receiverObject(info, fd)
	if recv == nil {
		return
	}
	params := paramObjects(info, fd)
	if len(params) == 0 {
		return
	}

	// Locate the first top-level validation guard.
	guardIdx := -1
	var guardPos ast.Node
	for i, stmt := range fd.Body.List {
		if isValidationGuard(info, stmt, params) {
			guardIdx = i
			guardPos = stmt
			break
		}
	}
	if guardIdx <= 0 {
		return // no guard, or the guard is already first
	}

	for _, stmt := range fd.Body.List[:guardIdx] {
		if node, what := mutatesReceiver(info, stmt, recv); node != nil {
			pass.Reportf(node.Pos(), "%s mutated before the parameter validation at line %d: reject invalid input before touching receiver state", what, pass.Fset.Position(guardPos.Pos()).Line)
		}
	}
}

func receiverObject(info *types.Info, fd *ast.FuncDecl) types.Object {
	names := fd.Recv.List[0].Names
	if len(names) == 0 || names[0].Name == "_" {
		return nil
	}
	return info.Defs[names[0]]
}

func paramObjects(info *types.Info, fd *ast.FuncDecl) map[types.Object]bool {
	out := make(map[types.Object]bool)
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			if obj := info.Defs[name]; obj != nil {
				out[obj] = true
			}
		}
	}
	return out
}

// isValidationGuard recognizes the two rejection idioms described in
// the analyzer doc.
func isValidationGuard(info *types.Info, stmt ast.Stmt, params map[types.Object]bool) bool {
	switch s := stmt.(type) {
	case *ast.SwitchStmt:
		if s.Init != nil || s.Tag == nil || !paramDerived(info, s.Tag, params) {
			return false
		}
		for _, c := range s.Body.List {
			cc, ok := c.(*ast.CaseClause)
			if !ok {
				continue
			}
			if clauseJustReturns(cc.Body) {
				return true
			}
		}
	case *ast.IfStmt:
		if s.Init != nil || !paramDerived(info, s.Cond, params) {
			return false
		}
		if !mentionsValidator(info, s.Cond) {
			return false
		}
		return terminates(s.Body)
	}
	return false
}

// clauseJustReturns reports whether a case body is empty or consists
// solely of a return (the `default: return` rejection idiom). An empty
// body only counts for non-default clauses (fallthrough-free dispatch),
// so require at least a return.
func clauseJustReturns(body []ast.Stmt) bool {
	if len(body) != 1 {
		return false
	}
	_, ok := body[0].(*ast.ReturnStmt)
	return ok
}

// terminates reports whether a block's last statement is a return,
// panic, or continue.
func terminates(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	switch last := b.List[len(b.List)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

// paramDerived reports whether every identifier in e that names a
// variable resolves to a parameter. Package-level functions, constants,
// types, and selectors hanging off parameters are allowed.
func paramDerived(info *types.Info, e ast.Expr, params map[types.Object]bool) bool {
	ok := true
	ast.Inspect(e, func(n ast.Node) bool {
		id, isIdent := n.(*ast.Ident)
		if !isIdent {
			return true
		}
		obj := info.Uses[id]
		v, isVar := obj.(*types.Var)
		if !isVar {
			return true
		}
		if v.IsField() {
			return true // field selection on a param chain
		}
		if !params[obj] {
			ok = false
		}
		return true
	})
	return ok
}

// mentionsValidator reports whether the condition calls something whose
// name contains "valid" (Valid, IsValid, validate, ...).
func mentionsValidator(info *types.Info, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if fn := funcOf(info, call); fn != nil {
			if strings.Contains(strings.ToLower(fn.Name()), "valid") {
				found = true
			}
		}
		return true
	})
	return found
}

// mutatesReceiver reports the first receiver-state mutation inside
// stmt: an assignment whose left side roots at the receiver, an
// increment/decrement of a receiver field, or a delete on a receiver
// map. Nested function literals are skipped.
func mutatesReceiver(info *types.Info, stmt ast.Stmt, recv types.Object) (pos ast.Node, what string) {
	var hitNode ast.Node
	var hitWhat string
	ast.Inspect(stmt, func(n ast.Node) bool {
		if hitNode != nil {
			return false
		}
		switch x := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				if rootObject(info, lhs) == recv && !isBlank(lhs) {
					hitNode, hitWhat = x, "receiver state ("+exprString(lhs)+")"
					return false
				}
			}
		case *ast.IncDecStmt:
			if rootObject(info, x.X) == recv {
				hitNode, hitWhat = x, "receiver state ("+exprString(x.X)+")"
				return false
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok && id.Name == "delete" && len(x.Args) > 0 {
				if rootObject(info, x.Args[0]) == recv {
					hitNode, hitWhat = x, "receiver map ("+exprString(x.Args[0])+")"
					return false
				}
			}
		}
		return true
	})
	if hitNode == nil {
		return nil, ""
	}
	return hitNode, hitWhat
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}
