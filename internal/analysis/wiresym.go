package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// WireSym proves encode/decode symmetry for wire frame types: for each
// message struct handled by both an encoder (a type switch over the
// message interface, one case per frame type) and a decoder (a value
// switch over the frame-type discriminator, one case constructing each
// frame type), the two sides must touch the same top-level fields in
// the same order. A field appended on one side but skipped — or
// reordered — on the other silently shifts every later byte, the drift
// class that otherwise only surfaces as a resync-checksum failure at
// runtime (the ClusterAssign Region/MaxSpeed/Replica shape).
//
// Sequences are extracted syntactically, in source order, relative to
// the message variable of each switch case: selector accesses record
// their top-level field (m.Bounds.MinX → Bounds), consecutive
// duplicates collapse (a length prefix followed by the element loop is
// one access), and same-package helper calls that take or produce the
// whole message (appendUpdateBatch(b, m), m, err := decodeUpdateBatch(d),
// m.Objects, m.Queries = decodeReports(d)) are followed or recorded in
// argument/assignment order. Types whose extraction is empty on either
// side are skipped — symmetry is only asserted where both sides are
// visible.
var WireSym = &Analyzer{
	Name: "wiresym",
	Doc: "flag encode/decode field-order drift in wire frame types: both " +
		"sides of a frame's codec must read and write the same top-level " +
		"fields in the same order",
	Run: runWireSym,
}

func runWireSym(pass *Pass) error {
	enc := map[*types.TypeName]*wireSeq{}
	dec := map[*types.TypeName]*wireSeq{}
	for _, file := range pass.Files {
		if isTestFile(pass.Fset, file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch sw := n.(type) {
			case *ast.TypeSwitchStmt:
				collectEncodeSwitch(pass, sw, enc)
				return false
			case *ast.SwitchStmt:
				collectDecodeSwitch(pass, sw, dec)
				return false
			}
			return true
		})
	}
	// Only coherent codec pairs are compared: an encoder or decoder
	// recognized in isolation asserts nothing.
	for tn, d := range dec {
		e := enc[tn]
		if e == nil || len(e.fields) == 0 || len(d.fields) == 0 {
			continue
		}
		if !equalStrings(e.fields, d.fields) {
			pass.Reportf(d.pos, "wire codec asymmetry for %s: encode writes [%s] but decode reads [%s] — the field sequences must match exactly or every later byte shifts",
				tn.Name(), strings.Join(e.fields, " "), strings.Join(d.fields, " "))
		}
	}
	return nil
}

type wireSeq struct {
	pos    token.Pos
	fields []string
}

func (s *wireSeq) add(field string) {
	if n := len(s.fields); n > 0 && s.fields[n-1] == field {
		return
	}
	s.fields = append(s.fields, field)
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// namedStruct resolves t to the TypeName of a named struct type, or
// nil.
func namedStruct(t types.Type) *types.TypeName {
	if t == nil {
		return nil
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	if _, ok := named.Underlying().(*types.Struct); !ok {
		return nil
	}
	return named.Obj()
}

// --- encode side -----------------------------------------------------------

// collectEncodeSwitch treats a type switch as an encoder when at least
// two of its cases name struct types; each single-type case yields the
// field sequence the case body reads off the switched message.
func collectEncodeSwitch(pass *Pass, sw *ast.TypeSwitchStmt, out map[*types.TypeName]*wireSeq) {
	info := pass.TypesInfo
	structCases := 0
	for _, c := range sw.Body.List {
		cc := c.(*ast.CaseClause)
		if len(cc.List) == 1 && namedStruct(info.TypeOf(cc.List[0])) != nil {
			structCases++
		}
	}
	if structCases < 2 {
		return
	}
	for _, c := range sw.Body.List {
		cc := c.(*ast.CaseClause)
		if len(cc.List) != 1 {
			continue
		}
		tn := namedStruct(info.TypeOf(cc.List[0]))
		if tn == nil {
			continue
		}
		// The per-clause implicit binding of `switch m := m.(type)`.
		obj := info.Implicits[cc]
		if obj == nil {
			continue
		}
		seq := &wireSeq{pos: cc.Pos()}
		for _, st := range cc.Body {
			encodeWalk(pass, st, obj, seq, 0)
		}
		if _, dup := out[tn]; !dup {
			out[tn] = seq
		}
	}
}

// encodeWalk collects, in source order, the top-level fields of obj
// referenced under n, following same-package helpers that receive the
// whole message (possibly through a conversion).
func encodeWalk(pass *Pass, n ast.Node, obj types.Object, seq *wireSeq, depth int) {
	info := pass.TypesInfo
	ast.Inspect(n, func(x ast.Node) bool {
		switch e := x.(type) {
		case *ast.CallExpr:
			if depth < maxCallDepth {
				if fn, param := wholeValueCallee(pass, e, obj); fn != nil {
					if body := declBody(pass, fn); body != nil {
						encodeWalk(pass, body, param, seq, depth+1)
						return false
					}
				}
			}
			return true
		case *ast.SelectorExpr:
			if name, ok := topField(info, e, func(id *ast.Ident) bool {
				return info.Uses[id] == obj || info.Defs[id] == obj
			}); ok {
				seq.add(name)
				return false
			}
		}
		return true
	})
}

// wholeValueCallee recognizes a call passing obj itself (or a
// conversion of it, e.g. UpdateBatch(m)) to a same-package function,
// returning the callee and the parameter object the argument binds to.
func wholeValueCallee(pass *Pass, call *ast.CallExpr, obj types.Object) (*types.Func, types.Object) {
	info := pass.TypesInfo
	fn := funcOf(info, call)
	if fn == nil || fn.Pkg() != pass.Pkg {
		return nil, nil
	}
	for i, arg := range call.Args {
		if !exprIsValue(info, arg, obj) {
			continue
		}
		if param := paramObject(pass, fn, i); param != nil {
			return fn, param
		}
	}
	return nil, nil
}

// exprIsValue reports whether e is obj, possibly wrapped in parens or a
// type conversion.
func exprIsValue(info *types.Info, e ast.Expr, obj types.Object) bool {
	e = ast.Unparen(e)
	if id, ok := e.(*ast.Ident); ok {
		return info.Uses[id] == obj
	}
	if call, ok := e.(*ast.CallExpr); ok && len(call.Args) == 1 {
		if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
			return exprIsValue(info, call.Args[0], obj)
		}
	}
	return false
}

// paramObject resolves the i'th parameter of fn's declaration in this
// package to its types.Object.
func paramObject(pass *Pass, fn *types.Func, i int) types.Object {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || pass.TypesInfo.Defs[fd.Name] != fn {
				continue
			}
			idx := 0
			for _, field := range fd.Type.Params.List {
				if len(field.Names) == 0 {
					idx++ // unnamed parameter cannot be referenced anyway
					continue
				}
				for _, name := range field.Names {
					if idx == i {
						return pass.TypesInfo.Defs[name]
					}
					idx++
				}
			}
		}
	}
	return nil
}

// topField returns the field the selector chain ultimately hangs off
// the message variable: for m.Bounds.MinX it returns "Bounds".
func topField(info *types.Info, sel *ast.SelectorExpr, isMsgVar func(*ast.Ident) bool) (string, bool) {
	inner := sel
	for {
		x := ast.Unparen(inner.X)
		switch e := x.(type) {
		case *ast.SelectorExpr:
			inner = e
		case *ast.IndexExpr:
			if s, ok := ast.Unparen(e.X).(*ast.SelectorExpr); ok {
				inner = s
			} else {
				return "", false
			}
		case *ast.Ident:
			if isMsgVar(e) {
				return inner.Sel.Name, true
			}
			return "", false
		default:
			return "", false
		}
	}
}

// --- decode side -----------------------------------------------------------

// collectDecodeSwitch treats a value switch as a decoder when its tag
// is a basic-typed discriminator and at least two of its cases
// construct distinct named struct types; each such case yields the
// field sequence assigned into the constructed message.
func collectDecodeSwitch(pass *Pass, sw *ast.SwitchStmt, out map[*types.TypeName]*wireSeq) {
	if sw.Tag == nil {
		return
	}
	if t := pass.TypesInfo.TypeOf(sw.Tag); t != nil {
		if _, ok := t.Underlying().(*types.Basic); !ok {
			return
		}
	}
	type caseSeq struct {
		tn  *types.TypeName
		seq *wireSeq
	}
	var cases []caseSeq
	seen := map[*types.TypeName]bool{}
	for _, c := range sw.Body.List {
		cc, ok := c.(*ast.CaseClause)
		if !ok || cc.List == nil {
			continue
		}
		tn, seq := decodeClauseSeq(pass, cc)
		if tn == nil || seen[tn] {
			continue
		}
		seen[tn] = true
		cases = append(cases, caseSeq{tn, seq})
	}
	if len(cases) < 2 {
		return
	}
	for _, c := range cases {
		if _, dup := out[c.tn]; !dup {
			out[c.tn] = c.seq
		}
	}
}

// decodeClauseSeq extracts the constructed message type and its field
// sequence from one decoder case body.
func decodeClauseSeq(pass *Pass, cc *ast.CaseClause) (*types.TypeName, *wireSeq) {
	info := pass.TypesInfo
	body := &ast.BlockStmt{List: cc.Body}

	// The constructed type is the type of the first returned operand
	// that is a named struct.
	var tn *types.TypeName
	ast.Inspect(body, func(n ast.Node) bool {
		if tn != nil {
			return false
		}
		if ret, ok := n.(*ast.ReturnStmt); ok && len(ret.Results) > 0 {
			tn = namedStruct(info.TypeOf(ret.Results[0]))
		}
		return true
	})
	if tn == nil {
		return nil, nil
	}
	seq := &wireSeq{pos: cc.Pos()}
	collectDecodeBody(pass, body, tn, seq, 0)
	return tn, seq
}

// collectDecodeBody records, in source order, the fields of msgType
// populated within node: direct field assignments (in LHS order, which
// covers tuple assigns like m.Objects, m.Queries = decodeReports(d)),
// composite-literal keys, and — through same-package helpers returning
// the message struct — the helper's own assignments.
func collectDecodeBody(pass *Pass, node ast.Node, msgType *types.TypeName, seq *wireSeq, depth int) {
	info := pass.TypesInfo
	isMsgVar := func(id *ast.Ident) bool {
		obj := info.Defs[id]
		if obj == nil {
			obj = info.Uses[id]
		}
		return obj != nil && namedStruct(obj.Type()) == msgType
	}
	ast.Inspect(node, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			// A plain-identifier LHS of named struct type means the RHS
			// produces a whole message value (m, err := decodeUpdateBatch(d),
			// including the conversion shape where m is the pre-conversion
			// type) — only then is a helper call followed. Helper results
			// landing in a single field stay summarized by the field name,
			// exactly as the encode side summarizes appendX(b, m.Field).
			lhsWhole := false
			for _, lhs := range x.Lhs {
				switch l := ast.Unparen(lhs).(type) {
				case *ast.SelectorExpr:
					if name, ok := topField(info, l, isMsgVar); ok {
						seq.add(name)
					}
				case *ast.Ident:
					obj := info.Defs[l]
					if obj == nil {
						obj = info.Uses[l]
					}
					if obj != nil && namedStruct(obj.Type()) != nil {
						lhsWhole = true
					}
				}
			}
			for _, rhs := range x.Rhs {
				rhs = ast.Unparen(rhs)
				if lit, ok := rhs.(*ast.CompositeLit); ok && namedStruct(info.TypeOf(lit)) == msgType {
					addLiteralFields(info, lit, msgType, seq)
				} else if lhsWhole {
					decodeRHS(pass, rhs, seq, depth)
				}
			}
			return false
		case *ast.CompositeLit:
			if namedStruct(info.TypeOf(x)) == msgType {
				addLiteralFields(info, x, msgType, seq)
				return false
			}
		}
		return true
	})
}

// decodeRHS follows one whole-message producer: a conversion unwraps,
// and a same-package helper whose first named-struct result carries the
// message is recursed into under its own result type.
func decodeRHS(pass *Pass, e ast.Expr, seq *wireSeq, depth int) {
	if depth >= maxCallDepth {
		return
	}
	info := pass.TypesInfo
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return
	}
	// Unwrap a conversion around a helper call (RecoveryDiff(m) is not a
	// call site; the conversion shows up on return paths).
	if tv, isConv := info.Types[call.Fun]; isConv && tv.IsType() && len(call.Args) == 1 {
		if inner, ok := ast.Unparen(call.Args[0]).(*ast.CallExpr); ok {
			call = inner
		} else {
			return
		}
	}
	fn := funcOf(info, call)
	if fn == nil || fn.Pkg() != pass.Pkg {
		return
	}
	helperType := firstNamedStructResult(fn)
	if helperType == nil {
		return
	}
	if body := declBody(pass, fn); body != nil {
		collectDecodeBody(pass, body, helperType, seq, depth+1)
	}
}

// firstNamedStructResult returns the TypeName of fn's first
// named-struct result, or nil — the helper-decoder shape
// (decodeUpdateBatch returns (UpdateBatch, error)).
func firstNamedStructResult(fn *types.Func) *types.TypeName {
	sig := fn.Type().(*types.Signature)
	for i := 0; i < sig.Results().Len(); i++ {
		if tn := namedStruct(sig.Results().At(i).Type()); tn != nil {
			return tn
		}
	}
	return nil
}

// addLiteralFields records the fields of a composite literal of the
// message type, in source order; unkeyed literals map positionally to
// the struct's declared fields.
func addLiteralFields(info *types.Info, lit *ast.CompositeLit, tn *types.TypeName, seq *wireSeq) {
	st, ok := tn.Type().Underlying().(*types.Struct)
	if !ok {
		return
	}
	for i, el := range lit.Elts {
		if kv, ok := el.(*ast.KeyValueExpr); ok {
			if id, ok := kv.Key.(*ast.Ident); ok {
				seq.add(id.Name)
			}
			continue
		}
		if i < st.NumFields() {
			seq.add(st.Field(i).Name())
		}
	}
}
