package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// GoLifecycle flags `go` statements that launch goroutines with no
// provable join or stop path — the fire-and-forget shape that worker
// and supervisor leaks start as. Every goroutine in this repository is
// expected to be joinable (WaitGroup Add/Done pairing, a done channel
// closed on exit) or stoppable (a stop/context channel it selects on),
// because the differential and chaos suites assert zero leaked
// goroutines after every Close.
//
// The analysis is evidence-based, not a proof: a launch is accepted
// when a join/stop mechanism is visible from the launch site —
//
//   - the goroutine body (a function literal, or the body of a
//     same-package function/method, followed through same-package
//     calls to bounded depth) performs a channel operation: a send,
//     receive, select, range over a channel, or close — these are the
//     shapes of done-channel joins, result handoffs, and stop-channel
//     loops;
//   - the body calls (*sync.WaitGroup).Done or Wait, or
//     context.Context.Done;
//   - or, when the callee's body is out of reach (another package, a
//     function value), the call site passes a stop-capable argument: a
//     channel, a context.Context, or a *sync.WaitGroup.
//
// A goroutine with none of the above has no way to be waited for and
// no way to be told to stop; either wire one in or annotate the launch
// with a reason (process-lifetime goroutines in main are the one
// sanctioned case).
var GoLifecycle = &Analyzer{
	Name: "golifecycle",
	Doc: "flag fire-and-forget goroutines: every `go` statement needs a " +
		"provable join/stop path (WaitGroup Done, done-channel close, " +
		"channel loop, or context cancellation) visible from the launch site",
	Run: runGoLifecycle,
}

func runGoLifecycle(pass *Pass) error {
	// Memoized per-function evidence, shared across launch sites; the
	// in-progress marker (false entry before the walk) breaks recursion
	// cycles conservatively toward "no evidence".
	memo := make(map[*types.Func]bool)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if isTestFile(pass.Fset, g.Pos()) {
				return true
			}
			if !launchHasLifecycle(pass, g.Call, memo) {
				pass.Reportf(g.Pos(), "goroutine launched with no join/stop path: no WaitGroup Done/Wait, channel operation, select, or context cancellation is reachable from this `go` statement — a leak the moment its parent is closed")
			}
			return true
		})
	}
	return nil
}

// launchHasLifecycle decides one `go` call.
func launchHasLifecycle(pass *Pass, call *ast.CallExpr, memo map[*types.Func]bool) bool {
	// Stop-capable arguments count as evidence even when the callee's
	// body is out of reach: passing a channel, context, or WaitGroup is
	// what handing a goroutine its stop/join mechanism looks like.
	for _, arg := range call.Args {
		if stopCapableType(pass.TypesInfo.TypeOf(arg)) {
			return true
		}
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.FuncLit:
		return bodyHasJoinEvidence(pass, fun.Body, memo, 0)
	default:
		fn := funcOf(pass.TypesInfo, call)
		if fn != nil && fn.Pkg() == pass.Pkg {
			if body := declBody(pass, fn); body != nil {
				return funcHasJoinEvidence(pass, fn, body, memo)
			}
		}
		return false
	}
}

// stopCapableType reports whether t can carry a stop or join signal
// across the launch: a channel, a context.Context, or a
// *sync.WaitGroup.
func stopCapableType(t types.Type) bool {
	if t == nil {
		return false
	}
	switch u := t.Underlying().(type) {
	case *types.Chan:
		return true
	case *types.Pointer:
		if named, ok := u.Elem().(*types.Named); ok {
			obj := named.Obj()
			if obj.Name() == "WaitGroup" && pkgPathOf(obj) == "sync" {
				return true
			}
		}
	case *types.Interface:
		if named, ok := t.(*types.Named); ok {
			obj := named.Obj()
			if obj.Name() == "Context" && pkgPathOf(obj) == "context" {
				return true
			}
		}
	}
	return false
}

// maxCallDepth bounds how far join evidence is chased through
// same-package calls (go w.run() → run's body → its helpers).
const maxCallDepth = 3

func funcHasJoinEvidence(pass *Pass, fn *types.Func, body *ast.BlockStmt, memo map[*types.Func]bool) bool {
	if v, ok := memo[fn]; ok {
		return v
	}
	memo[fn] = false // in-progress: cycles resolve to "no evidence"
	v := bodyHasJoinEvidence(pass, body, memo, 0)
	memo[fn] = v
	return v
}

// bodyHasJoinEvidence walks a goroutine body — including nested
// function literals, since a deferred literal is the canonical place
// for wg.Done — looking for any join/stop shape.
func bodyHasJoinEvidence(pass *Pass, body *ast.BlockStmt, memo map[*types.Func]bool, depth int) bool {
	info := pass.TypesInfo
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch x := n.(type) {
		case *ast.GoStmt:
			// A nested launch's evidence belongs to the goroutine it
			// starts, not to this one — it is checked at its own site.
			return false
		case *ast.SendStmt, *ast.SelectStmt:
			found = true
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				found = true
			}
		case *ast.RangeStmt:
			if t := info.TypeOf(x.X); t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					found = true
				}
			}
		case *ast.CallExpr:
			if callIsJoinEvidence(pass, x, memo, depth) {
				found = true
			}
		}
		return !found
	})
	return found
}

func callIsJoinEvidence(pass *Pass, call *ast.CallExpr, memo map[*types.Func]bool, depth int) bool {
	info := pass.TypesInfo
	// close(ch): the done-channel join.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "close" {
		if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
			return true
		}
	}
	fn := funcOf(info, call)
	if fn == nil {
		return false
	}
	sig := fn.Type().(*types.Signature)
	if sig.Recv() != nil {
		switch {
		case pkgPathOf(fn) == "sync" && (fn.Name() == "Done" || fn.Name() == "Wait"):
			return true
		case pkgPathOf(fn) == "context" && fn.Name() == "Done":
			return true
		}
	}
	// Follow same-package callees: `go w.run()` is joinable when run
	// ranges over the command channel that Close closes.
	if fn.Pkg() == pass.Pkg && depth < maxCallDepth {
		if body := declBody(pass, fn); body != nil {
			if v, ok := memo[fn]; ok {
				return v
			}
			memo[fn] = false
			v := bodyHasJoinEvidence(pass, body, memo, depth+1)
			memo[fn] = v
			return v
		}
	}
	return false
}

// declBody finds the FuncDecl body of a same-package function or
// method in the pass's files.
func declBody(pass *Pass, fn *types.Func) *ast.BlockStmt {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if pass.TypesInfo.Defs[fd.Name] == fn {
				return fd.Body
			}
		}
	}
	return nil
}
