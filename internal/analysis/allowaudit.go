package analysis

import (
	"fmt"
	"go/token"
)

// AllowAudit keeps the suppression ledger honest: every //lint:allow
// annotation must (a) be well-formed — a known analyzer name plus a
// non-empty reason — and (b) still suppress a live finding. A stale
// allow is an error, not noise: it either marks code whose hazard was
// fixed (delete the annotation before it silences the next, real
// finding on that line) or an annotation that drifted away from the
// code it used to excuse.
//
// Staleness is decided by re-running every sibling analyzer unfiltered
// and checking that a raw finding by the named analyzer lands on the
// annotation's line or the line directly below it — exactly the span
// the driver's filter covers. The determinism analyzer is re-run only
// inside its production scope (DeterministicPackages), mirroring the
// driver, so a determinism allow outside that scope is correctly
// reported as suppressing nothing.
var AllowAudit = &Analyzer{
	Name: "allowaudit",
	Doc: "flag suppressions that no longer suppress anything: every " +
		"//lint:allow needs a known analyzer, a non-empty reason, and a " +
		"live finding on its line or the line below",
}

// Run is attached in init: runAllowAudit re-runs All(), which includes
// AllowAudit itself, and the compiler rejects the static
// initialization cycle a direct field initializer would create.
func init() { AllowAudit.Run = runAllowAudit }

func runAllowAudit(pass *Pass) error {
	known := make(map[string]bool)
	for _, a := range All() {
		known[a.Name] = true
	}

	// Parse every annotation, malformed ones included.
	type sited struct {
		allow Allow
		tok   token.Pos
	}
	var wellFormed []sited
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, cm := range cg.List {
				if !allowAnyRe.MatchString(cm.Text) {
					continue
				}
				m := AllowRe.FindStringSubmatch(cm.Text)
				if m == nil || !ReasonOK(m[2]) {
					pass.Reportf(cm.Pos(), "reason-less //lint:allow: the format is `//lint:allow <analyzer> <reason>` — a suppression without a stated reason is indistinguishable from a silenced finding")
					continue
				}
				if !known[m[1]] {
					pass.Reportf(cm.Pos(), "unknown analyzer %q in //lint:allow: it suppresses nothing (known: see cqp-lint -list)", m[1])
					continue
				}
				wellFormed = append(wellFormed, sited{
					allow: Allow{
						Pos:      pass.Fset.Position(cm.Pos()),
						Analyzer: m[1],
						Reason:   m[2],
					},
					tok: cm.Pos(),
				})
			}
		}
	}
	if len(wellFormed) == 0 {
		return nil
	}

	// Re-run the sibling analyzers unfiltered and index their raw
	// findings by (analyzer, file, line).
	hits := make(map[string]map[string]map[int]bool)
	for _, a := range All() {
		if a.Name == "allowaudit" {
			continue
		}
		if a == Determinism && !DeterministicPackages[pass.Pkg.Path()] {
			continue
		}
		name := a.Name
		sub := &Pass{
			Analyzer:  a,
			Fset:      pass.Fset,
			Files:     pass.Files,
			Pkg:       pass.Pkg,
			TypesInfo: pass.TypesInfo,
			Report: func(d Diagnostic) {
				pos := pass.Fset.Position(d.Pos)
				byFile := hits[name]
				if byFile == nil {
					byFile = make(map[string]map[int]bool)
					hits[name] = byFile
				}
				lines := byFile[pos.Filename]
				if lines == nil {
					lines = make(map[int]bool)
					byFile[pos.Filename] = lines
				}
				lines[pos.Line] = true
			},
		}
		if err := a.Run(sub); err != nil {
			return fmt.Errorf("allowaudit: re-running %s: %w", a.Name, err)
		}
	}

	for _, s := range wellFormed {
		lines := hits[s.allow.Analyzer][s.allow.Pos.Filename]
		if lines[s.allow.Pos.Line] || lines[s.allow.Pos.Line+1] {
			continue
		}
		pass.Reportf(s.tok, "stale //lint:allow %s: no %s finding on this line or the line below — the hazard was fixed (delete the annotation) or the annotation drifted from the code it excused", s.allow.Analyzer, s.allow.Analyzer)
	}
	return nil
}
