package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// AtomicMix enforces the repository's two memory-ordering hygiene
// rules:
//
//  1. No field may be accessed both through sync/atomic package
//     functions and through plain reads/writes. A mixed field has no
//     memory-order guarantee at all — the plain access races with the
//     atomic one and the race detector only catches the interleavings a
//     test happens to schedule. (Typed atomics — atomic.Uint64 and
//     friends — make the mix inexpressible and are the repository
//     standard; this analyzer guards the legacy pattern's fields.)
//
//  2. No obs instrument may be resolved inside a loop. Registry.Counter/
//     Gauge/Histogram are construction-time lookups (they allocate on
//     first use and take a registry lock); the hot-path contract in
//     internal/obs is "resolve once, hold the pointer". A lookup inside
//     a for/range body turns a per-step increment into a per-step
//     map+mutex operation.
var AtomicMix = &Analyzer{
	Name: "atomicmix",
	Doc: "flag fields accessed both via sync/atomic and plain reads/writes, " +
		"and obs instruments resolved inside loops instead of at " +
		"construction time",
	Run: runAtomicMix,
}

func runAtomicMix(pass *Pass) error {
	checkAtomicPlainMix(pass)
	checkObsInLoop(pass)
	return nil
}

// --- rule 1: atomic/plain mixing -------------------------------------------

func checkAtomicPlainMix(pass *Pass) {
	info := pass.TypesInfo

	// Pass 1: collect struct fields whose address is taken for a
	// sync/atomic call, remembering the selector nodes involved so pass
	// 2 can exempt them.
	atomicFields := make(map[*types.Var]token.Pos) // field -> first atomic use
	atomicUseSites := make(map[*ast.SelectorExpr]bool)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := funcOf(info, call)
			if fn == nil || pkgPathOf(fn) != "sync/atomic" || fn.Type().(*types.Signature).Recv() != nil {
				return true
			}
			for _, arg := range call.Args {
				un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || un.Op != token.AND {
					continue
				}
				sel, ok := ast.Unparen(un.X).(*ast.SelectorExpr)
				if !ok {
					continue
				}
				if fv := fieldOf(info, sel); fv != nil {
					if _, seen := atomicFields[fv]; !seen {
						atomicFields[fv] = sel.Pos()
					}
					atomicUseSites[sel] = true
				}
			}
			return true
		})
	}
	if len(atomicFields) == 0 {
		return
	}

	// Pass 2: any other access to those fields is a plain access.
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || atomicUseSites[sel] {
				return true
			}
			fv := fieldOf(info, sel)
			if fv == nil {
				return true
			}
			if pos, isAtomic := atomicFields[fv]; isAtomic {
				pass.Reportf(sel.Pos(), "field %s is accessed with sync/atomic elsewhere (first at line %d) but plainly here: mixing atomic and plain access forfeits every ordering guarantee — use the atomic API (or a typed atomic) for all accesses",
					fv.Name(), pass.Fset.Position(pos).Line)
			}
			return true
		})
	}
}

// fieldOf resolves sel to the struct field it selects, or nil for
// methods, package qualifiers, and non-field selections.
func fieldOf(info *types.Info, sel *ast.SelectorExpr) *types.Var {
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	return s.Obj().(*types.Var)
}

// --- rule 2: obs instrument resolution in loops ----------------------------

func checkObsInLoop(pass *Pass) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			loopWalk(pass, fd.Body, 0)
		}
	}
}

// loopWalk tracks loop depth through a function body. Function literals
// do not reset the depth: an instrument resolved in a closure created
// inside a loop is still resolved once per iteration.
func loopWalk(pass *Pass, n ast.Node, depth int) {
	ast.Inspect(n, func(x ast.Node) bool {
		switch s := x.(type) {
		case *ast.ForStmt:
			if s.Init != nil {
				loopWalk(pass, s.Init, depth)
			}
			if s.Cond != nil {
				loopWalk(pass, s.Cond, depth)
			}
			if s.Post != nil {
				loopWalk(pass, s.Post, depth+1)
			}
			loopWalk(pass, s.Body, depth+1)
			return false
		case *ast.RangeStmt:
			loopWalk(pass, s.X, depth)
			loopWalk(pass, s.Body, depth+1)
			return false
		case *ast.CallExpr:
			if depth > 0 {
				if name := obsResolveCall(pass.TypesInfo, s); name != "" {
					pass.Reportf(s.Pos(), "obs instrument resolved inside a loop: %s takes the registry lock and hashes the name on every iteration — resolve it once at construction time and reuse the instrument (see internal/obs)", name)
				}
			}
		}
		return true
	})
}

// obsResolveCall recognizes Registry.Counter/Gauge/Histogram calls from
// internal/obs.
func obsResolveCall(info *types.Info, call *ast.CallExpr) string {
	fn := funcOf(info, call)
	if fn == nil {
		return ""
	}
	switch fn.Name() {
	case "Counter", "Gauge", "Histogram":
	default:
		return ""
	}
	sig := fn.Type().(*types.Signature)
	recv := sig.Recv()
	if recv == nil || !strings.HasSuffix(pkgPathOf(fn), "internal/obs") {
		return ""
	}
	t := recv.Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Name() != "Registry" {
		return ""
	}
	return "Registry." + fn.Name()
}
