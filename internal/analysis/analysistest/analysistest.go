// Package analysistest runs one analyzer over a fixture package and
// compares its diagnostics against `// want` expectations embedded in
// the fixture source — the same contract as
// golang.org/x/tools/go/analysis/analysistest, reimplemented on the
// project's own driver so it works in a hermetic build environment.
//
// A fixture lives in testdata/src/<name>/ under the calling test's
// package directory. Each line that should produce a diagnostic carries
// a trailing comment with one or more quoted regular expressions:
//
//	time.Now() // want `time\.Now`
//	x := f()   // want "first finding" "second finding"
//
// The test fails if a diagnostic has no matching expectation on its
// line, or an expectation goes unmatched. Fixtures are typechecked for
// real (they may import module packages such as cqp/internal/wire), so
// a fixture that does not compile fails the test with the type error.
package analysistest

import (
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"cqp/internal/analysis"
	"cqp/internal/analysis/driver"
)

var (
	wantRe   = regexp.MustCompile(`//\s*want\s+(.+)$`)
	quotedRe = regexp.MustCompile("\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`")
)

// expectation is one `// want` pattern awaiting a diagnostic.
type expectation struct {
	re      *regexp.Regexp
	raw     string
	matched bool
}

// Run loads testdata/src/<fixture> (relative to the test's working
// directory), applies the analyzer, and enforces the `// want`
// expectations.
func Run(t *testing.T, a *analysis.Analyzer, fixture string) {
	t.Helper()
	dir := filepath.Join("testdata", "src", fixture)
	modDir, modPath := findModule(t)

	rel, err := filepath.Rel(modDir, mustAbs(t, dir))
	if err != nil {
		t.Fatalf("fixture %s is outside the module: %v", dir, err)
	}
	importPath := modPath + "/" + filepath.ToSlash(rel)

	l := driver.NewLoader(modPath, modDir)
	pkg, err := l.LoadDir(dir, importPath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", fixture, err)
	}

	wants := collectWants(t, dir)

	pass := &analysis.Pass{
		Analyzer:  a,
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Pkg,
		TypesInfo: pkg.Info,
	}
	pass.Report = func(d analysis.Diagnostic) {
		pos := pkg.Fset.Position(d.Pos)
		file := filepath.Base(pos.Filename)
		for _, e := range wants[file][pos.Line] {
			if !e.matched && e.re.MatchString(d.Message) {
				e.matched = true
				return
			}
		}
		t.Errorf("%s:%d: unexpected diagnostic: %s", file, pos.Line, d.Message)
	}
	if err := a.Run(pass); err != nil {
		t.Fatalf("analyzer %s: %v", a.Name, err)
	}

	for file, lines := range wants {
		for line, exps := range lines {
			for _, e := range exps {
				if !e.matched {
					t.Errorf("%s:%d: expected diagnostic matching %s, got none", file, line, e.raw)
				}
			}
		}
	}
}

// collectWants scans the fixture's non-test .go files for `// want`
// comments, keyed by base filename and line.
func collectWants(t *testing.T, dir string) map[string]map[int][]*expectation {
	t.Helper()
	out := make(map[string]map[int][]*expectation)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading fixture dir: %v", err)
	}
	for _, ent := range entries {
		name := ent.Name()
		if ent.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRe.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			lineNo := i + 1
			for _, q := range quotedRe.FindAllString(m[1], -1) {
				pat, err := unquote(q)
				if err != nil {
					t.Fatalf("%s:%d: bad want pattern %s: %v", name, lineNo, q, err)
				}
				re, err := regexp.Compile(pat)
				if err != nil {
					t.Fatalf("%s:%d: bad want regexp %s: %v", name, lineNo, q, err)
				}
				if out[name] == nil {
					out[name] = make(map[int][]*expectation)
				}
				out[name][lineNo] = append(out[name][lineNo], &expectation{re: re, raw: q})
			}
		}
	}
	return out
}

func unquote(q string) (string, error) {
	if strings.HasPrefix(q, "`") {
		return strings.Trim(q, "`"), nil
	}
	return strconv.Unquote(q)
}

// findModule walks up from the working directory to the enclosing
// go.mod and returns its directory and module path.
func findModule(t *testing.T) (dir, path string) {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if data, err := os.ReadFile(filepath.Join(dir, "go.mod")); err == nil {
			first := strings.SplitN(string(data), "\n", 2)[0]
			f := strings.Fields(first)
			if len(f) == 2 && f[0] == "module" {
				return dir, f[1]
			}
			t.Fatalf("malformed go.mod in %s", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above working directory")
		}
		dir = parent
	}
}

func mustAbs(t *testing.T, p string) string {
	t.Helper()
	abs, err := filepath.Abs(p)
	if err != nil {
		t.Fatal(err)
	}
	return abs
}
