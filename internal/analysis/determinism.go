package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// DeterministicPackages are the packages whose behavior must be a pure
// function of their inputs: the evaluation engines, the spatial index,
// the geometry kernel, and the durable store. Replaying the same report
// stream through them must produce bit-identical update streams,
// checksums, and on-disk state — the property the paper's incremental
// update contract, the differential shard test, and crash recovery all
// rest on. Wall-clock time enters the system exclusively at the edges
// (internal/server assigns timestamps; clients report them).
var DeterministicPackages = map[string]bool{
	"cqp/internal/core":       true,
	"cqp/internal/shard":      true,
	"cqp/internal/grid":       true,
	"cqp/internal/geo":        true,
	"cqp/internal/tpr":        true,
	"cqp/internal/repository": true,
}

// Determinism forbids wall-clock and ambient-entropy reads. The driver
// scopes it to DeterministicPackages; run directly (tests) it applies
// to whatever package it is handed.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc: "forbid time.Now/Since/Until, the global math/rand generator, and " +
		"crypto/rand in deterministic packages: evaluation must be a pure " +
		"function of the report stream, so replay and the sharded/single " +
		"differential contract stay exact",
	Run: runDeterminism,
}

// seededRandConstructors are the math/rand entry points that build an
// explicitly seeded generator — the sanctioned way to use randomness in
// deterministic code (e.g. a future randomized index), since the caller
// owns the seed.
var seededRandConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true,
}

func runDeterminism(pass *Pass) error {
	for _, file := range pass.Files {
		if isTestFile(pass.Fset, file.Pos()) {
			// Tests may use clocks and ad-hoc randomness freely; the
			// invariant protects shipped evaluation paths.
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := pass.TypesInfo.Uses[sel.Sel]
			if obj == nil {
				return true
			}
			switch pkgPathOf(obj) {
			case "time":
				if fn, ok := obj.(*types.Func); ok && fn.Type().(*types.Signature).Recv() == nil {
					switch obj.Name() {
					case "Now", "Since", "Until":
						pass.Reportf(sel.Pos(), "call to time.%s in deterministic package %s: evaluation must not read the wall clock (timestamps enter through reports)", obj.Name(), pass.Pkg.Path())
					}
				}
			case "math/rand", "math/rand/v2":
				// Methods on an explicitly constructed *rand.Rand are
				// fine — the caller seeded it. Package-level functions
				// draw from the shared, globally seeded generator.
				if fn, ok := obj.(*types.Func); ok {
					if fn.Type().(*types.Signature).Recv() != nil {
						return true
					}
					if seededRandConstructors[obj.Name()] {
						return true
					}
					pass.Reportf(sel.Pos(), "call to the global %s.%s generator in deterministic package %s: use an explicitly seeded rand.New(rand.NewSource(seed))", shortPkg(pkgPathOf(obj)), obj.Name(), pass.Pkg.Path())
				}
			case "crypto/rand":
				pass.Reportf(sel.Pos(), "use of crypto/rand.%s in deterministic package %s: ambient entropy breaks replay", obj.Name(), pass.Pkg.Path())
			case "cqp/internal/obs":
				// The observability layer's wall clock would reopen the
				// loophole the injected obs.Clock exists to close: metrics
				// may time spans only through a clock handed in by the
				// server/cmd layer (or a test fake).
				if obj.Name() == "WallClock" {
					pass.Reportf(sel.Pos(), "call to obs.WallClock in deterministic package %s: receive an obs.Clock by injection instead of reading the wall clock", pass.Pkg.Path())
				}
			}
			return true
		})
	}
	return nil
}

func shortPkg(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}
