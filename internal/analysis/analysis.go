// Package analysis is the engine's static-analysis suite: a small,
// dependency-free reimplementation of the golang.org/x/tools/go/analysis
// vocabulary (Analyzer, Pass, Diagnostic) plus the five project-specific
// analyzers that mechanically enforce the invariants the paper's update
// contract rests on (see DESIGN.md, "Mechanically enforced invariants"):
//
//   - determinism: no wall-clock or ambient-entropy reads inside the
//     deterministic packages (core, shard, grid, geo, tpr, repository).
//   - maporder: no map-iteration-ordered data may reach an emitted
//     update slice, the wire, or a checksum without being sorted.
//   - locksend: no mutex may be held across a blocking channel
//     operation or a blocking I/O call (the session/outbox deadlock
//     shape).
//   - erradrift: no discarded errors on the storage/wire write paths.
//   - validatefirst: no receiver-state mutation before parameter
//     validation has passed (the applyQueryUpdate bug class).
//   - golifecycle: no fire-and-forget goroutines — every `go` statement
//     needs a provable join/stop path visible from the launch site.
//   - wiresym: wire frame codecs must read and write the same top-level
//     fields in the same order on the encode and decode sides.
//   - atomicmix: no field accessed both via sync/atomic and plainly; no
//     obs instrument resolved inside a loop.
//   - allowaudit: every //lint:allow suppression must be well-formed
//     and still suppress a live finding.
//
// The framework mirrors x/tools deliberately: if the module ever grows a
// dependency on golang.org/x/tools, each Analyzer translates 1:1. It is
// built on the standard library only (go/ast, go/types) so the suite
// runs in hermetic build environments.
//
// Findings are suppressed with an annotation on the offending line or
// the line directly above it:
//
//	//lint:allow <analyzer> <reason>
//
// The reason is mandatory; the driver rejects bare allows.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check, mirroring the x/tools type of the
// same name.
type Analyzer struct {
	// Name identifies the analyzer in findings and in //lint:allow
	// annotations. Lower-case, no spaces.
	Name string

	// Doc is the one-paragraph description shown by cqp-lint -list.
	Doc string

	// Run applies the analyzer to one package, reporting findings
	// through pass.Report.
	Run func(pass *Pass) error
}

// Pass carries one analyzed package through an Analyzer's Run.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report delivers one finding. The driver attaches the analyzer
	// name and resolves the position.
	Report func(Diagnostic)
}

// Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf reports a formatted finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// All returns every analyzer in the suite, in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		Determinism, MapOrder, LockSend, ErrAdrift, ValidateFirst,
		GoLifecycle, WireSym, AtomicMix, AllowAudit,
	}
}

// ByName resolves a comma-separated analyzer name list; unknown names
// return an error.
func ByName(names []string) ([]*Analyzer, error) {
	byName := make(map[string]*Analyzer)
	for _, a := range All() {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, n := range names {
		a, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q", n)
		}
		out = append(out, a)
	}
	return out, nil
}

// --- shared helpers --------------------------------------------------------

// funcOf resolves the called function or method of a call expression,
// or nil for builtins, conversions, and indirect calls through function
// values.
func funcOf(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// rootIdent strips selectors, indexing, stars, and parens down to the
// base identifier of an expression: rootIdent(`(*e.qrys[q]).answer`) is
// `e`. It returns nil when the base is not a plain identifier (e.g. a
// call result).
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// rootObject resolves the types.Object at the root of an expression, or
// nil.
func rootObject(info *types.Info, e ast.Expr) types.Object {
	id := rootIdent(e)
	if id == nil {
		return nil
	}
	if o := info.Uses[id]; o != nil {
		return o
	}
	return info.Defs[id]
}

// pkgPathOf returns the import path of the package defining obj, or ""
// for builtins and universe-scope objects.
func pkgPathOf(obj types.Object) string {
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	return obj.Pkg().Path()
}

// isTestFile reports whether pos lies in a _test.go file.
func isTestFile(fset *token.FileSet, pos token.Pos) bool {
	f := fset.File(pos)
	if f == nil {
		return false
	}
	name := f.Name()
	return len(name) >= len("_test.go") && name[len(name)-len("_test.go"):] == "_test.go"
}
