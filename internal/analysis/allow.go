package analysis

import (
	"go/ast"
	"go/token"
	"regexp"
	"strings"
)

// Suppression annotations. A finding is dropped when the offending
// line, or the line directly above it, carries
//
//	//lint:allow <analyzer> <reason>
//
// with a non-empty reason. The parsing lives here (not in the driver)
// because two consumers need it: the driver filters findings through
// it, and the allowaudit analyzer re-derives raw findings to prove
// every annotation still earns its keep.

// AllowRe matches a suppression comment's shape: analyzer name plus a
// trailing reason. A reason starting with "//" is not a reason — it is
// a bare allow followed by another comment — so callers must also
// check ReasonOK.
var AllowRe = regexp.MustCompile(`^//\s*lint:allow\s+([A-Za-z0-9_-]+)\s+(\S.*)$`)

// ReasonOK reports whether a captured reason is a real one.
func ReasonOK(reason string) bool {
	return reason != "" && !strings.HasPrefix(reason, "//")
}

// allowAnyRe matches anything that is trying to be a suppression,
// well-formed or not; allowaudit uses it to catch reason-less allows.
var allowAnyRe = regexp.MustCompile(`^//\s*lint:allow\b`)

// Allow is one parsed //lint:allow annotation.
type Allow struct {
	Pos      token.Position
	Analyzer string
	Reason   string
}

// AllowSet maps file -> line -> set of analyzer names allowed there.
type AllowSet map[string]map[int]map[string]bool

// Allowed reports whether a finding by analyzer at pos is suppressed by
// an annotation on its line or the line directly above.
func (s AllowSet) Allowed(analyzer string, pos token.Position) bool {
	lines := s[pos.Filename]
	if lines == nil {
		return false
	}
	return lines[pos.Line][analyzer] || lines[pos.Line-1][analyzer]
}

func (s AllowSet) add(a Allow) {
	lines := s[a.Pos.Filename]
	if lines == nil {
		lines = make(map[int]map[string]bool)
		s[a.Pos.Filename] = lines
	}
	set := lines[a.Pos.Line]
	if set == nil {
		set = make(map[string]bool)
		lines[a.Pos.Line] = set
	}
	set[a.Analyzer] = true
}

// CollectAllows parses every well-formed //lint:allow annotation in
// files into a position-indexed set.
func CollectAllows(fset *token.FileSet, files []*ast.File) AllowSet {
	out := make(AllowSet)
	for _, a := range ParseAllows(fset, files) {
		out.add(a)
	}
	return out
}

// ParseAllows returns every well-formed //lint:allow annotation in
// files, in file order. Malformed annotations (no reason) are excluded;
// allowaudit reports those separately.
func ParseAllows(fset *token.FileSet, files []*ast.File) []Allow {
	var out []Allow
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, cm := range cg.List {
				m := AllowRe.FindStringSubmatch(cm.Text)
				if m == nil || !ReasonOK(m[2]) {
					continue
				}
				out = append(out, Allow{
					Pos:      fset.Position(cm.Pos()),
					Analyzer: m[1],
					Reason:   m[2],
				})
			}
		}
	}
	return out
}
