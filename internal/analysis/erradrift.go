package analysis

import (
	"go/ast"
	"go/types"
)

// ErrAdrift flags discarded errors on the durable write paths: any call
// into internal/storage, internal/wire, or internal/repository whose
// final error result is dropped — either as a bare expression statement
// or assigned wholesale to blanks. A lost storage error silently
// diverges the durable committed answer from the engine's; a lost wire
// error leaves a session undead, streaming into a void. Close errors
// are exempt (teardown paths routinely discard them after a prior
// failure).
var ErrAdrift = &Analyzer{
	Name: "erradrift",
	Doc: "flag discarded errors from storage/wire/repository write paths: " +
		"a dropped durable-write or frame-write error desynchronizes " +
		"recovery state",
	Run: runErrAdrift,
}

// errAdriftPkgSuffixes are the package paths whose error results must be
// consumed.
var errAdriftPkgSuffixes = []string{
	"internal/storage",
	"internal/wire",
	"internal/repository",
}

func runErrAdrift(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.ExprStmt:
				if call, ok := x.X.(*ast.CallExpr); ok {
					checkDiscard(pass, call)
				}
			case *ast.AssignStmt:
				// _ = f() and _, _ = f(): every result blanked.
				allBlank := true
				for _, lhs := range x.Lhs {
					id, ok := lhs.(*ast.Ident)
					if !ok || id.Name != "_" {
						allBlank = false
						break
					}
				}
				if allBlank && len(x.Rhs) == 1 {
					if call, ok := x.Rhs[0].(*ast.CallExpr); ok {
						checkDiscard(pass, call)
					}
				}
			case *ast.DeferStmt:
				checkDiscard(pass, x.Call)
			case *ast.GoStmt:
				checkDiscard(pass, x.Call)
			}
			return true
		})
	}
	return nil
}

func checkDiscard(pass *Pass, call *ast.CallExpr) {
	fn := funcOf(pass.TypesInfo, call)
	if fn == nil || fn.Name() == "Close" {
		return
	}
	path := pkgPathOf(fn)
	inScope := false
	for _, suf := range errAdriftPkgSuffixes {
		if hasSuffix(path, suf) {
			inScope = true
			break
		}
	}
	if !inScope {
		return
	}
	sig := fn.Type().(*types.Signature)
	res := sig.Results()
	if res.Len() == 0 {
		return
	}
	if !isErrorType(res.At(res.Len() - 1).Type()) {
		return
	}
	pass.Reportf(call.Pos(), "error from %s.%s discarded: storage/wire write-path errors must be handled (or the discard annotated)", shortPkg(path), fn.Name())
}

func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}
