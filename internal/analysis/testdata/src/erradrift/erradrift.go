// Fixture for the erradrift analyzer: errors from the storage and wire
// write paths must be consumed; Close is exempt.
package erradrift

import (
	"cqp/internal/storage"
	"cqp/internal/wire"
)

func dropWrite(w *wire.Writer, m wire.Message) {
	w.Write(m) // want `error from wire\.Write discarded`
}

func blankWrite(w *wire.Writer, m wire.Message) {
	_ = w.Write(m) // want `error from wire\.Write discarded`
}

func deferredWrite(w *wire.Writer, m wire.Message) {
	defer w.Write(m) // want `error from wire\.Write discarded`
}

func handledWrite(w *wire.Writer, m wire.Message) error {
	if err := w.Write(m); err != nil {
		return err
	}
	return nil
}

func dropRead(r *wire.Reader) {
	r.Read() // want `error from wire\.Read discarded`
}

func capturedRead(r *wire.Reader) (wire.Message, error) {
	return r.Read()
}

func dropSync(t *storage.BTree) {
	t.Sync() // want `error from storage\.Sync discarded`
}

func handledSync(t *storage.BTree) error {
	return t.Sync()
}

// closeExempt: teardown paths routinely discard Close errors after a
// prior failure; the analyzer leaves them alone.
func closeExempt(t *storage.BTree) {
	defer t.Close()
}
