// Fixture for the determinism analyzer: wall-clock reads, the global
// math/rand generator, and crypto/rand are forbidden; explicitly seeded
// generators and time arithmetic on report-carried values are fine.
package determinism

import (
	crand "crypto/rand"
	"math/rand"
	"time"

	"cqp/internal/obs"
)

func wallClock() time.Time {
	return time.Now() // want `time\.Now`
}

func elapsed(start time.Time) time.Duration {
	return time.Since(start) // want `time\.Since`
}

func deadline(t time.Time) time.Duration {
	return time.Until(t) // want `time\.Until`
}

func globalRand() int {
	return rand.Intn(10) // want `global rand\.Intn generator`
}

func globalFloat() float64 {
	return rand.Float64() // want `global rand\.Float64 generator`
}

func ambientEntropy(b []byte) {
	crand.Read(b) // want `crypto/rand\.Read`
}

// seededRand is the sanctioned idiom: the caller owns the seed, so
// replay reproduces the draw sequence.
func seededRand(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(10)
}

// timeArithmetic only manipulates values that entered via reports.
func timeArithmetic(t time.Time, d time.Duration) time.Time {
	return t.Add(d * 2)
}

func obsLoophole() int64 {
	return obs.WallClock() // want `obs\.WallClock`
}

// injectedClock is the sanctioned metrics-timing idiom: the clock is
// handed in by the server/cmd layer (or a test fake), never read here.
func injectedClock(c obs.Clock) int64 {
	if c == nil {
		return 0
	}
	return c()
}
