// Fixture for the allowaudit analyzer: every //lint:allow must be
// well-formed (known analyzer, real reason) and must still suppress a
// live finding on its line or the line below.
package allowaudit

import "sync"

type box struct {
	mu sync.Mutex
	ch chan int
}

// justified: the allow sits directly above a live locksend finding, so
// it earns its keep and allowaudit stays silent about it.
func (b *box) justified() {
	b.mu.Lock()
	//lint:allow locksend fixture: the receiver is drained by a dedicated goroutine and the buffer bounds the send
	b.ch <- 1
	b.mu.Unlock()
}

// fixedLongAgo: the send no longer happens under the lock — the hazard
// this allow excused was refactored away, so the annotation is stale.
func (b *box) fixedLongAgo() {
	//lint:allow locksend the send used to happen under b.mu // want `stale //lint:allow locksend`
	b.ch <- 1
}

// A suppression without a reason is indistinguishable from a silenced
// finding; the trailing comment below is not a reason.
//lint:allow maporder // want `reason-less //lint:allow`
func bare() {}

// A typoed analyzer name suppresses nothing.
//lint:allow maporedr iteration order does not matter here // want `unknown analyzer "maporedr"`
func typo() {}
