// Fixture for the validatefirst analyzer: receiver state must not be
// mutated before the method's parameter validation has passed.
package validatefirst

type registry struct {
	kinds map[int]int
	count int
}

type update struct {
	ID   int
	Kind int
}

func valid(u update) bool { return u.Kind >= 0 && u.Kind <= 2 }

// applyKindDispatchBad registers the update before the kind switch has
// rejected malformed input — the applyQueryUpdate bug class.
func (r *registry) applyKindDispatchBad(u update) {
	r.kinds[u.ID] = u.Kind // want `mutated before the parameter validation`
	switch u.Kind {
	case 0, 1, 2:
	default:
		return
	}
}

// applyKindDispatchGood rejects first, then mutates.
func (r *registry) applyKindDispatchGood(u update) {
	switch u.Kind {
	case 0, 1, 2:
	default:
		return
	}
	r.kinds[u.ID] = u.Kind
}

// applyValidatorBad bumps a counter before the validator has run.
func (r *registry) applyValidatorBad(u update) {
	r.count++ // want `mutated before the parameter validation`
	if !valid(u) {
		return
	}
	r.kinds[u.ID] = u.Kind
}

// applyValidatorGood validates first.
func (r *registry) applyValidatorGood(u update) {
	if !valid(u) {
		return
	}
	r.count++
	r.kinds[u.ID] = u.Kind
}

// deleteBeforeGuard tears down state for input that may yet be
// rejected.
func (r *registry) deleteBeforeGuard(u update) {
	delete(r.kinds, u.ID) // want `mutated before the parameter validation`
	switch u.Kind {
	case 0:
	default:
		return
	}
}

// noGuard: without a recognizable validation guard the analyzer stays
// silent — precision over recall.
func (r *registry) noGuard(u update) {
	r.kinds[u.ID] = u.Kind
	r.count++
}
