// Fixture for the maporder analyzer: map-range bodies must not feed
// emitted update slices, wire writes, or checksum folds without a
// canonicalizing sort.
package maporder

import (
	"bufio"
	"sort"
)

// Update mirrors the engines' emitted-update element; the analyzer
// matches any named struct called Update.
type Update struct {
	Query  int
	Object int
}

// emitUnsorted appends in map iteration order and never sorts: the
// client-visible stream would differ between runs.
func emitUnsorted(m map[int]bool) []Update {
	var out []Update
	for q := range m {
		out = append(out, Update{Query: q}) // want `append to emitted update slice in map iteration order`
	}
	return out
}

// emitSorted is the canonicalization idiom: the append is fine because
// the slice is sorted before it escapes.
func emitSorted(m map[int]bool) []Update {
	var out []Update
	for q := range m {
		out = append(out, Update{Query: q})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Query < out[j].Query })
	return out
}

// checksumFold accumulates a ^= fold in map order; unless the fold is
// provably commutative (and annotated), that is a reproducibility bug.
func checksumFold(m map[uint64]bool) uint64 {
	var sum uint64
	for id := range m {
		sum ^= id * 0x9e3779b9 // want `checksum accumulated in map iteration order`
	}
	return sum
}

// forwardSink passes the emission buffer to a callee inside the loop:
// emission order still depends on map traversal.
func forwardSink(m map[int]bool, out *[]Update) {
	for q := range m {
		collect(out, q) // want `call forwards an update sink`
	}
}

func collect(out *[]Update, q int) {
	*out = append(*out, Update{Query: q})
}

// wireWrite frames output in map iteration order.
func wireWrite(m map[int]string, w *bufio.Writer) {
	for _, s := range m {
		w.WriteString(s) // want `bufio\.WriteString on the wire in map iteration order`
	}
}

// sliceRange is not a map range: ordered iteration is fine.
func sliceRange(in []int) []Update {
	var out []Update
	for _, q := range in {
		out = append(out, Update{Query: q})
	}
	return out
}

// plainAccumulate appends non-Update data: not an emitted stream.
func plainAccumulate(m map[int]bool) []int {
	var out []int
	for q := range m {
		out = append(out, q)
	}
	sort.Ints(out)
	return out
}
