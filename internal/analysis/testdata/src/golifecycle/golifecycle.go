// Fixture for the golifecycle analyzer: every `go` statement must have
// a provable join/stop path — a WaitGroup, a channel operation, a
// select, or context cancellation reachable from the launch.
package golifecycle

import (
	"context"
	"sync"
)

type worker struct {
	wg   sync.WaitGroup
	cmd  chan int
	done chan struct{}
}

// fireAndForget has no join or stop path at all.
func fireAndForget() {
	go func() { // want `goroutine launched with no join/stop path`
		println("leaked")
	}()
}

// waitGroupJoin is the canonical Add/Done pairing.
func (w *worker) waitGroupJoin() {
	w.wg.Add(1)
	go func() {
		defer w.wg.Done()
		println("work")
	}()
}

// doneChannelJoin signals completion by closing a channel.
func (w *worker) doneChannelJoin() {
	go func() {
		defer close(w.done)
		println("work")
	}()
}

// methodWithStopLoop: the callee's body ranges over a channel the owner
// closes; the analyzer follows same-package callees.
func (w *worker) start() {
	go w.run()
}

func (w *worker) run() {
	for c := range w.cmd {
		_ = c
	}
}

// contextCancel selects on ctx.Done.
func contextCancel(ctx context.Context) {
	go func() {
		select {
		case <-ctx.Done():
		}
	}()
}

// stopCapableArg: the callee body is out of reach (a func value), but a
// stop channel travels with the launch — evidence enough.
func stopCapableArg(f func(stop <-chan struct{}), stop chan struct{}) {
	go f(stop)
}

// resultHandoff blocks on delivering its result: joinable.
func resultHandoff(res chan int) {
	go func() { res <- 42 }()
}

// indirectLeak launches a same-package callee that has no lifecycle
// either; the analyzer recurses and still finds nothing.
func indirectLeak() {
	go spin() // want `goroutine launched with no join/stop path`
}

func spin() {
	for i := 0; ; i++ {
		_ = i
	}
}

// nestedLaunchIsNotEvidence: the inner goroutine's channel send belongs
// to the inner goroutine — it must not excuse the outer launch, which
// loops forever with no stop path of its own.
func nestedLaunchIsNotEvidence(out chan int) {
	go func() { // want `goroutine launched with no join/stop path`
		for {
			go func() { out <- 1 }()
		}
	}()
}
