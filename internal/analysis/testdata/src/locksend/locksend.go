// Fixture for the locksend analyzer: a mutex must not be held across a
// blocking channel operation or blocking I/O.
package locksend

import (
	"bufio"
	"sync"
	"time"
)

type box struct {
	mu  sync.Mutex
	rw  sync.RWMutex
	ch  chan int
	val int
}

// sendUnderLock is the outbox deadlock shape.
func (b *box) sendUnderLock() {
	b.mu.Lock()
	b.ch <- 1 // want `channel send while holding b\.mu`
	b.mu.Unlock()
}

// sendAfterUnlock drains outside the critical section: correct.
func (b *box) sendAfterUnlock() {
	b.mu.Lock()
	b.val++
	b.mu.Unlock()
	b.ch <- 1
}

// deferredUnlockSend: a deferred unlock holds to function end, so the
// send is under the lock.
func (b *box) deferredUnlockSend() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.ch <- 1 // want `channel send while holding b\.mu`
}

// nonBlockingSelect: a select with a default clause cannot block.
func (b *box) nonBlockingSelect() {
	b.mu.Lock()
	select {
	case b.ch <- 1:
	default:
		b.val++
	}
	b.mu.Unlock()
}

// recvUnderLock blocks on a receive while holding a read lock.
func (b *box) recvUnderLock() int {
	b.rw.RLock()
	v := <-b.ch // want `channel receive while holding b\.rw`
	b.rw.RUnlock()
	return v
}

// sleepUnderLock stalls every other contender for the duration.
func (b *box) sleepUnderLock() {
	b.mu.Lock()
	time.Sleep(time.Millisecond) // want `time\.Sleep while holding b\.mu`
	b.mu.Unlock()
}

// flushUnderLock blocks on I/O (a stalled peer) under the lock.
func (b *box) flushUnderLock(w *bufio.Writer) {
	b.mu.Lock()
	defer b.mu.Unlock()
	w.Flush() // want `blocking bufio Flush while holding b\.mu`
}

// goroutineIsSeparate: the literal runs on its own goroutine with its
// own lock discipline; the outer lock does not extend into it.
func (b *box) goroutineIsSeparate() {
	b.mu.Lock()
	go func() {
		b.ch <- 1
	}()
	b.mu.Unlock()
}

// rangeChanUnderLock blocks on every iteration.
func (b *box) rangeChanUnderLock() {
	b.mu.Lock()
	defer b.mu.Unlock()
	for v := range b.ch { // want `range over channel while holding b\.mu`
		b.val += v
	}
}
