// Fixture for the wiresym analyzer: the encoder's type switch and the
// decoder's tag switch must touch each message's fields in the same
// order. The mini protocol below mirrors internal/wire's shape —
// append-style encode, cursor-style decode, shared per-type helpers.
package wiresym

type MsgType uint8

const (
	MsgPing MsgType = iota
	MsgAssign
	MsgBatch
	MsgSnapshot
)

type Rect struct{ MinX, MinY, MaxX, MaxY float64 }

type Ping struct{ Seq uint64 }

type Assign struct {
	Tile  uint32
	Max   float64
	Epoch uint64
	Area  Rect
}

type Batch struct {
	Time    float64
	Updates []uint64
}

type Snapshot struct {
	Tile  uint32
	Batch Batch
}

type Message interface{ msgType() MsgType }

func (Ping) msgType() MsgType     { return MsgPing }
func (Assign) msgType() MsgType   { return MsgAssign }
func (Batch) msgType() MsgType    { return MsgBatch }
func (Snapshot) msgType() MsgType { return MsgSnapshot }

func appendU32(b []byte, v uint32) []byte { return append(b, byte(v>>24), byte(v>>16), byte(v>>8), byte(v)) }
func appendU64(b []byte, v uint64) []byte { return appendU32(appendU32(b, uint32(v>>32)), uint32(v)) }
func appendF64(b []byte, v float64) []byte { return appendU64(b, uint64(v)) }

type decoder struct {
	b []byte
	i int
}

func (d *decoder) u32() uint32 {
	v := uint32(d.b[d.i])<<24 | uint32(d.b[d.i+1])<<16 | uint32(d.b[d.i+2])<<8 | uint32(d.b[d.i+3])
	d.i += 4
	return v
}
func (d *decoder) u64() uint64 { return uint64(d.u32())<<32 | uint64(d.u32()) }
func (d *decoder) f64() float64 { return float64(d.u64()) }

func appendMessage(b []byte, m Message) []byte {
	switch m := m.(type) {
	case Ping:
		b = appendU64(b, m.Seq)
	case Assign:
		b = appendU32(b, m.Tile)
		b = appendF64(b, m.Max)
		b = appendU64(b, m.Epoch)
		b = appendF64(b, m.Area.MinX)
		b = appendF64(b, m.Area.MinY)
		b = appendF64(b, m.Area.MaxX)
		b = appendF64(b, m.Area.MaxY)
	case Batch:
		b = appendBatch(b, m)
	case Snapshot:
		b = appendU32(b, m.Tile)
		b = appendBatch(b, m.Batch)
	}
	return b
}

// appendBatch is a whole-message helper: its field touches count as the
// caller's when the caller hands it the entire message value.
func appendBatch(b []byte, m Batch) []byte {
	b = appendF64(b, m.Time)
	b = appendU32(b, uint32(len(m.Updates)))
	for _, u := range m.Updates {
		b = appendU64(b, u)
	}
	return b
}

func decodeMessage(t MsgType, d *decoder) Message {
	switch t {
	case MsgPing:
		return Ping{Seq: d.u64()}
	case MsgAssign: // want `wire codec asymmetry for Assign: encode writes \[Tile Max Epoch Area\] but decode reads \[Tile Epoch Max Area\]`
		var m Assign
		m.Tile = d.u32()
		m.Epoch = d.u64() // drifted: encode writes Max before Epoch
		m.Max = d.f64()
		m.Area = Rect{MinX: d.f64(), MinY: d.f64(), MaxX: d.f64(), MaxY: d.f64()}
		return m
	case MsgBatch:
		m := decodeBatch(d)
		return m
	case MsgSnapshot:
		var m Snapshot
		m.Tile = d.u32()
		m.Batch = decodeBatch(d)
		return m
	}
	return nil
}

// decodeBatch mirrors appendBatch; the analyzer follows it when its
// result becomes the whole decoded message.
func decodeBatch(d *decoder) Batch {
	var m Batch
	m.Time = d.f64()
	n := int(d.u32())
	m.Updates = make([]uint64, 0, n)
	for i := 0; i < n; i++ {
		m.Updates = append(m.Updates, d.u64())
	}
	return m
}
