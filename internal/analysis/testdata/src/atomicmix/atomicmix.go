// Fixture for the atomicmix analyzer: no field may be accessed both
// via sync/atomic and plainly, and no obs instrument may be resolved
// inside a loop.
package atomicmix

import (
	"sync/atomic"

	"cqp/internal/obs"
)

type counters struct {
	hits  uint64        // accessed via atomic.AddUint64 — must stay atomic everywhere
	safe  atomic.Uint64 // typed atomic: the mix is inexpressible
	plain int           // never touched atomically
}

func (c *counters) bump() {
	atomic.AddUint64(&c.hits, 1)
}

// plainRead races with bump: the mixed access the analyzer exists for.
func (c *counters) plainRead() uint64 {
	return c.hits // want `field hits is accessed with sync/atomic elsewhere`
}

// atomicRead uses the atomic API throughout: fine.
func (c *counters) atomicRead() uint64 {
	return atomic.LoadUint64(&c.hits)
}

// typedAndPlain: typed atomics and untouched fields are never flagged.
func (c *counters) typedAndPlain() {
	c.safe.Add(1)
	c.plain++
}

// metrics resolves its instruments once, at construction time — the
// internal/obs hot-path contract.
type metrics struct {
	steps *obs.Counter
	depth *obs.Gauge
}

func newMetrics(r *obs.Registry) *metrics {
	return &metrics{
		steps: r.Counter("engine.steps"),
		depth: r.Gauge("engine.depth"),
	}
}

// hotLoop re-resolves on every iteration: flagged. The pre-resolved
// instrument next to it is the sanctioned idiom.
func (m *metrics) hotLoop(r *obs.Registry, n int) {
	for i := 0; i < n; i++ {
		r.Counter("engine.steps").Inc() // want `obs instrument resolved inside a loop`
		m.steps.Inc()
	}
}

// rangeClosure: a closure built inside a range loop still resolves once
// per iteration — depth does not reset at the func literal.
func (m *metrics) rangeClosure(r *obs.Registry, vs []int64) {
	for _, v := range vs {
		f := func() { m.depth.Set(v) }
		f()
		_ = func() { r.Gauge("engine.depth").Set(v) } // want `obs instrument resolved inside a loop`
	}
}
