package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MapOrder flags `range` loops over maps whose bodies feed
// order-sensitive sinks — the exact bug class that desynchronizes
// clients: the server's contract is that every client sees a
// reproducible update stream, so nothing that reaches an emitted
// []Update, the wire, or a checksum may inherit Go's randomized map
// iteration order.
//
// A loop is reported when its body
//
//   - appends to a slice of Update values (directly or through *[]Update),
//   - calls a function passing a []Update, *[]Update, or a struct
//     carrying a []Update field (the engines' out-parameters and merge
//     state),
//   - writes to the wire (a Write/Flush method from internal/wire, net,
//     or bufio), or
//   - accumulates a checksum with a ^= fold,
//
// unless the appended-to slice is sorted later in the same function
// (sort.Slice / sort.SliceStable / sort.Sort / slices.Sort*), which is
// the canonicalization idiom used across the repository.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc: "flag map-ordered iteration feeding emitted update slices, wire " +
		"writes, or checksums without an intervening sort — map order must " +
		"never reach a client-visible stream",
	Run: runMapOrder,
}

func runMapOrder(pass *Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFuncMapOrder(pass, fd.Body)
		}
	}
	return nil
}

func checkFuncMapOrder(pass *Pass, body *ast.BlockStmt) {
	info := pass.TypesInfo
	ast.Inspect(body, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		if _, isMap := info.TypeOf(rs.X).Underlying().(*types.Map); !isMap {
			return true
		}
		reportMapOrderSinks(pass, body, rs)
		return true
	})
}

// reportMapOrderSinks inspects one map-range body for order-sensitive
// sinks and reports each, unless a later sort in the enclosing function
// canonicalizes the sink slice.
func reportMapOrderSinks(pass *Pass, fn *ast.BlockStmt, rs *ast.RangeStmt) {
	info := pass.TypesInfo
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			return false // separate execution context
		case *ast.AssignStmt:
			if x.Tok == token.XOR_ASSIGN {
				pass.Reportf(x.Pos(), "checksum accumulated in map iteration order: if the fold is not order-independent the checksum diverges between runs (sort the keys, or annotate a commutative fold)")
				return true
			}
			// out = append(out, ...) where out carries updates.
			for i, rhs := range x.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok || !isAppendCall(info, call) || i >= len(x.Lhs) {
					continue
				}
				lhs := x.Lhs[i]
				t := info.TypeOf(lhs)
				if t != nil && isUpdateSlice(t) {
					if sortedAfter(pass, fn, rs, lhs) {
						continue
					}
					pass.Reportf(x.Pos(), "append to emitted update slice in map iteration order without a later sort: clients would see irreproducible streams")
				}
			}
		case *ast.CallExpr:
			if isAppendCall(info, x) {
				return true // handled at the AssignStmt
			}
			if recvPkg, name := wireWriteMethod(info, x); name != "" {
				pass.Reportf(x.Pos(), "%s.%s on the wire in map iteration order: frame order must not depend on map traversal", recvPkg, name)
				return true
			}
			for _, arg := range x.Args {
				t := info.TypeOf(arg)
				if t == nil {
					continue
				}
				if carriesUpdateSlice(t) {
					pass.Reportf(x.Pos(), "call forwards an update sink (%s) in map iteration order: emission order must not depend on map traversal (iterate sorted keys)", types.TypeString(t, types.RelativeTo(pass.Pkg)))
					break
				}
			}
		}
		return true
	})
}

// isAppendCall reports whether call is the builtin append.
func isAppendCall(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// isUpdateSlice reports whether t is []Update or *[]Update for a named
// struct type called Update (the engines' emitted-update element).
func isUpdateSlice(t types.Type) bool {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	return isNamedUpdate(s.Elem())
}

func isNamedUpdate(t types.Type) bool {
	n, ok := t.(*types.Named)
	return ok && n.Obj().Name() == "Update"
}

// carriesUpdateSlice reports whether t is (a pointer to) a []Update or
// a struct with a []Update field one level deep — the shapes through
// which the engines pass their emission buffers (out *[]Update,
// *mergeState{out []Update}, wire.UpdateBatch{Updates []Update}).
func carriesUpdateSlice(t types.Type) bool {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	if isUpdateSlice(t) {
		return true
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		ft := st.Field(i).Type()
		if s, ok := ft.Underlying().(*types.Slice); ok && isNamedUpdate(s.Elem()) {
			return true
		}
	}
	return false
}

// wireWriteMethod reports a Write/Flush method call whose receiver type
// is defined in internal/wire, net, or bufio.
func wireWriteMethod(info *types.Info, call *ast.CallExpr) (pkg, name string) {
	fn := funcOf(info, call)
	if fn == nil || fn.Type().(*types.Signature).Recv() == nil {
		return "", ""
	}
	switch fn.Name() {
	case "Write", "Flush", "WriteString", "WriteByte":
	default:
		return "", ""
	}
	switch p := pkgPathOf(fn); {
	case p == "net" || p == "bufio":
		return p, fn.Name()
	case len(p) >= len("internal/wire") && p[len(p)-len("internal/wire"):] == "internal/wire":
		return "wire", fn.Name()
	}
	return "", ""
}

// sortedAfter reports whether the slice rooted at sink is passed to a
// sort call after the range loop, in the same function body.
func sortedAfter(pass *Pass, fn *ast.BlockStmt, rs *ast.RangeStmt, sink ast.Expr) bool {
	root := rootObject(pass.TypesInfo, sink)
	if root == nil {
		return false
	}
	found := false
	ast.Inspect(fn, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() || len(call.Args) == 0 {
			return true
		}
		if !isSortCall(pass.TypesInfo, call) {
			return true
		}
		if rootObject(pass.TypesInfo, call.Args[0]) == root {
			found = true
			return false
		}
		return true
	})
	return found
}

func isSortCall(info *types.Info, call *ast.CallExpr) bool {
	fn := funcOf(info, call)
	if fn == nil {
		return false
	}
	switch pkgPathOf(fn) {
	case "sort":
		switch fn.Name() {
		case "Slice", "SliceStable", "Sort", "Stable", "Ints", "Strings", "Float64s":
			return true
		}
	case "slices":
		switch fn.Name() {
		case "Sort", "SortFunc", "SortStableFunc":
			return true
		}
	}
	// Project-local canonicalizers: core.SortUpdates and friends.
	return fn.Name() == "SortUpdates"
}
