package driver_test

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestVettoolUnitchecker exercises the cmd/go integration end to end:
// cqp-lint is built once, then driven through `go vet -vettool=` — the
// unitchecker protocol (-V=full probe, per-package .cfg, exit 2 on
// findings) — against a clean module package and against a scratch
// module carrying a leaky goroutine that golifecycle must flag.
func TestVettoolUnitchecker(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary and shells out to go vet")
	}
	modDir := moduleRoot(t)
	bin := filepath.Join(t.TempDir(), "cqp-lint")

	build := exec.Command("go", "build", "-o", bin, "./cmd/cqp-lint")
	build.Dir = modDir
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building cqp-lint: %v\n%s", err, out)
	}

	t.Run("clean package", func(t *testing.T) {
		vet := exec.Command("go", "vet", "-vettool="+bin, "./internal/geo/")
		vet.Dir = modDir
		if out, err := vet.CombinedOutput(); err != nil {
			t.Fatalf("go vet on a clean package failed: %v\n%s", err, out)
		}
	})

	t.Run("leaky module", func(t *testing.T) {
		dir := t.TempDir()
		writeFile(t, filepath.Join(dir, "go.mod"), "module leaky\n\ngo 1.21\n")
		writeFile(t, filepath.Join(dir, "leaky.go"), `package leaky

func Leak() {
	go func() {
		for {
		}
	}()
}
`)
		vet := exec.Command("go", "vet", "-vettool="+bin, "./...")
		vet.Dir = dir
		var out bytes.Buffer
		vet.Stdout = &out
		vet.Stderr = &out
		err := vet.Run()
		if err == nil {
			t.Fatalf("go vet accepted a leaky goroutine; output:\n%s", out.String())
		}
		if !strings.Contains(out.String(), "no join/stop path") {
			t.Fatalf("vet failed but not with the golifecycle finding:\n%s", out.String())
		}
	})
}

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

// moduleRoot walks up from the working directory to the enclosing
// go.mod.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above working directory")
		}
		dir = parent
	}
}
