// Package driver loads module packages with full type information and
// runs the cqp analysis suite over them. It exists because the build
// environment is hermetic: there is no golang.org/x/tools, so the
// loading half of go/packages is reimplemented here on go/parser +
// go/types + go/importer. Standard-library dependencies are typechecked
// from source (srcimporter); module-internal imports ("cqp/...") are
// resolved against the module directory and cached.
//
// The driver owns two policies the analyzers themselves deliberately do
// not encode, so that tests can run analyzers directly on fixtures:
//
//   - package scoping: the determinism analyzer applies only to
//     analysis.DeterministicPackages; the others apply everywhere;
//
//   - suppression: a finding is dropped when the offending line, or the
//     line directly above it, carries
//
//     //lint:allow <analyzer> <reason>
//
//     with a non-empty reason. A bare "//lint:allow analyzer" does not
//     suppress anything (the driver has no way to tell a justified
//     exception from a silenced one).
package driver

import (
	"fmt"
	"go/build"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"cqp/internal/analysis"
)

func init() {
	// The source importer consults build.Default; with cgo enabled it
	// would try to resolve the cgo halves of net/os/user and fail in a
	// toolchain-only container. The pure-Go variants typecheck fine.
	build.Default.CgoEnabled = false
}

// Finding is one diagnostic surviving //lint:allow filtering.
type Finding struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
}

// Config describes one lint run.
type Config struct {
	// ModulePath is the module's import path prefix ("cqp").
	ModulePath string
	// ModuleDir is the directory holding go.mod.
	ModuleDir string
	// Analyzers to run; defaults to analysis.All().
	Analyzers []*analysis.Analyzer
	// Scope restricts an analyzer (by name) to a set of package import
	// paths; analyzers absent from the map run everywhere. Defaults to
	// DefaultScope().
	Scope map[string]map[string]bool
}

// DefaultScope is the production scoping: determinism applies only to
// the deterministic packages.
func DefaultScope() map[string]map[string]bool {
	return map[string]map[string]bool{
		analysis.Determinism.Name: analysis.DeterministicPackages,
	}
}

// Run expands patterns ("./..." for the whole module, "./internal/core"
// or "cqp/internal/core" for one package), loads each package, and runs
// the configured analyzers. Findings come back sorted by position. The
// error reports load or typecheck failures, not findings.
func (c *Config) Run(patterns []string) ([]Finding, error) {
	if c.Analyzers == nil {
		c.Analyzers = analysis.All()
	}
	if c.Scope == nil {
		c.Scope = DefaultScope()
	}
	paths, err := c.expand(patterns)
	if err != nil {
		return nil, err
	}
	l := NewLoader(c.ModulePath, c.ModuleDir)
	var findings []Finding
	for _, path := range paths {
		pkg, err := l.Load(path)
		if err != nil {
			return nil, fmt.Errorf("loading %s: %w", path, err)
		}
		fs, err := c.LintPackage(pkg)
		if err != nil {
			return nil, err
		}
		findings = append(findings, fs...)
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return findings, nil
}

// LintPackage applies every in-scope analyzer to one loaded package and
// filters findings through the //lint:allow annotations. It is the
// per-package half of Run, exported for the unitchecker mode of
// cmd/cqp-lint, which loads packages through cmd/go's export data
// rather than this driver's loader.
func (c *Config) LintPackage(pkg *Package) ([]Finding, error) {
	allows := analysis.CollectAllows(pkg.Fset, pkg.Files)
	var findings []Finding
	for _, a := range c.Analyzers {
		if scope, ok := c.Scope[a.Name]; ok && !scope[pkg.Path] {
			continue
		}
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Pkg,
			TypesInfo: pkg.Info,
		}
		pass.Report = func(d analysis.Diagnostic) {
			pos := pkg.Fset.Position(d.Pos)
			if allows.Allowed(a.Name, pos) {
				return
			}
			findings = append(findings, Finding{Pos: pos, Analyzer: a.Name, Message: d.Message})
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s on %s: %w", a.Name, pkg.Path, err)
		}
	}
	return findings, nil
}

// expand resolves command-line patterns to module package import paths.
func (c *Config) expand(patterns []string) ([]string, error) {
	seen := make(map[string]bool)
	var out []string
	add := func(p string) {
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	for _, pat := range patterns {
		switch {
		case pat == "./..." || pat == "...":
			all, err := modulePackages(c.ModulePath, c.ModuleDir)
			if err != nil {
				return nil, err
			}
			for _, p := range all {
				add(p)
			}
		case pat == ".":
			add(c.ModulePath)
		case strings.HasPrefix(pat, "./"):
			add(c.ModulePath + "/" + filepath.ToSlash(strings.TrimPrefix(pat, "./")))
		case pat == c.ModulePath || strings.HasPrefix(pat, c.ModulePath+"/"):
			add(pat)
		default:
			return nil, fmt.Errorf("unrecognized package pattern %q (use ./..., ./dir, or %s/dir)", pat, c.ModulePath)
		}
	}
	return out, nil
}

// modulePackages walks the module tree and returns the import path of
// every directory containing at least one non-test .go file, skipping
// testdata and hidden directories.
func modulePackages(modPath, modDir string) ([]string, error) {
	var out []string
	err := filepath.WalkDir(modDir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != modDir && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata" || name == "vendor") {
			return filepath.SkipDir
		}
		entries, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		for _, e := range entries {
			n := e.Name()
			if !e.IsDir() && strings.HasSuffix(n, ".go") && !strings.HasSuffix(n, "_test.go") {
				rel, err := filepath.Rel(modDir, path)
				if err != nil {
					return err
				}
				if rel == "." {
					out = append(out, modPath)
				} else {
					out = append(out, modPath+"/"+filepath.ToSlash(rel))
				}
				break
			}
		}
		return nil
	})
	sort.Strings(out)
	return out, err
}
