package driver

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cqp/internal/analysis"
)

const (
	modPath = "cqp"
	modDir  = "../../.."
)

// TestLoaderLoadsModulePackage exercises the go/types-based loader on a
// real module package: files parse with comments, the package
// typechecks, and the Uses map is populated (the analyzers depend on
// it).
func TestLoaderLoadsModulePackage(t *testing.T) {
	l := NewLoader(modPath, modDir)
	pkg, err := l.Load("cqp/internal/geo")
	if err != nil {
		t.Fatal(err)
	}
	if pkg.Pkg.Name() != "geo" {
		t.Errorf("package name = %q, want geo", pkg.Pkg.Name())
	}
	if len(pkg.Files) == 0 {
		t.Fatal("no files loaded")
	}
	if len(pkg.Info.Uses) == 0 {
		t.Error("types.Info.Uses is empty: analyzers would see nothing")
	}
	for _, f := range pkg.Files {
		name := pkg.Fset.Position(f.Pos()).Filename
		if strings.HasSuffix(name, "_test.go") {
			t.Errorf("test file %s loaded: lint scope is shipped code only", name)
		}
	}

	// The loader caches module-internal imports: loading a package that
	// imports geo must reuse the typechecked package object.
	cached, err := l.ImportFrom("cqp/internal/geo", "", 0)
	if err != nil {
		t.Fatal(err)
	}
	if cached != pkg.Pkg {
		t.Error("ImportFrom did not return the cached package")
	}
}

// TestRunCleanPackage runs the full production suite over deterministic
// packages that must be lint-clean — the same invariant make lint
// enforces, reachable here without the cqp-lint binary.
func TestRunCleanPackage(t *testing.T) {
	cfg := &Config{ModulePath: modPath, ModuleDir: modDir}
	findings, err := cfg.Run([]string{"./internal/geo", "./internal/obs"})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("unexpected finding: %s", f)
	}
}

// TestRunRejectsForeignPattern: patterns outside the module are
// configuration errors, not silently empty runs.
func TestRunRejectsForeignPattern(t *testing.T) {
	cfg := &Config{ModulePath: modPath, ModuleDir: modDir}
	if _, err := cfg.Run([]string{"github.com/elsewhere/pkg"}); err == nil {
		t.Fatal("foreign pattern did not error")
	}
}

// TestLintAllowFiltering pins the suppression contract on a synthetic
// package: an annotated violation with a reason is dropped, a bare
// annotation without a reason suppresses nothing, and an unannotated
// violation always surfaces.
func TestLintAllowFiltering(t *testing.T) {
	dir := t.TempDir()
	src := `package fixture

import "time"

func bare() int64 {
	//lint:allow determinism
	return time.Now().Unix()
}

func justified() int64 {
	//lint:allow determinism this test fixture documents the suppression syntax
	return time.Now().Unix()
}

func naked() int64 {
	return time.Now().Unix()
}
`
	if err := os.WriteFile(filepath.Join(dir, "fixture.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	l := NewLoader(modPath, modDir)
	pkg, err := l.LoadDir(dir, "fixture")
	if err != nil {
		t.Fatal(err)
	}
	cfg := &Config{
		ModulePath: modPath,
		ModuleDir:  modDir,
		Analyzers:  []*analysis.Analyzer{analysis.Determinism},
		Scope:      map[string]map[string]bool{}, // run everywhere
	}
	findings, err := cfg.LintPackage(pkg)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 2 {
		t.Fatalf("findings = %v, want exactly the bare-annotation and naked violations", findings)
	}
	for _, f := range findings {
		if f.Analyzer != "determinism" {
			t.Errorf("unexpected analyzer %q in %s", f.Analyzer, f)
		}
	}
}
