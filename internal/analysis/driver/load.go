package driver

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one fully typechecked package ready for analysis. Files
// are parsed with comments (the driver needs them for //lint:allow) and
// exclude _test.go: the lint scope is shipped code.
type Package struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// Loader typechecks packages using the standard library's source
// importer for external dependencies and the module directory for
// "cqp/..." imports. One Loader shares a FileSet and a package cache
// across Load calls, so a dependency is typechecked once per run.
type Loader struct {
	fset    *token.FileSet
	std     types.ImporterFrom
	modPath string
	modDir  string
	cache   map[string]*types.Package
}

func NewLoader(modPath, modDir string) *Loader {
	fset := token.NewFileSet()
	return &Loader{
		fset:    fset,
		std:     importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		modPath: modPath,
		modDir:  modDir,
		cache:   make(map[string]*types.Package),
	}
}

// Import implements types.Importer for the typechecker's benefit:
// module-internal paths resolve against the module directory (without
// the expense of a full types.Info), everything else delegates to the
// source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, "", 0)
}

// ImportFrom implements types.ImporterFrom.
func (l *Loader) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path == l.modPath || strings.HasPrefix(path, l.modPath+"/") {
		if p, ok := l.cache[path]; ok {
			return p, nil
		}
		pkg, _, err := l.check(path, l.dirOf(path), nil)
		if err != nil {
			return nil, err
		}
		l.cache[path] = pkg
		return pkg, nil
	}
	return l.std.ImportFrom(path, dir, mode)
}

// Load typechecks the module package at the given import path with a
// full types.Info for analysis. The result seeds the import cache, so a
// package both analyzed and imported by a later analysis target is
// typechecked once and shares one *types.Package identity.
func (l *Loader) Load(path string) (*Package, error) {
	p, err := l.LoadDir(l.dirOf(path), path)
	if err == nil {
		if _, ok := l.cache[path]; !ok {
			l.cache[path] = p.Pkg
		}
	}
	return p, err
}

// LoadDir typechecks the package in dir under the given import path.
// It exists for analysistest fixtures, whose directories live under
// testdata and are not themselves module packages (though they may
// import module packages).
func (l *Loader) LoadDir(dir, path string) (*Package, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	pkg, files, err := l.check(path, dir, info)
	if err != nil {
		return nil, err
	}
	return &Package{Path: path, Fset: l.fset, Files: files, Pkg: pkg, Info: info}, nil
}

func (l *Loader) dirOf(path string) string {
	rel := strings.TrimPrefix(strings.TrimPrefix(path, l.modPath), "/")
	return filepath.Join(l.modDir, filepath.FromSlash(rel))
}

// check parses the non-test .go files of dir (in stable name order) and
// typechecks them; info may be nil for dependencies.
func (l *Loader) check(path, dir string, info *types.Info) (*types.Package, []*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	var names []string
	for _, e := range entries {
		n := e.Name()
		if !e.IsDir() && strings.HasSuffix(n, ".go") && !strings.HasSuffix(n, "_test.go") {
			names = append(names, n)
		}
	}
	if len(names) == 0 {
		return nil, nil, fmt.Errorf("no Go files in %s", dir)
	}
	sort.Strings(names)
	var files []*ast.File
	for _, n := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, n), nil, parser.ParseComments)
		if err != nil {
			return nil, nil, err
		}
		files = append(files, f)
	}
	conf := types.Config{Importer: l}
	pkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, nil, err
	}
	return pkg, files, nil
}
