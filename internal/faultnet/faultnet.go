// Package faultnet injects deterministic, seeded network faults —
// latency, connection resets, partial writes, and bit corruption —
// underneath any net.Conn or net.Listener.
//
// It exists so the server/client connection-lifecycle machinery (write
// backpressure, shed-slow-client, heartbeats, reconnect with backoff,
// and the paper's out-of-sync recovery protocol) can be driven through
// repeatable failure schedules in tests. Every fault decision derives
// from a fixed seed and a per-connection, per-direction operation
// counter — never from wall-clock time — so a given seed always yields
// the same fault sequence for the same sequence of I/O operations.
package faultnet

import (
	"errors"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Faults configures the fault schedule of an Injector. Probabilities are
// per read/write operation and drawn independently; zero values disable
// the corresponding fault.
type Faults struct {
	// Seed is the base seed; every wrapped connection derives two
	// independent streams (read-side and write-side) from it.
	Seed int64

	// Grace exempts the first Grace operations in each direction of
	// every connection, so handshakes can complete before the weather
	// turns.
	Grace int

	// PDelay delays an operation by a uniform duration in [0, MaxDelay).
	PDelay   float64
	MaxDelay time.Duration

	// PReset closes the connection and fails the operation.
	PReset float64

	// PPartialWrite writes only a prefix of the buffer, then closes the
	// connection — the peer observes a truncated frame.
	PPartialWrite float64

	// PCorrupt flips one bit of the data in transit (on writes the
	// buffer is copied first; callers never see their data mutated).
	PCorrupt float64

	// PStall hangs the operation — and with it the connection's whole
	// direction — until the scenario is reset (Disable or Enable) or the
	// connection is closed. Unlike PDelay it involves no timer: the hang
	// is indefinite, which is exactly what deadline-based death
	// detection (heartbeat timeouts, step deadlines) needs to be tested
	// against without wall-clock sleeps in the fault schedule. A stalled
	// operation released by Disable proceeds normally; one released by a
	// close fails with the close error.
	PStall float64
}

// ErrInjectedReset is returned by operations the injector chose to fail.
var ErrInjectedReset = errors.New("faultnet: injected connection reset")

// Injector hands out fault-wrapped connections sharing one schedule. It
// is safe for concurrent use.
type Injector struct {
	faults  Faults
	enabled atomic.Bool
	seq     atomic.Uint64

	mu      sync.Mutex
	release chan struct{} // closed on Disable/Enable: frees stalled ops
}

// New returns an enabled Injector with the given fault schedule.
func New(f Faults) *Injector {
	in := &Injector{faults: f, release: make(chan struct{})}
	in.enabled.Store(true)
	return in
}

// Disable turns all fault injection off; wrapped connections become
// transparent and stalled operations resume. Tests call this to end the
// storm and let the system heal.
func (in *Injector) Disable() {
	in.enabled.Store(false)
	in.releaseStalled()
}

// Enable turns fault injection back on. It also releases operations
// stalled under the previous scenario: a stall lasts until the next
// scenario change, in either direction.
func (in *Injector) Enable() {
	in.enabled.Store(true)
	in.releaseStalled()
}

// releaseStalled frees every currently stalled operation and arms a
// fresh release barrier for future stalls.
func (in *Injector) releaseStalled() {
	in.mu.Lock()
	close(in.release)
	in.release = make(chan struct{})
	in.mu.Unlock()
}

// releaseCh returns the barrier a newly stalled operation waits on.
func (in *Injector) releaseCh() <-chan struct{} {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.release
}

// Wrap returns c with this injector's fault schedule applied. Each
// wrapped connection draws from its own deterministic streams, derived
// from the base seed and the wrap order.
func (in *Injector) Wrap(c net.Conn) net.Conn {
	n := in.seq.Add(1)
	base := splitmix(uint64(in.faults.Seed) + n*0x9E3779B97F4A7C15)
	return &conn{
		Conn: c,
		in:   in,
		rd:   faultStream{rng: rand.New(rand.NewSource(int64(splitmix(base + 1))))},
		wr:   faultStream{rng: rand.New(rand.NewSource(int64(splitmix(base + 2))))},
		done: make(chan struct{}),
	}
}

// Listener wraps ln so every accepted connection is fault-injected.
func (in *Injector) Listener(ln net.Listener) net.Listener {
	return &listener{Listener: ln, in: in}
}

// Dialer wraps a dial function so every dialed connection is
// fault-injected. dial defaults to a plain TCP dial when nil.
func (in *Injector) Dialer(dial func(addr string) (net.Conn, error)) func(addr string) (net.Conn, error) {
	if dial == nil {
		dial = func(addr string) (net.Conn, error) { return net.Dial("tcp", addr) }
	}
	return func(addr string) (net.Conn, error) {
		c, err := dial(addr)
		if err != nil {
			return nil, err
		}
		return in.Wrap(c), nil
	}
}

type listener struct {
	net.Listener
	in *Injector
}

func (l *listener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return l.in.Wrap(c), nil
}

// fault is the set of faults drawn for one operation.
type fault struct {
	delay    time.Duration
	stall    bool
	reset    bool
	partial  bool
	corrupt  bool
	cut, bit int
}

// faultStream is one direction's deterministic fault source. Reads and
// writes use separate streams so concurrent reader/writer goroutines
// cannot perturb each other's schedules.
type faultStream struct {
	mu  sync.Mutex
	rng *rand.Rand
	ops int
}

func (s *faultStream) draw(f Faults, enabled bool) fault {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ops++
	if !enabled || s.ops <= f.Grace {
		return fault{}
	}
	var out fault
	if f.PDelay > 0 && f.MaxDelay > 0 && s.rng.Float64() < f.PDelay {
		out.delay = time.Duration(s.rng.Int63n(int64(f.MaxDelay)))
	}
	if f.PStall > 0 && s.rng.Float64() < f.PStall {
		out.stall = true
		return out
	}
	if f.PReset > 0 && s.rng.Float64() < f.PReset {
		out.reset = true
		return out
	}
	if f.PPartialWrite > 0 && s.rng.Float64() < f.PPartialWrite {
		out.partial = true
		out.cut = int(s.rng.Int31())
	}
	if f.PCorrupt > 0 && s.rng.Float64() < f.PCorrupt {
		out.corrupt = true
		out.bit = int(s.rng.Int31())
	}
	return out
}

// conn is a fault-injected net.Conn. Like the TCP connections it wraps,
// it tolerates one concurrent reader plus one concurrent writer.
type conn struct {
	net.Conn
	in *Injector
	rd faultStream
	wr faultStream

	closeOnce sync.Once
	done      chan struct{} // closed by Close: frees this conn's stalls
}

// Close releases any operation stalled on this connection before
// closing the wrapped one.
func (c *conn) Close() error {
	c.closeOnce.Do(func() { close(c.done) })
	return c.Conn.Close()
}

// stall blocks until the injector's scenario changes or the connection
// closes; it reports whether the operation may proceed. The enabled
// re-check after capturing the barrier closes the race with a Disable
// that lands between the draw and the wait: either the check observes
// it, or the barrier we hold is the one it closed.
func (c *conn) stall() error {
	ch := c.in.releaseCh()
	if !c.in.enabled.Load() {
		return nil
	}
	select {
	case <-ch:
		return nil
	case <-c.done:
		return net.ErrClosed
	}
}

func (c *conn) Read(p []byte) (int, error) {
	f := c.rd.draw(c.in.faults, c.in.enabled.Load())
	if f.delay > 0 {
		time.Sleep(f.delay)
	}
	if f.stall {
		if err := c.stall(); err != nil {
			return 0, err
		}
	}
	if f.reset {
		c.Conn.Close()
		return 0, ErrInjectedReset
	}
	n, err := c.Conn.Read(p)
	if f.corrupt && n > 0 {
		flipBit(p[:n], f.bit)
	}
	return n, err
}

func (c *conn) Write(p []byte) (int, error) {
	f := c.wr.draw(c.in.faults, c.in.enabled.Load())
	if f.delay > 0 {
		time.Sleep(f.delay)
	}
	if f.stall {
		if err := c.stall(); err != nil {
			return 0, err
		}
	}
	if f.reset {
		c.Conn.Close()
		return 0, ErrInjectedReset
	}
	if f.partial && len(p) > 1 {
		n, _ := c.Conn.Write(p[:1+f.cut%(len(p)-1)])
		c.Conn.Close()
		return n, ErrInjectedReset
	}
	if f.corrupt && len(p) > 0 {
		q := make([]byte, len(p))
		copy(q, p)
		flipBit(q, f.bit)
		return c.Conn.Write(q)
	}
	return c.Conn.Write(p)
}

func flipBit(b []byte, bit int) {
	bit %= len(b) * 8
	b[bit/8] ^= 1 << (bit % 8)
}

// splitmix advances the SplitMix64 generator; used to derive independent
// per-connection seeds from the base seed.
func splitmix(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}
