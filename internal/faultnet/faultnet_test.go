package faultnet

import (
	"bytes"
	"errors"
	"io"
	"net"
	"testing"
	"time"
)

// pipePair returns both ends of an in-memory connection with the client
// side wrapped by the injector.
func pipePair(in *Injector) (faulty, peer net.Conn) {
	a, b := net.Pipe()
	return in.Wrap(a), b
}

func TestDeterministicSchedule(t *testing.T) {
	// Two injectors with the same seed must produce identical fault
	// decisions for identical operation sequences.
	run := func() []bool {
		in := New(Faults{Seed: 7, PReset: 0.3})
		c := in.Wrap(nopConn{}).(*conn)
		var resets []bool
		for i := 0; i < 64; i++ {
			f := c.wr.draw(in.faults, true)
			resets = append(resets, f.reset)
		}
		return resets
	}
	a, b := run(), run()
	anyReset := false
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedules diverge at op %d", i)
		}
		anyReset = anyReset || a[i]
	}
	if !anyReset {
		t.Fatal("PReset=0.3 over 64 ops drew no reset")
	}
}

func TestGraceAndDisable(t *testing.T) {
	in := New(Faults{Seed: 1, Grace: 5, PReset: 1})
	c := in.Wrap(nopConn{}).(*conn)
	for i := 0; i < 5; i++ {
		if f := c.wr.draw(in.faults, in.enabled.Load()); f.reset {
			t.Fatalf("fault during grace period at op %d", i)
		}
	}
	if f := c.wr.draw(in.faults, in.enabled.Load()); !f.reset {
		t.Fatal("PReset=1 after grace must reset")
	}
	in.Disable()
	if f := c.wr.draw(in.faults, in.enabled.Load()); f.reset {
		t.Fatal("disabled injector must be transparent")
	}
	in.Enable()
	if f := c.wr.draw(in.faults, in.enabled.Load()); !f.reset {
		t.Fatal("re-enabled injector must fault again")
	}
}

func TestInjectedReset(t *testing.T) {
	in := New(Faults{Seed: 1, PReset: 1})
	faulty, peer := pipePair(in)
	defer peer.Close()
	if _, err := faulty.Write([]byte("hello")); !errors.Is(err, ErrInjectedReset) {
		t.Fatalf("write err = %v", err)
	}
	// The underlying conn was closed: the peer sees EOF.
	peer.SetReadDeadline(time.Now().Add(time.Second))
	if _, err := peer.Read(make([]byte, 1)); err == nil {
		t.Fatal("peer read after reset should fail")
	}
}

func TestPartialWriteTruncates(t *testing.T) {
	in := New(Faults{Seed: 3, PPartialWrite: 1})
	faulty, peer := pipePair(in)
	msg := bytes.Repeat([]byte{0xAB}, 100)
	got := make(chan int, 1)
	go func() {
		buf, _ := io.ReadAll(peer)
		got <- len(buf)
	}()
	n, err := faulty.Write(msg)
	if !errors.Is(err, ErrInjectedReset) {
		t.Fatalf("partial write err = %v", err)
	}
	if n >= len(msg) || n < 0 {
		t.Fatalf("partial write wrote %d of %d", n, len(msg))
	}
	if delivered := <-got; delivered >= len(msg) {
		t.Fatalf("peer received %d bytes, want a truncated prefix", delivered)
	}
}

func TestCorruptionFlipsExactlyOneBit(t *testing.T) {
	in := New(Faults{Seed: 5, PCorrupt: 1, Grace: 0})
	faulty, peer := pipePair(in)
	defer faulty.Close()
	defer peer.Close()
	msg := bytes.Repeat([]byte{0x00}, 32)
	go faulty.Write(msg)
	buf := make([]byte, len(msg))
	if _, err := io.ReadFull(peer, buf); err != nil {
		t.Fatal(err)
	}
	bits := 0
	for _, b := range buf {
		for ; b != 0; b &= b - 1 {
			bits++
		}
	}
	if bits != 1 {
		t.Fatalf("corruption flipped %d bits, want 1", bits)
	}
	// The caller's buffer must be untouched.
	if !bytes.Equal(msg, bytes.Repeat([]byte{0x00}, 32)) {
		t.Fatal("writer's buffer was mutated")
	}
}

func TestListenerWrapsAcceptedConns(t *testing.T) {
	in := New(Faults{Seed: 9, PReset: 1})
	base, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ln := in.Listener(base)
	defer ln.Close()
	done := make(chan error, 1)
	go func() {
		c, err := ln.Accept()
		if err != nil {
			done <- err
			return
		}
		defer c.Close()
		_, err = c.Write([]byte("x"))
		done <- err
	}()
	client, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if err := <-done; !errors.Is(err, ErrInjectedReset) {
		t.Fatalf("accepted conn write err = %v", err)
	}
}

func TestDialerWrapsConns(t *testing.T) {
	in := New(Faults{Seed: 11, PReset: 1})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			c.Close()
		}
	}()
	dial := in.Dialer(nil)
	c, err := dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Write([]byte("x")); !errors.Is(err, ErrInjectedReset) {
		t.Fatalf("dialed conn write err = %v", err)
	}
}

// nopConn satisfies net.Conn for schedule-only tests.
type nopConn struct{}

func (nopConn) Read(p []byte) (int, error)       { return 0, io.EOF }
func (nopConn) Write(p []byte) (int, error)      { return len(p), nil }
func (nopConn) Close() error                     { return nil }
func (nopConn) LocalAddr() net.Addr              { return nil }
func (nopConn) RemoteAddr() net.Addr             { return nil }
func (nopConn) SetDeadline(time.Time) error      { return nil }
func (nopConn) SetReadDeadline(time.Time) error  { return nil }
func (nopConn) SetWriteDeadline(time.Time) error { return nil }

func TestStallBlocksUntilDisable(t *testing.T) {
	in := New(Faults{Seed: 3, PStall: 1})
	faulty, peer := pipePair(in)
	defer peer.Close()
	defer faulty.Close()

	// The peer stands by to serve the write once it is released.
	go io.Copy(io.Discard, peer)

	wrote := make(chan error, 1)
	go func() {
		_, err := faulty.Write([]byte("hello"))
		wrote <- err
	}()
	select {
	case err := <-wrote:
		t.Fatalf("stalled write returned early: %v", err)
	case <-time.After(30 * time.Millisecond):
		// Still hanging: the stall holds with no timer of its own.
	}
	in.Disable()
	select {
	case err := <-wrote:
		if err != nil {
			t.Fatalf("write after release: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Disable did not release the stalled write")
	}
}

func TestStallReleasedByClose(t *testing.T) {
	in := New(Faults{Seed: 3, PStall: 1})
	faulty, peer := pipePair(in)
	defer peer.Close()

	read := make(chan error, 1)
	go func() {
		_, err := faulty.Read(make([]byte, 8))
		read <- err
	}()
	select {
	case err := <-read:
		t.Fatalf("stalled read returned early: %v", err)
	case <-time.After(30 * time.Millisecond):
	}
	faulty.Close()
	select {
	case err := <-read:
		if !errors.Is(err, net.ErrClosed) {
			t.Fatalf("stalled read released by close: got %v, want net.ErrClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Close did not release the stalled read")
	}
}

func TestStallDeterministicSchedule(t *testing.T) {
	// Stalls are drawn from the same seeded streams as every other
	// fault: the same seed yields the same stall positions.
	run := func() []bool {
		in := New(Faults{Seed: 11, PStall: 0.3})
		c := in.Wrap(nopConn{}).(*conn)
		var stalls []bool
		for i := 0; i < 64; i++ {
			stalls = append(stalls, c.wr.draw(in.faults, true).stall)
		}
		return stalls
	}
	a, b := run(), run()
	any := false
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("stall schedules diverge at op %d", i)
		}
		any = any || a[i]
	}
	if !any {
		t.Fatal("PStall=0.3 over 64 ops drew no stall")
	}
}
