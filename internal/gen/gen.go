// Package gen is a network-based generator of moving objects and moving
// queries in the spirit of Brinkhoff's generator, which the paper uses for
// its evaluation. Objects pick random destinations on a road network
// (package roadnet), route to them along the fastest path, and travel
// edge by edge at the speed of each road class, re-routing on arrival.
//
// Moving queries are square regions centered on designated objects,
// following the paper's setup ("we choose some points randomly and
// consider them as centers of square queries").
//
// The generator is deterministic for a given seed.
package gen

import (
	"fmt"
	"math/rand"

	"cqp/internal/geo"
	"cqp/internal/roadnet"
)

// Config parameterizes a World.
type Config struct {
	// Net is the road network to travel on. Required.
	Net *roadnet.Network
	// NumObjects is the moving-object population. Required.
	NumObjects int
	// Seed drives all randomness.
	Seed int64
}

// World is the ground-truth state of a moving-object population. Time is
// advanced explicitly with Advance; positions are sampled with Object.
type World struct {
	net  *roadnet.Network
	rng  *rand.Rand
	objs []traveler
	now  float64
}

// traveler is one object's movement state: a route of intersections, the
// index of the segment currently being traversed, and the distance
// already covered on it.
type traveler struct {
	path   []int
	seg    int     // index into path: traveling path[seg] → path[seg+1]
	offset float64 // distance covered on the current segment
}

// NewWorld creates a world with cfg.NumObjects objects placed on random
// intersections, each with a random initial destination.
func NewWorld(cfg Config) (*World, error) {
	if cfg.Net == nil {
		return nil, fmt.Errorf("gen: Config.Net is required")
	}
	if cfg.NumObjects <= 0 {
		return nil, fmt.Errorf("gen: Config.NumObjects must be positive, got %d", cfg.NumObjects)
	}
	w := &World{
		net:  cfg.Net,
		rng:  rand.New(rand.NewSource(cfg.Seed)),
		objs: make([]traveler, cfg.NumObjects),
	}
	for i := range w.objs {
		w.objs[i] = w.newRoute(w.net.RandomNode(w.rng))
	}
	return w, nil
}

// MustNewWorld is NewWorld that panics on configuration errors.
func MustNewWorld(cfg Config) *World {
	w, err := NewWorld(cfg)
	if err != nil {
		panic(err)
	}
	return w
}

// newRoute assigns a fresh destination and route starting at node src.
func (w *World) newRoute(src int) traveler {
	for tries := 0; ; tries++ {
		dst := w.net.RandomNode(w.rng)
		if dst == src && tries < 10 {
			continue
		}
		path, ok := w.net.Route(src, dst)
		if !ok || len(path) < 2 {
			if tries < 10 {
				continue
			}
			// Isolated node (cannot happen on generated networks, which are
			// connected): park the object there.
			return traveler{path: []int{src, src}, seg: 0}
		}
		return traveler{path: path}
	}
}

// NumObjects returns the population size.
func (w *World) NumObjects() int { return len(w.objs) }

// Net returns the road network the population travels on.
func (w *World) Net() *roadnet.Network { return w.net }

// Now returns the world clock.
func (w *World) Now() float64 { return w.now }

// Advance moves every object along its route for dt time units. Objects
// arriving at their destination immediately pick a new one.
func (w *World) Advance(dt float64) {
	w.now += dt
	for i := range w.objs {
		w.advanceObject(i, dt)
	}
}

// AdvanceClock advances the world clock without moving anyone; callers
// then move selected objects with AdvanceObject. This models populations
// where only a fraction of the objects change location per evaluation
// period — the x-axis of the paper's Figure 5(a).
func (w *World) AdvanceClock(dt float64) { w.now += dt }

// AdvanceObject moves a single object (used to model populations where
// only a fraction moves between evaluations).
func (w *World) AdvanceObject(i int, dt float64) { w.advanceObject(i, dt) }

func (w *World) advanceObject(i int, dt float64) {
	tr := &w.objs[i]
	remaining := dt
	for remaining > 0 {
		a, b := tr.path[tr.seg], tr.path[tr.seg+1]
		if a == b { // parked on an isolated node
			return
		}
		edge, ok := w.net.EdgeBetween(a, b)
		if !ok {
			// Defensive: routes are built from adjacency, so this indicates
			// corruption; re-route rather than crash.
			*tr = w.newRoute(a)
			continue
		}
		speed := w.net.Speed(edge.Class)
		left := edge.Len - tr.offset
		travel := speed * remaining
		if travel < left {
			tr.offset += travel
			return
		}
		// Finish this segment and continue on the next.
		remaining -= left / speed
		tr.seg++
		tr.offset = 0
		if tr.seg == len(tr.path)-1 {
			*tr = w.newRoute(tr.path[len(tr.path)-1])
		}
	}
}

// Object returns the current location and velocity vector of object i.
// The velocity points along the current road segment at its class speed;
// a parked object reports zero velocity.
func (w *World) Object(i int) (geo.Point, geo.Vector) {
	tr := &w.objs[i]
	a, b := tr.path[tr.seg], tr.path[tr.seg+1]
	pa, pb := w.net.Node(a), w.net.Node(b)
	if a == b {
		return pa, geo.Vector{}
	}
	edge, _ := w.net.EdgeBetween(a, b)
	dir := pb.Sub(pa).Norm()
	u := 0.0
	if edge.Len > 0 {
		u = tr.offset / edge.Len
	}
	loc := geo.Segment{A: pa, B: pb}.At(u)
	return loc, dir.Scale(w.net.Speed(edge.Class))
}

// Rand exposes the world's random source so that harnesses deriving
// further choices (query placement, report sampling) stay deterministic
// per seed.
func (w *World) Rand() *rand.Rand { return w.rng }
