package gen

import (
	"testing"

	"cqp/internal/core"
	"cqp/internal/geo"
	"cqp/internal/roadnet"
)

func testWorld(t *testing.T, n int, seed int64) *World {
	t.Helper()
	net := roadnet.Generate(roadnet.Config{Lattice: 16, Seed: seed})
	return MustNewWorld(Config{Net: net, NumObjects: n, Seed: seed})
}

func TestNewWorldValidation(t *testing.T) {
	if _, err := NewWorld(Config{}); err == nil {
		t.Error("nil network should fail")
	}
	net := roadnet.Generate(roadnet.Config{Lattice: 4, Seed: 1})
	if _, err := NewWorld(Config{Net: net}); err == nil {
		t.Error("zero objects should fail")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustNewWorld should panic")
		}
	}()
	MustNewWorld(Config{})
}

func TestObjectsStayOnNetwork(t *testing.T) {
	w := testWorld(t, 50, 1)
	net := roadnet.Generate(roadnet.Config{Lattice: 16, Seed: 1})
	for step := 0; step < 200; step++ {
		w.Advance(1)
		for i := 0; i < w.NumObjects(); i++ {
			loc, _ := w.Object(i)
			// Every object must lie on some edge: distance to the segment
			// between its current route nodes must be ~0. We verify the
			// weaker, network-independent property that the location is
			// within the city bounds.
			if loc.X < -0.1 || loc.X > 1.1 || loc.Y < -0.1 || loc.Y > 1.1 {
				t.Fatalf("step %d object %d off the map: %v", step, i, loc)
			}
			// And that its nearest intersection is very close relative to
			// the lattice spacing (1/16): objects travel between adjacent
			// intersections.
			ni := net.NearestNode(loc)
			if d := loc.Dist(net.Node(ni)); d > 0.2 {
				t.Fatalf("step %d object %d far from network: %v (d=%v)", step, i, loc, d)
			}
		}
	}
}

func TestObjectsActuallyMove(t *testing.T) {
	w := testWorld(t, 20, 2)
	before := make([]geo.Point, w.NumObjects())
	for i := range before {
		before[i], _ = w.Object(i)
	}
	w.Advance(10)
	movedCount := 0
	for i := range before {
		after, _ := w.Object(i)
		if after.Dist(before[i]) > 1e-9 {
			movedCount++
		}
	}
	if movedCount < w.NumObjects()/2 {
		t.Fatalf("only %d/%d objects moved", movedCount, w.NumObjects())
	}
	if w.Now() != 10 {
		t.Fatalf("Now = %v", w.Now())
	}
}

func TestVelocityPointsAlongMovement(t *testing.T) {
	w := testWorld(t, 30, 3)
	w.Advance(0.5)
	for i := 0; i < w.NumObjects(); i++ {
		loc, vel := w.Object(i)
		if vel.IsZero() {
			continue // parked or at a node boundary
		}
		// Advance a small dt and compare against linear extrapolation; the
		// prediction holds while the object stays on its segment.
		dt := 0.01
		w.AdvanceObject(i, dt)
		after, _ := w.Object(i)
		predicted := loc.Add(vel.Scale(dt))
		// The object may cross onto a new segment, so allow a tolerance of
		// the distance traveled.
		if after.Dist(predicted) > vel.Len()*dt*2+1e-9 {
			t.Fatalf("object %d: predicted %v, actual %v", i, predicted, after)
		}
	}
}

func TestDeterminism(t *testing.T) {
	w1 := testWorld(t, 25, 7)
	w2 := testWorld(t, 25, 7)
	w1.Advance(13)
	w2.Advance(13)
	for i := 0; i < w1.NumObjects(); i++ {
		p1, v1 := w1.Object(i)
		p2, v2 := w2.Object(i)
		if p1 != p2 || v1 != v2 {
			t.Fatalf("object %d diverged: %v/%v vs %v/%v", i, p1, v1, p2, v2)
		}
	}
}

// recordingSink captures reports for assertions.
type recordingSink struct {
	objs []core.ObjectUpdate
	qrys []core.QueryUpdate
}

func (r *recordingSink) ReportObject(u core.ObjectUpdate) { r.objs = append(r.objs, u) }
func (r *recordingSink) ReportQuery(u core.QueryUpdate)   { r.qrys = append(r.qrys, u) }

func TestWorkloadBootstrapAndTick(t *testing.T) {
	w := testWorld(t, 40, 4)
	wl := NewWorkload(w, 10, 0.05, 4)

	var sink recordingSink
	wl.Bootstrap(&sink)
	if len(sink.objs) != 40 || len(sink.qrys) != 10 {
		t.Fatalf("bootstrap: %d objects, %d queries", len(sink.objs), len(sink.qrys))
	}
	for _, q := range sink.qrys {
		if q.Kind != core.Range {
			t.Fatalf("query kind = %v", q.Kind)
		}
		if w := q.Region.Width(); w < 0.049 || w > 0.051 {
			t.Fatalf("query side = %v", w)
		}
	}

	sink = recordingSink{}
	o, q := wl.Tick(&sink, 5, 0.5, 0.3)
	if o != 20 || q != 3 {
		t.Fatalf("tick reported %d objects, %d queries", o, q)
	}
	if len(sink.objs) != 20 || len(sink.qrys) != 3 {
		t.Fatalf("sink got %d objects, %d queries", len(sink.objs), len(sink.qrys))
	}
	// Sampled object ids must be distinct.
	seen := map[core.ObjectID]bool{}
	for _, u := range sink.objs {
		if seen[u.ID] {
			t.Fatalf("duplicate report for %d", u.ID)
		}
		seen[u.ID] = true
	}

	// Rates clamp at the population size.
	sink = recordingSink{}
	o, q = wl.Tick(&sink, 5, 1.0, 1.0)
	if o != 40 || q != 10 {
		t.Fatalf("full tick reported %d objects, %d queries", o, q)
	}
}

func TestWorkloadDrivesEngine(t *testing.T) {
	w := testWorld(t, 60, 5)
	wl := NewWorkload(w, 15, 0.1, 5)
	e := core.MustNewEngine(core.Options{Bounds: geo.R(0, 0, 1, 1), GridN: 16})

	wl.Bootstrap(e)
	e.Step(w.Now())
	if err := e.CheckConsistency(true); err != nil {
		t.Fatal(err)
	}

	for step := 0; step < 20; step++ {
		wl.Tick(e, 5, 0.4, 0.4)
		e.Step(w.Now())
		if err := e.CheckConsistency(false); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
	}
	// Queries centered on reported objects should usually be non-empty
	// (the center object itself lies inside whenever both reported
	// together); just assert the engine kept all populations.
	if e.NumObjects() != 60 || e.NumQueries() != 15 {
		t.Fatalf("engine lost population: %d/%d", e.NumObjects(), e.NumQueries())
	}
}
