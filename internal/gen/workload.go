package gen

import (
	"math/rand"

	"cqp/internal/core"
	"cqp/internal/geo"
)

// Workload drives a core.Engine (or a baseline) with the paper's
// evaluation setup: a population of network-constrained moving objects
// and an independent population of moving square queries whose centers
// travel the same road network ("we choose some points randomly and
// consider them as centers of square queries"). Each Tick moves and
// reports a configurable fraction of each population — the knobs of the
// paper's Figure 5.
type Workload struct {
	World *World

	// Queries is the traveler population carrying the query centers.
	Queries *World

	// QuerySide is the side length of the square query regions (Figure
	// 5(b) sweeps this).
	QuerySide float64

	// NumQueries is the number of moving range queries.
	NumQueries int

	rng  *rand.Rand
	perm []int // reusable permutation buffer for report sampling
}

// NewWorkload builds a workload over an existing object world, creating
// an independent query-center population on the same road network.
func NewWorkload(w *World, numQueries int, querySide float64, seed int64) *Workload {
	queries := MustNewWorld(Config{Net: w.Net(), NumObjects: numQueries, Seed: seed + 7919})
	n := w.NumObjects()
	if numQueries > n {
		n = numQueries
	}
	return &Workload{
		World:      w,
		Queries:    queries,
		QuerySide:  querySide,
		NumQueries: numQueries,
		rng:        rand.New(rand.NewSource(seed)),
		perm:       make([]int, n),
	}
}

// Sink consumes object and query reports; *core.Engine satisfies it, as
// do the baselines.
type Sink interface {
	ReportObject(core.ObjectUpdate)
	ReportQuery(core.QueryUpdate)
}

// ObjectID and QueryID assignment: object i is core.ObjectID(i+1), query
// j is core.QueryID(j+1).
func objectID(i int) core.ObjectID { return core.ObjectID(i + 1) }
func queryID(j int) core.QueryID   { return core.QueryID(j + 1) }

// QueryRegion returns the current region of query j.
func (wl *Workload) QueryRegion(j int) geo.Rect {
	loc, _ := wl.Queries.Object(j)
	return geo.RectAt(loc, wl.QuerySide)
}

// Bootstrap reports the entire population (all objects and all queries)
// into sink. Call once before the first Tick.
func (wl *Workload) Bootstrap(sink Sink) {
	now := wl.World.Now()
	for i := 0; i < wl.World.NumObjects(); i++ {
		loc, _ := wl.World.Object(i)
		sink.ReportObject(core.ObjectUpdate{ID: objectID(i), Kind: core.Moving, Loc: loc, T: now})
	}
	for j := 0; j < wl.NumQueries; j++ {
		sink.ReportQuery(core.QueryUpdate{ID: queryID(j), Kind: core.Range, Region: wl.QueryRegion(j), T: now})
	}
}

// Tick advances the evaluation period by dt and reports a sample of the
// population into sink: objectRate is the fraction of objects that move
// (and report the change) during the period, queryRate the fraction of
// queries reporting a moved region (both in [0,1]). It returns the number
// of object and query reports issued.
//
// Matching the paper's Figure 5(a) semantics ("percentage of objects that
// reported a change of location within the last period"), objects outside
// the sample do not move at all during the period; sampled objects travel
// for dt at their road speed and report their new location.
func (wl *Workload) Tick(sink Sink, dt, objectRate, queryRate float64) (objReports, qryReports int) {
	wl.World.AdvanceClock(dt)
	now := wl.World.Now()

	nObj := int(objectRate * float64(wl.World.NumObjects()))
	for _, idx := range wl.sample(nObj, wl.World.NumObjects()) {
		wl.World.AdvanceObject(idx, dt)
		loc, _ := wl.World.Object(idx)
		sink.ReportObject(core.ObjectUpdate{ID: objectID(idx), Kind: core.Moving, Loc: loc, T: now})
		objReports++
	}

	wl.Queries.AdvanceClock(dt)
	nQry := int(queryRate * float64(wl.NumQueries))
	for _, j := range wl.sample(nQry, wl.NumQueries) {
		wl.Queries.AdvanceObject(j, dt)
		sink.ReportQuery(core.QueryUpdate{ID: queryID(j), Kind: core.Range, Region: wl.QueryRegion(j), T: now})
		qryReports++
	}
	return objReports, qryReports
}

// sample returns n distinct indexes drawn from [0, total) using a partial
// Fisher–Yates shuffle over a reusable buffer.
func (wl *Workload) sample(n, total int) []int {
	if n > total {
		n = total
	}
	if cap(wl.perm) < total {
		wl.perm = make([]int, total)
	}
	perm := wl.perm[:total]
	for i := range perm {
		perm[i] = i
	}
	for i := 0; i < n; i++ {
		j := i + wl.rng.Intn(total-i)
		perm[i], perm[j] = perm[j], perm[i]
	}
	return perm[:n]
}
