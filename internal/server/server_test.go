package server

import (
	"fmt"
	"io"
	"log"
	"math/rand"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"cqp/internal/client"
	"cqp/internal/core"
	"cqp/internal/geo"
)

func quietLogger() *log.Logger { return log.New(io.Discard, "", 0) }

func startServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	if cfg.Engine.Bounds.Empty() {
		cfg.Engine = core.Options{Bounds: geo.R(0, 0, 10, 10), GridN: 8}
	}
	if cfg.Logger == nil {
		cfg.Logger = quietLogger()
	}
	s, err := Listen("127.0.0.1:0", cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// waitEvent reads events until one of the wanted kind arrives (or fails
// the test after a timeout), returning it.
func waitEvent(t *testing.T, c *client.Client, kind client.EventKind) client.Event {
	t.Helper()
	deadline := time.After(5 * time.Second)
	for {
		select {
		case ev, ok := <-c.Events():
			if !ok {
				t.Fatal("events channel closed while waiting")
			}
			if ev.Kind == kind {
				return ev
			}
		case <-deadline:
			t.Fatalf("timed out waiting for event kind %d", kind)
		}
	}
}

// settle evaluates until the server has drained its buffers and n updates
// were cumulatively produced, bounded by attempts.
func evaluateUntil(t *testing.T, s *Server, pred func() bool) {
	t.Helper()
	for i := 0; i < 100; i++ {
		s.Evaluate()
		if pred() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("server did not settle")
}

func TestEndToEndRangeQuery(t *testing.T) {
	s := startServer(t, Config{})
	c, err := client.Dial(s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if err := c.ReportObject(core.ObjectUpdate{ID: 1, Kind: core.Moving, Loc: geo.Pt(3, 3)}); err != nil {
		t.Fatal(err)
	}
	if err := c.RegisterQuery(core.QueryUpdate{ID: 1, Kind: core.Range, Region: geo.R(2, 2, 4, 4)}); err != nil {
		t.Fatal(err)
	}
	evaluateUntil(t, s, func() bool { return s.NumObjects() == 1 && s.NumQueries() == 1 })
	// The registration evaluation produced one positive update.
	ev := waitEvent(t, c, client.EventUpdates)
	if len(ev.Updates) != 1 || !ev.Updates[0].Positive || ev.Updates[0].Object != 1 {
		t.Fatalf("updates = %v", ev.Updates)
	}
	ans, ok := c.Answer(1)
	if !ok || len(ans) != 1 || ans[0] != 1 {
		t.Fatalf("client answer = %v %v", ans, ok)
	}

	// Object leaves: negative update arrives.
	c.ReportObject(core.ObjectUpdate{ID: 1, Kind: core.Moving, Loc: geo.Pt(9, 9), T: 1})
	evaluateUntil(t, s, func() bool { st := s.Stats(); return st.NegativeUpdates >= 1 })
	ev = waitEvent(t, c, client.EventUpdates)
	if len(ev.Updates) != 1 || ev.Updates[0].Positive {
		t.Fatalf("updates = %v", ev.Updates)
	}
	if ans, _ := c.Answer(1); len(ans) != 0 {
		t.Fatalf("answer after departure = %v", ans)
	}
}

func TestCommitMatchesSilently(t *testing.T) {
	s := startServer(t, Config{})
	c, err := client.Dial(s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	c.ReportObject(core.ObjectUpdate{ID: 1, Kind: core.Moving, Loc: geo.Pt(5, 5)})
	c.RegisterQuery(core.QueryUpdate{ID: 1, Kind: core.Range, Region: geo.R(4, 4, 6, 6)})
	evaluateUntil(t, s, func() bool { return s.NumQueries() == 1 })
	waitEvent(t, c, client.EventUpdates)

	// A commit with the up-to-date answer must NOT trigger a full-answer
	// fallback. Verify by committing then confirming the next event is a
	// routine update, not a FullAnswer.
	if err := c.Commit(1); err != nil {
		t.Fatal(err)
	}
	c.ReportObject(core.ObjectUpdate{ID: 2, Kind: core.Moving, Loc: geo.Pt(5.5, 5.5), T: 1})
	evaluateUntil(t, s, func() bool { st := s.Stats(); return st.PositiveUpdates >= 2 })
	ev := waitEvent(t, c, client.EventUpdates)
	for _, u := range ev.Updates {
		if u.Object == 2 && u.Positive {
			return
		}
	}
	t.Fatalf("expected +2 update, got %v", ev.Updates)
}

func TestOutOfSyncRecoveryDiff(t *testing.T) {
	s := startServer(t, Config{})
	addr := s.Addr().String()
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Second connection acts as the moving-object feed, so the query
	// client can disconnect independently.
	feed, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer feed.Close()

	for i := core.ObjectID(1); i <= 4; i++ {
		feed.ReportObject(core.ObjectUpdate{ID: i, Kind: core.Moving, Loc: geo.Pt(1, 1)})
	}
	// p1, p2 inside; p3, p4 outside.
	feed.ReportObject(core.ObjectUpdate{ID: 1, Kind: core.Moving, Loc: geo.Pt(5, 5)})
	feed.ReportObject(core.ObjectUpdate{ID: 2, Kind: core.Moving, Loc: geo.Pt(5.5, 5.5)})
	c.RegisterQuery(core.QueryUpdate{ID: 1, Kind: core.Range, Region: geo.R(4, 4, 6, 6)})
	evaluateUntil(t, s, func() bool { return s.NumObjects() == 4 && s.NumQueries() == 1 })
	waitEvent(t, c, client.EventUpdates)
	if ans, _ := c.Answer(1); len(ans) != 2 {
		t.Fatalf("initial answer = %v", ans)
	}
	if err := c.Commit(1); err != nil {
		t.Fatal(err)
	}
	waitEvent(t, c, client.EventCommitted)

	// Disconnect; while away, p2 leaves and p3, p4 enter (Figure 4).
	if err := c.Drop(); err != nil {
		t.Fatal(err)
	}
	waitEvent(t, c, client.EventDisconnected)
	feed.ReportObject(core.ObjectUpdate{ID: 2, Kind: core.Moving, Loc: geo.Pt(9, 9), T: 2})
	feed.ReportObject(core.ObjectUpdate{ID: 3, Kind: core.Moving, Loc: geo.Pt(4.5, 5), T: 2})
	feed.ReportObject(core.ObjectUpdate{ID: 4, Kind: core.Moving, Loc: geo.Pt(5, 4.5), T: 2})
	// Barrier: wait until all 9 object reports (6 initial + 3 above) have
	// been applied, so the disconnected-period changes are really in.
	evaluateUntil(t, s, func() bool { return s.Stats().ObjectReports >= 9 })

	// Reconnect: the server should send the committed→current diff
	// (−2, +3, +4), not the whole answer.
	if err := c.Reconnect(addr); err != nil {
		t.Fatal(err)
	}
	ev := waitEvent(t, c, client.EventRecovered)
	if len(ev.Updates) != 3 {
		t.Fatalf("recovery diff = %v", ev.Updates)
	}
	ans, _ := c.Answer(1)
	if fmt.Sprint(ans) != "[1 3 4]" {
		t.Fatalf("answer after recovery = %v", ans)
	}
}

func TestServerRestartRecoveryWithRepository(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "repo")
	cfg := Config{RepositoryDir: dir}
	s := startServer(t, cfg)
	addr := s.Addr().String()

	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	c.ReportObject(core.ObjectUpdate{ID: 1, Kind: core.Moving, Loc: geo.Pt(5, 5)})
	c.ReportObject(core.ObjectUpdate{ID: 2, Kind: core.Moving, Loc: geo.Pt(5.2, 5.2)})
	c.RegisterQuery(core.QueryUpdate{ID: 1, Kind: core.Range, Region: geo.R(4, 4, 6, 6)})
	evaluateUntil(t, s, func() bool { return s.NumQueries() == 1 && s.NumObjects() == 2 })
	waitEvent(t, c, client.EventUpdates)
	if err := c.Commit(1); err != nil {
		t.Fatal(err)
	}
	waitEvent(t, c, client.EventCommitted)

	// Hard restart on a fresh port, same repository.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	waitEvent(t, c, client.EventDisconnected)
	s2 := startServer(t, Config{RepositoryDir: dir})
	addr2 := s2.Addr().String()

	// Re-feed the objects through a second connection, then reconnect the
	// query client. The committed answer was restored from the repository,
	// so recovery is the incremental diff (empty here: nothing changed).
	feed, err := client.Dial(addr2)
	if err != nil {
		t.Fatal(err)
	}
	defer feed.Close()
	feed.ReportObject(core.ObjectUpdate{ID: 1, Kind: core.Moving, Loc: geo.Pt(5, 5)})
	feed.ReportObject(core.ObjectUpdate{ID: 2, Kind: core.Moving, Loc: geo.Pt(5.2, 5.2)})
	evaluateUntil(t, s2, func() bool { return s2.NumObjects() == 2 })

	if err := c.Reconnect(addr2); err != nil {
		t.Fatal(err)
	}
	ev := waitEvent(t, c, client.EventRecovered)
	if len(ev.Updates) != 0 {
		t.Fatalf("expected empty recovery diff, got %v", ev.Updates)
	}
	ans, _ := c.Answer(1)
	if fmt.Sprint(ans) != "[1 2]" {
		t.Fatalf("answer after restart recovery = %v", ans)
	}
}

func TestServerRestartWithoutRepositoryFallsBack(t *testing.T) {
	s := startServer(t, Config{})
	addr := s.Addr().String()
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	c.ReportObject(core.ObjectUpdate{ID: 1, Kind: core.Moving, Loc: geo.Pt(5, 5)})
	c.RegisterQuery(core.QueryUpdate{ID: 1, Kind: core.Range, Region: geo.R(4, 4, 6, 6)})
	evaluateUntil(t, s, func() bool { return s.NumQueries() == 1 })
	waitEvent(t, c, client.EventUpdates)
	c.Commit(1)
	waitEvent(t, c, client.EventCommitted)

	s.Close()
	waitEvent(t, c, client.EventDisconnected)

	// Fresh server, no repository: the wakeup checksum cannot match (the
	// restarted server has an empty committed answer, the client a
	// non-empty one), so the server falls back to the complete answer.
	s2 := startServer(t, Config{})
	if err := c.Reconnect(s2.Addr().String()); err != nil {
		t.Fatal(err)
	}
	ev := waitEvent(t, c, client.EventFullAnswer)
	if ev.Query != 1 {
		t.Fatalf("full answer for query %d", ev.Query)
	}
	// The full answer is empty (objects not re-reported yet): client must
	// have reset.
	if ans, _ := c.Answer(1); len(ans) != 0 {
		t.Fatalf("answer after fallback = %v", ans)
	}

	// Objects reappear; normal incremental flow resumes.
	c.ReportObject(core.ObjectUpdate{ID: 1, Kind: core.Moving, Loc: geo.Pt(5, 5), T: 9})
	evaluateUntil(t, s2, func() bool { return s2.NumObjects() == 1 })
	waitEvent(t, c, client.EventUpdates)
	if ans, _ := c.Answer(1); fmt.Sprint(ans) != "[1]" {
		t.Fatalf("answer after resume = %v", ans)
	}
}

func TestTickerDrivenServer(t *testing.T) {
	s := startServer(t, Config{Interval: 5 * time.Millisecond})
	c, err := client.Dial(s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.ReportObject(core.ObjectUpdate{ID: 1, Kind: core.Moving, Loc: geo.Pt(1, 1)})
	c.RegisterQuery(core.QueryUpdate{ID: 1, Kind: core.Range, Region: geo.R(0, 0, 2, 2)})
	// No manual Evaluate: the ticker must deliver.
	ev := waitEvent(t, c, client.EventUpdates)
	if len(ev.Updates) != 1 || ev.Updates[0].Object != 1 {
		t.Fatalf("updates = %v", ev.Updates)
	}
}

func TestMultipleClientsIsolation(t *testing.T) {
	s := startServer(t, Config{})
	addr := s.Addr().String()
	c1, _ := client.Dial(addr)
	defer c1.Close()
	c2, _ := client.Dial(addr)
	defer c2.Close()

	c1.RegisterQuery(core.QueryUpdate{ID: 1, Kind: core.Range, Region: geo.R(0, 0, 2, 2)})
	c2.RegisterQuery(core.QueryUpdate{ID: 2, Kind: core.Range, Region: geo.R(8, 8, 10, 10)})
	c1.ReportObject(core.ObjectUpdate{ID: 1, Kind: core.Moving, Loc: geo.Pt(1, 1)})
	c1.ReportObject(core.ObjectUpdate{ID: 2, Kind: core.Moving, Loc: geo.Pt(9, 9)})
	evaluateUntil(t, s, func() bool { return s.NumObjects() == 2 && s.NumQueries() == 2 })

	ev1 := waitEvent(t, c1, client.EventUpdates)
	for _, u := range ev1.Updates {
		if u.Query != 1 {
			t.Fatalf("client 1 received foreign update %v", u)
		}
	}
	ev2 := waitEvent(t, c2, client.EventUpdates)
	for _, u := range ev2.Updates {
		if u.Query != 2 {
			t.Fatalf("client 2 received foreign update %v", u)
		}
	}
}

func TestStationaryCatalogSurvivesRestart(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "repo")
	s := startServer(t, Config{RepositoryDir: dir})
	c, err := client.Dial(s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// A stationary gas station is reported once, ever.
	c.ReportObject(core.ObjectUpdate{ID: 77, Kind: core.Stationary, Loc: geo.Pt(5, 5)})
	evaluateUntil(t, s, func() bool { return s.NumObjects() == 1 })
	s.Close()
	waitEvent(t, c, client.EventDisconnected)

	// The restarted server knows it without any client re-reporting.
	s2 := startServer(t, Config{RepositoryDir: dir})
	if s2.NumObjects() != 1 {
		t.Fatalf("restarted server has %d objects", s2.NumObjects())
	}
	c2, err := client.Dial(s2.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	c2.RegisterQuery(core.QueryUpdate{ID: 1, Kind: core.Range, Region: geo.R(4, 4, 6, 6)})
	evaluateUntil(t, s2, func() bool { return s2.NumQueries() == 1 })
	ev := waitEvent(t, c2, client.EventUpdates)
	if len(ev.Updates) != 1 || ev.Updates[0].Object != 77 {
		t.Fatalf("updates = %v", ev.Updates)
	}

	// Removing the stationary object removes it from the durable catalog.
	c2.ReportObject(core.ObjectUpdate{ID: 77, Remove: true})
	evaluateUntil(t, s2, func() bool { return s2.NumObjects() == 0 })
	s2.Close()
	s3 := startServer(t, Config{RepositoryDir: dir})
	if s3.NumObjects() != 0 {
		t.Fatalf("catalog resurrection: %d objects", s3.NumObjects())
	}
}

// TestConcurrentClientsStress hammers the server with several concurrent
// clients that report, subscribe, commit, drop, and recover while the
// ticker evaluates, then verifies every surviving client converges to the
// server's answers. Run with -race to exercise the locking.
func TestConcurrentClientsStress(t *testing.T) {
	s := startServer(t, Config{Interval: 2 * time.Millisecond})
	addr := s.Addr().String()

	const (
		numClients = 8
		numObjects = 30
		steps      = 40
	)
	var wg sync.WaitGroup
	errs := make(chan error, numClients)
	for ci := 0; ci < numClients; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			c, err := client.Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			// Drain events concurrently.
			done := make(chan struct{})
			go func() {
				defer close(done)
				for range c.Events() {
				}
			}()

			rng := rand.New(rand.NewSource(int64(ci)))
			q := core.QueryID(ci + 1)
			if err := c.RegisterQuery(core.QueryUpdate{
				ID: q, Kind: core.Range,
				Region: geo.RectAt(geo.Pt(rng.Float64()*10, rng.Float64()*10), 3),
			}); err != nil {
				errs <- err
				return
			}
			base := core.ObjectID(ci*numObjects + 1)
			for step := 0; step < steps; step++ {
				id := base + core.ObjectID(rng.Intn(numObjects))
				if err := c.ReportObject(core.ObjectUpdate{
					ID: id, Kind: core.Moving,
					Loc: geo.Pt(rng.Float64()*10, rng.Float64()*10),
					T:   float64(step),
				}); err != nil {
					errs <- err
					return
				}
				switch rng.Intn(10) {
				case 0:
					if err := c.Commit(q); err != nil {
						errs <- err
						return
					}
				case 1:
					c.Drop()
					// Wait for the read loop to notice, then recover.
					time.Sleep(5 * time.Millisecond)
					if err := c.Reconnect(addr); err != nil {
						errs <- err
						return
					}
				}
			}
			c.Close()
			<-done
		}(ci)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if s.NumQueries() != numClients {
		t.Fatalf("queries registered: %d", s.NumQueries())
	}
}

func TestStatsRequest(t *testing.T) {
	s := startServer(t, Config{})
	c, err := client.Dial(s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	c.ReportObject(core.ObjectUpdate{ID: 1, Kind: core.Moving, Loc: geo.Pt(1, 1)})
	c.RegisterQuery(core.QueryUpdate{ID: 1, Kind: core.Range, Region: geo.R(0, 0, 2, 2)})
	evaluateUntil(t, s, func() bool { return s.NumObjects() == 1 })

	if err := c.RequestStats(); err != nil {
		t.Fatal(err)
	}
	ev := waitEvent(t, c, client.EventStats)
	if ev.Stats == nil {
		t.Fatal("stats payload missing")
	}
	if ev.Stats.Objects != 1 || ev.Stats.Queries != 1 {
		t.Fatalf("stats population: %+v", ev.Stats)
	}
	if ev.Stats.Stats.ObjectReports != 1 || ev.Stats.Stats.PositiveUpdates != 1 {
		t.Fatalf("stats counters: %+v", ev.Stats.Stats)
	}
	if ev.Stats.Uptime < 0 {
		t.Fatalf("uptime: %v", ev.Stats.Uptime)
	}
}
