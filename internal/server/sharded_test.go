package server

import (
	"testing"

	"cqp/internal/client"
	"cqp/internal/core"
	"cqp/internal/geo"
)

// TestShardedServerEndToEnd runs the standard range-query lifecycle
// against a server backed by the 4-shard processor: the network
// behavior must be indistinguishable from the single-engine default.
func TestShardedServerEndToEnd(t *testing.T) {
	s := startServer(t, Config{Shards: 4})
	c, err := client.Dial(s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Objects in three different tiles of the 2×2 split, one query
	// spanning all of them.
	c.ReportObject(core.ObjectUpdate{ID: 1, Kind: core.Moving, Loc: geo.Pt(2, 2)})
	c.ReportObject(core.ObjectUpdate{ID: 2, Kind: core.Moving, Loc: geo.Pt(8, 2)})
	c.ReportObject(core.ObjectUpdate{ID: 3, Kind: core.Moving, Loc: geo.Pt(2, 8)})
	c.RegisterQuery(core.QueryUpdate{ID: 1, Kind: core.Range, Region: geo.R(1, 1, 9, 9)})
	evaluateUntil(t, s, func() bool { return s.NumObjects() == 3 && s.NumQueries() == 1 })
	evaluateUntil(t, s, func() bool {
		ans, ok := c.Answer(1)
		return ok && len(ans) == 3
	})

	// A cross-shard migration that stays inside the query: no updates,
	// answer intact.
	c.ReportObject(core.ObjectUpdate{ID: 1, Kind: core.Moving, Loc: geo.Pt(8, 8), T: 1})
	evaluateUntil(t, s, func() bool { st := s.Stats(); return st.ObjectReports >= 4 })
	if ans, _ := c.Answer(1); len(ans) != 3 {
		t.Fatalf("answer after in-query migration = %v", ans)
	}

	// Leaving the query from the new shard: exactly one negative.
	c.ReportObject(core.ObjectUpdate{ID: 1, Kind: core.Moving, Loc: geo.Pt(9.8, 9.8), T: 2})
	evaluateUntil(t, s, func() bool { st := s.Stats(); return st.NegativeUpdates >= 1 })
	evaluateUntil(t, s, func() bool {
		ans, _ := c.Answer(1)
		return len(ans) == 2
	})

	// Commit flows through the sharded committed-answer bookkeeping.
	if err := c.Commit(1); err != nil {
		t.Fatal(err)
	}
	evaluateUntil(t, s, func() bool {
		s.mu.Lock()
		defer s.mu.Unlock()
		ca, ok := s.engine.CommittedAnswer(1)
		return ok && len(ca) == 2
	})
}

// TestShardsConfigValidation rejects negative shard counts and treats 0
// and 1 as the single engine.
func TestShardsConfigValidation(t *testing.T) {
	if _, err := Listen("127.0.0.1:0", Config{
		Engine: core.Options{Bounds: geo.R(0, 0, 1, 1)},
		Shards: -2,
		Logger: quietLogger(),
	}); err == nil {
		t.Fatal("negative Shards should fail")
	}
	for _, n := range []int{0, 1} {
		s := startServer(t, Config{Shards: n})
		if _, ok := s.engine.(*core.Engine); !ok {
			t.Fatalf("Shards=%d should run the single core engine, got %T", n, s.engine)
		}
		s.Close()
	}
}
