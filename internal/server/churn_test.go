package server

import (
	"net"
	"testing"
	"time"

	"cqp/internal/client"
	"cqp/internal/core"
	"cqp/internal/geo"
	"cqp/internal/obs"
	"cqp/internal/wire"
)

// smallBufListener shrinks each accepted connection's kernel write
// buffer so a non-reading peer backs the session writer up after a few
// KB instead of after hundreds — the lever that makes outbox overflow
// deterministic in TestSessionChurnAndShedReconcile.
type smallBufListener struct{ net.Listener }

func (l smallBufListener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if tc, ok := c.(*net.TCPConn); err == nil && ok {
		tc.SetWriteBuffer(2048)
	}
	return c, err
}

// TestSessionChurnAndShedReconcile cycles sessions rapidly — connect,
// subscribe, disconnect — then wedges a non-reading subscriber until
// the server sheds it, and checks that the session accounting closes
// exactly: sessions_total counts every dial, sheds counts exactly the
// wedged client, and the live-session gauge returns to zero. The
// package's leakcheck TestMain turns any writer/reader goroutine left
// behind by the churn into a failure.
func TestSessionChurnAndShedReconcile(t *testing.T) {
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	s := startServer(t, Config{
		Listener:   smallBufListener{inner},
		OutboxSize: 1,
		Metrics:    reg,
	})
	addr := s.Addr().String()
	sessions := reg.Gauge("server.sessions")
	total := reg.Counter("server.sessions_total")
	sheds := reg.Counter("server.sheds")

	// Phase 1: rapid churn. Each cycle is a full session lifecycle.
	const churn = 15
	for i := 0; i < churn; i++ {
		c, err := client.Dial(addr)
		if err != nil {
			t.Fatalf("churn dial %d: %v", i, err)
		}
		if err := c.RegisterQuery(core.QueryUpdate{ID: core.QueryID(100 + i), Kind: core.Range, Region: geo.R(0, 0, 1, 1)}); err != nil {
			t.Fatalf("churn register %d: %v", i, err)
		}
		if err := c.ReportObject(core.ObjectUpdate{ID: core.ObjectID(1000 + i), Kind: core.Moving, Loc: geo.Pt(5, 5)}); err != nil {
			t.Fatalf("churn report %d: %v", i, err)
		}
		if err := c.Close(); err != nil {
			t.Fatalf("churn close %d: %v", i, err)
		}
	}

	// Phase 2: a healthy reporter plus a wedged subscriber. The wedged
	// peer registers a query covering the whole space and never reads;
	// its socket buffers are tiny on both sides, so bulk update frames
	// wedge the session writer and the size-1 outbox overflows.
	reporter, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer reporter.Close()

	wedged, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer wedged.Close()
	if tc, ok := wedged.(*net.TCPConn); ok {
		tc.SetReadBuffer(2048)
	}
	ww := wire.NewWriter(wedged)
	if err := ww.Write(wire.QueryReport{Update: core.QueryUpdate{ID: 1, Kind: core.Range, Region: geo.R(0, 0, 5.5, 5.5)}}); err != nil {
		t.Fatal(err)
	}

	// Toggle a population across the query boundary until the overflow
	// sheds the wedged session. Each evaluation streams one bulk frame
	// of ~500 updates, several KB — enough to fill the shrunken socket
	// buffers within a few rounds.
	const flock = 500
	shedSeen := false
	for round := 0; round < 200 && !shedSeen; round++ {
		// Alternate between inside the region and outside it (but
		// inside the space), so every object flips membership — and
		// produces an update — every round.
		loc := geo.Pt(5, 5)
		if round%2 == 1 {
			loc = geo.Pt(9.9, 9.9)
		}
		for i := 0; i < flock; i++ {
			if err := reporter.ReportObject(core.ObjectUpdate{ID: core.ObjectID(5000 + i), Kind: core.Moving, Loc: loc}); err != nil {
				t.Fatalf("round %d report: %v", round, err)
			}
		}
		s.Evaluate()
		shedSeen = sheds.Value() > 0
		time.Sleep(2 * time.Millisecond)
	}
	if !shedSeen {
		t.Fatal("wedged session was never shed")
	}

	// Exact reconciliation: every dial was counted, exactly one session
	// was shed, and once the survivors close, the gauge drains to zero.
	if got := sheds.Value(); got != 1 {
		t.Errorf("sheds = %d, want exactly 1", got)
	}
	wantTotal := uint64(churn + 2) // churn cycles + reporter + wedged
	if got := total.Value(); got != wantTotal {
		t.Errorf("sessions_total = %d, want %d", got, wantTotal)
	}
	if err := reporter.Close(); err != nil {
		t.Fatal(err)
	}
	wedged.Close()
	deadline := time.Now().Add(5 * time.Second)
	for sessions.Value() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("sessions gauge stuck at %d, want 0", sessions.Value())
		}
		time.Sleep(5 * time.Millisecond)
	}
}
