package server

import (
	"testing"

	"cqp/internal/testutil/leakcheck"
)

// TestMain fails the package if any test leaves a goroutine running —
// every server, session, and shard started here must be fully joined by
// its Close path.
func TestMain(m *testing.M) {
	leakcheck.Main(m)
}
