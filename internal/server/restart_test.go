package server

import (
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"cqp/internal/client"
	"cqp/internal/core"
	"cqp/internal/geo"
)

// listenSamePort restarts a server on the exact address of its
// predecessor (needed so auto-reconnecting clients find it again),
// retrying briefly in case the OS has not released the port yet.
func listenSamePort(t *testing.T, addr string, cfg Config) *Server {
	t.Helper()
	if cfg.Logger == nil {
		cfg.Logger = quietLogger()
	}
	if cfg.Engine.Bounds.Empty() {
		cfg.Engine = core.Options{Bounds: geo.R(0, 0, 10, 10), GridN: 8}
	}
	for i := 0; i < 50; i++ {
		s, err := Listen(addr, cfg)
		if err == nil {
			t.Cleanup(func() { s.Close() })
			return s
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("could not rebind %s", addr)
	return nil
}

// TestRestartRecoveryPaths drives both sides of the wakeup handshake
// across a full server restart backed by the repository:
//
//   - Client A committed, and its snapshot matches the durably committed
//     answer → the restarted server must heal it with the incremental
//     MsgRecoveryDiff carrying exactly the changes since the commit.
//   - Client B's last commit never reached the server (it died first), so
//     B's rolled-back snapshot diverges from the restored committed
//     answer → the restarted server must fall back to MsgFullAnswer.
//
// B runs with AutoReconnect and must resynchronize without any manual
// reconnection once the server is back on the same address.
func TestRestartRecoveryPaths(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "repo")
	s := startServer(t, Config{RepositoryDir: dir})
	addr := s.Addr().String()

	a, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := client.DialOptions(addr, client.Options{
		AutoReconnect: true,
		Retry: client.RetryPolicy{
			InitialBackoff: 10 * time.Millisecond,
			MaxBackoff:     100 * time.Millisecond,
			Seed:           7,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	feed, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer feed.Close()

	// QA over {1, 2}; QB over {3}.
	feed.ReportObject(core.ObjectUpdate{ID: 1, Kind: core.Moving, Loc: geo.Pt(1, 1)})
	feed.ReportObject(core.ObjectUpdate{ID: 2, Kind: core.Moving, Loc: geo.Pt(1.5, 1.5)})
	feed.ReportObject(core.ObjectUpdate{ID: 3, Kind: core.Moving, Loc: geo.Pt(9, 9)})
	a.RegisterQuery(core.QueryUpdate{ID: 1, Kind: core.Range, Region: geo.R(0, 0, 2, 2)})
	b.RegisterQuery(core.QueryUpdate{ID: 2, Kind: core.Range, Region: geo.R(8, 8, 10, 10)})
	evaluateUntil(t, s, func() bool { return s.NumObjects() == 3 && s.NumQueries() == 2 })
	waitEvent(t, a, client.EventUpdates)
	waitEvent(t, b, client.EventUpdates)

	// Both commit; the commits are durable.
	if err := a.Commit(1); err != nil {
		t.Fatal(err)
	}
	waitEvent(t, a, client.EventCommitted)
	if err := b.Commit(2); err != nil {
		t.Fatal(err)
	}
	waitEvent(t, b, client.EventCommitted)

	// B's answer advances past its durable commit: object 4 enters QB.
	feed.ReportObject(core.ObjectUpdate{ID: 4, Kind: core.Moving, Loc: geo.Pt(9.5, 9.5), T: 1})
	evaluateUntil(t, s, func() bool { return s.Stats().ObjectReports >= 4 })
	waitEvent(t, b, client.EventUpdates)

	// Hard restart. B commits into the void (the server is gone), so its
	// snapshot becomes {3, 4} while the repository still holds {3}.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	waitEvent(t, a, client.EventDisconnected)
	waitEvent(t, b, client.EventDisconnected)
	b.Commit(2) // write fails or is lost; the local snapshot still advances

	s2 := listenSamePort(t, addr, Config{RepositoryDir: dir})

	// B auto-reconnects: its wakeup checksum ({3,4}) cannot match the
	// restored committed answer ({3}), so the server heals it with the
	// complete answer.
	waitEvent(t, b, client.EventFullAnswer)

	// The world re-reports, with object 1 having left QA while the
	// server was down.
	feed2, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer feed2.Close()
	feed2.ReportObject(core.ObjectUpdate{ID: 1, Kind: core.Moving, Loc: geo.Pt(5, 5), T: 2})
	feed2.ReportObject(core.ObjectUpdate{ID: 2, Kind: core.Moving, Loc: geo.Pt(1.5, 1.5), T: 2})
	feed2.ReportObject(core.ObjectUpdate{ID: 3, Kind: core.Moving, Loc: geo.Pt(9, 9), T: 2})
	feed2.ReportObject(core.ObjectUpdate{ID: 4, Kind: core.Moving, Loc: geo.Pt(9.5, 9.5), T: 2})
	evaluateUntil(t, s2, func() bool { return s2.NumObjects() == 4 })

	// A reconnects manually: its snapshot {1,2} matches the committed
	// answer restored from the repository, so recovery is the incremental
	// diff — exactly −1.
	if err := a.Reconnect(addr); err != nil {
		t.Fatal(err)
	}
	ev := waitEvent(t, a, client.EventRecovered)
	if len(ev.Updates) != 1 || ev.Updates[0].Positive || ev.Updates[0].Object != 1 {
		t.Fatalf("recovery diff = %v, want [-1]", ev.Updates)
	}
	if ans, _ := a.Answer(1); fmt.Sprint(ans) != "[2]" {
		t.Fatalf("A after recovery: %v", ans)
	}

	// B converges to the server's answer for QB through routine updates.
	deadline := time.Now().Add(5 * time.Second)
	for {
		s2.Evaluate()
		want, _ := s2.Answer(2)
		got, _ := b.Answer(2)
		if len(want) == 2 && fmt.Sprint(got) == fmt.Sprint(want) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("B never converged: client %v, server %v", got, want)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
