package server

import (
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"cqp/internal/client"
	"cqp/internal/core"
	"cqp/internal/geo"
)

// stallListener wraps accepted connections so every server→client write
// blocks until release is closed; client→server traffic is unaffected.
// It makes the shed-slow-client path deterministic: the session writer
// wedges on the first frame, the outbox fills, and the next enqueue
// sheds.
type stallListener struct {
	net.Listener
	release chan struct{}
}

func (l *stallListener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return &stallConn{Conn: c, release: l.release}, nil
}

type stallConn struct {
	net.Conn
	release chan struct{}
}

func (c *stallConn) Write(p []byte) (int, error) {
	<-c.release
	return c.Conn.Write(p)
}

func TestShedSlowClientHealsOnReconnect(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	release := make(chan struct{})
	var releaseOnce sync.Once
	unstall := func() { releaseOnce.Do(func() { close(release) }) }
	s := startServer(t, Config{
		Listener:     &stallListener{Listener: ln, release: release},
		OutboxSize:   2,
		WriteTimeout: time.Second,
	})
	// Runs before the server's own cleanup: a wedged writer would
	// otherwise make Close hang if the test fails mid-way.
	t.Cleanup(unstall)
	addr := ln.Addr().String()

	sub, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	feed, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer feed.Close()

	feed.ReportObject(core.ObjectUpdate{ID: 1, Kind: core.Moving, Loc: geo.Pt(5, 5)})
	sub.RegisterQuery(core.QueryUpdate{ID: 1, Kind: core.Range, Region: geo.R(4, 4, 6, 6)})
	evaluateUntil(t, s, func() bool { return s.NumQueries() == 1 && s.NumObjects() == 1 })
	// The +1 update is now in the stalled writer's hands. Produce more
	// batches than writer (1) + outbox (2) can hold by toggling the
	// object in and out of the region; the 4th forces a shed.
	for i := 0; i < 6; i++ {
		loc := geo.Pt(9, 9) // out
		if i%2 == 1 {
			loc = geo.Pt(5, 5) // back in
		}
		feed.ReportObject(core.ObjectUpdate{ID: 1, Kind: core.Moving, Loc: loc, T: float64(i + 1)})
		reports := uint64(i + 2) // 1 initial + i+1 toggles
		evaluateUntil(t, s, func() bool { return s.Stats().ObjectReports >= reports })
	}
	// The subscriber was shed: its connection is closed server-side.
	waitEvent(t, sub, client.EventDisconnected)

	// Shed == out-of-sync. Un-stall the transport and run the paper's
	// recovery: the client reconnects, wakes up, and converges.
	unstall()
	if err := sub.Reconnect(addr); err != nil {
		t.Fatal(err)
	}
	waitEvent(t, sub, client.EventRecovered)
	want, _ := s.Answer(1)
	got, _ := sub.Answer(1)
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("after shed recovery: client %v, server %v", got, want)
	}
}

func TestHeartbeatKeepsIdleClientAlive(t *testing.T) {
	s := startServer(t, Config{
		HeartbeatInterval: 10 * time.Millisecond,
		ReadTimeout:       80 * time.Millisecond,
	})
	c, err := client.Dial(s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// The client sends nothing itself for several read-timeout windows;
	// its heartbeat echoes must keep the session alive.
	time.Sleep(400 * time.Millisecond)
	if err := c.RequestStats(); err != nil {
		t.Fatalf("idle client was reaped: %v", err)
	}
	waitEvent(t, c, client.EventStats)
}

func TestReadDeadlineReapsSilentPeer(t *testing.T) {
	s := startServer(t, Config{
		HeartbeatInterval: 10 * time.Millisecond,
		ReadTimeout:       50 * time.Millisecond,
	})
	// A raw TCP peer that never echoes heartbeats (nor sends anything)
	// must be disconnected by the read deadline.
	raw, err := net.Dial("tcp", s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	raw.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 4096)
	for {
		if _, err := raw.Read(buf); err != nil {
			return // server closed the connection: reaped
		}
	}
}

func TestCloseDrainsQueuedBatches(t *testing.T) {
	s := startServer(t, Config{})
	c, err := client.Dial(s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	c.ReportObject(core.ObjectUpdate{ID: 1, Kind: core.Moving, Loc: geo.Pt(5, 5)})
	c.RegisterQuery(core.QueryUpdate{ID: 1, Kind: core.Range, Region: geo.R(4, 4, 6, 6)})
	evaluateUntil(t, s, func() bool { return s.NumQueries() == 1 && s.NumObjects() == 1 })
	// Close immediately after evaluation: the just-queued +1 batch must
	// still be delivered (drained) before the connection is torn down.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		s.Close()
	}()
	ev := waitEvent(t, c, client.EventUpdates)
	if len(ev.Updates) != 1 || !ev.Updates[0].Positive || ev.Updates[0].Object != 1 {
		t.Fatalf("drained updates = %v", ev.Updates)
	}
	waitEvent(t, c, client.EventDisconnected)
	wg.Wait()
}
