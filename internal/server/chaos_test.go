package server

import (
	"fmt"
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"

	"cqp/internal/client"
	"cqp/internal/core"
	"cqp/internal/faultnet"
	"cqp/internal/geo"
)

// TestChaosConvergence is the failure-mode counterpart of the repo's
// central invariant: under a seeded storm of injected latency, resets,
// partial writes, and bit corruption, every client's answer must still
// converge to the server engine's answer once the storm ends — via the
// paper's out-of-sync machinery (bounded outboxes shedding slow peers,
// automatic reconnect with backoff, wakeup checksums, and commit-time
// full-answer healing).
func TestChaosConvergence(t *testing.T) {
	const (
		seed       = 0xC0FFEE
		numClients = 8
		numObjects = 6 // per client
		steps      = 40
	)
	inj := faultnet.New(faultnet.Faults{
		Seed:          seed,
		Grace:         4, // let the initial register/report handshake through
		PDelay:        0.05,
		MaxDelay:      2 * time.Millisecond,
		PReset:        0.015,
		PPartialWrite: 0.01,
		PCorrupt:      0.01,
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := startServer(t, Config{
		Listener:          inj.Listener(ln),
		Interval:          2 * time.Millisecond,
		HeartbeatInterval: 20 * time.Millisecond,
		ReadTimeout:       500 * time.Millisecond,
		WriteTimeout:      200 * time.Millisecond,
		OutboxSize:        32,
	})
	addr := ln.Addr().String()

	clients := make([]*client.Client, numClients)
	for ci := range clients {
		c, err := client.DialOptions(addr, client.Options{
			AutoReconnect: true,
			Retry: client.RetryPolicy{
				InitialBackoff: 2 * time.Millisecond,
				MaxBackoff:     20 * time.Millisecond,
				Jitter:         0.2,
				Seed:           int64(ci + 1),
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		clients[ci] = c
		defer c.Close()
		go func() { // drain events until Close
			for range c.Events() {
			}
		}()
	}

	// The storm: every client reports a private flock of objects moving
	// through its query region, committing now and then, while faultnet
	// tears at every connection.
	var wg sync.WaitGroup
	for ci, c := range clients {
		wg.Add(1)
		go func(ci int, c *client.Client) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + ci)))
			q := core.QueryID(ci + 1)
			center := geo.Pt(1+rng.Float64()*8, 1+rng.Float64()*8)
			def := core.QueryUpdate{ID: q, Kind: core.Range, Region: geo.RectAt(center, 2)}
			for i := 0; i < 100; i++ {
				if c.RegisterQuery(def) == nil {
					break
				}
				time.Sleep(5 * time.Millisecond)
			}
			base := core.ObjectID(ci*numObjects + 1)
			for step := 0; step < steps; step++ {
				id := base + core.ObjectID(rng.Intn(numObjects))
				// Near the region boundary, so objects keep crossing it.
				loc := geo.Pt(center.X-3+rng.Float64()*6, center.Y-3+rng.Float64()*6)
				c.ReportObject(core.ObjectUpdate{ // errors heal via reconnect
					ID: id, Kind: core.Moving, Loc: loc, T: float64(step),
				})
				if rng.Intn(5) == 0 {
					c.Commit(q)
				}
				time.Sleep(time.Millisecond)
			}
		}(ci, c)
	}
	wg.Wait()

	// Storm over: faults off, transport transparent again.
	inj.Disable()

	// Every client forces one last resynchronization (covering even the
	// pathological case where corruption mangled its registration) and
	// must then converge to the engine's answer, healed by the
	// commit-checksum handshake.
	for ci, c := range clients {
		q := core.QueryID(ci + 1)
		c.Drop() // auto-reconnect issues the wakeup resync
		deadline := time.Now().Add(20 * time.Second)
		for {
			c.Commit(q)
			time.Sleep(20 * time.Millisecond)
			want, _ := s.Answer(q)
			got, ok := c.Answer(q)
			if ok && fmt.Sprint(want) == fmt.Sprint(got) {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("client %d never converged: client %v, server %v", ci, got, want)
			}
		}
	}
}
