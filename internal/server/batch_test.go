package server

import (
	"bytes"
	"io"
	"net"
	"testing"

	"cqp/internal/core"
	"cqp/internal/obs"
	"cqp/internal/wire"
)

// TestWriterBatchedDrainByteIdentical drives sessionWriter directly with
// a pre-filled outbox and proves the coalesced drain emits exactly the
// byte stream of the unbatched path: every queued frame encoded with a
// per-message wire.Writer.Write, concatenated. It also pins that the
// whole queue went out as ONE buffered write (a single write_batch
// observation covering all frames).
func TestWriterBatchedDrainByteIdentical(t *testing.T) {
	msgs := []wire.Message{
		wire.UpdateBatch{Time: 1, Updates: []core.Update{
			{Query: 1, Object: 2, Positive: true},
			{Query: 1, Object: 3, Positive: false},
		}},
		wire.Heartbeat{Time: 2},
		wire.CommitAck{Query: 4, Checksum: 99},
		wire.FullAnswer{Query: 4, Time: 3, Objects: []core.ObjectID{7, 8}},
		wire.RecoveryDiff{Time: 4, Updates: []core.Update{{Query: 5, Object: 6, Positive: true}}},
	}

	// The unbatched reference stream: one Write (encode + flush) each.
	var want bytes.Buffer
	uw := wire.NewWriter(&want)
	for _, m := range msgs {
		if err := uw.Write(m); err != nil {
			t.Fatal(err)
		}
	}

	reg := obs.NewRegistry()
	s := &Server{m: newServerMetrics(reg), logger: quietLogger()}
	local, remote := net.Pipe()
	sess := &session{
		conn:       local,
		w:          wire.NewWriter(local),
		outbox:     make(chan wire.Message, len(msgs)),
		writerDone: make(chan struct{}),
	}
	// Queue everything, then close: the writer's first wakeup must find
	// the whole backlog and drain it in one batch.
	for _, m := range msgs {
		sess.outbox <- m
	}
	sess.closeOutbox()

	type readResult struct {
		data []byte
		err  error
	}
	read := make(chan readResult, 1)
	go func() {
		data, err := io.ReadAll(remote)
		read <- readResult{data, err}
	}()
	go s.sessionWriter(sess)
	<-sess.writerDone

	got := <-read
	if got.err != nil {
		t.Fatalf("reading session stream: %v", got.err)
	}
	if !bytes.Equal(got.data, want.Bytes()) {
		t.Fatalf("batched drain stream diverges from unbatched path: %d vs %d bytes",
			len(got.data), want.Len())
	}

	// The whole backlog went out as one coalesced write.
	if got := reg.Counter("server.frames_out").Value(); got != uint64(len(msgs)) {
		t.Errorf("frames_out = %d, want %d", got, len(msgs))
	}
	if got := reg.Counter("server.bytes_out").Value(); got != uint64(want.Len()) {
		t.Errorf("bytes_out = %d, want %d", got, want.Len())
	}
	h := reg.Histogram("server.write_batch_frames", obs.SizeBuckets)
	if h.Count() != 1 || h.Sum() != int64(len(msgs)) {
		t.Errorf("write_batch_frames count=%d sum=%d, want one batch of %d frames",
			h.Count(), h.Sum(), len(msgs))
	}
}

// TestOutboxPolicies pins the two full-outbox behaviors at the send()
// layer: ShedSession kills the session and counts a shed; DropNewest
// drops the frame, counts it, and keeps the session alive.
func TestOutboxPolicies(t *testing.T) {
	mk := func(policy OutboxPolicy) (*Server, *session, *obs.Registry) {
		reg := obs.NewRegistry()
		s := &Server{m: newServerMetrics(reg), logger: quietLogger(), outboxPolicy: policy}
		local, _ := net.Pipe()
		sess := &session{
			conn:       local,
			w:          wire.NewWriter(local),
			outbox:     make(chan wire.Message, 1), // writer never drains it
			writerDone: make(chan struct{}),
		}
		return s, sess, reg
	}

	s, sess, reg := mk(ShedSession)
	s.send(sess, wire.Heartbeat{Time: 1}) // fills the outbox
	s.send(sess, wire.Heartbeat{Time: 2}) // overflows → shed
	if got := reg.Counter("server.sheds").Value(); got != 1 {
		t.Errorf("sheds = %d, want 1", got)
	}
	if !sess.isDead() {
		t.Error("ShedSession left the session alive")
	}

	s, sess, reg = mk(DropNewest)
	s.send(sess, wire.Heartbeat{Time: 1})
	s.send(sess, wire.Heartbeat{Time: 2}) // overflows → dropped
	s.send(sess, wire.Heartbeat{Time: 3}) // still full → dropped again
	if got := reg.Counter("server.outbox_dropped").Value(); got != 2 {
		t.Errorf("outbox_dropped = %d, want 2", got)
	}
	if got := reg.Counter("server.sheds").Value(); got != 0 {
		t.Errorf("sheds = %d, want 0 under DropNewest", got)
	}
	if sess.isDead() {
		t.Error("DropNewest killed the session")
	}
}
