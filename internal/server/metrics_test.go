package server

import (
	"testing"
	"time"

	"cqp/internal/client"
	"cqp/internal/core"
	"cqp/internal/geo"
	"cqp/internal/obs"
)

// TestServerMetricsObserveTraffic wires a registry into a live server
// and checks its counters against traffic the test can observe on both
// sides of the wire: a client registry counts its own frames, the
// server registry counts the mirror image.
func TestServerMetricsObserveTraffic(t *testing.T) {
	sreg := obs.NewRegistry()
	s := startServer(t, Config{Metrics: sreg})

	creg := obs.NewRegistry()
	c, err := client.DialOptions(s.Addr().String(), client.Options{Metrics: creg})
	if err != nil {
		t.Fatal(err)
	}

	if err := c.ReportObject(core.ObjectUpdate{ID: 1, Kind: core.Moving, Loc: geo.Pt(3, 3)}); err != nil {
		t.Fatal(err)
	}
	if err := c.RegisterQuery(core.QueryUpdate{ID: 1, Kind: core.Range, Region: geo.R(2, 2, 4, 4)}); err != nil {
		t.Fatal(err)
	}
	evaluateUntil(t, s, func() bool { return s.NumObjects() == 1 && s.NumQueries() == 1 })
	waitEvent(t, c, client.EventUpdates)

	if got := sreg.Gauge("server.sessions").Value(); got != 1 {
		t.Errorf("server.sessions = %d, want 1", got)
	}
	if got := sreg.Counter("server.sessions_total").Value(); got != 1 {
		t.Errorf("server.sessions_total = %d, want 1", got)
	}
	if got := sreg.Gauge("server.subscriptions").Value(); got != 1 {
		t.Errorf("server.subscriptions = %d, want 1", got)
	}
	if got := sreg.Counter("server.evaluations").Value(); got == 0 {
		t.Error("server.evaluations = 0 after Evaluate calls")
	}
	if got := sreg.Counter("server.updates.streamed").Value(); got == 0 {
		t.Error("server.updates.streamed = 0 after a delivered positive update")
	}
	if got := sreg.Counter("server.bytes_in").Value(); got == 0 {
		t.Error("server.bytes_in = 0 after inbound frames")
	}
	if got := sreg.Counter("server.bytes_out").Value(); got == 0 {
		t.Error("server.bytes_out = 0 after outbound frames")
	}
	// The engine metrics share the registry when Config.Metrics is set.
	if got := sreg.Counter("engine.steps").Value(); got == 0 {
		t.Error("engine.steps = 0: Config.Metrics was not forwarded to the engine")
	}

	// Commit round-trips increment the commit counter.
	if err := c.Commit(1); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(5 * time.Second)
	for sreg.Counter("server.commits").Value() == 0 {
		select {
		case <-deadline:
			t.Fatal("server.commits never incremented")
		case <-time.After(5 * time.Millisecond):
		}
	}

	// Frame accounting: the server must have read at least as many
	// frames as the client has successfully written so far, and vice
	// versa within the same slack (both sides keep chattering on
	// heartbeats, so exact equality is racy; the inequality direction
	// is exact because a frame is counted by the sender only after a
	// successful write that happened-before our read of the server
	// counter via the commit round-trip above).
	waitFrameBalance := func(name string, server func() uint64, clientSide func() uint64) {
		t.Helper()
		deadline := time.After(5 * time.Second)
		for {
			if server() >= clientSide() && server() > 0 {
				return
			}
			select {
			case <-deadline:
				t.Fatalf("%s: server=%d client=%d", name, server(), clientSide())
			case <-time.After(5 * time.Millisecond):
			}
		}
	}
	waitFrameBalance("frames_in vs client frames_out",
		func() uint64 { return sreg.Counter("server.frames_in").Value() },
		func() uint64 { return creg.Counter("client.frames_out").Value() })
	waitFrameBalance("client frames_in vs frames_out",
		func() uint64 { return creg.Counter("client.frames_in").Value() },
		func() uint64 { return sreg.Counter("server.frames_out").Value() })

	// Disconnect: the sessions gauge returns to zero.
	c.Close()
	deadline = time.After(5 * time.Second)
	for sreg.Gauge("server.sessions").Value() != 0 {
		select {
		case <-deadline:
			t.Fatalf("server.sessions = %d after client close, want 0",
				sreg.Gauge("server.sessions").Value())
		case <-time.After(5 * time.Millisecond):
		}
	}
}

// TestServerHeartbeatRTTMetric drives the server's heartbeat prober and
// checks the RTT histogram fills: the client echoes heartbeats, so each
// probe round-trip produces one observation.
func TestServerHeartbeatRTTMetric(t *testing.T) {
	sreg := obs.NewRegistry()
	s := startServer(t, Config{
		Metrics:           sreg,
		HeartbeatInterval: 20 * time.Millisecond,
	})
	c, err := client.Dial(s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	rtt := sreg.Histogram("server.heartbeat_rtt_ns", obs.DurationBuckets)
	deadline := time.After(5 * time.Second)
	for rtt.Count() == 0 {
		select {
		case <-deadline:
			t.Fatal("no heartbeat RTT observations after 5s of 20ms probes")
		case <-time.After(10 * time.Millisecond):
		}
	}
	if rtt.Sum() <= 0 {
		t.Errorf("heartbeat RTT sum = %d, want positive", rtt.Sum())
	}
}
