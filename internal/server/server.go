// Package server implements the location-aware server: a TCP front end
// over the incremental query processor (internal/core) with periodic bulk
// evaluation, per-query update streaming, durable commits through the
// repository, and the paper's out-of-sync client protocol.
//
// Protocol summary (see internal/wire):
//
//   - Clients push MsgObjectReport and MsgQueryReport; reports are
//     buffered and evaluated in bulk every evaluation interval.
//   - After each evaluation the server pushes one MsgUpdateBatch per
//     subscribed connection carrying only the positive/negative updates of
//     that connection's queries.
//   - MsgCommit acknowledges the stream; if the client's answer checksum
//     matches the server's current answer, the answer is committed (and
//     persisted), otherwise the server heals the client with a
//     MsgFullAnswer.
//   - MsgWakeup reconnects an out-of-sync client: if its checksum matches
//     the committed answer the server replies with the incremental
//     MsgRecoveryDiff, otherwise with a complete MsgFullAnswer.
//
// Connection lifecycle: each session owns a bounded outbox drained by a
// dedicated writer goroutine, so a stalled TCP peer can never block an
// evaluation tick. When the outbox overflows the session is shed — a shed
// client is simply an out-of-sync client, and the paper's wakeup protocol
// heals it on reconnect. Optional per-session read deadlines paired with
// periodic heartbeats reap silently dead peers, and Close drains every
// outbox before tearing connections down.
package server

import (
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"os"
	"sync"
	"time"

	"cqp/internal/core"
	"cqp/internal/geo"
	"cqp/internal/obs"
	"cqp/internal/repository"
	"cqp/internal/shard"
	"cqp/internal/wire"
)

// Defaults for the connection-lifecycle knobs in Config.
const (
	// DefaultWriteTimeout bounds one outbound frame write.
	DefaultWriteTimeout = 5 * time.Second
	// DefaultOutboxSize is the per-session outbound queue depth.
	DefaultOutboxSize = 128
	// DefaultMaxFrame caps inbound frames. Every legitimate
	// client→server message is far smaller; larger prefixes are hostile.
	DefaultMaxFrame = 1 << 20
)

// OutboxPolicy selects what happens when a session's outbox is full at
// enqueue time. The load harness (internal/loadgen) measures the shed
// point — the arrival rate at which sessions start hitting a full
// outbox — and these policies are the two ways to spend it.
type OutboxPolicy int

const (
	// ShedSession (the default) disconnects the slow client. A shed
	// client is simply an out-of-sync client: the wakeup protocol heals
	// it on reconnect. This bounds per-session memory strictly and
	// matches the paper's failure model.
	ShedSession OutboxPolicy = iota

	// DropNewest drops the frame but keeps the session connected. The
	// skipped updates surface as a checksum mismatch on the client's
	// next commit or wakeup, healing through the full-answer path.
	// Suits deployments where reconnect storms cost more than the
	// occasional full-answer heal; dropped frames are counted in
	// server.outbox_dropped.
	DropNewest
)

// Config parameterizes a Server.
type Config struct {
	// Engine configures the underlying query processor. Required.
	Engine core.Options

	// Shards selects the processor implementation: 0 or 1 runs the
	// single core.Engine (today's behavior); larger values run the
	// spatially sharded engine (internal/shard) with that many tile
	// shards evaluating in parallel. Negative values are rejected.
	Shards int

	// ShardHalo is the absolute halo margin added around each tile
	// engine's region when Shards > 1 (shard.Options.Halo). It only
	// tunes index resolution at tile seams — answers are invariant
	// under it; 0 picks one global grid cell.
	ShardHalo float64

	// ShardRepartition configures the sharded engine's load-aware
	// split/merge policy when Shards > 1; the zero value leaves the
	// partition static.
	ShardRepartition shard.RepartitionOptions

	// Processor, when non-nil, is used as the query processor instead of
	// constructing one from Engine/Shards (which are then ignored). The
	// server takes ownership: Close closes the processor if it implements
	// io.Closer. cmd/cqp-cluster injects the multi-process cluster
	// coordinator (internal/cluster) here.
	Processor core.Processor

	// Interval is the bulk-evaluation period Δt (the paper evaluates
	// every 5 seconds; tests use milliseconds). Zero disables the
	// automatic ticker; evaluation then happens only through Evaluate,
	// which tests use for determinism.
	Interval time.Duration

	// RepositoryDir enables durable commit persistence and location
	// history when non-empty.
	RepositoryDir string

	// Logger receives connection-level errors. Defaults to the standard
	// logger.
	Logger *log.Logger

	// Listener, when non-nil, is used instead of listening on the addr
	// passed to Listen. Tests use it to interpose fault injection
	// (internal/faultnet) or custom transports.
	Listener net.Listener

	// ReadTimeout is the per-message read deadline of a session; a peer
	// silent for longer is reaped. Zero disables deadlines. When set it
	// should comfortably exceed HeartbeatInterval so live-but-idle
	// clients (which echo heartbeats) survive.
	ReadTimeout time.Duration

	// WriteTimeout bounds each outbound frame write. Defaults to
	// DefaultWriteTimeout; negative disables the deadline.
	WriteTimeout time.Duration

	// HeartbeatInterval is the period of server→client heartbeats. Zero
	// disables them.
	HeartbeatInterval time.Duration

	// OutboxSize is the per-session outbound queue depth; when a
	// session's outbox is full the client is shed (disconnected) rather
	// than allowed to stall evaluation. Defaults to DefaultOutboxSize.
	// Size it from the measured shed point (see internal/loadgen and
	// EXPERIMENTS.md "Server capacity"): depth ≈ burst frames per
	// evaluation × evaluations a slow client may fall behind.
	OutboxSize int

	// OutboxPolicy selects the full-outbox behavior: ShedSession (the
	// zero value) disconnects the client, DropNewest drops the frame
	// and keeps the session.
	OutboxPolicy OutboxPolicy

	// MaxFrame caps inbound frame payloads. Defaults to DefaultMaxFrame.
	MaxFrame uint32

	// Metrics, when non-nil, registers the server's session metrics and
	// is threaded into the processor as Engine.Metrics (with
	// obs.WallClock as the engine clock unless Engine.Clock is already
	// set), so one registry carries all three tiers. The caller owns the
	// registry and typically serves it via obs.Handler.
	Metrics *obs.Registry
}

// Server is a running location-aware server. Create with Listen, stop
// with Close.
type Server struct {
	mu       sync.Mutex
	engine   core.Processor
	repo     *repository.Repository // nil when persistence is disabled
	subs     map[core.QueryID]*session
	sessions map[*session]struct{}
	draining bool // set by Close: no further outbox enqueues

	m      *serverMetrics
	updBuf []core.Update // evaluateLocked's reusable StepAppend buffer

	ln           net.Listener
	logger       *log.Logger
	interval     time.Duration
	readTimeout  time.Duration
	writeTimeout time.Duration
	heartbeat    time.Duration
	outboxSize   int
	outboxPolicy OutboxPolicy
	maxFrame     uint32
	start        time.Time

	wg        sync.WaitGroup
	closed    chan struct{}
	closeOnce sync.Once
}

// session is one client connection. The read loop (handleConn) and the
// writer goroutine share it; `dead` is guarded by its own mutex because
// the writer flips it without holding the server lock.
type session struct {
	conn       net.Conn
	w          *wire.Writer
	outbox     chan wire.Message
	outboxOnce sync.Once // guards close(outbox); callers hold Server.mu
	writerDone chan struct{}

	mu   sync.Mutex
	dead bool
}

// markDead flags the session and closes its connection (once). Safe from
// any goroutine.
func (sess *session) markDead() {
	sess.mu.Lock()
	already := sess.dead
	sess.dead = true
	sess.mu.Unlock()
	if !already {
		sess.conn.Close()
	}
}

func (sess *session) isDead() bool {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	return sess.dead
}

// closeOutbox releases the writer goroutine. Callers must hold Server.mu
// so the close cannot race an enqueue.
func (sess *session) closeOutbox() {
	sess.outboxOnce.Do(func() { close(sess.outbox) })
}

// Listen starts a server on addr (e.g. "127.0.0.1:0"). When cfg.Listener
// is set, addr is ignored and the provided listener is served instead.
func Listen(addr string, cfg Config) (*Server, error) {
	engine, err := newProcessor(cfg)
	if err != nil {
		return nil, err
	}
	var repo *repository.Repository
	if cfg.RepositoryDir != "" {
		repo, err = repository.Open(cfg.RepositoryDir)
		if err != nil {
			closeProcessor(engine)
			return nil, err
		}
	}
	ln := cfg.Listener
	if ln == nil {
		ln, err = net.Listen("tcp", addr)
		if err != nil {
			if repo != nil {
				repo.Close()
			}
			closeProcessor(engine)
			return nil, fmt.Errorf("server: listen: %w", err)
		}
	}
	logger := cfg.Logger
	if logger == nil {
		logger = log.Default()
	}
	writeTimeout := cfg.WriteTimeout
	switch {
	case writeTimeout == 0:
		writeTimeout = DefaultWriteTimeout
	case writeTimeout < 0:
		writeTimeout = 0
	}
	outboxSize := cfg.OutboxSize
	if outboxSize <= 0 {
		outboxSize = DefaultOutboxSize
	}
	maxFrame := cfg.MaxFrame
	if maxFrame == 0 {
		maxFrame = DefaultMaxFrame
	}
	s := &Server{
		engine:       engine,
		m:            newServerMetrics(cfg.Metrics),
		repo:         repo,
		subs:         make(map[core.QueryID]*session),
		sessions:     make(map[*session]struct{}),
		ln:           ln,
		logger:       logger,
		interval:     cfg.Interval,
		readTimeout:  cfg.ReadTimeout,
		writeTimeout: writeTimeout,
		heartbeat:    cfg.HeartbeatInterval,
		outboxSize:   outboxSize,
		outboxPolicy: cfg.OutboxPolicy,
		maxFrame:     maxFrame,
		start:        time.Now(),
		closed:       make(chan struct{}),
	}
	// Restore the stationary-object catalog (gas stations, hospitals, ...)
	// from the repository: stationary objects do not re-report after a
	// restart the way moving clients do.
	if repo != nil {
		err := repo.VisitStationary(func(id core.ObjectID, loc geo.Point) bool {
			engine.ReportObject(core.ObjectUpdate{ID: id, Kind: core.Stationary, Loc: loc})
			return true
		})
		if err != nil {
			ln.Close()
			repo.Close()
			closeProcessor(engine)
			return nil, err
		}
		engine.Step(0)
	}

	s.wg.Add(1)
	go s.acceptLoop()
	if s.interval > 0 {
		s.wg.Add(1)
		go s.tickLoop()
	}
	if s.heartbeat > 0 {
		s.wg.Add(1)
		go s.heartbeatLoop()
	}
	return s, nil
}

// Addr returns the listening address.
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// Close stops accepting connections, drains every session's queued
// outbound frames, terminates all sessions, and closes the repository.
// It is idempotent.
func (s *Server) Close() error {
	var err error
	s.closeOnce.Do(func() {
		close(s.closed)
		err = s.ln.Close()
		s.mu.Lock()
		s.draining = true
		// Release every writer: it drains its queued frames, then closes
		// the connection, which in turn unblocks the session's read loop.
		for sess := range s.sessions {
			sess.closeOutbox()
		}
		s.mu.Unlock()
		s.wg.Wait()
		if s.repo != nil {
			if rerr := s.repo.Close(); err == nil {
				err = rerr
			}
		}
		closeProcessor(s.engine)
	})
	return err
}

// newProcessor builds the query processor Config.Shards selects: the
// single core.Engine, or the sharded engine with that many tiles. When
// metrics are enabled the engine options inherit the registry, and the
// wall clock is injected here — the deterministic engine packages never
// read it themselves.
func newProcessor(cfg Config) (core.Processor, error) {
	if cfg.Processor != nil {
		return cfg.Processor, nil
	}
	if cfg.Metrics != nil {
		cfg.Engine.Metrics = cfg.Metrics
		if cfg.Engine.Clock == nil {
			cfg.Engine.Clock = obs.WallClock
		}
	}
	switch {
	case cfg.Shards < 0:
		return nil, fmt.Errorf("server: Config.Shards must be non-negative, got %d", cfg.Shards)
	case cfg.Shards > 1:
		rows, cols := shard.Split(cfg.Shards)
		return shard.New(shard.Options{
			Core: cfg.Engine, Rows: rows, Cols: cols,
			Halo: cfg.ShardHalo, Repartition: cfg.ShardRepartition,
		})
	default:
		return core.NewEngine(cfg.Engine)
	}
}

// closeProcessor releases processor-owned resources (the sharded
// engine's worker goroutines); the plain core engine has none.
func closeProcessor(p core.Processor) {
	if c, ok := p.(io.Closer); ok {
		c.Close()
	}
}

// now returns the server clock in seconds since start.
func (s *Server) now() float64 { return time.Since(s.start).Seconds() }

func (s *Server) tickLoop() {
	defer s.wg.Done()
	t := time.NewTicker(s.interval)
	defer t.Stop()
	for {
		select {
		case <-s.closed:
			return
		case <-t.C:
			s.Evaluate()
		}
	}
}

func (s *Server) heartbeatLoop() {
	defer s.wg.Done()
	t := time.NewTicker(s.heartbeat)
	defer t.Stop()
	for {
		select {
		case <-s.closed:
			return
		case <-t.C:
			s.mu.Lock()
			now := s.now()
			for sess := range s.sessions {
				s.send(sess, wire.Heartbeat{Time: now})
			}
			s.mu.Unlock()
		}
	}
}

// Evaluate runs one bulk evaluation step and streams the resulting
// incremental updates to subscribed clients. It returns the number of
// updates produced. Exposed for tests and for Interval == 0 setups.
func (s *Server) Evaluate() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.evaluateLocked()
}

func (s *Server) evaluateLocked() int {
	begin := s.m.tracer.Begin()
	s.m.evaluations.Inc()
	now := s.now()
	// StepAppend into a server-owned buffer: the updates are regrouped
	// into per-session batches below and never retained past this call,
	// so the evaluation tick avoids Step's per-call slice allocation.
	s.updBuf = s.engine.StepAppend(s.updBuf[:0], now)
	updates := s.updBuf
	if len(updates) == 0 {
		s.m.tracer.End(s.m.evalLatency, begin)
		return 0
	}
	// Group per destination session.
	perSession := make(map[*session][]core.Update)
	streamed := 0
	for _, u := range updates {
		sess, ok := s.subs[u.Query]
		if !ok || sess.isDead() {
			continue
		}
		perSession[sess] = append(perSession[sess], u)
		streamed++
	}
	s.m.streamed.Add(uint64(streamed))
	// Each batch preserves Step's canonical update order, so the stream
	// any one client sees is reproducible; the enqueue order *across*
	// sessions is not client-observable (each session only receives its
	// own batch, and send never blocks).
	for sess, batch := range perSession {
		//lint:allow maporder per-session batch content is canonically ordered; cross-session enqueue order is not observable by any client
		s.send(sess, wire.UpdateBatch{Time: now, Updates: batch})
	}
	s.m.tracer.End(s.m.evalLatency, begin)
	return len(updates)
}

// send enqueues a message on a session's outbox; the session's writer
// goroutine performs the actual (deadline-bounded) write, so evaluation
// never blocks on a slow peer. A full outbox applies the configured
// OutboxPolicy: shed the client (disconnect; it recovers through the
// wakeup protocol) or drop the frame (the client heals through the
// commit checksum handshake). Caller holds s.mu.
func (s *Server) send(sess *session, m wire.Message) {
	if s.draining || sess.isDead() {
		return
	}
	select {
	case sess.outbox <- m:
	default:
		if s.outboxPolicy == DropNewest {
			s.m.outboxDropped.Inc()
			return
		}
		s.m.sheds.Inc()
		s.logger.Printf("server: shedding slow client %v (outbox full)", sess.conn.RemoteAddr())
		sess.markDead()
	}
}

// sessionWriter drains one session's outbox onto its connection. It owns
// the wire.Writer: no other goroutine writes to the connection.
//
// Each wakeup drains everything queued at that moment into one buffered
// write: frames are encoded back to back (wire.Writer.WriteBuffered)
// and flushed once, so a burst of B queued frames costs one syscall
// rather than B. The byte stream is identical to per-frame writes —
// framing is per message; flushing is not part of the encoding
// (TestWriterBatchedDrainByteIdentical pins this). The write deadline
// is set once per batch and bounds the whole drain.
func (s *Server) sessionWriter(sess *session) {
	defer close(sess.writerDone)
	open := true
	for open {
		m, ok := <-sess.outbox
		if !ok {
			break
		}
		frames := 0
		var bytes uint64
		failed := false
		if s.writeTimeout > 0 && !sess.isDead() {
			sess.conn.SetWriteDeadline(time.Now().Add(s.writeTimeout))
		}
		for {
			if !sess.isDead() && !failed {
				if err := sess.w.WriteBuffered(m); err != nil {
					sess.markDead()
					failed = true
				} else {
					frames++
					bytes += uint64(wire.EncodedSize(m))
				}
			}
			// Greedy, non-blocking drain: batch whatever else is already
			// queued; a closed outbox ends the outer loop after the flush.
			select {
			case m, ok = <-sess.outbox:
				if !ok {
					open = false
				}
			default:
				ok = false
			}
			if !ok {
				break
			}
		}
		if frames > 0 && !failed && !sess.isDead() {
			if err := sess.w.Flush(); err != nil {
				sess.markDead()
			} else {
				s.m.framesOut.Add(uint64(frames))
				s.m.bytesOut.Add(bytes)
				s.m.writeBatch.Observe(int64(frames))
			}
		}
	}
	// Outbox closed and drained (graceful shutdown or session teardown):
	// closing the connection unblocks the session's read loop.
	sess.conn.Close()
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			select {
			case <-s.closed:
				return
			default:
			}
			if errors.Is(err, net.ErrClosed) {
				return
			}
			s.logger.Printf("server: accept: %v", err)
			continue
		}
		s.wg.Add(1)
		go s.handleConn(conn)
	}
}

func (s *Server) handleConn(conn net.Conn) {
	defer s.wg.Done()
	sess := &session{
		conn:       conn,
		w:          wire.NewWriter(conn),
		outbox:     make(chan wire.Message, s.outboxSize),
		writerDone: make(chan struct{}),
	}
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		conn.Close()
		return
	}
	s.sessions[sess] = struct{}{}
	s.mu.Unlock()
	s.m.sessions.Add(1)
	s.m.total.Inc()
	go s.sessionWriter(sess)
	defer func() {
		s.mu.Lock()
		delete(s.sessions, sess)
		sess.markDead()
		sess.closeOutbox()
		s.mu.Unlock()
		s.m.sessions.Add(-1)
		<-sess.writerDone
	}()
	r := wire.NewReaderLimit(conn, s.maxFrame)
	for {
		if s.readTimeout > 0 {
			conn.SetReadDeadline(time.Now().Add(s.readTimeout))
		}
		msg, err := r.Read()
		if err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) && !errors.Is(err, os.ErrDeadlineExceeded) {
				select {
				case <-s.closed:
				default:
					s.logger.Printf("server: read from %v: %v", conn.RemoteAddr(), err)
				}
			}
			return
		}
		s.m.framesIn.Inc()
		s.m.bytesIn.Add(uint64(wire.EncodedSize(msg)))
		s.handleMessage(sess, msg)
	}
}

func (s *Server) handleMessage(sess *session, msg wire.Message) {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch m := msg.(type) {
	case wire.ObjectReport:
		s.engine.ReportObject(m.Update)
		if s.repo != nil {
			s.persistObjectReport(m.Update)
		}
	case wire.QueryReport:
		s.engine.ReportQuery(m.Update)
		if m.Update.Remove {
			delete(s.subs, m.Update.ID)
			if s.repo != nil {
				if err := s.repo.CommitAnswer(m.Update.ID, nil); err != nil {
					s.logger.Printf("server: erase commit: %v", err)
				}
			}
		} else {
			s.subs[m.Update.ID] = sess
		}
		s.m.subs.Set(int64(len(s.subs)))
	case wire.Commit:
		s.handleCommit(sess, m)
	case wire.Wakeup:
		s.handleWakeup(sess, m)
	case wire.Heartbeat:
		// The client's echo; its arrival alone refreshed the read
		// deadline. The echoed timestamp is the server clock at send
		// time, so now−Time is the full round trip (client processing
		// included). Clamp: an echo can race the clock reading.
		if rtt := s.now() - m.Time; rtt > 0 {
			s.m.rtt.Observe(int64(rtt * 1e9))
		}
	case wire.StatsRequest:
		s.send(sess, wire.StatsResponse{
			Stats:   s.engine.Stats(),
			Objects: uint32(s.engine.NumObjects()),
			Queries: uint32(s.engine.NumQueries()),
			Uptime:  s.now(),
		})
	default:
		s.logger.Printf("server: unexpected message %T from client", msg)
	}
}

// handleCommit processes a client acknowledgment: commit when the
// checksums agree, heal with a full answer when they do not (the rare
// in-flight-updates race). Caller holds s.mu.
func (s *Server) handleCommit(sess *session, m wire.Commit) {
	// Apply pending reports first so the commit sees the answer the
	// client reconstructed.
	if s.engine.Pending() > 0 {
		s.evaluateLocked()
	}
	current, ok := s.engine.AnswerChecksum(m.Query)
	if !ok {
		return // unknown query: nothing to commit
	}
	if current != m.Checksum {
		s.sendFullAnswer(sess, m.Query)
		return
	}
	s.engine.Commit(m.Query)
	s.m.commits.Inc()
	s.persistCommit(m.Query)
	s.send(sess, wire.CommitAck{Query: m.Query, Checksum: m.Checksum})
}

// handleWakeup processes an out-of-sync client reconnection. Caller
// holds s.mu.
func (s *Server) handleWakeup(sess *session, m wire.Wakeup) {
	q := m.Update.ID
	s.subs[q] = sess
	s.m.subs.Set(int64(len(s.subs)))

	if _, known := s.engine.Answer(q); !known {
		// Server restarted (or never saw the query): re-register from the
		// definition carried by the wakeup, evaluate, and seed the
		// committed answer from the repository if we have one.
		s.engine.ReportQuery(m.Update)
		s.evaluateLocked()
		if s.repo != nil {
			if committed, ok := s.repo.Committed(q); ok {
				s.engine.SeedCommitted(q, committed)
			}
		}
	} else if s.engine.Pending() > 0 {
		// Make sure the diff reflects every buffered report.
		s.evaluateLocked()
	}

	committedCk, ok := s.engine.CommittedChecksum(q)
	if !ok {
		// Registration raced with removal; treat as a fresh, empty query.
		s.send(sess, wire.FullAnswer{Query: q, Time: s.now()})
		return
	}
	if committedCk != m.Checksum {
		// The client's rolled-back answer does not match what we committed:
		// fall back to the complete answer (the naive path), which is
		// always correct.
		s.sendFullAnswer(sess, q)
		return
	}
	diff, _ := s.engine.Recover(q)
	s.m.recoveries.Inc()
	s.persistCommit(q)
	s.send(sess, wire.RecoveryDiff{Time: s.now(), Updates: diff})
}

// sendFullAnswer ships the complete current answer and commits it.
// Caller holds s.mu.
func (s *Server) sendFullAnswer(sess *session, q core.QueryID) {
	answer, ok := s.engine.Answer(q)
	if !ok {
		answer = nil
	}
	s.m.fullAnswers.Inc()
	s.engine.Commit(q)
	s.persistCommit(q)
	s.send(sess, wire.FullAnswer{Query: q, Time: s.now(), Objects: answer})
}

// persistObjectReport archives a location report and keeps the durable
// stationary catalog current. Caller holds s.mu.
func (s *Server) persistObjectReport(u core.ObjectUpdate) {
	switch {
	case u.Remove:
		if _, err := s.repo.DeleteStationary(u.ID); err != nil {
			s.logger.Printf("server: delete stationary: %v", err)
		}
	case u.Kind == core.Stationary:
		if err := s.repo.PutStationary(u.ID, u.Loc); err != nil {
			s.logger.Printf("server: catalog stationary: %v", err)
		}
	default:
		if err := s.repo.AppendLocation(repository.LocationRecord{
			ID: u.ID, Loc: u.Loc, T: u.T,
		}); err != nil {
			s.logger.Printf("server: archive location: %v", err)
		}
	}
}

// persistCommit mirrors the engine's committed answer into the
// repository. Caller holds s.mu.
func (s *Server) persistCommit(q core.QueryID) {
	if s.repo == nil {
		return
	}
	committed, ok := s.engine.CommittedAnswer(q)
	if !ok {
		return
	}
	if err := s.repo.CommitAnswer(q, committed); err != nil {
		s.logger.Printf("server: persist commit: %v", err)
	}
}

// Stats exposes the engine's counters (for monitoring and tests).
func (s *Server) Stats() core.Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.engine.Stats()
}

// Answer returns the engine's current answer for q (for monitoring and
// for tests that compare client state against the server's ground truth).
func (s *Server) Answer(q core.QueryID) ([]core.ObjectID, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.engine.Answer(q)
}

// NumObjects returns the engine's registered object count.
func (s *Server) NumObjects() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.engine.NumObjects()
}

// NumQueries returns the engine's registered query count.
func (s *Server) NumQueries() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.engine.NumQueries()
}
