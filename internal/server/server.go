// Package server implements the location-aware server: a TCP front end
// over the incremental query processor (internal/core) with periodic bulk
// evaluation, per-query update streaming, durable commits through the
// repository, and the paper's out-of-sync client protocol.
//
// Protocol summary (see internal/wire):
//
//   - Clients push MsgObjectReport and MsgQueryReport; reports are
//     buffered and evaluated in bulk every evaluation interval.
//   - After each evaluation the server pushes one MsgUpdateBatch per
//     subscribed connection carrying only the positive/negative updates of
//     that connection's queries.
//   - MsgCommit acknowledges the stream; if the client's answer checksum
//     matches the server's current answer, the answer is committed (and
//     persisted), otherwise the server heals the client with a
//     MsgFullAnswer.
//   - MsgWakeup reconnects an out-of-sync client: if its checksum matches
//     the committed answer the server replies with the incremental
//     MsgRecoveryDiff, otherwise with a complete MsgFullAnswer.
package server

import (
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"sync"
	"time"

	"cqp/internal/core"
	"cqp/internal/geo"
	"cqp/internal/repository"
	"cqp/internal/wire"
)

// Config parameterizes a Server.
type Config struct {
	// Engine configures the underlying query processor. Required.
	Engine core.Options

	// Interval is the bulk-evaluation period Δt (the paper evaluates
	// every 5 seconds; tests use milliseconds). Zero disables the
	// automatic ticker; evaluation then happens only through Evaluate,
	// which tests use for determinism.
	Interval time.Duration

	// RepositoryDir enables durable commit persistence and location
	// history when non-empty.
	RepositoryDir string

	// Logger receives connection-level errors. Defaults to the standard
	// logger.
	Logger *log.Logger
}

// Server is a running location-aware server. Create with Listen, stop
// with Close.
type Server struct {
	mu       sync.Mutex
	engine   *core.Engine
	repo     *repository.Repository // nil when persistence is disabled
	subs     map[core.QueryID]*session
	sessions map[*session]struct{}

	ln       net.Listener
	logger   *log.Logger
	interval time.Duration
	start    time.Time

	wg        sync.WaitGroup
	closed    chan struct{}
	closeOnce sync.Once
}

// session is one client connection.
type session struct {
	conn net.Conn
	w    *wire.Writer
	dead bool
}

// Listen starts a server on addr (e.g. "127.0.0.1:0").
func Listen(addr string, cfg Config) (*Server, error) {
	engine, err := core.NewEngine(cfg.Engine)
	if err != nil {
		return nil, err
	}
	var repo *repository.Repository
	if cfg.RepositoryDir != "" {
		repo, err = repository.Open(cfg.RepositoryDir)
		if err != nil {
			return nil, err
		}
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		if repo != nil {
			repo.Close()
		}
		return nil, fmt.Errorf("server: listen: %w", err)
	}
	logger := cfg.Logger
	if logger == nil {
		logger = log.Default()
	}
	s := &Server{
		engine:   engine,
		repo:     repo,
		subs:     make(map[core.QueryID]*session),
		sessions: make(map[*session]struct{}),
		ln:       ln,
		logger:   logger,
		interval: cfg.Interval,
		start:    time.Now(),
		closed:   make(chan struct{}),
	}
	// Restore the stationary-object catalog (gas stations, hospitals, ...)
	// from the repository: stationary objects do not re-report after a
	// restart the way moving clients do.
	if repo != nil {
		err := repo.VisitStationary(func(id core.ObjectID, loc geo.Point) bool {
			engine.ReportObject(core.ObjectUpdate{ID: id, Kind: core.Stationary, Loc: loc})
			return true
		})
		if err != nil {
			ln.Close()
			repo.Close()
			return nil, err
		}
		engine.Step(0)
	}

	s.wg.Add(1)
	go s.acceptLoop()
	if s.interval > 0 {
		s.wg.Add(1)
		go s.tickLoop()
	}
	return s, nil
}

// Addr returns the listening address.
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// Close stops accepting connections, terminates all sessions, and closes
// the repository. It is idempotent.
func (s *Server) Close() error {
	var err error
	s.closeOnce.Do(func() {
		close(s.closed)
		err = s.ln.Close()
		s.mu.Lock()
		for sess := range s.sessions {
			sess.conn.Close()
		}
		s.mu.Unlock()
		s.wg.Wait()
		if s.repo != nil {
			if rerr := s.repo.Close(); err == nil {
				err = rerr
			}
		}
	})
	return err
}

// now returns the server clock in seconds since start.
func (s *Server) now() float64 { return time.Since(s.start).Seconds() }

func (s *Server) tickLoop() {
	defer s.wg.Done()
	t := time.NewTicker(s.interval)
	defer t.Stop()
	for {
		select {
		case <-s.closed:
			return
		case <-t.C:
			s.Evaluate()
		}
	}
}

// Evaluate runs one bulk evaluation step and streams the resulting
// incremental updates to subscribed clients. It returns the number of
// updates produced. Exposed for tests and for Interval == 0 setups.
func (s *Server) Evaluate() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.evaluateLocked()
}

func (s *Server) evaluateLocked() int {
	now := s.now()
	updates := s.engine.Step(now)
	if len(updates) == 0 {
		return 0
	}
	// Group per destination session.
	perSession := make(map[*session][]core.Update)
	for _, u := range updates {
		sess, ok := s.subs[u.Query]
		if !ok || sess.dead {
			continue
		}
		perSession[sess] = append(perSession[sess], u)
	}
	for sess, batch := range perSession {
		s.send(sess, wire.UpdateBatch{Time: now, Updates: batch})
	}
	return len(updates)
}

// send writes a message to a session, marking it dead on failure. Caller
// holds s.mu.
func (s *Server) send(sess *session, m wire.Message) {
	if sess.dead {
		return
	}
	sess.conn.SetWriteDeadline(time.Now().Add(5 * time.Second))
	if err := sess.w.Write(m); err != nil {
		sess.dead = true
		sess.conn.Close()
	}
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			select {
			case <-s.closed:
				return
			default:
			}
			if errors.Is(err, net.ErrClosed) {
				return
			}
			s.logger.Printf("server: accept: %v", err)
			continue
		}
		s.wg.Add(1)
		go s.handleConn(conn)
	}
}

func (s *Server) handleConn(conn net.Conn) {
	defer s.wg.Done()
	defer conn.Close()
	sess := &session{conn: conn, w: wire.NewWriter(conn)}
	s.mu.Lock()
	s.sessions[sess] = struct{}{}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.sessions, sess)
		s.mu.Unlock()
	}()
	r := wire.NewReader(conn)
	for {
		msg, err := r.Read()
		if err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				select {
				case <-s.closed:
				default:
					s.logger.Printf("server: read from %v: %v", conn.RemoteAddr(), err)
				}
			}
			return
		}
		s.handleMessage(sess, msg)
	}
}

func (s *Server) handleMessage(sess *session, msg wire.Message) {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch m := msg.(type) {
	case wire.ObjectReport:
		s.engine.ReportObject(m.Update)
		if s.repo != nil {
			s.persistObjectReport(m.Update)
		}
	case wire.QueryReport:
		s.engine.ReportQuery(m.Update)
		if m.Update.Remove {
			delete(s.subs, m.Update.ID)
			if s.repo != nil {
				if err := s.repo.CommitAnswer(m.Update.ID, nil); err != nil {
					s.logger.Printf("server: erase commit: %v", err)
				}
			}
		} else {
			s.subs[m.Update.ID] = sess
		}
	case wire.Commit:
		s.handleCommit(sess, m)
	case wire.Wakeup:
		s.handleWakeup(sess, m)
	case wire.StatsRequest:
		s.send(sess, wire.StatsResponse{
			Stats:   s.engine.Stats(),
			Objects: uint32(s.engine.NumObjects()),
			Queries: uint32(s.engine.NumQueries()),
			Uptime:  s.now(),
		})
	default:
		s.logger.Printf("server: unexpected message %T from client", msg)
	}
}

// handleCommit processes a client acknowledgment: commit when the
// checksums agree, heal with a full answer when they do not (the rare
// in-flight-updates race). Caller holds s.mu.
func (s *Server) handleCommit(sess *session, m wire.Commit) {
	// Apply pending reports first so the commit sees the answer the
	// client reconstructed.
	if s.engine.Pending() > 0 {
		s.evaluateLocked()
	}
	current, ok := s.engine.AnswerChecksum(m.Query)
	if !ok {
		return // unknown query: nothing to commit
	}
	if current != m.Checksum {
		s.sendFullAnswer(sess, m.Query)
		return
	}
	s.engine.Commit(m.Query)
	s.persistCommit(m.Query)
	s.send(sess, wire.CommitAck{Query: m.Query, Checksum: m.Checksum})
}

// handleWakeup processes an out-of-sync client reconnection. Caller
// holds s.mu.
func (s *Server) handleWakeup(sess *session, m wire.Wakeup) {
	q := m.Update.ID
	s.subs[q] = sess

	if _, known := s.engine.Answer(q); !known {
		// Server restarted (or never saw the query): re-register from the
		// definition carried by the wakeup, evaluate, and seed the
		// committed answer from the repository if we have one.
		s.engine.ReportQuery(m.Update)
		s.evaluateLocked()
		if s.repo != nil {
			if committed, ok := s.repo.Committed(q); ok {
				s.engine.SeedCommitted(q, committed)
			}
		}
	} else if s.engine.Pending() > 0 {
		// Make sure the diff reflects every buffered report.
		s.evaluateLocked()
	}

	committedCk, ok := s.engine.CommittedChecksum(q)
	if !ok {
		// Registration raced with removal; treat as a fresh, empty query.
		s.send(sess, wire.FullAnswer{Query: q, Time: s.now()})
		return
	}
	if committedCk != m.Checksum {
		// The client's rolled-back answer does not match what we committed:
		// fall back to the complete answer (the naive path), which is
		// always correct.
		s.sendFullAnswer(sess, q)
		return
	}
	diff, _ := s.engine.Recover(q)
	s.persistCommit(q)
	s.send(sess, wire.RecoveryDiff{Time: s.now(), Updates: diff})
}

// sendFullAnswer ships the complete current answer and commits it.
// Caller holds s.mu.
func (s *Server) sendFullAnswer(sess *session, q core.QueryID) {
	answer, ok := s.engine.Answer(q)
	if !ok {
		answer = nil
	}
	s.engine.Commit(q)
	s.persistCommit(q)
	s.send(sess, wire.FullAnswer{Query: q, Time: s.now(), Objects: answer})
}

// persistObjectReport archives a location report and keeps the durable
// stationary catalog current. Caller holds s.mu.
func (s *Server) persistObjectReport(u core.ObjectUpdate) {
	switch {
	case u.Remove:
		if _, err := s.repo.DeleteStationary(u.ID); err != nil {
			s.logger.Printf("server: delete stationary: %v", err)
		}
	case u.Kind == core.Stationary:
		if err := s.repo.PutStationary(u.ID, u.Loc); err != nil {
			s.logger.Printf("server: catalog stationary: %v", err)
		}
	default:
		if err := s.repo.AppendLocation(repository.LocationRecord{
			ID: u.ID, Loc: u.Loc, T: u.T,
		}); err != nil {
			s.logger.Printf("server: archive location: %v", err)
		}
	}
}

// persistCommit mirrors the engine's committed answer into the
// repository. Caller holds s.mu.
func (s *Server) persistCommit(q core.QueryID) {
	if s.repo == nil {
		return
	}
	committed, ok := s.engine.CommittedAnswer(q)
	if !ok {
		return
	}
	if err := s.repo.CommitAnswer(q, committed); err != nil {
		s.logger.Printf("server: persist commit: %v", err)
	}
}

// Stats exposes the engine's counters (for monitoring and tests).
func (s *Server) Stats() core.Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.engine.Stats()
}

// NumObjects returns the engine's registered object count.
func (s *Server) NumObjects() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.engine.NumObjects()
}

// NumQueries returns the engine's registered query count.
func (s *Server) NumQueries() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.engine.NumQueries()
}
