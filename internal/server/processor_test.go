package server

import (
	"testing"
	"time"

	"cqp/internal/client"
	"cqp/internal/cluster"
	"cqp/internal/core"
	"cqp/internal/geo"
	"cqp/internal/shard"
)

// TestInjectedClusterProcessor runs the standard range-query lifecycle
// against a server whose processor is the multi-process cluster
// coordinator (workers over net.Pipe): the network behavior must be
// indistinguishable from the single-engine default, and killing a
// worker mid-session must be invisible to the client.
func TestInjectedClusterProcessor(t *testing.T) {
	copt := core.Options{Bounds: geo.R(0, 0, 10, 10), GridN: 8}
	cl, err := cluster.New(cluster.Config{
		Shard:             shard.Options{Core: copt, Rows: 2, Cols: 2},
		Workers:           2,
		Spawner:           &cluster.PipeSpawner{},
		HeartbeatInterval: 5 * time.Millisecond,
		HeartbeatTimeout:  60 * time.Millisecond,
		Backoff:           cluster.Backoff{Initial: time.Millisecond, Max: 20 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	s := startServer(t, Config{Engine: copt, Processor: cl})

	c, err := client.Dial(s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	c.ReportObject(core.ObjectUpdate{ID: 1, Kind: core.Moving, Loc: geo.Pt(2, 2)})
	c.ReportObject(core.ObjectUpdate{ID: 2, Kind: core.Moving, Loc: geo.Pt(8, 2)})
	c.RegisterQuery(core.QueryUpdate{ID: 1, Kind: core.Range, Region: geo.R(1, 1, 9, 9)})
	evaluateUntil(t, s, func() bool {
		ans, ok := c.Answer(1)
		return ok && len(ans) == 2
	})

	// Kill a worker; the coordinator's fallback + respawn keeps serving.
	cl.KillWorker(0)
	c.ReportObject(core.ObjectUpdate{ID: 1, Kind: core.Moving, Loc: geo.Pt(9.8, 9.8), T: 1})
	evaluateUntil(t, s, func() bool {
		ans, _ := c.Answer(1)
		return len(ans) == 1
	})
	if err := c.Commit(1); err != nil {
		t.Fatal(err)
	}
	evaluateUntil(t, s, func() bool {
		s.mu.Lock()
		defer s.mu.Unlock()
		ca, ok := s.engine.CommittedAnswer(1)
		return ok && len(ca) == 1
	})

	// The cluster heals while the server keeps evaluating.
	evaluateUntil(t, s, func() bool {
		return cl.TilesInFallback() == 0 && cl.NumWorkersUp() == 2
	})
}
