package server

import "cqp/internal/obs"

// serverMetrics are the session-layer instruments, resolved once at
// Listen time against Config.Metrics (nil yields detached instruments,
// so the handlers below never branch on "metrics enabled").
//
// The same registry is threaded into the processor (newProcessor wires
// Config.Metrics and obs.WallClock into the engine options), so one
// scrape of `cqp-server -metrics` returns engine, shard, and session
// metrics together.
type serverMetrics struct {
	tracer *obs.Tracer

	sessions *obs.Gauge   // live sessions
	subs     *obs.Gauge   // query → session subscriptions
	total    *obs.Counter // sessions ever accepted

	framesIn  *obs.Counter
	framesOut *obs.Counter
	bytesIn   *obs.Counter
	bytesOut  *obs.Counter

	sheds         *obs.Counter   // sessions shed on outbox overflow
	outboxDropped *obs.Counter   // frames dropped under OutboxPolicy DropNewest
	writeBatch    *obs.Histogram // frames coalesced per writer flush
	evaluations   *obs.Counter   // bulk evaluation ticks
	evalLatency   *obs.Histogram // full evaluate-and-enqueue duration
	streamed      *obs.Counter   // updates enqueued to subscribers
	rtt           *obs.Histogram // heartbeat round trips

	commits     *obs.Counter // committed client acknowledgments
	recoveries  *obs.Counter // wakeups healed with an incremental diff
	fullAnswers *obs.Counter // clients healed with a complete answer
}

func newServerMetrics(reg *obs.Registry) *serverMetrics {
	return &serverMetrics{
		tracer:        obs.NewTracer(obs.WallClock),
		sessions:      reg.Gauge("server.sessions"),
		subs:          reg.Gauge("server.subscriptions"),
		total:         reg.Counter("server.sessions_total"),
		framesIn:      reg.Counter("server.frames_in"),
		framesOut:     reg.Counter("server.frames_out"),
		bytesIn:       reg.Counter("server.bytes_in"),
		bytesOut:      reg.Counter("server.bytes_out"),
		sheds:         reg.Counter("server.sheds"),
		outboxDropped: reg.Counter("server.outbox_dropped"),
		writeBatch:    reg.Histogram("server.write_batch_frames", obs.SizeBuckets),
		evaluations:   reg.Counter("server.evaluations"),
		evalLatency:   reg.Histogram("server.eval_ns", obs.DurationBuckets),
		streamed:      reg.Counter("server.updates.streamed"),
		rtt:           reg.Histogram("server.heartbeat_rtt_ns", obs.DurationBuckets),
		commits:       reg.Counter("server.commits"),
		recoveries:    reg.Counter("server.recoveries"),
		fullAnswers:   reg.Counter("server.full_answers"),
	}
}
