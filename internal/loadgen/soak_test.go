package loadgen

import (
	"flag"
	"testing"
	"time"

	"cqp/internal/core"
	"cqp/internal/geo"
)

// -soak stretches TestSoak from the CI-sized smoke (a few hundred
// milliseconds) to a sustained run; `make soak` passes it together with
// -race. A custom flag rather than testing.Short() because CI runs the
// plain `go test ./...` with neither flag, and the long mode must be
// strictly opt-in.
var soakLong = flag.Bool("soak", false, "run the long soak (seconds of sustained load) instead of the CI smoke")

// TestSoak holds the server under sustained open-loop load and then
// audits the run end to end:
//
//   - zero lost updates: no session was shed, no recovery fell back to
//     a full answer, and after quiescing every streamed update was
//     applied by a subscriber — convergence was purely incremental;
//   - bounded latency: delivery p99 stays under a generous SLO (this
//     is a correctness backstop, not a benchmark — the measured curve
//     lives in BENCH_server.json);
//   - bit-identical answers: every query's converged answer equals a
//     direct core.Engine replay of the recorded report stream.
func TestSoak(t *testing.T) {
	cfg := Config{
		Rate:          800,
		Duration:      300 * time.Millisecond,
		Sessions:      4,
		Objects:       200,
		Queries:       40,
		QuerySide:     0.2,
		Scenario:      "fleet",
		QueryMoveFrac: 0.1,
		Seed:          42,
		TimeScale:     500,
		Record:        true,
		GridN:         16,
		EvalInterval:  10 * time.Millisecond,
	}
	slo := 2 * time.Second // single-CPU CI box: generous by design
	// The long mode holds the rate under the box's measured knee (see
	// EXPERIMENTS.md "Server capacity"): the soak proves sustained
	// correctness below saturation, not where the shed point is.
	if *soakLong {
		cfg.Rate = 600
		cfg.Duration = 20 * time.Second
		cfg.Objects = 1000
		cfg.Queries = 100
		cfg.TimeScale = 50
		slo = 5 * time.Second
	}

	h, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()

	res, err := h.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !h.Converge(30 * time.Second) {
		t.Fatal("soak never quiesced")
	}
	res = h.Result(res.Elapsed)
	t.Logf("soak: %+v", res)

	if res.ObjectReports == 0 || res.Delivered == 0 {
		t.Fatalf("no measured traffic: %d reports, %d delivered", res.ObjectReports, res.Delivered)
	}

	// Zero lost updates.
	if res.Sheds != 0 || res.Dropped != 0 {
		t.Errorf("load was shed: sheds=%d dropped=%d (outbox too small for this rate)", res.Sheds, res.Dropped)
	}
	if res.FullAnswers != 0 || res.Reconnects != 0 {
		t.Errorf("recovery paths fired during a healthy soak: full_answers=%d reconnects=%d", res.FullAnswers, res.Reconnects)
	}
	reg := h.Registry()
	streamed := reg.Counter("server.updates.streamed").Value()
	applied := reg.Counter("client.updates.applied").Value()
	if streamed != applied {
		t.Errorf("streamed %d != applied %d after quiesce: updates lost in flight", streamed, applied)
	}

	// Bounded latency.
	if res.P99 > slo {
		t.Errorf("delivery p99 %v exceeds SLO %v", res.P99, slo)
	}

	// Bit-identical answers vs a direct engine replay.
	objs, qrys := h.Recorded()
	eng := core.MustNewEngine(core.Options{Bounds: geo.R(0, 0, 1, 1), GridN: cfg.GridN})
	for _, q := range qrys {
		eng.ReportQuery(q)
	}
	for _, o := range objs {
		eng.ReportObject(o)
	}
	eng.Step(1e9)
	for j := 0; j < h.NumQueries(); j++ {
		q := core.QueryID(j + 1)
		want, _ := eng.Answer(q)
		got, _ := h.Answer(q)
		if len(got) != len(want) {
			t.Fatalf("query %d: server answer %v, direct engine %v", q, got, want)
		}
		for k := range got {
			if got[k] != want[k] {
				t.Fatalf("query %d: server answer %v, direct engine %v", q, got, want)
			}
		}
	}
}
