// Package loadgen is the open-loop load harness for the location-aware
// server: it drives a running cqp-server (or an in-process one) with
// object reports and query re-registrations at a configured arrival
// rate, spread over concurrent client sessions, and measures
// update-delivery latency percentiles — the time from handing a report
// to the wire until the resulting incremental update is folded into a
// subscriber's answer.
//
// Open-loop means the arrival schedule is fixed up front: report n is
// due at start + n/rate regardless of how fast the server absorbs the
// previous ones. When the harness cannot keep the schedule (the send
// path itself backs up) it does not silently stretch the test — it
// records the scheduling lag, so coordinated omission is visible in the
// results rather than hidden in them.
//
// Determinism: for a fixed Config the report *stream* (which object
// moves where, in which order) is reproducible; only the pacing and the
// measured latencies depend on the wall clock.
package loadgen

import (
	"fmt"
	"io"
	"log"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"cqp/internal/client"
	"cqp/internal/core"
	"cqp/internal/geo"
	"cqp/internal/obs"
	"cqp/internal/server"
)

// Config parameterizes a Harness. The zero value is not runnable; use
// the documented defaults via New.
type Config struct {
	// Addr is the server to drive. Empty starts an in-process server on
	// a loopback port (owned and closed by the harness) — the mode the
	// soak tests and BENCH sweeps use, since it exposes the server's
	// metrics registry to the harness.
	Addr string

	// Rate is the target aggregate arrival rate in reports per second
	// (object reports plus query re-registrations). Default 100.
	Rate float64

	// Duration is how long the paced phase runs. Default 1s.
	Duration time.Duration

	// Sessions is the number of concurrent client connections the load
	// is spread over. Object i always reports through session
	// i%Sessions, so the per-object FIFO the protocol assumes is
	// preserved. Default 4.
	Sessions int

	// Objects and Queries size the populations. Defaults 500 and 50.
	Objects, Queries int

	// Scenario selects the movement preset: uniform, hotspot, or fleet
	// (see NewScenario). Default uniform.
	Scenario string

	// QuerySide is the query square side length. Default 0.01.
	QuerySide float64

	// QueryMoveFrac is the fraction of paced events that re-register a
	// moved query instead of reporting an object. Default 0.05.
	QueryMoveFrac float64

	// Seed drives scenario movement and event sampling. Default 1.
	Seed int64

	// TimeScale is scenario-seconds per wall-second: the factor by
	// which scenario time (and thus movement) runs faster than the
	// harness clock. Road-network travelers displace ~1e-4 of the space
	// per scenario-second, so short wall-clock runs need a large scale
	// to see boundary crossings at all. Default 1.
	TimeScale float64

	// EvalInterval is the in-process server's bulk evaluation period.
	// Zero disables the ticker; the caller then drives Evaluate (tests
	// do this for determinism). Ignored when Addr is set.
	EvalInterval time.Duration

	// GridN, OutboxSize, OutboxPolicy configure the in-process server
	// (GridN default 16, OutboxSize default server default). Ignored
	// when Addr is set.
	GridN        int
	OutboxSize   int
	OutboxPolicy server.OutboxPolicy

	// Record, when true, keeps every report the harness sent (in send
	// order) for replay into a direct engine — the soak test's
	// bit-identity oracle. Costs memory proportional to Rate×Duration.
	Record bool

	// Metrics receives the harness's and (in-process) server's
	// instruments. Defaults to a fresh registry, readable via Registry.
	Metrics *obs.Registry

	// Logger receives server connection errors. Defaults to discard.
	Logger *log.Logger
}

func (c Config) withDefaults() Config {
	if c.Rate <= 0 {
		c.Rate = 100
	}
	if c.Duration <= 0 {
		c.Duration = time.Second
	}
	if c.Sessions <= 0 {
		c.Sessions = 4
	}
	if c.Objects <= 0 {
		c.Objects = 500
	}
	if c.Queries <= 0 {
		c.Queries = 50
	}
	if c.Scenario == "" {
		c.Scenario = "uniform"
	}
	if c.QuerySide <= 0 {
		c.QuerySide = 0.01
	}
	if c.QueryMoveFrac < 0 || c.QueryMoveFrac > 1 {
		c.QueryMoveFrac = 0.05
	} else if c.QueryMoveFrac == 0 {
		c.QueryMoveFrac = 0.05
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.TimeScale <= 0 {
		c.TimeScale = 1
	}
	if c.GridN <= 0 {
		c.GridN = 16
	}
	if c.Metrics == nil {
		c.Metrics = obs.NewRegistry()
	}
	if c.Logger == nil {
		c.Logger = log.New(io.Discard, "", 0)
	}
	return c
}

// Result summarizes one Run.
type Result struct {
	Scenario string        `json:"scenario"`
	Offered  float64       `json:"offered_rate"`  // configured reports/sec
	Achieved float64       `json:"achieved_rate"` // sent / elapsed
	Elapsed  time.Duration `json:"elapsed_ns"`

	ObjectReports uint64 `json:"object_reports"`
	QueryReports  uint64 `json:"query_reports"`

	// Delivered counts latency measurements: reports whose resulting
	// update came back and was folded into a subscriber answer. Not
	// every report yields an update (an object can move without
	// entering or leaving any query region), so Delivered < sent is
	// normal; Delivered == 0 at nontrivial rates is a red flag.
	Delivered uint64 `json:"delivered"`

	// UpdatesApplied is the total incremental updates clients folded
	// in, including updates for objects whose latency stamp was already
	// consumed or overwritten.
	UpdatesApplied uint64 `json:"updates_applied"`

	// Delivery latency percentiles (send timestamp → applied update).
	P50 time.Duration `json:"p50_ns"`
	P95 time.Duration `json:"p95_ns"`
	P99 time.Duration `json:"p99_ns"`

	// MaxLag is the worst scheduling lag of the open-loop pacer: how
	// far behind its fixed schedule the send loop fell. A MaxLag
	// comparable to Duration means the harness, not the server, was the
	// bottleneck and the latency numbers undercount reality.
	MaxLag time.Duration `json:"max_lag_ns"`

	// Server-side counters (in-process mode only; zero when driving a
	// remote Addr whose registry is not visible).
	Sheds       uint64 `json:"sheds"`
	Dropped     uint64 `json:"outbox_dropped"`
	FullAnswers uint64 `json:"full_answers"`
	Reconnects  uint64 `json:"reconnects"`
}

// Harness drives one load scenario against one server.
type Harness struct {
	cfg Config
	reg *obs.Registry
	srv *server.Server // nil when driving a remote Addr
	scn Scenario
	rng *rand.Rand

	clients []*client.Client
	drainWG sync.WaitGroup

	// stamps[i] is the nanotime of the latest *answer-changing* event
	// involving object i+1 (a report that crossed a query boundary, or
	// a query move that flipped the object's membership), 0 when
	// already measured. OnApplied swaps it out so each event is
	// measured at most once. Stamping only answer-changing events
	// matters: a report that crosses no boundary yields no update, and
	// a stamp left pending would later be consumed by an unrelated
	// update, recording the idle gap as bogus multi-second "latency".
	stamps []atomic.Int64

	// Pacer-goroutine-only mirror of the engine's answer state, using
	// the same geo.Rect.Contains predicate the engine evaluates with:
	// latest object locations, latest query regions, and the
	// object×query membership matrix that decides what gets stamped.
	locs    []geo.Point
	regions []geo.Rect
	member  []bool // member[i*Queries+j]: object i+1 ∈ query j+1

	latency  *obs.Histogram // load.delivery_ns
	schedLag *obs.Histogram // load.sched_lag_ns
	maxLagNs atomic.Int64
	applied  *obs.Counter // shared client.updates.applied

	objReports uint64 // pacer-goroutine only
	qryReports uint64

	// lastT[i], lastQ[j]: scenario time of the previous report, for
	// advancing movement by the real inter-report gap.
	lastT []float64
	lastQ []float64

	recObjs []core.ObjectUpdate // when cfg.Record
	recQrys []core.QueryUpdate

	closeOnce sync.Once
	closeErr  error
}

// New builds a harness: starts the in-process server if needed, dials
// cfg.Sessions clients, registers every query, and reports every
// object's initial position (recorded, when recording) so answers have
// a ground state before pacing begins.
func New(cfg Config) (*Harness, error) {
	cfg = cfg.withDefaults()
	scn, err := NewScenario(cfg.Scenario, cfg.Objects, cfg.Queries, cfg.QuerySide, cfg.Seed)
	if err != nil {
		return nil, err
	}
	h := &Harness{
		cfg:      cfg,
		reg:      cfg.Metrics,
		scn:      scn,
		rng:      rand.New(rand.NewSource(cfg.Seed + 31)),
		stamps:   make([]atomic.Int64, cfg.Objects),
		locs:     make([]geo.Point, cfg.Objects),
		regions:  make([]geo.Rect, cfg.Queries),
		member:   make([]bool, cfg.Objects*cfg.Queries),
		lastT:    make([]float64, cfg.Objects),
		lastQ:    make([]float64, cfg.Queries),
		latency:  cfg.Metrics.Histogram("load.delivery_ns", obs.DurationBuckets),
		schedLag: cfg.Metrics.Histogram("load.sched_lag_ns", obs.DurationBuckets),
		applied:  cfg.Metrics.Counter("client.updates.applied"),
	}

	addr := cfg.Addr
	if addr == "" {
		srv, err := server.Listen("127.0.0.1:0", server.Config{
			Engine:       core.Options{Bounds: geo.R(0, 0, 1, 1), GridN: cfg.GridN},
			Interval:     cfg.EvalInterval,
			OutboxSize:   cfg.OutboxSize,
			OutboxPolicy: cfg.OutboxPolicy,
			Metrics:      cfg.Metrics,
			Logger:       cfg.Logger,
		})
		if err != nil {
			return nil, fmt.Errorf("loadgen: start in-process server: %w", err)
		}
		h.srv = srv
		addr = srv.Addr().String()
	}

	for s := 0; s < cfg.Sessions; s++ {
		c, err := client.DialOptions(addr, client.Options{
			Metrics:   cfg.Metrics,
			OnApplied: h.onApplied,
		})
		if err != nil {
			h.Close()
			return nil, fmt.Errorf("loadgen: dial session %d: %w", s, err)
		}
		h.clients = append(h.clients, c)
		h.drainWG.Add(1)
		go func() {
			defer h.drainWG.Done()
			for range c.Events() {
			}
		}()
	}

	// Bootstrap: all queries, then all objects, at scenario time 0.
	// Bootstrap traffic is unmeasured (no stamps); the membership
	// matrix is seeded here so the paced phase stamps exactly the
	// answer-changing events.
	for j := 0; j < cfg.Queries; j++ {
		u := core.QueryUpdate{ID: core.QueryID(j + 1), Kind: core.Range, Region: h.scn.QueryRegion(j, 0)}
		h.regions[j] = u.Region
		if cfg.Record {
			h.recQrys = append(h.recQrys, u)
		}
		if err := h.queryOwner(j).RegisterQuery(u); err != nil {
			h.Close()
			return nil, fmt.Errorf("loadgen: bootstrap query %d: %w", j+1, err)
		}
	}
	for i := 0; i < cfg.Objects; i++ {
		u := core.ObjectUpdate{ID: core.ObjectID(i + 1), Kind: core.Moving, Loc: h.scn.ObjectLoc(i, 0)}
		h.locs[i] = u.Loc
		for j := 0; j < cfg.Queries; j++ {
			h.member[i*cfg.Queries+j] = h.regions[j].Contains(u.Loc)
		}
		if cfg.Record {
			h.recObjs = append(h.recObjs, u)
		}
		if err := h.objectOwner(i).ReportObject(u); err != nil {
			h.Close()
			return nil, fmt.Errorf("loadgen: bootstrap object %d: %w", i+1, err)
		}
	}
	return h, nil
}

func (h *Harness) objectOwner(i int) *client.Client { return h.clients[i%len(h.clients)] }
func (h *Harness) queryOwner(j int) *client.Client  { return h.clients[j%len(h.clients)] }

// Registry returns the metrics registry the harness (and its in-process
// server) report into.
func (h *Harness) Registry() *obs.Registry { return h.reg }

// Server returns the in-process server, or nil when driving a remote
// address.
func (h *Harness) Server() *server.Server { return h.srv }

// Recorded returns the full report stream (bootstrap plus paced phase,
// each slice in send order) when Config.Record was set. Per-object and
// per-query order in these slices matches wire order exactly.
func (h *Harness) Recorded() ([]core.ObjectUpdate, []core.QueryUpdate) {
	return h.recObjs, h.recQrys
}

// onApplied runs on the client read loops: one latency observation per
// object whose stamp is still pending. Swap(0) consumes the stamp so a
// report is measured at most once, and updates for unstamped objects
// (negative updates, re-evaluations) cost one atomic load each.
func (h *Harness) onApplied(updates []core.Update) {
	now := time.Now().UnixNano()
	for _, u := range updates {
		i := int(u.Object) - 1
		if i < 0 || i >= len(h.stamps) {
			continue
		}
		if t := h.stamps[i].Swap(0); t != 0 {
			h.latency.Observe(now - t)
		}
	}
}

// Run executes the paced open-loop phase: cfg.Rate×cfg.Duration report
// events on the fixed schedule start+n/rate, then assembles the Result
// (without quiescing — call Converge first when exact totals matter).
func (h *Harness) Run() (Result, error) {
	cfg := h.cfg
	total := int(cfg.Rate * cfg.Duration.Seconds())
	interval := time.Duration(float64(time.Second) / cfg.Rate)
	start := time.Now()
	for n := 0; n < total; n++ {
		due := start.Add(time.Duration(n) * interval)
		if d := time.Until(due); d > 0 {
			time.Sleep(d)
		}
		lag := time.Since(due)
		if lag > 0 {
			h.schedLag.Observe(lag.Nanoseconds())
			if lag.Nanoseconds() > h.maxLagNs.Load() {
				h.maxLagNs.Store(lag.Nanoseconds())
			}
		} else {
			h.schedLag.Observe(0)
		}
		now := time.Since(start).Seconds() * h.cfg.TimeScale
		if err := h.sendOne(now); err != nil {
			return h.result(cfg.Rate, time.Since(start)), fmt.Errorf("loadgen: event %d: %w", n, err)
		}
	}
	return h.result(cfg.Rate, time.Since(start)), nil
}

// sendOne emits one paced event at scenario time now: usually an object
// report, occasionally (QueryMoveFrac) a moved query re-registration.
func (h *Harness) sendOne(now float64) error {
	if h.rng.Float64() < h.cfg.QueryMoveFrac {
		j := h.rng.Intn(h.cfg.Queries)
		u := core.QueryUpdate{
			ID: core.QueryID(j + 1), Kind: core.Range,
			Region: h.scn.QueryRegion(j, now-h.lastQ[j]), T: now,
		}
		h.lastQ[j] = now
		h.regions[j] = u.Region
		// Stamp every object whose membership this move flips: their
		// positive/negative updates are the move's deliverables.
		stamp := time.Now().UnixNano()
		for i := 0; i < h.cfg.Objects; i++ {
			in := u.Region.Contains(h.locs[i])
			if in != h.member[i*h.cfg.Queries+j] {
				h.member[i*h.cfg.Queries+j] = in
				h.stamps[i].Store(stamp)
			}
		}
		if h.cfg.Record {
			h.recQrys = append(h.recQrys, u)
		}
		h.qryReports++
		return h.queryOwner(j).RegisterQuery(u)
	}
	i := h.rng.Intn(h.cfg.Objects)
	u := core.ObjectUpdate{
		ID: core.ObjectID(i + 1), Kind: core.Moving,
		Loc: h.scn.ObjectLoc(i, now-h.lastT[i]), T: now,
	}
	h.lastT[i] = now
	changed := false
	for j := 0; j < h.cfg.Queries; j++ {
		in := h.regions[j].Contains(u.Loc)
		if in != h.member[i*h.cfg.Queries+j] {
			h.member[i*h.cfg.Queries+j] = in
			changed = true
		}
	}
	h.locs[i] = u.Loc
	if h.cfg.Record {
		h.recObjs = append(h.recObjs, u)
	}
	h.objReports++
	if changed {
		h.stamps[i].Store(time.Now().UnixNano())
	}
	return h.objectOwner(i).ReportObject(u)
}

// Converge quiesces after Run: evaluation continues (driven explicitly
// in-process, or by the remote server's own ticker) until the applied-
// update counter is stable across three consecutive checks, or timeout.
// It reports whether stability was reached.
func (h *Harness) Converge(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	stable, last := 0, h.applied.Value()
	for time.Now().Before(deadline) {
		if h.srv != nil && h.cfg.EvalInterval == 0 {
			h.srv.Evaluate()
		}
		time.Sleep(10 * time.Millisecond)
		if v := h.applied.Value(); v == last {
			if stable++; stable >= 3 {
				return true
			}
		} else {
			stable, last = 0, v
		}
	}
	return false
}

// Answer returns the converged answer of query q as seen by the session
// that owns it.
func (h *Harness) Answer(q core.QueryID) ([]core.ObjectID, bool) {
	j := int(q) - 1
	if j < 0 || j >= h.cfg.Queries {
		return nil, false
	}
	return h.queryOwner(j).Answer(q)
}

// NumQueries returns the configured query population.
func (h *Harness) NumQueries() int { return h.cfg.Queries }

func (h *Harness) result(offered float64, elapsed time.Duration) Result {
	sent := h.objReports + h.qryReports
	r := Result{
		Scenario:       h.scn.Name(),
		Offered:        offered,
		Elapsed:        elapsed,
		ObjectReports:  h.objReports,
		QueryReports:   h.qryReports,
		Delivered:      uint64(h.latency.Count()),
		UpdatesApplied: h.applied.Value(),
		P50:            time.Duration(h.latency.Quantile(0.50)),
		P95:            time.Duration(h.latency.Quantile(0.95)),
		P99:            time.Duration(h.latency.Quantile(0.99)),
		MaxLag:         time.Duration(h.maxLagNs.Load()),
		Reconnects:     h.reg.Counter("client.reconnects").Value(),
	}
	if elapsed > 0 {
		r.Achieved = float64(sent) / elapsed.Seconds()
	}
	if h.srv != nil {
		r.Sheds = h.reg.Counter("server.sheds").Value()
		r.Dropped = h.reg.Counter("server.outbox_dropped").Value()
		r.FullAnswers = h.reg.Counter("server.full_answers").Value()
	}
	return r
}

// Result assembles the current measurements without running the pacer —
// used after an external Run/Converge sequence.
func (h *Harness) Result(elapsed time.Duration) Result {
	return h.result(h.cfg.Rate, elapsed)
}

// Close tears down the clients, their event drains, and the in-process
// server. Safe to call more than once.
func (h *Harness) Close() error {
	h.closeOnce.Do(func() {
		for _, c := range h.clients {
			if err := c.Close(); err != nil && h.closeErr == nil {
				h.closeErr = err
			}
		}
		h.drainWG.Wait()
		if h.srv != nil {
			if err := h.srv.Close(); err != nil && h.closeErr == nil {
				h.closeErr = err
			}
		}
	})
	return h.closeErr
}
