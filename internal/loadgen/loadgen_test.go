package loadgen

import (
	"testing"
	"time"

	"cqp/internal/core"
	"cqp/internal/geo"
	"cqp/internal/testutil/leakcheck"
)

func TestMain(m *testing.M) { leakcheck.Main(m) }

func TestScenarioPresetsDeterministicAndBounded(t *testing.T) {
	unit := geo.R(0, 0, 1, 1)
	for _, name := range ScenarioNames {
		a, err := NewScenario(name, 50, 10, 0.01, 7)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		b, _ := NewScenario(name, 50, 10, 0.01, 7)
		for step := 0; step < 20; step++ {
			for i := 0; i < 50; i++ {
				pa, pb := a.ObjectLoc(i, 0.5), b.ObjectLoc(i, 0.5)
				if pa != pb {
					t.Fatalf("%s: object %d diverges at step %d: %v vs %v", name, i, step, pa, pb)
				}
				if !unit.Contains(pa) {
					t.Fatalf("%s: object %d left the unit square: %v", name, i, pa)
				}
			}
			for j := 0; j < 10; j++ {
				ra, rb := a.QueryRegion(j, 0.5), b.QueryRegion(j, 0.5)
				if ra != rb {
					t.Fatalf("%s: query %d diverges at step %d", name, j, step)
				}
			}
		}
	}
	if _, err := NewScenario("bogus", 1, 1, 0.01, 1); err == nil {
		t.Error("unknown scenario should error")
	}
}

func TestHarnessSmoke(t *testing.T) {
	h, err := New(Config{
		Rate:     400,
		Duration: 250 * time.Millisecond,
		Sessions: 2,
		Objects:  100,
		Queries:  20,
		// Large query squares so nearly every object move crosses a
		// region boundary and yields a measurable delivery.
		QuerySide: 0.5,
		Seed:      3,
		// EvalInterval 0: this test drives Evaluate itself.
	})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()

	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-done:
				return
			case <-time.After(5 * time.Millisecond):
				h.Server().Evaluate()
			}
		}
	}()

	res, err := h.Run()
	done <- struct{}{}
	<-done
	if err != nil {
		t.Fatal(err)
	}
	if !h.Converge(5 * time.Second) {
		t.Fatal("harness never converged")
	}
	res = h.Result(res.Elapsed)

	if res.ObjectReports == 0 {
		t.Fatal("no object reports sent")
	}
	if res.Delivered == 0 {
		t.Fatal("no deliveries measured")
	}
	if res.P99 < res.P50 {
		t.Errorf("p99 %v < p50 %v", res.P99, res.P50)
	}
	if res.Sheds != 0 {
		t.Errorf("unexpected sheds: %d", res.Sheds)
	}
	if res.Achieved <= 0 {
		t.Errorf("achieved rate = %v", res.Achieved)
	}
}

func TestHarnessAnswersMatchDirectEngineReplay(t *testing.T) {
	h, err := New(Config{
		Rate:      500,
		Duration:  200 * time.Millisecond,
		Sessions:  3,
		Objects:   80,
		Queries:   15,
		QuerySide: 0.3,
		Scenario:  "hotspot",
		Seed:      11,
		Record:    true,
		GridN:     16,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()

	stop := make(chan struct{})
	tick := make(chan struct{})
	go func() {
		defer close(tick)
		for {
			select {
			case <-stop:
				return
			case <-time.After(5 * time.Millisecond):
				h.Server().Evaluate()
			}
		}
	}()
	if _, err := h.Run(); err != nil {
		t.Fatal(err)
	}
	close(stop)
	<-tick
	if !h.Converge(5 * time.Second) {
		t.Fatal("harness never converged")
	}

	// Oracle: replay the recorded stream into a direct engine. Range
	// answers depend only on each object's latest location and each
	// query's latest region, so the answers must match bit for bit no
	// matter how the server batched its evaluations.
	objs, qrys := h.Recorded()
	eng := core.MustNewEngine(core.Options{Bounds: geo.R(0, 0, 1, 1), GridN: 16})
	for _, q := range qrys {
		eng.ReportQuery(q)
	}
	for _, o := range objs {
		eng.ReportObject(o)
	}
	eng.Step(1e9)

	for j := 0; j < h.NumQueries(); j++ {
		q := core.QueryID(j + 1)
		want, _ := eng.Answer(q)
		got, ok := h.Answer(q)
		if !ok {
			t.Fatalf("query %d unknown to harness", q)
		}
		if len(got) != len(want) {
			t.Fatalf("query %d: got %v want %v", q, got, want)
		}
		for k := range got {
			if got[k] != want[k] {
				t.Fatalf("query %d: got %v want %v", q, got, want)
			}
		}
	}
}
