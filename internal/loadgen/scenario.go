package loadgen

import (
	"fmt"
	"math"
	"math/rand"

	"cqp/internal/gen"
	"cqp/internal/geo"
	"cqp/internal/roadnet"
)

// Scenario supplies the positions a load harness reports: where each
// moving object is and where each moving query's region sits, as both
// advance through scenario time. Implementations are deterministic for
// a given seed and are NOT safe for concurrent use — the harness calls
// them from its single pacer goroutine only.
//
// Every scenario lives in the unit square [0,1)², matching the bounds
// the in-process server is configured with.
type Scenario interface {
	// Name identifies the scenario in results and BENCH records.
	Name() string

	// ObjectLoc advances object i by dt scenario-seconds and returns
	// its new location.
	ObjectLoc(i int, dt float64) geo.Point

	// QueryRegion advances query j by dt scenario-seconds and returns
	// its new region.
	QueryRegion(j int, dt float64) geo.Rect
}

// ScenarioNames lists the presets NewScenario accepts.
var ScenarioNames = []string{"uniform", "hotspot", "fleet"}

// NewScenario builds a preset by name:
//
//   - "uniform": objects random-walk uniformly over the whole space;
//     queries are squares whose centers random-walk the same way. The
//     no-skew baseline.
//   - "hotspot": a rush-hour workload. A fraction of the population
//     commutes into a small drifting hot cell, concentrating both
//     reports and query overlap; the rest behaves like uniform.
//   - "fleet": trip-structured movement. Objects are travelers on a
//     generated road network (internal/gen, Brinkhoff-style): they
//     route to destinations edge by edge at road-class speeds, and
//     query centers are an independent traveler population, exactly
//     like the paper's evaluation workload.
func NewScenario(name string, objects, queries int, querySide float64, seed int64) (Scenario, error) {
	if objects <= 0 || queries <= 0 {
		return nil, fmt.Errorf("loadgen: scenario needs positive populations, got %d objects, %d queries", objects, queries)
	}
	if querySide <= 0 {
		querySide = 0.01
	}
	switch name {
	case "uniform":
		return newWalkScenario("uniform", objects, queries, querySide, seed, 0), nil
	case "hotspot":
		return newWalkScenario("hotspot", objects, queries, querySide, seed, 0.6), nil
	case "fleet":
		net := roadnet.Generate(roadnet.Config{Seed: seed})
		world := gen.MustNewWorld(gen.Config{Net: net, NumObjects: objects, Seed: seed})
		centers := gen.MustNewWorld(gen.Config{Net: net, NumObjects: queries, Seed: seed + 7919})
		// Scatter both populations along the edges so travelers do not
		// all start exactly on intersections.
		world.Advance(3600)
		centers.Advance(3600)
		return &fleetScenario{world: world, centers: centers, side: querySide}, nil
	default:
		return nil, fmt.Errorf("loadgen: unknown scenario %q (have %v)", name, ScenarioNames)
	}
}

// walkScenario is the uniform/hotspot preset: independent bounded
// random walks, with an optional commuter fraction biased toward a
// drifting hotspot.
type walkScenario struct {
	name string
	rng  *rand.Rand
	objs []geo.Point
	qctr []geo.Point
	side float64

	// speed is the walk step per scenario-second.
	speed float64

	// hotFrac of the objects are commuters; a commuter's step is pulled
	// toward the hotspot center, which itself orbits the space slowly
	// (the "rush hour" moves through town).
	hotFrac float64
	clock   float64
}

func newWalkScenario(name string, objects, queries int, querySide float64, seed int64, hotFrac float64) *walkScenario {
	s := &walkScenario{
		name:    name,
		rng:     rand.New(rand.NewSource(seed)),
		objs:    make([]geo.Point, objects),
		qctr:    make([]geo.Point, queries),
		side:    querySide,
		speed:   0.02,
		hotFrac: hotFrac,
	}
	for i := range s.objs {
		s.objs[i] = geo.Pt(s.rng.Float64(), s.rng.Float64())
	}
	for j := range s.qctr {
		s.qctr[j] = geo.Pt(s.rng.Float64(), s.rng.Float64())
	}
	return s
}

func (s *walkScenario) Name() string { return s.name }

// hotCenter orbits a circle of radius 0.3 around the middle of the
// space with a ~20 minute period.
func (s *walkScenario) hotCenter() geo.Point {
	theta := 2 * math.Pi * s.clock / 1200
	return geo.Pt(0.5+0.3*math.Cos(theta), 0.5+0.3*math.Sin(theta))
}

func (s *walkScenario) step(p geo.Point, dt float64, toward geo.Point, pull float64) geo.Point {
	if dt > 5 {
		dt = 5 // cap a long-idle object's catch-up step
	}
	d := s.speed * dt
	p.X += d * (2*s.rng.Float64() - 1 + pull*sign(toward.X-p.X))
	p.Y += d * (2*s.rng.Float64() - 1 + pull*sign(toward.Y-p.Y))
	return geo.Pt(clamp01(p.X), clamp01(p.Y))
}

func (s *walkScenario) ObjectLoc(i int, dt float64) geo.Point {
	s.clock += dt / float64(len(s.objs)) // population-amortized scenario clock
	pull := 0.0
	var toward geo.Point
	if s.hotFrac > 0 && float64(i%100) < s.hotFrac*100 {
		pull, toward = 1.5, s.hotCenter()
	}
	s.objs[i] = s.step(s.objs[i], dt, toward, pull)
	return s.objs[i]
}

func (s *walkScenario) QueryRegion(j int, dt float64) geo.Rect {
	pull := 0.0
	var toward geo.Point
	if s.hotFrac > 0 && float64(j%100) < s.hotFrac*100 {
		pull, toward = 1.5, s.hotCenter()
	}
	s.qctr[j] = s.step(s.qctr[j], dt, toward, pull)
	return geo.RectAt(s.qctr[j], s.side)
}

// fleetScenario reports road-network travelers (internal/gen worlds).
type fleetScenario struct {
	world   *gen.World
	centers *gen.World
	side    float64
}

func (s *fleetScenario) Name() string { return "fleet" }

func (s *fleetScenario) ObjectLoc(i int, dt float64) geo.Point {
	s.world.AdvanceObject(i, dt)
	loc, _ := s.world.Object(i)
	return loc
}

func (s *fleetScenario) QueryRegion(j int, dt float64) geo.Rect {
	s.centers.AdvanceObject(j, dt)
	loc, _ := s.centers.Object(j)
	return geo.RectAt(loc, s.side)
}

func clamp01(v float64) float64 {
	return math.Min(math.Max(v, 0), 0.999999)
}

func sign(v float64) float64 {
	if v < 0 {
		return -1
	}
	if v > 0 {
		return 1
	}
	return 0
}
