package repository

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"cqp/internal/core"
	"cqp/internal/storage"
)

// The location archive is indexed by object ID with a disk-paged B+tree
// (the paper's "object index"), so per-object history reads avoid full
// log scans. A watermark file records the log offset up to which the
// index is complete; after a crash the index catches up incrementally
// from the watermark, and a missing or implausible watermark triggers a
// full rebuild.

const indexMarkSize = 8

// openLocationIndex opens the index and brings it up to date with the
// location log.
func (r *Repository) openLocationIndex(dir string) error {
	idxPath := filepath.Join(dir, "locations.idx")
	markPath := filepath.Join(dir, "locations.idx.mark")

	idx, err := storage.OpenBTree(idxPath, 64)
	if err != nil {
		// A corrupt index is rebuildable state: start over.
		os.Remove(idxPath)
		idx, err = storage.OpenBTree(idxPath, 64)
		if err != nil {
			return err
		}
	}

	mark, ok := readIndexMark(markPath)
	if !ok || mark > r.locations.Size() {
		// Unknown or implausible watermark: rebuild from scratch.
		idx.Close()
		os.Remove(idxPath)
		idx, err = storage.OpenBTree(idxPath, 64)
		if err != nil {
			return err
		}
		mark = 0
	}

	// Catch up from the watermark.
	err = r.locations.ReplayFrom(mark, func(off int64, payload []byte) bool {
		rec, recOK := decodeLocation(payload)
		if !recOK {
			return true
		}
		if ierr := idx.Insert(uint64(rec.ID), uint64(off)); ierr != nil {
			err = ierr
			return false
		}
		return true
	})
	if err != nil {
		idx.Close()
		return fmt.Errorf("repository: index catch-up: %w", err)
	}
	r.locIndex = idx
	r.locIndexMark = markPath
	return nil
}

// persistIndexMark records the indexed-through offset. Ordering matters:
// the index is synced before the watermark so the mark never overstates
// index completeness.
func (r *Repository) persistIndexMark() error {
	if err := r.locIndex.Sync(); err != nil {
		return err
	}
	var buf [indexMarkSize]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(r.locations.Size()))
	tmp := r.locIndexMark + ".tmp"
	if err := os.WriteFile(tmp, buf[:], 0o644); err != nil {
		return fmt.Errorf("repository: write index mark: %w", err)
	}
	if err := os.Rename(tmp, r.locIndexMark); err != nil {
		return fmt.Errorf("repository: publish index mark: %w", err)
	}
	return nil
}

func readIndexMark(path string) (int64, bool) {
	data, err := os.ReadFile(path)
	if err != nil || len(data) != indexMarkSize {
		return 0, false
	}
	return int64(binary.LittleEndian.Uint64(data)), true
}

// IndexedHistory returns the archived reports of one object within
// [t1, t2] using the B+tree index, sorted by report time. It is the
// indexed counterpart of Trajectory; History delegates here.
func (r *Repository) IndexedHistory(id core.ObjectID, t1, t2 float64) ([]LocationRecord, error) {
	var offsets []int64
	if err := r.locIndex.Search(uint64(id), func(v uint64) bool {
		offsets = append(offsets, int64(v))
		return true
	}); err != nil {
		return nil, err
	}
	out := make([]LocationRecord, 0, len(offsets))
	for _, off := range offsets {
		payload, err := r.locations.ReadAt(off)
		if err != nil {
			return nil, err
		}
		rec, ok := decodeLocation(payload)
		if !ok || rec.ID != id {
			return nil, fmt.Errorf("repository: index points at foreign record at offset %d", off)
		}
		if rec.T >= t1 && rec.T <= t2 {
			out = append(out, rec)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].T < out[j].T })
	return out, nil
}
