// Package repository implements the paper's repository server: when a
// moving object or query sends new information, the old information
// becomes persistent here. It also persists the committed query answers
// that drive out-of-sync recovery across server restarts, and a catalog
// of stationary objects (gas stations, hospitals, ...).
//
// Persistence is built on package storage: append-only checksummed logs
// for the location history and the commit stream, and a slotted-page heap
// file for the stationary catalog.
package repository

import (
	"encoding/binary"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sync"

	"cqp/internal/core"
	"cqp/internal/geo"
	"cqp/internal/storage"
)

// LocationRecord is one archived position report.
type LocationRecord struct {
	ID  core.ObjectID
	Loc geo.Point
	T   float64
}

// Repository is the persistent store behind the location-aware server.
// All methods are safe for concurrent use.
type Repository struct {
	mu        sync.Mutex
	locations *storage.Log
	commits   *storage.Log
	catalog   *storage.HeapFile

	locIndex     *storage.BTree // object-ID index over the location log
	locIndexMark string         // watermark file path

	committed  map[core.QueryID][]core.ObjectID
	stationary map[core.ObjectID]storage.RID
}

// Open opens (creating if necessary) a repository in dir.
func Open(dir string) (*Repository, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("repository: create dir: %w", err)
	}
	locations, err := storage.OpenLog(filepath.Join(dir, "locations.log"))
	if err != nil {
		return nil, err
	}
	commits, err := storage.OpenLog(filepath.Join(dir, "commits.log"))
	if err != nil {
		locations.Close()
		return nil, err
	}
	catalog, err := storage.OpenHeapFile(filepath.Join(dir, "stationary.heap"), 64)
	if err != nil {
		locations.Close()
		commits.Close()
		return nil, err
	}
	r := &Repository{
		locations:  locations,
		commits:    commits,
		catalog:    catalog,
		committed:  make(map[core.QueryID][]core.ObjectID),
		stationary: make(map[core.ObjectID]storage.RID),
	}
	if err := r.openLocationIndex(dir); err != nil {
		locations.Close()
		commits.Close()
		catalog.Close()
		return nil, err
	}
	if err := r.recover(); err != nil {
		r.Close()
		return nil, err
	}
	return r, nil
}

// recover rebuilds the in-memory committed-answer table (latest record
// per query wins) and the stationary catalog index.
func (r *Repository) recover() error {
	err := r.commits.Replay(func(_ int64, payload []byte) bool {
		q, objs, ok := decodeCommit(payload)
		if !ok {
			return true // skip malformed record defensively
		}
		if objs == nil {
			delete(r.committed, q)
		} else {
			r.committed[q] = objs
		}
		return true
	})
	if err != nil {
		return err
	}
	return r.catalog.Scan(func(rid storage.RID, rec []byte) bool {
		if id, _, ok := decodeStationary(rec); ok {
			r.stationary[id] = rid
		}
		return true
	})
}

// Close flushes and closes all stores.
func (r *Repository) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	var first error
	if err := r.persistIndexMark(); err != nil {
		first = err
	}
	for _, c := range []func() error{r.locations.Close, r.commits.Close, r.catalog.Close, r.locIndex.Close} {
		if err := c(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Sync forces all stores to stable storage.
func (r *Repository) Sync() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.locations.Sync(); err != nil {
		return err
	}
	if err := r.persistIndexMark(); err != nil {
		return err
	}
	if err := r.commits.Sync(); err != nil {
		return err
	}
	return r.catalog.Sync()
}

// --- Location history ---------------------------------------------------

const locationRecordSize = 8 + 8 + 8 + 8

// AppendLocation archives a position report and indexes it by object.
func (r *Repository) AppendLocation(rec LocationRecord) error {
	var buf [locationRecordSize]byte
	binary.LittleEndian.PutUint64(buf[0:], uint64(rec.ID))
	binary.LittleEndian.PutUint64(buf[8:], math.Float64bits(rec.Loc.X))
	binary.LittleEndian.PutUint64(buf[16:], math.Float64bits(rec.Loc.Y))
	binary.LittleEndian.PutUint64(buf[24:], math.Float64bits(rec.T))
	off, err := r.locations.Append(buf[:])
	if err != nil {
		return err
	}
	return r.locIndex.Insert(uint64(rec.ID), uint64(off))
}

// History returns the archived reports of one object, sorted by report
// time, via the object index.
func (r *Repository) History(id core.ObjectID) ([]LocationRecord, error) {
	return r.IndexedHistory(id, math.Inf(-1), math.Inf(1))
}

// NumArchivedBytes returns the size of the location history log.
func (r *Repository) NumArchivedBytes() int64 { return r.locations.Size() }

// --- Committed answers ----------------------------------------------------

// CommitAnswer durably records the committed answer of query q. A nil
// objs slice erases the entry (query removed).
func (r *Repository) CommitAnswer(q core.QueryID, objs []core.ObjectID) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, err := r.commits.Append(encodeCommit(q, objs)); err != nil {
		return err
	}
	if objs == nil {
		delete(r.committed, q)
	} else {
		cp := make([]core.ObjectID, len(objs))
		copy(cp, objs)
		r.committed[q] = cp
	}
	return nil
}

// Committed returns the last committed answer of q, if any.
func (r *Repository) Committed(q core.QueryID) ([]core.ObjectID, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	objs, ok := r.committed[q]
	if !ok {
		return nil, false
	}
	out := make([]core.ObjectID, len(objs))
	copy(out, objs)
	return out, true
}

// CommittedQueries returns the IDs of all queries with committed answers.
func (r *Repository) CommittedQueries() []core.QueryID {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]core.QueryID, 0, len(r.committed))
	for q := range r.committed {
		out = append(out, q)
	}
	return out
}

func encodeCommit(q core.QueryID, objs []core.ObjectID) []byte {
	// Layout: qid uint64 | present uint8 | count uint32 | ids...
	buf := make([]byte, 8+1+4+8*len(objs))
	binary.LittleEndian.PutUint64(buf[0:], uint64(q))
	if objs == nil {
		return buf[:9] // present = 0
	}
	buf[8] = 1
	binary.LittleEndian.PutUint32(buf[9:], uint32(len(objs)))
	for i, o := range objs {
		binary.LittleEndian.PutUint64(buf[13+8*i:], uint64(o))
	}
	return buf
}

func decodeCommit(payload []byte) (core.QueryID, []core.ObjectID, bool) {
	if len(payload) < 9 {
		return 0, nil, false
	}
	q := core.QueryID(binary.LittleEndian.Uint64(payload[0:]))
	if payload[8] == 0 {
		return q, nil, true
	}
	if len(payload) < 13 {
		return 0, nil, false
	}
	n := int(binary.LittleEndian.Uint32(payload[9:]))
	if len(payload) != 13+8*n {
		return 0, nil, false
	}
	objs := make([]core.ObjectID, n)
	for i := range objs {
		objs[i] = core.ObjectID(binary.LittleEndian.Uint64(payload[13+8*i:]))
	}
	return q, objs, true
}

// --- Stationary catalog ---------------------------------------------------

const stationaryRecordSize = 8 + 8 + 8

// PutStationary registers (or relocates) a stationary object in the
// catalog.
func (r *Repository) PutStationary(id core.ObjectID, loc geo.Point) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if rid, ok := r.stationary[id]; ok {
		if err := r.catalog.Delete(rid); err != nil {
			return err
		}
	}
	var buf [stationaryRecordSize]byte
	binary.LittleEndian.PutUint64(buf[0:], uint64(id))
	binary.LittleEndian.PutUint64(buf[8:], math.Float64bits(loc.X))
	binary.LittleEndian.PutUint64(buf[16:], math.Float64bits(loc.Y))
	rid, err := r.catalog.Insert(buf[:])
	if err != nil {
		return err
	}
	r.stationary[id] = rid
	return nil
}

// GetStationary looks a stationary object up by ID.
func (r *Repository) GetStationary(id core.ObjectID) (geo.Point, bool, error) {
	r.mu.Lock()
	rid, ok := r.stationary[id]
	r.mu.Unlock()
	if !ok {
		return geo.Point{}, false, nil
	}
	rec, err := r.catalog.Get(rid)
	if err != nil {
		return geo.Point{}, false, err
	}
	_, loc, ok := decodeStationary(rec)
	if !ok {
		return geo.Point{}, false, fmt.Errorf("repository: corrupt stationary record at %v", rid)
	}
	return loc, true, nil
}

// DeleteStationary removes a stationary object; it reports whether the
// object existed.
func (r *Repository) DeleteStationary(id core.ObjectID) (bool, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	rid, ok := r.stationary[id]
	if !ok {
		return false, nil
	}
	if err := r.catalog.Delete(rid); err != nil {
		return false, err
	}
	delete(r.stationary, id)
	return true, nil
}

// VisitStationary calls fn for every cataloged stationary object.
func (r *Repository) VisitStationary(fn func(id core.ObjectID, loc geo.Point) bool) error {
	return r.catalog.Scan(func(_ storage.RID, rec []byte) bool {
		id, loc, ok := decodeStationary(rec)
		if !ok {
			return true
		}
		return fn(id, loc)
	})
}

func decodeStationary(rec []byte) (core.ObjectID, geo.Point, bool) {
	if len(rec) != stationaryRecordSize {
		return 0, geo.Point{}, false
	}
	return core.ObjectID(binary.LittleEndian.Uint64(rec[0:])),
		geo.Pt(
			math.Float64frombits(binary.LittleEndian.Uint64(rec[8:])),
			math.Float64frombits(binary.LittleEndian.Uint64(rec[16:])),
		), true
}

// CompactCommits rewrites the commit log to contain only the latest
// committed answer per query, reclaiming space from superseded records.
// The compacted log is written beside the live one and swapped in
// atomically; a crash at any point leaves either the old or the new log
// intact.
func (r *Repository) CompactCommits() error {
	r.mu.Lock()
	defer r.mu.Unlock()

	path := r.commits.Path()
	tmp := path + ".compact"
	os.Remove(tmp)
	fresh, err := storage.OpenLog(tmp)
	if err != nil {
		return err
	}
	for q, objs := range r.committed {
		if _, err := fresh.Append(encodeCommit(q, objs)); err != nil {
			fresh.Close()
			os.Remove(tmp)
			return err
		}
	}
	if err := fresh.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := r.commits.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		// Try to reopen the original before giving up.
		reopened, rerr := storage.OpenLog(path)
		if rerr != nil {
			return fmt.Errorf("repository: compact swap failed (%v) and reopen failed: %w", err, rerr)
		}
		r.commits = reopened
		return err
	}
	reopened, err := storage.OpenLog(path)
	if err != nil {
		return err
	}
	r.commits = reopened
	return nil
}

// CommitLogSize returns the commit log size in bytes.
func (r *Repository) CommitLogSize() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.commits.Size()
}
