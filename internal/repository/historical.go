package repository

import (
	"encoding/binary"
	"math"
	"sort"

	"cqp/internal/core"
	"cqp/internal/geo"
)

// The paper frames spatio-temporal range queries as asking "about the
// past, present, or the future". Present and future queries are the
// engine's continuous Range and PredictiveRange kinds; past queries are
// answered here, from the repository's location archive, as one-shot
// snapshot queries.

// HistoricalRange returns the IDs of objects that reported a location
// inside region at some time in [t1, t2], in ascending order. It scans
// the archive; the repository favors a simple, robust append-only log
// over read-optimized indexing, matching its role in the paper.
func (r *Repository) HistoricalRange(region geo.Rect, t1, t2 float64) ([]core.ObjectID, error) {
	seen := map[core.ObjectID]struct{}{}
	err := r.locations.Replay(func(_ int64, payload []byte) bool {
		rec, ok := decodeLocation(payload)
		if !ok {
			return true
		}
		if rec.T < t1 || rec.T > t2 {
			return true
		}
		if region.Contains(rec.Loc) {
			seen[rec.ID] = struct{}{}
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	out := make([]core.ObjectID, 0, len(seen))
	for id := range seen {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// Trajectory returns the archived reports of one object within [t1, t2],
// sorted by report time — the historical counterpart of a predictive
// object's future trajectory. It reads through the object index.
func (r *Repository) Trajectory(id core.ObjectID, t1, t2 float64) ([]LocationRecord, error) {
	return r.IndexedHistory(id, t1, t2)
}

func decodeLocation(payload []byte) (LocationRecord, bool) {
	if len(payload) != locationRecordSize {
		return LocationRecord{}, false
	}
	return LocationRecord{
		ID: core.ObjectID(binary.LittleEndian.Uint64(payload[0:])),
		Loc: geo.Pt(
			math.Float64frombits(binary.LittleEndian.Uint64(payload[8:])),
			math.Float64frombits(binary.LittleEndian.Uint64(payload[16:])),
		),
		T: math.Float64frombits(binary.LittleEndian.Uint64(payload[24:])),
	}, true
}
