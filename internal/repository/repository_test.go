package repository

import (
	"encoding/binary"
	"math"
	"os"
	"path/filepath"
	"testing"

	"cqp/internal/core"
	"cqp/internal/geo"
	"cqp/internal/storage"
)

func TestLocationHistoryRoundTrip(t *testing.T) {
	dir := t.TempDir()
	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := r.AppendLocation(LocationRecord{ID: 7, Loc: geo.Pt(float64(i), float64(i)), T: float64(i)}); err != nil {
			t.Fatal(err)
		}
		if err := r.AppendLocation(LocationRecord{ID: 8, Loc: geo.Pt(0, 0), T: float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	hist, err := r.History(7)
	if err != nil {
		t.Fatal(err)
	}
	if len(hist) != 10 {
		t.Fatalf("history length = %d", len(hist))
	}
	for i, rec := range hist {
		if rec.T != float64(i) || rec.Loc.X != float64(i) {
			t.Fatalf("record %d = %+v", i, rec)
		}
	}
	if r.NumArchivedBytes() == 0 {
		t.Error("archive should be non-empty")
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: history persists.
	r, err = Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	hist, _ = r.History(7)
	if len(hist) != 10 {
		t.Fatalf("after reopen: %d", len(hist))
	}
	if empty, _ := r.History(999); len(empty) != 0 {
		t.Fatalf("unknown object history: %v", empty)
	}
}

func TestCommittedAnswersPersist(t *testing.T) {
	dir := t.TempDir()
	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := r.Committed(1); ok {
		t.Error("empty repository should have no commits")
	}
	if err := r.CommitAnswer(1, []core.ObjectID{3, 1, 4}); err != nil {
		t.Fatal(err)
	}
	if err := r.CommitAnswer(2, []core.ObjectID{}); err != nil {
		t.Fatal(err)
	}
	// Latest wins.
	if err := r.CommitAnswer(1, []core.ObjectID{5}); err != nil {
		t.Fatal(err)
	}
	got, ok := r.Committed(1)
	if !ok || len(got) != 1 || got[0] != 5 {
		t.Fatalf("Committed(1) = %v, %v", got, ok)
	}
	if got, ok := r.Committed(2); !ok || len(got) != 0 {
		t.Fatalf("Committed(2) = %v, %v", got, ok)
	}
	if err := r.Sync(); err != nil {
		t.Fatal(err)
	}
	r.Close()

	r, err = Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	got, ok = r.Committed(1)
	if !ok || len(got) != 1 || got[0] != 5 {
		t.Fatalf("after reopen Committed(1) = %v, %v", got, ok)
	}
	if qs := r.CommittedQueries(); len(qs) != 2 {
		t.Fatalf("CommittedQueries = %v", qs)
	}

	// Erase a commit (query removed) and persist that too.
	if err := r.CommitAnswer(1, nil); err != nil {
		t.Fatal(err)
	}
	if _, ok := r.Committed(1); ok {
		t.Error("erased commit still present")
	}
	r.Close()
	r, err = Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, ok := r.Committed(1); ok {
		t.Error("erased commit resurrected after reopen")
	}
}

func TestStationaryCatalog(t *testing.T) {
	dir := t.TempDir()
	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := core.ObjectID(1); i <= 200; i++ {
		if err := r.PutStationary(i, geo.Pt(float64(i), 0)); err != nil {
			t.Fatal(err)
		}
	}
	loc, ok, err := r.GetStationary(42)
	if err != nil || !ok || loc.X != 42 {
		t.Fatalf("GetStationary = %v %v %v", loc, ok, err)
	}
	if _, ok, _ := r.GetStationary(999); ok {
		t.Error("unknown stationary object found")
	}

	// Relocation replaces.
	if err := r.PutStationary(42, geo.Pt(-1, -1)); err != nil {
		t.Fatal(err)
	}
	loc, _, _ = r.GetStationary(42)
	if loc.X != -1 {
		t.Fatalf("relocated = %v", loc)
	}

	// Deletion.
	if ok, err := r.DeleteStationary(42); err != nil || !ok {
		t.Fatalf("delete: %v %v", ok, err)
	}
	if ok, _ := r.DeleteStationary(42); ok {
		t.Error("double delete succeeded")
	}
	r.Close()

	// Catalog persists across reopen.
	r, err = Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	count := 0
	r.VisitStationary(func(id core.ObjectID, loc geo.Point) bool {
		count++
		return true
	})
	if count != 199 {
		t.Fatalf("catalog count after reopen = %d", count)
	}
	if _, ok, _ := r.GetStationary(41); !ok {
		t.Error("lost object 41 across reopen")
	}
}

func TestHistoricalRangeAndTrajectory(t *testing.T) {
	r, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	// Object 1 crosses the region during [2,4]; object 2 never enters;
	// object 3 is inside but only at t=10.
	for i := 0; i <= 5; i++ {
		r.AppendLocation(LocationRecord{ID: 1, Loc: geo.Pt(float64(i), 5), T: float64(i)})
	}
	r.AppendLocation(LocationRecord{ID: 2, Loc: geo.Pt(9, 9), T: 3})
	r.AppendLocation(LocationRecord{ID: 3, Loc: geo.Pt(3, 5), T: 10})

	got, err := r.HistoricalRange(geo.R(2, 4, 4, 6), 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("HistoricalRange = %v, want [1]", got)
	}

	// Widening the window picks up object 3.
	got, _ = r.HistoricalRange(geo.R(2, 4, 4, 6), 2, 20)
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("wide HistoricalRange = %v, want [1 3]", got)
	}

	// Empty result outside all reports.
	got, _ = r.HistoricalRange(geo.R(2, 4, 4, 6), 100, 200)
	if len(got) != 0 {
		t.Fatalf("late window = %v", got)
	}

	traj, err := r.Trajectory(1, 1.5, 3.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(traj) != 2 || traj[0].T != 2 || traj[1].T != 3 {
		t.Fatalf("Trajectory = %+v", traj)
	}
}

func TestLocationIndexCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		r.AppendLocation(LocationRecord{ID: core.ObjectID(i % 7), Loc: geo.Pt(float64(i), 0), T: float64(i)})
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}

	check := func(r *Repository) {
		t.Helper()
		for id := core.ObjectID(0); id < 7; id++ {
			hist, err := r.History(id)
			if err != nil {
				t.Fatal(err)
			}
			want := 0
			for i := 0; i < 300; i++ {
				if core.ObjectID(i%7) == id {
					want++
				}
			}
			if len(hist) != want {
				t.Fatalf("object %d: %d records, want %d", id, len(hist), want)
			}
			for i := 1; i < len(hist); i++ {
				if hist[i].T < hist[i-1].T {
					t.Fatalf("object %d: history out of time order", id)
				}
			}
		}
	}

	// Clean reopen.
	r, err = Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	check(r)
	r.Close()

	// Crash simulation 1: lost watermark → full rebuild.
	if err := os.Remove(filepath.Join(dir, "locations.idx.mark")); err != nil {
		t.Fatal(err)
	}
	r, err = Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	check(r)
	r.Close()

	// Crash simulation 2: stale watermark (index missing the tail) →
	// incremental catch-up. Rewind the mark halfway into the log.
	data, err := os.ReadFile(filepath.Join(dir, "locations.idx.mark"))
	if err != nil {
		t.Fatal(err)
	}
	half := binary.LittleEndian.Uint64(data) / 2
	// Snap to a record boundary: records are fixed-size frames.
	frame := uint64(locationRecordSize + 8)
	half -= half % frame
	binary.LittleEndian.PutUint64(data, half)
	// Also delete the index so catch-up re-inserts from the mark into a
	// fresh tree (a fully deleted index with a kept mark would double-add
	// otherwise; the mark belongs to the index file).
	if err := os.Remove(filepath.Join(dir, "locations.idx")); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, "locations.idx.mark")); err != nil {
		t.Fatal(err)
	}
	r, err = Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	check(r)
	r.Close()

	// Crash simulation 3: corrupt index file → rebuild.
	idxPath := filepath.Join(dir, "locations.idx")
	if err := os.WriteFile(idxPath, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	os.Remove(filepath.Join(dir, "locations.idx.mark"))
	r, err = Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	check(r)
	r.Close()
}

// TestLocationIndexCatchUp exercises the incremental catch-up path: the
// log grows past the watermark (as after a crash between log append and
// index sync), and reopening indexes exactly the tail.
func TestLocationIndexCatchUp(t *testing.T) {
	dir := t.TempDir()
	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		r.AppendLocation(LocationRecord{ID: 1, Loc: geo.Pt(float64(i), 0), T: float64(i)})
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}

	// Crash simulation: 10 more records reach the log but never the index
	// or the watermark.
	log, err := storage.OpenLog(filepath.Join(dir, "locations.log"))
	if err != nil {
		t.Fatal(err)
	}
	for i := 50; i < 60; i++ {
		var buf [32]byte
		binary.LittleEndian.PutUint64(buf[0:], 1)
		binary.LittleEndian.PutUint64(buf[8:], mathFloat64bits(float64(i)))
		binary.LittleEndian.PutUint64(buf[16:], 0)
		binary.LittleEndian.PutUint64(buf[24:], mathFloat64bits(float64(i)))
		if _, err := log.Append(buf[:]); err != nil {
			t.Fatal(err)
		}
	}
	log.Close()

	r, err = Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	hist, err := r.History(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(hist) != 60 {
		t.Fatalf("history = %d records, want 60", len(hist))
	}
	if hist[59].T != 59 {
		t.Fatalf("tail record T = %v", hist[59].T)
	}
}

func mathFloat64bits(f float64) uint64 { return math.Float64bits(f) }

func TestCompactCommits(t *testing.T) {
	dir := t.TempDir()
	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Many superseded commits for a handful of queries.
	for round := 0; round < 50; round++ {
		for q := core.QueryID(1); q <= 5; q++ {
			r.CommitAnswer(q, []core.ObjectID{core.ObjectID(round), core.ObjectID(round + 1)})
		}
	}
	r.CommitAnswer(3, nil) // erased query
	before := r.CommitLogSize()
	if err := r.CompactCommits(); err != nil {
		t.Fatal(err)
	}
	after := r.CommitLogSize()
	if after >= before {
		t.Fatalf("compaction did not shrink the log: %d -> %d", before, after)
	}
	// Latest answers survive.
	got, ok := r.Committed(1)
	if !ok || len(got) != 2 || got[0] != 49 {
		t.Fatalf("Committed(1) after compaction = %v, %v", got, ok)
	}
	if _, ok := r.Committed(3); ok {
		t.Error("erased query resurrected by compaction")
	}
	// The compacted log still accepts appends and survives reopen.
	if err := r.CommitAnswer(9, []core.ObjectID{7}); err != nil {
		t.Fatal(err)
	}
	r.Close()
	r, err = Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if got, ok := r.Committed(9); !ok || len(got) != 1 || got[0] != 7 {
		t.Fatalf("post-compaction commit lost: %v, %v", got, ok)
	}
	if got, _ := r.Committed(1); len(got) != 2 {
		t.Fatalf("compacted commit lost after reopen: %v", got)
	}
}
