package storage

import (
	"fmt"
	"os"
)

// RID is a record identifier: page number plus slot within the page.
type RID struct {
	Page PageID
	Slot uint16
}

// String implements fmt.Stringer.
func (r RID) String() string { return fmt.Sprintf("%d.%d", r.Page, r.Slot) }

// HeapFile is an unordered record file over a buffer pool: records are
// placed on any page with room (tracked by an in-memory free-space map
// rebuilt on open), addressed by RID.
type HeapFile struct {
	bp *BufferPool

	// freeSpace caches the post-compaction free bytes per page (the
	// placement decision compacts lazily when a record only fits after
	// reclaiming garbage).
	freeSpace map[PageID]int
}

// OpenHeapFile opens (or creates) a heap file at path with a buffer pool
// of poolPages frames. Close releases the underlying file.
func OpenHeapFile(path string, poolPages int) (*HeapFile, error) {
	file, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: open heap file: %w", err)
	}
	bp, err := NewBufferPool(file, poolPages)
	if err != nil {
		file.Close()
		return nil, err
	}
	h := &HeapFile{bp: bp, freeSpace: make(map[PageID]int)}
	// Rebuild the free-space map.
	for id := PageID(0); id < bp.NumPages(); id++ {
		f, err := bp.Fetch(id)
		if err != nil {
			file.Close()
			return nil, err
		}
		h.freeSpace[id] = f.Page().PotentialFreeSpace()
		bp.Unpin(f, false)
	}
	return h, nil
}

// Close flushes all pages and closes the backing file.
func (h *HeapFile) Close() error {
	if err := h.bp.FlushAll(); err != nil {
		h.bp.file.Close()
		return err
	}
	return h.bp.file.Close()
}

// Sync flushes dirty pages to disk.
func (h *HeapFile) Sync() error { return h.bp.FlushAll() }

// NumPages returns the page count.
func (h *HeapFile) NumPages() int { return int(h.bp.NumPages()) }

// Insert stores a record and returns its RID.
func (h *HeapFile) Insert(record []byte) (RID, error) {
	// First fit over pages with enough cached free space.
	for id, free := range h.freeSpace {
		if free < len(record)+slotSize {
			continue
		}
		f, err := h.bp.Fetch(id)
		if err != nil {
			return RID{}, err
		}
		p := f.Page()
		slot, err := p.Insert(record)
		if err == nil {
			h.freeSpace[id] = p.PotentialFreeSpace()
			h.bp.Unpin(f, true)
			return RID{Page: id, Slot: uint16(slot)}, nil
		}
		// Try to compact once before giving up on the page.
		p.Compact()
		if slot, err = p.Insert(record); err == nil {
			h.freeSpace[id] = p.PotentialFreeSpace()
			h.bp.Unpin(f, true)
			return RID{Page: id, Slot: uint16(slot)}, nil
		}
		h.freeSpace[id] = p.PotentialFreeSpace()
		h.bp.Unpin(f, true)
	}
	// Allocate a fresh page.
	f, err := h.bp.Allocate()
	if err != nil {
		return RID{}, err
	}
	p := f.Page()
	slot, err := p.Insert(record)
	if err != nil {
		h.bp.Unpin(f, true)
		return RID{}, err
	}
	h.freeSpace[f.ID()] = p.PotentialFreeSpace()
	h.bp.Unpin(f, true)
	return RID{Page: f.ID(), Slot: uint16(slot)}, nil
}

// Get returns a copy of the record at rid.
func (h *HeapFile) Get(rid RID) ([]byte, error) {
	f, err := h.bp.Fetch(rid.Page)
	if err != nil {
		return nil, err
	}
	defer h.bp.Unpin(f, false)
	rec, err := f.Page().Read(int(rid.Slot))
	if err != nil {
		return nil, err
	}
	out := make([]byte, len(rec))
	copy(out, rec)
	return out, nil
}

// Delete removes the record at rid.
func (h *HeapFile) Delete(rid RID) error {
	f, err := h.bp.Fetch(rid.Page)
	if err != nil {
		return err
	}
	defer h.bp.Unpin(f, true)
	p := f.Page()
	if err := p.Delete(int(rid.Slot)); err != nil {
		return err
	}
	h.freeSpace[rid.Page] = p.PotentialFreeSpace()
	return nil
}

// Scan calls fn for every record in the file, in page then slot order,
// stopping early if fn returns false. The record slice is only valid
// during the callback.
func (h *HeapFile) Scan(fn func(rid RID, record []byte) bool) error {
	for id := PageID(0); id < h.bp.NumPages(); id++ {
		f, err := h.bp.Fetch(id)
		if err != nil {
			return err
		}
		stop := false
		f.Page().Visit(func(slot int, rec []byte) bool {
			if !fn(RID{Page: id, Slot: uint16(slot)}, rec) {
				stop = true
				return false
			}
			return true
		})
		h.bp.Unpin(f, false)
		if stop {
			return nil
		}
	}
	return nil
}
