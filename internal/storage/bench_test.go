package storage

import (
	"math/rand"
	"path/filepath"
	"testing"
)

func BenchmarkPageInsert(b *testing.B) {
	rec := make([]byte, 64)
	p := newBenchPage()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Insert(rec); err != nil {
			p.Init()
		}
	}
}

func newBenchPage() *Page {
	p := PageFrom(make([]byte, PageSize))
	p.Init()
	return p
}

func BenchmarkLogAppend(b *testing.B) {
	l, err := OpenLog(filepath.Join(b.TempDir(), "bench.log"))
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	rec := make([]byte, 128)
	b.SetBytes(int64(len(rec) + logFrameHeader))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.Append(rec); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHeapFileInsert(b *testing.B) {
	h, err := OpenHeapFile(filepath.Join(b.TempDir(), "bench.heap"), 64)
	if err != nil {
		b.Fatal(err)
	}
	defer h.Close()
	rec := make([]byte, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := h.Insert(rec); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBTreeInsert(b *testing.B) {
	bt, err := OpenBTree(filepath.Join(b.TempDir(), "bench.bt"), 256)
	if err != nil {
		b.Fatal(err)
	}
	defer bt.Close()
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := bt.Insert(rng.Uint64(), uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBTreeSearch(b *testing.B) {
	bt, err := OpenBTree(filepath.Join(b.TempDir(), "search.bt"), 256)
	if err != nil {
		b.Fatal(err)
	}
	defer bt.Close()
	const n = 200000
	for i := uint64(0); i < n; i++ {
		bt.Insert(i, i)
	}
	rng := rand.New(rand.NewSource(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bt.Search(uint64(rng.Intn(n)), func(uint64) bool { return true })
	}
}
