package storage

import (
	"container/list"
	"fmt"
	"io"
	"os"
	"sync"
)

// PageID identifies a page within one backing file.
type PageID uint32

// BufferPool caches fixed-size pages of a backing file with LRU eviction
// and pin counting. It is safe for concurrent use.
type BufferPool struct {
	mu       sync.Mutex
	file     *os.File
	capacity int
	frames   map[PageID]*Frame
	lru      *list.List // of PageID, front = most recent, only unpinned pages
	numPages PageID
}

// Frame is one cached page. Access the contents through Page(); hold the
// pin (and release with Unpin) for as long as the contents are used.
type Frame struct {
	id      PageID
	buf     [PageSize]byte
	pins    int
	dirty   bool
	lruElem *list.Element
}

// Page returns the frame's contents as a slotted page view.
func (f *Frame) Page() *Page { return PageFrom(f.buf[:]) }

// Bytes returns the raw page buffer.
func (f *Frame) Bytes() []byte { return f.buf[:] }

// ID returns the page number of the frame.
func (f *Frame) ID() PageID { return f.id }

// NewBufferPool opens a pool of `capacity` frames over file. The file's
// current length defines the existing page count; a partial trailing page
// is an error.
func NewBufferPool(file *os.File, capacity int) (*BufferPool, error) {
	if capacity < 1 {
		return nil, fmt.Errorf("storage: buffer pool capacity must be positive, got %d", capacity)
	}
	st, err := file.Stat()
	if err != nil {
		return nil, fmt.Errorf("storage: stat backing file: %w", err)
	}
	if st.Size()%PageSize != 0 {
		return nil, fmt.Errorf("storage: backing file size %d is not a multiple of the page size", st.Size())
	}
	return &BufferPool{
		file:     file,
		capacity: capacity,
		frames:   make(map[PageID]*Frame),
		lru:      list.New(),
		numPages: PageID(st.Size() / PageSize),
	}, nil
}

// NumPages returns the number of pages in the backing file (including
// cached, not yet flushed appends).
func (bp *BufferPool) NumPages() PageID {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	return bp.numPages
}

// Allocate appends a zeroed page to the file and returns it pinned.
func (bp *BufferPool) Allocate() (*Frame, error) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	id := bp.numPages
	bp.numPages++
	f, err := bp.admit(id, false)
	if err != nil {
		bp.numPages--
		return nil, err
	}
	PageFrom(f.buf[:]).Init()
	f.dirty = true
	return f, nil
}

// Fetch returns the page pinned, reading it from the file on a miss.
func (bp *BufferPool) Fetch(id PageID) (*Frame, error) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	if id >= bp.numPages {
		return nil, fmt.Errorf("storage: fetch of page %d beyond end (%d pages)", id, bp.numPages)
	}
	return bp.admit(id, true)
}

// admit returns a pinned frame for id, loading from disk when load is
// true and the page is not resident. Caller holds bp.mu.
func (bp *BufferPool) admit(id PageID, load bool) (*Frame, error) {
	if f, ok := bp.frames[id]; ok {
		f.pins++
		if f.lruElem != nil {
			bp.lru.Remove(f.lruElem)
			f.lruElem = nil
		}
		return f, nil
	}
	if len(bp.frames) >= bp.capacity {
		if err := bp.evictLocked(); err != nil {
			return nil, err
		}
	}
	f := &Frame{id: id, pins: 1}
	if load {
		_, err := bp.file.ReadAt(f.buf[:], int64(id)*PageSize)
		if err != nil && err != io.EOF {
			return nil, fmt.Errorf("storage: read page %d: %w", id, err)
		}
	}
	bp.frames[id] = f
	return f, nil
}

func (bp *BufferPool) evictLocked() error {
	elem := bp.lru.Back()
	if elem == nil {
		return fmt.Errorf("storage: buffer pool exhausted: all %d frames pinned", bp.capacity)
	}
	id := elem.Value.(PageID)
	f := bp.frames[id]
	if f.dirty {
		if err := bp.writeBack(f); err != nil {
			return err
		}
	}
	bp.lru.Remove(elem)
	delete(bp.frames, id)
	return nil
}

func (bp *BufferPool) writeBack(f *Frame) error {
	if _, err := bp.file.WriteAt(f.buf[:], int64(f.id)*PageSize); err != nil {
		return fmt.Errorf("storage: write page %d: %w", f.id, err)
	}
	f.dirty = false
	return nil
}

// Unpin releases one pin on the frame, marking it dirty when the caller
// modified it. Unpinned frames become eviction candidates.
func (bp *BufferPool) Unpin(f *Frame, dirty bool) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	if dirty {
		f.dirty = true
	}
	if f.pins <= 0 {
		panic(fmt.Sprintf("storage: unpin of unpinned page %d", f.id))
	}
	f.pins--
	if f.pins == 0 {
		f.lruElem = bp.lru.PushFront(f.id)
	}
}

// FlushAll writes every dirty resident page back to the file and syncs.
func (bp *BufferPool) FlushAll() error {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	for _, f := range bp.frames {
		if f.dirty {
			if err := bp.writeBack(f); err != nil {
				return err
			}
		}
	}
	if err := bp.file.Sync(); err != nil {
		return fmt.Errorf("storage: sync: %w", err)
	}
	return nil
}
