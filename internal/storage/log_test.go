package storage

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

func TestLogAppendReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "test.log")
	l, err := OpenLog(path)
	if err != nil {
		t.Fatal(err)
	}
	var want [][]byte
	for i := 0; i < 50; i++ {
		rec := []byte(fmt.Sprintf("record %d", i))
		want = append(want, rec)
		if _, err := l.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	var got [][]byte
	l.Replay(func(_ int64, p []byte) bool {
		got = append(got, p)
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("replayed %d, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("record %d mismatch", i)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: records survive; appends continue.
	l, err = OpenLog(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	n := 0
	l.Replay(func(int64, []byte) bool { n++; return true })
	if n != 50 {
		t.Fatalf("after reopen replayed %d", n)
	}
	if _, err := l.Append([]byte("post-reopen")); err != nil {
		t.Fatal(err)
	}
	n = 0
	l.Replay(func(int64, []byte) bool { n++; return true })
	if n != 51 {
		t.Fatalf("after append replayed %d", n)
	}
}

func TestLogReplayEarlyStop(t *testing.T) {
	l, err := OpenLog(filepath.Join(t.TempDir(), "s.log"))
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := 0; i < 10; i++ {
		l.Append([]byte{byte(i)})
	}
	n := 0
	l.Replay(func(int64, []byte) bool { n++; return n < 3 })
	if n != 3 {
		t.Fatalf("early stop replayed %d", n)
	}
}

func TestLogTornTailTruncated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "torn.log")
	l, err := OpenLog(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := l.Append([]byte(fmt.Sprintf("intact %d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate a crash mid-append: write a frame header that promises more
	// bytes than exist.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xFF, 0x00, 0x00, 0x00, 1, 2, 3, 4, 'p', 'a', 'r'}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// Reopen: torn tail is dropped, the 5 intact records remain, and new
	// appends land cleanly after them.
	l, err = OpenLog(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	var got []string
	l.Replay(func(_ int64, p []byte) bool {
		got = append(got, string(p))
		return true
	})
	if len(got) != 5 || got[4] != "intact 4" {
		t.Fatalf("after torn tail: %v", got)
	}
	if _, err := l.Append([]byte("fresh")); err != nil {
		t.Fatal(err)
	}
	got = nil
	l.Replay(func(_ int64, p []byte) bool {
		got = append(got, string(p))
		return true
	})
	if len(got) != 6 || got[5] != "fresh" {
		t.Fatalf("after fresh append: %v", got)
	}
}

func TestLogCorruptPayloadStopsReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "corrupt.log")
	l, err := OpenLog(path)
	if err != nil {
		t.Fatal(err)
	}
	off2, _ := l.Append([]byte("first"))
	_ = off2
	l.Append([]byte("second"))
	l.Close()

	// Flip a payload byte of the second record.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	l, err = OpenLog(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	var got []string
	l.Replay(func(_ int64, p []byte) bool {
		got = append(got, string(p))
		return true
	})
	if len(got) != 1 || got[0] != "first" {
		t.Fatalf("corrupt record not isolated: %v", got)
	}
}

func TestLogSizeAndOffsets(t *testing.T) {
	l, err := OpenLog(filepath.Join(t.TempDir(), "o.log"))
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if l.Size() != 0 {
		t.Fatalf("initial size = %d", l.Size())
	}
	off1, _ := l.Append([]byte("aaaa"))
	off2, _ := l.Append([]byte("bb"))
	if off1 != 0 {
		t.Fatalf("off1 = %d", off1)
	}
	if off2 != int64(logFrameHeader+4) {
		t.Fatalf("off2 = %d", off2)
	}
	if l.Size() != int64(2*logFrameHeader+6) {
		t.Fatalf("size = %d", l.Size())
	}
}

func TestLogLargeRandomRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	path := filepath.Join(t.TempDir(), "big.log")
	l, err := OpenLog(path)
	if err != nil {
		t.Fatal(err)
	}
	var want [][]byte
	for i := 0; i < 500; i++ {
		rec := make([]byte, rng.Intn(2000))
		rng.Read(rec)
		want = append(want, append([]byte(nil), rec...))
		if _, err := l.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()

	l, err = OpenLog(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	i := 0
	l.Replay(func(_ int64, p []byte) bool {
		if !bytes.Equal(p, want[i]) {
			t.Fatalf("record %d mismatch", i)
		}
		i++
		return true
	})
	if i != len(want) {
		t.Fatalf("replayed %d of %d", i, len(want))
	}
}

func TestLogReplayFromAndReadAt(t *testing.T) {
	l, err := OpenLog(filepath.Join(t.TempDir(), "rf.log"))
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	var offs []int64
	for i := 0; i < 20; i++ {
		off, err := l.Append([]byte{byte(i), byte(i)})
		if err != nil {
			t.Fatal(err)
		}
		offs = append(offs, off)
	}

	// ReplayFrom the 10th record sees exactly the suffix.
	var got []byte
	if err := l.ReplayFrom(offs[10], func(_ int64, p []byte) bool {
		got = append(got, p[0])
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 || got[0] != 10 || got[9] != 19 {
		t.Fatalf("suffix = %v", got)
	}
	// Early stop.
	n := 0
	l.ReplayFrom(0, func(int64, []byte) bool { n++; return n < 3 })
	if n != 3 {
		t.Fatalf("early stop saw %d", n)
	}
	// From the end: nothing.
	n = 0
	l.ReplayFrom(l.Size(), func(int64, []byte) bool { n++; return true })
	if n != 0 {
		t.Fatalf("past-end replay saw %d", n)
	}

	// ReadAt individual records.
	for i, off := range offs {
		p, err := l.ReadAt(off)
		if err != nil || len(p) != 2 || p[0] != byte(i) {
			t.Fatalf("ReadAt(%d) = %v, %v", off, p, err)
		}
	}
	// Misaligned offset: checksum mismatch or range error, never garbage.
	if _, err := l.ReadAt(offs[1] + 3); err == nil {
		t.Error("misaligned ReadAt should fail")
	}
	if _, err := l.ReadAt(-1); err == nil {
		t.Error("negative offset should fail")
	}
	if _, err := l.ReadAt(l.Size() + 100); err == nil {
		t.Error("past-end offset should fail")
	}
	if l.Path() == "" {
		t.Error("Path should be non-empty")
	}
}
