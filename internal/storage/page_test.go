package storage

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"
)

func newPage() *Page {
	p := PageFrom(make([]byte, PageSize))
	p.Init()
	return p
}

func TestPageFromPanicsOnWrongSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	PageFrom(make([]byte, 100))
}

func TestPageInsertReadDelete(t *testing.T) {
	p := newPage()
	s1, err := p.Insert([]byte("hello"))
	if err != nil {
		t.Fatal(err)
	}
	s2, err := p.Insert([]byte("world!"))
	if err != nil {
		t.Fatal(err)
	}
	if s1 == s2 {
		t.Fatal("same slot for two records")
	}
	if rec, err := p.Read(s1); err != nil || string(rec) != "hello" {
		t.Fatalf("Read(s1) = %q, %v", rec, err)
	}
	if rec, err := p.Read(s2); err != nil || string(rec) != "world!" {
		t.Fatalf("Read(s2) = %q, %v", rec, err)
	}
	if p.NumRecords() != 2 {
		t.Fatalf("NumRecords = %d", p.NumRecords())
	}

	if err := p.Delete(s1); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Read(s1); !errors.Is(err, ErrNoRecord) {
		t.Fatalf("Read(deleted) err = %v", err)
	}
	if err := p.Delete(s1); !errors.Is(err, ErrNoRecord) {
		t.Fatalf("double Delete err = %v", err)
	}
	if _, err := p.Read(99); !errors.Is(err, ErrNoRecord) {
		t.Fatalf("Read(oob) err = %v", err)
	}
	if err := p.Delete(-1); !errors.Is(err, ErrNoRecord) {
		t.Fatalf("Delete(-1) err = %v", err)
	}

	// The dead slot is reused.
	s3, err := p.Insert([]byte("again"))
	if err != nil {
		t.Fatal(err)
	}
	if s3 != s1 {
		t.Fatalf("dead slot not reused: got %d want %d", s3, s1)
	}
}

func TestPageFillToCapacity(t *testing.T) {
	p := newPage()
	rec := bytes.Repeat([]byte("x"), 100)
	n := 0
	for {
		if _, err := p.Insert(rec); err != nil {
			if !errors.Is(err, ErrPageFull) {
				t.Fatalf("unexpected error: %v", err)
			}
			break
		}
		n++
	}
	// 100-byte records + 4-byte slots into ~4092 usable bytes: ≥ 35.
	if n < 35 {
		t.Fatalf("only %d records fit", n)
	}
	if p.NumRecords() != n {
		t.Fatalf("NumRecords = %d, want %d", p.NumRecords(), n)
	}
	// A record that can never fit gets a distinguished error.
	if _, err := p.Insert(make([]byte, PageSize)); !errors.Is(err, ErrPageFull) {
		t.Fatalf("oversized insert err = %v", err)
	}
}

func TestPageCompactReclaims(t *testing.T) {
	p := newPage()
	rec := bytes.Repeat([]byte("y"), 200)
	var slots []int
	for i := 0; i < 10; i++ {
		s, err := p.Insert(rec)
		if err != nil {
			t.Fatal(err)
		}
		slots = append(slots, s)
	}
	// Delete every other record; compaction must reclaim their payload
	// while preserving the survivors and their slot numbers.
	for i := 0; i < len(slots); i += 2 {
		if err := p.Delete(slots[i]); err != nil {
			t.Fatal(err)
		}
	}
	beforeFree := p.FreeSpace()
	p.Compact()
	if p.FreeSpace() <= beforeFree {
		t.Fatalf("compact did not reclaim: %d -> %d", beforeFree, p.FreeSpace())
	}
	for i := 1; i < len(slots); i += 2 {
		got, err := p.Read(slots[i])
		if err != nil || !bytes.Equal(got, rec) {
			t.Fatalf("slot %d after compact: %v", slots[i], err)
		}
	}
}

func TestPageVisit(t *testing.T) {
	p := newPage()
	for i := 0; i < 5; i++ {
		if _, err := p.Insert([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	p.Delete(2)
	var seen []int
	p.Visit(func(slot int, rec []byte) bool {
		seen = append(seen, int(rec[0]))
		return true
	})
	if fmt.Sprint(seen) != "[0 1 3 4]" {
		t.Fatalf("Visit saw %v", seen)
	}
	// Early stop.
	n := 0
	p.Visit(func(int, []byte) bool { n++; return false })
	if n != 1 {
		t.Fatalf("early stop visited %d", n)
	}
}

func TestPageRandomizedAgainstMap(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	p := newPage()
	oracle := map[int][]byte{}
	for op := 0; op < 5000; op++ {
		if len(oracle) == 0 || rng.Float64() < 0.55 {
			rec := make([]byte, 1+rng.Intn(60))
			rng.Read(rec)
			s, err := p.Insert(rec)
			if errors.Is(err, ErrPageFull) {
				// Free something and move on.
				for slot := range oracle {
					p.Delete(slot)
					delete(oracle, slot)
					break
				}
				continue
			}
			if err != nil {
				t.Fatal(err)
			}
			if _, taken := oracle[s]; taken {
				t.Fatalf("op %d: slot %d double-allocated", op, s)
			}
			oracle[s] = append([]byte(nil), rec...)
		} else {
			var slot int
			for slot = range oracle {
				break
			}
			if err := p.Delete(slot); err != nil {
				t.Fatalf("op %d: delete: %v", op, err)
			}
			delete(oracle, slot)
		}
		if op%977 == 0 {
			p.Compact()
			for slot, want := range oracle {
				got, err := p.Read(slot)
				if err != nil || !bytes.Equal(got, want) {
					t.Fatalf("op %d: slot %d mismatch after compact", op, slot)
				}
			}
			if p.NumRecords() != len(oracle) {
				t.Fatalf("op %d: NumRecords %d, oracle %d", op, p.NumRecords(), len(oracle))
			}
		}
	}
}
