// Package storage is a small page-based storage manager in the role Shore
// plays for the paper's location-aware server: slotted pages, a heap file
// with a free-space map, an LRU buffer pool, and a checksummed append-only
// log. The repository server (package repository) persists historical
// object locations and committed query answers through it.
package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// PageSize is the fixed size of every page, in bytes.
const PageSize = 4096

// Slotted page layout (little endian):
//
//	offset 0:  uint16 slot count
//	offset 2:  uint16 free-space start (grows up)
//	offset 4+: record payloads
//	...        free space ...
//	end:       slot directory, growing downward; each slot is
//	           uint16 offset, uint16 length. A deleted slot has offset
//	           0xFFFF.
const (
	pageHeaderSize = 4
	slotSize       = 4
	deadSlotOff    = 0xFFFF
)

// ErrPageFull is returned when a record does not fit in a page.
var ErrPageFull = errors.New("storage: page full")

// ErrNoRecord is returned when a slot is empty or out of range.
var ErrNoRecord = errors.New("storage: no such record")

// Page is a slotted page. It aliases a PageSize byte buffer (typically a
// buffer-pool frame); all mutations write through to that buffer.
type Page struct {
	buf []byte
}

// PageFrom wraps an existing PageSize buffer as a Page. The buffer is
// used as is; call Init to format a fresh page.
func PageFrom(buf []byte) *Page {
	if len(buf) != PageSize {
		panic(fmt.Sprintf("storage: page buffer must be %d bytes, got %d", PageSize, len(buf)))
	}
	return &Page{buf: buf}
}

// Init formats the page as empty.
func (p *Page) Init() {
	for i := range p.buf {
		p.buf[i] = 0
	}
	p.setSlotCount(0)
	p.setFreeStart(pageHeaderSize)
}

func (p *Page) slotCount() int     { return int(binary.LittleEndian.Uint16(p.buf[0:])) }
func (p *Page) setSlotCount(n int) { binary.LittleEndian.PutUint16(p.buf[0:], uint16(n)) }
func (p *Page) freeStart() int     { return int(binary.LittleEndian.Uint16(p.buf[2:])) }
func (p *Page) setFreeStart(v int) { binary.LittleEndian.PutUint16(p.buf[2:], uint16(v)) }

func (p *Page) slotPos(i int) int { return PageSize - (i+1)*slotSize }

func (p *Page) slot(i int) (off, length int) {
	pos := p.slotPos(i)
	return int(binary.LittleEndian.Uint16(p.buf[pos:])),
		int(binary.LittleEndian.Uint16(p.buf[pos+2:]))
}

func (p *Page) setSlot(i, off, length int) {
	pos := p.slotPos(i)
	binary.LittleEndian.PutUint16(p.buf[pos:], uint16(off))
	binary.LittleEndian.PutUint16(p.buf[pos+2:], uint16(length))
}

// FreeSpace returns the bytes available for one new record (accounting
// for its slot directory entry). Dead slots are reused without new
// directory space.
func (p *Page) FreeSpace() int {
	free := PageSize - p.slotCount()*slotSize - p.freeStart()
	// Reusing a dead slot saves the directory entry.
	for i := 0; i < p.slotCount(); i++ {
		if off, _ := p.slot(i); off == deadSlotOff {
			return free
		}
	}
	free -= slotSize
	if free < 0 {
		return 0
	}
	return free
}

// PotentialFreeSpace returns the bytes available for one new record after
// compaction: unlike FreeSpace it counts the garbage left by deleted
// records as reclaimable. The heap file uses it for placement decisions
// and compacts lazily.
func (p *Page) PotentialFreeSpace() int {
	live := 0
	hasDead := false
	for i := 0; i < p.slotCount(); i++ {
		off, length := p.slot(i)
		if off == deadSlotOff {
			hasDead = true
			continue
		}
		live += length
	}
	free := PageSize - pageHeaderSize - live - p.slotCount()*slotSize
	if !hasDead {
		free -= slotSize
	}
	if free < 0 {
		return 0
	}
	return free
}

// NumRecords returns the number of live records.
func (p *Page) NumRecords() int {
	n := 0
	for i := 0; i < p.slotCount(); i++ {
		if off, _ := p.slot(i); off != deadSlotOff {
			n++
		}
	}
	return n
}

// Insert stores a record and returns its slot number. It fails with
// ErrPageFull when the record (plus, if needed, a new directory entry)
// does not fit.
func (p *Page) Insert(record []byte) (int, error) {
	if len(record) > PageSize-pageHeaderSize-slotSize {
		return 0, fmt.Errorf("storage: record of %d bytes can never fit a page: %w", len(record), ErrPageFull)
	}
	// Prefer a dead slot.
	slot := -1
	for i := 0; i < p.slotCount(); i++ {
		if off, _ := p.slot(i); off == deadSlotOff {
			slot = i
			break
		}
	}
	needed := len(record)
	if slot == -1 {
		needed += slotSize
	}
	if PageSize-p.slotCount()*slotSize-p.freeStart() < needed {
		return 0, ErrPageFull
	}
	off := p.freeStart()
	copy(p.buf[off:], record)
	p.setFreeStart(off + len(record))
	if slot == -1 {
		slot = p.slotCount()
		p.setSlotCount(slot + 1)
	}
	p.setSlot(slot, off, len(record))
	return slot, nil
}

// Read returns the record in the given slot. The returned slice aliases
// the page buffer; callers must copy it if they retain it past the pin.
func (p *Page) Read(slot int) ([]byte, error) {
	if slot < 0 || slot >= p.slotCount() {
		return nil, ErrNoRecord
	}
	off, length := p.slot(slot)
	if off == deadSlotOff {
		return nil, ErrNoRecord
	}
	return p.buf[off : off+length], nil
}

// Delete removes the record in the given slot. Space is reclaimed lazily:
// the payload bytes become garbage until the page is compacted.
func (p *Page) Delete(slot int) error {
	if slot < 0 || slot >= p.slotCount() {
		return ErrNoRecord
	}
	if off, _ := p.slot(slot); off == deadSlotOff {
		return ErrNoRecord
	}
	p.setSlot(slot, deadSlotOff, 0)
	return nil
}

// Compact rewrites live records contiguously, reclaiming the space of
// deleted ones. Slot numbers are preserved.
func (p *Page) Compact() {
	var tmp [PageSize]byte
	write := pageHeaderSize
	type live struct{ slot, off, length int }
	var lives []live
	for i := 0; i < p.slotCount(); i++ {
		off, length := p.slot(i)
		if off == deadSlotOff {
			continue
		}
		copy(tmp[write:], p.buf[off:off+length])
		lives = append(lives, live{i, write, length})
		write += length
	}
	copy(p.buf[pageHeaderSize:], tmp[pageHeaderSize:write])
	for _, l := range lives {
		p.setSlot(l.slot, l.off, l.length)
	}
	p.setFreeStart(write)
}

// Visit calls fn for every live record in slot order, stopping early if
// fn returns false. The record slice aliases the page buffer.
func (p *Page) Visit(fn func(slot int, record []byte) bool) {
	for i := 0; i < p.slotCount(); i++ {
		off, length := p.slot(i)
		if off == deadSlotOff {
			continue
		}
		if !fn(i, p.buf[off:off+length]) {
			return
		}
	}
}
