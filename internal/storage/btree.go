package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
)

// BTree is a disk-paged B+tree mapping uint64 keys to uint64 values,
// built on the buffer pool. Duplicate keys are allowed; values of equal
// keys are returned in unspecified order. The tree is insert-and-scan
// only — it indexes the repository's append-only location archive (the
// paper's object index), which never deletes — and is durable across
// reopen via its meta page.
//
// Page layout (little endian):
//
//	meta page (page 0):
//	  magic uint32 | root uint32 | height uint32 | entries uint64
//	leaf page:
//	  flags uint16 (1) | count uint16 | next uint32 | [key uint64, value uint64]*
//	internal page:
//	  flags uint16 (0) | count uint16 | _ uint32 |
//	  child0 uint32 | [key uint64, child uint32]*
//
// An internal node with count = n separator keys has n+1 children; keys
// ≥ separator i descend into child i+1.
type BTree struct {
	bp *BufferPool

	root    PageID
	height  uint32
	entries uint64
}

const (
	btreeMagic      = 0xB7EE0001
	btreeHeaderSize = 8

	// Capacities leave room for one transient overflow entry: insertion
	// places the new entry first and splits after.
	leafEntrySize     = 16
	leafCapacity      = (PageSize-btreeHeaderSize)/leafEntrySize - 1 // 254
	internalEntrySize = 12
	internalCapacity  = (PageSize-btreeHeaderSize-4)/internalEntrySize - 1 // 339
)

// ErrCorruptIndex reports an invalid meta page.
var ErrCorruptIndex = errors.New("storage: corrupt btree index")

// OpenBTree opens (or creates) a B+tree at path with a buffer pool of
// poolPages frames.
func OpenBTree(path string, poolPages int) (*BTree, error) {
	file, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: open btree: %w", err)
	}
	bp, err := NewBufferPool(file, poolPages)
	if err != nil {
		file.Close()
		return nil, err
	}
	t := &BTree{bp: bp}
	if bp.NumPages() == 0 {
		// Fresh index: meta page + empty root leaf.
		meta, err := bp.Allocate()
		if err != nil {
			file.Close()
			return nil, err
		}
		rootFrame, err := bp.Allocate()
		if err != nil {
			bp.Unpin(meta, true)
			file.Close()
			return nil, err
		}
		t.root = rootFrame.ID()
		t.height = 1
		initLeaf(rootFrame.Bytes())
		bp.Unpin(rootFrame, true)
		t.writeMeta(meta.Bytes())
		bp.Unpin(meta, true)
		return t, nil
	}
	meta, err := bp.Fetch(0)
	if err != nil {
		file.Close()
		return nil, err
	}
	defer bp.Unpin(meta, false)
	b := meta.Bytes()
	if binary.LittleEndian.Uint32(b[0:]) != btreeMagic {
		file.Close()
		return nil, ErrCorruptIndex
	}
	t.root = PageID(binary.LittleEndian.Uint32(b[4:]))
	t.height = binary.LittleEndian.Uint32(b[8:])
	t.entries = binary.LittleEndian.Uint64(b[12:])
	if t.root == 0 || t.root >= bp.NumPages() || t.height == 0 {
		file.Close()
		return nil, ErrCorruptIndex
	}
	return t, nil
}

func (t *BTree) writeMeta(b []byte) {
	binary.LittleEndian.PutUint32(b[0:], btreeMagic)
	binary.LittleEndian.PutUint32(b[4:], uint32(t.root))
	binary.LittleEndian.PutUint32(b[8:], t.height)
	binary.LittleEndian.PutUint64(b[12:], t.entries)
}

func (t *BTree) syncMeta() error {
	meta, err := t.bp.Fetch(0)
	if err != nil {
		return err
	}
	t.writeMeta(meta.Bytes())
	t.bp.Unpin(meta, true)
	return nil
}

// Close flushes and closes the backing file.
func (t *BTree) Close() error {
	if err := t.syncMeta(); err != nil {
		t.bp.file.Close()
		return err
	}
	if err := t.bp.FlushAll(); err != nil {
		t.bp.file.Close()
		return err
	}
	return t.bp.file.Close()
}

// Sync flushes dirty pages (including the meta page) to disk.
func (t *BTree) Sync() error {
	if err := t.syncMeta(); err != nil {
		return err
	}
	return t.bp.FlushAll()
}

// Len returns the number of stored entries.
func (t *BTree) Len() int { return int(t.entries) }

// Height returns the tree height (1 = a single leaf).
func (t *BTree) Height() int { return int(t.height) }

// --- node accessors --------------------------------------------------------

func initLeaf(b []byte) {
	for i := range b[:btreeHeaderSize] {
		b[i] = 0
	}
	binary.LittleEndian.PutUint16(b[0:], 1) // leaf flag
}

func initInternal(b []byte) {
	for i := range b[:btreeHeaderSize] {
		b[i] = 0
	}
}

func nodeIsLeaf(b []byte) bool { return binary.LittleEndian.Uint16(b[0:])&1 == 1 }
func nodeCount(b []byte) int   { return int(binary.LittleEndian.Uint16(b[2:])) }
func setNodeCount(b []byte, n int) {
	binary.LittleEndian.PutUint16(b[2:], uint16(n))
}
func leafNext(b []byte) PageID { return PageID(binary.LittleEndian.Uint32(b[4:])) }
func setLeafNext(b []byte, p PageID) {
	binary.LittleEndian.PutUint32(b[4:], uint32(p))
}

func leafKey(b []byte, i int) uint64 {
	return binary.LittleEndian.Uint64(b[btreeHeaderSize+i*leafEntrySize:])
}
func leafValue(b []byte, i int) uint64 {
	return binary.LittleEndian.Uint64(b[btreeHeaderSize+i*leafEntrySize+8:])
}
func setLeafEntry(b []byte, i int, key, value uint64) {
	binary.LittleEndian.PutUint64(b[btreeHeaderSize+i*leafEntrySize:], key)
	binary.LittleEndian.PutUint64(b[btreeHeaderSize+i*leafEntrySize+8:], value)
}

func internalChild(b []byte, i int) PageID {
	if i == 0 {
		return PageID(binary.LittleEndian.Uint32(b[btreeHeaderSize:]))
	}
	off := btreeHeaderSize + 4 + (i-1)*internalEntrySize + 8
	return PageID(binary.LittleEndian.Uint32(b[off:]))
}
func internalKey(b []byte, i int) uint64 {
	return binary.LittleEndian.Uint64(b[btreeHeaderSize+4+i*internalEntrySize:])
}
func setInternalChild0(b []byte, p PageID) {
	binary.LittleEndian.PutUint32(b[btreeHeaderSize:], uint32(p))
}
func setInternalEntry(b []byte, i int, key uint64, child PageID) {
	off := btreeHeaderSize + 4 + i*internalEntrySize
	binary.LittleEndian.PutUint64(b[off:], key)
	binary.LittleEndian.PutUint32(b[off+8:], uint32(child))
}

// --- insertion ---------------------------------------------------------------

// splitResult propagates a split upward: a new right sibling and the
// separator key that divides it from the left node.
type splitResult struct {
	sep   uint64
	right PageID
}

// Insert adds one (key, value) entry.
func (t *BTree) Insert(key, value uint64) error {
	split, err := t.insert(t.root, int(t.height), key, value)
	if err != nil {
		return err
	}
	if split != nil {
		// Grow a new root.
		rootFrame, err := t.bp.Allocate()
		if err != nil {
			return err
		}
		b := rootFrame.Bytes()
		initInternal(b)
		setInternalChild0(b, t.root)
		setInternalEntry(b, 0, split.sep, split.right)
		setNodeCount(b, 1)
		t.root = rootFrame.ID()
		t.height++
		t.bp.Unpin(rootFrame, true)
	}
	t.entries++
	return nil
}

func (t *BTree) insert(page PageID, level int, key, value uint64) (*splitResult, error) {
	frame, err := t.bp.Fetch(page)
	if err != nil {
		return nil, err
	}
	b := frame.Bytes()

	if level == 1 {
		if !nodeIsLeaf(b) {
			t.bp.Unpin(frame, false)
			return nil, fmt.Errorf("%w: expected leaf at page %d", ErrCorruptIndex, page)
		}
		split, err := t.insertIntoLeaf(frame, key, value)
		t.bp.Unpin(frame, true)
		return split, err
	}

	// Descend: child i+1 holds keys ≥ separator i.
	n := nodeCount(b)
	idx := 0
	for idx < n && key >= internalKey(b, idx) {
		idx++
	}
	child := internalChild(b, idx)
	t.bp.Unpin(frame, false)

	split, err := t.insert(child, level-1, key, value)
	if err != nil || split == nil {
		return nil, err
	}

	// Insert the separator into this node.
	frame, err = t.bp.Fetch(page)
	if err != nil {
		return nil, err
	}
	b = frame.Bytes()
	n = nodeCount(b)
	pos := 0
	for pos < n && split.sep >= internalKey(b, pos) {
		pos++
	}
	// Shift entries right.
	start := btreeHeaderSize + 4
	copy(b[start+(pos+1)*internalEntrySize:start+(n+1)*internalEntrySize],
		b[start+pos*internalEntrySize:start+n*internalEntrySize])
	setInternalEntry(b, pos, split.sep, split.right)
	setNodeCount(b, n+1)

	var up *splitResult
	if n+1 > internalCapacity {
		up, err = t.splitInternal(frame)
		if err != nil {
			t.bp.Unpin(frame, true)
			return nil, err
		}
	}
	t.bp.Unpin(frame, true)
	return up, nil
}

func (t *BTree) insertIntoLeaf(frame *Frame, key, value uint64) (*splitResult, error) {
	b := frame.Bytes()
	n := nodeCount(b)
	pos := 0
	for pos < n && key >= leafKey(b, pos) {
		pos++
	}
	copy(b[btreeHeaderSize+(pos+1)*leafEntrySize:btreeHeaderSize+(n+1)*leafEntrySize],
		b[btreeHeaderSize+pos*leafEntrySize:btreeHeaderSize+n*leafEntrySize])
	setLeafEntry(b, pos, key, value)
	setNodeCount(b, n+1)
	if n+1 <= leafCapacity {
		return nil, nil
	}
	return t.splitLeaf(frame)
}

func (t *BTree) splitLeaf(frame *Frame) (*splitResult, error) {
	b := frame.Bytes()
	n := nodeCount(b)
	mid := n / 2
	rightFrame, err := t.bp.Allocate()
	if err != nil {
		return nil, err
	}
	rb := rightFrame.Bytes()
	initLeaf(rb)
	copy(rb[btreeHeaderSize:], b[btreeHeaderSize+mid*leafEntrySize:btreeHeaderSize+n*leafEntrySize])
	setNodeCount(rb, n-mid)
	setLeafNext(rb, leafNext(b))
	setLeafNext(b, rightFrame.ID())
	setNodeCount(b, mid)
	sep := leafKey(rb, 0)
	right := rightFrame.ID()
	t.bp.Unpin(rightFrame, true)
	return &splitResult{sep: sep, right: right}, nil
}

func (t *BTree) splitInternal(frame *Frame) (*splitResult, error) {
	b := frame.Bytes()
	n := nodeCount(b)
	mid := n / 2 // separator at mid moves up
	rightFrame, err := t.bp.Allocate()
	if err != nil {
		return nil, err
	}
	rb := rightFrame.Bytes()
	initInternal(rb)
	sep := internalKey(b, mid)
	setInternalChild0(rb, internalChild(b, mid+1))
	for i := mid + 1; i < n; i++ {
		setInternalEntry(rb, i-mid-1, internalKey(b, i), internalChild(b, i+1))
	}
	setNodeCount(rb, n-mid-1)
	setNodeCount(b, mid)
	right := rightFrame.ID()
	t.bp.Unpin(rightFrame, true)
	return &splitResult{sep: sep, right: right}, nil
}

// --- lookup ------------------------------------------------------------------

// findLeaf descends to the first leaf that may contain key.
func (t *BTree) findLeaf(key uint64) (PageID, error) {
	page := t.root
	for level := int(t.height); level > 1; level-- {
		frame, err := t.bp.Fetch(page)
		if err != nil {
			return 0, err
		}
		b := frame.Bytes()
		n := nodeCount(b)
		idx := 0
		// For lookups we descend left of equal separators so duplicates
		// that straddle a split are not missed: child i holds keys <
		// separator i, and a separator equals the first key of the right
		// sibling.
		for idx < n && key >= internalKey(b, idx) {
			idx++
		}
		// Back up past every separator equal to key: duplicates of a key
		// may span several leaves, producing repeated separators, and the
		// scan must start at the leftmost.
		for idx > 0 && internalKey(b, idx-1) == key {
			idx--
		}
		page = internalChild(b, idx)
		t.bp.Unpin(frame, false)
	}
	return page, nil
}

// Search calls fn with every value stored under key, stopping early if
// fn returns false.
func (t *BTree) Search(key uint64, fn func(value uint64) bool) error {
	return t.ScanRange(key, key, func(_, value uint64) bool { return fn(value) })
}

// ScanRange calls fn for every entry with lo ≤ key ≤ hi in ascending key
// order, stopping early if fn returns false.
func (t *BTree) ScanRange(lo, hi uint64, fn func(key, value uint64) bool) error {
	page, err := t.findLeaf(lo)
	if err != nil {
		return err
	}
	for page != 0 {
		frame, err := t.bp.Fetch(page)
		if err != nil {
			return err
		}
		b := frame.Bytes()
		n := nodeCount(b)
		for i := 0; i < n; i++ {
			k := leafKey(b, i)
			if k < lo {
				continue
			}
			if k > hi {
				t.bp.Unpin(frame, false)
				return nil
			}
			if !fn(k, leafValue(b, i)) {
				t.bp.Unpin(frame, false)
				return nil
			}
		}
		next := leafNext(b)
		t.bp.Unpin(frame, false)
		page = next
	}
	return nil
}

// CheckInvariants validates ordering and linkage for tests: leaf keys
// non-decreasing along the linked list, separator bounds respected, and
// the entry count consistent.
func (t *BTree) CheckInvariants() error {
	// Walk the leaf chain from the leftmost leaf.
	page, err := t.findLeaf(0)
	if err != nil {
		return err
	}
	var (
		prev    uint64
		first   = true
		counted uint64
	)
	for page != 0 {
		frame, err := t.bp.Fetch(page)
		if err != nil {
			return err
		}
		b := frame.Bytes()
		if !nodeIsLeaf(b) {
			t.bp.Unpin(frame, false)
			return fmt.Errorf("leaf chain reached non-leaf page %d", page)
		}
		n := nodeCount(b)
		for i := 0; i < n; i++ {
			k := leafKey(b, i)
			if !first && k < prev {
				t.bp.Unpin(frame, false)
				return fmt.Errorf("key order violation: %d after %d", k, prev)
			}
			prev, first = k, false
			counted++
		}
		next := leafNext(b)
		t.bp.Unpin(frame, false)
		page = next
	}
	if counted != t.entries {
		return fmt.Errorf("entries %d, counted %d", t.entries, counted)
	}
	return nil
}

// openRW opens a file read-write; a test helper for corruption injection.
func openRW(path string) (*os.File, error) {
	return os.OpenFile(path, os.O_RDWR, 0)
}
