package storage

import (
	"math/rand"
	"path/filepath"
	"sort"
	"testing"
)

func openTestBTree(t *testing.T, path string) *BTree {
	t.Helper()
	bt, err := OpenBTree(path, 16)
	if err != nil {
		t.Fatal(err)
	}
	return bt
}

func TestBTreeBasics(t *testing.T) {
	path := filepath.Join(t.TempDir(), "idx.bt")
	bt := openTestBTree(t, path)
	for i := uint64(0); i < 10; i++ {
		if err := bt.Insert(i, i*100); err != nil {
			t.Fatal(err)
		}
	}
	if bt.Len() != 10 || bt.Height() != 1 {
		t.Fatalf("Len=%d Height=%d", bt.Len(), bt.Height())
	}
	var got []uint64
	bt.Search(5, func(v uint64) bool { got = append(got, v); return true })
	if len(got) != 1 || got[0] != 500 {
		t.Fatalf("Search(5) = %v", got)
	}
	got = nil
	bt.Search(99, func(v uint64) bool { got = append(got, v); return true })
	if len(got) != 0 {
		t.Fatalf("Search(missing) = %v", got)
	}
	// Range scan.
	var keys []uint64
	bt.ScanRange(3, 7, func(k, v uint64) bool { keys = append(keys, k); return true })
	if len(keys) != 5 || keys[0] != 3 || keys[4] != 7 {
		t.Fatalf("ScanRange = %v", keys)
	}
	// Early stop.
	n := 0
	bt.ScanRange(0, 100, func(k, v uint64) bool { n++; return n < 3 })
	if n != 3 {
		t.Fatalf("early stop visited %d", n)
	}
	if err := bt.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestBTreeSplitsAndOrder(t *testing.T) {
	path := filepath.Join(t.TempDir(), "big.bt")
	bt := openTestBTree(t, path)
	rng := rand.New(rand.NewSource(1))
	// Large enough that internal nodes split too (>339 leaves of 254
	// entries), giving a height-3 tree.
	const n = 120000
	perm := rng.Perm(n)
	for _, k := range perm {
		if err := bt.Insert(uint64(k), uint64(k)*7); err != nil {
			t.Fatal(err)
		}
	}
	if bt.Len() != n {
		t.Fatalf("Len = %d", bt.Len())
	}
	if bt.Height() < 3 {
		t.Fatalf("internal nodes never split: height %d", bt.Height())
	}
	if err := bt.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Full ordered scan.
	var prev uint64
	count := 0
	bt.ScanRange(0, ^uint64(0), func(k, v uint64) bool {
		if count > 0 && k < prev {
			t.Fatalf("out of order: %d after %d", k, prev)
		}
		if v != k*7 {
			t.Fatalf("value mismatch at %d: %d", k, v)
		}
		prev = k
		count++
		return true
	})
	if count != n {
		t.Fatalf("scan saw %d of %d", count, n)
	}
	// Point lookups.
	for trial := 0; trial < 200; trial++ {
		k := uint64(rng.Intn(n))
		found := false
		bt.Search(k, func(v uint64) bool {
			found = v == k*7
			return false
		})
		if !found {
			t.Fatalf("lookup %d failed", k)
		}
	}
	bt.Close()
}

func TestBTreeDuplicateKeys(t *testing.T) {
	path := filepath.Join(t.TempDir(), "dup.bt")
	bt := openTestBTree(t, path)
	// Heavy duplication: a few keys with many values, enough to split
	// duplicate runs across leaves.
	want := map[uint64]map[uint64]bool{}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 5000; i++ {
		k := uint64(rng.Intn(7))
		v := uint64(i)
		if err := bt.Insert(k, v); err != nil {
			t.Fatal(err)
		}
		if want[k] == nil {
			want[k] = map[uint64]bool{}
		}
		want[k][v] = true
	}
	if err := bt.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for k, vs := range want {
		got := map[uint64]bool{}
		bt.Search(k, func(v uint64) bool { got[v] = true; return true })
		if len(got) != len(vs) {
			t.Fatalf("key %d: got %d values, want %d", k, len(got), len(vs))
		}
		for v := range vs {
			if !got[v] {
				t.Fatalf("key %d missing value %d", k, v)
			}
		}
	}
	bt.Close()
}

func TestBTreePersistence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "persist.bt")
	bt := openTestBTree(t, path)
	for i := uint64(0); i < 2000; i++ {
		bt.Insert(i, i+1)
	}
	if err := bt.Close(); err != nil {
		t.Fatal(err)
	}

	bt = openTestBTree(t, path)
	defer bt.Close()
	if bt.Len() != 2000 {
		t.Fatalf("Len after reopen = %d", bt.Len())
	}
	if err := bt.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	found := false
	bt.Search(1234, func(v uint64) bool { found = v == 1235; return false })
	if !found {
		t.Fatal("lookup after reopen failed")
	}
	// Inserts continue after reopen.
	bt.Insert(99999, 1)
	if bt.Len() != 2001 {
		t.Fatalf("Len after post-reopen insert = %d", bt.Len())
	}
}

func TestBTreeRandomAgainstOracle(t *testing.T) {
	path := filepath.Join(t.TempDir(), "oracle.bt")
	bt := openTestBTree(t, path)
	defer bt.Close()
	rng := rand.New(rand.NewSource(3))
	type pair struct{ k, v uint64 }
	var oracle []pair
	for i := 0; i < 20000; i++ {
		p := pair{uint64(rng.Intn(3000)), uint64(rng.Int63())}
		oracle = append(oracle, p)
		if err := bt.Insert(p.k, p.v); err != nil {
			t.Fatal(err)
		}
	}
	sort.Slice(oracle, func(i, j int) bool { return oracle[i].k < oracle[j].k })
	if err := bt.CheckInvariants(); err != nil {
		t.Fatal(err)
	}

	for trial := 0; trial < 50; trial++ {
		lo := uint64(rng.Intn(3000))
		hi := lo + uint64(rng.Intn(300))
		wantCount := 0
		var wantSum uint64
		for _, p := range oracle {
			if p.k >= lo && p.k <= hi {
				wantCount++
				wantSum += p.v
			}
		}
		gotCount := 0
		var gotSum uint64
		bt.ScanRange(lo, hi, func(k, v uint64) bool {
			gotCount++
			gotSum += v
			return true
		})
		if gotCount != wantCount || gotSum != wantSum {
			t.Fatalf("range [%d,%d]: got %d/%d, want %d/%d", lo, hi, gotCount, gotSum, wantCount, wantSum)
		}
	}
}

func TestBTreeRejectsCorruptMeta(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.bt")
	bt := openTestBTree(t, path)
	bt.Insert(1, 1)
	bt.Close()

	// Clobber the magic.
	f, err := openRW(path)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteAt([]byte{0xFF, 0xFF, 0xFF, 0xFF}, 0)
	f.Close()
	if _, err := OpenBTree(path, 4); err == nil {
		t.Fatal("corrupt meta accepted")
	}
}

func TestBTreeSync(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sync.bt")
	bt := openTestBTree(t, path)
	for i := uint64(0); i < 100; i++ {
		bt.Insert(i, i)
	}
	if err := bt.Sync(); err != nil {
		t.Fatal(err)
	}
	// After Sync (without Close) a second handle sees the data.
	bt2, err := OpenBTree(path, 8)
	if err != nil {
		t.Fatal(err)
	}
	if bt2.Len() != 100 {
		t.Fatalf("Len through second handle = %d", bt2.Len())
	}
	bt2.Close()
	bt.Close()
}
