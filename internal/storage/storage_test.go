package storage

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

func tempFile(t *testing.T) *os.File {
	t.Helper()
	f, err := os.CreateTemp(t.TempDir(), "pages")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	return f
}

func TestBufferPoolAllocFetch(t *testing.T) {
	bp, err := NewBufferPool(tempFile(t), 4)
	if err != nil {
		t.Fatal(err)
	}
	f1, err := bp.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f1.Page().Insert([]byte("persisted")); err != nil {
		t.Fatal(err)
	}
	bp.Unpin(f1, true)
	if bp.NumPages() != 1 {
		t.Fatalf("NumPages = %d", bp.NumPages())
	}

	f2, err := bp.Fetch(0)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := f2.Page().Read(0)
	if err != nil || string(rec) != "persisted" {
		t.Fatalf("fetched record = %q, %v", rec, err)
	}
	bp.Unpin(f2, false)

	if _, err := bp.Fetch(9); err == nil {
		t.Error("fetch beyond end should fail")
	}
	if _, err := NewBufferPool(tempFile(t), 0); err == nil {
		t.Error("zero capacity should fail")
	}
}

func TestBufferPoolEvictionWritesBack(t *testing.T) {
	file := tempFile(t)
	bp, err := NewBufferPool(file, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Create 5 pages, each with a distinguishing record; pool holds 2.
	for i := 0; i < 5; i++ {
		f, err := bp.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Page().Insert([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
		bp.Unpin(f, true)
	}
	// Read them all back through the (thrashing) pool.
	for i := 4; i >= 0; i-- {
		f, err := bp.Fetch(PageID(i))
		if err != nil {
			t.Fatal(err)
		}
		rec, err := f.Page().Read(0)
		if err != nil || rec[0] != byte(i) {
			t.Fatalf("page %d: %v %v", i, rec, err)
		}
		bp.Unpin(f, false)
	}
	if err := bp.FlushAll(); err != nil {
		t.Fatal(err)
	}
}

func TestBufferPoolAllPinnedExhausts(t *testing.T) {
	bp, err := NewBufferPool(tempFile(t), 2)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := bp.Allocate()
	b, _ := bp.Allocate()
	if _, err := bp.Allocate(); err == nil {
		t.Error("allocation with all frames pinned should fail")
	}
	bp.Unpin(a, false)
	bp.Unpin(b, false)
	if _, err := bp.Allocate(); err != nil {
		t.Errorf("allocation after unpin failed: %v", err)
	}
}

func TestHeapFilePersistence(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "test.heap")

	h, err := OpenHeapFile(path, 8)
	if err != nil {
		t.Fatal(err)
	}
	var rids []RID
	for i := 0; i < 100; i++ {
		rid, err := h.Insert([]byte(fmt.Sprintf("record-%03d", i)))
		if err != nil {
			t.Fatal(err)
		}
		rids = append(rids, rid)
	}
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen and verify.
	h, err = OpenHeapFile(path, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	for i, rid := range rids {
		rec, err := h.Get(rid)
		if err != nil || string(rec) != fmt.Sprintf("record-%03d", i) {
			t.Fatalf("rid %v: %q, %v", rid, rec, err)
		}
	}
	count := 0
	if err := h.Scan(func(RID, []byte) bool { count++; return true }); err != nil {
		t.Fatal(err)
	}
	if count != 100 {
		t.Fatalf("scan saw %d records", count)
	}
	// Early-stop scan.
	count = 0
	h.Scan(func(RID, []byte) bool { count++; return false })
	if count != 1 {
		t.Fatalf("early-stop scan saw %d", count)
	}
}

func TestHeapFileDeleteAndReuse(t *testing.T) {
	h, err := OpenHeapFile(filepath.Join(t.TempDir(), "d.heap"), 4)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()

	big := bytes.Repeat([]byte("z"), 1000)
	var rids []RID
	for i := 0; i < 12; i++ {
		rid, err := h.Insert(big)
		if err != nil {
			t.Fatal(err)
		}
		rids = append(rids, rid)
	}
	pagesBefore := h.NumPages()
	// Delete everything, then insert the same volume again: page count
	// must not grow (space is reused).
	for _, rid := range rids {
		if err := h.Delete(rid); err != nil {
			t.Fatal(err)
		}
	}
	if err := h.Delete(rids[0]); err == nil {
		t.Error("double delete should fail")
	}
	for i := 0; i < 12; i++ {
		if _, err := h.Insert(big); err != nil {
			t.Fatal(err)
		}
	}
	if h.NumPages() > pagesBefore {
		t.Fatalf("pages grew from %d to %d despite deletes", pagesBefore, h.NumPages())
	}
}

func TestHeapFileRandomizedAgainstMap(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	h, err := OpenHeapFile(filepath.Join(t.TempDir(), "r.heap"), 4)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()

	oracle := map[RID][]byte{}
	for op := 0; op < 2000; op++ {
		if len(oracle) == 0 || rng.Float64() < 0.6 {
			rec := make([]byte, 1+rng.Intn(300))
			rng.Read(rec)
			rid, err := h.Insert(rec)
			if err != nil {
				t.Fatalf("op %d: %v", op, err)
			}
			if _, dup := oracle[rid]; dup {
				t.Fatalf("op %d: duplicate rid %v", op, rid)
			}
			oracle[rid] = append([]byte(nil), rec...)
		} else {
			var rid RID
			for rid = range oracle {
				break
			}
			if err := h.Delete(rid); err != nil {
				t.Fatalf("op %d: %v", op, err)
			}
			delete(oracle, rid)
		}
	}
	for rid, want := range oracle {
		got, err := h.Get(rid)
		if err != nil || !bytes.Equal(got, want) {
			t.Fatalf("rid %v: mismatch (%v)", rid, err)
		}
	}
	seen := 0
	h.Scan(func(rid RID, rec []byte) bool {
		want, ok := oracle[rid]
		if !ok || !bytes.Equal(rec, want) {
			t.Fatalf("scan: unexpected record at %v", rid)
		}
		seen++
		return true
	})
	if seen != len(oracle) {
		t.Fatalf("scan saw %d, oracle has %d", seen, len(oracle))
	}
}

func TestHeapFileSyncAndRIDString(t *testing.T) {
	h, err := OpenHeapFile(filepath.Join(t.TempDir(), "s.heap"), 4)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	rid, err := h.Insert([]byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Sync(); err != nil {
		t.Fatal(err)
	}
	if rid.String() != "0.0" {
		t.Fatalf("RID string = %q", rid.String())
	}
}
