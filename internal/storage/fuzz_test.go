package storage

import (
	"bytes"
	"testing"
)

// FuzzPageOps drives a slotted page with an operation tape: arbitrary
// interleavings of insert, delete, compact, and read must never panic,
// corrupt other records, or break the free-space accounting.
func FuzzPageOps(f *testing.F) {
	f.Add([]byte{0, 10, 1, 0, 2})
	f.Add([]byte{0, 200, 0, 200, 0, 200, 2, 1, 0, 1, 1})

	f.Fuzz(func(t *testing.T, tape []byte) {
		p := PageFrom(make([]byte, PageSize))
		p.Init()
		oracle := map[int][]byte{}
		nextByte := func(i *int) (byte, bool) {
			if *i >= len(tape) {
				return 0, false
			}
			b := tape[*i]
			*i++
			return b, true
		}
		for i := 0; i < len(tape); {
			op, _ := nextByte(&i)
			switch op % 4 {
			case 0: // insert a record of tape-chosen size
				sz, ok := nextByte(&i)
				if !ok {
					return
				}
				rec := bytes.Repeat([]byte{sz}, int(sz)+1)
				slot, err := p.Insert(rec)
				if err != nil {
					continue
				}
				if _, taken := oracle[slot]; taken {
					t.Fatalf("slot %d double-allocated", slot)
				}
				oracle[slot] = rec
			case 1: // delete a tape-chosen slot
				s, ok := nextByte(&i)
				if !ok {
					return
				}
				slot := int(s)
				err := p.Delete(slot)
				_, live := oracle[slot]
				if live != (err == nil) {
					t.Fatalf("delete slot %d: live=%v err=%v", slot, live, err)
				}
				delete(oracle, slot)
			case 2:
				p.Compact()
			case 3: // verify a tape-chosen slot
				s, ok := nextByte(&i)
				if !ok {
					return
				}
				slot := int(s)
				rec, err := p.Read(slot)
				want, live := oracle[slot]
				if live != (err == nil) {
					t.Fatalf("read slot %d: live=%v err=%v", slot, live, err)
				}
				if live && !bytes.Equal(rec, want) {
					t.Fatalf("slot %d corrupted", slot)
				}
			}
		}
		// Full verification at the end of the tape.
		if p.NumRecords() != len(oracle) {
			t.Fatalf("NumRecords %d, oracle %d", p.NumRecords(), len(oracle))
		}
		for slot, want := range oracle {
			rec, err := p.Read(slot)
			if err != nil || !bytes.Equal(rec, want) {
				t.Fatalf("final check slot %d: %v", slot, err)
			}
		}
	})
}
