package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
)

// Log is a checksummed append-only record log. Each record is framed as
//
//	uint32 length | uint32 crc32(payload) | payload
//
// A torn tail (partial final record after a crash) is detected and
// truncated on open, so Replay never yields corrupt records.
type Log struct {
	mu   sync.Mutex
	file *os.File
	size int64
	buf  []byte
}

const logFrameHeader = 8

// ErrCorruptLog reports a checksum failure in the middle of the log
// (truncated tails are repaired silently; mid-log corruption is not).
var ErrCorruptLog = errors.New("storage: corrupt log record")

// OpenLog opens (or creates) the log at path, scanning it to find the
// last complete record and truncating any torn tail.
func OpenLog(path string) (*Log, error) {
	file, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: open log: %w", err)
	}
	l := &Log{file: file}
	valid, err := l.scan(nil)
	if err != nil {
		file.Close()
		return nil, err
	}
	if err := file.Truncate(valid); err != nil {
		file.Close()
		return nil, fmt.Errorf("storage: truncate torn log tail: %w", err)
	}
	l.size = valid
	if _, err := file.Seek(valid, io.SeekStart); err != nil {
		file.Close()
		return nil, fmt.Errorf("storage: seek log end: %w", err)
	}
	return l, nil
}

// scan walks the log from the start, calling fn (when non-nil) for every
// intact record, and returns the offset after the last intact record.
func (l *Log) scan(fn func(offset int64, payload []byte) bool) (int64, error) {
	st, err := l.file.Stat()
	if err != nil {
		return 0, fmt.Errorf("storage: stat log: %w", err)
	}
	var (
		off    int64
		header [logFrameHeader]byte
	)
	for {
		if off+logFrameHeader > st.Size() {
			return off, nil
		}
		if _, err := l.file.ReadAt(header[:], off); err != nil {
			return off, nil
		}
		length := binary.LittleEndian.Uint32(header[0:])
		crc := binary.LittleEndian.Uint32(header[4:])
		if off+logFrameHeader+int64(length) > st.Size() {
			return off, nil // torn tail
		}
		payload := make([]byte, length)
		if _, err := l.file.ReadAt(payload, off+logFrameHeader); err != nil {
			return off, nil
		}
		if crc32.ChecksumIEEE(payload) != crc {
			return off, nil // treat as torn; later records are unreachable
		}
		if fn != nil && !fn(off, payload) {
			return off + logFrameHeader + int64(length), nil
		}
		off += logFrameHeader + int64(length)
	}
}

// Append writes one record and returns its starting offset. The write is
// buffered by the OS; call Sync for durability.
func (l *Log) Append(payload []byte) (int64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	need := logFrameHeader + len(payload)
	if cap(l.buf) < need {
		l.buf = make([]byte, need)
	}
	frame := l.buf[:need]
	binary.LittleEndian.PutUint32(frame[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:], crc32.ChecksumIEEE(payload))
	copy(frame[logFrameHeader:], payload)
	off := l.size
	if _, err := l.file.WriteAt(frame, off); err != nil {
		return 0, fmt.Errorf("storage: append log record: %w", err)
	}
	l.size += int64(need)
	return off, nil
}

// Sync forces appended records to stable storage.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.file.Sync(); err != nil {
		return fmt.Errorf("storage: sync log: %w", err)
	}
	return nil
}

// Size returns the current log length in bytes.
func (l *Log) Size() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.size
}

// Replay calls fn for every intact record in append order, stopping early
// if fn returns false. The payload slice is freshly allocated per record.
func (l *Log) Replay(fn func(offset int64, payload []byte) bool) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	_, err := l.scan(fn)
	return err
}

// ReplayFrom is Replay starting at a record offset previously returned by
// Append or a replay callback. An offset past the end replays nothing; an
// offset pointing into the middle of a record yields a checksum mismatch
// and stops, never corrupt data.
func (l *Log) ReplayFrom(offset int64, fn func(offset int64, payload []byte) bool) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	for off := offset; off < l.size; {
		payload, next, err := l.readRecordLocked(off)
		if err != nil {
			return err
		}
		if !fn(off, payload) {
			return nil
		}
		off = next
	}
	return nil
}

// ReadAt returns the payload of the record starting at offset.
func (l *Log) ReadAt(offset int64) ([]byte, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	payload, _, err := l.readRecordLocked(offset)
	return payload, err
}

func (l *Log) readRecordLocked(offset int64) (payload []byte, next int64, err error) {
	var header [logFrameHeader]byte
	if offset < 0 || offset+logFrameHeader > l.size {
		return nil, 0, fmt.Errorf("storage: log offset %d out of range", offset)
	}
	if _, err := l.file.ReadAt(header[:], offset); err != nil {
		return nil, 0, fmt.Errorf("storage: read log header: %w", err)
	}
	length := binary.LittleEndian.Uint32(header[0:])
	crc := binary.LittleEndian.Uint32(header[4:])
	next = offset + logFrameHeader + int64(length)
	if next > l.size {
		return nil, 0, ErrCorruptLog
	}
	payload = make([]byte, length)
	if _, err := l.file.ReadAt(payload, offset+logFrameHeader); err != nil {
		return nil, 0, fmt.Errorf("storage: read log payload: %w", err)
	}
	if crc32.ChecksumIEEE(payload) != crc {
		return nil, 0, ErrCorruptLog
	}
	return payload, next, nil
}

// Close flushes and closes the log.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.file.Sync(); err != nil {
		l.file.Close()
		return fmt.Errorf("storage: sync log on close: %w", err)
	}
	return l.file.Close()
}

// Path returns the file path of the log.
func (l *Log) Path() string { return l.file.Name() }
