package cluster

import (
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"cqp/internal/obs"
	"cqp/internal/wire"
)

// workerSlot manages one worker position: the live connection (if any),
// the heartbeat liveness probe, and the respawn loop that replaces dead
// processes under jittered exponential backoff. Tiles are pinned to
// slots; a slot outlives any number of worker incarnations.
type workerSlot struct {
	id  int
	cl  *Cluster
	rtt *obs.Histogram

	mu      sync.Mutex
	st      *slotConn // nil while the slot is down
	nextInc uint64    // last incarnation spawned

	wg sync.WaitGroup
}

// slotConn is one worker incarnation's connection and its goroutines'
// shared state. Death is a one-way latch: fail() closes down (waking
// every tile blocked on this incarnation) and the connection itself.
type slotConn struct {
	incarnation uint64
	proc        Process
	send        chan wire.Message
	down        chan struct{}
	downOnce    sync.Once
	lastEcho    atomic.Int64 // clock nanos of the last heartbeat echo
}

func (st *slotConn) fail() {
	st.downOnce.Do(func() {
		close(st.down)
		st.proc.Conn().Close()
	})
}

// enqueue hands a frame to the sender goroutine. It never blocks: a
// full queue means the sender is wedged on a stalled link, which is
// treated as death — the frame is dropped and the epoch/resync
// machinery recovers.
func (st *slotConn) enqueue(m wire.Message) bool {
	select {
	case st.send <- m:
		return true
	case <-st.down:
		return false
	default:
		st.fail()
		return false
	}
}

func newWorkerSlot(cl *Cluster, id int) *workerSlot {
	return &workerSlot{id: id, cl: cl, rtt: cl.m.heartbeatRTT(id)}
}

// current returns the live connection, or nil while the slot is down.
func (s *workerSlot) current() *slotConn {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.st == nil {
		return nil
	}
	select {
	case <-s.st.down:
		return nil
	default:
		return s.st
	}
}

// attach installs a freshly spawned process as the slot's live
// connection and starts its sender, heartbeat, and demux goroutines.
func (s *workerSlot) attach(proc Process, inc uint64) *slotConn {
	st := &slotConn{
		incarnation: inc,
		proc:        proc,
		send:        make(chan wire.Message, 256),
		down:        make(chan struct{}),
	}
	st.lastEcho.Store(s.cl.clock())
	s.mu.Lock()
	s.st = st
	s.mu.Unlock()
	s.cl.m.workersUp.Add(1)
	conn := proc.Conn()
	s.wg.Add(3)
	go func() {
		defer s.wg.Done()
		sender(st, wire.NewWriter(conn))
	}()
	go func() {
		defer s.wg.Done()
		s.heartbeat(st)
	}()
	go func() {
		defer s.wg.Done()
		s.demux(st, wire.NewReader(conn))
		st.fail()
	}()
	return st
}

// sender is the only goroutine writing the connection; it serializes
// heartbeats, assigns, steps, and resyncs without a lock held across
// I/O. A write error latches death.
func sender(st *slotConn, w *wire.Writer) {
	for {
		select {
		case m := <-st.send:
			if err := w.Write(m); err != nil {
				st.fail()
				return
			}
		case <-st.down:
			return
		}
	}
}

// heartbeat sends a probe every interval and latches death when the
// last echo is older than the timeout. The deadline — not connection
// errors — is what catches stalled links and wedged workers.
func (s *workerSlot) heartbeat(st *slotConn) {
	t := time.NewTicker(s.cl.cfg.HeartbeatInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			now := s.cl.clock()
			if now-st.lastEcho.Load() > int64(s.cl.cfg.HeartbeatTimeout) {
				st.fail()
				return
			}
			st.enqueue(wire.Heartbeat{Time: float64(now)})
		case <-st.down:
			return
		}
	}
}

// demux is the only goroutine reading the connection: it routes step
// results and resync acks to their tiles and echoes of heartbeats to
// the liveness clock. Any read error — including a cluster-frame
// checksum mismatch from corruption in transit — ends the incarnation.
func (s *workerSlot) demux(st *slotConn, r *wire.Reader) {
	for {
		m, err := r.Read()
		if err != nil {
			return
		}
		switch m := m.(type) {
		case wire.Heartbeat:
			now := s.cl.clock()
			st.lastEcho.Store(now)
			if rtt := now - int64(m.Time); rtt >= 0 {
				s.rtt.Observe(rtt)
			}
		case wire.ClusterStepResult:
			s.cl.deliverResult(m)
		case wire.ClusterResyncAck:
			s.cl.deliverAck(m)
		default:
			return // protocol violation: burn the incarnation
		}
	}
}

// run is the slot's lifecycle loop: wait for the current incarnation to
// die, reap it, respawn with jittered exponential backoff, repeat. It
// owns the Process handles; nothing else kills or waits on them.
func (s *workerSlot) run(st *slotConn) {
	defer s.wg.Done()
	rng := rand.New(rand.NewSource(s.cl.cfg.Seed + int64(s.id)*7919))
	attempt := 0
	for {
		if st != nil {
			<-st.down
			st.proc.Kill()
			st.proc.Wait()
			s.mu.Lock()
			if s.st == st {
				s.st = nil
			}
			s.mu.Unlock()
			s.cl.m.workersUp.Add(-1)
			st = nil
			if s.cl.stopped() {
				return
			}
			s.cl.m.restarts.Inc()
			attempt++
			if !s.cl.sleep(s.backoff(attempt, rng)) {
				return
			}
		}
		if s.cl.stopped() {
			return
		}
		s.mu.Lock()
		s.nextInc++
		inc := s.nextInc
		s.mu.Unlock()
		p, err := s.cl.cfg.Spawner.Spawn(s.id, inc)
		if err != nil {
			attempt++
			if !s.cl.sleep(s.backoff(attempt, rng)) {
				return
			}
			continue
		}
		attempt = 0
		st = s.attach(p, inc)
	}
}

// close fails the live incarnation, if any; the run loop reaps it and,
// with the cluster stopped, exits.
func (s *workerSlot) close() {
	s.mu.Lock()
	st := s.st
	s.mu.Unlock()
	if st != nil {
		st.fail()
	}
}

// backoff returns the jittered delay preceding respawn attempt n
// (1-based), the same shape internal/client uses for reconnection.
func (s *workerSlot) backoff(attempt int, rng *rand.Rand) time.Duration {
	b := s.cl.cfg.Backoff
	d := float64(b.Initial) * math.Pow(b.Multiplier, float64(attempt-1))
	if ceil := float64(b.Max); d > ceil {
		d = ceil
	}
	if b.Jitter > 0 {
		d *= 1 + b.Jitter*(2*rng.Float64()-1)
	}
	return time.Duration(d)
}
