package cluster

import (
	"fmt"
	"io"
	"net"

	"cqp/internal/core"
	"cqp/internal/wire"
)

// workerTile is one tile engine hosted by a worker process.
type workerTile struct {
	epoch uint64
	opt   core.Options
	eng   *core.Engine
	buf   []core.Update
}

// ServeWorker hosts tile engines for one coordinator connection and
// blocks until the connection drops. It is deliberately single-threaded:
// frames are processed strictly in arrival order, which (with the
// connection's FIFO delivery) is what lets the coordinator reason about
// Assign/Step/Resync ordering without acknowledgements — and it makes
// the heartbeat echo a true liveness probe, since a worker wedged inside
// a step stops echoing.
//
// The coordinator's journal is the only authoritative state: a worker
// holds nothing that cannot be rebuilt from a ClusterResync frame, so
// ServeWorker never persists anything and treats any protocol anomaly as
// fatal (exit, be respawned, resync — never limp along).
func ServeWorker(conn net.Conn) error {
	defer conn.Close()
	r := wire.NewReader(conn)
	w := wire.NewWriter(conn)
	tiles := make(map[uint32]*workerTile)
	for {
		m, err := r.Read()
		if err != nil {
			if err == io.EOF {
				return nil
			}
			return err
		}
		switch m := m.(type) {
		case wire.Heartbeat:
			if err := w.Write(m); err != nil {
				return err
			}
		case wire.ClusterAssign:
			opt := core.Options{
				Bounds:            m.Bounds,
				GridN:             int(m.GridN),
				PredictiveHorizon: m.PredictiveHorizon,
				Region:            m.Region,
				MaxSpeed:          m.MaxSpeed,
				Replica:           m.Replica,
			}
			eng, err := core.NewEngine(opt)
			if err != nil {
				return fmt.Errorf("cluster: assign tile %d: %w", m.Tile, err)
			}
			tiles[m.Tile] = &workerTile{epoch: m.Epoch, opt: opt, eng: eng}
		case wire.ClusterStep:
			t := tiles[m.Tile]
			if t == nil || t.epoch != m.Epoch {
				// On one FIFO connection the Assign for an epoch always
				// precedes its Steps; a mismatch is a coordinator bug or an
				// undetected transport fault. Die visibly and get resynced.
				return fmt.Errorf("cluster: step for tile %d epoch %d (have %v)", m.Tile, m.Epoch, tileEpoch(t))
			}
			for _, u := range m.Objects {
				t.eng.ReportObject(u)
			}
			for _, u := range m.Queries {
				t.eng.ReportQuery(u)
			}
			t.buf = t.eng.StepAppend(t.buf[:0], m.Time)
			st := t.eng.Stats()
			err := w.Write(wire.ClusterStepResult{
				Tile: m.Tile, Epoch: m.Epoch, Time: m.Time, Updates: t.buf,
				KNNRecomputes:   st.KNNRecomputes,
				CandidateChecks: st.CandidateChecks,
				RegionEvalCells: st.RegionEvalCells,
			})
			if err != nil {
				return err
			}
		case wire.ClusterRetire:
			// A repartition retired the tile; its state was re-homed onto
			// born tiles coordinator-side. Stale epochs are fine: the id is
			// never reused, so whatever engine sits in the slot is garbage.
			delete(tiles, m.Tile)
		case wire.ClusterResync:
			t := tiles[m.Tile]
			if t == nil || t.epoch != m.Epoch {
				return fmt.Errorf("cluster: resync for tile %d epoch %d (have %v)", m.Tile, m.Epoch, tileEpoch(t))
			}
			eng, err := core.NewEngine(t.opt)
			if err != nil {
				return fmt.Errorf("cluster: resync tile %d: %w", m.Tile, err)
			}
			for _, u := range m.Objects {
				eng.ReportObject(u)
			}
			for _, u := range m.Queries {
				eng.ReportQuery(u)
			}
			if m.HasStep {
				// Re-establish the pre-failure evaluation state; the batch is
				// discarded — the coordinator's merge state already reflects
				// these memberships.
				eng.StepAppend(nil, m.LastStep)
			}
			t.eng = eng
			qids := make([]core.QueryID, 0, len(m.Queries))
			for _, q := range m.Queries {
				qids = append(qids, q.ID)
			}
			err = w.Write(wire.ClusterResyncAck{
				Tile: m.Tile, Epoch: m.Epoch, Checksum: stateChecksum(eng, qids),
			})
			if err != nil {
				return err
			}
		default:
			return fmt.Errorf("cluster: unexpected %T from coordinator", m)
		}
	}
}

func tileEpoch(t *workerTile) any {
	if t == nil {
		return "no tile"
	}
	return t.epoch
}

// answerer is the slice of the processor surface stateChecksum reads;
// both *core.Engine (worker and fallback engines) satisfy it.
type answerer interface {
	Answer(core.QueryID) ([]core.ObjectID, bool)
}

// stateChecksum folds the answers of the given queries — which must be
// in ascending ID order on both sides — into one fingerprint of a tile
// engine's membership state. The coordinator compares the resyncing
// worker's fold against its own fallback engine's before trusting the
// worker again: the two engines were rebuilt from the same journal, so
// any difference means divergence (version skew, undetected corruption)
// and the worker must not be handed the tile.
func stateChecksum(eng answerer, qids []core.QueryID) uint64 {
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	for _, q := range qids {
		ids, _ := eng.Answer(q)
		h = (h ^ uint64(q)) * prime
		h = (h ^ core.ChecksumIDs(ids)) * prime
	}
	return h
}
