package cluster

import (
	"fmt"
	"net"
	"os"
	"os/exec"
	"strconv"
	"sync"
	"time"

	"cqp/internal/wire"
)

// Process is one live worker backend: the coordinator-side connection
// plus lifecycle handles. Kill must be idempotent and must eventually
// cause ServeWorker on the other side to return; Wait blocks until the
// backend has fully stopped.
type Process interface {
	Conn() net.Conn
	Kill() error
	Wait() error
}

// Spawner creates worker backends. The coordinator calls Spawn once per
// (worker slot, incarnation); successive incarnations of a slot never
// overlap — the previous process is killed and waited for first.
type Spawner interface {
	Spawn(worker int, incarnation uint64) (Process, error)
	Close() error
}

// PipeSpawner runs workers in-process over net.Pipe — the deterministic
// backend of the differential and chaos test suites. WrapConn, when
// set, wraps the coordinator side of each pipe; the chaos tests install
// a faultnet injector there.
type PipeSpawner struct {
	WrapConn func(net.Conn) net.Conn
}

func (s *PipeSpawner) Spawn(worker int, incarnation uint64) (Process, error) {
	coord, work := net.Pipe()
	c := net.Conn(coord)
	if s.WrapConn != nil {
		c = s.WrapConn(coord)
	}
	p := &pipeProcess{conn: c, raw: coord, worker: work, done: make(chan struct{})}
	go func() {
		defer close(p.done)
		ServeWorker(work)
	}()
	return p, nil
}

func (s *PipeSpawner) Close() error { return nil }

type pipeProcess struct {
	conn   net.Conn // possibly fault-wrapped coordinator side
	raw    net.Conn // unwrapped coordinator side
	worker net.Conn
	done   chan struct{}
}

func (p *pipeProcess) Conn() net.Conn { return p.conn }

// Kill closes both pipe ends: closing only the wrapped coordinator side
// is not enough when a fault injector is holding the link stalled.
func (p *pipeProcess) Kill() error {
	p.worker.Close()
	p.raw.Close()
	p.conn.Close()
	return nil
}

func (p *pipeProcess) Wait() error {
	<-p.done
	return nil
}

// Environment variables carrying a worker process its dial-back
// coordinates. See RunWorkerFromEnv.
const (
	EnvWorkerAddr        = "CQP_CLUSTER_ADDR"
	EnvWorkerSlot        = "CQP_CLUSTER_SLOT"
	EnvWorkerIncarnation = "CQP_CLUSTER_INC"
)

// ExecSpawner launches real worker processes that dial back to a
// loopback listener and identify themselves with a ClusterHello frame.
// The spawned command is expected to call RunWorkerFromEnv early in
// main — cmd/cqp-cluster re-executes its own binary this way, as do the
// process-kill tests via the test binary.
type ExecSpawner struct {
	command []string
	ln      net.Listener
	stop    chan struct{}
	wg      sync.WaitGroup // joins the accept loop and in-flight routes

	mu      sync.Mutex
	closed  bool
	pending map[spawnKey]chan net.Conn
	routing map[net.Conn]bool // dial-backs mid-handshake, closed on Close
}

type spawnKey struct {
	worker uint32
	inc    uint64
}

// NewExecSpawner returns a spawner running command (argv; the worker
// env vars are appended to the child environment).
func NewExecSpawner(command []string) (*ExecSpawner, error) {
	if len(command) == 0 {
		return nil, fmt.Errorf("cluster: ExecSpawner needs a command")
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("cluster: dial-back listener: %w", err)
	}
	s := &ExecSpawner{
		command: command,
		ln:      ln,
		stop:    make(chan struct{}),
		pending: make(map[spawnKey]chan net.Conn),
		routing: make(map[net.Conn]bool),
	}
	s.wg.Add(1)
	go s.accept()
	return s, nil
}

func (s *ExecSpawner) accept() {
	defer s.wg.Done()
	for {
		c, err := s.ln.Accept()
		if err != nil {
			return
		}
		// Register the dial-back before routing so Close can cut a
		// handshake sitting on its read deadline instead of waiting it
		// out.
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			c.Close()
			return
		}
		s.routing[c] = true
		s.wg.Add(1)
		s.mu.Unlock()
		go s.route(c)
	}
}

// route reads the dial-back Hello and hands the connection to the Spawn
// waiting for that (worker, incarnation); unclaimed or late dial-backs
// are dropped.
func (s *ExecSpawner) route(c net.Conn) {
	defer s.wg.Done()
	c.SetReadDeadline(time.Now().Add(10 * time.Second))
	m, err := wire.NewReader(c).Read()
	hello, ok := m.(wire.ClusterHello)
	s.mu.Lock()
	delete(s.routing, c)
	if err != nil || !ok || s.closed {
		s.mu.Unlock()
		c.Close()
		return
	}
	c.SetReadDeadline(time.Time{})
	key := spawnKey{hello.Worker, hello.Incarnation}
	ch := s.pending[key]
	delete(s.pending, key)
	s.mu.Unlock()
	if ch == nil {
		c.Close()
		return
	}
	ch <- c // cap 1: never blocks
}

func (s *ExecSpawner) Spawn(worker int, incarnation uint64) (Process, error) {
	key := spawnKey{uint32(worker), incarnation}
	ch := make(chan net.Conn, 1)
	s.mu.Lock()
	s.pending[key] = ch
	s.mu.Unlock()
	unregister := func() {
		s.mu.Lock()
		delete(s.pending, key)
		s.mu.Unlock()
	}

	cmd := exec.Command(s.command[0], s.command[1:]...)
	cmd.Env = append(os.Environ(),
		EnvWorkerAddr+"="+s.ln.Addr().String(),
		EnvWorkerSlot+"="+strconv.Itoa(worker),
		EnvWorkerIncarnation+"="+strconv.FormatUint(incarnation, 10),
	)
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		unregister()
		return nil, fmt.Errorf("cluster: start worker %d: %w", worker, err)
	}
	timer := time.NewTimer(10 * time.Second)
	defer timer.Stop()
	select {
	case c := <-ch:
		return &execProcess{cmd: cmd, conn: c}, nil
	case <-timer.C:
	case <-s.stop:
	}
	unregister()
	cmd.Process.Kill()
	cmd.Wait()
	// The route goroutine may have claimed the pending entry right before
	// unregister ran; reap the connection it delivered.
	select {
	case c := <-ch:
		c.Close()
	default:
	}
	return nil, fmt.Errorf("cluster: worker %d (incarnation %d) did not dial back", worker, incarnation)
}

// Close stops the dial-back listener and joins the accept and route
// goroutines. In-flight handshakes are cut by closing their
// connections; without that, a route blocked on its 10-second read
// deadline would outlive the spawner — the supervisor-leak shape the
// golifecycle analyzer exists to catch.
func (s *ExecSpawner) Close() error {
	close(s.stop)
	err := s.ln.Close()
	s.mu.Lock()
	s.closed = true
	for c := range s.routing {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

type execProcess struct {
	cmd  *exec.Cmd
	conn net.Conn

	waitOnce sync.Once
	waitErr  error
}

func (p *execProcess) Conn() net.Conn { return p.conn }

// Kill delivers SIGKILL: worker death in the cluster's failure model is
// always abrupt, never cooperative.
func (p *execProcess) Kill() error {
	p.conn.Close()
	return p.cmd.Process.Kill()
}

func (p *execProcess) Wait() error {
	p.waitOnce.Do(func() { p.waitErr = p.cmd.Wait() })
	return p.waitErr
}

// RunWorkerFromEnv turns the current process into a cluster worker when
// the CQP_CLUSTER_* environment variables are present: it dials the
// coordinator, identifies itself, and serves tiles until the connection
// drops. It reports whether the variables were present (the caller's
// main should return when they were). Binaries embedding a coordinator
// call it first thing, before flag parsing.
func RunWorkerFromEnv() (bool, error) {
	addr := os.Getenv(EnvWorkerAddr)
	if addr == "" {
		return false, nil
	}
	slot, err := strconv.Atoi(os.Getenv(EnvWorkerSlot))
	if err != nil {
		return true, fmt.Errorf("cluster: bad %s: %w", EnvWorkerSlot, err)
	}
	inc, err := strconv.ParseUint(os.Getenv(EnvWorkerIncarnation), 10, 64)
	if err != nil {
		return true, fmt.Errorf("cluster: bad %s: %w", EnvWorkerIncarnation, err)
	}
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return true, fmt.Errorf("cluster: dial coordinator: %w", err)
	}
	if err := wire.NewWriter(c).Write(wire.ClusterHello{Worker: uint32(slot), Incarnation: inc}); err != nil {
		c.Close()
		return true, fmt.Errorf("cluster: hello: %w", err)
	}
	return true, ServeWorker(c)
}
