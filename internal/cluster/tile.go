package cluster

import (
	"fmt"
	"slices"
	"time"

	"cqp/internal/core"
	"cqp/internal/wire"
)

// clusterTile is the coordinator-side transport of one tile: a
// shard.Tile whose backend is an engine in a worker process, with an
// in-process fallback engine it can rebuild at any moment from its
// journal. The shard router drives it exactly like an in-process tile —
// a clusterTile never fails a step, it degrades.
//
// Self-healing rests on the tile engines being memoryless: a tile
// engine's answer state is a pure function of (latest report per owned
// object, latest definition per replica query, last step time). The
// journal keeps exactly those inputs, compacted, so a fresh engine fed
// the journal and stepped once at lastStep reproduces the dead
// backend's membership state bit-for-bit — and a failed step, re-run on
// that rebuilt state with the same staged reports and timestamp, yields
// the byte-identical update batch the worker would have produced. That
// is what keeps the merged stream canonical across worker deaths.
//
// Epochs gate every remote frame: each (re)establishment of a worker
// backend bumps the tile's epoch, and results or acks stamped with an
// older epoch are discarded, so no frame from a previous incarnation
// can leak into the current state.
type clusterTile struct {
	id   int
	cl   *Cluster
	slot *workerSlot
	opt  core.Options

	epoch uint64

	// Staged reports: routed since the last step, not yet evaluated.
	objStage []core.ObjectUpdate
	qryStage []core.QueryUpdate

	// The journal: latest absorbed report per owned object, latest
	// absorbed definition per replica query, and the last step time.
	jObjs    map[core.ObjectID]core.ObjectUpdate
	jQrys    map[core.QueryID]core.QueryUpdate
	hasStep  bool
	lastStep float64

	remote    bool   // worker backend is live and trusted
	remoteInc uint64 // incarnation the worker backend was built under
	inFbGauge bool   // counted in cluster.tiles.fallback
	fb        *core.Engine
	fbBuf     []core.Update
	work      core.Stats

	resc chan wire.ClusterStepResult
	ackc chan wire.ClusterResyncAck

	// In-flight step bookkeeping between StepBegin and StepWait.
	stepNow    float64
	stepRemote bool
	stepDown   <-chan struct{}
	fbc        chan []core.Update
	lastNs     int64
}

func newClusterTile(cl *Cluster, id int, opt core.Options, slot *workerSlot) *clusterTile {
	return &clusterTile{
		id:    id,
		cl:    cl,
		slot:  slot,
		opt:   opt,
		jObjs: make(map[core.ObjectID]core.ObjectUpdate),
		jQrys: make(map[core.QueryID]core.QueryUpdate),
		resc:  make(chan wire.ClusterStepResult, 2),
		ackc:  make(chan wire.ClusterResyncAck, 2),
		fbc:   make(chan []core.Update, 1),
	}
}

func (t *clusterTile) ReportObject(u core.ObjectUpdate) { t.objStage = append(t.objStage, u) }
func (t *clusterTile) ReportQuery(u core.QueryUpdate)   { t.qryStage = append(t.qryStage, u) }
func (t *clusterTile) Pending() int                     { return len(t.objStage) + len(t.qryStage) }

func (t *clusterTile) StepBegin(now float64) {
	t.stepNow = now
	t.establish()
	if t.remote {
		if st := t.slot.current(); st != nil && st.incarnation == t.remoteInc {
			t.drainResults()
			// The frame gets copies of the staged slices: the sender encodes
			// concurrently with the router's next appends.
			msg := wire.ClusterStep{
				Tile: uint32(t.id), Epoch: t.epoch, Time: now,
				Objects: slices.Clone(t.objStage),
				Queries: slices.Clone(t.qryStage),
			}
			if st.enqueue(msg) {
				t.stepRemote = true
				t.stepDown = st.down
				return
			}
		}
		t.toFallback()
	}
	// Degraded path: evaluate in-process. The goroutine mirrors the
	// in-process tile's worker so fallback tiles still step in parallel;
	// the fbc handoff orders the buffer both ways.
	t.stepRemote = false
	t.ensureFallback()
	for _, u := range t.objStage {
		t.fb.ReportObject(u)
	}
	for _, u := range t.qryStage {
		t.fb.ReportQuery(u)
	}
	go func(eng *core.Engine, now float64) {
		begin := t.cl.m.tracer.Begin()
		t.fbBuf = eng.StepAppend(t.fbBuf[:0], now)
		t.lastNs = t.cl.m.tracer.Since(begin)
		t.fbc <- t.fbBuf
	}(t.fb, now)
}

func (t *clusterTile) StepWait() []core.Update {
	if !t.stepRemote {
		out := <-t.fbc
		t.fold()
		t.work = t.fb.Stats()
		return out
	}
	for {
		select {
		case res := <-t.resc:
			if res.Epoch != t.epoch {
				t.cl.m.staleEpochs.Inc()
				continue
			}
			t.fold()
			t.work = core.Stats{
				KNNRecomputes:   res.KNNRecomputes,
				CandidateChecks: res.CandidateChecks,
				RegionEvalCells: res.RegionEvalCells,
			}
			t.lastNs = 0
			return res.Updates
		case <-t.stepDown:
			// The worker died mid-step. Rebuild its pre-step state from the
			// journal, re-run this step locally, and answer as if nothing
			// happened: determinism makes the redone batch identical to the
			// one the worker would have returned — even if its result was
			// already in flight (it is discarded by the epoch gate later).
			t.toFallback()
			t.ensureFallback()
			for _, u := range t.objStage {
				t.fb.ReportObject(u)
			}
			for _, u := range t.qryStage {
				t.fb.ReportQuery(u)
			}
			begin := t.cl.m.tracer.Begin()
			t.fbBuf = t.fb.StepAppend(t.fbBuf[:0], t.stepNow)
			t.lastNs = t.cl.m.tracer.Since(begin)
			t.fold()
			t.work = t.fb.Stats()
			return t.fbBuf
		}
	}
}

func (t *clusterTile) StepNanos() int64 { return t.lastNs }

// WorkStats returns the backend's evaluation-work counters. They are
// best-effort across failovers: a rebuilt backend re-counts the replay
// work, so unlike the update stream they are not bit-stable under
// faults.
func (t *clusterTile) WorkStats() core.Stats { return t.work }

// Close retires the tile. When a repartition destroys a remote tile the
// worker is told to free its engine; delivery is best-effort (a dead or
// congested link just leaves the engine to be reaped with the process),
// and tile ids are never reused, so no further frame can target it.
func (t *clusterTile) Close() error {
	if t.remote {
		if st := t.slot.current(); st != nil && st.incarnation == t.remoteInc {
			st.enqueue(wire.ClusterRetire{Tile: uint32(t.id), Epoch: t.epoch})
		}
	}
	return nil
}

// fold absorbs the staged reports into the journal after a successful
// step; last-write-wins per ID keeps the journal compact (its size is
// bounded by live objects + live replicas, not by history).
func (t *clusterTile) fold() {
	for _, u := range t.objStage {
		if u.Remove {
			delete(t.jObjs, u.ID)
		} else {
			t.jObjs[u.ID] = u
		}
	}
	for _, u := range t.qryStage {
		if u.Remove {
			delete(t.jQrys, u.ID)
		} else {
			t.jQrys[u.ID] = u
		}
	}
	t.objStage = t.objStage[:0]
	t.qryStage = t.qryStage[:0]
	t.hasStep = true
	t.lastStep = t.stepNow
}

// fresh reports whether the tile has no state a worker would need to
// rebuild — assignment alone suffices, no resync handshake.
func (t *clusterTile) fresh() bool {
	return !t.hasStep && len(t.jObjs) == 0 && len(t.jQrys) == 0
}

// establish reconciles the tile with its slot before a step: nothing to
// do in steady state; hand the tile back to a recovered worker via the
// assign/resync/ack handshake; or drop to fallback when the slot is
// down.
func (t *clusterTile) establish() {
	st := t.slot.current()
	if st == nil {
		if t.remote {
			t.toFallback()
		}
		return
	}
	if t.remote && st.incarnation == t.remoteInc {
		return
	}
	t.epoch++
	assign := wire.ClusterAssign{
		Tile: uint32(t.id), Epoch: t.epoch,
		Bounds:            t.opt.Bounds,
		GridN:             uint32(t.opt.GridN),
		PredictiveHorizon: t.opt.PredictiveHorizon,
		// Tile-local options: the worker's engine must be built over the
		// same halo-expanded sub-rectangle as the fallback engine, or the
		// resync state checksums could never match a repartitioned tile.
		Region:   t.opt.Region,
		MaxSpeed: t.opt.MaxSpeed,
		Replica:  t.opt.Replica,
	}
	if t.fresh() {
		if st.enqueue(assign) {
			t.setRemote(st.incarnation)
		} else {
			t.toFallback()
		}
		return
	}
	// The fallback engine doubles as the authoritative copy the worker's
	// rebuild is verified against.
	t.ensureFallback()
	if !st.enqueue(assign) || !st.enqueue(t.resyncMsg()) {
		t.toFallback()
		return
	}
	want := stateChecksum(t.fb, t.journalQueryIDs())
	timer := time.NewTimer(t.cl.cfg.ResyncTimeout)
	defer timer.Stop()
	for {
		select {
		case ack := <-t.ackc:
			if ack.Epoch != t.epoch {
				t.cl.m.staleEpochs.Inc()
				continue
			}
			if ack.Checksum != want {
				// Divergent rebuild: never hand the tile to this backend.
				t.cl.m.resyncFails.Inc()
				st.fail()
				t.toFallback()
				return
			}
			t.cl.m.resyncs.Inc()
			t.setRemote(st.incarnation)
			t.fb = nil
			return
		case <-st.down:
			t.toFallback()
			return
		case <-timer.C:
			// A link that cannot complete a resync in time is not a link we
			// trust with steps; burn it and retry with a fresh process.
			t.cl.m.resyncFails.Inc()
			st.fail()
			t.toFallback()
			return
		}
	}
}

func (t *clusterTile) setRemote(inc uint64) {
	t.remote = true
	t.remoteInc = inc
	if t.inFbGauge {
		t.cl.m.fallback.Add(-1)
		t.inFbGauge = false
	}
}

func (t *clusterTile) toFallback() {
	t.remote = false
	if !t.inFbGauge {
		t.cl.m.fallback.Add(1)
		t.inFbGauge = true
	}
}

// ensureFallback rebuilds the in-process engine from the journal: replay
// every latest report and definition, then one discarded step at
// lastStep to re-establish the evaluation state the backend had after
// its last absorbed step.
func (t *clusterTile) ensureFallback() {
	if t.fb != nil {
		return
	}
	eng, err := core.NewEngine(t.opt)
	if err != nil {
		// Options were validated when the cluster was constructed.
		panic(fmt.Sprintf("cluster: fallback engine for validated options: %v", err))
	}
	for _, id := range t.journalObjectIDs() {
		eng.ReportObject(t.jObjs[id])
	}
	for _, id := range t.journalQueryIDs() {
		eng.ReportQuery(t.jQrys[id])
	}
	if t.hasStep {
		eng.StepAppend(nil, t.lastStep)
	}
	t.fb = eng
}

// journalObjectIDs returns the journaled object IDs in ascending order;
// replay and wire frames must not inherit map iteration order.
func (t *clusterTile) journalObjectIDs() []core.ObjectID {
	ids := make([]core.ObjectID, 0, len(t.jObjs))
	for id := range t.jObjs {
		ids = append(ids, id)
	}
	slices.Sort(ids)
	return ids
}

// journalQueryIDs returns the journaled query IDs in ascending order —
// also the order both sides of the resync handshake fold stateChecksum.
func (t *clusterTile) journalQueryIDs() []core.QueryID {
	ids := make([]core.QueryID, 0, len(t.jQrys))
	for id := range t.jQrys {
		ids = append(ids, id)
	}
	slices.Sort(ids)
	return ids
}

// resyncMsg builds the compacted authoritative snapshot of the tile.
func (t *clusterTile) resyncMsg() wire.ClusterResync {
	objs := make([]core.ObjectUpdate, 0, len(t.jObjs))
	for _, id := range t.journalObjectIDs() {
		objs = append(objs, t.jObjs[id])
	}
	qrys := make([]core.QueryUpdate, 0, len(t.jQrys))
	for _, id := range t.journalQueryIDs() {
		qrys = append(qrys, t.jQrys[id])
	}
	return wire.ClusterResync{
		Tile: uint32(t.id), Epoch: t.epoch,
		HasStep: t.hasStep, LastStep: t.lastStep,
		Objects: objs, Queries: qrys,
	}
}

// drainResults empties leftovers from previous epochs (a result that
// arrived after its step was redone locally) before a new remote send.
func (t *clusterTile) drainResults() {
	for {
		select {
		case <-t.resc:
			t.cl.m.staleEpochs.Inc()
		default:
			return
		}
	}
}
