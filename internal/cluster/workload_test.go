package cluster

import (
	"math/rand"
	"sort"

	"cqp/internal/core"
	"cqp/internal/geo"
)

// workload is a seeded random workload generator shared by the
// differential, chaos, and process-kill suites: moving, predictive, and
// waypoint objects, range/kNN/predictive queries, removals, kind
// changes, and plenty of cross-tile movers. Every random choice derives
// from the seed alone (query/object picks go through sorted ID lists),
// so a seed denotes one exact report stream.
type workload struct {
	rng     *rand.Rand
	now     float64
	objects map[core.ObjectID]core.ObjectKind
	queries map[core.QueryID]core.QueryKind
	nextO   core.ObjectID
	nextQ   core.QueryID
}

func newWorkload(seed int64) *workload {
	return &workload{
		rng:     rand.New(rand.NewSource(seed)),
		objects: make(map[core.ObjectID]core.ObjectKind),
		queries: make(map[core.QueryID]core.QueryKind),
		nextO:   1,
		nextQ:   1,
	}
}

func (w *workload) randPoint() geo.Point { return geo.Pt(w.rng.Float64(), w.rng.Float64()) }

func (w *workload) randVel() geo.Vector {
	return geo.Vec(w.rng.Float64()*0.1-0.05, w.rng.Float64()*0.1-0.05)
}

func (w *workload) randWaypoints(now float64) []geo.TimedPoint {
	n := 1 + w.rng.Intn(3)
	out := make([]geo.TimedPoint, 0, n)
	tm := now
	for i := 0; i < n; i++ {
		tm += 0.5 + w.rng.Float64()*3
		out = append(out, geo.TimedPoint{P: w.randPoint(), T: tm})
	}
	return out
}

func (w *workload) pickObject() core.ObjectID {
	ids := make([]core.ObjectID, 0, len(w.objects))
	for id := range w.objects {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids[w.rng.Intn(len(ids))]
}

func (w *workload) pickQuery() core.QueryID {
	ids := make([]core.QueryID, 0, len(w.queries))
	for id := range w.queries {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids[w.rng.Intn(len(ids))]
}

func (w *workload) randQueryUpdate(id core.QueryID, kind core.QueryKind) core.QueryUpdate {
	u := core.QueryUpdate{ID: id, Kind: kind, T: w.now}
	switch kind {
	case core.Range:
		u.Region = geo.RectAt(w.randPoint(), 0.02+w.rng.Float64()*0.4)
	case core.KNN:
		u.Focal = w.randPoint()
		u.K = 1 + w.rng.Intn(6)
	case core.PredictiveRange:
		u.Region = geo.RectAt(w.randPoint(), 0.02+w.rng.Float64()*0.4)
		u.T1 = w.now + w.rng.Float64()*10
		u.T2 = u.T1 + w.rng.Float64()*10
	}
	return u
}

// step advances time, emits one step's worth of reports through report,
// and returns the step's evaluation timestamp.
func (w *workload) step(report func(ou *core.ObjectUpdate, qu *core.QueryUpdate)) float64 {
	w.now += 1
	const (
		maxObjects = 70
		maxQueries = 20
	)
	for n := w.rng.Intn(12); n > 0; n-- {
		switch {
		case len(w.objects) == 0 || (len(w.objects) < maxObjects && w.rng.Float64() < 0.3):
			kind := core.ObjectKind(w.rng.Intn(3))
			id := w.nextO
			w.nextO++
			w.objects[id] = kind
			u := core.ObjectUpdate{ID: id, Kind: kind, Loc: w.randPoint(), Vel: w.randVel(), T: w.now}
			if kind == core.Predictive && w.rng.Float64() < 0.3 {
				u.Waypoints = w.randWaypoints(w.now)
			}
			report(&u, nil)
		case w.rng.Float64() < 0.08:
			id := w.pickObject()
			delete(w.objects, id)
			report(&core.ObjectUpdate{ID: id, Remove: true, T: w.now}, nil)
		default:
			id := w.pickObject()
			u := core.ObjectUpdate{ID: id, Kind: w.objects[id], Loc: w.randPoint(), Vel: w.randVel(), T: w.now}
			if w.objects[id] == core.Predictive && w.rng.Float64() < 0.3 {
				u.Waypoints = w.randWaypoints(w.now)
			}
			report(&u, nil)
		}
	}
	for n := w.rng.Intn(4); n > 0; n-- {
		switch {
		case len(w.queries) == 0 || (len(w.queries) < maxQueries && w.rng.Float64() < 0.4):
			kind := core.QueryKind(w.rng.Intn(3))
			id := w.nextQ
			w.nextQ++
			w.queries[id] = kind
			u := w.randQueryUpdate(id, kind)
			report(nil, &u)
		case w.rng.Float64() < 0.1:
			id := w.pickQuery()
			delete(w.queries, id)
			report(nil, &core.QueryUpdate{ID: id, Remove: true, T: w.now})
		default:
			id := w.pickQuery()
			kind := w.queries[id]
			if w.rng.Float64() < 0.15 {
				kind = core.QueryKind((int(kind) + 1 + w.rng.Intn(2)) % 3)
				w.queries[id] = kind
			}
			u := w.randQueryUpdate(id, kind)
			report(nil, &u)
		}
	}
	return w.now
}

// queryIDs returns the live query IDs in ascending order.
func (w *workload) queryIDs() []core.QueryID {
	ids := make([]core.QueryID, 0, len(w.queries))
	for id := range w.queries {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func updatesEqual(a, b []core.Update) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func idsEqualTest(a, b []core.ObjectID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
