package cluster

import (
	"fmt"
	"testing"
	"time"

	"cqp/internal/core"
	"cqp/internal/geo"
	"cqp/internal/shard"
)

// TestDifferentialClusterVsSharded is the cluster's central correctness
// property: the coordinator with worker-process tiles must produce a
// merged update stream BIT-IDENTICAL to the in-process sharded engine's
// for the same workload — same updates in the same order every step —
// plus identical answers, committed answers, and recovery diffs. The
// workers here are in-process over net.Pipe, so the only difference
// under test is the transport.
func TestDifferentialClusterVsSharded(t *testing.T) {
	for _, seed := range []int64{1, 2, 7, 42} {
		for _, cfg := range [][3]int{{2, 2, 2}, {1, 4, 3}, {2, 2, 1}} {
			seed, cfg := seed, cfg
			t.Run(fmt.Sprintf("seed=%d/grid=%dx%d/workers=%d", seed, cfg[0], cfg[1], cfg[2]), func(t *testing.T) {
				runClusterDifferential(t, clusterDiffConfig{
					seed: seed, rows: cfg[0], cols: cfg[1], workers: cfg[2], steps: 80,
				})
			})
		}
	}
}

type clusterDiffConfig struct {
	seed    int64
	rows    int
	cols    int
	workers int
	steps   int

	// spawner overrides the default fault-free PipeSpawner (the chaos
	// suites install a fault-wrapped one).
	spawner Spawner

	// disturb, when set, runs before each step — the chaos suites kill
	// workers and toggle fault scenarios here.
	disturb func(step int, cl *Cluster)

	// disturbBoth, when set, runs before each step with both engines —
	// the repartition suite queues identical splits and merges on the
	// reference and the cluster so their partitions stay in lockstep.
	disturbBoth func(step int, ref *shard.Engine, cl *Cluster)

	// settle, when set, requires the cluster to fully return to remote
	// operation after the scripted steps (all workers up, no tiles in
	// fallback) while the stream stays bit-identical.
	settle bool

	// after, when set, runs once all steps (and settling) are done,
	// while the cluster is still open — for post-run assertions that
	// need live slot state.
	after func(cl *Cluster)
}

func runClusterDifferential(t *testing.T, cfg clusterDiffConfig) {
	t.Helper()
	w := newWorkload(cfg.seed)
	copt := core.Options{
		Bounds:            geo.R(0, 0, 1, 1),
		GridN:             1 + w.rng.Intn(12),
		PredictiveHorizon: 50,
	}
	sopt := shard.Options{Core: copt, Rows: cfg.rows, Cols: cfg.cols, PadTiles: w.rng.Intn(2)}
	ref, err := shard.New(sopt)
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()

	spawner := cfg.spawner
	if spawner == nil {
		spawner = &PipeSpawner{}
	}
	cl, err := New(Config{
		Shard:             sopt,
		Workers:           cfg.workers,
		Spawner:           spawner,
		HeartbeatInterval: 5 * time.Millisecond,
		HeartbeatTimeout:  60 * time.Millisecond,
		ResyncTimeout:     2 * time.Second,
		Backoff:           Backoff{Initial: time.Millisecond, Max: 20 * time.Millisecond},
		Seed:              cfg.seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	if up := cl.NumWorkersUp(); up != cfg.workers {
		t.Fatalf("after New: %d/%d workers up", up, cfg.workers)
	}

	stepBoth := func(step int) {
		t.Helper()
		now := w.step(func(ou *core.ObjectUpdate, qu *core.QueryUpdate) {
			if ou != nil {
				ref.ReportObject(*ou)
				cl.ReportObject(*ou)
			}
			if qu != nil {
				ref.ReportQuery(*qu)
				cl.ReportQuery(*qu)
			}
		})
		a := ref.Step(now)
		b := cl.Step(now)
		if !updatesEqual(a, b) {
			t.Fatalf("seed %d step %d: merged streams diverge (fallback tiles: %d)\nsharded: %v\ncluster: %v",
				cfg.seed, step, cl.TilesInFallback(), a, b)
		}
		for _, q := range w.queryIDs() {
			ra, ok1 := ref.Answer(q)
			ca, ok2 := cl.Answer(q)
			if ok1 != ok2 || !idsEqualTest(ra, ca) {
				t.Fatalf("seed %d step %d: query %d answers diverge\nsharded: %v (%v)\ncluster: %v (%v)",
					cfg.seed, step, q, ra, ok1, ca, ok2)
			}
		}
		// Exercise the protocol surface identically on both sides.
		if len(w.queries) > 0 && w.rng.Float64() < 0.2 {
			q := w.pickQuery()
			if x, y := ref.Commit(q), cl.Commit(q); x != y {
				t.Fatalf("seed %d step %d: Commit(%d) sharded=%v cluster=%v", cfg.seed, step, q, x, y)
			}
			rc, _ := ref.CommittedChecksum(q)
			cc, _ := cl.CommittedChecksum(q)
			if rc != cc {
				t.Fatalf("seed %d step %d: committed checksums diverge for %d", cfg.seed, step, q)
			}
		}
		if len(w.queries) > 0 && w.rng.Float64() < 0.1 {
			q := w.pickQuery()
			ra, _ := ref.Recover(q)
			ca, _ := cl.Recover(q)
			if !updatesEqual(ra, ca) {
				t.Fatalf("seed %d step %d: Recover(%d) diverges\nsharded: %v\ncluster: %v", cfg.seed, step, q, ra, ca)
			}
		}
	}

	for step := 0; step < cfg.steps; step++ {
		if cfg.disturb != nil {
			cfg.disturb(step, cl)
		}
		if cfg.disturbBoth != nil {
			cfg.disturbBoth(step, ref, cl)
		}
		stepBoth(step)
	}

	if cfg.settle {
		deadline := time.Now().Add(15 * time.Second)
		step := cfg.steps
		for cl.TilesInFallback() > 0 || cl.NumWorkersUp() < cfg.workers {
			if time.Now().After(deadline) {
				t.Fatalf("cluster did not heal: %d tiles in fallback, %d/%d workers up",
					cl.TilesInFallback(), cl.NumWorkersUp(), cfg.workers)
			}
			stepBoth(step)
			step++
			time.Sleep(2 * time.Millisecond)
		}
		// A healed cluster keeps the stream identical fully remote.
		for i := 0; i < 10; i++ {
			stepBoth(step)
			step++
		}
	}

	if cfg.after != nil {
		cfg.after(cl)
	}
}
