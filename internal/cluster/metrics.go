package cluster

import (
	"strconv"

	"cqp/internal/obs"
)

// clusterMetrics are the coordinator's pre-resolved observability
// instruments, bound against the same registry the shard router and the
// tile engines use (Config.Shard.Core.Metrics), so one /metrics scrape
// sees the whole stack: engine work, router merges, and cluster health.
type clusterMetrics struct {
	reg    *obs.Registry
	tracer *obs.Tracer

	restarts    *obs.Counter // cluster.worker.restarts: worker deaths observed (respawns follow)
	resyncs     *obs.Counter // cluster.resyncs: tiles successfully handed back to a worker
	resyncFails *obs.Counter // cluster.resync.failures: timeouts and checksum mismatches
	staleEpochs *obs.Counter // cluster.stale_epochs: frames discarded for carrying an old epoch
	fallback    *obs.Gauge   // cluster.tiles.fallback: tiles currently served in-process
	workersUp   *obs.Gauge   // cluster.workers.up: worker links currently live
}

// newClusterMetrics resolves every instrument against reg (nil yields
// detached instruments) and binds the injected clock.
func newClusterMetrics(reg *obs.Registry, clock obs.Clock) *clusterMetrics {
	return &clusterMetrics{
		reg:         reg,
		tracer:      obs.NewTracer(clock),
		restarts:    reg.Counter("cluster.worker.restarts"),
		resyncs:     reg.Counter("cluster.resyncs"),
		resyncFails: reg.Counter("cluster.resync.failures"),
		staleEpochs: reg.Counter("cluster.stale_epochs"),
		fallback:    reg.Gauge("cluster.tiles.fallback"),
		workersUp:   reg.Gauge("cluster.workers.up"),
	}
}

// heartbeatRTT resolves the per-worker heartbeat round-trip histogram.
// The worker loop is single-threaded by design, so this RTT measures
// liveness of the whole worker — a worker wedged mid-step stops echoing.
func (m *clusterMetrics) heartbeatRTT(worker int) *obs.Histogram {
	return m.reg.Histogram("cluster.worker."+strconv.Itoa(worker)+".heartbeat_rtt_ns", obs.DurationBuckets)
}
