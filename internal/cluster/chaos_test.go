package cluster

import (
	"fmt"
	"net"
	"testing"
	"time"

	"cqp/internal/faultnet"
)

// TestChaosWorkerKills murders live worker processes at scripted points
// — including repeatedly killing the same slot — and requires the
// merged stream to stay bit-identical to the in-process sharded
// engine's through every death, fallback, respawn, and resync, and the
// cluster to end fully healed (all workers up, no tiles in fallback).
func TestChaosWorkerKills(t *testing.T) {
	kills := map[int]int{5: 0, 6: 1, 12: 0, 13: 0, 25: 1, 26: 0}
	runClusterDifferential(t, clusterDiffConfig{
		seed: 3, rows: 2, cols: 2, workers: 2, steps: 40, settle: true,
		disturb: func(step int, cl *Cluster) {
			if slot, ok := kills[step]; ok {
				cl.KillWorker(slot)
			}
		},
	})
}

// TestChaosFaultStorms drives the cluster through deterministic
// faultnet storms on every worker link — resets, partial writes, bit
// corruption (caught by the cluster frames' trailing checksums), stalls
// (caught by the heartbeat deadline), and a mixed storm — and requires
// the merged stream to stay bit-identical throughout, then full healing
// once the weather clears.
func TestChaosFaultStorms(t *testing.T) {
	scenarios := []struct {
		name   string
		faults faultnet.Faults
	}{
		{"reset", faultnet.Faults{Seed: 11, Grace: 20, PReset: 0.02}},
		{"partial", faultnet.Faults{Seed: 12, Grace: 20, PPartialWrite: 0.02}},
		{"corrupt", faultnet.Faults{Seed: 13, Grace: 20, PCorrupt: 0.02}},
		{"stall", faultnet.Faults{Seed: 14, Grace: 20, PStall: 0.01}},
		{"mixed", faultnet.Faults{
			Seed: 15, Grace: 10,
			PReset: 0.01, PCorrupt: 0.01, PStall: 0.005,
			PDelay: 0.05, MaxDelay: time.Millisecond,
		}},
	}
	for _, sc := range scenarios {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			in := faultnet.New(sc.faults)
			in.Disable() // calm until the storm window opens
			const stormStart, stormEnd = 8, 30
			var last *Cluster
			runClusterDifferential(t, clusterDiffConfig{
				seed: 9, rows: 2, cols: 2, workers: 2, steps: 42, settle: true,
				spawner: &PipeSpawner{WrapConn: func(c net.Conn) net.Conn { return in.Wrap(c) }},
				disturb: func(step int, cl *Cluster) {
					last = cl
					switch step {
					case stormStart:
						in.Enable()
					case stormEnd:
						in.Disable()
					}
				},
			})
			if restarts := last.m.restarts.Value(); restarts == 0 {
				t.Errorf("storm %q drew no blood: no worker restarts", sc.name)
			} else {
				t.Logf("storm %q: %d restarts, %d resyncs, %d stale epochs",
					sc.name, restarts, last.m.resyncs.Value(), last.m.staleEpochs.Value())
			}
		})
	}
}

// TestChaosMetrics runs a kill-and-heal pass and checks the cluster
// instruments moved the way the story says: deaths counted as restarts,
// recoveries as resyncs, and the fallback gauge back to zero.
func TestChaosMetrics(t *testing.T) {
	var sawFallback bool
	var last *Cluster
	runClusterDifferential(t, clusterDiffConfig{
		seed: 5, rows: 2, cols: 2, workers: 2, steps: 30, settle: true,
		disturb: func(step int, cl *Cluster) {
			last = cl
			if step == 10 {
				cl.KillWorker(0)
			}
			if cl.TilesInFallback() > 0 {
				sawFallback = true
			}
		},
	})
	if !sawFallback {
		t.Fatal("kill at step 10 never put a tile in fallback")
	}
	if got := last.m.restarts.Value(); got == 0 {
		t.Error("cluster.worker.restarts never incremented")
	}
	if got := last.m.resyncs.Value(); got == 0 {
		t.Error("cluster.resyncs never incremented")
	}
	if got := last.m.fallback.Value(); got != 0 {
		t.Errorf("cluster.tiles.fallback = %d after healing, want 0", got)
	}
	for w := 0; w < 2; w++ {
		name := fmt.Sprintf("cluster.worker.%d.heartbeat_rtt_ns", w)
		_ = name // the histogram is registry-backed only when a registry is configured
	}
}
