package cluster

import (
	"testing"

	"cqp/internal/shard"
)

// repartitioner is the slice of the router surface the lockstep
// drivers need; *shard.Engine and *Cluster (by embedding) satisfy it.
type repartitioner interface {
	LiveTiles() []int
	NumTiles() int
	SplitTile(int) error
	MergeTile(int) error
}

// splitMid queues a split of the middle live tile (by sorted id) —
// an arbitrary but deterministic pick, identical on engines whose
// partitions are in lockstep.
func splitMid(t *testing.T, e repartitioner) {
	t.Helper()
	live := e.LiveTiles()
	if err := e.SplitTile(live[len(live)/2]); err != nil {
		t.Fatal(err)
	}
}

// mergeFirst queues a merge of the first live tile that has a
// mergeable sibling, if any.
func mergeFirst(t *testing.T, e repartitioner) {
	t.Helper()
	for _, id := range e.LiveTiles() {
		if e.MergeTile(id) == nil {
			return
		}
	}
}

// TestDifferentialRepartitionCluster drives mid-run splits and merges
// through the coordinator: the cluster's tiles end up with
// heterogeneous bounds (halves and quarters side by side), every born
// tile is established on its worker through the assign handshake with
// its own Region, retired tiles are dropped worker-side, and the
// merged stream must stay bit-identical to the in-process sharded
// engine repartitioned in lockstep. Two scripted worker kills compose
// repartitioning with journal-rebuild failover: a tile born mid-run
// must rebuild on a fresh worker from its journal and pass the
// checksum resync like any original tile.
func TestDifferentialRepartitionCluster(t *testing.T) {
	for _, seed := range []int64{1, 7} {
		seed := seed
		t.Run("", func(t *testing.T) {
			var last *Cluster
			runClusterDifferential(t, clusterDiffConfig{
				seed: seed, rows: 2, cols: 2, workers: 2, steps: 60, settle: true,
				disturbBoth: func(step int, ref *shard.Engine, cl *Cluster) {
					switch step {
					case 7, 15, 23:
						splitMid(t, ref)
						splitMid(t, cl)
					case 30, 41:
						mergeFirst(t, ref)
						mergeFirst(t, cl)
					case 18:
						cl.KillWorker(0)
					case 33:
						cl.KillWorker(1)
					}
				},
				after: func(cl *Cluster) { last = cl },
			})
			if last.NumTiles() <= 4 {
				t.Fatalf("cluster never grew past the initial partition: %d tiles", last.NumTiles())
			}
			hetero := false
			tiles := last.LiveTiles()
			first := last.TileRect(tiles[0])
			for _, id := range tiles[1:] {
				r := last.TileRect(id)
				if r.Width() != first.Width() || r.Height() != first.Height() {
					hetero = true
					break
				}
			}
			if !hetero {
				t.Fatalf("expected heterogeneous tile bounds after splits+merges; all %d tiles are congruent", len(tiles))
			}
		})
	}
}
