package cluster

import (
	"fmt"
	"sort"
	"testing"

	"cqp/internal/core"
	"cqp/internal/geo"
)

// TestJournalRebuildReproducesEngine pins the property the whole
// failure model rests on: a core.Engine is memoryless — its state is a
// pure function of (latest report per object, latest definition per
// query, last step time). An engine rebuilt from exactly that compacted
// journal must, from then on, produce byte-identical update batches and
// answers when driven in lockstep with the engine that lived through
// the full history. If this test breaks, fallback rebuilds and resync
// verification are unsound — fix the engine property, not this test.
func TestJournalRebuildReproducesEngine(t *testing.T) {
	for _, seed := range []int64{1, 2, 7} {
		for _, rebuildAt := range []int{1, 13, 40} {
			seed, rebuildAt := seed, rebuildAt
			t.Run(fmt.Sprintf("seed=%d/rebuild=%d", seed, rebuildAt), func(t *testing.T) {
				runJournalRebuild(t, seed, rebuildAt, 70)
			})
		}
	}
}

func runJournalRebuild(t *testing.T, seed int64, rebuildAt, steps int) {
	copt := core.Options{Bounds: geo.R(0, 0, 1, 1), GridN: 8, PredictiveHorizon: 50}
	live := core.MustNewEngine(copt)
	var twin *core.Engine

	jObjs := make(map[core.ObjectID]core.ObjectUpdate)
	jQrys := make(map[core.QueryID]core.QueryUpdate)
	w := newWorkload(seed)

	for step := 0; step < steps; step++ {
		var objs []core.ObjectUpdate
		var qrys []core.QueryUpdate
		now := w.step(func(ou *core.ObjectUpdate, qu *core.QueryUpdate) {
			if ou != nil {
				objs = append(objs, *ou)
			}
			if qu != nil {
				qrys = append(qrys, *qu)
			}
		})

		if step == rebuildAt {
			twin = rebuildFromJournal(t, copt, jObjs, jQrys, now-1, step > 0)
		}

		for _, u := range objs {
			live.ReportObject(u)
			if twin != nil {
				twin.ReportObject(u)
			}
		}
		for _, u := range qrys {
			live.ReportQuery(u)
			if twin != nil {
				twin.ReportQuery(u)
			}
		}
		a := live.Step(now)
		if twin != nil {
			b := twin.Step(now)
			if !updatesEqual(a, b) {
				t.Fatalf("seed %d step %d: rebuilt engine batch diverges\nlive:    %v\nrebuilt: %v", seed, step, a, b)
			}
			for _, q := range w.queryIDs() {
				la, ok1 := live.Answer(q)
				ta, ok2 := twin.Answer(q)
				if ok1 != ok2 || !idsEqualTest(la, ta) {
					t.Fatalf("seed %d step %d: query %d answers diverge\nlive:    %v (%v)\nrebuilt: %v (%v)", seed, step, q, la, ok1, ta, ok2)
				}
			}
		}

		// Fold the journal exactly as clusterTile.fold does.
		for _, u := range objs {
			if u.Remove {
				delete(jObjs, u.ID)
			} else {
				jObjs[u.ID] = u
			}
		}
		for _, u := range qrys {
			if u.Remove {
				delete(jQrys, u.ID)
			} else {
				jQrys[u.ID] = u
			}
		}
	}
}

// rebuildFromJournal is the worker/fallback rebuild procedure: replay
// the compacted journal in ascending ID order, then one discarded step
// at the last step time.
func rebuildFromJournal(t *testing.T, opt core.Options, jObjs map[core.ObjectID]core.ObjectUpdate,
	jQrys map[core.QueryID]core.QueryUpdate, lastStep float64, hasStep bool) *core.Engine {
	t.Helper()
	eng := core.MustNewEngine(opt)
	oids := make([]core.ObjectID, 0, len(jObjs))
	for id := range jObjs {
		oids = append(oids, id)
	}
	sort.Slice(oids, func(i, j int) bool { return oids[i] < oids[j] })
	for _, id := range oids {
		eng.ReportObject(jObjs[id])
	}
	qids := make([]core.QueryID, 0, len(jQrys))
	for id := range jQrys {
		qids = append(qids, id)
	}
	sort.Slice(qids, func(i, j int) bool { return qids[i] < qids[j] })
	for _, id := range qids {
		eng.ReportQuery(jQrys[id])
	}
	if hasStep {
		eng.StepAppend(nil, lastStep)
	}
	return eng
}
