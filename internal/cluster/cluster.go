// Package cluster distributes the sharded continuous query processor
// across worker processes while preserving the canonical merged update
// stream bit-for-bit.
//
// The coordinator reuses internal/shard's router unchanged — partition,
// replicate, merge — by implementing shard.Tile over the wire protocol:
// each tile's engine lives in a worker process, reports travel in one
// ClusterStep frame per tile per (sub-)step, and the per-tile update
// batches come back in ClusterStepResult frames. Because the router's
// routing and merge logic is byte-identical to the in-process engine's,
// so is the merged stream — the differential suite asserts it.
//
// The robustness model (the reason this package exists):
//
//   - Liveness is deadline-based: every worker link carries heartbeats,
//     echoed by the worker's single-threaded loop, so a dead process, a
//     stalled link, or a wedged step all present the same way — the
//     echo stops and the deadline fires.
//   - Death is graceful degradation, not failure: each tile keeps a
//     compact journal (latest report per object, latest definition per
//     replica, last step time) from which it rebuilds an in-process
//     fallback engine, re-runs the failed step locally, and keeps
//     answering. The router — and every client above it — never sees a
//     worker die.
//   - Recovery is verified: dead workers are respawned with jittered
//     exponential backoff; a recovered worker is handed a tile back
//     only after rebuilding it from the journal and proving, via a
//     state checksum over every replica answer, that its state matches
//     the coordinator's fallback engine. Epoch stamps on every frame
//     keep incarnations from bleeding into each other.
//
// Correctness across all of this rests on one property the rest of the
// repository already enforces: a tile engine is a deterministic,
// memoryless function of its latest inputs. See clusterTile.
package cluster

import (
	"fmt"
	"sync"
	"time"

	"cqp/internal/core"
	"cqp/internal/obs"
	"cqp/internal/shard"
	"cqp/internal/wire"
)

// Backoff shapes the jittered exponential respawn delay of dead
// workers. The zero value picks the noted defaults.
type Backoff struct {
	Initial    time.Duration // delay before the first respawn (default 50ms)
	Max        time.Duration // ceiling (default 2s)
	Multiplier float64       // growth factor (default 2)
	Jitter     float64       // ± fraction applied to each delay (default 0.2)
}

func (b Backoff) withDefaults() Backoff {
	if b.Initial <= 0 {
		b.Initial = 50 * time.Millisecond
	}
	if b.Max <= 0 {
		b.Max = 2 * time.Second
	}
	if b.Multiplier <= 1 {
		b.Multiplier = 2
	}
	if b.Jitter <= 0 {
		b.Jitter = 0.2
	}
	return b
}

// Config parameterizes a Cluster.
type Config struct {
	// Shard configures the coordinator's router and, through Shard.Core,
	// the semantic engine options every tile backend — worker-side and
	// fallback — is built from. Required.
	Shard shard.Options

	// Workers is the number of worker slots; tiles are pinned round-robin
	// (tile i → slot i mod Workers). Defaults to 1.
	Workers int

	// Spawner creates worker backends. Required.
	Spawner Spawner

	// HeartbeatInterval is the probe period per worker link (default
	// 100ms); HeartbeatTimeout is the echo-age deadline past which the
	// worker is declared dead (default 1s). The timeout must comfortably
	// exceed the worst step or resync a worker legitimately performs,
	// since the single-threaded worker does not echo while evaluating.
	HeartbeatInterval time.Duration
	HeartbeatTimeout  time.Duration

	// ResyncTimeout bounds the assign/resync/ack handshake when handing a
	// tile back to a recovered worker (default 2s); on expiry the link is
	// discarded and the tile stays in fallback.
	ResyncTimeout time.Duration

	// Backoff shapes worker respawn delays; Seed fixes their jitter for
	// reproducible tests (default 1).
	Backoff Backoff
	Seed    int64

	// Clock measures heartbeat ages and RTTs (default obs.WallClock).
	Clock obs.Clock
}

func (c Config) withDefaults() (Config, error) {
	if c.Spawner == nil {
		return c, fmt.Errorf("cluster: Config.Spawner is required")
	}
	if c.Workers == 0 {
		c.Workers = 1
	}
	if c.Workers < 1 {
		return c, fmt.Errorf("cluster: Config.Workers must be positive, got %d", c.Workers)
	}
	if c.HeartbeatInterval <= 0 {
		c.HeartbeatInterval = 100 * time.Millisecond
	}
	if c.HeartbeatTimeout <= 0 {
		c.HeartbeatTimeout = 1 * time.Second
	}
	if c.ResyncTimeout <= 0 {
		c.ResyncTimeout = 2 * time.Second
	}
	c.Backoff = c.Backoff.withDefaults()
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Clock == nil {
		c.Clock = obs.WallClock
	}
	return c, nil
}

// Cluster is the coordinator: a core.Processor whose tiles live in
// worker processes. Like every processor it is not safe for concurrent
// use; callers serialize access (internal/server already does).
type Cluster struct {
	*shard.Engine

	cfg   Config
	m     *clusterMetrics
	slots []*workerSlot
	stop  chan struct{}

	// tiles is indexed by tile id and grows when repartitioning attaches
	// fresh tiles mid-run; retired ids keep their (now idle) transport.
	// The demux goroutines read it concurrently with router-side growth,
	// hence the lock.
	tilesMu sync.RWMutex
	tiles   []*clusterTile

	closeOnce sync.Once
}

var _ core.Processor = (*Cluster)(nil)

// New builds the coordinator, spawns the first worker of every slot
// synchronously (so tiles go remote from the first step), and assembles
// the router. A slot whose first spawn fails starts down and respawns
// in the background: graceful degradation begins at construction.
func New(cfg Config) (*Cluster, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	// Validate the semantic engine options once, up front, so every later
	// engine construction (worker assign, fallback rebuild) is infallible.
	if _, err := core.NewEngine(cfg.Shard.Core); err != nil {
		return nil, err
	}
	cl := &Cluster{
		cfg:  cfg,
		m:    newClusterMetrics(cfg.Shard.Core.Metrics, cfg.Clock),
		stop: make(chan struct{}),
	}
	for i := 0; i < cfg.Workers; i++ {
		cl.slots = append(cl.slots, newWorkerSlot(cl, i))
	}
	rows, cols := cfg.Shard.Rows, cfg.Shard.Cols
	if rows == 0 {
		rows = 1
	}
	if cols == 0 {
		cols = 1
	}
	if rows > 0 && cols > 0 {
		cl.tiles = make([]*clusterTile, rows*cols)
	}
	eng, err := shard.NewWithTiles(cfg.Shard, func(tile int, opt core.Options) (shard.Tile, error) {
		t := newClusterTile(cl, tile, opt, cl.slots[tile%cfg.Workers])
		cl.tilesMu.Lock()
		for len(cl.tiles) <= tile {
			cl.tiles = append(cl.tiles, nil)
		}
		cl.tiles[tile] = t
		cl.tilesMu.Unlock()
		return t, nil
	})
	if err != nil {
		return nil, err
	}
	cl.Engine = eng
	// Tiles exist before any demux goroutine starts: spawn the first
	// incarnations only now.
	for _, s := range cl.slots {
		s.nextInc = 1
		var st *slotConn
		if proc, err := cfg.Spawner.Spawn(s.id, 1); err == nil {
			st = s.attach(proc, 1)
		}
		s.wg.Add(1)
		go s.run(st)
	}
	return cl, nil
}

// Close stops the router, every worker process, and the spawner. The
// cluster must not be used afterwards.
func (c *Cluster) Close() error {
	c.closeOnce.Do(func() {
		close(c.stop)
		c.Engine.Close()
		for _, s := range c.slots {
			s.close()
		}
		c.cfg.Spawner.Close()
		for _, s := range c.slots {
			s.wg.Wait()
		}
	})
	return nil
}

// NumWorkersUp returns the number of currently live worker links, for
// tests and monitoring.
func (c *Cluster) NumWorkersUp() int {
	n := 0
	for _, s := range c.slots {
		if s.current() != nil {
			n++
		}
	}
	return n
}

// TilesInFallback returns how many tiles are currently served by their
// in-process fallback engine.
func (c *Cluster) TilesInFallback() int { return int(c.m.fallback.Value()) }

// KillWorker forcefully kills worker slot i's current process, if any —
// a chaos drill: the supervisor detects the death, the slot's tiles
// fall back in-process, and the worker is respawned and resynced.
// Reports whether a live worker was there to kill.
func (c *Cluster) KillWorker(i int) bool {
	if i < 0 || i >= len(c.slots) {
		return false
	}
	st := c.slots[i].current()
	if st == nil {
		return false
	}
	st.proc.Kill()
	return true
}

func (c *Cluster) clock() int64 { return c.cfg.Clock() }

func (c *Cluster) stopped() bool {
	select {
	case <-c.stop:
		return true
	default:
		return false
	}
}

// sleep waits d or until the cluster stops; it reports whether the
// cluster is still running.
func (c *Cluster) sleep(d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-c.stop:
		return false
	}
}

// tile returns the transport of tile id i, or nil for ids the
// coordinator has never attached.
func (c *Cluster) tile(i uint32) *clusterTile {
	c.tilesMu.RLock()
	defer c.tilesMu.RUnlock()
	if int(i) >= len(c.tiles) {
		return nil
	}
	return c.tiles[i]
}

// deliverResult routes a step result to its tile. The channel send
// never blocks: a tile holds at most one outstanding step, so a full
// buffer only ever means stale frames, which the epoch gate discards.
// A result addressed to a retired tile lands in its idle transport's
// buffer and is never read — tile ids are not reused, so it cannot be
// misdelivered.
func (c *Cluster) deliverResult(m wire.ClusterStepResult) {
	t := c.tile(m.Tile)
	if t == nil {
		return
	}
	select {
	case t.resc <- m:
	default:
	}
}

func (c *Cluster) deliverAck(m wire.ClusterResyncAck) {
	t := c.tile(m.Tile)
	if t == nil {
		return
	}
	select {
	case t.ackc <- m:
	default:
	}
}
