package cluster

import (
	"fmt"
	"os"
	"testing"

	"cqp/internal/testutil/leakcheck"
)

// TestMain lets the test binary double as the worker executable: when
// ExecSpawner re-executes it with the CQP_CLUSTER_* environment set,
// the process becomes a tile worker instead of running tests — the same
// dial-back re-exec pattern cmd/cqp-cluster uses. The test path runs
// under leakcheck: a coordinator, slot, or spawner goroutine that
// outlives its Close fails the package.
func TestMain(m *testing.M) {
	if handled, err := RunWorkerFromEnv(); handled {
		if err != nil {
			fmt.Fprintln(os.Stderr, "cluster worker:", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(leakcheck.Run(m))
}

// TestExecSIGKILLBetweenSteps runs the differential workload against
// real worker processes over TCP and SIGKILLs live workers between
// steps — the abrupt, no-goodbye death the failure model is built
// around. The merged stream must stay bit-identical to the in-process
// sharded engine's through every kill, and the cluster must heal fully
// (processes respawned, tiles resynced back) while staying identical.
func TestExecSIGKILLBetweenSteps(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real processes")
	}
	spawner, err := NewExecSpawner([]string{os.Args[0]})
	if err != nil {
		t.Fatal(err)
	}
	kills := map[int]int{8: 0, 9: 1, 20: 0}
	killed := 0
	runClusterDifferential(t, clusterDiffConfig{
		seed: 6, rows: 2, cols: 2, workers: 2, steps: 32, settle: true,
		spawner: spawner,
		disturb: func(step int, cl *Cluster) {
			if slot, ok := kills[step]; ok && cl.KillWorker(slot) {
				killed++ // SIGKILL: execProcess.Kill never asks nicely
			}
		},
	})
	if killed == 0 {
		t.Fatal("no worker was ever up to kill")
	}
}

// TestExecWorkerRespawnIncarnations checks the dial-back routing under
// churn: every respawn negotiates a fresh incarnation, and the slot
// only ever trusts the incarnation it spawned.
func TestExecWorkerRespawnIncarnations(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real processes")
	}
	spawner, err := NewExecSpawner([]string{os.Args[0]})
	if err != nil {
		t.Fatal(err)
	}
	// Two kills, each delivered only once the slot is actually live again
	// (steps outpace respawn, so fixed step numbers could hit a dead slot).
	kills := 0
	runClusterDifferential(t, clusterDiffConfig{
		seed: 8, rows: 1, cols: 2, workers: 1, steps: 24, settle: true,
		spawner: spawner,
		disturb: func(step int, cl *Cluster) {
			if step >= 6 && kills < 2 && cl.KillWorker(0) {
				kills++
			}
		},
		after: func(cl *Cluster) {
			st := cl.slots[0].current()
			if st == nil {
				t.Fatal("slot 0 down after settle")
			}
			if want := uint64(1 + kills); st.incarnation < want {
				t.Errorf("slot 0 incarnation = %d after %d kills, want >= %d", st.incarnation, kills, want)
			}
			// Settling requires the respawned incarnations to have resynced.
			if got := cl.m.resyncs.Value(); got < uint64(kills) {
				t.Errorf("resyncs = %d after %d kills, want >= %d", got, kills, kills)
			}
		},
	})
	if kills == 0 {
		t.Fatal("no kill was ever delivered")
	}
}
