package trace

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"

	"cqp/internal/core"
	"cqp/internal/geo"
)

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WriteObject(0, 0, 1, geo.Pt(0.5, 0.25), geo.Vec(0.001, -0.002)); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteQuery(0, 0, 7, geo.R(0.1, 0.2, 0.3, 0.4)); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteObject(3, 15, 2, geo.Pt(0, 0), geo.Vector{}); err != nil {
		t.Fatal(err)
	}
	if w.Count() != 3 {
		t.Fatalf("Count = %d", w.Count())
	}

	r := NewReader(&buf)
	rec, err := r.Read()
	if err != nil {
		t.Fatal(err)
	}
	if rec.IsQuery || rec.Object != 1 || rec.Loc != geo.Pt(0.5, 0.25) || rec.Vel != geo.Vec(0.001, -0.002) {
		t.Fatalf("record 1 = %+v", rec)
	}
	ou := rec.ObjectUpdate()
	if ou.ID != 1 || ou.Kind != core.Moving {
		t.Fatalf("ObjectUpdate = %+v", ou)
	}

	rec, err = r.Read()
	if err != nil {
		t.Fatal(err)
	}
	if !rec.IsQuery || rec.Query != 7 || rec.Region != geo.R(0.1, 0.2, 0.3, 0.4) {
		t.Fatalf("record 2 = %+v", rec)
	}
	qu := rec.QueryUpdate()
	if qu.ID != 7 || qu.Kind != core.Range {
		t.Fatalf("QueryUpdate = %+v", qu)
	}

	rec, err = r.Read()
	if err != nil || rec.Tick != 3 || rec.Time != 15 {
		t.Fatalf("record 3 = %+v, %v", rec, err)
	}
	if _, err := r.Read(); !errors.Is(err, io.EOF) {
		t.Fatalf("EOF expected, got %v", err)
	}
}

func TestCommentsAndBlanksSkipped(t *testing.T) {
	in := "# header\n\nO,0,0.000,1,0.1,0.1,0,0\n   \n# trailing\n"
	r := NewReader(strings.NewReader(in))
	if _, err := r.Read(); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Read(); !errors.Is(err, io.EOF) {
		t.Fatalf("EOF expected, got %v", err)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"O,0,0,1,0.1,0.1,0",          // too few fields
		"X,0,0,1,0.1,0.1,0,0",        // unknown kind
		"O,zero,0,1,0.1,0.1,0,0",     // bad tick
		"O,0,zero,1,0.1,0.1,0,0",     // bad time
		"O,0,0,minusone,0.1,0.1,0,0", // bad id
		"O,0,0,1,zero,0.1,0,0",       // bad coordinate
	}
	for _, c := range cases {
		r := NewReader(strings.NewReader(c + "\n"))
		if _, err := r.Read(); err == nil || errors.Is(err, io.EOF) {
			t.Errorf("line %q: expected parse error, got %v", c, err)
		}
	}
}
