package trace

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"

	"cqp/internal/geo"
)

// FuzzReader feeds arbitrary text to the trace reader: it must never
// panic, and every record it accepts must survive a write/read round
// trip.
func FuzzReader(f *testing.F) {
	f.Add("O,0,0.000,1,0.5,0.5,0.001,0.002\n")
	f.Add("Q,3,15.000,7,0.1,0.2,0.3,0.4\n")
	f.Add("# comment\n\nO,1,1,1,1,1,1,1\n")
	f.Add("garbage")
	f.Add("O,0,0,1,0.1,0.1,0,0,extra\n")

	f.Fuzz(func(t *testing.T, input string) {
		r := NewReader(strings.NewReader(input))
		for {
			rec, err := r.Read()
			if errors.Is(err, io.EOF) {
				return
			}
			if err != nil {
				return // parse errors are fine
			}
			// Round trip.
			var buf bytes.Buffer
			w := NewWriter(&buf)
			var werr error
			if rec.IsQuery {
				werr = w.WriteQuery(rec.Tick, rec.Time, rec.Query, rec.Region)
			} else {
				werr = w.WriteObject(rec.Tick, rec.Time, rec.Object, rec.Loc, rec.Vel)
			}
			if werr != nil {
				t.Fatalf("re-write failed: %v", werr)
			}
			again, err := NewReader(&buf).Read()
			if err != nil {
				t.Fatalf("re-read failed: %v", err)
			}
			if again.IsQuery != rec.IsQuery || again.Tick != rec.Tick {
				t.Fatalf("round trip changed record: %+v vs %+v", rec, again)
			}
			// Coordinates survive within the format's printed precision.
			const eps = 1e-6
			if !rec.IsQuery && again.Loc.Dist(rec.Loc) > eps {
				t.Fatalf("location drifted: %v vs %v", rec.Loc, again.Loc)
			}
			if rec.IsQuery {
				d := geo.Pt(again.Region.MinX, again.Region.MinY).
					Dist(geo.Pt(rec.Region.MinX, rec.Region.MinY))
				if d > eps {
					t.Fatalf("region drifted: %v vs %v", rec.Region, again.Region)
				}
			}
		}
	})
}
