// Package client is the subscriber-side library for the location-aware
// server. It maintains, per continuous query, the incrementally
// reconstructed answer and the committed snapshot that powers out-of-sync
// recovery: on reconnection the client rolls its answers back to the last
// commit point and asks the server for the committed→current diff,
// receiving the complete answer only when the checksum handshake detects
// divergence.
//
// With Options.AutoReconnect the client treats a dead connection as the
// paper's out-of-sync condition: it redials with jittered exponential
// backoff and resumes through the wakeup recovery path, with no
// application involvement beyond observing the events.
package client

import (
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net"
	"sort"
	"sync"
	"time"

	"cqp/internal/core"
	"cqp/internal/obs"
	"cqp/internal/wire"
)

// EventKind classifies events delivered on the Events channel.
type EventKind uint8

const (
	// EventUpdates is a routine incremental batch.
	EventUpdates EventKind = iota + 1
	// EventRecovered is the incremental diff that completed a recovery.
	EventRecovered
	// EventFullAnswer is a complete answer (recovery fallback).
	EventFullAnswer
	// EventDisconnected reports that the connection died; the client may
	// Reconnect (or, with AutoReconnect, is already retrying).
	EventDisconnected
	// EventCommitted acknowledges a Commit: the server's committed answer
	// now equals the client's snapshot.
	EventCommitted
	// EventStats answers a RequestStats call.
	EventStats
	// EventReconnectFailed reports that automatic reconnection exhausted
	// RetryPolicy.MaxAttempts; the client stays disconnected until a
	// manual Reconnect.
	EventReconnectFailed
)

// Event is one notification from the read loop. After the event has been
// delivered the answers visible through Answer already reflect it.
type Event struct {
	Kind    EventKind
	Time    float64
	Updates []core.Update // EventUpdates, EventRecovered
	Query   core.QueryID  // EventFullAnswer
	Err     error         // EventDisconnected, EventReconnectFailed

	// Stats carries the server statistics of an EventStats.
	Stats *ServerStats
}

// ServerStats is the server-side view returned by RequestStats.
type ServerStats struct {
	Stats   core.Stats
	Objects int
	Queries int
	Uptime  float64
}

// RetryPolicy shapes the jittered exponential backoff of automatic
// reconnection. The zero value picks the defaults noted per field.
type RetryPolicy struct {
	InitialBackoff time.Duration // delay before the first retry (default 100ms)
	MaxBackoff     time.Duration // backoff ceiling (default 5s)
	Multiplier     float64       // backoff growth factor (default 2)
	Jitter         float64       // ± fraction applied to each delay (default 0.2)
	MaxAttempts    int           // give up after this many attempts (default 0 = never)
	Seed           int64         // jitter randomness seed (default 1), fixed for reproducible tests
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.InitialBackoff <= 0 {
		p.InitialBackoff = 100 * time.Millisecond
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = 5 * time.Second
	}
	if p.Multiplier <= 1 {
		p.Multiplier = 2
	}
	if p.Jitter <= 0 {
		p.Jitter = 0.2
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
	return p
}

// backoff returns the jittered delay preceding reconnect attempt n
// (1-based).
func (p RetryPolicy) backoff(attempt int, rng *rand.Rand) time.Duration {
	d := float64(p.InitialBackoff) * math.Pow(p.Multiplier, float64(attempt-1))
	if ceil := float64(p.MaxBackoff); d > ceil {
		d = ceil
	}
	if p.Jitter > 0 {
		d *= 1 + p.Jitter*(2*rng.Float64()-1)
	}
	return time.Duration(d)
}

// Options parameterizes DialOptions. The zero value reproduces Dial's
// behavior: plain TCP, no automatic reconnection, no read deadline.
type Options struct {
	// Dialer overrides how connections are established (fault injection,
	// proxies, in-memory transports). Defaults to a plain TCP dial.
	Dialer func(addr string) (net.Conn, error)

	// AutoReconnect redials after a lost connection using Retry, resuming
	// through the out-of-sync wakeup protocol.
	AutoReconnect bool

	// Retry shapes AutoReconnect's backoff.
	Retry RetryPolicy

	// ReadTimeout is the per-message read deadline; a server silent for
	// longer counts as disconnected. Zero disables the deadline. When
	// set it should comfortably exceed the server's heartbeat interval.
	ReadTimeout time.Duration

	// Metrics, when non-nil, registers the client's frame and
	// reconnection counters in the given registry.
	Metrics *obs.Registry

	// OnApplied, when non-nil, is invoked from the read loop immediately
	// after a batch of incremental updates (EventUpdates or
	// EventRecovered) has been folded into the local answers, before the
	// corresponding event is delivered. Load harnesses use it to stamp
	// delivery latency without racing the Events consumer. The callback
	// runs without the client lock held but must be fast: it blocks the
	// read loop.
	OnApplied func(updates []core.Update)
}

// ErrClosed is returned by operations on a Close()d client.
var ErrClosed = errors.New("client: use of closed client")

// queryView is the client-side state of one continuous query.
type queryView struct {
	def      core.QueryUpdate
	answer   map[core.ObjectID]struct{}
	snapshot map[core.ObjectID]struct{} // state at the last commit point
}

// Client is a connection to the location-aware server. All methods are
// safe for concurrent use.
type Client struct {
	addr string
	opts Options
	dial func(addr string) (net.Conn, error)
	m    *clientMetrics

	mu      sync.Mutex
	conn    net.Conn
	w       *wire.Writer
	queries map[core.QueryID]*queryView
	rng     *rand.Rand // backoff jitter; guarded by mu

	events   chan Event
	wg       sync.WaitGroup
	retryWG  sync.WaitGroup
	closed   bool
	closedCh chan struct{}
}

// Dial connects to a server with default options.
func Dial(addr string) (*Client, error) { return DialOptions(addr, Options{}) }

// DialOptions connects to a server with explicit lifecycle options.
func DialOptions(addr string, opts Options) (*Client, error) {
	opts.Retry = opts.Retry.withDefaults()
	dial := opts.Dialer
	if dial == nil {
		dial = func(a string) (net.Conn, error) { return net.Dial("tcp", a) }
	}
	conn, err := dial(addr)
	if err != nil {
		return nil, fmt.Errorf("client: dial: %w", err)
	}
	c := &Client{
		addr:     addr,
		opts:     opts,
		dial:     dial,
		m:        newClientMetrics(opts.Metrics),
		conn:     conn,
		w:        wire.NewWriter(conn),
		queries:  make(map[core.QueryID]*queryView),
		rng:      rand.New(rand.NewSource(opts.Retry.Seed)),
		events:   make(chan Event, 64),
		closedCh: make(chan struct{}),
	}
	c.wg.Add(1)
	go c.readLoop(conn)
	return c, nil
}

// Events returns the notification channel. It is closed by Close. Slow
// consumers block the read loop, applying natural backpressure.
func (c *Client) Events() <-chan Event { return c.events }

// Close tears the connection down, stops any pending automatic
// reconnection, and closes the Events channel.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	conn := c.conn
	close(c.closedCh)
	c.mu.Unlock()
	err := conn.Close()
	c.wg.Wait()
	c.retryWG.Wait()
	close(c.events)
	return err
}

// ReportObject sends an object report.
func (c *Client) ReportObject(u core.ObjectUpdate) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	//lint:allow locksend c.mu is what serializes callers on the shared wire.Writer; the conn carries a write deadline, so a stalled server errors the write rather than wedging the client
	err := c.w.Write(wire.ObjectReport{Update: u})
	if err == nil {
		c.m.framesOut.Inc()
	}
	return err
}

// RegisterQuery registers (or moves) a continuous query and subscribes
// this connection to its updates. Mirroring the server's implicit commit
// on hearing from a query, the current answer becomes the client's commit
// snapshot.
func (c *Client) RegisterQuery(u core.QueryUpdate) error {
	if u.Remove {
		return c.RemoveQuery(u.ID)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	v, ok := c.queries[u.ID]
	if !ok {
		v = &queryView{
			answer:   make(map[core.ObjectID]struct{}),
			snapshot: make(map[core.ObjectID]struct{}),
		}
		c.queries[u.ID] = v
	}
	v.def = u
	v.snapshot = copySet(v.answer)
	//lint:allow locksend c.mu serializes writers on the shared wire.Writer; writes are deadline-bounded
	err := c.w.Write(wire.QueryReport{Update: u})
	if err == nil {
		c.m.framesOut.Inc()
	}
	return err
}

// RemoveQuery deregisters a query.
func (c *Client) RemoveQuery(id core.QueryID) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.queries, id)
	//lint:allow locksend c.mu serializes writers on the shared wire.Writer; writes are deadline-bounded
	err := c.w.Write(wire.QueryReport{Update: core.QueryUpdate{ID: id, Remove: true}})
	if err == nil {
		c.m.framesOut.Inc()
	}
	return err
}

// Commit acknowledges the stream of query q: the current answer becomes
// the commit snapshot locally and, checksum permitting, the committed
// answer on the server. Stationary queries call this periodically (the
// paper's explicit commit messages); moving queries commit implicitly by
// reporting.
func (c *Client) Commit(q core.QueryID) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	v, ok := c.queries[q]
	if !ok {
		return fmt.Errorf("client: commit of unknown query %d", q)
	}
	v.snapshot = copySet(v.answer)
	//lint:allow locksend c.mu serializes writers on the shared wire.Writer; writes are deadline-bounded
	err := c.w.Write(wire.Commit{Query: q, Checksum: checksumSet(v.answer)})
	if err == nil {
		c.m.framesOut.Inc()
	}
	return err
}

// Answer returns the current answer of q in ascending order, or ok=false
// for an unknown query.
func (c *Client) Answer(q core.QueryID) ([]core.ObjectID, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	v, ok := c.queries[q]
	if !ok {
		return nil, false
	}
	out := make([]core.ObjectID, 0, len(v.answer))
	for id := range v.answer {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, true
}

// RequestStats asks the server for its statistics; the response arrives
// as an EventStats on the Events channel.
func (c *Client) RequestStats() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	//lint:allow locksend c.mu serializes writers on the shared wire.Writer; writes are deadline-bounded
	err := c.w.Write(wire.StatsRequest{})
	if err == nil {
		c.m.framesOut.Inc()
	}
	return err
}

// Drop severs the connection without closing the client, simulating the
// battery or signal loss of the paper's out-of-sync clients: updates the
// server emits while dropped are lost. The read loop emits
// EventDisconnected; call Reconnect to resynchronize (with AutoReconnect
// the client resynchronizes by itself).
func (c *Client) Drop() error {
	c.mu.Lock()
	conn := c.conn
	c.mu.Unlock()
	return conn.Close()
}

// Reconnect dials addr again after a disconnection and runs the
// out-of-sync recovery protocol for every registered query: each answer
// is rolled back to its commit snapshot and a wakeup (carrying the query
// definition and the snapshot checksum) is sent. The server responds with
// either an incremental recovery diff or a full answer; both arrive as
// events and leave the answers synchronized.
func (c *Client) Reconnect(addr string) error {
	conn, err := c.dial(addr)
	if err != nil {
		return fmt.Errorf("client: reconnect: %w", err)
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		conn.Close()
		return ErrClosed
	}
	c.conn.Close() // stop any stale read loop
	c.conn = conn
	c.w = wire.NewWriter(conn)

	type wakeup struct{ m wire.Wakeup }
	var wakeups []wakeup
	for _, v := range c.queries {
		v.answer = copySet(v.snapshot) // roll back to the commit point
		wakeups = append(wakeups, wakeup{wire.Wakeup{
			Update:   v.def,
			Checksum: checksumSet(v.snapshot),
		}})
	}
	for _, wk := range wakeups {
		if err := c.w.Write(wk.m); err != nil {
			c.mu.Unlock()
			return fmt.Errorf("client: send wakeup: %w", err)
		}
		c.m.framesOut.Inc()
	}
	c.mu.Unlock()
	c.m.reconnects.Inc()

	c.wg.Wait() // ensure the old read loop has fully exited
	c.wg.Add(1)
	go c.readLoop(conn)
	return nil
}

// reconnectLoop retries Reconnect with jittered exponential backoff until
// it succeeds, the client is closed, or MaxAttempts is exhausted. At most
// one reconnectLoop runs at a time: it is only spawned by a dying read
// loop, and a new read loop only exists once reconnection succeeded.
func (c *Client) reconnectLoop() {
	defer c.retryWG.Done()
	p := c.opts.Retry
	var lastErr error
	for attempt := 1; p.MaxAttempts == 0 || attempt <= p.MaxAttempts; attempt++ {
		c.mu.Lock()
		d := p.backoff(attempt, c.rng)
		c.mu.Unlock()
		select {
		case <-c.closedCh:
			return
		case <-time.After(d):
		}
		err := c.Reconnect(c.addr)
		if err == nil {
			return
		}
		if errors.Is(err, ErrClosed) {
			return
		}
		lastErr = err
	}
	c.m.reconnectFailures.Inc()
	c.events <- Event{Kind: EventReconnectFailed, Err: lastErr}
}

func (c *Client) readLoop(conn net.Conn) {
	defer c.wg.Done()
	r := wire.NewReader(conn)
	for {
		if c.opts.ReadTimeout > 0 {
			conn.SetReadDeadline(time.Now().Add(c.opts.ReadTimeout))
		}
		msg, err := r.Read()
		if err != nil {
			c.mu.Lock()
			closed := c.closed
			stale := c.conn != conn
			c.mu.Unlock()
			if closed || stale {
				return
			}
			if errors.Is(err, io.EOF) || errors.Is(err, net.ErrClosed) {
				err = nil
			}
			c.m.disconnects.Inc()
			if c.opts.AutoReconnect {
				c.retryWG.Add(1)
				go c.reconnectLoop()
			}
			c.events <- Event{Kind: EventDisconnected, Err: err}
			return
		}
		c.m.framesIn.Inc()
		c.apply(msg)
	}
}

// apply integrates a server message into the local answers and emits the
// corresponding event.
func (c *Client) apply(msg wire.Message) {
	c.mu.Lock()
	var ev Event
	switch m := msg.(type) {
	case wire.UpdateBatch:
		c.applyUpdates(m.Updates)
		ev = Event{Kind: EventUpdates, Time: m.Time, Updates: m.Updates}
	case wire.RecoveryDiff:
		c.applyUpdates(m.Updates)
		// Recovery commits on the server; mirror it for the queries the
		// diff touched (untouched queries already satisfy answer ==
		// snapshot, since they were rolled back at reconnect).
		for _, u := range m.Updates {
			if v, ok := c.queries[u.Query]; ok {
				v.snapshot = copySet(v.answer)
			}
		}
		ev = Event{Kind: EventRecovered, Time: m.Time, Updates: m.Updates}
	case wire.FullAnswer:
		v, ok := c.queries[m.Query]
		if ok {
			v.answer = make(map[core.ObjectID]struct{}, len(m.Objects))
			for _, id := range m.Objects {
				v.answer[id] = struct{}{}
			}
			v.snapshot = copySet(v.answer)
		}
		ev = Event{Kind: EventFullAnswer, Time: m.Time, Query: m.Query}
	case wire.CommitAck:
		ev = Event{Kind: EventCommitted, Query: m.Query}
	case wire.Heartbeat:
		// Echo so the server's read deadline sees a live peer; invisible
		// to the application. A write failure here is the read loop's
		// problem to notice.
		//lint:allow locksend c.mu serializes writers on the shared wire.Writer; writes are deadline-bounded
		if err := c.w.Write(wire.Heartbeat{Time: m.Time}); err == nil {
			c.m.framesOut.Inc()
		}
		c.mu.Unlock()
		return
	case wire.StatsResponse:
		ev = Event{Kind: EventStats, Time: m.Uptime, Stats: &ServerStats{
			Stats:   m.Stats,
			Objects: int(m.Objects),
			Queries: int(m.Queries),
			Uptime:  m.Uptime,
		}}
	default:
		c.mu.Unlock()
		return
	}
	c.mu.Unlock()
	if c.opts.OnApplied != nil && (ev.Kind == EventUpdates || ev.Kind == EventRecovered) {
		c.opts.OnApplied(ev.Updates)
	}
	c.events <- ev
}

func (c *Client) applyUpdates(updates []core.Update) {
	c.m.updatesApplied.Add(uint64(len(updates)))
	for _, u := range updates {
		v, ok := c.queries[u.Query]
		if !ok {
			continue
		}
		if u.Positive {
			v.answer[u.Object] = struct{}{}
		} else {
			delete(v.answer, u.Object)
		}
	}
}

func copySet(s map[core.ObjectID]struct{}) map[core.ObjectID]struct{} {
	out := make(map[core.ObjectID]struct{}, len(s))
	for k := range s {
		out[k] = struct{}{}
	}
	return out
}

func checksumSet(s map[core.ObjectID]struct{}) uint64 {
	ids := make([]core.ObjectID, 0, len(s))
	for id := range s {
		ids = append(ids, id)
	}
	return core.ChecksumIDs(ids)
}
