package client

import "cqp/internal/obs"

// clientMetrics are the subscriber library's instruments, resolved once
// at DialOptions time (a nil Options.Metrics yields detached
// instruments). Frame counters mirror the server's: in a healthy
// session client.frames_out equals the server's frames_in and vice
// versa, which the end-to-end pipeline test asserts.
type clientMetrics struct {
	framesIn  *obs.Counter
	framesOut *obs.Counter

	disconnects       *obs.Counter // read-loop terminations with the client still open
	reconnects        *obs.Counter // successful Reconnect completions
	reconnectFailures *obs.Counter // retry loops that exhausted MaxAttempts

	updatesApplied *obs.Counter // incremental updates folded into answers
}

func newClientMetrics(reg *obs.Registry) *clientMetrics {
	return &clientMetrics{
		framesIn:          reg.Counter("client.frames_in"),
		framesOut:         reg.Counter("client.frames_out"),
		disconnects:       reg.Counter("client.disconnects"),
		reconnects:        reg.Counter("client.reconnects"),
		reconnectFailures: reg.Counter("client.reconnect_failures"),
		updatesApplied:    reg.Counter("client.updates.applied"),
	}
}
