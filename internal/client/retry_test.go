package client

import (
	"math/rand"
	"testing"
	"time"
)

func TestRetryPolicyDefaults(t *testing.T) {
	p := RetryPolicy{}.withDefaults()
	if p.InitialBackoff != 100*time.Millisecond || p.MaxBackoff != 5*time.Second ||
		p.Multiplier != 2 || p.Jitter != 0.2 || p.MaxAttempts != 0 || p.Seed != 1 {
		t.Fatalf("defaults = %+v", p)
	}
	// Explicit values survive.
	q := RetryPolicy{InitialBackoff: time.Second, MaxAttempts: 3}.withDefaults()
	if q.InitialBackoff != time.Second || q.MaxAttempts != 3 {
		t.Fatalf("explicit values clobbered: %+v", q)
	}
}

func TestBackoffDeterministicAndBounded(t *testing.T) {
	p := RetryPolicy{
		InitialBackoff: 10 * time.Millisecond,
		MaxBackoff:     80 * time.Millisecond,
		Multiplier:     2,
		Jitter:         0.25,
		Seed:           42,
	}.withDefaults()
	schedule := func() []time.Duration {
		rng := rand.New(rand.NewSource(p.Seed))
		var out []time.Duration
		for attempt := 1; attempt <= 10; attempt++ {
			out = append(out, p.backoff(attempt, rng))
		}
		return out
	}
	a, b := schedule(), schedule()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("attempt %d: %v != %v (same seed must give same schedule)", i+1, a[i], b[i])
		}
		lo := time.Duration(float64(p.MaxBackoff) * (1 - p.Jitter))
		hi := time.Duration(float64(p.MaxBackoff) * (1 + p.Jitter))
		if a[i] > hi {
			t.Fatalf("attempt %d backoff %v exceeds jittered ceiling %v", i+1, a[i], hi)
		}
		// Once the exponential curve passes the cap, delays sit in the
		// jitter band around MaxBackoff.
		if i >= 4 && a[i] < lo {
			t.Fatalf("attempt %d backoff %v below jittered cap floor %v", i+1, a[i], lo)
		}
	}
	// The curve must actually grow before capping.
	if a[0] >= a[3] {
		t.Fatalf("backoff not growing: %v", a[:4])
	}
}
