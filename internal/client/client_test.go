package client_test

import (
	"io"
	"log"
	"testing"
	"time"

	"cqp/internal/client"
	"cqp/internal/core"
	"cqp/internal/geo"
	"cqp/internal/server"
)

func startServer(t *testing.T) *server.Server {
	t.Helper()
	s, err := server.Listen("127.0.0.1:0", server.Config{
		Engine: core.Options{Bounds: geo.R(0, 0, 10, 10), GridN: 8},
		Logger: log.New(io.Discard, "", 0),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func wait(t *testing.T, c *client.Client, kind client.EventKind) client.Event {
	t.Helper()
	deadline := time.After(5 * time.Second)
	for {
		select {
		case ev, ok := <-c.Events():
			if !ok {
				t.Fatal("events channel closed")
			}
			if ev.Kind == kind {
				return ev
			}
		case <-deadline:
			t.Fatalf("timeout waiting for event %d", kind)
		}
	}
}

func TestDialFailure(t *testing.T) {
	if _, err := client.Dial("127.0.0.1:1"); err == nil {
		t.Error("dial to closed port should fail")
	}
}

func TestAnswerUnknownQuery(t *testing.T) {
	s := startServer(t)
	c, err := client.Dial(s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, ok := c.Answer(99); ok {
		t.Error("unknown query should be !ok")
	}
	if err := c.Commit(99); err == nil {
		t.Error("commit of unknown query should fail")
	}
}

func TestRegisterViaRemoveFlag(t *testing.T) {
	s := startServer(t)
	c, err := client.Dial(s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.RegisterQuery(core.QueryUpdate{ID: 1, Kind: core.Range, Region: geo.R(0, 0, 1, 1)}); err != nil {
		t.Fatal(err)
	}
	// RegisterQuery with Remove set routes to RemoveQuery.
	if err := c.RegisterQuery(core.QueryUpdate{ID: 1, Remove: true}); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Answer(1); ok {
		t.Error("removed query should be forgotten")
	}
}

func TestCloseIsIdempotentAndClosesEvents(t *testing.T) {
	s := startServer(t)
	c, err := client.Dial(s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	if _, ok := <-c.Events(); ok {
		// Drain anything buffered; the channel must eventually close.
		for range c.Events() {
		}
	}
	if err := c.Reconnect(s.Addr().String()); err == nil {
		t.Error("reconnect after close should fail")
	}
}

func TestMultipleQueriesOneConnection(t *testing.T) {
	s := startServer(t)
	c, err := client.Dial(s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	c.ReportObject(core.ObjectUpdate{ID: 1, Kind: core.Moving, Loc: geo.Pt(1, 1)})
	c.ReportObject(core.ObjectUpdate{ID: 2, Kind: core.Moving, Loc: geo.Pt(9, 9)})
	c.RegisterQuery(core.QueryUpdate{ID: 1, Kind: core.Range, Region: geo.R(0, 0, 2, 2)})
	c.RegisterQuery(core.QueryUpdate{ID: 2, Kind: core.Range, Region: geo.R(8, 8, 10, 10)})

	for i := 0; i < 100; i++ {
		s.Evaluate()
		a1, _ := c.Answer(1)
		a2, _ := c.Answer(2)
		if len(a1) == 1 && len(a2) == 1 {
			if a1[0] != 1 || a2[0] != 2 {
				t.Fatalf("answers: %v %v", a1, a2)
			}
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("answers never converged")
}

func TestAutoReconnectAfterDrop(t *testing.T) {
	s := startServer(t)
	addr := s.Addr().String()
	c, err := client.DialOptions(addr, client.Options{
		AutoReconnect: true,
		Retry: client.RetryPolicy{
			InitialBackoff: 5 * time.Millisecond,
			MaxBackoff:     50 * time.Millisecond,
			Seed:           3,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	feed, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer feed.Close()

	feed.ReportObject(core.ObjectUpdate{ID: 1, Kind: core.Moving, Loc: geo.Pt(1, 1)})
	c.RegisterQuery(core.QueryUpdate{ID: 1, Kind: core.Range, Region: geo.R(0, 0, 2, 2)})
	for i := 0; i < 100; i++ {
		s.Evaluate()
		if a, _ := c.Answer(1); len(a) == 1 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	c.Commit(1)
	wait(t, c, client.EventCommitted)

	// Sever the link; no manual Reconnect anywhere below. While away,
	// object 2 enters the region.
	if err := c.Drop(); err != nil {
		t.Fatal(err)
	}
	wait(t, c, client.EventDisconnected)
	feed.ReportObject(core.ObjectUpdate{ID: 2, Kind: core.Moving, Loc: geo.Pt(1.5, 1.5), T: 1})
	for i := 0; i < 100; i++ {
		s.Evaluate()
		if s.Stats().ObjectReports >= 2 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The client reconnects by itself and recovers via the wakeup diff.
	ev := wait(t, c, client.EventRecovered)
	if len(ev.Updates) != 1 || !ev.Updates[0].Positive || ev.Updates[0].Object != 2 {
		t.Fatalf("auto-recovery diff = %v", ev.Updates)
	}
	if ans, _ := c.Answer(1); len(ans) != 2 {
		t.Fatalf("answer after auto-recovery = %v", ans)
	}
}

func TestReconnectFailedAfterMaxAttempts(t *testing.T) {
	s := startServer(t)
	c, err := client.DialOptions(s.Addr().String(), client.Options{
		AutoReconnect: true,
		Retry: client.RetryPolicy{
			InitialBackoff: 2 * time.Millisecond,
			MaxBackoff:     10 * time.Millisecond,
			MaxAttempts:    3,
			Seed:           5,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Kill the server for good: every retry must fail, and after
	// MaxAttempts the client reports that it gave up.
	s.Close()
	wait(t, c, client.EventDisconnected)
	ev := wait(t, c, client.EventReconnectFailed)
	if ev.Err == nil {
		t.Fatal("EventReconnectFailed should carry the last dial error")
	}
}

func TestRecoveryAcrossMultipleQueries(t *testing.T) {
	s := startServer(t)
	addr := s.Addr().String()
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	feed, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer feed.Close()

	feed.ReportObject(core.ObjectUpdate{ID: 1, Kind: core.Moving, Loc: geo.Pt(1, 1)})
	feed.ReportObject(core.ObjectUpdate{ID: 2, Kind: core.Moving, Loc: geo.Pt(9, 9)})
	c.RegisterQuery(core.QueryUpdate{ID: 1, Kind: core.Range, Region: geo.R(0, 0, 2, 2)})
	c.RegisterQuery(core.QueryUpdate{ID: 2, Kind: core.Range, Region: geo.R(8, 8, 10, 10)})
	for i := 0; i < 100; i++ {
		s.Evaluate()
		a1, _ := c.Answer(1)
		a2, _ := c.Answer(2)
		if len(a1) == 1 && len(a2) == 1 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	c.Commit(1)
	wait(t, c, client.EventCommitted)
	c.Commit(2)
	wait(t, c, client.EventCommitted)

	// Drop; both queries change while away.
	c.Drop()
	wait(t, c, client.EventDisconnected)
	feed.ReportObject(core.ObjectUpdate{ID: 1, Kind: core.Moving, Loc: geo.Pt(9.5, 9.5), T: 2})
	feed.ReportObject(core.ObjectUpdate{ID: 2, Kind: core.Moving, Loc: geo.Pt(1.5, 1.5), T: 2})
	for i := 0; i < 100; i++ {
		s.Evaluate()
		if s.Stats().ObjectReports >= 4 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}

	if err := c.Reconnect(addr); err != nil {
		t.Fatal(err)
	}
	// Two recovery diffs arrive (one per query); afterwards both answers
	// match the server.
	wait(t, c, client.EventRecovered)
	wait(t, c, client.EventRecovered)
	a1, _ := c.Answer(1)
	a2, _ := c.Answer(2)
	if len(a1) != 1 || a1[0] != 2 {
		t.Fatalf("Q1 after recovery: %v", a1)
	}
	if len(a2) != 1 || a2[0] != 1 {
		t.Fatalf("Q2 after recovery: %v", a2)
	}
}

func TestOnAppliedHook(t *testing.T) {
	s := startServer(t)

	applied := make(chan []core.Update, 16)
	c, err := client.DialOptions(s.Addr().String(), client.Options{
		OnApplied: func(updates []core.Update) {
			cp := make([]core.Update, len(updates))
			copy(cp, updates)
			applied <- cp
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	c.RegisterQuery(core.QueryUpdate{ID: 1, Kind: core.Range, Region: geo.R(0, 0, 2, 2)})
	c.ReportObject(core.ObjectUpdate{ID: 7, Kind: core.Moving, Loc: geo.Pt(1, 1)})

	deadline := time.After(5 * time.Second)
	for {
		s.Evaluate()
		select {
		case batch := <-applied:
			// The hook fires after the batch is folded into the local
			// answer: the answer must already contain the object.
			if len(batch) != 1 || batch[0].Object != 7 || !batch[0].Positive {
				t.Fatalf("applied batch = %+v", batch)
			}
			if a, _ := c.Answer(1); len(a) != 1 || a[0] != 7 {
				t.Fatalf("answer at hook delivery = %v", a)
			}
			// The event itself still arrives afterwards.
			wait(t, c, client.EventUpdates)
			return
		case <-deadline:
			t.Fatal("OnApplied never fired")
		case <-time.After(10 * time.Millisecond):
		}
	}
}
