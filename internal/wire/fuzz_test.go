package wire

import (
	"bytes"
	"testing"

	"cqp/internal/core"
	"cqp/internal/geo"
)

// FuzzDecode feeds arbitrary frames to the reader: it must never panic,
// and any message it accepts must re-encode and re-decode to the same
// message (round-trip stability on the accepted subset).
func FuzzDecode(f *testing.F) {
	// Seed with every valid message type.
	seeds := []Message{
		ObjectReport{Update: core.ObjectUpdate{ID: 1, Kind: core.Moving, Loc: geo.Pt(1, 2), T: 3}},
		ObjectReport{Update: core.ObjectUpdate{
			ID: 2, Kind: core.Predictive, Loc: geo.Pt(1, 2), Vel: geo.Vec(0.1, 0.2), T: 3,
			Waypoints: []geo.TimedPoint{{P: geo.Pt(4, 5), T: 6}},
		}},
		QueryReport{Update: core.QueryUpdate{ID: 3, Kind: core.Range, Region: geo.R(0, 0, 1, 1)}},
		Commit{Query: 4, Checksum: 5},
		CommitAck{Query: 4, Checksum: 5},
		Wakeup{Update: core.QueryUpdate{ID: 6, Kind: core.KNN, Focal: geo.Pt(1, 1), K: 2}, Checksum: 7},
		UpdateBatch{Time: 8, Updates: []core.Update{{Query: 1, Object: 2, Positive: true}}},
		RecoveryDiff{Time: 9},
		FullAnswer{Query: 10, Time: 11, Objects: []core.ObjectID{1, 2, 3}},
	}
	for _, m := range seeds {
		var buf bytes.Buffer
		if err := NewWriter(&buf).Write(m); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
		// Hostile variants of every valid frame: truncations (a stalled or
		// partially-written connection) and single-bit flips (corruption
		// in transit).
		frame := buf.Bytes()
		f.Add(frame[:len(frame)/2])
		f.Add(frame[:len(frame)-1])
		for _, bit := range []int{0, 7, len(frame)*4 + 1, len(frame)*8 - 1} {
			mut := append([]byte(nil), frame...)
			mut[bit/8] ^= 1 << (bit % 8)
			f.Add(mut)
		}
	}
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0x01})
	// A maximal claimed length with no payload behind it.
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0x03, byte(MsgUpdateBatch)})

	f.Fuzz(func(t *testing.T, data []byte) {
		msg, err := NewReader(bytes.NewReader(data)).Read()
		if err != nil {
			return // rejected input is fine; panics are not
		}
		// Accepted: must round-trip. Compare the canonical encodings rather
		// than the structs — NaN payloads are legal on the wire but are not
		// reflect.DeepEqual to themselves.
		var buf bytes.Buffer
		if err := NewWriter(&buf).Write(msg); err != nil {
			t.Fatalf("re-encode of accepted message failed: %v", err)
		}
		first := append([]byte(nil), buf.Bytes()...)
		again, err := NewReader(&buf).Read()
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		var buf2 bytes.Buffer
		if err := NewWriter(&buf2).Write(again); err != nil {
			t.Fatalf("second re-encode failed: %v", err)
		}
		if !bytes.Equal(first, buf2.Bytes()) {
			t.Fatalf("round trip changed encoding:\n first %x\nsecond %x", first, buf2.Bytes())
		}
	})
}
