package wire

import (
	"bytes"
	"testing"

	"cqp/internal/core"
	"cqp/internal/geo"
)

// FuzzRoundTrip is the complement of FuzzDecode: instead of starting
// from hostile bytes, it drives the writer with arbitrary structured
// messages. Every message the writer can produce must decode and
// re-encode to the byte-identical frame — the protocol admits exactly
// one encoding per message, which is what makes the server's update
// streams reproducible and the out-of-sync checksum handshake sound.
func FuzzRoundTrip(f *testing.F) {
	for sel := byte(0); sel < 18; sel++ {
		f.Add(sel, uint64(1), uint64(2), 0.5, 1.5, -0.25, 42.0, false, uint(3))
	}
	f.Add(byte(1), uint64(9), uint64(8), -1.0, 2.0, 0.5, -3.0, true, uint(17))
	f.Add(byte(14), uint64(7), uint64(3), 0.0, 1.0, 0.25, 9.0, true, uint(5))
	// Dedicated corners for the cluster control frames: a retirement at
	// the tile/epoch extremes, and an assignment with a non-default halo
	// region, speed bound, and replica flag — the fields whose ordering
	// the resync checksum (and the wiresym analyzer) guards.
	f.Add(byte(11), uint64(1)<<32-1, ^uint64(0), 0.0, 0.0, 0.0, 0.0, false, uint(0))
	f.Add(byte(13), uint64(5), uint64(1), 0.125, 0.25, 0.5, 75.0, true, uint(63))

	f.Fuzz(func(t *testing.T, sel byte, a, b uint64, x, y, z, tm float64, flag bool, n uint) {
		m := buildFuzzMessage(sel, a, b, x, y, z, tm, flag, n)

		var buf bytes.Buffer
		if err := NewWriter(&buf).Write(m); err != nil {
			t.Fatalf("encode failed for %T: %v", m, err)
		}
		first := append([]byte(nil), buf.Bytes()...)
		if want := EncodedSize(m); want != len(first) {
			t.Errorf("EncodedSize(%T) = %d, frame is %d bytes", m, want, len(first))
		}

		dec, err := NewReader(bytes.NewReader(first)).Read()
		if err != nil {
			t.Fatalf("decode of encoder output failed for %T: %v", m, err)
		}
		var buf2 bytes.Buffer
		if err := NewWriter(&buf2).Write(dec); err != nil {
			t.Fatalf("re-encode failed for %T: %v", dec, err)
		}
		if !bytes.Equal(first, buf2.Bytes()) {
			t.Fatalf("round trip changed encoding of %T:\n first %x\nsecond %x", m, first, buf2.Bytes())
		}
	})
}

// buildFuzzMessage derives one structured message of every protocol
// type from the fuzzer's scalars.
func buildFuzzMessage(sel byte, a, b uint64, x, y, z, tm float64, flag bool, n uint) Message {
	k := int(n % 4)
	wps := make([]geo.TimedPoint, 0, k)
	for i := 0; i < k; i++ {
		wps = append(wps, geo.TimedPoint{P: geo.Pt(x+float64(i), y-float64(i)), T: tm + float64(i)})
	}
	qu := core.QueryUpdate{
		ID: core.QueryID(a), Kind: core.QueryKind(n % 3),
		Region: geo.Rect{MinX: x, MinY: y, MaxX: x + z, MaxY: y + z},
		Focal:  geo.Pt(y, x), K: int(b % 64), T1: tm, T2: tm + z, T: tm, Remove: flag,
	}
	switch sel % 18 {
	case 0:
		return ObjectReport{Update: core.ObjectUpdate{
			ID: core.ObjectID(a), Kind: core.ObjectKind(n % 3),
			Loc: geo.Pt(x, y), Vel: geo.Vec(z, -z), T: tm,
		}}
	case 1:
		return ObjectReport{Update: core.ObjectUpdate{
			ID: core.ObjectID(a), Kind: core.Predictive,
			Loc: geo.Pt(x, y), Vel: geo.Vec(z, -z), T: tm, Waypoints: wps,
		}}
	case 2:
		return ObjectReport{Update: core.ObjectUpdate{ID: core.ObjectID(a), Remove: true, T: tm}}
	case 3:
		return QueryReport{Update: qu}
	case 4:
		return Commit{Query: core.QueryID(a), Checksum: b}
	case 5:
		return CommitAck{Query: core.QueryID(a), Checksum: b}
	case 6:
		return Wakeup{Update: qu, Checksum: b}
	case 7, 8:
		us := make([]core.Update, 0, k)
		for i := 0; i < k; i++ {
			us = append(us, core.Update{
				Query: core.QueryID(a + uint64(i)), Object: core.ObjectID(b - uint64(i)),
				Positive: flag != (i%2 == 0),
			})
		}
		if sel%18 == 7 {
			return UpdateBatch{Time: tm, Updates: us}
		}
		return RecoveryDiff{Time: tm, Updates: us}
	case 9:
		ids := make([]core.ObjectID, 0, k)
		for i := 0; i < k; i++ {
			ids = append(ids, core.ObjectID(a+uint64(i)))
		}
		return FullAnswer{Query: core.QueryID(a), Time: tm, Objects: ids}
	case 10:
		return Heartbeat{Time: tm}
	case 11:
		return ClusterRetire{Tile: uint32(a), Epoch: b}
	case 12:
		return ClusterHello{Worker: uint32(a), Incarnation: b}
	case 13:
		return ClusterAssign{
			Tile: uint32(a), Epoch: b,
			Bounds: geo.Rect{MinX: x, MinY: y, MaxX: x + z, MaxY: y + z},
			GridN:  uint32(n%128) + 1, PredictiveHorizon: tm,
			Region:   geo.Rect{MinX: x, MinY: y, MaxX: x + z/2, MaxY: y + z/2},
			MaxSpeed: z, Replica: flag,
		}
	case 14, 15:
		objs := make([]core.ObjectUpdate, 0, k)
		for i := 0; i < k; i++ {
			ou := core.ObjectUpdate{
				ID: core.ObjectID(a + uint64(i)), Kind: core.ObjectKind(uint(i) % 3),
				Loc: geo.Pt(x, y+float64(i)), Vel: geo.Vec(z, -z), T: tm, Remove: flag && i == 0,
			}
			if i%2 == 1 {
				ou.Waypoints = wps
			}
			objs = append(objs, ou)
		}
		qrys := make([]core.QueryUpdate, 0, k)
		for i := 0; i < k; i++ {
			q := qu
			q.ID = core.QueryID(b + uint64(i))
			qrys = append(qrys, q)
		}
		if sel%18 == 14 {
			return ClusterStep{Tile: uint32(n), Epoch: a, Time: tm, Objects: objs, Queries: qrys}
		}
		return ClusterResync{
			Tile: uint32(n), Epoch: a, HasStep: flag, LastStep: tm,
			Objects: objs, Queries: qrys,
		}
	case 16:
		us := make([]core.Update, 0, k)
		for i := 0; i < k; i++ {
			us = append(us, core.Update{
				Query: core.QueryID(a + uint64(i)), Object: core.ObjectID(b ^ uint64(i)),
				Positive: flag == (i%2 == 0),
			})
		}
		return ClusterStepResult{
			Tile: uint32(n), Epoch: a, Time: tm, Updates: us,
			KNNRecomputes: a % 97, CandidateChecks: b % 89, RegionEvalCells: (a + b) % 83,
		}
	case 17:
		return ClusterResyncAck{Tile: uint32(a), Epoch: b, Checksum: a ^ b}
	default:
		if flag {
			return StatsRequest{}
		}
		return StatsResponse{
			Stats: core.Stats{
				Steps: a, ObjectReports: b, QueryReports: a ^ b,
				PositiveUpdates: a + b, NegativeUpdates: a - b,
				KNNRecomputes: uint64(n), CandidateChecks: a * 3, RegionEvalCells: b * 5,
			},
			Objects: uint32(a), Queries: uint32(b), Uptime: tm,
		}
	}
}

// FuzzDecode feeds arbitrary frames to the reader: it must never panic,
// and any message it accepts must re-encode and re-decode to the same
// message (round-trip stability on the accepted subset).
func FuzzDecode(f *testing.F) {
	// Seed with every valid message type.
	seeds := []Message{
		ObjectReport{Update: core.ObjectUpdate{ID: 1, Kind: core.Moving, Loc: geo.Pt(1, 2), T: 3}},
		ObjectReport{Update: core.ObjectUpdate{
			ID: 2, Kind: core.Predictive, Loc: geo.Pt(1, 2), Vel: geo.Vec(0.1, 0.2), T: 3,
			Waypoints: []geo.TimedPoint{{P: geo.Pt(4, 5), T: 6}},
		}},
		QueryReport{Update: core.QueryUpdate{ID: 3, Kind: core.Range, Region: geo.R(0, 0, 1, 1)}},
		Commit{Query: 4, Checksum: 5},
		CommitAck{Query: 4, Checksum: 5},
		Wakeup{Update: core.QueryUpdate{ID: 6, Kind: core.KNN, Focal: geo.Pt(1, 1), K: 2}, Checksum: 7},
		UpdateBatch{Time: 8, Updates: []core.Update{{Query: 1, Object: 2, Positive: true}}},
		RecoveryDiff{Time: 9},
		FullAnswer{Query: 10, Time: 11, Objects: []core.ObjectID{1, 2, 3}},
		// Cluster control frames: the hostile variants below exercise the
		// trailing payload checksum (a bit flip must fail the decode, not
		// deliver a silently corrupted tile batch).
		ClusterHello{Worker: 2, Incarnation: 3},
		ClusterAssign{
			Tile: 1, Epoch: 4, Bounds: geo.R(0, 0, 2, 2), GridN: 16, PredictiveHorizon: 50,
			Region: geo.R(0, 0, 1, 2), MaxSpeed: 0.25, Replica: true,
		},
		ClusterStep{
			Tile: 1, Epoch: 4, Time: 5,
			Objects: []core.ObjectUpdate{{ID: 1, Kind: core.Moving, Loc: geo.Pt(0.5, 0.5), T: 5}},
			Queries: []core.QueryUpdate{{ID: 2, Kind: core.Range, Region: geo.R(0, 0, 1, 1), T: 5}},
		},
		ClusterStepResult{
			Tile: 1, Epoch: 4, Time: 5,
			Updates:       []core.Update{{Query: 2, Object: 1, Positive: true}},
			KNNRecomputes: 6, CandidateChecks: 7, RegionEvalCells: 8,
		},
		ClusterResync{
			Tile: 1, Epoch: 5, HasStep: true, LastStep: 5,
			Objects: []core.ObjectUpdate{{ID: 1, Kind: core.Moving, Loc: geo.Pt(0.5, 0.5), T: 5}},
			Queries: []core.QueryUpdate{{ID: 2, Kind: core.Range, Region: geo.R(0, 0, 1, 1), T: 5}},
		},
		ClusterResyncAck{Tile: 1, Epoch: 5, Checksum: 0xdeadbeef},
		ClusterRetire{Tile: 1, Epoch: 6},
	}
	for _, m := range seeds {
		var buf bytes.Buffer
		if err := NewWriter(&buf).Write(m); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
		// Hostile variants of every valid frame: truncations (a stalled or
		// partially-written connection) and single-bit flips (corruption
		// in transit).
		frame := buf.Bytes()
		f.Add(frame[:len(frame)/2])
		f.Add(frame[:len(frame)-1])
		for _, bit := range []int{0, 7, len(frame)*4 + 1, len(frame)*8 - 1} {
			mut := append([]byte(nil), frame...)
			mut[bit/8] ^= 1 << (bit % 8)
			f.Add(mut)
		}
	}
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0x01})
	// A maximal claimed length with no payload behind it.
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0x03, byte(MsgUpdateBatch)})

	f.Fuzz(func(t *testing.T, data []byte) {
		msg, err := NewReader(bytes.NewReader(data)).Read()
		if err != nil {
			return // rejected input is fine; panics are not
		}
		// Accepted: must round-trip. Compare the canonical encodings rather
		// than the structs — NaN payloads are legal on the wire but are not
		// reflect.DeepEqual to themselves.
		var buf bytes.Buffer
		if err := NewWriter(&buf).Write(msg); err != nil {
			t.Fatalf("re-encode of accepted message failed: %v", err)
		}
		first := append([]byte(nil), buf.Bytes()...)
		again, err := NewReader(&buf).Read()
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		var buf2 bytes.Buffer
		if err := NewWriter(&buf2).Write(again); err != nil {
			t.Fatalf("second re-encode failed: %v", err)
		}
		if !bytes.Equal(first, buf2.Bytes()) {
			t.Fatalf("round trip changed encoding:\n first %x\nsecond %x", first, buf2.Bytes())
		}
	})
}
