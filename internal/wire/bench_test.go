package wire

import (
	"bytes"
	"testing"

	"cqp/internal/core"
)

func benchBatch(n int) UpdateBatch {
	m := UpdateBatch{Time: 1}
	for i := 0; i < n; i++ {
		m.Updates = append(m.Updates, core.Update{
			Query: core.QueryID(i % 100), Object: core.ObjectID(i), Positive: i%3 != 0,
		})
	}
	return m
}

func BenchmarkWireEncodeBatch1000(b *testing.B) {
	m := benchBatch(1000)
	var buf bytes.Buffer
	w := NewWriter(&buf)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := w.Write(m); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(EncodedSize(m)))
}

func BenchmarkWireDecodeBatch1000(b *testing.B) {
	m := benchBatch(1000)
	var buf bytes.Buffer
	NewWriter(&buf).Write(m)
	frame := buf.Bytes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewReader(bytes.NewReader(frame)).Read(); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(len(frame)))
}
