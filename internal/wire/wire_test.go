package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"reflect"
	"testing"

	"cqp/internal/core"
	"cqp/internal/geo"
)

func roundTrip(t *testing.T, m Message) Message {
	t.Helper()
	var buf bytes.Buffer
	if err := NewWriter(&buf).Write(m); err != nil {
		t.Fatalf("write %T: %v", m, err)
	}
	got, err := NewReader(&buf).Read()
	if err != nil {
		t.Fatalf("read %T: %v", m, err)
	}
	return got
}

func TestRoundTripAllMessages(t *testing.T) {
	msgs := []Message{
		ObjectReport{Update: core.ObjectUpdate{
			ID: 42, Kind: core.Predictive, Loc: geo.Pt(1.5, -2.25),
			Vel: geo.Vec(0.125, -0.5), T: 99.5,
		}},
		ObjectReport{Update: core.ObjectUpdate{ID: 7, Remove: true}},
		ObjectReport{Update: core.ObjectUpdate{
			ID: 8, Kind: core.Predictive, Loc: geo.Pt(0, 0), T: 1,
			Waypoints: []geo.TimedPoint{{P: geo.Pt(1, 1), T: 2}, {P: geo.Pt(2, 0), T: 4}},
		}},
		QueryReport{Update: core.QueryUpdate{
			ID: 9, Kind: core.Range, Region: geo.R(0, 1, 2, 3), T: 5,
		}},
		QueryReport{Update: core.QueryUpdate{
			ID: 10, Kind: core.KNN, Focal: geo.Pt(4, 5), K: 3, T: 6,
		}},
		QueryReport{Update: core.QueryUpdate{
			ID: 11, Kind: core.PredictiveRange, Region: geo.R(1, 1, 2, 2),
			T1: 10, T2: 20, T: 7,
		}},
		QueryReport{Update: core.QueryUpdate{ID: 12, Remove: true}},
		Commit{Query: 5, Checksum: 0xDEADBEEF},
		CommitAck{Query: 5, Checksum: 0xDEADBEEF},
		Wakeup{Update: core.QueryUpdate{ID: 5, Kind: core.Range, Region: geo.R(0, 0, 1, 1)}, Checksum: 77},
		UpdateBatch{Time: 12.5, Updates: []core.Update{
			{Query: 1, Object: 2, Positive: true},
			{Query: 1, Object: 3, Positive: false},
		}},
		UpdateBatch{Time: 0},
		RecoveryDiff{Time: 3, Updates: []core.Update{{Query: 9, Object: 1, Positive: true}}},
		FullAnswer{Query: 8, Time: 44, Objects: []core.ObjectID{1, 5, 9}},
		FullAnswer{Query: 8, Time: 44},
		StatsRequest{},
		Heartbeat{Time: 33.25},
		StatsResponse{
			Stats:   core.Stats{Steps: 1, ObjectReports: 2, QueryReports: 3, PositiveUpdates: 4, NegativeUpdates: 5, KNNRecomputes: 6, CandidateChecks: 7, RegionEvalCells: 8},
			Objects: 9, Queries: 10, Uptime: 11.5,
		},
	}
	for _, m := range msgs {
		got := roundTrip(t, m)
		want := m
		// Empty slices decode as non-nil empty; normalize.
		if !equalMessages(got, want) {
			t.Errorf("round trip %T:\n got %+v\nwant %+v", m, got, want)
		}
	}
}

func equalMessages(a, b Message) bool {
	norm := func(m Message) Message {
		switch m := m.(type) {
		case UpdateBatch:
			if len(m.Updates) == 0 {
				m.Updates = nil
			}
			return m
		case RecoveryDiff:
			if len(m.Updates) == 0 {
				m.Updates = nil
			}
			return m
		case FullAnswer:
			if len(m.Objects) == 0 {
				m.Objects = nil
			}
			return m
		default:
			return m
		}
	}
	return reflect.DeepEqual(norm(a), norm(b))
}

func TestStreamOfMessages(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for i := 0; i < 100; i++ {
		if err := w.Write(Commit{Query: core.QueryID(i), Checksum: uint64(i * i)}); err != nil {
			t.Fatal(err)
		}
	}
	r := NewReader(&buf)
	for i := 0; i < 100; i++ {
		m, err := r.Read()
		if err != nil {
			t.Fatalf("message %d: %v", i, err)
		}
		c := m.(Commit)
		if c.Query != core.QueryID(i) || c.Checksum != uint64(i*i) {
			t.Fatalf("message %d = %+v", i, c)
		}
	}
	if _, err := r.Read(); !errors.Is(err, io.EOF) {
		t.Fatalf("end of stream err = %v", err)
	}
}

func TestTruncatedPayload(t *testing.T) {
	var buf bytes.Buffer
	NewWriter(&buf).Write(Commit{Query: 1, Checksum: 2})
	data := buf.Bytes()
	// Claim the right length but provide fewer payload bytes.
	short := data[:len(data)-3]
	if _, err := NewReader(bytes.NewReader(short)).Read(); err == nil {
		t.Error("truncated stream should fail")
	}
	// Corrupt the declared length to be under-sized for the type.
	bad := append([]byte(nil), data...)
	binary.LittleEndian.PutUint32(bad[0:], 4)
	if _, err := NewReader(bytes.NewReader(bad[:4+1+4])).Read(); err == nil {
		t.Error("undersized payload should fail")
	}
}

func TestTrailingBytesRejected(t *testing.T) {
	var buf bytes.Buffer
	NewWriter(&buf).Write(Commit{Query: 1, Checksum: 2})
	data := buf.Bytes()
	// Grow the payload by one byte and fix the length header.
	data = append(data, 0xAA)
	binary.LittleEndian.PutUint32(data[0:], uint32(len(data)-5))
	if _, err := NewReader(bytes.NewReader(data)).Read(); err == nil {
		t.Error("trailing bytes should fail")
	}
}

func TestUnknownTypeRejected(t *testing.T) {
	frame := []byte{0, 0, 0, 0, 0xEE}
	if _, err := NewReader(bytes.NewReader(frame)).Read(); !errors.Is(err, ErrUnknownType) {
		t.Errorf("err = %v", err)
	}
}

func TestFrameTooLargeRejected(t *testing.T) {
	var header [5]byte
	binary.LittleEndian.PutUint32(header[0:], MaxPayload+1)
	header[4] = byte(MsgCommit)
	if _, err := NewReader(bytes.NewReader(header[:])).Read(); !errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("err = %v", err)
	}
}

func TestReaderLimitRejectsOversizedFrame(t *testing.T) {
	// A frame valid under the default limit must be refused by a reader
	// with a tighter one — before any payload is consumed.
	var buf bytes.Buffer
	NewWriter(&buf).Write(FullAnswer{Query: 1, Objects: make([]core.ObjectID, 100)})
	r := NewReaderLimit(&buf, 64)
	if _, err := r.Read(); !errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("err = %v", err)
	}
	// Limit 0 means the default.
	if r := NewReaderLimit(bytes.NewReader(nil), 0); r.max != MaxPayload {
		t.Errorf("limit 0 → %d, want MaxPayload", r.max)
	}
}

func TestHostileLengthPrefixDoesNotAllocate(t *testing.T) {
	// A header claiming a near-maximal payload followed by nothing must
	// fail without committing payload-sized memory. (The incremental
	// reader allocates at most maxPrealloc before bytes arrive.)
	var frame [5]byte
	binary.LittleEndian.PutUint32(frame[0:], MaxPayload-1)
	frame[4] = byte(MsgFullAnswer)
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := NewReader(bytes.NewReader(frame[:])).Read(); err == nil {
			t.Fatal("truncated hostile frame should fail")
		}
	})
	// bufio.Reader + reader + one ≤64KiB chunk, with slack; far below the
	// hundreds that a per-byte or per-chunk-leak implementation would hit,
	// and the test would OOM long before MaxPayload-sized allocations.
	if allocs > 20 {
		t.Errorf("hostile prefix cost %.0f allocs", allocs)
	}
}

func TestLargeFrameChunkedRoundTrip(t *testing.T) {
	// A genuine large frame (over maxPrealloc) must still round-trip
	// through the incremental read path.
	objs := make([]core.ObjectID, 100_000) // 800KB payload
	for i := range objs {
		objs[i] = core.ObjectID(i * 3)
	}
	var buf bytes.Buffer
	if err := NewWriter(&buf).Write(FullAnswer{Query: 9, Time: 1, Objects: objs}); err != nil {
		t.Fatal(err)
	}
	r := NewReader(&buf)
	m, err := r.Read()
	if err != nil {
		t.Fatal(err)
	}
	got := m.(FullAnswer)
	if len(got.Objects) != len(objs) || got.Objects[99_999] != objs[99_999] {
		t.Fatalf("large frame mangled: %d objects", len(got.Objects))
	}
}

func TestBitFlippedFramesNeverPanic(t *testing.T) {
	// Flip every bit of a representative frame one at a time: each
	// variant must either decode or error, never panic, and header flips
	// must not cause huge allocations (guarded by the limit).
	var buf bytes.Buffer
	NewWriter(&buf).Write(Wakeup{
		Update:   core.QueryUpdate{ID: 5, Kind: core.Range, Region: geo.R(0, 0, 1, 1)},
		Checksum: 99,
	})
	frame := buf.Bytes()
	for bit := 0; bit < len(frame)*8; bit++ {
		mut := append([]byte(nil), frame...)
		mut[bit/8] ^= 1 << (bit % 8)
		NewReaderLimit(bytes.NewReader(mut), 1<<20).Read()
	}
}

func TestAbsurdCountsRejected(t *testing.T) {
	// An UpdateBatch claiming more updates than the payload can hold must
	// fail before allocating.
	payload := appendF64(nil, 1.0)
	payload = appendU32(payload, 1<<30)
	var frame []byte
	var lenBuf [4]byte
	binary.LittleEndian.PutUint32(lenBuf[:], uint32(len(payload)))
	frame = append(frame, lenBuf[:]...)
	frame = append(frame, byte(MsgUpdateBatch))
	frame = append(frame, payload...)
	if _, err := NewReader(bytes.NewReader(frame)).Read(); err == nil {
		t.Error("absurd update count should fail")
	}
}

func TestEncodedSize(t *testing.T) {
	m := UpdateBatch{Time: 1, Updates: []core.Update{{Query: 1, Object: 2, Positive: true}}}
	// 5 header + 8 time + 4 count + 17 per update.
	if got := EncodedSize(m); got != 5+8+4+17 {
		t.Errorf("EncodedSize = %d", got)
	}
	var buf bytes.Buffer
	NewWriter(&buf).Write(m)
	if buf.Len() != EncodedSize(m) {
		t.Errorf("EncodedSize %d != actual %d", EncodedSize(m), buf.Len())
	}
}

// TestWriteBufferedByteIdentical proves the batched write path produces
// exactly the byte stream of the unbatched path: N frames encoded with
// WriteBuffered and flushed once must equal the same N frames written
// (and flushed) one by one. The server's session writer relies on this
// to coalesce its outbox drain without changing the protocol.
func TestWriteBufferedByteIdentical(t *testing.T) {
	msgs := []Message{
		UpdateBatch{Time: 1.5, Updates: []core.Update{
			{Query: 1, Object: 2, Positive: true},
			{Query: 3, Object: 4, Positive: false},
		}},
		Heartbeat{Time: 2.25},
		FullAnswer{Query: 7, Time: 3, Objects: []core.ObjectID{1, 2, 3}},
		CommitAck{Query: 7, Checksum: 0xFEED},
		RecoveryDiff{Time: 4, Updates: []core.Update{{Query: 9, Object: 1, Positive: true}}},
		UpdateBatch{Time: 5},
	}

	var unbatched bytes.Buffer
	uw := NewWriter(&unbatched)
	for _, m := range msgs {
		if err := uw.Write(m); err != nil {
			t.Fatalf("unbatched write %T: %v", m, err)
		}
	}

	var batched bytes.Buffer
	bw := NewWriter(&batched)
	for _, m := range msgs {
		if err := bw.WriteBuffered(m); err != nil {
			t.Fatalf("buffered write %T: %v", m, err)
		}
	}
	if err := bw.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}

	if !bytes.Equal(unbatched.Bytes(), batched.Bytes()) {
		t.Fatalf("batched stream diverges from unbatched: %d vs %d bytes",
			batched.Len(), unbatched.Len())
	}

	// And the batched stream decodes back to the same messages (compared
	// through re-encoding: decode normalizes nil and empty slices).
	reencode := func(m Message) []byte {
		var b bytes.Buffer
		if err := NewWriter(&b).Write(m); err != nil {
			t.Fatalf("re-encode %T: %v", m, err)
		}
		return b.Bytes()
	}
	r := NewReader(bytes.NewReader(batched.Bytes()))
	for i, want := range msgs {
		got, err := r.Read()
		if err != nil {
			t.Fatalf("decode frame %d: %v", i, err)
		}
		if !bytes.Equal(reencode(got), reencode(want)) {
			t.Fatalf("frame %d: got %#v, want %#v", i, got, want)
		}
	}
	if _, err := r.Read(); !errors.Is(err, io.EOF) {
		t.Fatalf("expected clean EOF after %d frames, got %v", len(msgs), err)
	}
}
