// Package wire defines the framed binary protocol between the
// location-aware server and its clients.
//
// Every message is framed as
//
//	uint32 payload length | uint8 message type | payload
//
// with all integers little endian. The protocol is deliberately small:
// clients push object/query reports upstream; the server pushes
// incremental update batches downstream; and a three-message handshake
// (Commit, Wakeup, RecoveryDiff/FullAnswer) implements out-of-sync client
// recovery with a checksum guard.
package wire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"cqp/internal/core"
	"cqp/internal/geo"
)

// MsgType discriminates protocol messages.
type MsgType uint8

// Protocol message types.
const (
	// MsgObjectReport (client→server): an object location/velocity report
	// or removal.
	MsgObjectReport MsgType = iota + 1
	// MsgQueryReport (client→server): query registration, movement, or
	// removal. The connection is subscribed to the query's updates.
	MsgQueryReport
	// MsgCommit (client→server): the client acknowledges having applied
	// the stream for a query; carries the checksum of its answer.
	MsgCommit
	// MsgWakeup (client→server): an out-of-sync client reconnects,
	// carrying the checksum of its rolled-back (last committed) answer.
	MsgWakeup
	// MsgUpdateBatch (server→client): incremental positive/negative
	// updates from one evaluation step.
	MsgUpdateBatch
	// MsgRecoveryDiff (server→client): incremental updates that carry a
	// recovering client from its committed answer to the current one.
	MsgRecoveryDiff
	// MsgFullAnswer (server→client): a complete answer; the recovery
	// fallback when checksums disagree (and the naive baseline's only
	// message).
	MsgFullAnswer
	// MsgCommitAck (server→client): the commit was accepted; the client's
	// snapshot now matches the server's committed answer.
	MsgCommitAck
	// MsgStatsRequest (client→server): ask for server statistics.
	MsgStatsRequest
	// MsgStatsResponse (server→client): engine counters and population
	// sizes.
	MsgStatsResponse
	// MsgHeartbeat (both directions): liveness probe. The server sends it
	// periodically; the client echoes it so per-session read deadlines
	// see traffic from live peers. The cluster coordinator reuses it on
	// worker links for deadline-based death detection.
	MsgHeartbeat

	// Cluster control frames (internal/cluster, coordinator ⇄ tile
	// worker). Unlike the client protocol — where a corrupted answer is
	// caught end-to-end by the commit/wakeup checksum handshake — a
	// corrupted tile batch would silently poison the coordinator's merged
	// stream, so every cluster payload carries a trailing FNV-1a checksum
	// of its own bytes; a mismatch fails the decode, the link is torn
	// down, and the tile is resynced from the coordinator's journal.

	// MsgClusterHello (worker→coordinator): the worker process announces
	// itself after dialing in.
	MsgClusterHello
	// MsgClusterAssign (coordinator→worker): host a tile engine with the
	// given core options under the given epoch.
	MsgClusterAssign
	// MsgClusterStep (coordinator→worker): apply the carried reports to
	// one tile and evaluate it at the carried time.
	MsgClusterStep
	// MsgClusterStepResult (worker→coordinator): one tile evaluation's
	// incremental updates plus the engine's cumulative work counters.
	MsgClusterStepResult
	// MsgClusterResync (coordinator→worker): rebuild a tile engine from
	// the carried compacted state (latest report per object, live query
	// replicas) and re-establish its membership at LastStep.
	MsgClusterResync
	// MsgClusterResyncAck (worker→coordinator): the tile was rebuilt;
	// Checksum folds the rebuilt replica answers so the coordinator can
	// verify the worker's state before routing to it again.
	MsgClusterResyncAck
	// MsgClusterRetire (coordinator→worker): a repartition retired the
	// tile; the worker drops its engine. Tile ids are never reused, so
	// no epoch race can resurrect a retired tile.
	MsgClusterRetire
)

// MaxPayload bounds a message payload; it accommodates a full answer over
// every object of a paper-scale run with room to spare.
const MaxPayload = 64 << 20

// maxPrealloc bounds the buffer allocated before any payload bytes have
// actually arrived. A hostile length prefix therefore cannot force a
// large allocation: buffers beyond this size grow only as fast as the
// peer delivers real bytes.
const maxPrealloc = 64 << 10

// Errors.
var (
	ErrFrameTooLarge = errors.New("wire: frame exceeds MaxPayload")
	ErrUnknownType   = errors.New("wire: unknown message type")
	// ErrClusterChecksum marks a cluster control frame whose payload
	// checksum does not match: corruption in transit. The link carrying
	// it cannot be trusted and must be torn down.
	ErrClusterChecksum = errors.New("wire: cluster frame checksum mismatch")
)

// ObjectReport is the payload of MsgObjectReport.
type ObjectReport struct {
	Update core.ObjectUpdate
}

// QueryReport is the payload of MsgQueryReport.
type QueryReport struct {
	Update core.QueryUpdate
}

// Commit is the payload of MsgCommit.
type Commit struct {
	Query    core.QueryID
	Checksum uint64
}

// Wakeup is the payload of MsgWakeup. It carries the full query
// definition so a server that lost the query (restart) can re-register it
// transparently; a server that still knows the query ignores the
// definition and keeps its committed state intact.
type Wakeup struct {
	Update   core.QueryUpdate
	Checksum uint64
}

// UpdateBatch is the payload of MsgUpdateBatch and MsgRecoveryDiff.
type UpdateBatch struct {
	Time    float64
	Updates []core.Update
}

// FullAnswer is the payload of MsgFullAnswer.
type FullAnswer struct {
	Query   core.QueryID
	Time    float64
	Objects []core.ObjectID
}

// CommitAck is the payload of MsgCommitAck.
type CommitAck struct {
	Query    core.QueryID
	Checksum uint64
}

// StatsRequest is the (empty) payload of MsgStatsRequest.
type StatsRequest struct{}

// Heartbeat is the payload of MsgHeartbeat.
type Heartbeat struct {
	Time float64 // sender clock, seconds
}

// StatsResponse is the payload of MsgStatsResponse.
type StatsResponse struct {
	Stats   core.Stats
	Objects uint32
	Queries uint32
	Uptime  float64 // server clock, seconds
}

// ClusterHello is the payload of MsgClusterHello: a freshly spawned (or
// respawned) worker process announcing itself on its coordinator link.
type ClusterHello struct {
	Worker uint32 // worker slot, assigned by the coordinator at spawn
	// Incarnation distinguishes successive processes in the same slot
	// (restart observability; the per-tile Epoch is what gates frames).
	Incarnation uint64
}

// ClusterAssign is the payload of MsgClusterAssign: the engine
// parameters of one tile. The semantic options must match the
// coordinator's exactly or the merged stream would diverge; Region is
// the tile's sub-rectangle of Bounds (zero value: the full bounds) so
// a remote tile builds the same tile-local grid the coordinator's
// router assumes, and Replica marks the engine as a router-owned
// replica that skips per-report committed-answer snapshots.
type ClusterAssign struct {
	Tile  uint32
	Epoch uint64 // current tile epoch; stamped on all subsequent frames

	Bounds            geo.Rect
	GridN             uint32
	PredictiveHorizon float64
	Region            geo.Rect // tile bounds + halo; zero = full Bounds
	MaxSpeed          float64  // swept-region routing bound (0: disabled)
	Replica           bool
}

// ClusterStep is the payload of MsgClusterStep: the reports routed to
// one tile this evaluation plus the evaluation timestamp — one frame
// per tile per (sub-)step, so a step costs one round trip.
type ClusterStep struct {
	Tile    uint32
	Epoch   uint64
	Time    float64
	Objects []core.ObjectUpdate
	Queries []core.QueryUpdate
}

// ClusterStepResult is the payload of MsgClusterStepResult: one tile
// evaluation's incremental updates. The work counters are the tile
// engine's cumulative totals, letting the coordinator aggregate
// cross-process Stats without extra round trips.
type ClusterStepResult struct {
	Tile    uint32
	Epoch   uint64
	Time    float64
	Updates []core.Update

	KNNRecomputes   uint64
	CandidateChecks uint64
	RegionEvalCells uint64
}

// ClusterResync is the payload of MsgClusterResync: the compacted
// authoritative state of one tile — the latest report of every owned
// object and the definition of every live query replica. The worker
// rebuilds a fresh engine, replays the snapshot, evaluates it at
// LastStep (discarding the resulting batch: the coordinator's merge
// state already reflects those memberships), and acks with a state
// checksum.
type ClusterResync struct {
	Tile  uint32
	Epoch uint64
	// HasStep is false when the tile has never been stepped; LastStep is
	// then meaningless and the rebuild skips the re-establishing step.
	HasStep  bool
	LastStep float64
	Objects  []core.ObjectUpdate
	Queries  []core.QueryUpdate
}

// ClusterResyncAck is the payload of MsgClusterResyncAck. Checksum is
// the fold of the rebuilt tile's replica answers (see
// internal/cluster); the coordinator compares it against its own
// fallback engine's fold before trusting the worker again.
type ClusterResyncAck struct {
	Tile     uint32
	Epoch    uint64
	Checksum uint64
}

// ClusterRetire is the payload of MsgClusterRetire: a split or merge
// retired the tile, its state has been re-homed onto born tiles, and
// the worker should free the engine. Best-effort — a worker that never
// sees it (death before delivery) merely holds a dead engine until its
// process is recycled.
type ClusterRetire struct {
	Tile  uint32
	Epoch uint64
}

// Message is any decodable protocol message.
type Message interface{ msgType() MsgType }

func (ObjectReport) msgType() MsgType  { return MsgObjectReport }
func (QueryReport) msgType() MsgType   { return MsgQueryReport }
func (Commit) msgType() MsgType        { return MsgCommit }
func (Wakeup) msgType() MsgType        { return MsgWakeup }
func (UpdateBatch) msgType() MsgType   { return MsgUpdateBatch }
func (FullAnswer) msgType() MsgType    { return MsgFullAnswer }
func (CommitAck) msgType() MsgType     { return MsgCommitAck }
func (StatsRequest) msgType() MsgType  { return MsgStatsRequest }
func (StatsResponse) msgType() MsgType { return MsgStatsResponse }
func (Heartbeat) msgType() MsgType     { return MsgHeartbeat }

func (ClusterHello) msgType() MsgType      { return MsgClusterHello }
func (ClusterAssign) msgType() MsgType     { return MsgClusterAssign }
func (ClusterStep) msgType() MsgType       { return MsgClusterStep }
func (ClusterStepResult) msgType() MsgType { return MsgClusterStepResult }
func (ClusterResync) msgType() MsgType     { return MsgClusterResync }
func (ClusterResyncAck) msgType() MsgType  { return MsgClusterResyncAck }
func (ClusterRetire) msgType() MsgType     { return MsgClusterRetire }

// RecoveryDiff wraps an UpdateBatch under the MsgRecoveryDiff type.
type RecoveryDiff UpdateBatch

func (RecoveryDiff) msgType() MsgType { return MsgRecoveryDiff }

// Writer encodes messages onto a stream. Not safe for concurrent use.
type Writer struct {
	w   *bufio.Writer
	buf []byte
}

// NewWriter returns a Writer over w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriter(w)}
}

// Write encodes one message and flushes it.
func (w *Writer) Write(m Message) error {
	if err := w.WriteBuffered(m); err != nil {
		return err
	}
	return w.Flush()
}

// WriteBuffered encodes one message into the writer's buffer without
// forcing a flush: the frame reaches the wire when the buffer fills or
// Flush is called. Batching writers (the server's per-session outbox
// drain) encode every queued frame back to back and flush once, turning
// N frames into one buffered write. The byte stream is identical to N
// individual Write calls — framing is per message, flushing is not part
// of the encoding.
func (w *Writer) WriteBuffered(m Message) error {
	w.buf = appendMessage(w.buf[:0], m)
	var header [5]byte
	binary.LittleEndian.PutUint32(header[0:], uint32(len(w.buf)))
	header[4] = byte(m.msgType())
	if _, err := w.w.Write(header[:]); err != nil {
		return fmt.Errorf("wire: write header: %w", err)
	}
	if _, err := w.w.Write(w.buf); err != nil {
		return fmt.Errorf("wire: write payload: %w", err)
	}
	return nil
}

// Flush forces every buffered frame onto the underlying stream.
func (w *Writer) Flush() error {
	if err := w.w.Flush(); err != nil {
		return fmt.Errorf("wire: flush: %w", err)
	}
	return nil
}

// Reader decodes messages from a stream. Not safe for concurrent use.
type Reader struct {
	r   *bufio.Reader
	buf []byte
	max uint32
}

// NewReader returns a Reader over r accepting frames up to MaxPayload.
func NewReader(r io.Reader) *Reader {
	return NewReaderLimit(r, MaxPayload)
}

// NewReaderLimit returns a Reader over r rejecting frames whose payload
// exceeds maxFrame bytes (0 means MaxPayload). Servers use a tight limit
// on inbound frames: every legitimate client→server message is small, so
// a large length prefix is hostile and is refused before any allocation.
func NewReaderLimit(r io.Reader, maxFrame uint32) *Reader {
	if maxFrame == 0 || maxFrame > MaxPayload {
		maxFrame = MaxPayload
	}
	return &Reader{r: bufio.NewReader(r), max: maxFrame}
}

// Read decodes the next message. It returns io.EOF at a clean end of
// stream.
func (r *Reader) Read() (Message, error) {
	var header [5]byte
	if _, err := io.ReadFull(r.r, header[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("wire: read header: %w", err)
	}
	length := binary.LittleEndian.Uint32(header[0:])
	if length > r.max {
		return nil, fmt.Errorf("%w: %d bytes (limit %d)", ErrFrameTooLarge, length, r.max)
	}
	payload, err := r.readPayload(int(length))
	if err != nil {
		return nil, fmt.Errorf("wire: read payload: %w", err)
	}
	return decodeMessage(MsgType(header[4]), payload)
}

// readPayload returns the next n payload bytes. Buffers up to
// maxPrealloc are allocated outright; larger ones grow chunk by chunk as
// bytes actually arrive, so the length prefix alone never commits memory.
func (r *Reader) readPayload(n int) ([]byte, error) {
	if cap(r.buf) >= n || n <= maxPrealloc {
		if cap(r.buf) < n {
			r.buf = make([]byte, n)
		}
		payload := r.buf[:n]
		if _, err := io.ReadFull(r.r, payload); err != nil {
			return nil, err
		}
		return payload, nil
	}
	buf := r.buf[:0]
	for len(buf) < n {
		chunk := min(n-len(buf), maxPrealloc)
		if cap(buf)-len(buf) < chunk {
			grown := make([]byte, len(buf), min(n, 2*cap(buf)+chunk))
			copy(grown, buf)
			buf = grown
		}
		start := len(buf)
		buf = buf[:start+chunk]
		if _, err := io.ReadFull(r.r, buf[start:]); err != nil {
			return nil, err
		}
		r.buf = buf[:0]
	}
	r.buf = buf
	return buf, nil
}

// --- encoding helpers -----------------------------------------------------

func appendU64(b []byte, v uint64) []byte {
	var tmp [8]byte
	binary.LittleEndian.PutUint64(tmp[:], v)
	return append(b, tmp[:]...)
}

func appendU32(b []byte, v uint32) []byte {
	var tmp [4]byte
	binary.LittleEndian.PutUint32(tmp[:], v)
	return append(b, tmp[:]...)
}

func appendF64(b []byte, v float64) []byte { return appendU64(b, math.Float64bits(v)) }

func appendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

type decoder struct {
	b   []byte
	err error
}

func (d *decoder) u64() uint64 {
	if d.err != nil || len(d.b) < 8 {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(d.b)
	d.b = d.b[8:]
	return v
}

func (d *decoder) u32() uint32 {
	if d.err != nil || len(d.b) < 4 {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(d.b)
	d.b = d.b[4:]
	return v
}

func (d *decoder) f64() float64 { return math.Float64frombits(d.u64()) }

func (d *decoder) u8() uint8 {
	if d.err != nil || len(d.b) < 1 {
		d.fail()
		return 0
	}
	v := d.b[0]
	d.b = d.b[1:]
	return v
}

func (d *decoder) bool() bool { return d.u8() != 0 }

func (d *decoder) fail() {
	if d.err == nil {
		d.err = errors.New("wire: truncated payload")
	}
}

func (d *decoder) finish() error {
	if d.err != nil {
		return d.err
	}
	if len(d.b) != 0 {
		return fmt.Errorf("wire: %d trailing bytes in payload", len(d.b))
	}
	return nil
}

func appendMessage(b []byte, m Message) []byte {
	switch m := m.(type) {
	case ObjectReport:
		b = appendObjectUpdate(b, m.Update)
	case QueryReport:
		b = appendQueryUpdate(b, m.Update)
	case Commit:
		b = appendU64(b, uint64(m.Query))
		b = appendU64(b, m.Checksum)
	case CommitAck:
		b = appendU64(b, uint64(m.Query))
		b = appendU64(b, m.Checksum)
	case StatsRequest:
		// empty payload
	case Heartbeat:
		b = appendF64(b, m.Time)
	case StatsResponse:
		for _, v := range []uint64{
			m.Stats.Steps, m.Stats.ObjectReports, m.Stats.QueryReports,
			m.Stats.PositiveUpdates, m.Stats.NegativeUpdates,
			m.Stats.KNNRecomputes, m.Stats.CandidateChecks, m.Stats.RegionEvalCells,
		} {
			b = appendU64(b, v)
		}
		b = appendU32(b, m.Objects)
		b = appendU32(b, m.Queries)
		b = appendF64(b, m.Uptime)
	case Wakeup:
		b = appendQueryUpdate(b, m.Update)
		b = appendU64(b, m.Checksum)
	case UpdateBatch:
		b = appendUpdateBatch(b, m)
	case RecoveryDiff:
		b = appendUpdateBatch(b, UpdateBatch(m))
	case FullAnswer:
		b = appendU64(b, uint64(m.Query))
		b = appendF64(b, m.Time)
		b = appendU32(b, uint32(len(m.Objects)))
		for _, id := range m.Objects {
			b = appendU64(b, uint64(id))
		}
	case ClusterHello:
		start := len(b)
		b = appendU32(b, m.Worker)
		b = appendU64(b, m.Incarnation)
		b = appendClusterSum(b, start)
	case ClusterAssign:
		start := len(b)
		b = appendU32(b, m.Tile)
		b = appendU64(b, m.Epoch)
		for _, v := range []float64{m.Bounds.MinX, m.Bounds.MinY, m.Bounds.MaxX, m.Bounds.MaxY} {
			b = appendF64(b, v)
		}
		b = appendU32(b, m.GridN)
		b = appendF64(b, m.PredictiveHorizon)
		for _, v := range []float64{m.Region.MinX, m.Region.MinY, m.Region.MaxX, m.Region.MaxY} {
			b = appendF64(b, v)
		}
		b = appendF64(b, m.MaxSpeed)
		b = appendBool(b, m.Replica)
		b = appendClusterSum(b, start)
	case ClusterStep:
		start := len(b)
		b = appendU32(b, m.Tile)
		b = appendU64(b, m.Epoch)
		b = appendF64(b, m.Time)
		b = appendReports(b, m.Objects, m.Queries)
		b = appendClusterSum(b, start)
	case ClusterStepResult:
		start := len(b)
		b = appendU32(b, m.Tile)
		b = appendU64(b, m.Epoch)
		b = appendF64(b, m.Time)
		b = appendU32(b, uint32(len(m.Updates)))
		for _, u := range m.Updates {
			b = appendU64(b, uint64(u.Query))
			b = appendU64(b, uint64(u.Object))
			b = appendBool(b, u.Positive)
		}
		b = appendU64(b, m.KNNRecomputes)
		b = appendU64(b, m.CandidateChecks)
		b = appendU64(b, m.RegionEvalCells)
		b = appendClusterSum(b, start)
	case ClusterResync:
		start := len(b)
		b = appendU32(b, m.Tile)
		b = appendU64(b, m.Epoch)
		b = appendBool(b, m.HasStep)
		b = appendF64(b, m.LastStep)
		b = appendReports(b, m.Objects, m.Queries)
		b = appendClusterSum(b, start)
	case ClusterResyncAck:
		start := len(b)
		b = appendU32(b, m.Tile)
		b = appendU64(b, m.Epoch)
		b = appendU64(b, m.Checksum)
		b = appendClusterSum(b, start)
	case ClusterRetire:
		start := len(b)
		b = appendU32(b, m.Tile)
		b = appendU64(b, m.Epoch)
		b = appendClusterSum(b, start)
	default:
		panic(fmt.Sprintf("wire: cannot encode %T", m))
	}
	return b
}

// appendReports encodes an object-report list followed by a
// query-report list (the shared tail of ClusterStep and ClusterResync).
func appendReports(b []byte, objs []core.ObjectUpdate, qrys []core.QueryUpdate) []byte {
	b = appendU32(b, uint32(len(objs)))
	for _, u := range objs {
		b = appendObjectUpdate(b, u)
	}
	b = appendU32(b, uint32(len(qrys)))
	for _, u := range qrys {
		b = appendQueryUpdate(b, u)
	}
	return b
}

// FNV-1a 64-bit, the cluster frames' payload integrity check. Inlined
// rather than hash/fnv so encoding stays allocation-free.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func fnv1a(b []byte) uint64 {
	h := uint64(fnvOffset64)
	for _, c := range b {
		h ^= uint64(c)
		h *= fnvPrime64
	}
	return h
}

// appendClusterSum seals a cluster payload with the FNV-1a checksum of
// everything appended since start.
func appendClusterSum(b []byte, start int) []byte {
	return appendU64(b, fnv1a(b[start:]))
}

// verifyClusterSum checks and strips the trailing payload checksum of a
// cluster frame before field decoding begins.
func (d *decoder) verifyClusterSum() {
	if d.err != nil {
		return
	}
	if len(d.b) < 8 {
		d.fail()
		return
	}
	body, sum := d.b[:len(d.b)-8], binary.LittleEndian.Uint64(d.b[len(d.b)-8:])
	if fnv1a(body) != sum {
		d.err = ErrClusterChecksum
		return
	}
	d.b = body
}

func appendObjectUpdate(b []byte, u core.ObjectUpdate) []byte {
	b = appendU64(b, uint64(u.ID))
	b = append(b, byte(u.Kind))
	b = appendF64(b, u.Loc.X)
	b = appendF64(b, u.Loc.Y)
	b = appendF64(b, u.Vel.DX)
	b = appendF64(b, u.Vel.DY)
	b = appendF64(b, u.T)
	b = appendBool(b, u.Remove)
	b = appendU32(b, uint32(len(u.Waypoints)))
	for _, w := range u.Waypoints {
		b = appendF64(b, w.P.X)
		b = appendF64(b, w.P.Y)
		b = appendF64(b, w.T)
	}
	return b
}

// objectUpdateMin is the wire size of a waypoint-free object update;
// list decoders use it to reject hostile counts before allocating.
const objectUpdateMin = 8 + 1 + 4*8 + 8 + 1 + 4

func decodeObjectUpdate(d *decoder) core.ObjectUpdate {
	var u core.ObjectUpdate
	u.ID = core.ObjectID(d.u64())
	u.Kind = core.ObjectKind(d.u8())
	u.Loc = geo.Pt(d.f64(), d.f64())
	u.Vel = geo.Vec(d.f64(), d.f64())
	u.T = d.f64()
	u.Remove = d.bool()
	n := int(d.u32())
	if d.err == nil && n > len(d.b)/24 {
		d.err = errors.New("wire: waypoint count exceeds payload")
		return u
	}
	if d.err == nil && n > 0 {
		u.Waypoints = make([]geo.TimedPoint, 0, n)
		for i := 0; i < n; i++ {
			u.Waypoints = append(u.Waypoints, geo.TimedPoint{
				P: geo.Pt(d.f64(), d.f64()), T: d.f64(),
			})
		}
	}
	return u
}

func appendQueryUpdate(b []byte, u core.QueryUpdate) []byte {
	b = appendU64(b, uint64(u.ID))
	b = append(b, byte(u.Kind))
	for _, v := range []float64{u.Region.MinX, u.Region.MinY, u.Region.MaxX, u.Region.MaxY,
		u.Focal.X, u.Focal.Y} {
		b = appendF64(b, v)
	}
	b = appendU32(b, uint32(u.K))
	b = appendF64(b, u.T1)
	b = appendF64(b, u.T2)
	b = appendF64(b, u.T)
	b = appendBool(b, u.Remove)
	return b
}

func decodeQueryUpdate(d *decoder) core.QueryUpdate {
	var u core.QueryUpdate
	u.ID = core.QueryID(d.u64())
	u.Kind = core.QueryKind(d.u8())
	u.Region = geo.Rect{MinX: d.f64(), MinY: d.f64(), MaxX: d.f64(), MaxY: d.f64()}
	u.Focal = geo.Pt(d.f64(), d.f64())
	u.K = int(d.u32())
	u.T1 = d.f64()
	u.T2 = d.f64()
	u.T = d.f64()
	u.Remove = d.bool()
	return u
}

func appendUpdateBatch(b []byte, m UpdateBatch) []byte {
	b = appendF64(b, m.Time)
	b = appendU32(b, uint32(len(m.Updates)))
	for _, u := range m.Updates {
		b = appendU64(b, uint64(u.Query))
		b = appendU64(b, uint64(u.Object))
		b = appendBool(b, u.Positive)
	}
	return b
}

func decodeMessage(t MsgType, payload []byte) (Message, error) {
	d := &decoder{b: payload}
	switch t {
	case MsgObjectReport:
		m := ObjectReport{Update: decodeObjectUpdate(d)}
		return m, d.finish()
	case MsgQueryReport:
		m := QueryReport{Update: decodeQueryUpdate(d)}
		return m, d.finish()
	case MsgCommit:
		m := Commit{Query: core.QueryID(d.u64()), Checksum: d.u64()}
		return m, d.finish()
	case MsgCommitAck:
		m := CommitAck{Query: core.QueryID(d.u64()), Checksum: d.u64()}
		return m, d.finish()
	case MsgStatsRequest:
		return StatsRequest{}, d.finish()
	case MsgHeartbeat:
		m := Heartbeat{Time: d.f64()}
		return m, d.finish()
	case MsgStatsResponse:
		var m StatsResponse
		m.Stats.Steps = d.u64()
		m.Stats.ObjectReports = d.u64()
		m.Stats.QueryReports = d.u64()
		m.Stats.PositiveUpdates = d.u64()
		m.Stats.NegativeUpdates = d.u64()
		m.Stats.KNNRecomputes = d.u64()
		m.Stats.CandidateChecks = d.u64()
		m.Stats.RegionEvalCells = d.u64()
		m.Objects = d.u32()
		m.Queries = d.u32()
		m.Uptime = d.f64()
		return m, d.finish()
	case MsgWakeup:
		m := Wakeup{Update: decodeQueryUpdate(d), Checksum: d.u64()}
		return m, d.finish()
	case MsgUpdateBatch:
		m, err := decodeUpdateBatch(d)
		return m, err
	case MsgRecoveryDiff:
		m, err := decodeUpdateBatch(d)
		return RecoveryDiff(m), err
	case MsgFullAnswer:
		var m FullAnswer
		m.Query = core.QueryID(d.u64())
		m.Time = d.f64()
		n := int(d.u32())
		if d.err == nil && n > len(d.b)/8 {
			return nil, errors.New("wire: answer count exceeds payload")
		}
		m.Objects = make([]core.ObjectID, 0, n)
		for i := 0; i < n; i++ {
			m.Objects = append(m.Objects, core.ObjectID(d.u64()))
		}
		return m, d.finish()
	case MsgClusterHello:
		d.verifyClusterSum()
		m := ClusterHello{Worker: d.u32(), Incarnation: d.u64()}
		return m, d.finish()
	case MsgClusterAssign:
		d.verifyClusterSum()
		var m ClusterAssign
		m.Tile = d.u32()
		m.Epoch = d.u64()
		m.Bounds = geo.Rect{MinX: d.f64(), MinY: d.f64(), MaxX: d.f64(), MaxY: d.f64()}
		m.GridN = d.u32()
		m.PredictiveHorizon = d.f64()
		m.Region = geo.Rect{MinX: d.f64(), MinY: d.f64(), MaxX: d.f64(), MaxY: d.f64()}
		m.MaxSpeed = d.f64()
		m.Replica = d.bool()
		return m, d.finish()
	case MsgClusterStep:
		d.verifyClusterSum()
		var m ClusterStep
		m.Tile = d.u32()
		m.Epoch = d.u64()
		m.Time = d.f64()
		m.Objects, m.Queries = decodeReports(d)
		return m, d.finish()
	case MsgClusterStepResult:
		d.verifyClusterSum()
		var m ClusterStepResult
		m.Tile = d.u32()
		m.Epoch = d.u64()
		m.Time = d.f64()
		n := int(d.u32())
		if d.err == nil && n > len(d.b)/17 {
			d.err = errors.New("wire: update count exceeds payload")
			return m, d.finish()
		}
		if d.err == nil {
			m.Updates = make([]core.Update, 0, n)
			for i := 0; i < n; i++ {
				m.Updates = append(m.Updates, core.Update{
					Query:    core.QueryID(d.u64()),
					Object:   core.ObjectID(d.u64()),
					Positive: d.bool(),
				})
			}
		}
		m.KNNRecomputes = d.u64()
		m.CandidateChecks = d.u64()
		m.RegionEvalCells = d.u64()
		return m, d.finish()
	case MsgClusterResync:
		d.verifyClusterSum()
		var m ClusterResync
		m.Tile = d.u32()
		m.Epoch = d.u64()
		m.HasStep = d.bool()
		m.LastStep = d.f64()
		m.Objects, m.Queries = decodeReports(d)
		return m, d.finish()
	case MsgClusterRetire:
		d.verifyClusterSum()
		m := ClusterRetire{Tile: d.u32(), Epoch: d.u64()}
		return m, d.finish()
	case MsgClusterResyncAck:
		d.verifyClusterSum()
		m := ClusterResyncAck{Tile: d.u32(), Epoch: d.u64(), Checksum: d.u64()}
		return m, d.finish()
	default:
		return nil, fmt.Errorf("%w: %d", ErrUnknownType, t)
	}
}

// decodeReports decodes the object/query report lists shared by
// ClusterStep and ClusterResync, rejecting hostile counts before any
// allocation.
func decodeReports(d *decoder) ([]core.ObjectUpdate, []core.QueryUpdate) {
	n := int(d.u32())
	if d.err == nil && n > len(d.b)/objectUpdateMin {
		d.err = errors.New("wire: object report count exceeds payload")
		return nil, nil
	}
	var objs []core.ObjectUpdate
	if d.err == nil && n > 0 {
		objs = make([]core.ObjectUpdate, 0, n)
		for i := 0; i < n; i++ {
			objs = append(objs, decodeObjectUpdate(d))
		}
	}
	const queryUpdateMin = 8 + 1 + 6*8 + 4 + 3*8 + 1
	n = int(d.u32())
	if d.err == nil && n > len(d.b)/queryUpdateMin {
		d.err = errors.New("wire: query report count exceeds payload")
		return objs, nil
	}
	var qrys []core.QueryUpdate
	if d.err == nil && n > 0 {
		qrys = make([]core.QueryUpdate, 0, n)
		for i := 0; i < n; i++ {
			qrys = append(qrys, decodeQueryUpdate(d))
		}
	}
	return objs, qrys
}

func decodeUpdateBatch(d *decoder) (UpdateBatch, error) {
	var m UpdateBatch
	m.Time = d.f64()
	n := int(d.u32())
	if d.err == nil && n > len(d.b)/17 {
		return m, errors.New("wire: update count exceeds payload")
	}
	m.Updates = make([]core.Update, 0, n)
	for i := 0; i < n; i++ {
		m.Updates = append(m.Updates, core.Update{
			Query:    core.QueryID(d.u64()),
			Object:   core.ObjectID(d.u64()),
			Positive: d.bool(),
		})
	}
	return m, d.finish()
}

// EncodedSize returns the wire size in bytes of a message, including the
// frame header; the benchmarks use it to measure answer bandwidth exactly
// as the network would see it.
func EncodedSize(m Message) int {
	return 5 + len(appendMessage(nil, m))
}
