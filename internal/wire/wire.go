// Package wire defines the framed binary protocol between the
// location-aware server and its clients.
//
// Every message is framed as
//
//	uint32 payload length | uint8 message type | payload
//
// with all integers little endian. The protocol is deliberately small:
// clients push object/query reports upstream; the server pushes
// incremental update batches downstream; and a three-message handshake
// (Commit, Wakeup, RecoveryDiff/FullAnswer) implements out-of-sync client
// recovery with a checksum guard.
package wire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"cqp/internal/core"
	"cqp/internal/geo"
)

// MsgType discriminates protocol messages.
type MsgType uint8

// Protocol message types.
const (
	// MsgObjectReport (client→server): an object location/velocity report
	// or removal.
	MsgObjectReport MsgType = iota + 1
	// MsgQueryReport (client→server): query registration, movement, or
	// removal. The connection is subscribed to the query's updates.
	MsgQueryReport
	// MsgCommit (client→server): the client acknowledges having applied
	// the stream for a query; carries the checksum of its answer.
	MsgCommit
	// MsgWakeup (client→server): an out-of-sync client reconnects,
	// carrying the checksum of its rolled-back (last committed) answer.
	MsgWakeup
	// MsgUpdateBatch (server→client): incremental positive/negative
	// updates from one evaluation step.
	MsgUpdateBatch
	// MsgRecoveryDiff (server→client): incremental updates that carry a
	// recovering client from its committed answer to the current one.
	MsgRecoveryDiff
	// MsgFullAnswer (server→client): a complete answer; the recovery
	// fallback when checksums disagree (and the naive baseline's only
	// message).
	MsgFullAnswer
	// MsgCommitAck (server→client): the commit was accepted; the client's
	// snapshot now matches the server's committed answer.
	MsgCommitAck
	// MsgStatsRequest (client→server): ask for server statistics.
	MsgStatsRequest
	// MsgStatsResponse (server→client): engine counters and population
	// sizes.
	MsgStatsResponse
	// MsgHeartbeat (both directions): liveness probe. The server sends it
	// periodically; the client echoes it so per-session read deadlines
	// see traffic from live peers.
	MsgHeartbeat
)

// MaxPayload bounds a message payload; it accommodates a full answer over
// every object of a paper-scale run with room to spare.
const MaxPayload = 64 << 20

// maxPrealloc bounds the buffer allocated before any payload bytes have
// actually arrived. A hostile length prefix therefore cannot force a
// large allocation: buffers beyond this size grow only as fast as the
// peer delivers real bytes.
const maxPrealloc = 64 << 10

// Errors.
var (
	ErrFrameTooLarge = errors.New("wire: frame exceeds MaxPayload")
	ErrUnknownType   = errors.New("wire: unknown message type")
)

// ObjectReport is the payload of MsgObjectReport.
type ObjectReport struct {
	Update core.ObjectUpdate
}

// QueryReport is the payload of MsgQueryReport.
type QueryReport struct {
	Update core.QueryUpdate
}

// Commit is the payload of MsgCommit.
type Commit struct {
	Query    core.QueryID
	Checksum uint64
}

// Wakeup is the payload of MsgWakeup. It carries the full query
// definition so a server that lost the query (restart) can re-register it
// transparently; a server that still knows the query ignores the
// definition and keeps its committed state intact.
type Wakeup struct {
	Update   core.QueryUpdate
	Checksum uint64
}

// UpdateBatch is the payload of MsgUpdateBatch and MsgRecoveryDiff.
type UpdateBatch struct {
	Time    float64
	Updates []core.Update
}

// FullAnswer is the payload of MsgFullAnswer.
type FullAnswer struct {
	Query   core.QueryID
	Time    float64
	Objects []core.ObjectID
}

// CommitAck is the payload of MsgCommitAck.
type CommitAck struct {
	Query    core.QueryID
	Checksum uint64
}

// StatsRequest is the (empty) payload of MsgStatsRequest.
type StatsRequest struct{}

// Heartbeat is the payload of MsgHeartbeat.
type Heartbeat struct {
	Time float64 // sender clock, seconds
}

// StatsResponse is the payload of MsgStatsResponse.
type StatsResponse struct {
	Stats   core.Stats
	Objects uint32
	Queries uint32
	Uptime  float64 // server clock, seconds
}

// Message is any decodable protocol message.
type Message interface{ msgType() MsgType }

func (ObjectReport) msgType() MsgType  { return MsgObjectReport }
func (QueryReport) msgType() MsgType   { return MsgQueryReport }
func (Commit) msgType() MsgType        { return MsgCommit }
func (Wakeup) msgType() MsgType        { return MsgWakeup }
func (UpdateBatch) msgType() MsgType   { return MsgUpdateBatch }
func (FullAnswer) msgType() MsgType    { return MsgFullAnswer }
func (CommitAck) msgType() MsgType     { return MsgCommitAck }
func (StatsRequest) msgType() MsgType  { return MsgStatsRequest }
func (StatsResponse) msgType() MsgType { return MsgStatsResponse }
func (Heartbeat) msgType() MsgType     { return MsgHeartbeat }

// RecoveryDiff wraps an UpdateBatch under the MsgRecoveryDiff type.
type RecoveryDiff UpdateBatch

func (RecoveryDiff) msgType() MsgType { return MsgRecoveryDiff }

// Writer encodes messages onto a stream. Not safe for concurrent use.
type Writer struct {
	w   *bufio.Writer
	buf []byte
}

// NewWriter returns a Writer over w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriter(w)}
}

// Write encodes one message and flushes it.
func (w *Writer) Write(m Message) error {
	w.buf = appendMessage(w.buf[:0], m)
	var header [5]byte
	binary.LittleEndian.PutUint32(header[0:], uint32(len(w.buf)))
	header[4] = byte(m.msgType())
	if _, err := w.w.Write(header[:]); err != nil {
		return fmt.Errorf("wire: write header: %w", err)
	}
	if _, err := w.w.Write(w.buf); err != nil {
		return fmt.Errorf("wire: write payload: %w", err)
	}
	if err := w.w.Flush(); err != nil {
		return fmt.Errorf("wire: flush: %w", err)
	}
	return nil
}

// Reader decodes messages from a stream. Not safe for concurrent use.
type Reader struct {
	r   *bufio.Reader
	buf []byte
	max uint32
}

// NewReader returns a Reader over r accepting frames up to MaxPayload.
func NewReader(r io.Reader) *Reader {
	return NewReaderLimit(r, MaxPayload)
}

// NewReaderLimit returns a Reader over r rejecting frames whose payload
// exceeds maxFrame bytes (0 means MaxPayload). Servers use a tight limit
// on inbound frames: every legitimate client→server message is small, so
// a large length prefix is hostile and is refused before any allocation.
func NewReaderLimit(r io.Reader, maxFrame uint32) *Reader {
	if maxFrame == 0 || maxFrame > MaxPayload {
		maxFrame = MaxPayload
	}
	return &Reader{r: bufio.NewReader(r), max: maxFrame}
}

// Read decodes the next message. It returns io.EOF at a clean end of
// stream.
func (r *Reader) Read() (Message, error) {
	var header [5]byte
	if _, err := io.ReadFull(r.r, header[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("wire: read header: %w", err)
	}
	length := binary.LittleEndian.Uint32(header[0:])
	if length > r.max {
		return nil, fmt.Errorf("%w: %d bytes (limit %d)", ErrFrameTooLarge, length, r.max)
	}
	payload, err := r.readPayload(int(length))
	if err != nil {
		return nil, fmt.Errorf("wire: read payload: %w", err)
	}
	return decodeMessage(MsgType(header[4]), payload)
}

// readPayload returns the next n payload bytes. Buffers up to
// maxPrealloc are allocated outright; larger ones grow chunk by chunk as
// bytes actually arrive, so the length prefix alone never commits memory.
func (r *Reader) readPayload(n int) ([]byte, error) {
	if cap(r.buf) >= n || n <= maxPrealloc {
		if cap(r.buf) < n {
			r.buf = make([]byte, n)
		}
		payload := r.buf[:n]
		if _, err := io.ReadFull(r.r, payload); err != nil {
			return nil, err
		}
		return payload, nil
	}
	buf := r.buf[:0]
	for len(buf) < n {
		chunk := min(n-len(buf), maxPrealloc)
		if cap(buf)-len(buf) < chunk {
			grown := make([]byte, len(buf), min(n, 2*cap(buf)+chunk))
			copy(grown, buf)
			buf = grown
		}
		start := len(buf)
		buf = buf[:start+chunk]
		if _, err := io.ReadFull(r.r, buf[start:]); err != nil {
			return nil, err
		}
		r.buf = buf[:0]
	}
	r.buf = buf
	return buf, nil
}

// --- encoding helpers -----------------------------------------------------

func appendU64(b []byte, v uint64) []byte {
	var tmp [8]byte
	binary.LittleEndian.PutUint64(tmp[:], v)
	return append(b, tmp[:]...)
}

func appendU32(b []byte, v uint32) []byte {
	var tmp [4]byte
	binary.LittleEndian.PutUint32(tmp[:], v)
	return append(b, tmp[:]...)
}

func appendF64(b []byte, v float64) []byte { return appendU64(b, math.Float64bits(v)) }

func appendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

type decoder struct {
	b   []byte
	err error
}

func (d *decoder) u64() uint64 {
	if d.err != nil || len(d.b) < 8 {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(d.b)
	d.b = d.b[8:]
	return v
}

func (d *decoder) u32() uint32 {
	if d.err != nil || len(d.b) < 4 {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(d.b)
	d.b = d.b[4:]
	return v
}

func (d *decoder) f64() float64 { return math.Float64frombits(d.u64()) }

func (d *decoder) u8() uint8 {
	if d.err != nil || len(d.b) < 1 {
		d.fail()
		return 0
	}
	v := d.b[0]
	d.b = d.b[1:]
	return v
}

func (d *decoder) bool() bool { return d.u8() != 0 }

func (d *decoder) fail() {
	if d.err == nil {
		d.err = errors.New("wire: truncated payload")
	}
}

func (d *decoder) finish() error {
	if d.err != nil {
		return d.err
	}
	if len(d.b) != 0 {
		return fmt.Errorf("wire: %d trailing bytes in payload", len(d.b))
	}
	return nil
}

func appendMessage(b []byte, m Message) []byte {
	switch m := m.(type) {
	case ObjectReport:
		u := m.Update
		b = appendU64(b, uint64(u.ID))
		b = append(b, byte(u.Kind))
		b = appendF64(b, u.Loc.X)
		b = appendF64(b, u.Loc.Y)
		b = appendF64(b, u.Vel.DX)
		b = appendF64(b, u.Vel.DY)
		b = appendF64(b, u.T)
		b = appendBool(b, u.Remove)
		b = appendU32(b, uint32(len(u.Waypoints)))
		for _, w := range u.Waypoints {
			b = appendF64(b, w.P.X)
			b = appendF64(b, w.P.Y)
			b = appendF64(b, w.T)
		}
	case QueryReport:
		b = appendQueryUpdate(b, m.Update)
	case Commit:
		b = appendU64(b, uint64(m.Query))
		b = appendU64(b, m.Checksum)
	case CommitAck:
		b = appendU64(b, uint64(m.Query))
		b = appendU64(b, m.Checksum)
	case StatsRequest:
		// empty payload
	case Heartbeat:
		b = appendF64(b, m.Time)
	case StatsResponse:
		for _, v := range []uint64{
			m.Stats.Steps, m.Stats.ObjectReports, m.Stats.QueryReports,
			m.Stats.PositiveUpdates, m.Stats.NegativeUpdates,
			m.Stats.KNNRecomputes, m.Stats.CandidateChecks, m.Stats.RegionEvalCells,
		} {
			b = appendU64(b, v)
		}
		b = appendU32(b, m.Objects)
		b = appendU32(b, m.Queries)
		b = appendF64(b, m.Uptime)
	case Wakeup:
		b = appendQueryUpdate(b, m.Update)
		b = appendU64(b, m.Checksum)
	case UpdateBatch:
		b = appendUpdateBatch(b, m)
	case RecoveryDiff:
		b = appendUpdateBatch(b, UpdateBatch(m))
	case FullAnswer:
		b = appendU64(b, uint64(m.Query))
		b = appendF64(b, m.Time)
		b = appendU32(b, uint32(len(m.Objects)))
		for _, id := range m.Objects {
			b = appendU64(b, uint64(id))
		}
	default:
		panic(fmt.Sprintf("wire: cannot encode %T", m))
	}
	return b
}

func appendQueryUpdate(b []byte, u core.QueryUpdate) []byte {
	b = appendU64(b, uint64(u.ID))
	b = append(b, byte(u.Kind))
	for _, v := range []float64{u.Region.MinX, u.Region.MinY, u.Region.MaxX, u.Region.MaxY,
		u.Focal.X, u.Focal.Y} {
		b = appendF64(b, v)
	}
	b = appendU32(b, uint32(u.K))
	b = appendF64(b, u.T1)
	b = appendF64(b, u.T2)
	b = appendF64(b, u.T)
	b = appendBool(b, u.Remove)
	return b
}

func decodeQueryUpdate(d *decoder) core.QueryUpdate {
	var u core.QueryUpdate
	u.ID = core.QueryID(d.u64())
	u.Kind = core.QueryKind(d.u8())
	u.Region = geo.Rect{MinX: d.f64(), MinY: d.f64(), MaxX: d.f64(), MaxY: d.f64()}
	u.Focal = geo.Pt(d.f64(), d.f64())
	u.K = int(d.u32())
	u.T1 = d.f64()
	u.T2 = d.f64()
	u.T = d.f64()
	u.Remove = d.bool()
	return u
}

func appendUpdateBatch(b []byte, m UpdateBatch) []byte {
	b = appendF64(b, m.Time)
	b = appendU32(b, uint32(len(m.Updates)))
	for _, u := range m.Updates {
		b = appendU64(b, uint64(u.Query))
		b = appendU64(b, uint64(u.Object))
		b = appendBool(b, u.Positive)
	}
	return b
}

func decodeMessage(t MsgType, payload []byte) (Message, error) {
	d := &decoder{b: payload}
	switch t {
	case MsgObjectReport:
		var m ObjectReport
		m.Update.ID = core.ObjectID(d.u64())
		m.Update.Kind = core.ObjectKind(d.u8())
		m.Update.Loc = geo.Pt(d.f64(), d.f64())
		m.Update.Vel = geo.Vec(d.f64(), d.f64())
		m.Update.T = d.f64()
		m.Update.Remove = d.bool()
		n := int(d.u32())
		if d.err == nil && n > len(d.b)/24 {
			return nil, errors.New("wire: waypoint count exceeds payload")
		}
		if n > 0 {
			m.Update.Waypoints = make([]geo.TimedPoint, 0, n)
			for i := 0; i < n; i++ {
				m.Update.Waypoints = append(m.Update.Waypoints, geo.TimedPoint{
					P: geo.Pt(d.f64(), d.f64()), T: d.f64(),
				})
			}
		}
		return m, d.finish()
	case MsgQueryReport:
		m := QueryReport{Update: decodeQueryUpdate(d)}
		return m, d.finish()
	case MsgCommit:
		m := Commit{Query: core.QueryID(d.u64()), Checksum: d.u64()}
		return m, d.finish()
	case MsgCommitAck:
		m := CommitAck{Query: core.QueryID(d.u64()), Checksum: d.u64()}
		return m, d.finish()
	case MsgStatsRequest:
		return StatsRequest{}, d.finish()
	case MsgHeartbeat:
		m := Heartbeat{Time: d.f64()}
		return m, d.finish()
	case MsgStatsResponse:
		var m StatsResponse
		m.Stats.Steps = d.u64()
		m.Stats.ObjectReports = d.u64()
		m.Stats.QueryReports = d.u64()
		m.Stats.PositiveUpdates = d.u64()
		m.Stats.NegativeUpdates = d.u64()
		m.Stats.KNNRecomputes = d.u64()
		m.Stats.CandidateChecks = d.u64()
		m.Stats.RegionEvalCells = d.u64()
		m.Objects = d.u32()
		m.Queries = d.u32()
		m.Uptime = d.f64()
		return m, d.finish()
	case MsgWakeup:
		m := Wakeup{Update: decodeQueryUpdate(d), Checksum: d.u64()}
		return m, d.finish()
	case MsgUpdateBatch:
		m, err := decodeUpdateBatch(d)
		return m, err
	case MsgRecoveryDiff:
		m, err := decodeUpdateBatch(d)
		return RecoveryDiff(m), err
	case MsgFullAnswer:
		var m FullAnswer
		m.Query = core.QueryID(d.u64())
		m.Time = d.f64()
		n := int(d.u32())
		if d.err == nil && n > len(d.b)/8 {
			return nil, errors.New("wire: answer count exceeds payload")
		}
		m.Objects = make([]core.ObjectID, 0, n)
		for i := 0; i < n; i++ {
			m.Objects = append(m.Objects, core.ObjectID(d.u64()))
		}
		return m, d.finish()
	default:
		return nil, fmt.Errorf("%w: %d", ErrUnknownType, t)
	}
}

func decodeUpdateBatch(d *decoder) (UpdateBatch, error) {
	var m UpdateBatch
	m.Time = d.f64()
	n := int(d.u32())
	if d.err == nil && n > len(d.b)/17 {
		return m, errors.New("wire: update count exceeds payload")
	}
	m.Updates = make([]core.Update, 0, n)
	for i := 0; i < n; i++ {
		m.Updates = append(m.Updates, core.Update{
			Query:    core.QueryID(d.u64()),
			Object:   core.ObjectID(d.u64()),
			Positive: d.bool(),
		})
	}
	return m, d.finish()
}

// EncodedSize returns the wire size in bytes of a message, including the
// frame header; the benchmarks use it to measure answer bandwidth exactly
// as the network would see it.
func EncodedSize(m Message) int {
	return 5 + len(appendMessage(nil, m))
}
