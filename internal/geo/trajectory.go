package geo

// TimedPoint is a waypoint of a trajectory: a location with the time the
// object passes through it.
type TimedPoint struct {
	P Point
	T float64
}

// Trajectory is a piecewise-linear predicted movement: the object is at
// Start at time T0, travels in straight lines through each waypoint at
// its time, and holds position at the final waypoint afterwards. Before
// T0 it is considered at Start (trajectories describe the future, not the
// past).
//
// This is the paper's "trajectory" movement representation, the
// alternative to sampled locations and velocity vectors; route-planned
// objects (vehicles on a road network, aircraft on flight plans) report
// it naturally. Waypoint times must be strictly increasing and after T0;
// Valid reports violations.
type Trajectory struct {
	Start     Point
	T0        float64
	Waypoints []TimedPoint
}

// Valid reports whether waypoint times are strictly increasing and after
// T0.
func (tr Trajectory) Valid() bool {
	prev := tr.T0
	for _, w := range tr.Waypoints {
		if w.T <= prev {
			return false
		}
		prev = w.T
	}
	return true
}

// At returns the position at time t.
func (tr Trajectory) At(t float64) Point {
	if t <= tr.T0 {
		return tr.Start
	}
	prevP, prevT := tr.Start, tr.T0
	for _, w := range tr.Waypoints {
		if t <= w.T {
			span := w.T - prevT
			if span <= 0 {
				return w.P
			}
			u := (t - prevT) / span
			return Segment{A: prevP, B: w.P}.At(u)
		}
		prevP, prevT = w.P, w.T
	}
	return prevP // holding at the final waypoint
}

// IntersectsRectDuring reports whether the trajectory passes through r at
// any instant of [t1, t2].
func (tr Trajectory) IntersectsRectDuring(r Rect, t1, t2 float64) bool {
	if t2 < t1 {
		t1, t2 = t2, t1
	}
	// Holding at Start before T0.
	if t1 < tr.T0 {
		if r.Contains(tr.Start) {
			return true
		}
		t1 = tr.T0
		if t1 > t2 {
			return false
		}
	}
	prevP, prevT := tr.Start, tr.T0
	for _, w := range tr.Waypoints {
		if segmentCrossesDuring(prevP, prevT, w.P, w.T, r, t1, t2) {
			return true
		}
		prevP, prevT = w.P, w.T
		if prevT > t2 {
			return false
		}
	}
	// Holding at the final position from prevT onward.
	return t2 >= prevT && r.Contains(prevP)
}

// segmentCrossesDuring tests one linear leg from (a, ta) to (b, tb)
// against r within the window [t1, t2].
func segmentCrossesDuring(a Point, ta float64, b Point, tb float64, r Rect, t1, t2 float64) bool {
	if tb <= ta {
		return false // degenerate or invalid leg; skip defensively
	}
	lo, hi := t1, t2
	if lo < ta {
		lo = ta
	}
	if hi > tb {
		hi = tb
	}
	if lo > hi {
		return false
	}
	m := Motion{Start: a, Vel: Vector{DX: (b.X - a.X) / (tb - ta), DY: (b.Y - a.Y) / (tb - ta)}, T0: ta}
	return m.IntersectsRectDuring(r, lo, hi)
}

// BBoxDuring returns a bounding box of every position the trajectory
// occupies during [t1, t2].
func (tr Trajectory) BBoxDuring(t1, t2 float64) Rect {
	if t2 < t1 {
		t1, t2 = t2, t1
	}
	a := tr.At(t1)
	box := R(a.X, a.Y, a.X, a.Y)
	b := tr.At(t2)
	box = box.Union(R(b.X, b.Y, b.X, b.Y))
	for _, w := range tr.Waypoints {
		if w.T > t1 && w.T < t2 {
			box = box.Union(R(w.P.X, w.P.Y, w.P.X, w.P.Y))
		}
	}
	return box
}
