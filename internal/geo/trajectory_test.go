package geo

import (
	"math"
	"math/rand"
	"testing"
)

func TestTrajectoryValid(t *testing.T) {
	good := Trajectory{Start: Pt(0, 0), T0: 0, Waypoints: []TimedPoint{{Pt(1, 0), 1}, {Pt(2, 0), 3}}}
	if !good.Valid() {
		t.Error("increasing times should be valid")
	}
	if (Trajectory{Start: Pt(0, 0), T0: 5, Waypoints: []TimedPoint{{Pt(1, 0), 5}}}).Valid() {
		t.Error("waypoint at T0 should be invalid")
	}
	if (Trajectory{Start: Pt(0, 0), T0: 0, Waypoints: []TimedPoint{{Pt(1, 0), 2}, {Pt(2, 0), 1}}}).Valid() {
		t.Error("decreasing times should be invalid")
	}
	if !(Trajectory{Start: Pt(0, 0), T0: 0}).Valid() {
		t.Error("no waypoints should be valid")
	}
}

func TestTrajectoryAt(t *testing.T) {
	tr := Trajectory{
		Start:     Pt(0, 0),
		T0:        10,
		Waypoints: []TimedPoint{{Pt(10, 0), 20}, {Pt(10, 10), 40}},
	}
	tests := []struct {
		t    float64
		want Point
	}{
		{5, Pt(0, 0)},    // before T0: holding at start
		{10, Pt(0, 0)},   // at T0
		{15, Pt(5, 0)},   // halfway along leg 1
		{20, Pt(10, 0)},  // first waypoint
		{30, Pt(10, 5)},  // halfway along leg 2
		{40, Pt(10, 10)}, // final waypoint
		{99, Pt(10, 10)}, // holding at destination
	}
	for _, tc := range tests {
		if got := tr.At(tc.t); got.Dist(tc.want) > 1e-12 {
			t.Errorf("At(%v) = %v, want %v", tc.t, got, tc.want)
		}
	}
	// No waypoints: always at Start.
	still := Trajectory{Start: Pt(3, 3), T0: 0}
	if got := still.At(100); got != Pt(3, 3) {
		t.Errorf("waypointless At = %v", got)
	}
}

func TestTrajectoryIntersectsRectDuring(t *testing.T) {
	// L-shaped path: east along y=0 for t∈[0,10], then north for t∈[10,20].
	tr := Trajectory{
		Start:     Pt(0, 0),
		T0:        0,
		Waypoints: []TimedPoint{{Pt(10, 0), 10}, {Pt(10, 10), 20}},
	}
	tests := []struct {
		name   string
		r      Rect
		t1, t2 float64
		want   bool
	}{
		{"first leg hit", R(4, -1, 6, 1), 3, 7, true},
		{"first leg window miss", R(4, -1, 6, 1), 7, 9, false},
		{"second leg hit", R(9, 4, 11, 6), 13, 16, true},
		{"corner at leg boundary", R(9.5, -0.5, 10.5, 0.5), 9, 11, true},
		{"destination hold", R(9, 9, 11, 11), 50, 60, true},
		{"destination hold outside", R(0, 0, 1, 1), 50, 60, false},
		{"start hold before T0", R(-1, -1, 1, 1), -10, -5, true},
		{"off-path", R(3, 5, 5, 7), 0, 100, false},
		{"reversed window", R(4, -1, 6, 1), 7, 3, true},
	}
	for _, tc := range tests {
		if got := tr.IntersectsRectDuring(tc.r, tc.t1, tc.t2); got != tc.want {
			t.Errorf("%s: got %v want %v", tc.name, got, tc.want)
		}
	}
}

// TestTrajectorySamplingCrossCheck validates the analytic predicate
// against dense sampling on random trajectories.
func TestTrajectorySamplingCrossCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	r := R(0.4, 0.4, 0.6, 0.6)
	for trial := 0; trial < 300; trial++ {
		tr := Trajectory{Start: Pt(rng.Float64(), rng.Float64()), T0: rng.Float64() * 2}
		now := tr.T0
		for legs := 1 + rng.Intn(4); legs > 0; legs-- {
			now += 0.1 + rng.Float64()*2
			tr.Waypoints = append(tr.Waypoints, TimedPoint{
				P: Pt(rng.Float64(), rng.Float64()), T: now,
			})
		}
		t1 := rng.Float64() * 3
		t2 := t1 + rng.Float64()*5
		got := tr.IntersectsRectDuring(r, t1, t2)
		sampled := false
		for k := 0; k <= 3000; k++ {
			tt := t1 + (t2-t1)*float64(k)/3000
			if r.Contains(tr.At(tt)) {
				sampled = true
				break
			}
		}
		if sampled && !got {
			t.Fatalf("analytic predicate missed a sampled hit: %+v window [%v,%v]", tr, t1, t2)
		}
		if got && !sampled {
			// Check for a boundary graze before declaring failure.
			minDist := math.Inf(1)
			for k := 0; k <= 3000; k++ {
				tt := t1 + (t2-t1)*float64(k)/3000
				if d := r.MinDist(tr.At(tt)); d < minDist {
					minDist = d
				}
			}
			if minDist > 1e-6 {
				t.Fatalf("analytic hit not confirmed (gap %v): %+v window [%v,%v]", minDist, tr, t1, t2)
			}
		}
	}
}

func TestTrajectoryBBoxDuring(t *testing.T) {
	tr := Trajectory{
		Start:     Pt(0, 0),
		T0:        0,
		Waypoints: []TimedPoint{{Pt(10, 0), 10}, {Pt(10, 10), 20}},
	}
	// Whole trajectory.
	if box := tr.BBoxDuring(0, 20); box != R(0, 0, 10, 10) {
		t.Errorf("full box = %v", box)
	}
	// Mid-window on leg 1 only.
	box := tr.BBoxDuring(2, 6)
	if box.MinX != 2 || box.MaxX != 6 || box.MinY != 0 || box.MaxY != 0 {
		t.Errorf("partial box = %v", box)
	}
	// Window spanning the corner includes it.
	box = tr.BBoxDuring(8, 12)
	if !box.Contains(Pt(10, 0)) {
		t.Errorf("corner missing: %v", box)
	}
	// Containment property on random sub-windows.
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 200; i++ {
		a := rng.Float64() * 25
		b := a + rng.Float64()*10
		box := tr.BBoxDuring(a, b)
		grown := box.Expand(1e-9) // absorb float noise in sample times
		for k := 0; k <= 50; k++ {
			tt := a + (b-a)*float64(k)/50
			if p := tr.At(tt); !grown.Contains(p) {
				t.Fatalf("BBoxDuring(%v,%v)=%v missing %v at t=%v", a, b, box, p, tt)
			}
		}
	}
}
