// Package geo provides the planar geometry kernel used throughout the
// continuous query processor: points, rectangles, circles, segments,
// velocity vectors, and time-parameterized motion.
//
// All coordinates are float64 in an application-defined space (the
// benchmarks use the unit square [0,1)²). Time is expressed as float64
// seconds; the engine treats it as an opaque monotonically increasing
// clock.
package geo

import (
	"fmt"
	"math"
)

// Point is a location in the plane.
type Point struct {
	X, Y float64
}

// Pt is shorthand for Point{x, y}.
func Pt(x, y float64) Point { return Point{X: x, Y: y} }

// Add returns p translated by the vector v.
func (p Point) Add(v Vector) Point { return Point{p.X + v.DX, p.Y + v.DY} }

// Sub returns the vector from q to p.
func (p Point) Sub(q Point) Vector { return Vector{p.X - q.X, p.Y - q.Y} }

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

// Dist2 returns the squared Euclidean distance between p and q. It avoids
// the square root and is the preferred comparison key in nearest-neighbor
// search loops.
func (p Point) Dist2(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return dx*dx + dy*dy
}

// String implements fmt.Stringer.
func (p Point) String() string { return fmt.Sprintf("(%.4g,%.4g)", p.X, p.Y) }

// Vector is a displacement or velocity in the plane. As a velocity its
// components are space units per second.
type Vector struct {
	DX, DY float64
}

// Vec is shorthand for Vector{dx, dy}.
func Vec(dx, dy float64) Vector { return Vector{DX: dx, DY: dy} }

// Scale returns v multiplied by s.
func (v Vector) Scale(s float64) Vector { return Vector{v.DX * s, v.DY * s} }

// Add returns the component-wise sum of v and w.
func (v Vector) Add(w Vector) Vector { return Vector{v.DX + w.DX, v.DY + w.DY} }

// Len returns the Euclidean length of v.
func (v Vector) Len() float64 { return math.Hypot(v.DX, v.DY) }

// IsZero reports whether both components are exactly zero.
func (v Vector) IsZero() bool { return v.DX == 0 && v.DY == 0 }

// Norm returns v scaled to unit length. The zero vector is returned
// unchanged.
func (v Vector) Norm() Vector {
	l := v.Len()
	if l == 0 {
		return v
	}
	return Vector{v.DX / l, v.DY / l}
}

// Rect is an axis-aligned rectangle. A Rect is valid when MinX ≤ MaxX and
// MinY ≤ MaxY; the rectangle is closed on all sides. The zero Rect is the
// degenerate point at the origin.
type Rect struct {
	MinX, MinY, MaxX, MaxY float64
}

// R constructs the rectangle with the given corners, normalizing the
// coordinate order so the result is always valid.
func R(x1, y1, x2, y2 float64) Rect {
	if x2 < x1 {
		x1, x2 = x2, x1
	}
	if y2 < y1 {
		y1, y2 = y2, y1
	}
	return Rect{MinX: x1, MinY: y1, MaxX: x2, MaxY: y2}
}

// RectAround returns the square of side 2r centered at c, the bounding box
// of the circle (c, r).
func RectAround(c Point, r float64) Rect {
	return Rect{c.X - r, c.Y - r, c.X + r, c.Y + r}
}

// RectAt returns the square of side `side` centered at c.
func RectAt(c Point, side float64) Rect {
	h := side / 2
	return Rect{c.X - h, c.Y - h, c.X + h, c.Y + h}
}

// Valid reports whether r has non-negative extent on both axes.
func (r Rect) Valid() bool { return r.MinX <= r.MaxX && r.MinY <= r.MaxY }

// Empty reports whether r has zero area (degenerate on at least one axis).
func (r Rect) Empty() bool { return r.MinX >= r.MaxX || r.MinY >= r.MaxY }

// Width returns the horizontal extent of r.
func (r Rect) Width() float64 { return r.MaxX - r.MinX }

// Height returns the vertical extent of r.
func (r Rect) Height() float64 { return r.MaxY - r.MinY }

// Area returns the area of r; degenerate rectangles have area 0.
func (r Rect) Area() float64 {
	if !r.Valid() {
		return 0
	}
	return r.Width() * r.Height()
}

// Center returns the midpoint of r.
func (r Rect) Center() Point {
	return Point{(r.MinX + r.MaxX) / 2, (r.MinY + r.MaxY) / 2}
}

// Contains reports whether p lies inside r (boundaries included).
func (r Rect) Contains(p Point) bool {
	return p.X >= r.MinX && p.X <= r.MaxX && p.Y >= r.MinY && p.Y <= r.MaxY
}

// ContainsRect reports whether s lies entirely inside r.
func (r Rect) ContainsRect(s Rect) bool {
	return s.MinX >= r.MinX && s.MaxX <= r.MaxX && s.MinY >= r.MinY && s.MaxY <= r.MaxY
}

// Intersects reports whether r and s share at least one point (touching
// boundaries count).
func (r Rect) Intersects(s Rect) bool {
	return r.MinX <= s.MaxX && s.MinX <= r.MaxX && r.MinY <= s.MaxY && s.MinY <= r.MaxY
}

// Intersect returns the intersection of r and s. If they do not intersect
// the second result is false and the first is the zero Rect.
func (r Rect) Intersect(s Rect) (Rect, bool) {
	out := Rect{
		MinX: math.Max(r.MinX, s.MinX),
		MinY: math.Max(r.MinY, s.MinY),
		MaxX: math.Min(r.MaxX, s.MaxX),
		MaxY: math.Min(r.MaxY, s.MaxY),
	}
	if !out.Valid() {
		return Rect{}, false
	}
	return out, true
}

// Union returns the smallest rectangle containing both r and s.
func (r Rect) Union(s Rect) Rect {
	return Rect{
		MinX: math.Min(r.MinX, s.MinX),
		MinY: math.Min(r.MinY, s.MinY),
		MaxX: math.Max(r.MaxX, s.MaxX),
		MaxY: math.Max(r.MaxY, s.MaxY),
	}
}

// Expand returns r grown by d on every side (shrunk when d is negative;
// the result may become invalid).
func (r Rect) Expand(d float64) Rect {
	return Rect{r.MinX - d, r.MinY - d, r.MaxX + d, r.MaxY + d}
}

// Translate returns r shifted by v.
func (r Rect) Translate(v Vector) Rect {
	return Rect{r.MinX + v.DX, r.MinY + v.DY, r.MaxX + v.DX, r.MaxY + v.DY}
}

// MinDist returns the minimum Euclidean distance from p to any point of r;
// it is 0 when p is inside r.
func (r Rect) MinDist(p Point) float64 {
	return math.Sqrt(r.MinDist2(p))
}

// MinDist2 returns the squared minimum distance from p to r.
func (r Rect) MinDist2(p Point) float64 {
	dx := axisDist(p.X, r.MinX, r.MaxX)
	dy := axisDist(p.Y, r.MinY, r.MaxY)
	return dx*dx + dy*dy
}

// MaxDist returns the maximum Euclidean distance from p to any point of r
// (realized at one of the four corners).
func (r Rect) MaxDist(p Point) float64 {
	dx := math.Max(math.Abs(p.X-r.MinX), math.Abs(p.X-r.MaxX))
	dy := math.Max(math.Abs(p.Y-r.MinY), math.Abs(p.Y-r.MaxY))
	return math.Hypot(dx, dy)
}

func axisDist(v, lo, hi float64) float64 {
	switch {
	case v < lo:
		return lo - v
	case v > hi:
		return v - hi
	default:
		return 0
	}
}

// Enlargement returns the increase of area of r needed to include s.
func (r Rect) Enlargement(s Rect) float64 {
	return r.Union(s).Area() - r.Area()
}

// Difference returns r − s as a set of up to four disjoint rectangles.
// The pieces cover every point that is in r but not in the interior of s.
// If r and s do not intersect the result is {r}; if s covers r the result
// is empty. dst is reused when its capacity suffices.
//
// This is the primitive behind the paper's A_old − A_new / A_new − A_old
// incremental evaluation areas.
func (r Rect) Difference(s Rect, dst []Rect) []Rect {
	dst = dst[:0]
	in, ok := r.Intersect(s)
	if !ok || in.Empty() {
		if !r.Empty() {
			dst = append(dst, r)
		}
		return dst
	}
	// Left slab.
	if r.MinX < in.MinX {
		dst = append(dst, Rect{r.MinX, r.MinY, in.MinX, r.MaxY})
	}
	// Right slab.
	if in.MaxX < r.MaxX {
		dst = append(dst, Rect{in.MaxX, r.MinY, r.MaxX, r.MaxY})
	}
	// Bottom slab (between the vertical slabs).
	if r.MinY < in.MinY {
		dst = append(dst, Rect{in.MinX, r.MinY, in.MaxX, in.MinY})
	}
	// Top slab.
	if in.MaxY < r.MaxY {
		dst = append(dst, Rect{in.MinX, in.MaxY, in.MaxX, r.MaxY})
	}
	return dst
}

// String implements fmt.Stringer.
func (r Rect) String() string {
	return fmt.Sprintf("[%.4g,%.4g]x[%.4g,%.4g]", r.MinX, r.MaxX, r.MinY, r.MaxY)
}

// Circle is a disk with center C and radius R; boundaries are included.
type Circle struct {
	C Point
	R float64
}

// Contains reports whether p lies in the (closed) disk.
func (c Circle) Contains(p Point) bool {
	return c.C.Dist2(p) <= c.R*c.R+epsilon
}

// BBox returns the axis-aligned bounding box of the circle.
func (c Circle) BBox() Rect { return RectAround(c.C, c.R) }

// IntersectsRect reports whether the disk and r share at least one point.
func (c Circle) IntersectsRect(r Rect) bool {
	return r.MinDist2(c.C) <= c.R*c.R+epsilon
}

// epsilon absorbs floating-point noise in closed-region membership tests.
const epsilon = 1e-12
