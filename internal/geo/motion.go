package geo

import "math"

// Motion is a time-parameterized linear movement: position(t) = Start +
// Vel·(t − T0). It represents the trajectory of a predictive object that
// reported location Start and velocity Vel at time T0 (the paper's
// "velocity vector" movement representation).
type Motion struct {
	Start Point
	Vel   Vector
	T0    float64
}

// At returns the position of the motion at time t. Times before T0
// extrapolate backwards; the engine never asks for them, but the algebra
// is well defined.
func (m Motion) At(t float64) Point {
	return m.Start.Add(m.Vel.Scale(t - m.T0))
}

// Segment returns the line segment swept between times t1 and t2.
func (m Motion) Segment(t1, t2 float64) Segment {
	return Segment{A: m.At(t1), B: m.At(t2)}
}

// IntersectsRectDuring reports whether the moving point is inside r at any
// instant of the closed time window [t1, t2]. This is the predicate behind
// predictive range queries ("objects that will intersect the region at a
// future time"): the query window is joined against the line
// representation of the moving object.
func (m Motion) IntersectsRectDuring(r Rect, t1, t2 float64) bool {
	if t2 < t1 {
		t1, t2 = t2, t1
	}
	// Clip the time interval against each slab x∈[MinX,MaxX], y∈[MinY,MaxY]
	// (Liang–Barsky in time parameter space).
	lo, hi := t1, t2
	var ok bool
	if lo, hi, ok = clipAxis(m.Start.X, m.Vel.DX, r.MinX, r.MaxX, lo, hi, m.T0); !ok {
		return false
	}
	if _, _, ok = clipAxis(m.Start.Y, m.Vel.DY, r.MinY, r.MaxY, lo, hi, m.T0); !ok {
		return false
	}
	return true
}

// clipAxis intersects {t : lo ≤ t ≤ hi and min ≤ s + v·(t−t0) ≤ max},
// returning the clipped interval and whether it is non-empty.
func clipAxis(s, v, min, max, lo, hi, t0 float64) (float64, float64, bool) {
	if v == 0 {
		if s < min-epsilon || s > max+epsilon {
			return 0, 0, false
		}
		return lo, hi, true
	}
	tEnter := t0 + (min-s)/v
	tExit := t0 + (max-s)/v
	if tEnter > tExit {
		tEnter, tExit = tExit, tEnter
	}
	lo = math.Max(lo, tEnter)
	hi = math.Min(hi, tExit)
	return lo, hi, lo <= hi+epsilon
}

// SweptBBox returns the bounding box of the trajectory over [t1, t2]: the
// union of the positions at the window endpoints. Because the motion is
// linear the swept path is a segment and this box bounds it exactly.
func (m Motion) SweptBBox(t1, t2 float64) Rect {
	a, b := m.At(t1), m.At(t2)
	return R(a.X, a.Y, b.X, b.Y)
}

// Segment is a straight line segment from A to B.
type Segment struct {
	A, B Point
}

// Len returns the length of the segment.
func (s Segment) Len() float64 { return s.A.Dist(s.B) }

// At returns the point at parameter u ∈ [0,1] along the segment.
func (s Segment) At(u float64) Point {
	return Point{s.A.X + u*(s.B.X-s.A.X), s.A.Y + u*(s.B.Y-s.A.Y)}
}

// BBox returns the bounding box of the segment.
func (s Segment) BBox() Rect { return R(s.A.X, s.A.Y, s.B.X, s.B.Y) }

// IntersectsRect reports whether any point of the segment lies in r.
func (s Segment) IntersectsRect(r Rect) bool {
	// Liang–Barsky with parameter u in [0,1].
	dx, dy := s.B.X-s.A.X, s.B.Y-s.A.Y
	lo, hi := 0.0, 1.0
	var ok bool
	if lo, hi, ok = clipAxis(s.A.X, dx, r.MinX, r.MaxX, lo, hi, 0); !ok {
		return false
	}
	if _, _, ok = clipAxis(s.A.Y, dy, r.MinY, r.MaxY, lo, hi, 0); !ok {
		return false
	}
	return true
}

// DistToPoint returns the minimum distance from p to the segment.
func (s Segment) DistToPoint(p Point) float64 {
	dx, dy := s.B.X-s.A.X, s.B.Y-s.A.Y
	l2 := dx*dx + dy*dy
	if l2 == 0 {
		return s.A.Dist(p)
	}
	u := ((p.X-s.A.X)*dx + (p.Y-s.A.Y)*dy) / l2
	u = math.Max(0, math.Min(1, u))
	return s.At(u).Dist(p)
}

// SmallestEnclosingCircle returns the minimum disk containing every point
// in pts, using Welzl's randomized-style algorithm made deterministic by
// processing points in the given order with restarts. It runs in expected
// linear time for the small point sets the kNN maintenance produces
// (k ≤ a few hundred). An empty input yields the zero circle.
//
// The paper stores a kNN query in the grid "as the smallest circular
// region that contains the k nearest objects"; this is that region.
func SmallestEnclosingCircle(pts []Point) Circle {
	var c Circle
	for i, p := range pts {
		if i == 0 {
			c = Circle{C: p}
			continue
		}
		if c.Contains(p) {
			continue
		}
		c = circleWithBoundary(pts[:i], p)
	}
	return c
}

// circleWithBoundary returns the smallest circle containing pts with q on
// its boundary.
func circleWithBoundary(pts []Point, q Point) Circle {
	c := Circle{C: q}
	for i, p := range pts {
		if c.Contains(p) {
			continue
		}
		c = circleWith2Boundary(pts[:i], q, p)
	}
	return c
}

// circleWith2Boundary returns the smallest circle containing pts with q1
// and q2 on its boundary.
func circleWith2Boundary(pts []Point, q1, q2 Point) Circle {
	c := circleFrom2(q1, q2)
	for _, p := range pts {
		if c.Contains(p) {
			continue
		}
		c = circleFrom3(q1, q2, p)
	}
	return c
}

func circleFrom2(a, b Point) Circle {
	c := Point{(a.X + b.X) / 2, (a.Y + b.Y) / 2}
	return Circle{C: c, R: c.Dist(a)}
}

func circleFrom3(a, b, c Point) Circle {
	ax, ay := a.X, a.Y
	bx, by := b.X, b.Y
	cx, cy := c.X, c.Y
	d := 2 * (ax*(by-cy) + bx*(cy-ay) + cx*(ay-by))
	if math.Abs(d) < 1e-18 {
		// Collinear: fall back to the diameter of the two farthest points.
		best := circleFrom2(a, b)
		if cand := circleFrom2(a, c); cand.R > best.R {
			best = cand
		}
		if cand := circleFrom2(b, c); cand.R > best.R {
			best = cand
		}
		return best
	}
	ux := ((ax*ax+ay*ay)*(by-cy) + (bx*bx+by*by)*(cy-ay) + (cx*cx+cy*cy)*(ay-by)) / d
	uy := ((ax*ax+ay*ay)*(cx-bx) + (bx*bx+by*by)*(ax-cx) + (cx*cx+cy*cy)*(bx-ax)) / d
	ctr := Point{ux, uy}
	return Circle{C: ctr, R: ctr.Dist(a)}
}
