package geo

import (
	"math"
	"math/rand"
	"testing"
)

func TestMotionAt(t *testing.T) {
	m := Motion{Start: Pt(0, 0), Vel: Vec(1, 2), T0: 10}
	if got := m.At(10); got != Pt(0, 0) {
		t.Errorf("At(T0) = %v", got)
	}
	if got := m.At(12); got != Pt(2, 4) {
		t.Errorf("At(12) = %v", got)
	}
	if got := m.At(9); got != Pt(-1, -2) {
		t.Errorf("At(9) = %v (backwards extrapolation)", got)
	}
	seg := m.Segment(10, 12)
	if seg.A != Pt(0, 0) || seg.B != Pt(2, 4) {
		t.Errorf("Segment = %v", seg)
	}
}

func TestMotionIntersectsRectDuring(t *testing.T) {
	r := R(4, 4, 6, 6)
	tests := []struct {
		name   string
		m      Motion
		t1, t2 float64
		want   bool
	}{
		{"crosses during window", Motion{Pt(0, 5), Vec(1, 0), 0}, 4, 6, true},
		{"crosses before window", Motion{Pt(0, 5), Vec(1, 0), 0}, 7, 9, false},
		{"crosses after window", Motion{Pt(0, 5), Vec(1, 0), 0}, 0, 3, false},
		{"stationary inside", Motion{Pt(5, 5), Vec(0, 0), 0}, 0, 100, true},
		{"stationary outside", Motion{Pt(1, 1), Vec(0, 0), 0}, 0, 100, false},
		{"diagonal through corner region", Motion{Pt(0, 0), Vec(1, 1), 0}, 4, 6, true},
		{"parallel misses", Motion{Pt(0, 7), Vec(1, 0), 0}, 0, 100, false},
		{"enters exactly at window end", Motion{Pt(0, 5), Vec(1, 0), 0}, 0, 4, true},
		{"reversed window normalizes", Motion{Pt(0, 5), Vec(1, 0), 0}, 6, 4, true},
		{"nonzero T0", Motion{Pt(0, 5), Vec(1, 0), 100}, 104, 106, true},
	}
	for _, tc := range tests {
		if got := tc.m.IntersectsRectDuring(r, tc.t1, tc.t2); got != tc.want {
			t.Errorf("%s: got %v, want %v", tc.name, got, tc.want)
		}
	}
}

// TestMotionIntersectsSampling cross-validates the analytic predicate
// against dense time sampling on random motions.
func TestMotionIntersectsSampling(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	r := R(0.3, 0.3, 0.7, 0.7)
	for i := 0; i < 400; i++ {
		m := Motion{
			Start: Pt(rng.Float64(), rng.Float64()),
			Vel:   Vec(rng.Float64()*0.2-0.1, rng.Float64()*0.2-0.1),
			T0:    0,
		}
		t1 := rng.Float64() * 5
		t2 := t1 + rng.Float64()*5
		got := m.IntersectsRectDuring(r, t1, t2)
		sampled := false
		for k := 0; k <= 2000; k++ {
			tt := t1 + (t2-t1)*float64(k)/2000
			if r.Contains(m.At(tt)) {
				sampled = true
				break
			}
		}
		// Sampling can only under-detect (miss a brief crossing); it must
		// never detect an intersection the analytic test missed.
		if sampled && !got {
			t.Fatalf("analytic test missed intersection: m=%+v window=[%v,%v]", m, t1, t2)
		}
		if got && !sampled {
			// Verify it is a near-boundary graze rather than a real bug:
			// distance from the swept segment to the rect must be tiny.
			seg := m.Segment(t1, t2)
			d := math.Min(
				math.Min(r.MinDist(seg.A), r.MinDist(seg.B)),
				segRectGap(seg, r))
			if d > 1e-6 {
				t.Fatalf("analytic intersection not confirmed by sampling: m=%+v window=[%v,%v]", m, t1, t2)
			}
		}
	}
}

// segRectGap approximates the gap between a segment and a rectangle by
// sampling the segment.
func segRectGap(s Segment, r Rect) float64 {
	best := math.Inf(1)
	for k := 0; k <= 200; k++ {
		d := r.MinDist(s.At(float64(k) / 200))
		if d < best {
			best = d
		}
	}
	return best
}

func TestSegment(t *testing.T) {
	s := Segment{Pt(0, 0), Pt(10, 0)}
	if s.Len() != 10 {
		t.Errorf("Len = %v", s.Len())
	}
	if s.At(0.5) != Pt(5, 0) {
		t.Errorf("At(0.5) = %v", s.At(0.5))
	}
	if s.BBox() != R(0, 0, 10, 0) {
		t.Errorf("BBox = %v", s.BBox())
	}
	if !s.IntersectsRect(R(4, -1, 6, 1)) {
		t.Error("segment should cross rect")
	}
	if s.IntersectsRect(R(4, 1, 6, 2)) {
		t.Error("segment should miss rect above it")
	}
	if d := s.DistToPoint(Pt(5, 3)); math.Abs(d-3) > 1e-12 {
		t.Errorf("DistToPoint mid = %v", d)
	}
	if d := s.DistToPoint(Pt(-3, 4)); math.Abs(d-5) > 1e-12 {
		t.Errorf("DistToPoint endpoint = %v", d)
	}
	zero := Segment{Pt(1, 1), Pt(1, 1)}
	if d := zero.DistToPoint(Pt(4, 5)); math.Abs(d-5) > 1e-12 {
		t.Errorf("degenerate DistToPoint = %v", d)
	}
}

func TestSmallestEnclosingCircleBasic(t *testing.T) {
	// Empty.
	if c := SmallestEnclosingCircle(nil); c.R != 0 {
		t.Errorf("empty circle R = %v", c.R)
	}
	// Single point.
	c := SmallestEnclosingCircle([]Point{Pt(3, 4)})
	if c.C != Pt(3, 4) || c.R != 0 {
		t.Errorf("single = %+v", c)
	}
	// Two points: diameter.
	c = SmallestEnclosingCircle([]Point{Pt(0, 0), Pt(4, 0)})
	if c.C != Pt(2, 0) || math.Abs(c.R-2) > 1e-9 {
		t.Errorf("pair = %+v", c)
	}
	// Equilateral-ish triangle: circumcircle.
	c = SmallestEnclosingCircle([]Point{Pt(0, 0), Pt(4, 0), Pt(2, 3)})
	for _, p := range []Point{Pt(0, 0), Pt(4, 0), Pt(2, 3)} {
		if c.C.Dist(p) > c.R+1e-9 {
			t.Errorf("triangle point %v outside circle %+v", p, c)
		}
	}
	// Interior point does not grow the circle.
	base := SmallestEnclosingCircle([]Point{Pt(0, 0), Pt(4, 0), Pt(2, 3)})
	withInner := SmallestEnclosingCircle([]Point{Pt(0, 0), Pt(4, 0), Pt(2, 3), Pt(2, 1)})
	if math.Abs(base.R-withInner.R) > 1e-9 {
		t.Errorf("interior point changed radius: %v vs %v", base.R, withInner.R)
	}
	// Collinear points.
	c = SmallestEnclosingCircle([]Point{Pt(0, 0), Pt(2, 0), Pt(6, 0)})
	if math.Abs(c.R-3) > 1e-9 {
		t.Errorf("collinear = %+v", c)
	}
}

// TestSmallestEnclosingCircleRandom validates containment and (approximate)
// minimality on random point sets: the circle must contain every point and
// must pass through at least two of them (otherwise it could shrink).
func TestSmallestEnclosingCircleRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for iter := 0; iter < 200; iter++ {
		n := 2 + rng.Intn(30)
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = Pt(rng.Float64()*100, rng.Float64()*100)
		}
		c := SmallestEnclosingCircle(pts)
		onBoundary := 0
		for _, p := range pts {
			d := c.C.Dist(p)
			if d > c.R+1e-7 {
				t.Fatalf("point %v outside circle %+v (d=%v)", p, c, d)
			}
			if d > c.R-1e-7 {
				onBoundary++
			}
		}
		if onBoundary < 2 && n >= 2 && c.R > 1e-9 {
			t.Fatalf("circle %+v touches only %d points; not minimal", c, onBoundary)
		}
	}
}
