package geo

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestPointDist(t *testing.T) {
	tests := []struct {
		p, q Point
		want float64
	}{
		{Pt(0, 0), Pt(3, 4), 5},
		{Pt(1, 1), Pt(1, 1), 0},
		{Pt(-1, -1), Pt(2, 3), 5},
		{Pt(0, 0), Pt(0, 2), 2},
	}
	for _, tc := range tests {
		if got := tc.p.Dist(tc.q); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("Dist(%v,%v) = %v, want %v", tc.p, tc.q, got, tc.want)
		}
		if got := tc.p.Dist2(tc.q); math.Abs(got-tc.want*tc.want) > 1e-12 {
			t.Errorf("Dist2(%v,%v) = %v, want %v", tc.p, tc.q, got, tc.want*tc.want)
		}
	}
}

func TestVectorOps(t *testing.T) {
	v := Vec(3, 4)
	if got := v.Len(); got != 5 {
		t.Errorf("Len = %v, want 5", got)
	}
	if got := v.Scale(2); got != Vec(6, 8) {
		t.Errorf("Scale = %v", got)
	}
	if got := v.Add(Vec(-3, -4)); !got.IsZero() {
		t.Errorf("Add = %v, want zero", got)
	}
	n := v.Norm()
	if math.Abs(n.Len()-1) > 1e-12 {
		t.Errorf("Norm length = %v", n.Len())
	}
	if !Vec(0, 0).Norm().IsZero() {
		t.Error("Norm of zero vector should stay zero")
	}
	if got := Pt(1, 2).Add(Vec(1, 1)); got != Pt(2, 3) {
		t.Errorf("Point.Add = %v", got)
	}
	if got := Pt(2, 3).Sub(Pt(1, 2)); got != Vec(1, 1) {
		t.Errorf("Point.Sub = %v", got)
	}
}

func TestRectNormalization(t *testing.T) {
	r := R(2, 3, 0, 1)
	want := Rect{0, 1, 2, 3}
	if r != want {
		t.Errorf("R normalized = %v, want %v", r, want)
	}
	if !r.Valid() {
		t.Error("normalized rect should be valid")
	}
}

func TestRectPredicates(t *testing.T) {
	r := R(0, 0, 10, 10)
	if !r.Contains(Pt(5, 5)) || !r.Contains(Pt(0, 0)) || !r.Contains(Pt(10, 10)) {
		t.Error("Contains should include interior and boundary")
	}
	if r.Contains(Pt(10.01, 5)) {
		t.Error("Contains should exclude exterior")
	}
	if !r.Intersects(R(5, 5, 15, 15)) {
		t.Error("overlapping rects should intersect")
	}
	if !r.Intersects(R(10, 10, 20, 20)) {
		t.Error("touching rects should intersect")
	}
	if r.Intersects(R(11, 11, 20, 20)) {
		t.Error("disjoint rects should not intersect")
	}
	if !r.ContainsRect(R(1, 1, 9, 9)) {
		t.Error("ContainsRect inner")
	}
	if r.ContainsRect(R(1, 1, 11, 9)) {
		t.Error("ContainsRect overflow")
	}
}

func TestRectIntersectUnion(t *testing.T) {
	a := R(0, 0, 10, 10)
	b := R(5, 5, 15, 15)
	in, ok := a.Intersect(b)
	if !ok || in != R(5, 5, 10, 10) {
		t.Errorf("Intersect = %v,%v", in, ok)
	}
	if _, ok := a.Intersect(R(20, 20, 30, 30)); ok {
		t.Error("disjoint Intersect should fail")
	}
	if u := a.Union(b); u != R(0, 0, 15, 15) {
		t.Errorf("Union = %v", u)
	}
	if a.Union(b).Area() != 225 {
		t.Errorf("Union area = %v", a.Union(b).Area())
	}
	if e := a.Enlargement(b); math.Abs(e-125) > 1e-12 {
		t.Errorf("Enlargement = %v, want 125", e)
	}
}

func TestRectGeometry(t *testing.T) {
	r := R(0, 0, 4, 2)
	if r.Width() != 4 || r.Height() != 2 || r.Area() != 8 {
		t.Errorf("dims: %v %v %v", r.Width(), r.Height(), r.Area())
	}
	if c := r.Center(); c != Pt(2, 1) {
		t.Errorf("Center = %v", c)
	}
	if g := r.Expand(1); g != R(-1, -1, 5, 3) {
		t.Errorf("Expand = %v", g)
	}
	if tr := r.Translate(Vec(1, 1)); tr != R(1, 1, 5, 3) {
		t.Errorf("Translate = %v", tr)
	}
	if (Rect{2, 2, 1, 1}).Area() != 0 {
		t.Error("invalid rect area should be 0")
	}
}

func TestRectMinMaxDist(t *testing.T) {
	r := R(0, 0, 10, 10)
	tests := []struct {
		p        Point
		min, max float64
	}{
		{Pt(5, 5), 0, math.Hypot(5, 5)},
		{Pt(13, 14), 5, math.Hypot(13, 14)},
		{Pt(-3, 5), 3, math.Hypot(13, 5)},
		{Pt(0, 0), 0, math.Hypot(10, 10)},
	}
	for _, tc := range tests {
		if got := r.MinDist(tc.p); math.Abs(got-tc.min) > 1e-12 {
			t.Errorf("MinDist(%v) = %v, want %v", tc.p, got, tc.min)
		}
		if got := r.MaxDist(tc.p); math.Abs(got-tc.max) > 1e-12 {
			t.Errorf("MaxDist(%v) = %v, want %v", tc.p, got, tc.max)
		}
	}
}

func TestRectAroundAndAt(t *testing.T) {
	if r := RectAround(Pt(5, 5), 2); r != R(3, 3, 7, 7) {
		t.Errorf("RectAround = %v", r)
	}
	if r := RectAt(Pt(5, 5), 2); r != R(4, 4, 6, 6) {
		t.Errorf("RectAt = %v", r)
	}
}

func TestRectDifferenceBasic(t *testing.T) {
	r := R(0, 0, 10, 10)

	// Disjoint: result is r itself.
	out := r.Difference(R(20, 20, 30, 30), nil)
	if len(out) != 1 || out[0] != r {
		t.Errorf("disjoint difference = %v", out)
	}

	// Covered: empty.
	if out := r.Difference(R(-1, -1, 11, 11), nil); len(out) != 0 {
		t.Errorf("covered difference = %v", out)
	}

	// Corner overlap: 2 pieces (L-shape).
	out = r.Difference(R(5, 5, 15, 15), nil)
	if len(out) != 2 {
		t.Fatalf("corner difference: %d pieces %v", len(out), out)
	}

	// Hole in the middle: 4 pieces.
	out = r.Difference(R(3, 3, 7, 7), nil)
	if len(out) != 4 {
		t.Fatalf("hole difference: %d pieces", len(out))
	}
}

// TestRectDifferenceProperty checks, by point sampling, that Difference
// covers exactly r − s: every sampled point is in some piece iff it is in
// r and not in the interior of s, and pieces never overlap (positive
// total-area check).
func TestRectDifferenceProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for iter := 0; iter < 500; iter++ {
		r := R(rng.Float64()*10, rng.Float64()*10, rng.Float64()*10, rng.Float64()*10)
		s := R(rng.Float64()*10, rng.Float64()*10, rng.Float64()*10, rng.Float64()*10)
		pieces := r.Difference(s, nil)

		// Area conservation: area(r − s) == area(r) − area(r ∩ s).
		var got float64
		for _, p := range pieces {
			got += p.Area()
		}
		want := r.Area()
		if in, ok := r.Intersect(s); ok {
			want -= in.Area()
		}
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("area mismatch: r=%v s=%v got=%v want=%v", r, s, got, want)
		}

		// Pairwise disjoint interiors.
		for i := 0; i < len(pieces); i++ {
			for j := i + 1; j < len(pieces); j++ {
				if in, ok := pieces[i].Intersect(pieces[j]); ok && in.Area() > 1e-9 {
					t.Fatalf("overlapping pieces %v and %v", pieces[i], pieces[j])
				}
			}
		}

		// Membership check by sampling.
		for k := 0; k < 20; k++ {
			p := Pt(rng.Float64()*10, rng.Float64()*10)
			inPieces := false
			for _, pc := range pieces {
				if pc.Contains(p) {
					inPieces = true
					break
				}
			}
			strictlyInS := p.X > s.MinX && p.X < s.MaxX && p.Y > s.MinY && p.Y < s.MaxY
			wantIn := r.Contains(p) && !strictlyInS
			// Boundary points may legitimately fall either way; skip them.
			onBoundary := p.X == s.MinX || p.X == s.MaxX || p.Y == s.MinY || p.Y == s.MaxY
			if !onBoundary && inPieces != wantIn {
				t.Fatalf("membership: p=%v r=%v s=%v inPieces=%v want=%v", p, r, s, inPieces, wantIn)
			}
		}
	}
}

func TestCircle(t *testing.T) {
	c := Circle{C: Pt(5, 5), R: 2}
	if !c.Contains(Pt(5, 7)) || !c.Contains(Pt(5, 5)) {
		t.Error("Contains should include boundary and center")
	}
	if c.Contains(Pt(5, 7.1)) {
		t.Error("Contains should exclude exterior")
	}
	if c.BBox() != R(3, 3, 7, 7) {
		t.Errorf("BBox = %v", c.BBox())
	}
	if !c.IntersectsRect(R(6, 6, 10, 10)) {
		t.Error("overlapping circle-rect should intersect")
	}
	if c.IntersectsRect(R(8, 8, 10, 10)) {
		t.Error("distant rect should not intersect")
	}
	// Corner case: rect corner just outside the radius.
	if c.IntersectsRect(R(6.5, 6.5, 10, 10)) {
		t.Error("corner outside radius should not intersect")
	}
}

// quickCfg bounds testing/quick inputs into a sane coordinate range.
var quickCfg = &quick.Config{
	MaxCount: 300,
	Values: func(vals []reflect.Value, rng *rand.Rand) {
		for i := range vals {
			vals[i] = reflect.ValueOf(rng.Float64()*20 - 10)
		}
	},
}

func TestQuickUnionContains(t *testing.T) {
	f := func(a1, b1, a2, b2, c1, d1, c2, d2 float64) bool {
		r, s := R(a1, b1, a2, b2), R(c1, d1, c2, d2)
		u := r.Union(s)
		return u.ContainsRect(r) && u.ContainsRect(s)
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestQuickIntersectSymmetric(t *testing.T) {
	f := func(a1, b1, a2, b2, c1, d1, c2, d2 float64) bool {
		r, s := R(a1, b1, a2, b2), R(c1, d1, c2, d2)
		i1, ok1 := r.Intersect(s)
		i2, ok2 := s.Intersect(r)
		return ok1 == ok2 && i1 == i2 && ok1 == r.Intersects(s)
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestQuickMinDistConsistent(t *testing.T) {
	f := func(a1, b1, a2, b2, px, py float64) bool {
		r := R(a1, b1, a2, b2)
		p := Pt(px, py)
		min, max := r.MinDist(p), r.MaxDist(p)
		if min > max+1e-9 {
			return false
		}
		if r.Contains(p) != (min == 0) {
			return false
		}
		return true
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}
