package shard

import "cqp/internal/obs"

// shardMetrics are the router's pre-resolved observability instruments.
// They are bound once in New against the same registry (and clock) the
// tile engines receive through Options.Core, so one scrape sees both
// views: the aggregated per-tile "engine.*" metrics and the router's
// own "shard.*" merge and balance metrics. Cluster runs resolve the
// same names, so their coordinators aggregate into the same series.
type shardMetrics struct {
	tracer *obs.Tracer

	stepLatency   *obs.Histogram // full router Step, merge included (needs a Clock)
	stepSkew      *obs.Histogram // slowest−fastest tile per broadcast (needs a Clock)
	queueDepth    *obs.Histogram // per-tile buffered reports at broadcast time
	replicaFanout *obs.Histogram // replicas per applied query update (coverage size)

	steps         *obs.Counter
	migrations    *obs.Counter // cross-tile object moves (remove+insert splits)
	netted        *obs.Counter // merge-dedup hits: touched pairs whose transitions canceled
	bypassed      *obs.Counter // updates absorbed via the single-replica fast path
	knnSubsteps   *obs.Counter // tiles sub-stepped by the kNN settle fixpoint
	mergedUpdates *obs.Counter // updates emitted after the merge
	tileSplits    *obs.Counter // hot-tile splits applied
	tileMerges    *obs.Counter // cold-sibling merges applied

	tiles          *obs.Gauge // live tile count
	tileObjectsMax *obs.Gauge // owned objects on the fullest tile: balance monitor
	tileAreaMax    *obs.Gauge // largest live tile's share of the bounds, in ppm
	lastEmitted    *obs.Gauge // merged updates emitted by the last Step
}

// newShardMetrics resolves every instrument against reg (nil reg yields
// detached instruments) and binds the injected clock.
func newShardMetrics(reg *obs.Registry, clock obs.Clock) *shardMetrics {
	return &shardMetrics{
		tracer:         obs.NewTracer(clock),
		stepLatency:    reg.Histogram("shard.step_ns", obs.DurationBuckets),
		stepSkew:       reg.Histogram("shard.step_skew_ns", obs.DurationBuckets),
		queueDepth:     reg.Histogram("shard.queue_depth", obs.SizeBuckets),
		replicaFanout:  reg.Histogram("shard.query_replicas", obs.SizeBuckets),
		steps:          reg.Counter("shard.steps"),
		migrations:     reg.Counter("shard.migrations"),
		netted:         reg.Counter("shard.merge.netted"),
		bypassed:       reg.Counter("shard.merge.bypassed"),
		knnSubsteps:    reg.Counter("shard.knn.substeps"),
		mergedUpdates:  reg.Counter("shard.updates.merged"),
		tileSplits:     reg.Counter("shard.tile_splits"),
		tileMerges:     reg.Counter("shard.tile_merges"),
		tiles:          reg.Gauge("shard.tiles"),
		tileObjectsMax: reg.Gauge("shard.tile_objects_max"),
		tileAreaMax:    reg.Gauge("shard.tile_area_max_ppm"),
		lastEmitted:    reg.Gauge("shard.last_emitted"),
	}
}
