package shard

import "cqp/internal/obs"

// shardMetrics are the router's pre-resolved observability instruments.
// They are bound once in New against the same registry (and clock) the
// tile engines receive through Options.Core, so one scrape sees both
// views: the aggregated per-tile "engine.*" metrics and the router's
// own "shard.*" merge and balance metrics.
type shardMetrics struct {
	tracer *obs.Tracer

	stepLatency *obs.Histogram // full router Step, merge included (needs a Clock)
	stepSkew    *obs.Histogram // slowest−fastest tile per broadcast (needs a Clock)
	queueDepth  *obs.Histogram // per-tile buffered reports at broadcast time

	steps         *obs.Counter
	migrations    *obs.Counter // cross-tile object moves (remove+insert splits)
	netted        *obs.Counter // merge-dedup hits: touched pairs whose transitions canceled
	knnSubsteps   *obs.Counter // tiles sub-stepped by the kNN settle fixpoint
	mergedUpdates *obs.Counter // updates emitted after the merge

	tiles          *obs.Gauge // tile count (static after construction)
	tileObjectsMax *obs.Gauge // owned objects on the fullest tile: balance monitor
	lastEmitted    *obs.Gauge // merged updates emitted by the last Step
}

// newShardMetrics resolves every instrument against reg (nil reg yields
// detached instruments) and binds the injected clock.
func newShardMetrics(reg *obs.Registry, clock obs.Clock) *shardMetrics {
	return &shardMetrics{
		tracer:         obs.NewTracer(clock),
		stepLatency:    reg.Histogram("shard.step_ns", obs.DurationBuckets),
		stepSkew:       reg.Histogram("shard.step_skew_ns", obs.DurationBuckets),
		queueDepth:     reg.Histogram("shard.queue_depth", obs.SizeBuckets),
		steps:          reg.Counter("shard.steps"),
		migrations:     reg.Counter("shard.migrations"),
		netted:         reg.Counter("shard.merge.netted"),
		knnSubsteps:    reg.Counter("shard.knn.substeps"),
		mergedUpdates:  reg.Counter("shard.updates.merged"),
		tiles:          reg.Gauge("shard.tiles"),
		tileObjectsMax: reg.Gauge("shard.tile_objects_max"),
		lastEmitted:    reg.Gauge("shard.last_emitted"),
	}
}
