package shard

import (
	"slices"

	"cqp/internal/core"
	"cqp/internal/geo"
)

// ReportObject buffers an object update for the next Step.
func (e *Engine) ReportObject(u core.ObjectUpdate) {
	e.objBuf = append(e.objBuf, u)
}

// ReportQuery buffers a query registration, movement, or removal for
// the next Step.
func (e *Engine) ReportQuery(u core.QueryUpdate) {
	e.qryBuf = append(e.qryBuf, u)
}

// Pending returns the number of buffered, not yet processed reports.
func (e *Engine) Pending() int { return len(e.objBuf) + len(e.qryBuf) }

// pair identifies one (query, object) membership decision during a
// merge.
type pair struct {
	q core.QueryID
	o core.ObjectID
}

// mergeState is the scratch state of one router Step: the pre-step
// membership of every touched pair (so each pair emits at most one net
// transition regardless of how many tile streams mention it), the KNN
// queries needing a global re-rank, the queries and objects removed in
// this batch, and the merged output. It lives on the Engine and is
// reset, not reallocated, every step.
type mergeState struct {
	prior      map[pair]bool
	touched    []pair
	knnDirty   map[core.QueryID]struct{}
	priorHW    int // high-water len, see resetMap
	knnDirtyHW int

	removedQrys map[core.QueryID]*queryInfo
	removedObjs map[core.ObjectID]struct{}

	// resetQrys are queries whose merge state restarted from empty this
	// step (a kind change, or a removal followed by a re-registration
	// under the same ID). Tile streams may still carry phase-1 negatives
	// emitted by the old replicas before the teardown reached them;
	// those refer to the old incarnation's membership and must not fold
	// into the fresh counts (see absorb).
	resetQrys map[core.QueryID]struct{}

	// handoff marks the repartition handoff sub-step: every pair goes
	// through the refcounts so the dying and born replicas' −/+ streams
	// net to silence (see repartition.go).
	handoff bool

	out []core.Update
}

// beginMerge resets the engine's merge scratch for a new step.
func (e *Engine) beginMerge(out []core.Update) *mergeState {
	m := &e.merge
	if m.prior == nil {
		m.prior = make(map[pair]bool)
		m.knnDirty = make(map[core.QueryID]struct{})
		m.removedQrys = make(map[core.QueryID]*queryInfo)
		m.removedObjs = make(map[core.ObjectID]struct{})
		m.resetQrys = make(map[core.QueryID]struct{})
	} else {
		m.prior = resetMap(m.prior, &m.priorHW)
		m.knnDirty = resetMap(m.knnDirty, &m.knnDirtyHW)
		clear(m.removedQrys)
		clear(m.removedObjs)
		clear(m.resetQrys)
		m.touched = m.touched[:0]
	}
	m.handoff = false
	m.out = out
	return m
}

// resetMap clears a per-step scratch map for reuse. A cleared Go map
// keeps its bucket array, and clearing costs time proportional to that
// retained capacity — so one huge step (the bootstrap step refcounts
// every query before the single-replica bypass can engage) would tax
// every later step forever. When recent usage collapses far below the
// high-water mark the map is dropped and reallocated small instead.
func resetMap[K comparable, V any](mp map[K]V, hw *int) map[K]V {
	n := len(mp)
	if n > *hw {
		*hw = n
	}
	if *hw > 1024 && n*8 < *hw {
		*hw = n
		return make(map[K]V, 2*n+16)
	}
	clear(mp)
	return mp
}

// Step routes every buffered report to its tile(s), runs all tile
// engines in parallel at time now, and merges their update streams into
// the exact global incremental answer stream. See core.Engine.Step for
// the contract; the returned slice is freshly allocated and in the
// canonical order of core.SortUpdates.
func (e *Engine) Step(now float64) []core.Update {
	return e.stepAppend(nil, now)
}

// StepAppend is Step appending into a caller-owned buffer; see
// core.Engine.StepAppend for the contract.
func (e *Engine) StepAppend(dst []core.Update, now float64) []core.Update {
	return e.stepAppend(dst, now)
}

func (e *Engine) stepAppend(out []core.Update, now float64) []core.Update {
	base := len(out)
	begin := e.m.tracer.Begin()
	e.now = now
	e.stepSeq++
	e.stats.Steps++
	m := e.beginMerge(out)

	e.runRepartitions(m)
	e.routeObjects(m)
	e.routeQueries(m)

	for _, batch := range e.stepAll(now) {
		e.absorb(m, batch)
	}
	e.emitSetTransitions(m)
	e.settleKNNQueries(m, now)

	e.objBuf = e.objBuf[:0]
	e.qryBuf = e.qryBuf[:0]
	core.SortUpdates(m.out[base:])

	emitted := len(m.out) - base
	e.m.steps.Inc()
	e.m.mergedUpdates.Add(uint64(emitted))
	e.m.lastEmitted.Set(int64(emitted))
	maxObjs := 0
	for _, id := range e.live {
		if c := e.objCount[id]; c > maxObjs {
			maxObjs = c
		}
	}
	e.m.tileObjectsMax.Set(int64(maxObjs))
	e.m.tracer.End(e.m.stepLatency, begin)
	out = m.out
	m.out = nil
	return out
}

// routeObjects applies the buffered object reports to the routing table
// and forwards each to the tile owning the new location, splitting
// cross-tile moves into a removal (old tile) plus an insertion (new
// tile) so the old tile's queries still see their negative updates.
func (e *Engine) routeObjects(m *mergeState) {
	maxSpeed := e.opt.Core.MaxSpeed
	for i := range e.objBuf {
		u := e.objBuf[i]
		e.stats.ObjectReports++
		if u.Remove {
			info, ok := e.objs[u.ID]
			if !ok {
				continue
			}
			e.tiles[info.tile].ReportObject(core.ObjectUpdate{ID: u.ID, Remove: true})
			e.objCount[info.tile]--
			delete(e.objs, u.ID)
			m.removedObjs[u.ID] = struct{}{}
			e.markCandidateQueries(m, u.ID)
			continue
		}
		if len(u.Waypoints) > 0 {
			// Mirror the core engine's validation: a malformed trajectory
			// is rejected wholesale, keeping the prior state — it must
			// not trigger a migration.
			tr := geo.Trajectory{Start: u.Loc, T0: u.T, Waypoints: u.Waypoints}
			if !tr.Valid() {
				continue
			}
		}
		// Mirror the engine-side MaxSpeed rejection: a too-fast
		// predictive report must not migrate or re-home the object
		// either, or routing table and tile state would diverge.
		if core.ExceedsMaxSpeed(u, maxSpeed) {
			continue
		}
		clamped := e.clampToBounds(u.Loc)
		if info, ok := e.objs[u.ID]; ok {
			t := info.tile
			if !e.ownsPoint(e.tstate[t].rect, clamped) {
				t = e.tileOf(u.Loc)
			}
			if info.tile != t {
				e.m.migrations.Inc()
				e.tiles[info.tile].ReportObject(core.ObjectUpdate{ID: u.ID, Remove: true})
				e.objCount[info.tile]--
				e.objCount[t]++
				info.tile = t
			}
			info.last = u
			e.tiles[t].ReportObject(u)
		} else {
			t := e.tileOf(u.Loc)
			e.objs[u.ID] = &objInfo{tile: t, last: u}
			e.objCount[t]++
			e.tiles[t].ReportObject(u)
		}
		e.markCandidateQueries(m, u.ID)
	}
}

// markCandidateQueries schedules a global re-rank for every KNN query
// holding the object as a merge candidate: its distance changed even if
// no tile reports a membership change.
func (e *Engine) markCandidateQueries(m *mergeState, id core.ObjectID) {
	for qid := range e.candKNN[id] {
		m.knnDirty[qid] = struct{}{}
	}
}

// routeQueries applies the buffered query reports: removals are
// forwarded to every replica, registrations and movements update the
// replication coverage and are forwarded to it.
func (e *Engine) routeQueries(m *mergeState) {
	for i := range e.qryBuf {
		u := e.qryBuf[i]
		e.stats.QueryReports++
		if u.Remove {
			qi, ok := e.qrys[u.ID]
			if !ok {
				continue
			}
			for _, t := range qi.coverage {
				e.tiles[t].ReportQuery(core.QueryUpdate{ID: u.ID, Remove: true})
			}
			e.detachCandidates(qi)
			delete(e.qrys, u.ID)
			// Keep the record until the merge completes: tiles may have
			// emitted phase-1 negatives for this query (an object removal
			// processed before the removal of the query), exactly as the
			// single engine does. Those negatives fold through the
			// refcount path, so a bypass-mode record re-materializes its
			// counts.
			qi.materializeCount()
			m.removedQrys[u.ID] = qi
			continue
		}
		switch u.Kind {
		case core.Range, core.KNN, core.PredictiveRange:
		default:
			continue // mirror core: unknown kind, no side effects
		}
		e.applyQueryUpdate(m, u)
	}
}

// applyQueryUpdate registers or moves one query at the router: it
// mirrors the core engine's auto-commit semantics, recomputes the
// replication coverage for the new definition, and forwards the update
// to every tile that holds — or must now hold — a replica. Range
// replicas receive the region clipped to their tile's halo-expanded
// extent (membership of owned objects is invariant under the clip, see
// clipRegion), so a tile's spatial index never registers interest far
// outside its own region.
func (e *Engine) applyQueryUpdate(m *mergeState, u core.QueryUpdate) {
	qi, exists := e.qrys[u.ID]
	switch {
	case !exists:
		qi = &queryInfo{
			id:    u.ID,
			kind:  u.Kind,
			count: make(map[core.ObjectID]int),
		}
		e.qrys[u.ID] = qi
		// A fresh registration auto-commits its (empty) answer, as core
		// does. If the same ID was removed earlier in this batch, old
		// replicas may still stream stale negatives: mark the reset.
		qi.committed = qi.committed[:0]
		m.resetQrys[u.ID] = struct{}{}
	case qi.kind != u.Kind:
		// Kind change: core tears the query down silently (no negative
		// updates) and starts fresh, committing the empty answer. The
		// replicas handle the change themselves; only the merge state
		// resets here. Stale replicas outside the new coverage are
		// removed below.
		e.detachCandidates(qi)
		qi.count = make(map[core.ObjectID]int)
		qi.ans = qi.ans[:0]
		qi.answer = nil
		qi.radius = 0
		qi.kind = u.Kind
		qi.committed = qi.committed[:0]
		m.resetQrys[u.ID] = struct{}{}
	default:
		// Hearing from a query's client proves it consumed the stream:
		// auto-commit. The snapshot mirrors core's phase ordering — the
		// pre-step answer minus the objects removed earlier in this
		// batch (core's phase 1 retracts those before phase 2 commits).
		// For a bypass-mode query this is a memcopy of the sorted
		// answer; moving queries auto-commit every tick, so this path
		// dominated the router's query-move profile.
		e.commitNow(qi)
		if len(m.removedObjs) > 0 {
			kept := qi.committed[:0]
			for _, o := range qi.committed {
				if _, removed := m.removedObjs[o]; !removed {
					kept = append(kept, o)
				}
			}
			qi.committed = kept
		}
	}

	qi.t = u.T
	newCov := e.covBuf[:0]
	switch u.Kind {
	case core.Range:
		qi.region = u.Region
		newCov = e.tilesOverlapping(u.Region, newCov)
	case core.PredictiveRange:
		qi.region = u.Region
		qi.t1, qi.t2 = u.T1, u.T2
		newCov = e.predictiveCoverage(u.Region, newCov)
	case core.KNN:
		qi.focal = u.Focal
		qi.k = u.K
		// Coverage is monotone for a KNN query: every tile that ever
		// held a replica keeps receiving updates (a stale replica would
		// contribute stale candidates). The focal circle uses the
		// previous radius; the post-step fixpoint corrects it.
		grown := e.knnCoverage(u.Focal, qi.radius, e.covBuf2[:0])
		newCov = unionSorted(newCov, qi.coverage, grown)
		e.covBuf2 = grown[:0]
		m.knnDirty[qi.id] = struct{}{}
	}
	e.m.replicaFanout.Observe(int64(len(newCov)))

	// A coverage change ends the single-replica bypass for this step:
	// the refcount path will fold the old and new replicas' streams, so
	// the compact sorted answer must expand back into refcounts first.
	if qi.count == nil && !slices.Equal(qi.coverage, newCov) {
		qi.materializeCount()
	}

	for _, t := range qi.coverage {
		if covHas(newCov, t) {
			continue
		}
		// The region moved off this tile: forward the update so the
		// replica retracts its members with proper negatives, then
		// remove the now-empty replica in the same tile step. The full
		// (unclipped) region is fine here — it no longer overlaps the
		// tile, and the replica is gone within the step.
		e.tiles[t].ReportQuery(u)
		e.tiles[t].ReportQuery(core.QueryUpdate{ID: u.ID, Remove: true})
	}
	for _, t := range newCov {
		uc := u
		if u.Kind == core.Range {
			uc.Region = e.clipRegion(u.Region, t)
		}
		e.tiles[t].ReportQuery(uc)
	}
	if !slices.Equal(qi.coverage, newCov) {
		qi.coverage = append(qi.coverage[:0], newCov...)
		qi.covEpoch = e.stepSeq
	}
	e.covBuf = newCov[:0]
}

// lookupMerge resolves a query touched by a tile stream, including
// queries removed earlier in this batch.
func (e *Engine) lookupMerge(m *mergeState, q core.QueryID) *queryInfo {
	if qi, ok := e.qrys[q]; ok {
		return qi
	}
	return m.removedQrys[q]
}

// absorb folds one tile's update batch into the merge refcounts,
// recording the pre-step membership of each pair on first touch.
//
// Fast path: a live non-KNN query covered by exactly one tile whose
// coverage did not change this step streams straight through. The sole
// replica's emissions are already the exact merged transitions — no
// other tile can mention the query, and the stable coverage guarantees
// no stale old-replica updates are in flight — so the refcount
// bookkeeping (prior snapshot, touched list, net-transition pass)
// reduces to mirroring the count and emitting verbatim. Batches are
// sorted by (Query, Object), so the per-query decision is made once per
// run of updates, not once per update.
func (e *Engine) absorb(m *mergeState, batch []core.Update) {
	var nbypass uint64
	for i := 0; i < len(batch); {
		q := batch[i].Query
		j := i + 1
		for j < len(batch) && batch[j].Query == q {
			j++
		}
		run := batch[i:j]
		i = j
		qi, live := e.qrys[q]
		if !live {
			qi = m.removedQrys[q]
		}
		if qi == nil {
			continue
		}
		if live && !m.handoff && qi.kind != core.KNN &&
			len(qi.coverage) == 1 && qi.covEpoch != e.stepSeq {
			nbypass += uint64(len(run))
			e.absorbBypass(m, qi, run)
			continue
		}
		e.absorbCounted(m, qi, run)
	}
	if nbypass > 0 {
		e.m.bypassed.Add(nbypass)
	}
}

// absorbBypass folds the sole replica's update run for one query into
// its sorted-slice answer with a single linear merge: the run and the
// answer are both in ascending ObjectID order. Emission mirrors the
// refcount semantics exactly — a positive emits when the object was
// absent, a negative when present, and the remove+re-add corner (the
// one case a single engine emits two updates for a pair) streams
// through verbatim.
func (e *Engine) absorbBypass(m *mergeState, qi *queryInfo, run []core.Update) {
	if qi.count != nil {
		qi.materializeAns()
	}
	old := qi.ans
	buf := e.ansBuf[:0]
	k := 0
	for r := 0; r < len(run); {
		o := run[r].Object
		for k < len(old) && old[k] < o {
			buf = append(buf, old[k])
			k++
		}
		present := k < len(old) && old[k] == o
		if present {
			k++
		}
		for ; r < len(run) && run[r].Object == o; r++ {
			if run[r].Positive {
				if !present {
					present = true
					e.emit(m, qi.id, o, true)
				}
			} else if present {
				present = false
				e.emit(m, qi.id, o, false)
			}
			// else: stale negative for a state the merge never held;
			// ignore, as the refcount path does.
		}
		if present {
			buf = append(buf, o)
		}
	}
	buf = append(buf, old[k:]...)
	qi.ans = append(old[:0], buf...)
	e.ansBuf = buf[:0]
}

// absorbCounted folds one query's update run through the refcounts,
// recording the pre-step membership of each pair on first touch.
func (e *Engine) absorbCounted(m *mergeState, qi *queryInfo, run []core.Update) {
	if qi.kind != core.KNN && qi.count == nil {
		// A bypass-mode query pulled back through the refcount path
		// (handoff sub-step, or a coverage change arranged after its
		// last bypass step).
		qi.materializeCount()
	}
	for _, u := range run {
		key := pair{u.Query, u.Object}
		if _, seen := m.prior[key]; !seen {
			m.prior[key] = e.memberOf(qi, u.Object)
			m.touched = append(m.touched, key)
		}
		if u.Positive {
			qi.count[u.Object]++
			if qi.count[u.Object] == 1 && qi.kind == core.KNN {
				e.addCandidate(u.Object, qi.id)
			}
		} else {
			if _, reset := m.resetQrys[u.Query]; reset {
				// The query restarted from empty this step (kind change
				// or same-ID re-registration). A fresh replica can only
				// accrete members in its registration step, so every
				// negative in this step's streams was emitted by an old
				// replica about the old incarnation's membership —
				// e.g. the phase-1 retraction of a cross-tile mover.
				// Folding it in would cancel a genuine new-incarnation
				// positive from a tile absorbed earlier; which tile is
				// absorbed first must never decide the merged answer.
				continue
			}
			switch c := qi.count[u.Object]; {
			case c > 1:
				qi.count[u.Object] = c - 1
			case c == 1:
				delete(qi.count, u.Object)
				if qi.kind == core.KNN {
					e.dropCandidate(u.Object, qi.id)
				}
			}
			// c == 0: a retraction for a query re-registered under the
			// same ID in this batch; the fresh state never held it.
		}
	}
}

// memberOf reports whether the merged global answer of qi currently
// contains o.
func (e *Engine) memberOf(qi *queryInfo, o core.ObjectID) bool {
	if qi.kind == core.KNN {
		_, in := qi.answer[o]
		return in
	}
	if qi.count == nil {
		_, in := slices.BinarySearch(qi.ans, o)
		return in
	}
	return qi.count[o] > 0
}

func (e *Engine) addCandidate(o core.ObjectID, q core.QueryID) {
	set := e.candKNN[o]
	if set == nil {
		set = make(map[core.QueryID]struct{})
		e.candKNN[o] = set
	}
	set[q] = struct{}{}
}

func (e *Engine) dropCandidate(o core.ObjectID, q core.QueryID) {
	if set := e.candKNN[o]; set != nil {
		delete(set, q)
		if len(set) == 0 {
			delete(e.candKNN, o)
		}
	}
}

// detachCandidates removes a KNN query from the reverse candidacy index
// on removal or kind change.
func (e *Engine) detachCandidates(qi *queryInfo) {
	if qi.kind != core.KNN {
		return
	}
	for o := range qi.count {
		e.dropCandidate(o, qi.id)
	}
}

// emitSetTransitions emits the net membership transition of every
// touched non-KNN pair (KNN queries are settled by the exact top-k
// merge afterwards). A pair mentioned by several tile streams — e.g. a
// cross-tile migration inside a multi-tile query, retracted by one tile
// and asserted by the other — nets out here and emits nothing, while a
// genuine change emits exactly once.
func (e *Engine) emitSetTransitions(m *mergeState) {
	for _, key := range m.touched {
		qi := e.lookupMerge(m, key.q)
		if qi == nil {
			continue
		}
		if qi.kind == core.KNN {
			if _, live := e.qrys[key.q]; live {
				m.knnDirty[key.q] = struct{}{}
			} else if _, was := qi.answer[key.o]; was && qi.count[key.o] == 0 {
				// A query removed in this batch still streams the
				// phase-1 negatives of its departed members, as the
				// single engine does.
				delete(qi.answer, key.o)
				e.emit(m, key.q, key.o, false)
			}
			continue
		}
		nowIn := qi.count[key.o] > 0
		if nowIn != m.prior[key] {
			e.emit(m, key.q, key.o, nowIn)
		} else {
			// The transitions netted out — e.g. a cross-tile migration's
			// −/+ pair inside one query: the merge deduplicated it.
			e.m.netted.Inc()
		}
	}
}

// emit appends one merged global update.
func (e *Engine) emit(m *mergeState, q core.QueryID, o core.ObjectID, positive bool) {
	if positive {
		e.stats.PositiveUpdates++
	} else {
		e.stats.NegativeUpdates++
	}
	m.out = append(m.out, core.Update{Query: q, Object: o, Positive: positive})
}
