package shard

import (
	"cqp/internal/core"
	"cqp/internal/geo"
)

// ReportObject buffers an object update for the next Step.
func (e *Engine) ReportObject(u core.ObjectUpdate) {
	e.objBuf = append(e.objBuf, u)
}

// ReportQuery buffers a query registration, movement, or removal for
// the next Step.
func (e *Engine) ReportQuery(u core.QueryUpdate) {
	e.qryBuf = append(e.qryBuf, u)
}

// Pending returns the number of buffered, not yet processed reports.
func (e *Engine) Pending() int { return len(e.objBuf) + len(e.qryBuf) }

// pair identifies one (query, object) membership decision during a
// merge.
type pair struct {
	q core.QueryID
	o core.ObjectID
}

// mergeState is the scratch state of one router Step: the pre-step
// membership of every touched pair (so each pair emits at most one net
// transition regardless of how many tile streams mention it), the KNN
// queries needing a global re-rank, the queries and objects removed in
// this batch, and the merged output.
type mergeState struct {
	prior    map[pair]bool
	touched  []pair
	knnDirty map[core.QueryID]struct{}

	removedQrys map[core.QueryID]*queryInfo
	removedObjs map[core.ObjectID]struct{}

	// resetQrys are queries whose merge state restarted from empty this
	// step (a kind change, or a removal followed by a re-registration
	// under the same ID). Tile streams may still carry phase-1 negatives
	// emitted by the old replicas before the teardown reached them;
	// those refer to the old incarnation's membership and must not fold
	// into the fresh counts (see absorb).
	resetQrys map[core.QueryID]struct{}

	out []core.Update
}

// Step routes every buffered report to its tile(s), runs all tile
// engines in parallel at time now, and merges their update streams into
// the exact global incremental answer stream. See core.Engine.Step for
// the contract; the returned slice is freshly allocated and in the
// canonical order of core.SortUpdates, so the sharded engine's stream is
// bit-identical to the single-space engine's for the same reports.
func (e *Engine) Step(now float64) []core.Update {
	return e.stepAppend(nil, now)
}

// StepAppend is Step appending into a caller-owned buffer; see
// core.Engine.StepAppend for the contract.
func (e *Engine) StepAppend(dst []core.Update, now float64) []core.Update {
	return e.stepAppend(dst, now)
}

func (e *Engine) stepAppend(out []core.Update, now float64) []core.Update {
	base := len(out)
	begin := e.m.tracer.Begin()
	e.now = now
	e.stats.Steps++
	m := &mergeState{
		prior:       make(map[pair]bool),
		knnDirty:    make(map[core.QueryID]struct{}),
		removedQrys: make(map[core.QueryID]*queryInfo),
		removedObjs: make(map[core.ObjectID]struct{}),
		resetQrys:   make(map[core.QueryID]struct{}),
		out:         out,
	}

	e.routeObjects(m)
	e.routeQueries(m)

	for _, batch := range e.stepAll(now) {
		e.absorb(m, batch)
	}
	e.emitSetTransitions(m)
	e.settleKNNQueries(m, now)

	e.objBuf = e.objBuf[:0]
	e.qryBuf = e.qryBuf[:0]
	core.SortUpdates(m.out[base:])

	emitted := len(m.out) - base
	e.m.steps.Inc()
	e.m.mergedUpdates.Add(uint64(emitted))
	e.m.lastEmitted.Set(int64(emitted))
	maxObjs := 0
	for _, c := range e.objCount {
		if c > maxObjs {
			maxObjs = c
		}
	}
	e.m.tileObjectsMax.Set(int64(maxObjs))
	e.m.tracer.End(e.m.stepLatency, begin)
	return m.out
}

// routeObjects applies the buffered object reports to the routing table
// and forwards each to the tile owning the new location, splitting
// cross-tile moves into a removal (old tile) plus an insertion (new
// tile) so the old tile's queries still see their negative updates.
func (e *Engine) routeObjects(m *mergeState) {
	for i := range e.objBuf {
		u := e.objBuf[i]
		e.stats.ObjectReports++
		if u.Remove {
			info, ok := e.objs[u.ID]
			if !ok {
				continue
			}
			e.tiles[info.tile].ReportObject(core.ObjectUpdate{ID: u.ID, Remove: true})
			e.objCount[info.tile]--
			delete(e.objs, u.ID)
			m.removedObjs[u.ID] = struct{}{}
			e.markCandidateQueries(m, u.ID)
			continue
		}
		if len(u.Waypoints) > 0 {
			// Mirror the core engine's validation: a malformed trajectory
			// is rejected wholesale, keeping the prior state — it must
			// not trigger a migration.
			tr := geo.Trajectory{Start: u.Loc, T0: u.T, Waypoints: u.Waypoints}
			if !tr.Valid() {
				continue
			}
		}
		t := e.tileOf(u.Loc)
		if info, ok := e.objs[u.ID]; ok {
			if info.tile != t {
				e.m.migrations.Inc()
				e.tiles[info.tile].ReportObject(core.ObjectUpdate{ID: u.ID, Remove: true})
				e.objCount[info.tile]--
				e.objCount[t]++
				info.tile = t
			}
			info.loc = u.Loc
		} else {
			e.objs[u.ID] = &objInfo{tile: t, loc: u.Loc}
			e.objCount[t]++
		}
		e.tiles[t].ReportObject(u)
		e.markCandidateQueries(m, u.ID)
	}
}

// markCandidateQueries schedules a global re-rank for every KNN query
// holding the object as a merge candidate: its distance changed even if
// no tile reports a membership change.
func (e *Engine) markCandidateQueries(m *mergeState, id core.ObjectID) {
	for qid := range e.candKNN[id] {
		m.knnDirty[qid] = struct{}{}
	}
}

// routeQueries applies the buffered query reports: removals are
// forwarded to every replica, registrations and movements update the
// replication coverage and are forwarded to it.
func (e *Engine) routeQueries(m *mergeState) {
	for i := range e.qryBuf {
		u := e.qryBuf[i]
		e.stats.QueryReports++
		if u.Remove {
			qi, ok := e.qrys[u.ID]
			if !ok {
				continue
			}
			for t := range qi.coverage {
				e.tiles[t].ReportQuery(core.QueryUpdate{ID: u.ID, Remove: true})
			}
			e.detachCandidates(qi)
			delete(e.qrys, u.ID)
			// Keep the record until the merge completes: tiles may have
			// emitted phase-1 negatives for this query (an object removal
			// processed before the removal of the query), exactly as the
			// single engine does.
			m.removedQrys[u.ID] = qi
			continue
		}
		switch u.Kind {
		case core.Range, core.KNN, core.PredictiveRange:
		default:
			continue // mirror core: unknown kind, no side effects
		}
		e.applyQueryUpdate(m, u)
	}
}

// applyQueryUpdate registers or moves one query at the router: it
// mirrors the core engine's auto-commit semantics, recomputes the
// replication coverage for the new definition, and forwards the update
// to every tile that holds — or must now hold — a replica.
func (e *Engine) applyQueryUpdate(m *mergeState, u core.QueryUpdate) {
	qi, exists := e.qrys[u.ID]
	switch {
	case !exists:
		qi = &queryInfo{
			id:       u.ID,
			kind:     u.Kind,
			count:    make(map[core.ObjectID]int),
			coverage: make(map[int]struct{}),
		}
		e.qrys[u.ID] = qi
		// A fresh registration auto-commits its (empty) answer, as core
		// does. If the same ID was removed earlier in this batch, old
		// replicas may still stream stale negatives: mark the reset.
		qi.committed = make(map[core.ObjectID]struct{})
		m.resetQrys[u.ID] = struct{}{}
	case qi.kind != u.Kind:
		// Kind change: core tears the query down silently (no negative
		// updates) and starts fresh, committing the empty answer. The
		// replicas handle the change themselves; only the merge state
		// resets here. Stale replicas outside the new coverage are
		// removed below.
		e.detachCandidates(qi)
		qi.count = make(map[core.ObjectID]int)
		qi.answer = nil
		qi.radius = 0
		qi.kind = u.Kind
		qi.committed = make(map[core.ObjectID]struct{})
		m.resetQrys[u.ID] = struct{}{}
	default:
		// Hearing from a query's client proves it consumed the stream:
		// auto-commit. The snapshot mirrors core's phase ordering — the
		// pre-step answer minus the objects removed earlier in this
		// batch (core's phase 1 retracts those before phase 2 commits).
		committed := make(map[core.ObjectID]struct{})
		for _, o := range e.answerIDs(qi) {
			if _, removed := m.removedObjs[o]; !removed {
				committed[o] = struct{}{}
			}
		}
		qi.committed = committed
	}

	qi.t = u.T
	newCov := make(map[int]struct{})
	switch u.Kind {
	case core.Range:
		qi.region = u.Region
		e.tilesOverlapping(u.Region, newCov)
	case core.PredictiveRange:
		// A predictive object's trajectory can enter the query region
		// from any tile, and the object↔query join runs in the tile
		// owning the object: replicate everywhere.
		qi.region = u.Region
		e.allTiles(newCov)
	case core.KNN:
		qi.focal = u.Focal
		qi.k = u.K
		// Coverage is monotone for a KNN query: every tile that ever
		// held a replica keeps receiving updates (a stale replica would
		// contribute stale candidates). The focal circle uses the
		// previous radius; the post-step fixpoint corrects it.
		for t := range qi.coverage {
			newCov[t] = struct{}{}
		}
		e.knnCoverage(u.Focal, qi.radius, newCov)
		m.knnDirty[qi.id] = struct{}{}
	}

	for t := range qi.coverage {
		if _, keep := newCov[t]; !keep {
			// The region moved off this tile: forward the update so the
			// replica retracts its members with proper negatives, then
			// remove the now-empty replica in the same tile step.
			e.tiles[t].ReportQuery(u)
			e.tiles[t].ReportQuery(core.QueryUpdate{ID: u.ID, Remove: true})
		}
	}
	for t := range newCov {
		e.tiles[t].ReportQuery(u)
	}
	qi.coverage = newCov
}

// lookupMerge resolves a query touched by a tile stream, including
// queries removed earlier in this batch.
func (e *Engine) lookupMerge(m *mergeState, q core.QueryID) *queryInfo {
	if qi, ok := e.qrys[q]; ok {
		return qi
	}
	return m.removedQrys[q]
}

// absorb folds one tile's update batch into the merge refcounts,
// recording the pre-step membership of each pair on first touch.
func (e *Engine) absorb(m *mergeState, batch []core.Update) {
	for _, u := range batch {
		qi := e.lookupMerge(m, u.Query)
		if qi == nil {
			continue
		}
		key := pair{u.Query, u.Object}
		if _, seen := m.prior[key]; !seen {
			m.prior[key] = e.memberOf(qi, u.Object)
			m.touched = append(m.touched, key)
		}
		if u.Positive {
			qi.count[u.Object]++
			if qi.count[u.Object] == 1 && qi.kind == core.KNN {
				e.addCandidate(u.Object, qi.id)
			}
		} else {
			if _, reset := m.resetQrys[u.Query]; reset {
				// The query restarted from empty this step (kind change
				// or same-ID re-registration). A fresh replica can only
				// accrete members in its registration step, so every
				// negative in this step's streams was emitted by an old
				// replica about the old incarnation's membership —
				// e.g. the phase-1 retraction of a cross-tile mover.
				// Folding it in would cancel a genuine new-incarnation
				// positive from a tile absorbed earlier; which tile is
				// absorbed first must never decide the merged answer.
				continue
			}
			switch c := qi.count[u.Object]; {
			case c > 1:
				qi.count[u.Object] = c - 1
			case c == 1:
				delete(qi.count, u.Object)
				if qi.kind == core.KNN {
					e.dropCandidate(u.Object, qi.id)
				}
			}
			// c == 0: a retraction for a query re-registered under the
			// same ID in this batch; the fresh state never held it.
		}
	}
}

// memberOf reports whether the merged global answer of qi currently
// contains o.
func (e *Engine) memberOf(qi *queryInfo, o core.ObjectID) bool {
	if qi.kind == core.KNN {
		_, in := qi.answer[o]
		return in
	}
	return qi.count[o] > 0
}

func (e *Engine) addCandidate(o core.ObjectID, q core.QueryID) {
	set := e.candKNN[o]
	if set == nil {
		set = make(map[core.QueryID]struct{})
		e.candKNN[o] = set
	}
	set[q] = struct{}{}
}

func (e *Engine) dropCandidate(o core.ObjectID, q core.QueryID) {
	if set := e.candKNN[o]; set != nil {
		delete(set, q)
		if len(set) == 0 {
			delete(e.candKNN, o)
		}
	}
}

// detachCandidates removes a KNN query from the reverse candidacy index
// on removal or kind change.
func (e *Engine) detachCandidates(qi *queryInfo) {
	if qi.kind != core.KNN {
		return
	}
	for o := range qi.count {
		e.dropCandidate(o, qi.id)
	}
}

// emitSetTransitions emits the net membership transition of every
// touched non-KNN pair (KNN queries are settled by the exact top-k
// merge afterwards). A pair mentioned by several tile streams — e.g. a
// cross-tile migration inside a multi-tile query, retracted by one tile
// and asserted by the other — nets out here and emits nothing, while a
// genuine change emits exactly once.
func (e *Engine) emitSetTransitions(m *mergeState) {
	for _, key := range m.touched {
		qi := e.lookupMerge(m, key.q)
		if qi == nil {
			continue
		}
		if qi.kind == core.KNN {
			if _, live := e.qrys[key.q]; live {
				m.knnDirty[key.q] = struct{}{}
			} else if _, was := qi.answer[key.o]; was && qi.count[key.o] == 0 {
				// A query removed in this batch still streams the
				// phase-1 negatives of its departed members, as the
				// single engine does.
				delete(qi.answer, key.o)
				e.emit(m, key.q, key.o, false)
			}
			continue
		}
		nowIn := qi.count[key.o] > 0
		if nowIn != m.prior[key] {
			e.emit(m, key.q, key.o, nowIn)
		} else {
			// The transitions netted out — e.g. a cross-tile migration's
			// −/+ pair inside one query: the merge deduplicated it.
			e.m.netted.Inc()
		}
	}
}

// emit appends one merged global update.
func (e *Engine) emit(m *mergeState, q core.QueryID, o core.ObjectID, positive bool) {
	if positive {
		e.stats.PositiveUpdates++
	} else {
		e.stats.NegativeUpdates++
	}
	m.out = append(m.out, core.Update{Query: q, Object: o, Positive: positive})
}
