package shard

import (
	"sort"
	"testing"

	"cqp/internal/core"
	"cqp/internal/geo"
)

func newTestShard(t *testing.T, rows, cols int) *Engine {
	t.Helper()
	e, err := New(Options{
		Core: core.Options{Bounds: geo.R(0, 0, 10, 10), GridN: 8},
		Rows: rows, Cols: cols,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	return e
}

func answerOf(t *testing.T, p core.Processor, q core.QueryID) []core.ObjectID {
	t.Helper()
	ids, ok := p.Answer(q)
	if !ok {
		t.Fatalf("query %d unknown", q)
	}
	return ids
}

func idsEqual(a, b []core.ObjectID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestSplit(t *testing.T) {
	cases := []struct{ n, rows, cols int }{
		{0, 1, 1}, {1, 1, 1}, {2, 1, 2}, {4, 2, 2},
		{6, 2, 3}, {7, 1, 7}, {9, 3, 3}, {12, 3, 4},
	}
	for _, c := range cases {
		r, co := Split(c.n)
		if r != c.rows || co != c.cols {
			t.Errorf("Split(%d) = %dx%d, want %dx%d", c.n, r, co, c.rows, c.cols)
		}
		if c.n >= 1 && r*co != c.n {
			t.Errorf("Split(%d) product %d", c.n, r*co)
		}
	}
}

func TestOptionsValidation(t *testing.T) {
	bad := []Options{
		{Core: core.Options{Bounds: geo.R(0, 0, 1, 1)}, Rows: -1},
		{Core: core.Options{Bounds: geo.R(0, 0, 1, 1)}, Cols: -2},
		{Core: core.Options{Bounds: geo.R(0, 0, 1, 1)}, PadTiles: -1},
		{Core: core.Options{}}, // invalid core bounds
	}
	for i, o := range bad {
		if e, err := New(o); err == nil {
			e.Close()
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestTileOwnership(t *testing.T) {
	e := newTestShard(t, 2, 2)
	cases := []struct {
		p    geo.Point
		tile int
	}{
		{geo.Pt(1, 1), 0}, {geo.Pt(9, 1), 1},
		{geo.Pt(1, 9), 2}, {geo.Pt(9, 9), 3},
		{geo.Pt(-5, -5), 0}, // out of bounds clamps to corner tile
		{geo.Pt(50, 50), 3}, // ditto
		{geo.Pt(10, 10), 3}, // boundary clamps inward
		{geo.Pt(5, 5), 3},   // tile boundaries belong to the upper tile
	}
	for _, c := range cases {
		if got := e.tileOf(c.p); got != c.tile {
			t.Errorf("tileOf(%v) = %d, want %d", c.p, got, c.tile)
		}
	}
}

func TestCloseIdempotent(t *testing.T) {
	e := newTestShard(t, 2, 2)
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestRangeAcrossTiles registers one range query spanning all four tiles
// and objects in each tile; the merged answer must contain every object
// exactly once.
func TestRangeAcrossTiles(t *testing.T) {
	e := newTestShard(t, 2, 2)
	locs := []geo.Point{geo.Pt(2, 2), geo.Pt(8, 2), geo.Pt(2, 8), geo.Pt(8, 8)}
	for i, p := range locs {
		e.ReportObject(core.ObjectUpdate{ID: core.ObjectID(i + 1), Kind: core.Moving, Loc: p})
	}
	e.ReportObject(core.ObjectUpdate{ID: 99, Kind: core.Moving, Loc: geo.Pt(9.8, 0.2)}) // outside region
	e.ReportQuery(core.QueryUpdate{ID: 1, Kind: core.Range, Region: geo.R(1, 1, 9, 9)})
	updates := e.Step(0)

	if want := 4; len(updates) != want {
		t.Fatalf("got %d updates %v, want %d", len(updates), updates, want)
	}
	got := answerOf(t, e, 1)
	if !idsEqual(got, []core.ObjectID{1, 2, 3, 4}) {
		t.Fatalf("answer = %v", got)
	}
	if n := e.NumObjects(); n != 5 {
		t.Fatalf("NumObjects = %d", n)
	}
}

// TestKNNAcrossTiles places the k nearest of a focal point in different
// tiles and checks the merged global top-k is exact.
func TestKNNAcrossTiles(t *testing.T) {
	e := newTestShard(t, 2, 2)
	// Focal at the center: the four nearest straddle all four tiles.
	e.ReportObject(core.ObjectUpdate{ID: 1, Kind: core.Moving, Loc: geo.Pt(4.6, 4.6)})
	e.ReportObject(core.ObjectUpdate{ID: 2, Kind: core.Moving, Loc: geo.Pt(5.3, 4.7)})
	e.ReportObject(core.ObjectUpdate{ID: 3, Kind: core.Moving, Loc: geo.Pt(4.7, 5.2)})
	e.ReportObject(core.ObjectUpdate{ID: 4, Kind: core.Moving, Loc: geo.Pt(5.4, 5.4)})
	// Far decoys, one per tile.
	e.ReportObject(core.ObjectUpdate{ID: 5, Kind: core.Moving, Loc: geo.Pt(0.5, 0.5)})
	e.ReportObject(core.ObjectUpdate{ID: 6, Kind: core.Moving, Loc: geo.Pt(9.5, 0.5)})
	e.ReportObject(core.ObjectUpdate{ID: 7, Kind: core.Moving, Loc: geo.Pt(0.5, 9.5)})
	e.ReportObject(core.ObjectUpdate{ID: 8, Kind: core.Moving, Loc: geo.Pt(9.5, 9.5)})
	e.ReportQuery(core.QueryUpdate{ID: 1, Kind: core.KNN, Focal: geo.Pt(5, 5), K: 4})
	e.Step(0)

	got := answerOf(t, e, 1)
	if !idsEqual(got, []core.ObjectID{1, 2, 3, 4}) {
		t.Fatalf("top-4 = %v", got)
	}

	// A decoy moves in and displaces the current 4th: exactly one
	// negative and one positive.
	e.ReportObject(core.ObjectUpdate{ID: 8, Kind: core.Moving, Loc: geo.Pt(5.1, 5.1), T: 1})
	updates := e.Step(1)
	if len(updates) != 2 {
		t.Fatalf("updates = %v", updates)
	}
	got = answerOf(t, e, 1)
	if !idsEqual(got, []core.ObjectID{1, 2, 3, 8}) {
		t.Fatalf("top-4 after intrusion = %v", got)
	}
}

// TestKNNStarved checks that a query with fewer objects than k reports
// them all and picks up a later arrival anywhere in the space.
func TestKNNStarved(t *testing.T) {
	e := newTestShard(t, 2, 2)
	e.ReportObject(core.ObjectUpdate{ID: 1, Kind: core.Moving, Loc: geo.Pt(1, 1)})
	e.ReportQuery(core.QueryUpdate{ID: 1, Kind: core.KNN, Focal: geo.Pt(1, 1), K: 3})
	e.Step(0)
	if got := answerOf(t, e, 1); !idsEqual(got, []core.ObjectID{1}) {
		t.Fatalf("starved answer = %v", got)
	}
	// An object arriving in the far corner must still be noticed.
	e.ReportObject(core.ObjectUpdate{ID: 2, Kind: core.Moving, Loc: geo.Pt(9.9, 9.9), T: 1})
	e.Step(1)
	if got := answerOf(t, e, 1); !idsEqual(got, []core.ObjectID{1, 2}) {
		t.Fatalf("answer after arrival = %v", got)
	}
}

// TestPredictiveAcrossTiles checks a predictive object in one tile is
// matched against a predictive query region in another tile.
func TestPredictiveAcrossTiles(t *testing.T) {
	e := newTestShard(t, 2, 2)
	// Object in tile 0 heading toward tile 3.
	e.ReportObject(core.ObjectUpdate{
		ID: 1, Kind: core.Predictive,
		Loc: geo.Pt(1, 1), Vel: geo.Vec(1, 1), T: 0,
	})
	// Region entirely inside tile 3; window when the object is there.
	e.ReportQuery(core.QueryUpdate{
		ID: 1, Kind: core.PredictiveRange,
		Region: geo.R(7, 7, 9, 9), T1: 6, T2: 8, T: 0,
	})
	e.Step(0)
	if got := answerOf(t, e, 1); !idsEqual(got, []core.ObjectID{1}) {
		t.Fatalf("predictive answer = %v", got)
	}
}

// TestCommitRecoverProtocol smoke-tests the out-of-sync protocol on the
// merged answers.
func TestCommitRecoverProtocol(t *testing.T) {
	e := newTestShard(t, 2, 2)
	e.ReportObject(core.ObjectUpdate{ID: 1, Kind: core.Moving, Loc: geo.Pt(2, 2)})
	e.ReportObject(core.ObjectUpdate{ID: 2, Kind: core.Moving, Loc: geo.Pt(8, 8)})
	e.ReportQuery(core.QueryUpdate{ID: 1, Kind: core.Range, Region: geo.R(1, 1, 9, 9)})
	e.Step(0)

	if !e.Commit(1) {
		t.Fatal("Commit failed")
	}
	cs, _ := e.CommittedChecksum(1)
	as, _ := e.AnswerChecksum(1)
	if cs != as {
		t.Fatal("committed checksum should match answer checksum after Commit")
	}

	// Object 1 leaves, object 3 arrives; the client missed both.
	e.ReportObject(core.ObjectUpdate{ID: 1, Kind: core.Moving, Loc: geo.Pt(0.1, 0.1), T: 1})
	e.ReportObject(core.ObjectUpdate{ID: 3, Kind: core.Moving, Loc: geo.Pt(5, 5), T: 1})
	e.Step(1)

	rec, ok := e.Recover(1)
	if !ok {
		t.Fatal("Recover failed")
	}
	want := []core.Update{
		{Query: 1, Object: 1, Positive: false},
		{Query: 1, Object: 3, Positive: true},
	}
	if len(rec) != len(want) {
		t.Fatalf("recovery = %v, want %v", rec, want)
	}
	for i := range want {
		if rec[i] != want[i] {
			t.Fatalf("recovery = %v, want %v", rec, want)
		}
	}
	ca, _ := e.CommittedAnswer(1)
	if !idsEqual(ca, []core.ObjectID{2, 3}) {
		t.Fatalf("committed after recover = %v", ca)
	}

	if _, ok := e.Recover(42); ok {
		t.Fatal("Recover of unknown query should fail")
	}
	if e.SeedCommitted(42, nil) {
		t.Fatal("SeedCommitted of unknown query should fail")
	}
	if e.SeedCommitted(1, []core.ObjectID{7}) != true {
		t.Fatal("SeedCommitted failed")
	}
	ca, _ = e.CommittedAnswer(1)
	if !idsEqual(ca, []core.ObjectID{7}) {
		t.Fatalf("seeded committed = %v", ca)
	}
}

// TestQueryMoveAcrossTiles moves a range query's region from one tile
// to another; members must be swapped with proper updates and the old
// tile's replica torn down.
func TestQueryMoveAcrossTiles(t *testing.T) {
	e := newTestShard(t, 1, 2)
	e.ReportObject(core.ObjectUpdate{ID: 1, Kind: core.Moving, Loc: geo.Pt(2, 5)})
	e.ReportObject(core.ObjectUpdate{ID: 2, Kind: core.Moving, Loc: geo.Pt(8, 5)})
	e.ReportQuery(core.QueryUpdate{ID: 1, Kind: core.Range, Region: geo.R(1, 4, 3, 6)})
	e.Step(0)
	if got := answerOf(t, e, 1); !idsEqual(got, []core.ObjectID{1}) {
		t.Fatalf("answer = %v", got)
	}

	e.ReportQuery(core.QueryUpdate{ID: 1, Kind: core.Range, Region: geo.R(7, 4, 9, 6), T: 1})
	updates := e.Step(1)
	sort.Slice(updates, func(i, j int) bool { return updates[i].Object < updates[j].Object })
	want := []core.Update{
		{Query: 1, Object: 1, Positive: false},
		{Query: 1, Object: 2, Positive: true},
	}
	if len(updates) != 2 || updates[0] != want[0] || updates[1] != want[1] {
		t.Fatalf("updates = %v, want %v", updates, want)
	}
	if covHas(e.qrys[1].coverage, 0) {
		t.Fatal("old tile should no longer hold a replica")
	}
}

// TestUnknownQueryKindRejectedAtRouter mirrors the core engine: an
// unknown kind must not register, and on an existing query must not
// commit or mutate anything.
func TestUnknownQueryKindRejectedAtRouter(t *testing.T) {
	e := newTestShard(t, 2, 2)
	e.ReportQuery(core.QueryUpdate{ID: 1, Kind: core.QueryKind(99)})
	e.Step(0)
	if e.NumQueries() != 0 {
		t.Fatal("unknown kind should not register")
	}

	e.ReportObject(core.ObjectUpdate{ID: 1, Kind: core.Moving, Loc: geo.Pt(2, 2), T: 1})
	e.ReportQuery(core.QueryUpdate{ID: 1, Kind: core.Range, Region: geo.R(1, 1, 3, 3), T: 1})
	e.Step(1)
	e.ReportQuery(core.QueryUpdate{ID: 1, Kind: core.QueryKind(99), T: 2})
	e.Step(2)
	ca, ok := e.CommittedAnswer(1)
	if !ok || len(ca) != 0 {
		t.Fatalf("unknown-kind update must not auto-commit; committed = %v", ca)
	}
}

// TestStatsAggregation checks router counters and shard work counters.
func TestStatsAggregation(t *testing.T) {
	e := newTestShard(t, 2, 2)
	e.ReportObject(core.ObjectUpdate{ID: 1, Kind: core.Moving, Loc: geo.Pt(2, 2)})
	e.ReportQuery(core.QueryUpdate{ID: 1, Kind: core.KNN, Focal: geo.Pt(2, 2), K: 1})
	e.Step(0)
	s := e.Stats()
	if s.Steps != 1 || s.ObjectReports != 1 || s.QueryReports != 1 {
		t.Fatalf("router counters = %+v", s)
	}
	if s.PositiveUpdates != 1 {
		t.Fatalf("PositiveUpdates = %d", s.PositiveUpdates)
	}
	if s.KNNRecomputes == 0 {
		t.Fatal("expected shard kNN work to be aggregated")
	}
}
