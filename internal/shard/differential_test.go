package shard

import (
	"math/rand"
	"sort"
	"testing"

	"cqp/internal/core"
	"cqp/internal/geo"
)

// TestDifferentialShardedVsSingle is the central correctness property
// of the sharded engine: an arbitrary randomized workload — moving,
// predictive, and trajectory objects, range/kNN/predictive queries,
// removals, kind changes, and plenty of cross-shard movers — replayed
// through a single core.Engine and through a 2×2 (and 1×4) sharded
// engine must produce identical answers AND identical committed answers
// for every query after every Step.
//
// The per-step update streams are allowed to differ (a cross-tile
// migration inside a spanning query nets to nothing here but may also
// net to nothing in core; attribution of same-batch teardown differs),
// so the test additionally replays the sharded stream into per-query
// client sets and checks the replay guarantee holds for the sharded
// engine exactly as core's property test checks it for the single one.
func TestDifferentialShardedVsSingle(t *testing.T) {
	for _, seed := range []int64{1, 2, 7, 42, 1234} {
		for _, grid := range [][2]int{{2, 2}, {1, 4}} {
			seed, grid := seed, grid
			t.Run("", func(t *testing.T) {
				runDifferential(t, seed, grid[0], grid[1], 100, 0)
			})
		}
	}
}

// TestDifferentialInnerParallelism re-runs the differential with each
// tile engine using its own work-stealing join workers
// (Options.InnerParallelism), proving the inner parallel join changes
// nothing observable through the router.
func TestDifferentialInnerParallelism(t *testing.T) {
	for _, seed := range []int64{3, 11} {
		seed := seed
		t.Run("", func(t *testing.T) {
			runDifferential(t, seed, 2, 2, 60, 2)
		})
	}
}

func runDifferential(t *testing.T, seed int64, rows, cols, steps, inner int) {
	rng := rand.New(rand.NewSource(seed))
	copt := core.Options{
		Bounds:            geo.R(0, 0, 1, 1),
		GridN:             1 + rng.Intn(12),
		PredictiveHorizon: 50,
	}
	single := core.MustNewEngine(copt)
	sharded, err := New(Options{Core: copt, Rows: rows, Cols: cols, PadTiles: rng.Intn(2), InnerParallelism: inner})
	if err != nil {
		t.Fatal(err)
	}
	defer sharded.Close()

	const (
		maxObjects = 70
		maxQueries = 20
	)
	objects := map[core.ObjectID]core.ObjectKind{}
	queryKinds := map[core.QueryID]core.QueryKind{}
	clients := map[core.QueryID]map[core.ObjectID]struct{}{}
	nextO, nextQ := core.ObjectID(1), core.QueryID(1)

	randPoint := func() geo.Point { return geo.Pt(rng.Float64(), rng.Float64()) }
	randRegion := func() geo.Rect { return geo.RectAt(randPoint(), 0.02+rng.Float64()*0.4) }
	randVel := func() geo.Vector {
		return geo.Vec(rng.Float64()*0.1-0.05, rng.Float64()*0.1-0.05)
	}
	report := func(ou *core.ObjectUpdate, qu *core.QueryUpdate) {
		if ou != nil {
			single.ReportObject(*ou)
			sharded.ReportObject(*ou)
		}
		if qu != nil {
			single.ReportQuery(*qu)
			sharded.ReportQuery(*qu)
		}
	}

	now := 0.0
	for step := 0; step < steps; step++ {
		now += 1

		for n := rng.Intn(12); n > 0; n-- {
			switch {
			case len(objects) == 0 || (len(objects) < maxObjects && rng.Float64() < 0.3):
				kind := core.ObjectKind(rng.Intn(3))
				id := nextO
				nextO++
				objects[id] = kind
				u := core.ObjectUpdate{ID: id, Kind: kind, Loc: randPoint(), Vel: randVel(), T: now}
				if kind == core.Predictive && rng.Float64() < 0.3 {
					u.Waypoints = randWaypoints(rng, u.Loc, now)
				}
				report(&u, nil)
			case rng.Float64() < 0.08:
				id := pickObject(rng, objects)
				delete(objects, id)
				report(&core.ObjectUpdate{ID: id, Remove: true, T: now}, nil)
			default:
				// Move an object to a fresh uniform point: with multiple
				// tiles, a large fraction of these are cross-shard
				// migrations.
				id := pickObject(rng, objects)
				u := core.ObjectUpdate{ID: id, Kind: objects[id], Loc: randPoint(), Vel: randVel(), T: now}
				if objects[id] == core.Predictive && rng.Float64() < 0.3 {
					u.Waypoints = randWaypoints(rng, u.Loc, now)
				}
				report(&u, nil)
			}
		}

		// At most one update per query per step: the two engines snapshot
		// auto-commits at slightly different points within a batch, so
		// duplicate same-step updates of one query could legitimately
		// commit different intermediate answers.
		touchedQ := map[core.QueryID]struct{}{}
		for n := rng.Intn(4); n > 0; n-- {
			switch {
			case len(queryKinds) == 0 || (len(queryKinds) < maxQueries && rng.Float64() < 0.4):
				kind := core.QueryKind(rng.Intn(3))
				id := nextQ
				nextQ++
				queryKinds[id] = kind
				clients[id] = map[core.ObjectID]struct{}{}
				touchedQ[id] = struct{}{}
				u := randShardQueryUpdate(rng, id, kind, now, randRegion, randPoint)
				report(nil, &u)
			case rng.Float64() < 0.1:
				id := pickUntouched(rng, queryKinds, touchedQ)
				if id == 0 {
					continue
				}
				delete(queryKinds, id)
				delete(clients, id)
				touchedQ[id] = struct{}{}
				report(nil, &core.QueryUpdate{ID: id, Remove: true, T: now})
			default:
				id := pickUntouched(rng, queryKinds, touchedQ)
				if id == 0 {
					continue
				}
				kind := queryKinds[id]
				if rng.Float64() < 0.15 {
					// Kind change: a silent re-registration in both engines.
					kind = core.QueryKind((int(kind) + 1 + rng.Intn(2)) % 3)
					queryKinds[id] = kind
					clients[id] = map[core.ObjectID]struct{}{}
				}
				touchedQ[id] = struct{}{}
				u := randShardQueryUpdate(rng, id, kind, now, randRegion, randPoint)
				report(nil, &u)
			}
		}

		singleUpd := single.Step(now)
		shardUpd := sharded.Step(now)
		_ = singleUpd

		// Replay guarantee for the sharded stream.
		for _, u := range shardUpd {
			c, ok := clients[u.Query]
			if !ok {
				// Legitimate only for a query removed this step (phase-1
				// negatives of same-batch object removals).
				if u.Positive {
					t.Fatalf("seed %d step %d: positive %v for unknown query", seed, step, u)
				}
				continue
			}
			if u.Positive {
				if _, dup := c[u.Object]; dup {
					t.Fatalf("seed %d step %d: duplicate positive %v", seed, step, u)
				}
				c[u.Object] = struct{}{}
			} else {
				if _, in := c[u.Object]; !in {
					t.Fatalf("seed %d step %d: negative for absent member %v", seed, step, u)
				}
				delete(c, u.Object)
			}
		}

		// The heart of the test: both engines agree exactly.
		if a, b := single.NumObjects(), sharded.NumObjects(); a != b {
			t.Fatalf("seed %d step %d: NumObjects single=%d sharded=%d", seed, step, a, b)
		}
		if a, b := single.NumQueries(), sharded.NumQueries(); a != b {
			t.Fatalf("seed %d step %d: NumQueries single=%d sharded=%d", seed, step, a, b)
		}
		for qid := range queryKinds {
			sa, ok1 := single.Answer(qid)
			ba, ok2 := sharded.Answer(qid)
			if !ok1 || !ok2 {
				t.Fatalf("seed %d step %d: query %d lost (single=%v sharded=%v)", seed, step, qid, ok1, ok2)
			}
			if !idsEqual(sa, ba) {
				t.Fatalf("seed %d step %d: query %d (%v) answers diverge\nsingle:  %v\nsharded: %v",
					seed, step, qid, queryKinds[qid], sa, ba)
			}
			sc, _ := single.CommittedAnswer(qid)
			bc, _ := sharded.CommittedAnswer(qid)
			if !idsEqual(sc, bc) {
				t.Fatalf("seed %d step %d: query %d (%v) committed answers diverge\nsingle:  %v\nsharded: %v",
					seed, step, qid, queryKinds[qid], sc, bc)
			}
			// And the replayed client matches the merged answer.
			c := clients[qid]
			if len(c) != len(ba) {
				t.Fatalf("seed %d step %d: query %d replay=%d answer=%d", seed, step, qid, len(c), len(ba))
			}
			for _, o := range ba {
				if _, ok := c[o]; !ok {
					t.Fatalf("seed %d step %d: query %d replay missing %d", seed, step, qid, o)
				}
			}
		}

		// Occasionally exercise the protocol surface identically on both.
		if rng.Float64() < 0.2 && len(queryKinds) > 0 {
			id := pickQuery(rng, queryKinds)
			if a, b := single.Commit(id), sharded.Commit(id); a != b {
				t.Fatalf("seed %d step %d: Commit(%d) single=%v sharded=%v", seed, step, id, a, b)
			}
			sc, _ := single.CommittedChecksum(id)
			bc, _ := sharded.CommittedChecksum(id)
			if sc != bc {
				t.Fatalf("seed %d step %d: committed checksums diverge for %d", seed, step, id)
			}
		}
		if rng.Float64() < 0.1 && len(queryKinds) > 0 {
			id := pickQuery(rng, queryKinds)
			ra, _ := single.Recover(id)
			rb, _ := sharded.Recover(id)
			if len(ra) != len(rb) {
				t.Fatalf("seed %d step %d: Recover(%d) single=%v sharded=%v", seed, step, id, ra, rb)
			}
			for i := range ra {
				if ra[i] != rb[i] {
					t.Fatalf("seed %d step %d: Recover(%d) single=%v sharded=%v", seed, step, id, ra, rb)
				}
			}
		}
	}
}

// pickObject picks a uniformly random object, deterministically given
// the rng state: the choice must not lean on map iteration order, or
// the workload a seed denotes changes from run to run and failures
// cannot be reproduced.
func pickObject(rng *rand.Rand, objects map[core.ObjectID]core.ObjectKind) core.ObjectID {
	ids := make([]core.ObjectID, 0, len(objects))
	for id := range objects {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids[rng.Intn(len(ids))]
}

// pickQuery is pickObject for queries.
func pickQuery(rng *rand.Rand, kinds map[core.QueryID]core.QueryKind) core.QueryID {
	ids := make([]core.QueryID, 0, len(kinds))
	for id := range kinds {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids[rng.Intn(len(ids))]
}

// pickUntouched picks a random query not yet updated this step; 0 if
// none qualifies (QueryID 0 is never issued).
func pickUntouched(rng *rand.Rand, kinds map[core.QueryID]core.QueryKind, touched map[core.QueryID]struct{}) core.QueryID {
	var ids []core.QueryID
	for id := range kinds {
		if _, dup := touched[id]; !dup {
			ids = append(ids, id)
		}
	}
	if len(ids) == 0 {
		return 0
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids[rng.Intn(len(ids))]
}

func randShardQueryUpdate(rng *rand.Rand, id core.QueryID, kind core.QueryKind, now float64,
	randRegion func() geo.Rect, randPoint func() geo.Point) core.QueryUpdate {
	u := core.QueryUpdate{ID: id, Kind: kind, T: now}
	switch kind {
	case core.Range:
		u.Region = randRegion()
	case core.KNN:
		u.Focal = randPoint()
		u.K = 1 + rng.Intn(6)
	case core.PredictiveRange:
		u.Region = randRegion()
		u.T1 = now + rng.Float64()*10
		u.T2 = u.T1 + rng.Float64()*10
	}
	return u
}

func randWaypoints(rng *rand.Rand, start geo.Point, now float64) []geo.TimedPoint {
	n := 1 + rng.Intn(3)
	out := make([]geo.TimedPoint, 0, n)
	tm := now
	for i := 0; i < n; i++ {
		tm += 0.5 + rng.Float64()*3
		out = append(out, geo.TimedPoint{
			P: geo.Pt(rng.Float64(), rng.Float64()),
			T: tm,
		})
	}
	return out
}
