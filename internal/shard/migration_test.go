package shard

import (
	"sort"
	"testing"

	"cqp/internal/core"
	"cqp/internal/geo"
)

// Cross-shard object migration is the delicate spot of the routing
// protocol: a move across a tile boundary is split into a removal in
// the old tile and an insertion in the new one, and the merge layer
// must turn the resulting per-tile streams into exactly the updates a
// single engine would emit — one negative for a query left behind, one
// positive for a query entered, and *nothing* for a query spanning both
// tiles.

// TestMigrationBetweenDisjointQueries: the object leaves tile 0's range
// query and enters tile 1's — exactly one negative and one positive.
func TestMigrationBetweenDisjointQueries(t *testing.T) {
	e := newTestShard(t, 1, 2) // tiles: x < 5 and x >= 5
	const qA, qB = core.QueryID(1), core.QueryID(2)
	e.ReportQuery(core.QueryUpdate{ID: qA, Kind: core.Range, Region: geo.R(1, 4, 3, 6)})
	e.ReportQuery(core.QueryUpdate{ID: qB, Kind: core.Range, Region: geo.R(7, 4, 9, 6)})
	e.ReportObject(core.ObjectUpdate{ID: 1, Kind: core.Moving, Loc: geo.Pt(2, 5)})
	updates := e.Step(0)
	if len(updates) != 1 || updates[0] != (core.Update{Query: qA, Object: 1, Positive: true}) {
		t.Fatalf("setup updates = %v", updates)
	}

	// Migrate: tile 0, inside A  →  tile 1, inside B.
	e.ReportObject(core.ObjectUpdate{ID: 1, Kind: core.Moving, Loc: geo.Pt(8, 5), T: 1})
	updates = e.Step(1)
	sort.Slice(updates, func(i, j int) bool { return updates[i].Query < updates[j].Query })
	want := []core.Update{
		{Query: qA, Object: 1, Positive: false},
		{Query: qB, Object: 1, Positive: true},
	}
	if len(updates) != 2 || updates[0] != want[0] || updates[1] != want[1] {
		t.Fatalf("migration updates = %v, want exactly %v", updates, want)
	}
	if got := answerOf(t, e, qA); len(got) != 0 {
		t.Fatalf("A should be empty, got %v", got)
	}
	if got := answerOf(t, e, qB); !idsEqual(got, []core.ObjectID{1}) {
		t.Fatalf("B = %v", got)
	}
}

// TestMigrationWithinSpanningQuery: the object crosses the tile
// boundary but stays inside one query spanning both tiles — the old
// tile's negative and the new tile's positive must cancel to zero
// emitted updates, with the object never leaving the answer.
func TestMigrationWithinSpanningQuery(t *testing.T) {
	e := newTestShard(t, 1, 2)
	const q = core.QueryID(1)
	e.ReportQuery(core.QueryUpdate{ID: q, Kind: core.Range, Region: geo.R(2, 2, 8, 8)})
	e.ReportObject(core.ObjectUpdate{ID: 1, Kind: core.Moving, Loc: geo.Pt(4, 5)})
	e.Step(0)
	if got := answerOf(t, e, q); !idsEqual(got, []core.ObjectID{1}) {
		t.Fatalf("setup answer = %v", got)
	}

	e.ReportObject(core.ObjectUpdate{ID: 1, Kind: core.Moving, Loc: geo.Pt(6, 5), T: 1})
	updates := e.Step(1)
	if len(updates) != 0 {
		t.Fatalf("spanning-query migration must emit nothing, got %v", updates)
	}
	if got := answerOf(t, e, q); !idsEqual(got, []core.ObjectID{1}) {
		t.Fatalf("answer after migration = %v", got)
	}
}

// TestMigrationOutOfSpanningQuery: the object crosses tiles AND leaves
// the spanning query — exactly one negative, no duplicate from the two
// tile streams.
func TestMigrationOutOfSpanningQuery(t *testing.T) {
	e := newTestShard(t, 1, 2)
	const q = core.QueryID(1)
	e.ReportQuery(core.QueryUpdate{ID: q, Kind: core.Range, Region: geo.R(2, 2, 8, 8)})
	e.ReportObject(core.ObjectUpdate{ID: 1, Kind: core.Moving, Loc: geo.Pt(4, 5)})
	e.Step(0)

	e.ReportObject(core.ObjectUpdate{ID: 1, Kind: core.Moving, Loc: geo.Pt(9.5, 5), T: 1})
	updates := e.Step(1)
	if len(updates) != 1 || updates[0] != (core.Update{Query: q, Object: 1, Positive: false}) {
		t.Fatalf("updates = %v, want exactly one negative", updates)
	}
}

// TestMigrationChainSameStep: several objects migrating in opposite
// directions in one step must each resolve independently.
func TestMigrationChainSameStep(t *testing.T) {
	e := newTestShard(t, 1, 2)
	const q = core.QueryID(1)
	e.ReportQuery(core.QueryUpdate{ID: q, Kind: core.Range, Region: geo.R(2, 2, 8, 8)})
	e.ReportObject(core.ObjectUpdate{ID: 1, Kind: core.Moving, Loc: geo.Pt(4, 5)}) // tile 0, in q
	e.ReportObject(core.ObjectUpdate{ID: 2, Kind: core.Moving, Loc: geo.Pt(6, 5)}) // tile 1, in q
	e.ReportObject(core.ObjectUpdate{ID: 3, Kind: core.Moving, Loc: geo.Pt(9, 5)}) // tile 1, out
	e.Step(0)

	// 1 and 2 swap tiles (both stay in q); 3 enters tile 0 inside q.
	e.ReportObject(core.ObjectUpdate{ID: 1, Kind: core.Moving, Loc: geo.Pt(6, 4), T: 1})
	e.ReportObject(core.ObjectUpdate{ID: 2, Kind: core.Moving, Loc: geo.Pt(4, 4), T: 1})
	e.ReportObject(core.ObjectUpdate{ID: 3, Kind: core.Moving, Loc: geo.Pt(3, 5), T: 1})
	updates := e.Step(1)
	if len(updates) != 1 || updates[0] != (core.Update{Query: q, Object: 3, Positive: true}) {
		t.Fatalf("updates = %v, want exactly (+3)", updates)
	}
	if got := answerOf(t, e, q); !idsEqual(got, []core.ObjectID{1, 2, 3}) {
		t.Fatalf("answer = %v", got)
	}

	// Ownership bookkeeping must have followed the moves.
	if e.objs[1].tile != 1 || e.objs[2].tile != 0 || e.objs[3].tile != 0 {
		t.Fatalf("tiles = %d %d %d", e.objs[1].tile, e.objs[2].tile, e.objs[3].tile)
	}
	if e.objCount[0] != 2 || e.objCount[1] != 1 {
		t.Fatalf("objCount = %v", e.objCount)
	}
}

// TestMigrationOfKNNMember: a kNN answer member migrating across tiles
// while remaining one of the k nearest must not flicker out of the
// answer.
func TestMigrationOfKNNMember(t *testing.T) {
	e := newTestShard(t, 1, 2)
	const q = core.QueryID(1)
	e.ReportObject(core.ObjectUpdate{ID: 1, Kind: core.Moving, Loc: geo.Pt(4.8, 5)})
	e.ReportObject(core.ObjectUpdate{ID: 2, Kind: core.Moving, Loc: geo.Pt(9, 9)})
	e.ReportQuery(core.QueryUpdate{ID: q, Kind: core.KNN, Focal: geo.Pt(5, 5), K: 1})
	e.Step(0)
	if got := answerOf(t, e, q); !idsEqual(got, []core.ObjectID{1}) {
		t.Fatalf("setup answer = %v", got)
	}

	// Cross the boundary, still nearest.
	e.ReportObject(core.ObjectUpdate{ID: 1, Kind: core.Moving, Loc: geo.Pt(5.2, 5), T: 1})
	updates := e.Step(1)
	if len(updates) != 0 {
		t.Fatalf("migrating nearest neighbor should emit nothing, got %v", updates)
	}
	if got := answerOf(t, e, q); !idsEqual(got, []core.ObjectID{1}) {
		t.Fatalf("answer = %v", got)
	}
}
