package shard

import (
	"testing"

	"cqp/internal/testutil/leakcheck"
)

// TestMain fails the package if any test leaves a goroutine running —
// shard workers are long-lived and a Close that does not join them is
// exactly the leak this catches.
func TestMain(m *testing.M) {
	leakcheck.Main(m)
}
