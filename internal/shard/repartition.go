package shard

import (
	"fmt"
	"slices"

	"cqp/internal/core"
)

// Repartitioning: split hot tiles, merge cold sibling pairs, and move
// the affected state through the ordinary migration and replication
// paths so the merged update stream never shows a seam.
//
// The tiling is a binary split forest (see tnode): splitting a leaf
// cuts its rectangle in half along the longer axis at the arithmetic
// midpoint — an exact partition, so point ownership stays well defined
// — and merging rejoins two sibling leaves into their parent's
// rectangle, served by a fresh tile id. Tile ids are never reused;
// retired slots hold nil.
//
// The handoff protocol for one operation, entirely inside the step that
// applies it (before any buffered report is routed):
//
//  1. Flip liveness: the dying tiles leave the live set, the born tiles
//     join it. Routing and coverage computations now see the new
//     partition, while the dying transports stay up for step 3.
//  2. Re-home state. Every object owned by a dying tile is removed from
//     it and inserted — from the router's last full report — into the
//     born tile owning its location; this is exactly the cross-tile
//     migration path. Every query whose coverage touches a dying tile
//     has its coverage recomputed against the new live set and its
//     definition forwarded to the newly covered (born) tiles; this is
//     exactly the replication path. Both walks are in sorted id order,
//     so the handoff is replay-stable.
//  3. Sub-step the dying and born tiles together at the step's own
//     timestamp, absorbing their batches into the step's merge state
//     with the refcounts forced on (mergeState.handoff): the dying
//     replicas retract every member the born replicas simultaneously
//     assert, the pairs net to silence in emitSetTransitions, and the
//     merged stream is bit-identical to a run that never repartitioned.
//     (A kNN answer likewise cannot change: candidacy moves between
//     tiles but the candidate set and all distances are preserved.)
//  4. Destroy the dying transports.
//
// The policy (maybeRepartition) is driven by the same two signals the
// obs layer exports per tile: queue depth at broadcast (always on) and
// measured step nanos (when a clock is configured), folded into
// per-tile EWMAs by stepAll.

// repartOp is one queued repartition request.
type repartOp struct {
	split bool
	tile  int
}

// SplitTile requests that live tile t be split in half at the start of
// the next Step. The request is validated now and re-checked at apply
// time (a competing operation may have retired the tile by then, in
// which case it is dropped).
func (e *Engine) SplitTile(t int) error {
	if t < 0 || t >= len(e.tstate) || !e.tstate[t].live {
		return fmt.Errorf("shard: SplitTile(%d): not a live tile", t)
	}
	e.pendingOps = append(e.pendingOps, repartOp{split: true, tile: t})
	return nil
}

// MergeTile requests that live tile t and its forest sibling be merged
// back into their parent rectangle at the start of the next Step. The
// sibling must also be a leaf (i.e. a live tile); roots of the initial
// grid have no sibling and cannot merge.
func (e *Engine) MergeTile(t int) error {
	if t < 0 || t >= len(e.tstate) || !e.tstate[t].live {
		return fmt.Errorf("shard: MergeTile(%d): not a live tile", t)
	}
	if e.mergeableParent(t) < 0 {
		return fmt.Errorf("shard: MergeTile(%d): no live sibling leaf to merge with", t)
	}
	e.pendingOps = append(e.pendingOps, repartOp{tile: t})
	return nil
}

// mergeableParent returns the forest node whose two children are both
// live leaves and one of them is tile t, or -1.
func (e *Engine) mergeableParent(t int) int {
	n := e.tstate[t].node
	p := e.nodes[n].parent
	if p < 0 {
		return -1
	}
	k0, k1 := e.nodes[p].kids[0], e.nodes[p].kids[1]
	if k0 < 0 || k1 < 0 {
		return -1
	}
	if e.nodes[k0].tile < 0 || e.nodes[k1].tile < 0 {
		return -1
	}
	return p
}

// runRepartitions applies the queued manual operations, then the
// periodic load policy. Called at the very start of stepAppend, before
// any buffered report is routed.
func (e *Engine) runRepartitions(m *mergeState) {
	changed := false
	for _, op := range e.pendingOps {
		if !e.tstate[op.tile].live {
			continue // retired by an earlier queued op
		}
		if op.split {
			e.splitNow(m, op.tile)
			changed = true
		} else if p := e.mergeableParent(op.tile); p >= 0 {
			e.mergeNow(m, p)
			changed = true
		}
	}
	e.pendingOps = e.pendingOps[:0]
	if e.maybeRepartition(m) {
		changed = true
	}
	if changed {
		e.m.tiles.Set(int64(len(e.live)))
		e.observeTileArea()
	}
}

// maybeRepartition runs the load policy: every Interval steps, split
// the hottest tile if its load exceeds SplitFactor × the mean (and the
// tile budget allows), otherwise merge the coldest sibling-leaf pair
// whose combined load is below MergeFactor × the mean. At most one
// operation per check keeps the partition from thrashing. Reports
// whether an operation ran.
func (e *Engine) maybeRepartition(m *mergeState) bool {
	ro := e.opt.Repartition
	if !ro.Enable || e.stepSeq <= 1 || e.stepSeq%uint64(ro.Interval) != 0 {
		return false
	}
	// Prefer measured step time when a clock is present; queue depth
	// otherwise. Both are EWMAs maintained by stepAll.
	scores := e.loadEW
	if e.m.tracer.Enabled() {
		scores = e.nanosEW
	}
	mean := 0.0
	for _, id := range e.live {
		mean += scores[id]
	}
	mean /= float64(len(e.live))
	if mean <= 0 {
		return false
	}
	hot, hotScore := -1, 0.0
	for _, id := range e.live {
		if s := scores[id]; s > hotScore {
			hot, hotScore = id, s
		}
	}
	if hot >= 0 && len(e.live) < ro.MaxTiles && hotScore > ro.SplitFactor*mean {
		e.splitNow(m, hot)
		return true
	}
	// Coldest mergeable sibling pair, scanning nodes in creation order
	// for determinism.
	bestP, bestScore := -1, 0.0
	for p := range e.nodes {
		k0, k1 := e.nodes[p].kids[0], e.nodes[p].kids[1]
		if k0 < 0 || k1 < 0 {
			continue
		}
		t0, t1 := e.nodes[k0].tile, e.nodes[k1].tile
		if t0 < 0 || t1 < 0 {
			continue
		}
		if s := scores[t0] + scores[t1]; bestP < 0 || s < bestScore {
			bestP, bestScore = p, s
		}
	}
	if bestP >= 0 && bestScore < ro.MergeFactor*mean {
		e.mergeNow(m, bestP)
		return true
	}
	return false
}

// splitNow splits live tile id into two halves along its rectangle's
// longer axis.
func (e *Engine) splitNow(m *mergeState, id int) {
	st := e.tstate[id]
	r := st.rect
	r1, r2 := r, r
	if r.Width() >= r.Height() {
		mid := (r.MinX + r.MaxX) / 2
		r1.MaxX = mid
		r2.MinX = mid
	} else {
		mid := (r.MinY + r.MaxY) / 2
		r1.MaxY = mid
		r2.MinY = mid
	}
	e.deactivateTile(id)
	n := st.node
	c1 := e.newNode(r1, n)
	c2 := e.newNode(r2, n)
	e.nodes[n].kids = [2]int{c1, c2}
	t1 := e.mustAttach(c1)
	t2 := e.mustAttach(c2)
	// The halves inherit the parent's load estimate in equal shares:
	// the policy keeps a plausible score until fresh observations
	// arrive, instead of seeing two idle-looking tiles.
	e.loadEW[t1], e.loadEW[t2] = e.loadEW[id]/2, e.loadEW[id]/2
	e.nanosEW[t1], e.nanosEW[t2] = e.nanosEW[id]/2, e.nanosEW[id]/2
	e.handoff(m, []int{id}, []int{t1, t2})
	e.destroyTile(id)
	e.m.tileSplits.Inc()
}

// mergeNow merges the two live leaf children of forest node p back into
// p's rectangle, served by a fresh tile.
func (e *Engine) mergeNow(m *mergeState, p int) {
	k0, k1 := e.nodes[p].kids[0], e.nodes[p].kids[1]
	a, b := e.nodes[k0].tile, e.nodes[k1].tile
	e.deactivateTile(a)
	e.deactivateTile(b)
	e.nodes[p].kids = [2]int{-1, -1}
	c := e.mustAttach(p)
	e.loadEW[c] = e.loadEW[a] + e.loadEW[b]
	e.nanosEW[c] = e.nanosEW[a] + e.nanosEW[b]
	e.handoff(m, []int{a, b}, []int{c})
	e.destroyTile(a)
	e.destroyTile(b)
	e.m.tileMerges.Inc()
}

// mustAttach attaches a tile for node n, panicking on factory failure:
// a repartition runs mid-step and has no error path. The in-process
// factory is infallible; cluster tile construction is too (a dead
// worker just starts the tile in fallback).
func (e *Engine) mustAttach(n int) int {
	id, err := e.attachTile(n)
	if err != nil {
		panic(fmt.Sprintf("shard: tile factory failed during repartition: %v", err))
	}
	return id
}

// handoff re-homes every object and query replica held by the dying
// tiles onto the born tiles and nets the transition out of the merged
// stream. See the package comment at the top of this file for the
// protocol; liveness has already been flipped when this runs.
func (e *Engine) handoff(m *mergeState, dying, born []int) {
	isDying := func(t int) bool {
		for _, d := range dying {
			if t == d {
				return true
			}
		}
		return false
	}

	// Objects, in id order.
	var oids []core.ObjectID
	for oid, info := range e.objs {
		if isDying(info.tile) {
			oids = append(oids, oid)
		}
	}
	slices.Sort(oids)
	for _, oid := range oids {
		info := e.objs[oid]
		nt := e.tileOf(info.last.Loc)
		e.tiles[info.tile].ReportObject(core.ObjectUpdate{ID: oid, Remove: true})
		e.objCount[info.tile]--
		e.objCount[nt]++
		info.tile = nt
		e.tiles[nt].ReportObject(info.last)
	}

	// Queries, in id order.
	var qids []core.QueryID
	for qid, qi := range e.qrys {
		for _, t := range qi.coverage {
			if isDying(t) {
				qids = append(qids, qid)
				break
			}
		}
	}
	slices.Sort(qids)
	bornSorted := append([]int(nil), born...)
	slices.Sort(bornSorted)
	for _, qid := range qids {
		qi := e.qrys[qid]
		var newCov []int
		switch qi.kind {
		case core.Range:
			newCov = e.tilesOverlapping(qi.region, nil)
		case core.PredictiveRange:
			newCov = e.predictiveCoverage(qi.region, nil)
		case core.KNN:
			// Conservative: keep every surviving replica (coverage is
			// monotone for kNN) and cover every born tile — a born tile
			// inherits part of a dying replica's space, so its objects
			// may be candidates. The settle fixpoint keeps correcting
			// the radius from here.
			keep := make([]int, 0, len(qi.coverage))
			for _, t := range qi.coverage {
				if !isDying(t) {
					keep = append(keep, t)
				}
			}
			newCov = unionSorted(make([]int, 0, len(keep)+len(bornSorted)), keep, bornSorted)
		}
		def := e.queryDef(qi)
		for _, t := range newCov {
			if covHas(qi.coverage, t) {
				continue
			}
			dc := def
			if qi.kind == core.Range {
				dc.Region = e.clipRegion(qi.region, t)
			}
			e.tiles[t].ReportQuery(dc)
		}
		// No removal is sent to the dying replicas: their whole engine
		// is discarded after the sub-step, and the sub-step itself must
		// still see the replica so it retracts its members. The handoff
		// sub-step nets the dying and born replicas' streams through the
		// refcounts, so a bypass-mode query expands back first.
		qi.materializeCount()
		qi.coverage = newCov
		qi.covEpoch = e.stepSeq
	}

	// Sub-step dying and born together; the refcounts net the −/+
	// pairs to silence.
	parts := append(append(make([]int, 0, len(dying)+len(born)), dying...), born...)
	slices.Sort(parts)
	m.handoff = true
	for _, batch := range e.stepTiles(parts, e.now) {
		e.absorb(m, batch)
	}
	m.handoff = false
}

// queryDef reconstructs the full (unclipped) definition update of a
// query from the router's record, for forwarding to a fresh replica.
func (e *Engine) queryDef(qi *queryInfo) core.QueryUpdate {
	u := core.QueryUpdate{ID: qi.id, Kind: qi.kind, T: qi.t}
	switch qi.kind {
	case core.Range:
		u.Region = qi.region
	case core.PredictiveRange:
		u.Region = qi.region
		u.T1, u.T2 = qi.t1, qi.t2
	case core.KNN:
		u.Focal = qi.focal
		u.K = qi.k
	}
	return u
}
