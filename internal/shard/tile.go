package shard

import (
	"cqp/internal/core"
	"cqp/internal/obs"
)

// Tile is the router's transport to one tile engine. The in-process
// implementation (localTile) drives a core.Engine on a dedicated worker
// goroutine; internal/cluster implements the same contract over the
// wire protocol against tile-worker processes, which is what lets the
// router's merge logic — and therefore the canonical merged update
// stream — stay byte-for-byte identical across deployments.
//
// The router calls ReportObject/ReportQuery to buffer reports, then
// broadcasts an evaluation with StepBegin on every participating tile
// followed by StepWait on each; the two-phase split is what runs tiles
// in parallel. A Tile must never fail a step: a transport that loses
// its backend is expected to absorb the failure internally (the cluster
// tile falls back to an in-process engine) and still return the exact
// batch a healthy backend would have produced.
//
// Like the engines, a Tile's step cycle is driven by one goroutine (the
// router); StepBegin/StepWait calls are never concurrent for one tile.
type Tile interface {
	// ReportObject buffers an object update for the next step.
	ReportObject(core.ObjectUpdate)
	// ReportQuery buffers a query registration, movement, or removal.
	ReportQuery(core.QueryUpdate)
	// Pending returns the number of buffered, not yet stepped reports.
	Pending() int
	// StepBegin starts one bulk evaluation of the buffered reports at
	// time now.
	StepBegin(now float64)
	// StepWait blocks until the evaluation started by the last StepBegin
	// completes and returns its incremental updates. The returned slice
	// is owned by the tile and valid until the next StepBegin.
	StepWait() []core.Update
	// StepNanos returns the duration of the last completed step in
	// nanoseconds (0 when no clock drives the tile); the router's
	// step-skew histogram reads it after StepWait.
	StepNanos() int64
	// WorkStats returns the tile backend's evaluation-work counters
	// (kNN recomputes, candidate checks, region cells); the router sums
	// them into Stats. Remote tiles may return the last reported values.
	WorkStats() core.Stats
	// Close releases the tile's resources; the tile must not be used
	// afterwards.
	Close() error
}

// TileFactory constructs the transport for one tile. New passes the
// tile index and the per-tile core options (identical for every tile:
// each engine spans the full global bounds); internal/cluster installs
// a factory that binds tiles to worker processes.
type TileFactory func(tile int, opt core.Options) (Tile, error)

// localTile is one in-process tile: its engine and the goroutine
// driving it. The router owns the engine between steps (buffering
// reports is plain method calls); during a step the worker goroutine
// owns it. The cmd send and res receive establish the happens-before
// edges that make the handoff race-free.
type localTile struct {
	eng *core.Engine
	cmd chan float64
	res chan []core.Update

	// buf is the worker-owned update buffer, reused across steps via
	// StepAppend. Reuse is race-free: the router fully absorbs a batch
	// (copying every update into the merge state) before it can step
	// the same tile again, and the cmd/res channel pair orders the
	// buffer handoff both ways.
	buf []core.Update

	// tracer and lastNs feed the router's step-skew histogram: the
	// worker stamps each step's duration, the router reads it after the
	// res receive (the channel provides the happens-before edge).
	tracer *obs.Tracer
	lastNs int64
}

// newLocalTile starts a tile worker goroutine over a fresh core.Engine.
func newLocalTile(opt core.Options, tracer *obs.Tracer) (*localTile, error) {
	eng, err := core.NewEngine(opt)
	if err != nil {
		return nil, err
	}
	w := &localTile{
		eng:    eng,
		cmd:    make(chan float64),
		res:    make(chan []core.Update, 1),
		tracer: tracer,
	}
	go w.run()
	return w, nil
}

func (w *localTile) run() {
	for now := range w.cmd {
		begin := w.tracer.Begin()
		w.buf = w.eng.StepAppend(w.buf[:0], now)
		w.lastNs = w.tracer.Since(begin)
		w.res <- w.buf
	}
}

func (w *localTile) ReportObject(u core.ObjectUpdate) { w.eng.ReportObject(u) }
func (w *localTile) ReportQuery(u core.QueryUpdate)   { w.eng.ReportQuery(u) }
func (w *localTile) Pending() int                     { return w.eng.Pending() }
func (w *localTile) StepBegin(now float64)            { w.cmd <- now }
func (w *localTile) StepWait() []core.Update          { return <-w.res }
func (w *localTile) StepNanos() int64                 { return w.lastNs }
func (w *localTile) WorkStats() core.Stats            { return w.eng.Stats() }

// Close stops the worker goroutine. The tile must not be used
// afterwards.
func (w *localTile) Close() error {
	close(w.cmd)
	return nil
}
