package shard

import (
	"math/rand"
	"testing"

	"cqp/internal/core"
	"cqp/internal/geo"
)

// benchShard builds a sharded engine with a uniform population. -short
// shrinks the population so the CI bench smoke (one iteration) stays
// cheap.
func benchShard(b *testing.B, tiles int, ro RepartitionOptions) (*Engine, *rand.Rand, int) {
	objects, queries := 10000, 2000
	if testing.Short() {
		objects, queries = 1000, 200
	}
	rows, cols := Split(tiles)
	e := MustNew(Options{
		Core:        core.Options{Bounds: geo.R(0, 0, 1, 1), GridN: 64, PredictiveHorizon: 100},
		Rows:        rows,
		Cols:        cols,
		Repartition: ro,
	})
	b.Cleanup(func() { e.Close() })
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < objects; i++ {
		e.ReportObject(core.ObjectUpdate{
			ID: core.ObjectID(i + 1), Kind: core.Moving,
			Loc: geo.Pt(rng.Float64(), rng.Float64()),
		})
	}
	for j := 0; j < queries; j++ {
		e.ReportQuery(core.QueryUpdate{
			ID: core.QueryID(j + 1), Kind: core.Range,
			Region: geo.RectAt(geo.Pt(rng.Float64(), rng.Float64()), 0.01),
		})
	}
	e.Step(0)
	return e, rng, objects
}

// BenchmarkShardStep measures the router's full Step — route,
// broadcast, merge — with 3% of the population moving per tick across
// a 2×2 tiling.
func BenchmarkShardStep(b *testing.B) {
	e, rng, objects := benchShard(b, 4, RepartitionOptions{})
	moves := objects / 33
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for n := 0; n < moves; n++ {
			id := core.ObjectID(1 + rng.Intn(objects))
			e.ReportObject(core.ObjectUpdate{
				ID: id, Kind: core.Moving,
				Loc: geo.Pt(rng.Float64(), rng.Float64()), T: float64(i + 1),
			})
		}
		e.Step(float64(i + 1))
	}
	b.ReportMetric(float64(moves), "moves/op")
}

// BenchmarkShardStepRepartition is BenchmarkShardStep with the
// load-aware split/merge policy active and a hotspot drifting through
// the space, so splits and merges actually run while the clock ticks.
func BenchmarkShardStepRepartition(b *testing.B) {
	e, rng, objects := benchShard(b, 4, RepartitionOptions{Enable: true, Interval: 4, MaxTiles: 16})
	moves := objects / 33
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// The hotspot corner wanders so the hot tile changes over time.
		cx := 0.4 + 0.4*float64(i%8)/8
		for n := 0; n < moves; n++ {
			id := core.ObjectID(1 + rng.Intn(objects))
			loc := geo.Pt(rng.Float64(), rng.Float64())
			if n%2 == 0 {
				loc = geo.Pt(cx+rng.Float64()*0.1, rng.Float64()*0.1)
			}
			e.ReportObject(core.ObjectUpdate{
				ID: id, Kind: core.Moving, Loc: loc, T: float64(i + 1),
			})
		}
		e.Step(float64(i + 1))
	}
	b.ReportMetric(float64(moves), "moves/op")
}
