package shard

import (
	"math/rand"
	"slices"
	"testing"

	"cqp/internal/core"
	"cqp/internal/geo"
	"cqp/internal/obs"
)

// TestDifferentialRepartitionMidRun extends the five-seed differential
// property to repartitioning: the same randomized workload runs through
// a fixed 2×2 shard engine, one that is split and merged mid-run by the
// manual hooks (hottest tile split, coldest sibling pair merged), and
// one driven by the automatic load policy. All three merged update
// streams must be BIT-IDENTICAL at every step — a repartition may never
// show a seam — and the answers must match a single core engine's.
func TestDifferentialRepartitionMidRun(t *testing.T) {
	for _, seed := range []int64{1, 2, 7, 42, 1234} {
		seed := seed
		t.Run("", func(t *testing.T) { runRepartitionDifferential(t, seed, 100) })
	}
}

func runRepartitionDifferential(t *testing.T, seed int64, steps int) {
	rng := rand.New(rand.NewSource(seed))
	copt := core.Options{
		Bounds:            geo.R(0, 0, 1, 1),
		GridN:             1 + rng.Intn(12),
		PredictiveHorizon: 50,
	}
	single := core.MustNewEngine(copt)
	fixed := MustNew(Options{Core: copt, Rows: 2, Cols: 2})
	defer fixed.Close()
	manual := MustNew(Options{Core: copt, Rows: 2, Cols: 2})
	defer manual.Close()
	// The policy engine gets its own registry so the test can read the
	// split/merge counters; metrics never affect the stream. With no
	// Clock the policy scores queue-depth EWMAs, which are a pure
	// function of the reports — so its stream stays deterministic.
	reg := obs.NewRegistry()
	mopt := copt
	mopt.Metrics = reg
	auto := MustNew(Options{
		Core: mopt, Rows: 2, Cols: 2,
		Repartition: RepartitionOptions{Enable: true, Interval: 5, MaxTiles: 12},
	})
	defer auto.Close()

	procs := []core.Processor{single, fixed, manual, auto}

	const (
		maxObjects = 70
		maxQueries = 20
	)
	objects := map[core.ObjectID]core.ObjectKind{}
	queryKinds := map[core.QueryID]core.QueryKind{}
	nextO, nextQ := core.ObjectID(1), core.QueryID(1)

	randPoint := func() geo.Point { return geo.Pt(rng.Float64(), rng.Float64()) }
	randRegion := func() geo.Rect { return geo.RectAt(randPoint(), 0.02+rng.Float64()*0.4) }
	hotspot := func() geo.Point {
		// Half the moves land in one corner tile: a genuinely hot tile
		// for the split policy to find.
		return geo.Pt(rng.Float64()*0.2, rng.Float64()*0.2)
	}

	now := 0.0
	for step := 0; step < steps; step++ {
		now += 1

		for n := rng.Intn(12); n > 0; n-- {
			switch {
			case len(objects) == 0 || (len(objects) < maxObjects && rng.Float64() < 0.3):
				kind := core.ObjectKind(rng.Intn(3))
				id := nextO
				nextO++
				objects[id] = kind
				loc := randPoint()
				if rng.Float64() < 0.5 {
					loc = hotspot()
				}
				u := core.ObjectUpdate{ID: id, Kind: kind, Loc: loc, T: now}
				for _, p := range procs {
					p.ReportObject(u)
				}
			case rng.Float64() < 0.08:
				id := pickObject(rng, objects)
				delete(objects, id)
				u := core.ObjectUpdate{ID: id, Remove: true, T: now}
				for _, p := range procs {
					p.ReportObject(u)
				}
			default:
				id := pickObject(rng, objects)
				loc := randPoint()
				if rng.Float64() < 0.5 {
					loc = hotspot()
				}
				u := core.ObjectUpdate{ID: id, Kind: objects[id], Loc: loc, T: now}
				for _, p := range procs {
					p.ReportObject(u)
				}
			}
		}
		for n := rng.Intn(3); n > 0; n-- {
			switch {
			case len(queryKinds) == 0 || (len(queryKinds) < maxQueries && rng.Float64() < 0.4):
				kind := core.QueryKind(rng.Intn(3))
				id := nextQ
				nextQ++
				queryKinds[id] = kind
				u := randShardQueryUpdate(rng, id, kind, now, randRegion, randPoint)
				for _, p := range procs {
					p.ReportQuery(u)
				}
			case rng.Float64() < 0.1:
				id := pickQuery(rng, queryKinds)
				delete(queryKinds, id)
				u := core.QueryUpdate{ID: id, Remove: true, T: now}
				for _, p := range procs {
					p.ReportQuery(u)
				}
			}
		}

		// Mid-run repartitions on the manual engine only: split the
		// hottest tile, merge the coldest sibling pair.
		if step%7 == 3 {
			splitHottest(t, manual)
		}
		if step%11 == 8 {
			mergeColdest(t, manual)
		}

		upds := make([][]core.Update, len(procs))
		for i, p := range procs {
			upds[i] = p.Step(now)
		}

		// Streams of all three sharded engines are bit-identical: the
		// fixed engine is the reference, manual and auto must match it
		// exactly — same updates, same order, every step.
		for i := 2; i < len(procs); i++ {
			if !slices.Equal(upds[1], upds[i]) {
				t.Fatalf("seed %d step %d: repartitioned stream diverges from fixed\nfixed: %v\ngot:   %v",
					seed, step, upds[1], upds[i])
			}
		}

		for qid := range queryKinds {
			want, ok := single.Answer(qid)
			if !ok {
				t.Fatalf("seed %d step %d: query %d lost in single", seed, step, qid)
			}
			for i := 1; i < len(procs); i++ {
				got, ok := procs[i].(interface {
					Answer(core.QueryID) ([]core.ObjectID, bool)
				}).Answer(qid)
				if !ok || !idsEqual(want, got) {
					t.Fatalf("seed %d step %d: query %d answers diverge (engine %d)\nwant %v\ngot  %v",
						seed, step, qid, i, want, got)
				}
			}
			wc, _ := single.CommittedAnswer(qid)
			for _, e := range []*Engine{fixed, manual, auto} {
				gc, _ := e.CommittedAnswer(qid)
				if !idsEqual(wc, gc) {
					t.Fatalf("seed %d step %d: query %d committed answers diverge\nwant %v\ngot  %v",
						seed, step, qid, wc, gc)
				}
			}
		}

		// Exercise the protocol surface identically across engines.
		if rng.Float64() < 0.15 && len(queryKinds) > 0 {
			id := pickQuery(rng, queryKinds)
			single.Commit(id)
			fixed.Commit(id)
			manual.Commit(id)
			auto.Commit(id)
			want, _ := single.CommittedChecksum(id)
			for _, e := range []*Engine{fixed, manual, auto} {
				if got, _ := e.CommittedChecksum(id); got != want {
					t.Fatalf("seed %d step %d: committed checksum diverges for %d", seed, step, id)
				}
			}
		}
		if rng.Float64() < 0.1 && len(queryKinds) > 0 {
			id := pickQuery(rng, queryKinds)
			want, _ := fixed.Recover(id)
			single.Recover(id)
			got, _ := manual.Recover(id)
			got2, _ := auto.Recover(id)
			if !slices.Equal(want, got) || !slices.Equal(want, got2) {
				t.Fatalf("seed %d step %d: Recover(%d) diverges across shard engines", seed, step, id)
			}
		}
	}

	if manual.NumTiles() < 3 {
		t.Fatalf("manual engine never grew past %d tiles; repartitions did not run", manual.NumTiles())
	}
	flat := reg.Flatten()
	if flat["shard.tile_splits"] == 0 {
		t.Fatalf("hotspot workload never triggered the split policy: %v tiles", auto.NumTiles())
	}
}

// splitHottest splits the live tile owning the most objects (lowest id
// on ties — the choice must be deterministic).
func splitHottest(t *testing.T, e *Engine) {
	t.Helper()
	hot, best := -1, -1
	for _, id := range e.live {
		if e.objCount[id] > best {
			hot, best = id, e.objCount[id]
		}
	}
	if hot < 0 {
		return
	}
	if err := e.SplitTile(hot); err != nil {
		t.Fatalf("SplitTile(%d): %v", hot, err)
	}
}

// mergeColdest merges the sibling leaf pair with the fewest combined
// owned objects, if any pair is mergeable.
func mergeColdest(t *testing.T, e *Engine) {
	t.Helper()
	bestT, bestScore := -1, -1
	for p := range e.nodes {
		k0, k1 := e.nodes[p].kids[0], e.nodes[p].kids[1]
		if k0 < 0 || k1 < 0 {
			continue
		}
		t0, t1 := e.nodes[k0].tile, e.nodes[k1].tile
		if t0 < 0 || t1 < 0 {
			continue
		}
		if s := e.objCount[t0] + e.objCount[t1]; bestT < 0 || s < bestScore {
			bestT, bestScore = t0, s
		}
	}
	if bestT < 0 {
		return
	}
	if err := e.MergeTile(bestT); err != nil {
		t.Fatalf("MergeTile(%d): %v", bestT, err)
	}
}

// TestHaloCrossingQueryAcrossSplit pins the satellite guarantee that
// region validation is tile-aware: a query whose region crosses a
// future split boundary registers identically before and after the
// split — same answer, no spurious updates from the handoff, and a
// fresh identical query registered after the split sees the same
// answer as the survivor.
func TestHaloCrossingQueryAcrossSplit(t *testing.T) {
	e := MustNew(Options{
		Core: core.Options{Bounds: geo.R(0, 0, 1, 1), GridN: 8},
		Rows: 1, Cols: 2, Halo: 0.05,
	})
	defer e.Close()

	// Tile 0 is [0,0.5]×[0,1]; splitting it cuts at y=0.5 (taller than
	// wide). The query straddles both the tile seam at x=0.5 and the
	// future split seam at y=0.5.
	region := geo.R(0.4, 0.4, 0.6, 0.6)
	for i, p := range []geo.Point{
		geo.Pt(0.45, 0.45), geo.Pt(0.45, 0.55), // tile 0, either side of the future cut
		geo.Pt(0.55, 0.45), geo.Pt(0.55, 0.55), // tile 1
		geo.Pt(0.1, 0.9), // outside the region
	} {
		e.ReportObject(core.ObjectUpdate{ID: core.ObjectID(i + 1), Kind: core.Moving, Loc: p})
	}
	e.ReportQuery(core.QueryUpdate{ID: 1, Kind: core.Range, Region: region})
	e.Step(1)

	before, _ := e.Answer(1)
	want := []core.ObjectID{1, 2, 3, 4}
	if !idsEqual(before, want) {
		t.Fatalf("answer before split: %v, want %v", before, want)
	}

	if err := e.SplitTile(0); err != nil {
		t.Fatal(err)
	}
	upd := e.Step(2)
	if len(upd) != 0 {
		t.Fatalf("split leaked into the merged stream: %v", upd)
	}
	after, _ := e.Answer(1)
	if !idsEqual(after, want) {
		t.Fatalf("answer after split: %v, want %v", after, want)
	}

	// A fresh identical query must register identically after the split.
	e.ReportQuery(core.QueryUpdate{ID: 2, Kind: core.Range, Region: region})
	upd = e.Step(3)
	for _, u := range upd {
		if u.Query != 2 || !u.Positive {
			t.Fatalf("unexpected update after re-registration: %v", u)
		}
	}
	twin, _ := e.Answer(2)
	if !idsEqual(twin, want) {
		t.Fatalf("fresh query after split: %v, want %v", twin, want)
	}
}

// TestPredictiveFanoutBounded pins the swept-region routing bound: with
// a MaxSpeed cap a predictive query replicates only to tiles
// overlapping its region expanded by MaxSpeed·PredictiveHorizon plus
// the halo — not to every tile — and the shard.query_replicas
// histogram records that fan-out. Without a cap it must broadcast.
func TestPredictiveFanoutBounded(t *testing.T) {
	reg := obs.NewRegistry()
	e := MustNew(Options{
		Core: core.Options{
			Bounds: geo.R(0, 0, 1, 1), GridN: 8,
			PredictiveHorizon: 10, MaxSpeed: 0.004,
			Metrics: reg,
		},
		Rows: 4, Cols: 4, Halo: 0.01,
	})
	defer e.Close()

	region := geo.R(0.30, 0.30, 0.45, 0.45) // inside the second row/col of tiles
	e.ReportQuery(core.QueryUpdate{ID: 1, Kind: core.PredictiveRange, Region: region, T1: 0, T2: 10})
	e.Step(1)

	qi := e.qrys[1]
	reach := 0.004*10 + e.halo
	want := e.tilesOverlapping(region.Expand(reach), nil)
	if !slices.Equal(qi.coverage, want) {
		t.Fatalf("predictive coverage %v, want swept-region tiles %v", qi.coverage, want)
	}
	if len(qi.coverage) >= e.NumTiles() {
		t.Fatalf("swept-region routing did not bound fan-out: %d of %d tiles", len(qi.coverage), e.NumTiles())
	}
	if got := reg.Flatten()["shard.query_replicas.count"]; got != 1 {
		t.Fatalf("replica fan-out histogram saw %v observations, want 1", got)
	}

	// Without a speed cap the same query must replicate everywhere.
	e2 := MustNew(Options{
		Core: core.Options{Bounds: geo.R(0, 0, 1, 1), GridN: 8, PredictiveHorizon: 10},
		Rows: 4, Cols: 4,
	})
	defer e2.Close()
	e2.ReportQuery(core.QueryUpdate{ID: 1, Kind: core.PredictiveRange, Region: region, T1: 0, T2: 10})
	e2.Step(1)
	if got := len(e2.qrys[1].coverage); got != e2.NumTiles() {
		t.Fatalf("uncapped predictive query covers %d of %d tiles", got, e2.NumTiles())
	}
}

// TestRepartitionObservability checks the split/merge counters and the
// tile-area gauge move when the partition does.
func TestRepartitionObservability(t *testing.T) {
	reg := obs.NewRegistry()
	e := MustNew(Options{
		Core: core.Options{Bounds: geo.R(0, 0, 1, 1), GridN: 4, Metrics: reg},
		Rows: 1, Cols: 2,
	})
	defer e.Close()
	e.ReportObject(core.ObjectUpdate{ID: 1, Kind: core.Moving, Loc: geo.Pt(0.25, 0.5)})
	e.Step(1)

	if got := reg.Flatten()["shard.tile_area_max_ppm"]; got != 500000 {
		t.Fatalf("tile area gauge %v, want 500000 ppm for a 1x2 grid", got)
	}
	if err := e.SplitTile(0); err != nil {
		t.Fatal(err)
	}
	e.Step(2)
	flat := reg.Flatten()
	if flat["shard.tile_splits"] != 1 || flat["shard.tiles"] != 3 {
		t.Fatalf("after split: splits=%v tiles=%v", flat["shard.tile_splits"], flat["shard.tiles"])
	}
	// The two halves of tile 0 are quarters; tile 1 still holds half.
	if flat["shard.tile_area_max_ppm"] != 500000 {
		t.Fatalf("tile area gauge after split: %v", flat["shard.tile_area_max_ppm"])
	}
	if err := e.MergeTile(2); err != nil {
		t.Fatal(err)
	}
	e.Step(3)
	flat = reg.Flatten()
	if flat["shard.tile_merges"] != 1 || flat["shard.tiles"] != 2 {
		t.Fatalf("after merge: merges=%v tiles=%v", flat["shard.tile_merges"], flat["shard.tiles"])
	}
}
