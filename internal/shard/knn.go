package shard

import (
	"slices"

	"cqp/internal/core"
)

// The kNN merge. Each tile replica maintains its *local* top-k: the k
// nearest of the tile's own objects. The local top-k of every covered
// tile is a superset of that tile's contribution to the global top-k,
// so the union of local answers — the candidacy refcounts in
// queryInfo.count — always contains the exact global answer, provided
// the coverage is wide enough. settleKNN establishes "wide enough" as a
// fixpoint: after ranking the candidates by distance, any uncovered
// live tile that could still hold a closer object (MinDist(focal, tile)
// ≤ distance to the current k-th candidate) is added to the coverage,
// the query is registered on it, only those tiles are sub-stepped at
// the same timestamp, and the loop repeats. Termination: the coverage
// only grows and is bounded by the live tile count, and adding
// candidates never increases the k-th distance.
//
// A starved query (fewer than k candidates) is replicated to *every*
// tile — including currently empty ones — mirroring the core engine,
// which registers a starved query's interest region as its whole
// region. This is what guarantees a later object arrival in any tile is
// reported.

// cand is one ranked kNN merge candidate.
type cand struct {
	id   core.ObjectID
	dist float64
}

// rankedCandidates returns the query's live merge candidates ordered by
// (distance to focal, ObjectID).
func (e *Engine) rankedCandidates(qi *queryInfo) []cand {
	cands := make([]cand, 0, len(qi.count))
	for o := range qi.count {
		info, ok := e.objs[o]
		if !ok {
			continue // removed this batch; its retraction is already merged
		}
		cands = append(cands, cand{id: o, dist: info.last.Loc.Dist(qi.focal)})
	}
	slices.SortFunc(cands, compareCand)
	return cands
}

// compareCand orders merge candidates by (distance to focal, ObjectID).
func compareCand(a, b cand) int {
	if a.dist != b.dist {
		if a.dist < b.dist {
			return -1
		}
		return 1
	}
	if a.id < b.id {
		return -1
	}
	if a.id > b.id {
		return 1
	}
	return 0
}

// settleKNNQueries runs the global top-k fixpoint for every kNN query
// whose answer may have changed this step.
func (e *Engine) settleKNNQueries(m *mergeState, now float64) {
	dirty := make([]core.QueryID, 0, len(m.knnDirty))
	for qid := range m.knnDirty {
		dirty = append(dirty, qid)
	}
	// Query order, not map order: settling replicates queries into tiles
	// and sub-steps them, so the settle sequence must be replay-stable.
	slices.Sort(dirty)
	for _, qid := range dirty {
		qi, ok := e.qrys[qid]
		if !ok || qi.kind != core.KNN {
			continue // removed or re-registered as another kind
		}
		e.settleKNN(m, qi, now)
	}
}

// settleKNN expands the query's coverage to a fixpoint, computes the
// exact global top-k from the merged candidates, and emits the diff
// against the previously reported global answer.
func (e *Engine) settleKNN(m *mergeState, qi *queryInfo, now float64) {
	var cands []cand
	if qi.k > 0 {
		for {
			cands = e.rankedCandidates(qi)
			starved := len(cands) < qi.k
			var rk float64
			if !starved {
				rk = cands[qi.k-1].dist
			}
			var grow []int
			for _, t := range e.live {
				if covHas(qi.coverage, t) {
					continue
				}
				if starved || e.tstate[t].rect.MinDist(qi.focal) <= rk {
					grow = append(grow, t)
				}
			}
			if len(grow) == 0 {
				break
			}
			def := core.QueryUpdate{
				ID: qi.id, Kind: core.KNN,
				Focal: qi.focal, K: qi.k, T: qi.t,
			}
			for _, t := range grow {
				e.tiles[t].ReportQuery(def)
			}
			qi.coverage = unionSorted(make([]int, 0, len(qi.coverage)+len(grow)), qi.coverage, grow)
			qi.covEpoch = e.stepSeq
			// Sub-step only the newly covered tiles, at the step's own
			// timestamp: their engines register the replica and report
			// its local top-k, which absorb folds into the candidates.
			e.m.knnSubsteps.Add(uint64(len(grow)))
			for _, batch := range e.stepTiles(grow, now) {
				e.absorb(m, batch)
			}
		}
	}

	n := len(cands)
	if n > qi.k {
		n = qi.k
	}
	newAns := make(map[core.ObjectID]struct{}, n)
	for i := 0; i < n; i++ {
		newAns[cands[i].id] = struct{}{}
	}
	// Diff in object order (not map order): emissions append to the
	// merged update stream, which must be replay-stable.
	var drop []core.ObjectID
	for o := range qi.answer {
		if _, still := newAns[o]; !still {
			drop = append(drop, o)
		}
	}
	slices.Sort(drop)
	for _, o := range drop {
		e.emit(m, qi.id, o, false)
	}
	for i := 0; i < n; i++ {
		if _, had := qi.answer[cands[i].id]; !had {
			e.emit(m, qi.id, cands[i].id, true)
		}
	}
	qi.answer = newAns
	if n > 0 {
		qi.radius = cands[n-1].dist
	} else {
		qi.radius = 0
	}
}
