package shard

import (
	"math/rand"
	"sync/atomic"
	"testing"

	"cqp/internal/core"
	"cqp/internal/geo"
	"cqp/internal/obs"
)

// atomicFakeClock is a deterministic obs.Clock safe for the sharded
// engine: tile workers read the clock concurrently, so the counter must
// be atomic (the single-engine tests get away with a plain int64).
func atomicFakeClock() obs.Clock {
	var t atomic.Int64
	return func() int64 {
		return t.Add(1_000_000) // 1ms per reading
	}
}

// TestShardMetricsDoNotAffectUpdates is the sharded half of the
// differential guarantee: the same seeded report stream through a bare
// 2×2 sharded engine and a fully instrumented one (shared registry,
// live clock, skew and queue-depth histograms all recording) yields
// bit-identical merged update streams, step by step.
func TestShardMetricsDoNotAffectUpdates(t *testing.T) {
	copt := core.Options{Bounds: geo.R(0, 0, 1, 1), GridN: 8, PredictiveHorizon: 50}
	bare, err := New(Options{Core: copt, Rows: 2, Cols: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer bare.Close()

	reg := obs.NewRegistry()
	icopt := copt
	icopt.Metrics = reg
	icopt.Clock = atomicFakeClock()
	inst, err := New(Options{Core: icopt, Rows: 2, Cols: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Close()

	rngA := rand.New(rand.NewSource(99))
	rngB := rand.New(rand.NewSource(99))
	const objects = 300
	report := func(p core.Processor, rng *rand.Rand, tick float64) {
		// Fresh uniform points: with a 2×2 grid most moves cross tiles,
		// so the migration path is exercised hard.
		for n := 0; n < 40; n++ {
			p.ReportObject(core.ObjectUpdate{
				ID: core.ObjectID(1 + rng.Intn(objects)), Kind: core.Moving,
				Loc: geo.Pt(rng.Float64(), rng.Float64()), T: tick,
			})
		}
	}
	for q := 1; q <= 20; q++ {
		u := core.QueryUpdate{ID: core.QueryID(q), Kind: core.Range,
			Region: geo.RectAt(geo.Pt(rngA.Float64(), rngA.Float64()), 0.3)}
		// Keep the rngs in lockstep: one draw pair feeds both engines.
		rngB.Float64()
		rngB.Float64()
		bare.ReportQuery(u)
		inst.ReportQuery(u)
	}

	totalEmitted := 0
	const steps = 40
	for tick := 1; tick <= steps; tick++ {
		report(bare, rngA, float64(tick))
		report(inst, rngB, float64(tick))
		a := bare.Step(float64(tick))
		b := inst.Step(float64(tick))
		if len(a) != len(b) {
			t.Fatalf("tick %d: %d updates bare vs %d instrumented", tick, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("tick %d update %d: %v bare vs %v instrumented", tick, i, a[i], b[i])
			}
		}
		totalEmitted += len(b)
	}

	// The router-level counters must reflect the observed traffic
	// exactly where the contract is exact, and be plausible elsewhere.
	if got := reg.Counter("shard.steps").Value(); got != steps {
		t.Errorf("shard.steps = %d, want %d", got, steps)
	}
	if got := reg.Counter("shard.updates.merged").Value(); got != uint64(totalEmitted) {
		t.Errorf("shard.updates.merged = %d, want %d (observed emissions)", got, totalEmitted)
	}
	if got := reg.Gauge("shard.tiles").Value(); got != 4 {
		t.Errorf("shard.tiles = %d, want 4", got)
	}
	if got := reg.Counter("shard.migrations").Value(); got == 0 {
		t.Error("shard.migrations = 0: uniform re-placement on a 2x2 grid must migrate objects")
	}
	if got := reg.Gauge("shard.tile_objects_max").Value(); got <= 0 || got > objects {
		t.Errorf("shard.tile_objects_max = %d, want within (0, %d]", got, objects)
	}
	// The tile engines resolve the same engine.* names against the
	// shared registry, so engine.steps aggregates across all four tiles:
	// at least tiles×steps (kNN settling may add sub-steps; none here).
	if got := reg.Counter("engine.steps").Value(); got != 4*steps {
		t.Errorf("engine.steps = %d, want %d (4 tiles x %d steps, no kNN settling)", got, 4*steps, steps)
	}
	if got := reg.Histogram("shard.step_ns", obs.DurationBuckets).Count(); got != steps {
		t.Errorf("shard.step_ns count = %d, want %d", got, steps)
	}
	if got := reg.Histogram("shard.step_skew_ns", obs.DurationBuckets).Count(); got != steps {
		t.Errorf("shard.step_skew_ns count = %d, want %d (4 workers, clock live)", got, steps)
	}
	if got := reg.Histogram("shard.queue_depth", obs.SizeBuckets).Count(); got == 0 {
		t.Error("shard.queue_depth recorded nothing")
	}
}

// TestShardStepAppendMatchesStep pins the sharded StepAppend contract:
// identical workloads through Step and through StepAppend with a reused
// buffer produce identical streams, and the dst prefix is preserved.
func TestShardStepAppendMatchesStep(t *testing.T) {
	copt := core.Options{Bounds: geo.R(0, 0, 1, 1), GridN: 8}
	a, err := New(Options{Core: copt, Rows: 2, Cols: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := New(Options{Core: copt, Rows: 2, Cols: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	rngA := rand.New(rand.NewSource(5))
	rngB := rand.New(rand.NewSource(5))
	for q := 1; q <= 10; q++ {
		u := core.QueryUpdate{ID: core.QueryID(q), Kind: core.Range,
			Region: geo.RectAt(geo.Pt(rngA.Float64(), rngA.Float64()), 0.25)}
		rngB.Float64()
		rngB.Float64()
		a.ReportQuery(u)
		b.ReportQuery(u)
	}

	sentinel := core.Update{Query: 999, Object: 999, Positive: true}
	var buf []core.Update
	for tick := 1; tick <= 20; tick++ {
		for n := 0; n < 30; n++ {
			oa := core.ObjectUpdate{
				ID: core.ObjectID(1 + rngA.Intn(100)), Kind: core.Moving,
				Loc: geo.Pt(rngA.Float64(), rngA.Float64()), T: float64(tick),
			}
			a.ReportObject(oa)
			b.ReportObject(core.ObjectUpdate{
				ID: core.ObjectID(1 + rngB.Intn(100)), Kind: core.Moving,
				Loc: geo.Pt(rngB.Float64(), rngB.Float64()), T: float64(tick),
			})
		}
		want := a.Step(float64(tick))
		buf = append(buf[:0], sentinel)
		buf = b.StepAppend(buf, float64(tick))
		if buf[0] != sentinel {
			t.Fatalf("tick %d: prefix clobbered: %v", tick, buf[0])
		}
		got := buf[1:]
		if len(got) != len(want) {
			t.Fatalf("tick %d: StepAppend emitted %d, Step emitted %d", tick, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("tick %d update %d: StepAppend %v vs Step %v", tick, i, got[i], want[i])
			}
		}
	}
}
