// Package shard implements the spatially sharded continuous query
// processor: the monitored space is split into an R×C grid of tiles,
// each tile owns an independent core.Engine driven by its own worker
// goroutine, and a thin single-threaded router partitions reports,
// replicates queries, runs all tile engines in parallel, and merges the
// per-tile update streams back into one exact global answer stream.
//
// The design follows the distributed continuous-query literature (Zhu &
// Yu's distributed range monitoring, MOIST's space-partitioned moving
// object indexer): partition the space, evaluate per partition, and
// coordinate at the edges. Concretely:
//
//   - Every object is owned by exactly one tile — the tile containing
//     its (bounds-clamped) reported location. A report that moves an
//     object across a tile boundary is split into a removal routed to
//     the old tile and an insertion routed to the new tile, so negative
//     updates for queries in the old tile still fire.
//   - Range queries are replicated to every tile their region overlaps,
//     predictive range queries to every tile (a predictive object's
//     trajectory can reach a distant query region from any tile), and
//     kNN queries to every tile overlapping their focal circle plus a
//     configurable padding ring of tiles, re-replicated whenever the
//     circle grows.
//   - Each tile engine spans the *full* global bounds (it simply holds
//     only its tile's objects). This keeps every engine-level behavior —
//     out-of-bounds clamping, predictive swept-region registration, kNN
//     circle registration — identical to the single-engine case, which
//     is what makes the merge exact.
//   - Step broadcasts the evaluation to all workers, runs them in
//     parallel, and merges the resulting streams: membership refcounts
//     deduplicate positives/negatives for queries replicated to several
//     tiles, and kNN answers are merged to the exact global top-k at
//     the router (see knn.go).
//
// The Engine satisfies core.Processor and is a drop-in replacement for
// *core.Engine behind internal/server. Like the core engine it is not
// safe for concurrent use; callers serialize access. With Rows = Cols =
// 1 it degenerates to a single engine behind a thin router.
package shard

import (
	"fmt"
	"math"
	"sync"

	"cqp/internal/core"
	"cqp/internal/geo"
)

// Options configures a sharded engine.
type Options struct {
	// Core configures each per-tile engine. Core.Bounds is the global
	// monitored space; every tile engine spans it in full. Required.
	Core core.Options

	// Rows, Cols shape the tile grid. Both default to 1.
	Rows, Cols int

	// PadTiles is the kNN replication padding: a kNN query is
	// replicated to every tile overlapping its focal circle grown by
	// this many tile widths, so small circle growth does not force a
	// re-replication every step. Defaults to 1.
	PadTiles int
}

func (o *Options) withDefaults() (Options, error) {
	out := *o
	if out.Rows == 0 {
		out.Rows = 1
	}
	if out.Cols == 0 {
		out.Cols = 1
	}
	if out.Rows < 1 || out.Cols < 1 {
		return out, fmt.Errorf("shard: Options.Rows and Cols must be positive, got %d x %d", out.Rows, out.Cols)
	}
	if out.PadTiles == 0 {
		out.PadTiles = 1
	}
	if out.PadTiles < 0 {
		return out, fmt.Errorf("shard: Options.PadTiles must be non-negative, got %d", out.PadTiles)
	}
	return out, nil
}

// Split factors a shard count into the most square Rows×Cols tile grid
// whose product is exactly n (7 shards become 1×7; 12 become 3×4).
func Split(n int) (rows, cols int) {
	if n < 1 {
		return 1, 1
	}
	r := int(math.Sqrt(float64(n)))
	for r > 1 && n%r != 0 {
		r--
	}
	return r, n / r
}

// objInfo is the router's record of one object: which tile owns it and
// its last reported location (used for migration detection and for the
// kNN merge distance computations).
type objInfo struct {
	tile int
	loc  geo.Point
}

// queryInfo is the router's record of one query: its definition (for
// replication), the tiles currently holding a replica, the per-object
// replica-membership refcounts, and the globally merged answer state.
type queryInfo struct {
	id   core.QueryID
	kind core.QueryKind
	t    float64

	region geo.Rect  // Range / PredictiveRange region
	focal  geo.Point // KNN focal point
	k      int       // KNN cardinality
	radius float64   // KNN: distance to the current global k-th member

	// coverage is the set of tiles holding a replica of this query.
	// Invariant: every replica receives every subsequent update of the
	// query, so replicas never go stale.
	coverage map[int]struct{}

	// count refcounts, per object, how many replicas currently report
	// it as a member. For Range and PredictiveRange queries an object
	// is owned by exactly one tile, so the merged global answer is
	// simply {o : count[o] > 0}; the refcount deduplicates the
	// transient −/+ pairs of cross-tile migrations. For KNN queries
	// count tracks *candidacy* (membership in some tile's local top-k)
	// and the exact global answer is maintained separately.
	count map[core.ObjectID]int

	// answer is the exact global top-k of a KNN query; nil for other
	// kinds (their answer is derived from count).
	answer map[core.ObjectID]struct{}

	// committed is the last committed answer; nil until the first
	// commit, mirroring core.
	committed map[core.ObjectID]struct{}
}

// Engine is the sharded processor. See the package documentation.
type Engine struct {
	opt        Options
	rows, cols int
	rects      []geo.Rect
	tileW      float64
	tileH      float64

	tiles    []Tile
	objCount []int // objects owned per tile

	now  float64
	objs map[core.ObjectID]*objInfo
	qrys map[core.QueryID]*queryInfo

	// candKNN is the reverse candidacy index: for each object, the KNN
	// queries holding it as a merge candidate. An object report must
	// re-rank those queries even when no tile emits a membership
	// change (a candidate moving within its tile's local top-k changes
	// global distances silently).
	candKNN map[core.ObjectID]map[core.QueryID]struct{}

	objBuf []core.ObjectUpdate
	qryBuf []core.QueryUpdate

	stats core.Stats
	m     *shardMetrics

	closeOnce sync.Once
}

var _ core.Processor = (*Engine)(nil)

// New constructs a sharded engine over opt.Core.Bounds with in-process
// tiles.
func New(opt Options) (*Engine, error) {
	return NewWithTiles(opt, nil)
}

// NewWithTiles constructs a sharded engine whose tile transports come
// from factory; a nil factory yields the in-process tiles New uses.
// internal/cluster passes a factory binding tiles to worker processes:
// the router's routing and merge logic is byte-for-byte the same either
// way, which is what keeps the cluster's merged update stream
// bit-identical to the in-process engine's.
func NewWithTiles(opt Options, factory TileFactory) (*Engine, error) {
	o, err := opt.withDefaults()
	if err != nil {
		return nil, err
	}
	b := o.Core.Bounds
	n := o.Rows * o.Cols
	e := &Engine{
		opt:      o,
		rows:     o.Rows,
		cols:     o.Cols,
		rects:    make([]geo.Rect, n),
		tiles:    make([]Tile, n),
		objCount: make([]int, n),
		objs:     make(map[core.ObjectID]*objInfo),
		qrys:     make(map[core.QueryID]*queryInfo),
		candKNN:  make(map[core.ObjectID]map[core.QueryID]struct{}),
		m:        newShardMetrics(o.Core.Metrics, o.Core.Clock),
	}
	e.m.tiles.Set(int64(n))
	e.tileW = b.Width() / float64(o.Cols)
	e.tileH = b.Height() / float64(o.Rows)
	for r := 0; r < o.Rows; r++ {
		for c := 0; c < o.Cols; c++ {
			e.rects[r*o.Cols+c] = geo.Rect{
				MinX: b.MinX + float64(c)*e.tileW,
				MinY: b.MinY + float64(r)*e.tileH,
				MaxX: b.MinX + float64(c+1)*e.tileW,
				MaxY: b.MinY + float64(r+1)*e.tileH,
			}
		}
	}
	if factory == nil {
		factory = func(int, core.Options) (Tile, error) {
			// Every tile engine resolves the same "engine.*" names against
			// the shared registry, so engine metrics aggregate across tiles.
			return newLocalTile(o.Core, e.m.tracer)
		}
	}
	for i := 0; i < n; i++ {
		t, err := factory(i, o.Core)
		if err != nil {
			e.Close()
			return nil, err
		}
		e.tiles[i] = t
	}
	return e, nil
}

// NewN constructs a sharded engine with n tiles arranged by Split.
func NewN(opt core.Options, n int) (*Engine, error) {
	rows, cols := Split(n)
	return New(Options{Core: opt, Rows: rows, Cols: cols})
}

// MustNew is New that panics on configuration errors, for tests and
// examples.
func MustNew(opt Options) *Engine {
	e, err := New(opt)
	if err != nil {
		panic(err)
	}
	return e
}

// Close stops every tile transport. The engine must not be used
// afterwards. It is idempotent and safe on a partially constructed
// engine.
func (e *Engine) Close() error {
	e.closeOnce.Do(func() {
		for _, t := range e.tiles {
			if t != nil {
				t.Close()
			}
		}
	})
	return nil
}

// NumTiles returns the number of tiles (shards).
func (e *Engine) NumTiles() int { return len(e.tiles) }

// TileRect returns the spatial extent of tile i, for tests and
// monitoring.
func (e *Engine) TileRect(i int) geo.Rect { return e.rects[i] }

// tileCoords maps a point to tile grid coordinates, clamped so every
// point — including out-of-bounds reports — is owned by a valid tile,
// exactly as grid cells clamp in the core engine.
func (e *Engine) tileCoords(p geo.Point) (cx, cy int) {
	b := e.opt.Core.Bounds
	cx = int((p.X - b.MinX) / e.tileW)
	cy = int((p.Y - b.MinY) / e.tileH)
	if cx < 0 {
		cx = 0
	} else if cx > e.cols-1 {
		cx = e.cols - 1
	}
	if cy < 0 {
		cy = 0
	} else if cy > e.rows-1 {
		cy = e.rows - 1
	}
	return cx, cy
}

// tileOf returns the index of the tile owning a point.
func (e *Engine) tileOf(p geo.Point) int {
	cx, cy := e.tileCoords(p)
	return cy*e.cols + cx
}

// clampToBounds clamps a point into the monitored space componentwise.
func (e *Engine) clampToBounds(p geo.Point) geo.Point {
	b := e.opt.Core.Bounds
	if p.X < b.MinX {
		p.X = b.MinX
	} else if p.X > b.MaxX {
		p.X = b.MaxX
	}
	if p.Y < b.MinY {
		p.Y = b.MinY
	} else if p.Y > b.MaxY {
		p.Y = b.MaxY
	}
	return p
}

// tilesOverlapping adds to dst every tile a region can share an owned
// object with. The region is clamped into bounds componentwise first:
// clamping is monotone, so the owner tile of any (clamped) location the
// region contains always falls inside the resulting index range.
func (e *Engine) tilesOverlapping(r geo.Rect, dst map[int]struct{}) map[int]struct{} {
	if dst == nil {
		dst = make(map[int]struct{})
	}
	if !r.Valid() {
		return dst
	}
	lo := e.clampToBounds(geo.Pt(r.MinX, r.MinY))
	hi := e.clampToBounds(geo.Pt(r.MaxX, r.MaxY))
	x1, y1 := e.tileCoords(lo)
	x2, y2 := e.tileCoords(hi)
	for cy := y1; cy <= y2; cy++ {
		for cx := x1; cx <= x2; cx++ {
			dst[cy*e.cols+cx] = struct{}{}
		}
	}
	return dst
}

// allTiles adds every tile index to dst.
func (e *Engine) allTiles(dst map[int]struct{}) map[int]struct{} {
	if dst == nil {
		dst = make(map[int]struct{}, len(e.tiles))
	}
	for i := range e.tiles {
		dst[i] = struct{}{}
	}
	return dst
}

// knnCoverage returns the tiles a kNN query must be replicated to for a
// focal circle of the given radius, padded by PadTiles tile widths.
func (e *Engine) knnCoverage(focal geo.Point, radius float64, dst map[int]struct{}) map[int]struct{} {
	pad := float64(e.opt.PadTiles) * math.Max(e.tileW, e.tileH)
	return e.tilesOverlapping(geo.RectAround(focal, radius+pad), dst)
}

// stepTiles runs Step(now) on the given tiles in parallel and returns
// their update batches in tile order. It is the kNN settle fixpoint's
// sub-step broadcast, so each call also counts toward shard.knn.substeps.
func (e *Engine) stepTiles(tiles []int, now float64) [][]core.Update {
	e.m.knnSubsteps.Add(uint64(len(tiles)))
	for _, t := range tiles {
		e.m.queueDepth.Observe(int64(e.tiles[t].Pending()))
		e.tiles[t].StepBegin(now)
	}
	out := make([][]core.Update, 0, len(tiles))
	for _, t := range tiles {
		out = append(out, e.tiles[t].StepWait())
	}
	return out
}

// stepAll runs Step(now) on every tile in parallel, recording each
// tile's queue depth at broadcast time and the broadcast's step skew
// (slowest minus fastest tile) when a clock is configured.
func (e *Engine) stepAll(now float64) [][]core.Update {
	for _, t := range e.tiles {
		e.m.queueDepth.Observe(int64(t.Pending()))
		t.StepBegin(now)
	}
	out := make([][]core.Update, 0, len(e.tiles))
	for _, t := range e.tiles {
		out = append(out, t.StepWait())
	}
	if e.m.tracer.Enabled() && len(e.tiles) > 1 {
		lo, hi := e.tiles[0].StepNanos(), e.tiles[0].StepNanos()
		for _, t := range e.tiles[1:] {
			ns := t.StepNanos()
			if ns < lo {
				lo = ns
			}
			if ns > hi {
				hi = ns
			}
		}
		e.m.stepSkew.Observe(hi - lo)
	}
	return out
}
