// Package shard implements the spatially sharded continuous query
// processor: the monitored space is split into tiles, each tile owns an
// independent core.Engine driven by its own worker goroutine, and a
// thin single-threaded router partitions reports, replicates queries,
// runs all tile engines in parallel, and merges the per-tile update
// streams back into one exact global answer stream.
//
// The design follows the distributed continuous-query literature (Zhu &
// Yu's distributed range monitoring, MOIST's space-partitioned moving
// object indexer): partition the space, evaluate per partition, and
// coordinate at the edges. Concretely:
//
//   - Every object is owned by exactly one tile — the tile containing
//     its (bounds-clamped) reported location. A report that moves an
//     object across a tile boundary is split into a removal routed to
//     the old tile and an insertion routed to the new tile, so negative
//     updates for queries in the old tile still fire.
//   - Range queries are replicated to every tile their region overlaps,
//     with the replica's region clipped to the tile's halo-expanded
//     extent; predictive range queries to every tile their region grown
//     by MaxSpeed·PredictiveHorizon overlaps (every tile when MaxSpeed
//     is unset: a predictive object's trajectory can then reach a
//     distant query region from any tile); kNN queries to every tile
//     overlapping their focal circle plus a configurable padding ring,
//     re-replicated whenever the circle grows.
//   - Each tile engine spans only its own tile plus a halo margin: its
//     core.Options.Region is the tile rectangle expanded by Options.Halo
//     (clipped to the global bounds), so the spatial index resolution
//     concentrates where the tile's objects actually are. Correctness
//     does not depend on the halo — engine answers are invariant under
//     the Region choice (predicates evaluate raw geometry; the grid is
//     only a candidate generator; see core.Options.Region) — it exists
//     so a replica's clipped region and its owned objects stay well
//     inside the tile's index.
//   - The tiling is a binary split forest over an initial Rows×Cols
//     grid: a hot tile splits into two halves along its longer axis, two
//     cold sibling leaves merge back into their parent rectangle, and
//     the object/query state moves through the ordinary migration and
//     replication paths inside the step, so the merged stream never
//     shows a seam (see repartition.go).
//   - Step broadcasts the evaluation to all live tiles, runs them in
//     parallel, and merges the resulting streams: membership refcounts
//     deduplicate positives/negatives for queries replicated to several
//     tiles — queries covered by exactly one tile bypass the refcount
//     and stream straight through — and kNN answers are merged to the
//     exact global top-k at the router (see knn.go).
//
// The Engine satisfies core.Processor and is a drop-in replacement for
// *core.Engine behind internal/server. Like the core engine it is not
// safe for concurrent use; callers serialize access. With Rows = Cols =
// 1 it degenerates to a single engine behind a thin router.
package shard

import (
	"fmt"
	"math"
	"slices"
	"sync"

	"cqp/internal/core"
	"cqp/internal/geo"
)

// Options configures a sharded engine.
type Options struct {
	// Core configures each per-tile engine. Core.Bounds is the global
	// monitored space; each tile engine receives a copy whose Region is
	// the tile's rectangle expanded by Halo. Core.Region must be unset
	// (the router owns it). Required.
	Core core.Options

	// Rows, Cols shape the initial tile grid. Both default to 1.
	Rows, Cols int

	// PadTiles is the kNN replication padding: a kNN query is
	// replicated to every tile overlapping its focal circle grown by
	// this many initial tile widths, so small circle growth does not
	// force a re-replication every step. Defaults to 1.
	PadTiles int

	// Halo is the absolute margin added around each tile's rectangle to
	// form its engine Region, and the slack added to the predictive
	// swept-region routing. It only tunes index resolution at the seams
	// — answers are invariant under it. 0 picks one global grid cell
	// (max bounds extent / Core.GridN); negative is an error.
	Halo float64

	// Repartition configures load-aware tile splitting and merging.
	// Disabled unless Repartition.Enable is set; SplitTile and
	// MergeTile work either way.
	Repartition RepartitionOptions

	// InnerParallelism, when positive, overrides Core.Parallelism for
	// every tile engine: each tile runs its join phase with this many
	// work-stealing workers. Zero inherits Core.Parallelism unchanged.
	// Useful when the tile count is below the core count — a few big
	// halo-bounded tiles can then still use the remaining cores inside
	// each Step.
	InnerParallelism int
}

// RepartitionOptions tunes the load-aware split/merge policy. Per-tile
// load is an exponential moving average of the tile's queue depth at
// broadcast time (the shard.queue_depth observation), or of the tile's
// measured step nanos (the shard.step_skew_ns source) when Core.Clock
// is configured — the same two signals the obs layer already exports.
type RepartitionOptions struct {
	// Enable turns the periodic policy check on.
	Enable bool

	// Interval is the number of steps between policy checks (default 16).
	Interval int

	// MaxTiles caps the number of live tiles (default 4 × the initial
	// Rows×Cols count).
	MaxTiles int

	// SplitFactor: a tile splits when its load exceeds SplitFactor ×
	// the mean live-tile load (default 2).
	SplitFactor float64

	// MergeFactor: two sibling leaves merge when their combined load is
	// below MergeFactor × the mean live-tile load (default 0.5).
	MergeFactor float64
}

func (o *Options) withDefaults() (Options, error) {
	out := *o
	if out.Rows == 0 {
		out.Rows = 1
	}
	if out.Cols == 0 {
		out.Cols = 1
	}
	if out.Rows < 1 || out.Cols < 1 {
		return out, fmt.Errorf("shard: Options.Rows and Cols must be positive, got %d x %d", out.Rows, out.Cols)
	}
	if out.PadTiles == 0 {
		out.PadTiles = 1
	}
	if out.PadTiles < 0 {
		return out, fmt.Errorf("shard: Options.PadTiles must be non-negative, got %d", out.PadTiles)
	}
	if out.Halo < 0 {
		return out, fmt.Errorf("shard: Options.Halo must be non-negative, got %v", out.Halo)
	}
	if out.Core.Region != (geo.Rect{}) && out.Core.Region != out.Core.Bounds {
		return out, fmt.Errorf("shard: Options.Core.Region is owned by the router, leave it unset")
	}
	// Resolve the core defaults once, up front: the router needs the
	// effective GridN (halo default), PredictiveHorizon and MaxSpeed
	// (swept-region routing) before any tile engine exists.
	c, err := out.Core.Normalized()
	if err != nil {
		return out, err
	}
	out.Core = c
	if out.Halo == 0 {
		out.Halo = math.Max(c.Bounds.Width(), c.Bounds.Height()) / float64(c.GridN)
	}
	r := &out.Repartition
	if r.Interval == 0 {
		r.Interval = 16
	}
	if r.MaxTiles == 0 {
		r.MaxTiles = 4 * out.Rows * out.Cols
	}
	if r.SplitFactor == 0 {
		r.SplitFactor = 2
	}
	if r.MergeFactor == 0 {
		r.MergeFactor = 0.5
	}
	if r.Interval < 1 || r.MaxTiles < out.Rows*out.Cols || r.SplitFactor <= 1 || r.MergeFactor < 0 {
		return out, fmt.Errorf("shard: invalid Repartition options %+v", *r)
	}
	return out, nil
}

// Split factors a shard count into the most square Rows×Cols tile grid
// whose product is exactly n (7 shards become 1×7; 12 become 3×4).
func Split(n int) (rows, cols int) {
	if n < 1 {
		return 1, 1
	}
	r := int(math.Sqrt(float64(n)))
	for r > 1 && n%r != 0 {
		r--
	}
	return r, n / r
}

// objInfo is the router's record of one object: which tile owns it and
// its last full report (used for migration detection, kNN merge
// distances, and re-insertion when a repartition moves the object to a
// fresh tile).
type objInfo struct {
	tile int
	last core.ObjectUpdate
}

// queryInfo is the router's record of one query: its definition (for
// replication), the tiles currently holding a replica, the per-object
// replica-membership refcounts, and the globally merged answer state.
type queryInfo struct {
	id   core.QueryID
	kind core.QueryKind
	t    float64

	region geo.Rect  // Range / PredictiveRange region
	t1, t2 float64   // PredictiveRange validity window
	focal  geo.Point // KNN focal point
	k      int       // KNN cardinality
	radius float64   // KNN: distance to the current global k-th member

	// coverage is the sorted set of tiles holding a replica of this
	// query. Invariant: every replica receives every subsequent update
	// of the query, so replicas never go stale; coverage only contains
	// live tiles (repartitions rewrite it in the same step).
	coverage []int

	// covEpoch is the router step that last changed the coverage set.
	// The single-replica merge bypass requires a step in which the
	// coverage did not change: only then is the sole replica's stream
	// already the exact merged stream (see absorb).
	covEpoch uint64

	// count refcounts, per object, how many replicas currently report
	// it as a member. For Range and PredictiveRange queries an object
	// is owned by exactly one tile, so the merged global answer is
	// simply {o : count[o] > 0}; the refcount deduplicates the
	// transient −/+ pairs of cross-tile migrations. For KNN queries
	// count tracks *candidacy* (membership in some tile's local top-k)
	// and the exact global answer is maintained separately.
	//
	// count is nil while the query rides the single-replica merge
	// bypass: with one replica there is nothing to deduplicate, so the
	// answer lives in ans instead and the map is dropped. Any event
	// that re-enters the refcount path — coverage change, repartition
	// handoff, removal — materializes count again (materializeCount).
	count map[core.ObjectID]int

	// ans is the merged answer as a sorted ObjectID slice, valid only
	// in bypass mode (count == nil, never for KNN). Tile batches are
	// (Query, Object)-sorted, so the bypass folds a query's update run
	// into ans with one linear merge — no per-update map traffic — and
	// the auto-commit snapshot of a moving query is a memcopy.
	ans []core.ObjectID

	// answer is the exact global top-k of a KNN query; nil for other
	// kinds (their answer is derived from count).
	answer map[core.ObjectID]struct{}

	// committed is the last committed answer in ascending ObjectID
	// order; empty until the first commit. Never-committed and
	// committed-empty coincide, exactly as they do observably in core.
	committed []core.ObjectID
}

// materializeCount switches a bypass-mode query back to refcount mode:
// every member of the sorted answer holds exactly one replica's claim.
func (qi *queryInfo) materializeCount() {
	if qi.count != nil {
		return
	}
	qi.count = make(map[core.ObjectID]int, len(qi.ans))
	for _, o := range qi.ans {
		qi.count[o] = 1
	}
	qi.ans = qi.ans[:0]
}

// materializeAns switches a refcount-mode query to the bypass's sorted-
// slice answer. Only called when the query has held a single replica
// through a full settled step, which guarantees every refcount is 0 or
// 1 — the slice is exactly {o : count[o] > 0}.
func (qi *queryInfo) materializeAns() {
	qi.ans = qi.ans[:0]
	for o, c := range qi.count {
		if c > 0 {
			qi.ans = append(qi.ans, o)
		}
	}
	slices.Sort(qi.ans)
	qi.count = nil
}

// covHas reports whether sorted coverage contains tile t.
func covHas(cov []int, t int) bool {
	lo, hi := 0, len(cov)
	for lo < hi {
		mid := (lo + hi) / 2
		if cov[mid] < t {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(cov) && cov[lo] == t
}

// unionSorted merges sorted b into sorted a, deduplicating, appending
// to dst (which may be a[:0] only if a and dst do not alias — callers
// pass a fresh dst).
func unionSorted(dst, a, b []int) []int {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			dst = append(dst, a[i])
			i++
		case a[i] > b[j]:
			dst = append(dst, b[j])
			j++
		default:
			dst = append(dst, a[i])
			i++
			j++
		}
	}
	dst = append(dst, a[i:]...)
	dst = append(dst, b[j:]...)
	return dst
}

// tileState is the router-side spatial record of one tile id.
type tileState struct {
	rect geo.Rect // the tile's owned rectangle (partition cell)
	node int      // index into Engine.nodes of the leaf this tile serves
	live bool
}

// tnode is one node of the binary split forest. The initial Rows×Cols
// tiles are the roots; a split turns a leaf into an interior node with
// two children, a merge of two sibling leaves turns their parent back
// into a leaf (served by a fresh tile id).
type tnode struct {
	rect   geo.Rect
	parent int    // -1 for roots
	kids   [2]int // node indexes; {-1, -1} while a leaf
	tile   int    // live tile id serving this leaf; -1 otherwise
}

// Engine is the sharded processor. See the package documentation.
type Engine struct {
	opt   Options
	halo  float64
	tileW float64 // initial tile width (kNN pad unit, stable across repartitions)
	tileH float64

	tiles  []Tile      // by tile id; nil once retired (ids are never reused)
	tstate []tileState // parallel to tiles
	nodes  []tnode
	live   []int // sorted ids of live tiles

	objCount []int     // objects owned per tile id
	loadEW   []float64 // EWMA of queue depth at broadcast, per tile id
	nanosEW  []float64 // EWMA of measured step nanos, per tile id (0 without a clock)

	factory TileFactory

	now     float64
	stepSeq uint64
	objs    map[core.ObjectID]*objInfo
	qrys    map[core.QueryID]*queryInfo

	// candKNN is the reverse candidacy index: for each object, the KNN
	// queries holding it as a merge candidate. An object report must
	// re-rank those queries even when no tile emits a membership
	// change (a candidate moving within its tile's local top-k changes
	// global distances silently).
	candKNN map[core.ObjectID]map[core.QueryID]struct{}

	pendingOps []repartOp // queued SplitTile/MergeTile requests

	objBuf   []core.ObjectUpdate
	qryBuf   []core.QueryUpdate
	covBuf   []int           // coverage scratch, reused per query update
	covBuf2  []int           // second coverage scratch (kNN union)
	ansBuf   []core.ObjectID // bypass answer-merge scratch (see absorbBypass)
	batchBuf [][]core.Update // broadcast scratch
	merge    mergeState      // step scratch, reused across Steps

	stats       core.Stats
	retiredWork core.Stats // work counters of retired tiles (see Stats)
	m           *shardMetrics

	closeOnce sync.Once
}

var _ core.Processor = (*Engine)(nil)

// New constructs a sharded engine over opt.Core.Bounds with in-process
// tiles.
func New(opt Options) (*Engine, error) {
	return NewWithTiles(opt, nil)
}

// NewWithTiles constructs a sharded engine whose tile transports come
// from factory; a nil factory yields the in-process tiles New uses.
// The factory receives each tile's core options with Region already set
// to the tile's halo-expanded rectangle. internal/cluster passes a
// factory binding tiles to worker processes: the router's routing and
// merge logic is byte-for-byte the same either way, which is what keeps
// the cluster's merged update stream bit-identical to the in-process
// engine's.
func NewWithTiles(opt Options, factory TileFactory) (*Engine, error) {
	o, err := opt.withDefaults()
	if err != nil {
		return nil, err
	}
	b := o.Core.Bounds
	e := &Engine{
		opt:     o,
		halo:    o.Halo,
		objs:    make(map[core.ObjectID]*objInfo),
		qrys:    make(map[core.QueryID]*queryInfo),
		candKNN: make(map[core.ObjectID]map[core.QueryID]struct{}),
		m:       newShardMetrics(o.Core.Metrics, o.Core.Clock),
	}
	e.factory = factory
	if e.factory == nil {
		e.factory = func(_ int, opt core.Options) (Tile, error) {
			// Every tile engine resolves the same "engine.*" names against
			// the shared registry, so engine metrics aggregate across tiles.
			return newLocalTile(opt, e.m.tracer)
		}
	}
	e.tileW = b.Width() / float64(o.Cols)
	e.tileH = b.Height() / float64(o.Rows)
	for r := 0; r < o.Rows; r++ {
		for c := 0; c < o.Cols; c++ {
			rect := geo.Rect{
				MinX: b.MinX + float64(c)*e.tileW,
				MinY: b.MinY + float64(r)*e.tileH,
				MaxX: b.MinX + float64(c+1)*e.tileW,
				MaxY: b.MinY + float64(r+1)*e.tileH,
			}
			// Pin the outer edges to the exact bounds: tile ownership
			// treats the global boundary as closed, which requires the
			// boundary tiles' edges to compare equal to it.
			if c == o.Cols-1 {
				rect.MaxX = b.MaxX
			}
			if r == o.Rows-1 {
				rect.MaxY = b.MaxY
			}
			node := e.newNode(rect, -1)
			if _, err := e.attachTile(node); err != nil {
				e.Close()
				return nil, err
			}
		}
	}
	e.m.tiles.Set(int64(len(e.live)))
	e.observeTileArea()
	return e, nil
}

// NewN constructs a sharded engine with n tiles arranged by Split.
func NewN(opt core.Options, n int) (*Engine, error) {
	rows, cols := Split(n)
	return New(Options{Core: opt, Rows: rows, Cols: cols})
}

// MustNew is New that panics on configuration errors, for tests and
// examples.
func MustNew(opt Options) *Engine {
	e, err := New(opt)
	if err != nil {
		panic(err)
	}
	return e
}

// Close stops every tile transport. The engine must not be used
// afterwards. It is idempotent and safe on a partially constructed
// engine.
func (e *Engine) Close() error {
	e.closeOnce.Do(func() {
		for _, t := range e.tiles {
			if t != nil {
				t.Close()
			}
		}
	})
	return nil
}

// NumTiles returns the number of live tiles (shards).
func (e *Engine) NumTiles() int { return len(e.live) }

// TileRect returns the spatial extent of tile id i (live or retired),
// for tests and monitoring.
func (e *Engine) TileRect(i int) geo.Rect { return e.tstate[i].rect }

// LiveTiles returns the sorted ids of the live tiles. The returned
// slice is owned by the engine; callers must not modify it.
func (e *Engine) LiveTiles() []int { return e.live }

// newNode appends a forest node and returns its index.
func (e *Engine) newNode(rect geo.Rect, parent int) int {
	e.nodes = append(e.nodes, tnode{rect: rect, parent: parent, kids: [2]int{-1, -1}, tile: -1})
	return len(e.nodes) - 1
}

// tileOptions derives the core options of a tile engine serving rect:
// the engine's Region is the rectangle grown by the halo, clipped to
// the global bounds.
func (e *Engine) tileOptions(rect geo.Rect) core.Options {
	o := e.opt.Core
	if region, ok := rect.Expand(e.halo).Intersect(o.Bounds); ok {
		o.Region = region
	}
	// Tile engines are replicas behind this router: the router owns the
	// commit/recover protocol, so tiles skip auto-commit snapshots.
	o.Replica = true
	if e.opt.InnerParallelism > 0 {
		o.Parallelism = e.opt.InnerParallelism
	}
	return o
}

// attachTile creates a fresh live tile serving leaf node and returns
// its id.
func (e *Engine) attachTile(node int) (int, error) {
	id := len(e.tiles)
	rect := e.nodes[node].rect
	t, err := e.factory(id, e.tileOptions(rect))
	if err != nil {
		return -1, err
	}
	e.tiles = append(e.tiles, t)
	e.tstate = append(e.tstate, tileState{rect: rect, node: node, live: true})
	e.objCount = append(e.objCount, 0)
	e.loadEW = append(e.loadEW, 0)
	e.nanosEW = append(e.nanosEW, 0)
	e.nodes[node].tile = id
	// Keep the live list sorted; new ids are always the largest.
	e.live = append(e.live, id)
	return id, nil
}

// deactivateTile removes id from the live set (routing no longer sees
// it) while keeping its transport alive for the handoff sub-step.
func (e *Engine) deactivateTile(id int) {
	st := &e.tstate[id]
	st.live = false
	e.nodes[st.node].tile = -1
	for i, t := range e.live {
		if t == id {
			e.live = append(e.live[:i], e.live[i+1:]...)
			break
		}
	}
}

// destroyTile accumulates a deactivated tile's work counters and closes
// its transport.
func (e *Engine) destroyTile(id int) {
	ws := e.tiles[id].WorkStats()
	e.retiredWork.KNNRecomputes += ws.KNNRecomputes
	e.retiredWork.CandidateChecks += ws.CandidateChecks
	e.retiredWork.RegionEvalCells += ws.RegionEvalCells
	e.tiles[id].Close()
	e.tiles[id] = nil
}

// clampToBounds clamps a point into the monitored space componentwise.
func (e *Engine) clampToBounds(p geo.Point) geo.Point {
	b := e.opt.Core.Bounds
	if p.X < b.MinX {
		p.X = b.MinX
	} else if p.X > b.MaxX {
		p.X = b.MaxX
	}
	if p.Y < b.MinY {
		p.Y = b.MinY
	} else if p.Y > b.MaxY {
		p.Y = b.MaxY
	}
	return p
}

// ownsPoint reports whether a tile rectangle owns a (bounds-clamped)
// point. Ownership is half-open — a point on a shared MaxX/MaxY edge
// belongs to the neighbor — except at the global boundary, which is
// closed so clamped out-of-bounds reports have an owner.
func (e *Engine) ownsPoint(r geo.Rect, p geo.Point) bool {
	b := e.opt.Core.Bounds
	if p.X < r.MinX || p.X > r.MaxX || p.Y < r.MinY || p.Y > r.MaxY {
		return false
	}
	if p.X == r.MaxX && r.MaxX != b.MaxX {
		return false
	}
	if p.Y == r.MaxY && r.MaxY != b.MaxY {
		return false
	}
	return true
}

// tileOf returns the id of the live tile owning a point.
func (e *Engine) tileOf(p geo.Point) int {
	p = e.clampToBounds(p)
	for _, id := range e.live {
		if e.ownsPoint(e.tstate[id].rect, p) {
			return id
		}
	}
	// The live rectangles partition the bounds exactly (splits are
	// midpoint cuts of their parent), so this is unreachable; guard
	// against float pathology with the nearest tile, deterministically.
	best, bd := e.live[0], math.Inf(1)
	for _, id := range e.live {
		if d := e.tstate[id].rect.MinDist2(p); d < bd {
			bd, best = d, id
		}
	}
	return best
}

// tilesOverlapping appends to dst (sorted) every live tile a region can
// share an owned object with. The region is clamped into bounds
// componentwise first: clamping is monotone, so the owner tile of any
// (clamped) location the region contains always intersects the clamped
// image.
func (e *Engine) tilesOverlapping(r geo.Rect, dst []int) []int {
	if !r.Valid() {
		return dst
	}
	lo := e.clampToBounds(geo.Pt(r.MinX, r.MinY))
	hi := e.clampToBounds(geo.Pt(r.MaxX, r.MaxY))
	cr := geo.Rect{MinX: lo.X, MinY: lo.Y, MaxX: hi.X, MaxY: hi.Y}
	for _, id := range e.live {
		if e.tstate[id].rect.Intersects(cr) {
			dst = append(dst, id)
		}
	}
	return dst
}

// allLive appends every live tile id to dst (sorted).
func (e *Engine) allLive(dst []int) []int {
	return append(dst, e.live...)
}

// knnCoverage appends the tiles a kNN query must be replicated to for a
// focal circle of the given radius, padded by PadTiles initial tile
// widths. The pad is a replication-churn damper, not a correctness
// bound — settleKNN's fixpoint supplies that.
func (e *Engine) knnCoverage(focal geo.Point, radius float64, dst []int) []int {
	pad := float64(e.opt.PadTiles) * math.Max(e.tileW, e.tileH)
	return e.tilesOverlapping(geo.RectAround(focal, radius+pad), dst)
}

// predictiveCoverage appends the tiles a predictive range query must be
// replicated to. With a MaxSpeed cap, an object's trajectory over the
// validity window [T, T+PredictiveHorizon] stays within
// MaxSpeed·PredictiveHorizon of its reported location, so only tiles
// overlapping the region grown by that reach (plus the halo, covering
// the ownership slack of boundary-clamped reports) can own an object
// whose predicted motion intersects the region. Without a cap any tile
// can, so the query replicates everywhere.
func (e *Engine) predictiveCoverage(region geo.Rect, dst []int) []int {
	ms := e.opt.Core.MaxSpeed
	if ms <= 0 {
		return e.allLive(dst)
	}
	reach := ms*e.opt.Core.PredictiveHorizon + e.halo
	return e.tilesOverlapping(region.Expand(reach), dst)
}

// farOut is the pseudo-infinity used when extending a tile's clip
// rectangle past the global boundary: clamped ownership maps every
// out-of-bounds raw location onto the boundary tiles, whose clip must
// therefore admit arbitrary raw coordinates on that side. Finite so
// grid arithmetic stays well-behaved.
const farOut = 1e12

// clipRegion clips a range query's region to a tile's halo-expanded
// extent, extending any side that touches the global boundary to
// ±farOut. For every object owned by the tile, raw-location membership
// in the clipped region is equivalent to membership in the full region
// (an owned object's raw location always lies inside the extended
// extent — in-bounds coordinates fall in the tile's range, out-of-bounds
// ones clamp onto a boundary side, which is extended), so the replica's
// local answer is exactly the full query's answer restricted to the
// tile's objects.
func (e *Engine) clipRegion(region geo.Rect, tile int) geo.Rect {
	c := e.tstate[tile].rect.Expand(e.halo)
	b := e.opt.Core.Bounds
	if c.MinX <= b.MinX {
		c.MinX = -farOut
	}
	if c.MinY <= b.MinY {
		c.MinY = -farOut
	}
	if c.MaxX >= b.MaxX {
		c.MaxX = farOut
	}
	if c.MaxY >= b.MaxY {
		c.MaxY = farOut
	}
	out, ok := region.Intersect(c)
	if !ok {
		// Unreachable for covered tiles (coverage implies overlap of the
		// clamped region, which the extended extent contains); forwarding
		// the full region is always sound — clipping is an optimization.
		return region
	}
	return out
}

// stepTiles runs Step(now) on the given tiles in parallel and returns
// their update batches in tile order. Used by the kNN settle fixpoint
// and the repartition handoff.
func (e *Engine) stepTiles(tiles []int, now float64) [][]core.Update {
	for _, t := range tiles {
		e.m.queueDepth.Observe(int64(e.tiles[t].Pending()))
		e.tiles[t].StepBegin(now)
	}
	out := e.batchBuf[:0]
	for _, t := range tiles {
		out = append(out, e.tiles[t].StepWait())
	}
	e.batchBuf = out
	return out
}

// stepAll runs Step(now) on every live tile in parallel, recording each
// tile's queue depth at broadcast time (also folded into the load
// average driving repartitioning) and the broadcast's step skew
// (slowest minus fastest tile) when a clock is configured.
func (e *Engine) stepAll(now float64) [][]core.Update {
	const keep = 0.75 // EWMA retention of the previous load estimate
	for _, id := range e.live {
		p := e.tiles[id].Pending()
		e.m.queueDepth.Observe(int64(p))
		e.loadEW[id] = keep*e.loadEW[id] + (1-keep)*float64(p)
		e.tiles[id].StepBegin(now)
	}
	out := e.batchBuf[:0]
	for _, id := range e.live {
		out = append(out, e.tiles[id].StepWait())
	}
	e.batchBuf = out
	if e.m.tracer.Enabled() && len(e.live) > 0 {
		lo, hi := int64(math.MaxInt64), int64(math.MinInt64)
		for _, id := range e.live {
			ns := e.tiles[id].StepNanos()
			e.nanosEW[id] = keep*e.nanosEW[id] + (1-keep)*float64(ns)
			if ns < lo {
				lo = ns
			}
			if ns > hi {
				hi = ns
			}
		}
		if len(e.live) > 1 {
			e.m.stepSkew.Observe(hi - lo)
		}
	}
	return out
}

// observeTileArea publishes the largest live tile's share of the
// monitored space, in parts per million, to shard.tile_area_max_ppm.
func (e *Engine) observeTileArea() {
	b := e.opt.Core.Bounds
	total := b.Width() * b.Height()
	if total <= 0 {
		return
	}
	maxA := 0.0
	for _, id := range e.live {
		r := e.tstate[id].rect
		if a := r.Width() * r.Height(); a > maxA {
			maxA = a
		}
	}
	e.m.tileAreaMax.Set(int64(maxA / total * 1e6))
}
