package shard

import (
	"slices"

	"cqp/internal/core"
	"cqp/internal/geo"
)

// The client-protocol surface of the sharded engine. The router is the
// single source of truth for answers and the commit/recover protocol:
// per-tile engines are replicas (core.Options.Replica) — a query
// replicated to three tiles has one global answer and one committed
// snapshot, both held here.

// answerIDs returns the merged global answer of a query in ascending
// ObjectID order.
func (e *Engine) answerIDs(qi *queryInfo) []core.ObjectID {
	var out []core.ObjectID
	switch {
	case qi.kind == core.KNN:
		out = make([]core.ObjectID, 0, len(qi.answer))
		for o := range qi.answer {
			out = append(out, o)
		}
	case qi.count == nil:
		return slices.Clone(qi.ans) // bypass mode: already sorted
	default:
		out = make([]core.ObjectID, 0, len(qi.count))
		for o, c := range qi.count {
			if c > 0 {
				out = append(out, o)
			}
		}
	}
	slices.Sort(out)
	return out
}

// Answer returns the current merged answer of q in ascending ObjectID
// order, or nil and false if q is unknown.
func (e *Engine) Answer(q core.QueryID) ([]core.ObjectID, bool) {
	qi, ok := e.qrys[q]
	if !ok {
		return nil, false
	}
	return e.answerIDs(qi), true
}

// AnswerChecksum returns the order-independent checksum of q's current
// answer; ok is false when q is unknown.
func (e *Engine) AnswerChecksum(q core.QueryID) (uint64, bool) {
	qi, ok := e.qrys[q]
	if !ok {
		return 0, false
	}
	if qi.kind != core.KNN && qi.count == nil {
		return core.ChecksumIDs(qi.ans), true
	}
	return core.ChecksumIDs(e.answerIDs(qi)), true
}

// commitNow snapshots the current merged answer as the committed
// answer, reusing the previous snapshot's backing array.
func (e *Engine) commitNow(qi *queryInfo) {
	if qi.kind != core.KNN && qi.count == nil {
		qi.committed = append(qi.committed[:0], qi.ans...)
	} else {
		qi.committed = append(qi.committed[:0], e.answerIDs(qi)...)
	}
}

// Commit records that q's client provably received the stream so far.
// It reports whether q is registered.
func (e *Engine) Commit(q core.QueryID) bool {
	qi, ok := e.qrys[q]
	if !ok {
		return false
	}
	e.commitNow(qi)
	return true
}

// CommittedAnswer returns the last committed answer of q in ascending
// ObjectID order; ok is false when q is unknown.
func (e *Engine) CommittedAnswer(q core.QueryID) ([]core.ObjectID, bool) {
	qi, ok := e.qrys[q]
	if !ok {
		return nil, false
	}
	return slices.Clone(qi.committed), true
}

// CommittedChecksum returns the checksum of q's committed answer; ok is
// false when q is unknown.
func (e *Engine) CommittedChecksum(q core.QueryID) (uint64, bool) {
	qi, ok := e.qrys[q]
	if !ok {
		return 0, false
	}
	return core.ChecksumIDs(qi.committed), true
}

// SeedCommitted installs a committed answer for q (repository restore
// after a restart). It reports whether q is registered.
func (e *Engine) SeedCommitted(q core.QueryID, objs []core.ObjectID) bool {
	qi, ok := e.qrys[q]
	if !ok {
		return false
	}
	qi.committed = append(qi.committed[:0], objs...)
	slices.Sort(qi.committed)
	return true
}

// Recover returns the updates an out-of-sync client needs — the diff
// between the committed and current merged answers, negatives first —
// and then commits, exactly as core.Engine.Recover does. Both sides of
// the diff are ascending ObjectID slices, so the diff is a single
// linear pass.
func (e *Engine) Recover(q core.QueryID) ([]core.Update, bool) {
	qi, ok := e.qrys[q]
	if !ok {
		return nil, false
	}
	var answer []core.ObjectID
	if qi.kind != core.KNN && qi.count == nil {
		answer = qi.ans
	} else {
		answer = e.answerIDs(qi)
	}
	var out []core.Update
	// Negatives first (the client prunes before it grows), then
	// ascending ObjectID — the same order as core.Engine.Recover.
	i, j := 0, 0
	for i < len(qi.committed) {
		for j < len(answer) && answer[j] < qi.committed[i] {
			j++
		}
		if j >= len(answer) || answer[j] != qi.committed[i] {
			out = append(out, core.Update{Query: q, Object: qi.committed[i], Positive: false})
		}
		i++
	}
	i, j = 0, 0
	for j < len(answer) {
		for i < len(qi.committed) && qi.committed[i] < answer[j] {
			i++
		}
		if i >= len(qi.committed) || qi.committed[i] != answer[j] {
			out = append(out, core.Update{Query: q, Object: answer[j], Positive: true})
		}
		j++
	}
	qi.committed = append(qi.committed[:0], answer...)
	return out, true
}

// Stats returns the router's activity counters. Step, report, and
// update counts are the router's own (they match the single-engine
// counts for the same workload); the work counters — kNN recomputes,
// candidate checks, region cells visited — are summed over the live
// tile engines plus the final tallies of tiles retired by
// repartitioning, exposing the actual evaluation work done across
// shards.
func (e *Engine) Stats() core.Stats {
	s := e.stats
	s.KNNRecomputes += e.retiredWork.KNNRecomputes
	s.CandidateChecks += e.retiredWork.CandidateChecks
	s.RegionEvalCells += e.retiredWork.RegionEvalCells
	for _, t := range e.tiles {
		if t == nil {
			continue
		}
		ws := t.WorkStats()
		s.KNNRecomputes += ws.KNNRecomputes
		s.CandidateChecks += ws.CandidateChecks
		s.RegionEvalCells += ws.RegionEvalCells
	}
	return s
}

// Now returns the evaluation timestamp of the last Step.
func (e *Engine) Now() float64 { return e.now }

// Bounds returns the monitored space.
func (e *Engine) Bounds() geo.Rect { return e.opt.Core.Bounds }

// NumObjects returns the number of registered objects across all tiles.
func (e *Engine) NumObjects() int { return len(e.objs) }

// NumQueries returns the number of registered queries.
func (e *Engine) NumQueries() int { return len(e.qrys) }
