package shard

import (
	"slices"

	"cqp/internal/core"
	"cqp/internal/geo"
)

// The client-protocol surface of the sharded engine. The router is the
// single source of truth for answers and the commit/recover protocol:
// per-tile engines also track committed state, but it is never
// consulted — a query replicated to three tiles has one global answer
// and one committed snapshot, both held here.

// answerIDs returns the merged global answer of a query in ascending
// ObjectID order.
func (e *Engine) answerIDs(qi *queryInfo) []core.ObjectID {
	var out []core.ObjectID
	if qi.kind == core.KNN {
		out = make([]core.ObjectID, 0, len(qi.answer))
		for o := range qi.answer {
			out = append(out, o)
		}
	} else {
		out = make([]core.ObjectID, 0, len(qi.count))
		for o, c := range qi.count {
			if c > 0 {
				out = append(out, o)
			}
		}
	}
	slices.Sort(out)
	return out
}

// answerSet returns the merged global answer as a set.
func (e *Engine) answerSet(qi *queryInfo) map[core.ObjectID]struct{} {
	if qi.kind == core.KNN {
		out := make(map[core.ObjectID]struct{}, len(qi.answer))
		for o := range qi.answer {
			out[o] = struct{}{}
		}
		return out
	}
	out := make(map[core.ObjectID]struct{}, len(qi.count))
	for o, c := range qi.count {
		if c > 0 {
			out[o] = struct{}{}
		}
	}
	return out
}

// Answer returns the current merged answer of q in ascending ObjectID
// order, or nil and false if q is unknown.
func (e *Engine) Answer(q core.QueryID) ([]core.ObjectID, bool) {
	qi, ok := e.qrys[q]
	if !ok {
		return nil, false
	}
	return e.answerIDs(qi), true
}

// AnswerChecksum returns the order-independent checksum of q's current
// answer; ok is false when q is unknown.
func (e *Engine) AnswerChecksum(q core.QueryID) (uint64, bool) {
	qi, ok := e.qrys[q]
	if !ok {
		return 0, false
	}
	return core.ChecksumIDs(e.answerIDs(qi)), true
}

// Commit records that q's client provably received the stream so far.
// It reports whether q is registered.
func (e *Engine) Commit(q core.QueryID) bool {
	qi, ok := e.qrys[q]
	if !ok {
		return false
	}
	qi.committed = e.answerSet(qi)
	return true
}

// CommittedAnswer returns the last committed answer of q in ascending
// ObjectID order; ok is false when q is unknown.
func (e *Engine) CommittedAnswer(q core.QueryID) ([]core.ObjectID, bool) {
	qi, ok := e.qrys[q]
	if !ok {
		return nil, false
	}
	out := make([]core.ObjectID, 0, len(qi.committed))
	for o := range qi.committed {
		out = append(out, o)
	}
	slices.Sort(out)
	return out, true
}

// CommittedChecksum returns the checksum of q's committed answer; ok is
// false when q is unknown.
func (e *Engine) CommittedChecksum(q core.QueryID) (uint64, bool) {
	qi, ok := e.qrys[q]
	if !ok {
		return 0, false
	}
	out := make([]core.ObjectID, 0, len(qi.committed))
	for o := range qi.committed {
		out = append(out, o)
	}
	return core.ChecksumIDs(out), true
}

// SeedCommitted installs a committed answer for q (repository restore
// after a restart). It reports whether q is registered.
func (e *Engine) SeedCommitted(q core.QueryID, objs []core.ObjectID) bool {
	qi, ok := e.qrys[q]
	if !ok {
		return false
	}
	committed := make(map[core.ObjectID]struct{}, len(objs))
	for _, o := range objs {
		committed[o] = struct{}{}
	}
	qi.committed = committed
	return true
}

// Recover returns the updates an out-of-sync client needs — the diff
// between the committed and current merged answers, negatives first —
// and then commits, exactly as core.Engine.Recover does.
func (e *Engine) Recover(q core.QueryID) ([]core.Update, bool) {
	qi, ok := e.qrys[q]
	if !ok {
		return nil, false
	}
	answer := e.answerSet(qi)
	var out []core.Update
	for o := range qi.committed {
		if _, still := answer[o]; !still {
			out = append(out, core.Update{Query: q, Object: o, Positive: false})
		}
	}
	for o := range answer {
		if _, had := qi.committed[o]; !had {
			out = append(out, core.Update{Query: q, Object: o, Positive: true})
		}
	}
	// Negatives first (the client prunes before it grows), then ascending
	// ObjectID — the same order as core.Engine.Recover.
	slices.SortFunc(out, compareRecovery)
	qi.committed = answer
	return out, true
}

// compareRecovery orders a recovery diff: negatives first, then ascending
// ObjectID — identical to the core engine's recovery order.
func compareRecovery(a, b core.Update) int {
	if a.Positive != b.Positive {
		if !a.Positive {
			return -1
		}
		return 1
	}
	if a.Object < b.Object {
		return -1
	}
	if a.Object > b.Object {
		return 1
	}
	return 0
}

// Stats returns the router's activity counters. Step, report, and
// update counts are the router's own (they match the single-engine
// counts for the same workload); the work counters — kNN recomputes,
// candidate checks, region cells visited — are summed over the tile
// engines, exposing the actual evaluation work done across shards.
func (e *Engine) Stats() core.Stats {
	s := e.stats
	for _, t := range e.tiles {
		ws := t.WorkStats()
		s.KNNRecomputes += ws.KNNRecomputes
		s.CandidateChecks += ws.CandidateChecks
		s.RegionEvalCells += ws.RegionEvalCells
	}
	return s
}

// Now returns the evaluation timestamp of the last Step.
func (e *Engine) Now() float64 { return e.now }

// Bounds returns the monitored space.
func (e *Engine) Bounds() geo.Rect { return e.opt.Core.Bounds }

// NumObjects returns the number of registered objects across all tiles.
func (e *Engine) NumObjects() int { return len(e.objs) }

// NumQueries returns the number of registered queries.
func (e *Engine) NumQueries() int { return len(e.qrys) }
