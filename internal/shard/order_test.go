package shard

import (
	"math/rand"
	"testing"

	"cqp/internal/core"
	"cqp/internal/geo"
)

// This file pins the sharded engine's half of the reproducibility
// contract: Step output is in core.SortUpdates order, identical runs
// produce bit-identical streams, and for workloads where emission is
// attributable to a single engine semantics (no same-step teardown
// races), the sharded stream equals the single-space engine's stream
// element for element — not merely as a multiset.

type reporter interface {
	ReportObject(core.ObjectUpdate)
	ReportQuery(core.QueryUpdate)
	Step(float64) []core.Update
}

// driveShardWorkload feeds a deterministic mixed workload (moving,
// predictive and trajectory objects with removals; range and predictive
// queries that move every few steps) to every engine in engs, returning
// one stream per engine. Uniform positions make a large fraction of the
// moves cross-tile.
func driveShardWorkload(seed int64, steps int, engs ...reporter) [][][]core.Update {
	rng := rand.New(rand.NewSource(seed))
	streams := make([][][]core.Update, len(engs))

	for q := core.QueryID(1); q <= 12; q++ {
		u := core.QueryUpdate{ID: q, T: 0}
		if q%2 == 0 {
			u.Kind = core.Range
			u.Region = geo.RectAt(geo.Pt(rng.Float64(), rng.Float64()), 0.05+rng.Float64()*0.3)
		} else {
			u.Kind = core.PredictiveRange
			u.Region = geo.RectAt(geo.Pt(rng.Float64(), rng.Float64()), 0.2)
			u.T1, u.T2 = 5, 25
		}
		for _, e := range engs {
			e.ReportQuery(u)
		}
	}

	for step := 0; step < steps; step++ {
		now := float64(step + 1)
		for n := 0; n < 40; n++ {
			u := core.ObjectUpdate{
				ID:   core.ObjectID(1 + rng.Intn(90)),
				Kind: core.ObjectKind(rng.Intn(3)),
				Loc:  geo.Pt(rng.Float64(), rng.Float64()),
				Vel:  geo.Vec(rng.Float64()*0.06-0.03, rng.Float64()*0.06-0.03),
				T:    now,
			}
			if rng.Float64() < 0.04 {
				u = core.ObjectUpdate{ID: u.ID, Remove: true, T: now}
			}
			for _, e := range engs {
				e.ReportObject(u)
			}
		}
		if step%5 == 4 {
			// Move a query region; same kind, so every retraction is
			// attributable identically in both engines.
			q := core.QueryID(2 + 2*core.QueryID(rng.Intn(6)))
			u := core.QueryUpdate{
				ID: q, Kind: core.Range, T: now,
				Region: geo.RectAt(geo.Pt(rng.Float64(), rng.Float64()), 0.05+rng.Float64()*0.3),
			}
			for _, e := range engs {
				e.ReportQuery(u)
			}
		}
		for i, e := range engs {
			streams[i] = append(streams[i], e.Step(now))
		}
	}
	return streams
}

func streamsIdentical(a, b [][]core.Update) (int, bool) {
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return i, false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return i, false
			}
		}
	}
	return 0, true
}

func mustSharded(t *testing.T, rows, cols int) *Engine {
	t.Helper()
	e, err := New(Options{
		Core: core.Options{Bounds: geo.R(0, 0, 1, 1), GridN: 8},
		Rows: rows, Cols: cols,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	return e
}

// TestShardStepCanonicalOrder asserts the sharded engine's Step output
// is in core.SortUpdates order.
func TestShardStepCanonicalOrder(t *testing.T) {
	e := mustSharded(t, 2, 2)
	streams := driveShardWorkload(17, 40, e)[0]
	for i, s := range streams {
		for j := 1; j < len(s); j++ {
			a, b := s[j-1], s[j]
			if a.Query > b.Query || (a.Query == b.Query && a.Object > b.Object) {
				t.Fatalf("step %d emitted out of canonical order: %v", i, s)
			}
		}
	}
}

// TestShardStreamReproducible runs the identical workload through two
// identically configured sharded engines and requires bit-identical
// streams: tile goroutine scheduling and map iteration must not leak
// into the merged output.
func TestShardStreamReproducible(t *testing.T) {
	a := mustSharded(t, 2, 2)
	b := mustSharded(t, 2, 2)
	streams := driveShardWorkload(23, 40, a, b)
	if step, same := streamsIdentical(streams[0], streams[1]); !same {
		t.Fatalf("two runs of the same workload diverged at step %d:\nfirst:  %v\nsecond: %v",
			step, streams[0][step], streams[1][step])
	}
}

// netStream collapses same-step transients: consecutive updates for the
// same (Query, Object) pair in a canonically sorted stream alternate
// sign (membership flips back and forth within the step), so the net
// effect is the last update when the count is odd and nothing when it
// is even. The single engine reports transients (−O then +O when an
// object leaves and re-enters an answer inside one step); the sharded
// merge nets them by construction. Both replay to the same answer.
func netStream(us []core.Update) []core.Update {
	var out []core.Update
	for i := 0; i < len(us); {
		j := i
		for j < len(us) && us[j].Query == us[i].Query && us[j].Object == us[i].Object {
			j++
		}
		if (j-i)%2 == 1 {
			out = append(out, us[j-1])
		}
		i = j
	}
	return out
}

// TestShardStreamMatchesSingle is the strongest form of the differential
// contract available for this workload class: for range and predictive
// queries (where every update is attributable identically under both
// architectures), the sharded engine's canonical stream must equal the
// single-space engine's — element for element after netting same-step
// transients, which are the one documented representational difference.
func TestShardStreamMatchesSingle(t *testing.T) {
	single := core.MustNewEngine(core.Options{Bounds: geo.R(0, 0, 1, 1), GridN: 8})
	sharded := mustSharded(t, 2, 2)
	streams := driveShardWorkload(29, 40, single, sharded)
	a := make([][]core.Update, len(streams[0]))
	b := make([][]core.Update, len(streams[1]))
	for i := range streams[0] {
		a[i] = netStream(streams[0][i])
		b[i] = netStream(streams[1][i])
	}
	if step, same := streamsIdentical(a, b); !same {
		t.Fatalf("sharded stream diverged from single at step %d:\nsingle:  %v\nsharded: %v",
			step, a[step], b[step])
	}
}
