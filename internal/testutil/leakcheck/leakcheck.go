// Package leakcheck fails a test binary that exits with goroutines
// still running — the cheap, stdlib-only cousin of go.uber.org/goleak.
// A leaked goroutine is invisible to a passing test run: nothing hangs,
// nothing races, the process just carries dead weight until it exits.
// Under a TestMain hook the leak becomes a hard failure with the
// offending stacks attached.
//
// Usage, in a package whose tests start servers, shards, or clusters:
//
//	func TestMain(m *testing.M) { leakcheck.Main(m) }
//
// The check snapshots the full goroutine dump after m.Run, filters the
// runtime's own machinery and the testing harness, and retries with
// growing sleeps so goroutines that are mid-teardown (a conn reader
// whose Close just returned) get a grace window to drain. Only
// goroutines that survive the whole settle window are reported.
package leakcheck

import (
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"
)

// maxSettle bounds the total grace period granted to goroutines that
// are already tearing down when the check starts.
const maxSettle = 2 * time.Second

// Verify returns an error listing every non-benign goroutine still
// running, after giving in-flight teardowns up to maxSettle to finish.
// It is exported for tests that want a mid-run checkpoint; most callers
// want Main.
func Verify() error {
	var stacks []string
	deadline := time.Now().Add(maxSettle)
	for sleep := time.Millisecond; ; sleep *= 2 {
		stacks = leaked()
		if len(stacks) == 0 {
			return nil
		}
		if time.Now().After(deadline) {
			break
		}
		if sleep > 250*time.Millisecond {
			sleep = 250 * time.Millisecond
		}
		time.Sleep(sleep)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "leakcheck: %d goroutine(s) still running at exit:\n", len(stacks))
	for _, s := range stacks {
		b.WriteString("\n")
		b.WriteString(s)
		b.WriteString("\n")
	}
	return fmt.Errorf("%s", b.String())
}

// Run executes m.Run and then the leak check, returning the exit code:
// the test result when tests fail, 1 when the tests pass but goroutines
// leaked. Callers embedding extra TestMain logic (worker re-exec, flag
// parsing) use this form.
func Run(m *testing.M) int {
	code := m.Run()
	if err := Verify(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		if code == 0 {
			code = 1
		}
	}
	return code
}

// Main is the one-line TestMain body: run the tests, fail on leaks,
// exit.
func Main(m *testing.M) {
	os.Exit(Run(m))
}

// leaked snapshots every goroutine and drops the benign ones.
func leaked() []string {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, len(buf)*2)
	}
	var out []string
	for _, rec := range strings.Split(string(buf), "\n\n") {
		rec = strings.TrimSpace(rec)
		if rec == "" || benign(rec) {
			continue
		}
		out = append(out, rec)
	}
	return out
}

// benign reports whether a goroutine record belongs to the machinery
// that is legitimately alive at process exit: the calling goroutine,
// the testing harness, the runtime's own workers, and the signal
// receiver the net/http and os/signal packages install process-wide.
func benign(rec string) bool {
	lines := strings.Split(rec, "\n")
	if len(lines) < 2 {
		return true
	}
	for _, l := range lines {
		switch {
		case strings.Contains(l, "leakcheck.Verify"),
			strings.Contains(l, "leakcheck.leaked"),
			strings.Contains(l, "testing.Main("),
			strings.Contains(l, "testing.tRunner("),
			strings.Contains(l, "testing.(*M).Run("),
			strings.Contains(l, "os/signal.signal_recv"),
			strings.Contains(l, "os/signal.loop"):
			return true
		}
	}
	// The record's top frame is lines[1] ("created by" aside, the header
	// is lines[0]); a runtime-internal top frame (GC workers, finalizer,
	// timer goroutines) is the runtime's business.
	top := strings.TrimSpace(lines[1])
	return strings.HasPrefix(top, "runtime.")
}
