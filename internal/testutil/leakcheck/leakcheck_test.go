package leakcheck

import (
	"strings"
	"testing"
)

func TestVerifyCleanProcess(t *testing.T) {
	if err := Verify(); err != nil {
		t.Fatalf("expected clean process, got: %v", err)
	}
}

func TestVerifyCatchesParkedGoroutine(t *testing.T) {
	stop := make(chan struct{})
	go func() { <-stop }()
	defer close(stop)

	err := Verify()
	if err == nil {
		t.Fatal("expected a leak report for the parked goroutine")
	}
	if !strings.Contains(err.Error(), "TestVerifyCatchesParkedGoroutine") {
		t.Fatalf("leak report does not name the leaking site:\n%v", err)
	}
}
