package core

import "cqp/internal/geo"

// applyRangeUpdate applies a (re)registration of a range query with the
// given new region, performing the paper's incremental evaluation:
//
//   - negative updates for current members no longer inside the new
//     region (the members lying in A_old − A_new);
//   - positive updates from evaluating only A_new − A_old against the
//     grid;
//   - the overlap A_new ∩ A_old is not re-evaluated — its membership is
//     already reflected in the stored answer.
//
// (The parallel phase-2 path performs the same transitions split into
// gatherQuery/applyGatheredQuery; see join.go.)
func (e *Engine) applyRangeUpdate(qs *queryState, newRegion geo.Rect, out *[]Update) {
	oldRegion := qs.region
	wasRegistered := qs.registered

	// Negatives: members whose (current) location fell out of the region.
	// The member set is exactly the objects in A_old, so testing members
	// against A_new is the A_old − A_new evaluation. (Members are
	// snapshotted into engine scratch first: setMember mutates qs.answer
	// mid-walk otherwise.)
	members := qs.answer.AppendTo(e.hBuf[:0])
	e.hBuf = members
	for _, h := range members {
		os := e.objsByH[h]
		e.stats.CandidateChecks++
		if !newRegion.Contains(os.loc) {
			e.setMember(qs, os, false, out)
		}
	}

	// Positives: evaluate only the newly covered area.
	var diff []geo.Rect
	if wasRegistered {
		diff = newRegion.Difference(oldRegion, e.diffBuf)
		e.diffBuf = diff
	} else {
		diff = append(e.diffBuf[:0], newRegion)
		e.diffBuf = diff
	}
	e.curQS, e.curOut = qs, out
	for _, piece := range diff {
		e.stats.RegionEvalCells += uint64(e.g.CountCells(piece))
		e.g.VisitObjectsIn(piece, e.rangeVisitCB)
	}
	e.curQS, e.curOut = nil, nil

	// Re-register the region in the shared grid.
	if wasRegistered {
		e.g.MoveRegion(qkeyH(qs.h, Range), oldRegion, newRegion)
	} else {
		e.g.InsertRegion(qkeyH(qs.h, Range), newRegion)
		qs.registered = true
	}
	qs.region = newRegion
}
