// Package core implements the paper's primary contribution: a scalable,
// incremental processor for continuous spatio-temporal queries (the
// framework later realized as SINA).
//
// Objects and queries are stored together in one shared uniform grid
// (package grid); evaluating all outstanding continuous queries reduces to
// a spatial join between the set of changed objects and the set of changed
// queries. The engine's output is a stream of *incremental* updates:
// positive updates (Q, +A) add object A to the previously reported answer
// of query Q, negative updates (Q, −A) remove it. Clients reconstruct the
// full answer by replaying the stream; the engine guarantees that
// replaying its output against the previous answer always yields exactly
// the current answer.
//
// Supported query classes (each may be stationary or moving, matching the
// paper's generality claim):
//
//   - Range: report objects inside a rectangular region.
//   - KNN: report the k objects nearest a focal point; represented in the
//     grid as the smallest focal-centered circle enclosing the current k
//     answer objects, exactly as in the paper.
//   - PredictiveRange: report objects whose predicted trajectory
//     (velocity-vector representation) intersects a region during a future
//     time window.
//
// Objects are stationary (report once), moving (report sampled
// locations), or predictive (report location + velocity vector). The
// engine is intentionally not safe for concurrent use: the paper's server
// buffers updates and evaluates them in bulk; the network layer
// (internal/server) provides the serialization.
package core

import (
	"cmp"
	"fmt"
	"slices"

	"cqp/internal/geo"
)

// ObjectID identifies a moving, stationary, or predictive object.
type ObjectID uint64

// QueryID identifies a registered continuous query.
type QueryID uint64

// ObjectKind classifies an object by its movement representation.
type ObjectKind uint8

const (
	// Stationary objects never move (gas stations, hospitals, ...).
	Stationary ObjectKind = iota
	// Moving objects report sampled current locations.
	Moving
	// Predictive objects report a location plus a velocity vector from
	// which future locations are predicted.
	Predictive
)

// String implements fmt.Stringer.
func (k ObjectKind) String() string {
	switch k {
	case Stationary:
		return "stationary"
	case Moving:
		return "moving"
	case Predictive:
		return "predictive"
	default:
		return fmt.Sprintf("ObjectKind(%d)", uint8(k))
	}
}

// QueryKind classifies a continuous query.
type QueryKind uint8

const (
	// Range is a continuous rectangular range query.
	Range QueryKind = iota
	// KNN is a continuous k-nearest-neighbor query.
	KNN
	// PredictiveRange is a range query over a future time window,
	// evaluated against predictive objects' trajectories.
	PredictiveRange
)

// String implements fmt.Stringer.
func (k QueryKind) String() string {
	switch k {
	case Range:
		return "range"
	case KNN:
		return "knn"
	case PredictiveRange:
		return "predictive-range"
	default:
		return fmt.Sprintf("QueryKind(%d)", uint8(k))
	}
}

// Update is one element of the incremental answer stream: a positive
// update adds Object to Query's answer, a negative update removes it.
type Update struct {
	Query    QueryID
	Object   ObjectID
	Positive bool
}

// SortUpdates puts an update stream into the engines' canonical
// emission order: ascending by (Query, Object), stably. Stability
// matters when the same pair appears more than once in a step (an
// object leaving and re-entering an answer): the −/+ sequence keeps its
// evaluation order, so replaying the sorted stream still reproduces the
// current answer exactly.
//
// Both engines canonicalize their Step output with this before
// returning, which is what makes the update stream bit-reproducible
// across runs despite Go's randomized map iteration and goroutine
// scheduling in the parallel gather.
func SortUpdates(out []Update) {
	slices.SortStableFunc(out, func(a, b Update) int {
		if c := cmp.Compare(a.Query, b.Query); c != 0 {
			return c
		}
		return cmp.Compare(a.Object, b.Object)
	})
}

// String renders the update in the paper's (Q, ±A) notation.
func (u Update) String() string {
	sign := "-"
	if u.Positive {
		sign = "+"
	}
	return fmt.Sprintf("(Q%d, %sO%d)", u.Query, sign, u.Object)
}

// ObjectUpdate is a buffered report from an object: a fresh location
// sample (and, for predictive objects, a movement prediction), or a
// removal.
//
// Predictive objects choose between the two movement representations the
// paper supports: a velocity vector (Vel), or a full trajectory of timed
// waypoints (Waypoints) for route-planned objects. When Waypoints is
// non-empty it takes precedence over Vel.
type ObjectUpdate struct {
	ID   ObjectID
	Kind ObjectKind
	Loc  geo.Point
	Vel  geo.Vector // velocity representation (Kind == Predictive)
	// Waypoints is the trajectory representation: the object travels
	// linearly from Loc at time T through each waypoint at its time, then
	// holds at the last one. Times must be strictly increasing and after
	// T; invalid trajectories are rejected at Step time (the object keeps
	// its previous state).
	Waypoints []geo.TimedPoint
	T         float64 // timestamp of the report
	// Remove deregisters the object; remaining fields other than ID are
	// ignored.
	Remove bool
}

// QueryUpdate is a buffered report from a query: registration, a moved
// region/focal point, a changed predictive window, or removal.
type QueryUpdate struct {
	ID   QueryID
	Kind QueryKind

	// Region is the rectangular region of Range and PredictiveRange
	// queries. Ignored for KNN.
	Region geo.Rect

	// Focal and K parameterize KNN queries.
	Focal geo.Point
	K     int

	// T1, T2 bound the future time window of PredictiveRange queries
	// (absolute times).
	T1, T2 float64

	T float64 // timestamp of the report

	// Remove deregisters the query; remaining fields other than ID are
	// ignored.
	Remove bool
}

// Snapshot is the full answer of one query at a point in time, used by the
// recovery path and by tests.
type Snapshot struct {
	Query   QueryID
	Objects []ObjectID
}

// Stats aggregates engine activity counters since construction. All
// counters are monotonically increasing.
type Stats struct {
	Steps           uint64 // Step invocations
	ObjectReports   uint64 // object updates applied
	QueryReports    uint64 // query updates applied
	PositiveUpdates uint64 // (Q, +A) tuples emitted
	NegativeUpdates uint64 // (Q, −A) tuples emitted
	KNNRecomputes   uint64 // exact kNN re-searches performed
	CandidateChecks uint64 // object↔query predicate evaluations
	RegionEvalCells uint64 // cells visited by range diff evaluation
}
