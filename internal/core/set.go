package core

import "math/bits"

// answerSet is the engine's membership set: a packed slice with linear
// probing while the set is small — the overwhelmingly common case, a
// query's answer holds a handful of entries — that upgrades itself to a
// handle-indexed bitmap once it grows past answerSpill.
//
// The motivation is the join phase's profile: with map-backed answer
// sets, over half of a steady-state Step burned in map hashing and
// probing. The packed slice turns small-set operations into a few
// contiguous word compares; the bitmap turns large-set membership into
// a single bit test — the skewed road-network workload concentrates
// objects in hot cells, so the dense queries that spill are exactly the
// ones probed the most. Object handles are dense (the engine's
// free-listed handle table), so the bitmap stays proportional to the
// registered population, not the ID space.
//
// Iteration order is deterministic in both forms: insertion order while
// packed, ascending handle order once spilled. The zero value is an
// empty set. Not safe for concurrent mutation; concurrent reads are
// safe, which is what the parallel join's gather phase relies on.
type answerSet struct {
	small []int32
	bits  []uint64 // non-nil once spilled; small is then unused
	n     int32    // population while spilled
}

// answerSpill is the size at which an answerSet abandons linear probing
// for the bitmap. Chosen so the common sets (a few entries) stay packed
// while the skewed hot sets — the ones the object join probes most —
// get O(1) bit tests after a single cache line's worth of probing.
const answerSpill = 16

// answerGrow is the packed slice's first allocated capacity: large
// enough that typical sets never grow twice, small enough that ten
// thousand idle sets stay cheap.
const answerGrow = 8

// Len returns the number of elements.
func (s *answerSet) Len() int {
	if s.bits != nil {
		return int(s.n)
	}
	return len(s.small)
}

// Has reports whether handle h is in the set.
func (s *answerSet) Has(h int32) bool {
	if s.bits != nil {
		w := int(h >> 6)
		return w < len(s.bits) && s.bits[w]&(1<<uint(h&63)) != 0
	}
	for _, x := range s.small {
		if x == h {
			return true
		}
	}
	return false
}

// Add inserts h, reporting whether it was absent.
func (s *answerSet) Add(h int32) bool {
	if s.bits != nil {
		// Duplicate adds are the common case on the object-join path
		// (a moved object re-probes every region still covering it),
		// so test inline before taking the grow-and-set slow path.
		if w := int(h >> 6); w < len(s.bits) && s.bits[w]&(1<<uint(h&63)) != 0 {
			return false
		}
		return s.setBit(h)
	}
	for _, x := range s.small {
		if x == h {
			return false
		}
	}
	if len(s.small) >= answerSpill {
		s.spill()
		return s.setBit(h)
	}
	if len(s.small) == cap(s.small) {
		// Grow in two jumps (answerGrow, then spill-size) instead of
		// letting append double from 1: under churn, thousands of sets
		// creep toward their high-water marks one element at a time,
		// and the doubling tail keeps steady-state Steps allocating
		// for hundreds of ticks (TestStepSteadyStateAllocs pins this).
		newCap := answerGrow
		if cap(s.small) >= answerGrow {
			newCap = answerSpill
		}
		grown := make([]int32, len(s.small), newCap)
		copy(grown, s.small)
		s.small = grown
	}
	s.small = append(s.small, h)
	return true
}

// addNoCheck inserts h known to be absent, skipping the membership
// probe. Callers must guarantee absence; kNN adds qualify because they
// are pre-filtered against the answer (see setMemberNew). Range
// region-difference candidates do NOT: an object that moved into
// A_new − A_old in the same step may already be a member, so those
// adds go through setMember.
func (s *answerSet) addNoCheck(h int32) {
	if s.bits != nil {
		s.setBit(h)
		return
	}
	if len(s.small) >= answerSpill {
		s.spill()
		s.setBit(h)
		return
	}
	if len(s.small) == cap(s.small) {
		newCap := answerGrow
		if cap(s.small) >= answerGrow {
			newCap = answerSpill
		}
		grown := make([]int32, len(s.small), newCap)
		copy(grown, s.small)
		s.small = grown
	}
	s.small = append(s.small, h)
}

// setBit inserts h into the spilled bitmap, reporting whether it was
// absent. The bitmap grows to cover the highest handle seen; growth
// memory comes zeroed from the allocator and words are only ever
// written inside the current length, so reslicing into spare capacity
// never exposes stale bits.
func (s *answerSet) setBit(h int32) bool {
	w := int(h >> 6)
	if w >= len(s.bits) {
		if w < cap(s.bits) {
			s.bits = s.bits[:w+1]
		} else {
			grown := make([]uint64, w+1, max(2*cap(s.bits), w+1))
			copy(grown, s.bits)
			s.bits = grown
		}
	}
	mask := uint64(1) << uint(h&63)
	if s.bits[w]&mask != 0 {
		return false
	}
	s.bits[w] |= mask
	s.n++
	return true
}

// spill moves the packed elements into a freshly allocated bitmap. A
// spilled set never shrinks back: sets that grew large once tend to
// grow large again, and the bitmap stays correct either way.
func (s *answerSet) spill() {
	maxH := int32(0)
	for _, h := range s.small {
		if h > maxH {
			maxH = h
		}
	}
	s.bits = make([]uint64, int(maxH>>6)+1)
	for _, h := range s.small {
		s.bits[h>>6] |= 1 << uint(h&63)
	}
	s.n = int32(len(s.small))
	s.small = s.small[:0]
}

// Remove deletes h, reporting whether it was present.
func (s *answerSet) Remove(h int32) bool {
	if s.bits != nil {
		w := int(h >> 6)
		mask := uint64(1) << uint(h&63)
		if w >= len(s.bits) || s.bits[w]&mask == 0 {
			return false
		}
		s.bits[w] &^= mask
		s.n--
		return true
	}
	for i, x := range s.small {
		if x == h {
			last := len(s.small) - 1
			s.small[i] = s.small[last]
			s.small = s.small[:last]
			return true
		}
	}
	return false
}

// Clear empties the set, retaining the packed slice's capacity (and the
// bitmap, when spilled) for reuse.
func (s *answerSet) Clear() {
	s.small = s.small[:0]
	if s.bits != nil {
		clear(s.bits)
		s.n = 0
	}
}

// AppendTo appends every element to dst and returns the extended slice.
// Packed sets append in insertion order; spilled sets append in
// ascending handle order — deterministic either way. Iterating a
// snapshot taken with AppendTo is the idiom for mutating the set while
// walking its members (drop scans retract via setMember mid-walk).
func (s *answerSet) AppendTo(dst []int32) []int32 {
	if s.bits != nil {
		for wi, w := range s.bits {
			base := int32(wi << 6)
			for w != 0 {
				dst = append(dst, base+int32(bits.TrailingZeros64(w)))
				w &= w - 1
			}
		}
		return dst
	}
	return append(dst, s.small...)
}
