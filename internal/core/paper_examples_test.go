package core

import (
	"testing"

	"cqp/internal/geo"
)

// The tests in this file reproduce the worked examples of the paper
// (Figures 1–4) with concrete coordinates. The figures specify scenarios
// qualitatively; the coordinates below realize them so that the expected
// positive/negative update streams can be asserted tuple-by-tuple.

// TestPaperExampleI reproduces Example I (Figure 1): spatio-temporal range
// queries over nine objects p1..p9 (some stationary, some moving) and five
// continuous range queries Q1..Q5, three of which move between the two
// snapshots. Only the objects and queries that changed produce updates.
func TestPaperExampleI(t *testing.T) {
	e := MustNewEngine(Options{Bounds: geo.R(0, 0, 10, 10), GridN: 8})

	// Snapshot at time T0 (Figure 1a).
	objs := map[ObjectID]struct {
		kind ObjectKind
		loc  geo.Point
	}{
		1: {Moving, geo.Pt(1.0, 8.0)},     // p1: inside Q1
		2: {Moving, geo.Pt(4.0, 4.0)},     // p2: inside Q3
		3: {Moving, geo.Pt(8.0, 8.0)},     // p3: inside Q5
		4: {Moving, geo.Pt(6.0, 1.0)},     // p4: free
		5: {Stationary, geo.Pt(1.5, 7.5)}, // p5: inside Q1
		6: {Stationary, geo.Pt(4.5, 4.5)}, // p6: inside Q3
		7: {Stationary, geo.Pt(3.5, 3.5)}, // p7: inside Q3
		8: {Stationary, geo.Pt(7.0, 2.0)}, // p8: free at T0
		9: {Stationary, geo.Pt(9.5, 0.5)}, // p9: never covered
	}
	for id, o := range objs {
		e.ReportObject(ObjectUpdate{ID: id, Kind: o.kind, Loc: o.loc, T: 0})
	}
	queries := map[QueryID]geo.Rect{
		1: geo.R(0.5, 7.0, 2.0, 8.5), // Q1 (moving): covers p1, p5
		2: geo.R(0.5, 0.5, 2.0, 2.0), // Q2 (stationary): empty
		3: geo.R(3.0, 3.0, 5.0, 5.0), // Q3 (moving): covers p2, p6, p7
		4: geo.R(8.5, 4.5, 9.5, 5.5), // Q4 (stationary): empty
		5: geo.R(7.5, 7.5, 8.5, 8.5), // Q5 (moving): covers p3
	}
	for id, r := range queries {
		e.ReportQuery(QueryUpdate{ID: id, Kind: Range, Region: r, T: 0})
	}
	got := e.Step(0)
	wantT0 := []Update{
		{1, 1, true}, {1, 5, true},
		{3, 2, true}, {3, 6, true}, {3, 7, true},
		{5, 3, true},
	}
	if !updatesEqual(got, wantT0) {
		t.Fatalf("T0: got %v want %v", sortUpdates(got), sortUpdates(wantT0))
	}

	// Snapshot at time T1 (Figure 1b): objects p1..p4 and queries Q1, Q3,
	// Q5 change. The black (stationary) objects stay put.
	e.ReportObject(ObjectUpdate{ID: 1, Kind: Moving, Loc: geo.Pt(2.5, 6.0), T: 1})          // p1 leaves Q1
	e.ReportObject(ObjectUpdate{ID: 2, Kind: Moving, Loc: geo.Pt(2.5, 2.5), T: 1})          // p2 leaves Q3
	e.ReportObject(ObjectUpdate{ID: 3, Kind: Moving, Loc: geo.Pt(8.0, 8.2), T: 1})          // p3 stays in moved Q5
	e.ReportObject(ObjectUpdate{ID: 4, Kind: Moving, Loc: geo.Pt(6.5, 1.8), T: 1})          // p4 still free
	e.ReportQuery(QueryUpdate{ID: 1, Kind: Range, Region: geo.R(1.0, 6.5, 2.5, 8.0), T: 1}) // Q1 slides; keeps p5, loses p1
	e.ReportQuery(QueryUpdate{ID: 3, Kind: Range, Region: geo.R(4.0, 3.0, 6.0, 5.0), T: 1}) // Q3 slides; keeps p6, loses p7 (and p2 left)
	e.ReportQuery(QueryUpdate{ID: 5, Kind: Range, Region: geo.R(7.5, 7.7, 8.5, 8.7), T: 1}) // Q5 slides with p3; gains nothing
	got = e.Step(1)
	wantT1 := []Update{
		{1, 1, false}, // (Q1, -p1)
		{3, 2, false}, // (Q3, -p2)
		{3, 7, false}, // (Q3, -p7)
	}
	if !updatesEqual(got, wantT1) {
		t.Fatalf("T1: got %v want %v", sortUpdates(got), sortUpdates(wantT1))
	}
	if err := e.CheckConsistency(true); err != nil {
		t.Fatal(err)
	}

	// A second movement where a query gains an object it approaches.
	e.ReportQuery(QueryUpdate{ID: 4, Kind: Range, Region: geo.R(6.5, 1.5, 7.5, 2.5), T: 2}) // Q4 jumps onto p8 and p4
	got = e.Step(2)
	wantT2 := []Update{
		{4, 4, true}, {4, 8, true},
	}
	if !updatesEqual(got, wantT2) {
		t.Fatalf("T2: got %v want %v", sortUpdates(got), sortUpdates(wantT2))
	}
}

// TestPaperExampleII reproduces Example II (Figure 2): two continuous kNN
// queries with k = 3. Q1's third neighbor is displaced by an intruding
// object; Q2's member p7 walks away and is replaced by p8. Exactly two
// update tuples are reported per query.
func TestPaperExampleII(t *testing.T) {
	e := MustNewEngine(Options{Bounds: geo.R(0, 0, 10, 10), GridN: 8})

	// Around focal F1 = (2,2): p2, p3, p4 near; p1 farther out at T0.
	e.ReportObject(ObjectUpdate{ID: 1, Kind: Moving, Loc: geo.Pt(3.5, 2.0), T: 0}) // p1: dist 1.5
	e.ReportObject(ObjectUpdate{ID: 2, Kind: Moving, Loc: geo.Pt(2.0, 3.2), T: 0}) // p2: dist 1.2
	e.ReportObject(ObjectUpdate{ID: 3, Kind: Moving, Loc: geo.Pt(1.5, 2.0), T: 0}) // p3: dist 0.5
	e.ReportObject(ObjectUpdate{ID: 4, Kind: Moving, Loc: geo.Pt(2.0, 1.2), T: 0}) // p4: dist 0.8
	// Around focal F2 = (7,7): p5, p6, p7 near; p8 farther at T0.
	e.ReportObject(ObjectUpdate{ID: 5, Kind: Moving, Loc: geo.Pt(7.0, 6.5), T: 0}) // p5: dist 0.5
	e.ReportObject(ObjectUpdate{ID: 6, Kind: Moving, Loc: geo.Pt(7.7, 7.0), T: 0}) // p6: dist 0.7
	e.ReportObject(ObjectUpdate{ID: 7, Kind: Moving, Loc: geo.Pt(7.0, 8.0), T: 0}) // p7: dist 1.0
	e.ReportObject(ObjectUpdate{ID: 8, Kind: Moving, Loc: geo.Pt(8.2, 7.0), T: 0}) // p8: dist 1.2

	e.ReportQuery(QueryUpdate{ID: 1, Kind: KNN, Focal: geo.Pt(2, 2), K: 3, T: 0})
	e.ReportQuery(QueryUpdate{ID: 2, Kind: KNN, Focal: geo.Pt(7, 7), K: 3, T: 0})

	got := e.Step(0)
	wantT0 := []Update{
		{1, 2, true}, {1, 3, true}, {1, 4, true}, // Q1 = {p2,p3,p4}
		{2, 5, true}, {2, 6, true}, {2, 7, true}, // Q2 = {p5,p6,p7}
	}
	if !updatesEqual(got, wantT0) {
		t.Fatalf("T0: got %v want %v", sortUpdates(got), sortUpdates(wantT0))
	}
	if r, _ := e.KNNRadius(1); r < 1.2-1e-9 || r > 1.2+1e-9 {
		t.Fatalf("Q1 radius = %v, want 1.2", r)
	}

	// T1: p1 intrudes into Q1's circle, invalidating the furthest neighbor
	// p2; p7 walks away from F2 and p8 becomes nearer.
	e.ReportObject(ObjectUpdate{ID: 1, Kind: Moving, Loc: geo.Pt(2.6, 2.0), T: 1}) // now dist 0.6 < 1.2
	e.ReportObject(ObjectUpdate{ID: 7, Kind: Moving, Loc: geo.Pt(7.0, 9.5), T: 1}) // now dist 2.5 > 1.2
	got = e.Step(1)
	wantT1 := []Update{
		{1, 2, false}, {1, 1, true}, // (Q1, -p2), (Q1, +p1)
		{2, 7, false}, {2, 8, true}, // (Q2, -p7), (Q2, +p8)
	}
	if !updatesEqual(got, wantT1) {
		t.Fatalf("T1: got %v want %v", sortUpdates(got), sortUpdates(wantT1))
	}
	if err := e.CheckConsistency(true); err != nil {
		t.Fatal(err)
	}
}

// TestPaperExampleIII reproduces Example III (Figure 3): a predictive
// range query over five predictive objects that report location plus
// velocity at T0 = 0. The query asks for objects intersecting its region
// during the future window [8, 10]. At T1 three objects change velocity;
// only the changed information produces updates: (+p2) and (−p3), and
// nothing for p4 whose answer relationship is unchanged.
func TestPaperExampleIII(t *testing.T) {
	e := MustNewEngine(Options{
		Bounds:            geo.R(0, 0, 10, 10),
		GridN:             8,
		PredictiveHorizon: 20,
	})
	region := geo.R(6, 6, 8, 8)

	// T0 = 0. Future window [8,10].
	report := func(id ObjectID, loc geo.Point, vel geo.Vector, now float64) {
		e.ReportObject(ObjectUpdate{ID: id, Kind: Predictive, Loc: loc, Vel: vel, T: now})
	}
	report(1, geo.Pt(2, 2), geo.Vec(0.55, 0.55), 0) // at t=8: (6.4,6.4) → inside
	report(2, geo.Pt(1, 7), geo.Vec(0.2, 0), 0)     // at t∈[8,10]: x∈[2.6,3] → outside
	report(3, geo.Pt(7, 1), geo.Vec(0, 0.75), 0)    // at t=8: (7,7) → inside
	report(4, geo.Pt(9, 9), geo.Vec(0.1, 0.1), 0)   // moves away → outside
	report(5, geo.Pt(5, 5), geo.Vec(-0.3, -0.3), 0) // moves away → outside

	e.ReportQuery(QueryUpdate{ID: 1, Kind: PredictiveRange, Region: region, T1: 8, T2: 10, T: 0})
	got := e.Step(0)
	wantT0 := []Update{{1, 1, true}, {1, 3, true}} // answer = (p1, p3)
	if !updatesEqual(got, wantT0) {
		t.Fatalf("T0: got %v want %v", sortUpdates(got), sortUpdates(wantT0))
	}

	// T1 = 4: p1, p2, p3 report changed velocities; p4, p5 are silent.
	report(2, geo.Pt(1.8, 7), geo.Vec(1.3, -0.05), 4)   // at t=8: (7,6.8) → inside now
	report(3, geo.Pt(7, 4), geo.Vec(0, -0.5), 4)        // turns south → outside now
	report(1, geo.Pt(4.2, 4.2), geo.Vec(0.55, 0.55), 4) // same heading → still inside
	got = e.Step(4)
	wantT1 := []Update{
		{1, 2, true},  // (Q, +p2)
		{1, 3, false}, // (Q, -p3)
		// No tuple for p1: its information still yields the reported result.
	}
	if !updatesEqual(got, wantT1) {
		t.Fatalf("T1: got %v want %v", sortUpdates(got), sortUpdates(wantT1))
	}
	if err := e.CheckConsistency(true); err != nil {
		t.Fatal(err)
	}
}

// TestPaperFig4OutOfSync reproduces the Figure 4 scenario: a client holds
// (p1, p2) at T1 and disconnects. While it is away the server's answer
// evolves to (p1, p3, p4). A naive incremental replay after reconnection
// would leave the client at the wrong (p1, p2, p3, p4); the committed-
// answer recovery protocol sends exactly (−p2, +p3, +p4).
func TestPaperFig4OutOfSync(t *testing.T) {
	e := MustNewEngine(Options{Bounds: geo.R(0, 0, 10, 10), GridN: 8})
	region := geo.R(4, 4, 6, 6)

	e.ReportObject(ObjectUpdate{ID: 1, Kind: Moving, Loc: geo.Pt(5, 5), T: 0})
	e.ReportObject(ObjectUpdate{ID: 2, Kind: Moving, Loc: geo.Pt(4.5, 4.5), T: 0})
	e.ReportObject(ObjectUpdate{ID: 3, Kind: Moving, Loc: geo.Pt(1, 1), T: 0})
	e.ReportObject(ObjectUpdate{ID: 4, Kind: Moving, Loc: geo.Pt(9, 9), T: 0})
	e.ReportQuery(QueryUpdate{ID: 1, Kind: Range, Region: region, T: 0})
	e.Step(1)

	// T1: the answer (p1, p2) is delivered and committed.
	if ok := e.Commit(1); !ok {
		t.Fatal("Commit failed")
	}
	client := map[ObjectID]struct{}{1: {}, 2: {}}

	// T2 (client disconnected): p2 leaves. The emitted negative update is
	// lost on the wire.
	e.ReportObject(ObjectUpdate{ID: 2, Kind: Moving, Loc: geo.Pt(0.5, 9.5), T: 2})
	lost1 := e.Step(2)
	if !updatesEqual(lost1, []Update{{1, 2, false}}) {
		t.Fatalf("T2 updates: %v", lost1)
	}

	// T3 (still disconnected): p3 and p4 enter; also lost.
	e.ReportObject(ObjectUpdate{ID: 3, Kind: Moving, Loc: geo.Pt(4.2, 5.0), T: 3})
	e.ReportObject(ObjectUpdate{ID: 4, Kind: Moving, Loc: geo.Pt(5.8, 5.2), T: 3})
	lost2 := e.Step(3)
	if !updatesEqual(lost2, []Update{{1, 3, true}, {1, 4, true}}) {
		t.Fatalf("T3 updates: %v", lost2)
	}

	// Naive replay of only the last batch would corrupt the client state
	// (this is the wrong answer the paper warns about).
	naive := map[ObjectID]struct{}{}
	for k := range client {
		naive[k] = struct{}{}
	}
	ApplyUpdates(naive, lost2, 1)
	if _, wrong := naive[2]; !wrong {
		t.Fatal("test setup: naive replay should retain the stale p2")
	}

	// T4: the client wakes up. Recovery sends the committed→current diff.
	rec, ok := e.Recover(1)
	if !ok {
		t.Fatal("Recover failed")
	}
	want := []Update{{1, 2, false}, {1, 3, true}, {1, 4, true}}
	if !updatesEqual(rec, want) {
		t.Fatalf("recovery: got %v want %v", sortUpdates(rec), sortUpdates(want))
	}
	ApplyUpdates(client, rec, 1)
	answer, _ := e.Answer(1)
	if len(client) != len(answer) {
		t.Fatalf("client has %d, server %d", len(client), len(answer))
	}
	for _, id := range answer {
		if _, ok := client[id]; !ok {
			t.Fatalf("client missing %d", id)
		}
	}

	// After recovery the committed answer equals the current one: an
	// immediate second recovery is empty.
	rec2, _ := e.Recover(1)
	if len(rec2) != 0 {
		t.Fatalf("second recovery should be empty, got %v", rec2)
	}

	// Unknown queries are reported as such.
	if _, ok := e.Recover(42); ok {
		t.Error("Recover(unknown) should report !ok")
	}
	if e.Commit(42) {
		t.Error("Commit(unknown) should report false")
	}
	if _, ok := e.CommittedAnswer(42); ok {
		t.Error("CommittedAnswer(unknown) should report !ok")
	}
	ca, _ := e.CommittedAnswer(1)
	if len(ca) != 3 {
		t.Fatalf("committed answer = %v", ca)
	}
}
