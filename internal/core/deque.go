package core

import "sync/atomic"

// clDeque is a Chase-Lev-style work-stealing deque specialized for the
// join phase's batch schedule. The classic structure keeps a growable
// ring buffer; here the partition stage preloads each worker with a
// contiguous run of batch indices and nothing is ever pushed mid-phase,
// so the "buffer" is the identity mapping over [top, bottom) and only
// the two ends remain: the owner pops batches from the bottom (LIFO,
// walking its run back to front), thieves CAS the top forward (FIFO,
// taking the batches the owner would reach last — which preserves the
// cell-major locality of what the owner keeps).
//
// Go's sync/atomic operations are sequentially consistent, which covers
// the fence the original algorithm needs between the owner's bottom
// store and its top load. With no pushes there is no buffer reuse and
// therefore no ABA: a CAS on top uniquely claims one batch index.
type clDeque struct {
	top    atomic.Int64
	bottom atomic.Int64
	// Pad to a cache line so adjacent deques in the engine's pool don't
	// false-share their hot words.
	_ [48]byte
}

// reset preloads the deque with the batch indices [lo, hi).
func (d *clDeque) reset(lo, hi int32) {
	d.top.Store(int64(lo))
	d.bottom.Store(int64(hi))
}

// popBottom takes one batch from the owner's end. Only the owning
// worker may call it.
func (d *clDeque) popBottom() (int32, bool) {
	b := d.bottom.Add(-1) // claim the slot, then re-check against thieves
	t := d.top.Load()
	if t > b {
		// Empty: undo the claim so thieves see a canonical empty deque.
		d.bottom.Store(t)
		return 0, false
	}
	if t == b {
		// Last batch: race any thief for it via the top CAS.
		won := d.top.CompareAndSwap(t, t+1)
		d.bottom.Store(t + 1)
		return int32(b), won
	}
	return int32(b), true
}

// steal takes one batch from the top end on behalf of another worker.
// It returns false only after observing the deque empty; CAS losses
// against the owner or other thieves retry internally, so a false
// result is a proof this deque has no more work.
func (d *clDeque) steal() (int32, bool) {
	for {
		t := d.top.Load()
		if t >= d.bottom.Load() {
			return 0, false
		}
		if d.top.CompareAndSwap(t, t+1) {
			return int32(t), true
		}
	}
}
