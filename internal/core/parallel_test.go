package core

import (
	"math/rand"
	"testing"

	"cqp/internal/geo"
)

// TestParallelStepEquivalence drives a serial and a parallel engine with
// identical report streams and asserts identical answers after every
// step. Run under -race this also exercises the gather phase's read-only
// guarantee.
func TestParallelStepEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	serial := MustNewEngine(Options{Bounds: geo.R(0, 0, 1, 1), GridN: 16})
	parallel := MustNewEngine(Options{Bounds: geo.R(0, 0, 1, 1), GridN: 16, Parallelism: 4})

	const (
		objects = 300
		queries = 40
	)
	for j := QueryID(1); j <= queries; j++ {
		u := QueryUpdate{ID: j, T: 0}
		switch j % 3 {
		case 0:
			u.Kind = Range
			u.Region = geo.RectAt(geo.Pt(rng.Float64(), rng.Float64()), 0.15)
		case 1:
			u.Kind = KNN
			u.Focal = geo.Pt(rng.Float64(), rng.Float64())
			u.K = 3
		case 2:
			u.Kind = PredictiveRange
			u.Region = geo.RectAt(geo.Pt(rng.Float64(), rng.Float64()), 0.2)
			u.T1, u.T2 = 10, 40
		}
		serial.ReportQuery(u)
		parallel.ReportQuery(u)
	}

	for step := 0; step < 40; step++ {
		now := float64(step)
		// A large batch so the parallel path actually engages.
		for n := 0; n < 120; n++ {
			u := ObjectUpdate{
				ID:   ObjectID(1 + rng.Intn(objects)),
				Kind: ObjectKind(rng.Intn(3)),
				Loc:  geo.Pt(rng.Float64(), rng.Float64()),
				Vel:  geo.Vec(rng.Float64()*0.02-0.01, rng.Float64()*0.02-0.01),
				T:    now,
			}
			serial.ReportObject(u)
			parallel.ReportObject(u)
		}
		su := serial.Step(now)
		pu := parallel.Step(now)

		// Same update multiset (order may legitimately differ).
		if !updatesEqual(su, pu) {
			t.Fatalf("step %d: update sets differ:\nserial   %v\nparallel %v",
				step, sortUpdates(su), sortUpdates(pu))
		}
		for j := QueryID(1); j <= queries; j++ {
			sa, _ := serial.Answer(j)
			pa, _ := parallel.Answer(j)
			if len(sa) != len(pa) {
				t.Fatalf("step %d query %d: serial %v parallel %v", step, j, sa, pa)
			}
			for i := range sa {
				if sa[i] != pa[i] {
					t.Fatalf("step %d query %d: serial %v parallel %v", step, j, sa, pa)
				}
			}
		}
		if err := parallel.CheckConsistency(true); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
	}
}

// TestParallelJoinBitIdentical is the determinism contract of the
// work-stealing join, stated at full strength: for several seeds and
// every worker count, the update stream is bit-identical — same
// updates, same order, step by step — to the serial engine's. The
// workload mixes all three query kinds, object removals, duplicate
// reports, and query kind changes, so every gather/apply path runs.
// Under -race (see CI's -cpu 1,4 run) this also hammers the steal
// protocol.
func TestParallelJoinBitIdentical(t *testing.T) {
	for _, seed := range []int64{3, 17, 42, 88, 131} {
		serial := driveRandom(MustNewEngine(Options{Bounds: geo.R(0, 0, 1, 1), GridN: 12}), seed, 30)
		for _, workers := range []int{1, 2, 4, 8} {
			opt := Options{Bounds: geo.R(0, 0, 1, 1), GridN: 12, Parallelism: workers}
			got := driveRandom(MustNewEngine(opt), seed, 30)
			if !streamsIdentical(serial, got) {
				t.Errorf("seed %d workers %d: stream diverged from serial", seed, workers)
			}
		}
	}
}

func TestParallelismValidation(t *testing.T) {
	if _, err := NewEngine(Options{Bounds: geo.R(0, 0, 1, 1), Parallelism: -1}); err == nil {
		t.Error("negative parallelism should fail")
	}
	if _, err := NewEngine(Options{Bounds: geo.R(0, 0, 1, 1), Parallelism: 8}); err != nil {
		t.Errorf("valid parallelism rejected: %v", err)
	}
}
