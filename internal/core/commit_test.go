package core

import (
	"testing"

	"cqp/internal/geo"
)

// TestRecoveryAcrossQueryKinds verifies Commit/Recover for kNN and
// predictive queries, not just ranges.
func TestRecoveryAcrossQueryKinds(t *testing.T) {
	e := MustNewEngine(Options{Bounds: geo.R(0, 0, 10, 10), GridN: 8, PredictiveHorizon: 100})
	e.ReportObject(ObjectUpdate{ID: 1, Kind: Moving, Loc: geo.Pt(1, 1)})
	e.ReportObject(ObjectUpdate{ID: 2, Kind: Moving, Loc: geo.Pt(2, 2)})
	e.ReportObject(ObjectUpdate{ID: 3, Kind: Predictive, Loc: geo.Pt(0, 5), Vel: geo.Vec(0.5, 0), T: 0})
	e.ReportQuery(QueryUpdate{ID: 1, Kind: KNN, Focal: geo.Pt(0, 0), K: 1})
	e.ReportQuery(QueryUpdate{ID: 2, Kind: PredictiveRange, Region: geo.R(4, 4, 6, 6), T1: 8, T2: 12})
	e.Step(0)
	e.Commit(1)
	e.Commit(2)

	// Changes while "disconnected": the kNN answer flips to object 2, the
	// predictive answer empties (object 3 turns away).
	e.ReportObject(ObjectUpdate{ID: 1, Kind: Moving, Loc: geo.Pt(9, 9), T: 1})
	e.ReportObject(ObjectUpdate{ID: 3, Kind: Predictive, Loc: geo.Pt(2, 5), Vel: geo.Vec(0, 1), T: 1})
	e.Step(1)

	rec, ok := e.Recover(1)
	if !ok {
		t.Fatal("Recover(knn) failed")
	}
	want := []Update{{1, 1, false}, {1, 2, true}}
	if !updatesEqual(rec, want) {
		t.Fatalf("knn recovery: got %v want %v", sortUpdates(rec), sortUpdates(want))
	}
	rec, _ = e.Recover(2)
	if !updatesEqual(rec, []Update{{2, 3, false}}) {
		t.Fatalf("predictive recovery: %v", rec)
	}

	// Checksums agree with the recovered state.
	ca, _ := e.CommittedChecksum(1)
	aa, _ := e.AnswerChecksum(1)
	if ca != aa {
		t.Fatal("post-recovery checksums diverge")
	}
}

// TestChecksumProperties pins the checksum's order independence and
// sensitivity.
func TestChecksumProperties(t *testing.T) {
	a := ChecksumIDs([]ObjectID{1, 2, 3})
	b := ChecksumIDs([]ObjectID{3, 1, 2})
	if a != b {
		t.Error("checksum is order dependent")
	}
	if a == ChecksumIDs([]ObjectID{1, 2}) {
		t.Error("checksum insensitive to membership")
	}
	if ChecksumIDs(nil) != 0 {
		t.Error("empty checksum should be 0")
	}
	if _, ok := MustNewEngine(Options{Bounds: geo.R(0, 0, 1, 1)}).AnswerChecksum(9); ok {
		t.Error("checksum of unknown query should be !ok")
	}
}
