package core

import (
	"fmt"
	"slices"

	"cqp/internal/geo"
	"cqp/internal/grid"
	"cqp/internal/obs"
)

// Options configures an Engine.
type Options struct {
	// Bounds is the monitored space. Required (the zero Rect is rejected).
	Bounds geo.Rect

	// Region, when non-zero, restricts the engine's spatial index to a
	// sub-rectangle of Bounds: the grid spans Region instead of the whole
	// monitored space. Geometry outside Region is not rejected — it is
	// clamped into the region's edge cells, exactly as out-of-Bounds
	// geometry is clamped by a full-space engine — so answers depend only
	// on the raw reported geometry, never on the index bounds. This is
	// what lets internal/shard build one engine per tile over just that
	// tile's rectangle (plus a halo margin) while keeping the merged
	// stream identical to a single full-space engine's: an engine's answer
	// over any object population is invariant under the choice of Region.
	// Defaults to Bounds; must be a non-empty sub-rectangle of Bounds.
	Region geo.Rect

	// GridN is the per-axis cell count of the shared grid. Defaults to 64.
	GridN int

	// MaxSpeed, when positive, bounds the speed of predictive motion: a
	// Predictive object report whose velocity magnitude — or any waypoint
	// leg of its trajectory — exceeds MaxSpeed is rejected wholesale,
	// keeping the prior state, exactly like a malformed trajectory. The
	// bound is what allows a sharded router to route a predictive query
	// only to the tiles its region could be reached from within the
	// horizon (region expanded by MaxSpeed × PredictiveHorizon) instead
	// of replicating it everywhere. 0 (the default) means unlimited.
	MaxSpeed float64

	// PredictiveHorizon is how far (in time units) ahead of its report a
	// predictive object's trajectory is registered in the grid. Predictive
	// queries whose window ends more than a horizon after the reporting
	// time of an object may miss that object, so configure the horizon to
	// cover the longest window in use. Defaults to 100.
	PredictiveHorizon float64

	// Parallelism is the worker count of the parallel query-update join:
	// when a step carries enough dirty work, its query re-registrations,
	// moved-object joins, and dirty-kNN re-evaluations are bucketed into
	// per-cell batches and drained by this many workers with
	// work-stealing (see join.go). 0 or 1 keeps evaluation
	// single-threaded (the default). The emitted update stream is
	// bit-identical at any worker count: gathers are read-only, deltas
	// are applied serially in a deterministic order, and the appended
	// region is canonically sorted either way.
	Parallelism int

	// Metrics, when non-nil, registers the engine's observability
	// instruments (step counters, update counters, latency histograms,
	// scratch high-water marks) in the given registry. Instruments are
	// resolved once here at construction — the evaluation path performs
	// only atomic updates and allocates nothing for them. Metrics never
	// influence evaluation: the update stream is bit-identical with
	// metrics on or off.
	Metrics *obs.Registry

	// Clock drives the step-latency histogram. The engine itself never
	// reads the wall clock (the determinism analyzer forbids it): the
	// server layer injects obs.WallClock, tests inject fakes, and a nil
	// Clock disables latency timing while every other metric still
	// functions.
	Clock obs.Clock

	// Replica marks the engine as an internal replica behind a router —
	// a shard tile or a cluster worker engine. The router is the single
	// source of truth for the client commit/recover protocol, so a
	// replica skips the per-report committed-answer snapshot that a
	// moving query's auto-commit would otherwise rebuild on every tick
	// (the snapshot would never be consulted). Explicit Commit and
	// Recover calls still work; only the implicit auto-commit is elided.
	// The update stream is bit-identical with or without the flag.
	Replica bool
}

func (o *Options) withDefaults() (Options, error) {
	out := *o
	if out.Bounds.Empty() {
		return out, fmt.Errorf("core: Options.Bounds must be a non-empty rectangle, got %v", out.Bounds)
	}
	if out.Region == (geo.Rect{}) {
		out.Region = out.Bounds
	}
	if out.Region.Empty() {
		return out, fmt.Errorf("core: Options.Region must be a non-empty rectangle, got %v", out.Region)
	}
	if !out.Bounds.ContainsRect(out.Region) {
		return out, fmt.Errorf("core: Options.Region %v must lie inside Bounds %v", out.Region, out.Bounds)
	}
	if out.MaxSpeed < 0 {
		return out, fmt.Errorf("core: Options.MaxSpeed must be non-negative, got %v", out.MaxSpeed)
	}
	if out.GridN == 0 {
		out.GridN = 64
	}
	if out.GridN < 1 {
		return out, fmt.Errorf("core: Options.GridN must be positive, got %d", out.GridN)
	}
	if out.PredictiveHorizon == 0 {
		out.PredictiveHorizon = 100
	}
	if out.PredictiveHorizon < 0 {
		return out, fmt.Errorf("core: Options.PredictiveHorizon must be positive, got %v", out.PredictiveHorizon)
	}
	if out.Parallelism < 0 {
		return out, fmt.Errorf("core: Options.Parallelism must be non-negative, got %d", out.Parallelism)
	}
	return out, nil
}

// Normalized returns the options with every default applied, validated
// exactly as NewEngine validates them. Layers that derive engine
// parameters — the shard router computing predictive routing bounds
// from PredictiveHorizon, the cluster coordinator building worker
// assignments — normalize once so their view never drifts from the
// engines'.
func (o Options) Normalized() (Options, error) { return o.withDefaults() }

// ExceedsMaxSpeed reports whether an object update violates a predictive
// speed cap: a Predictive report whose velocity magnitude, or any
// waypoint leg, is faster than maxSpeed. A non-positive maxSpeed never
// rejects. Exported because the shard router must mirror the engines'
// acceptance decision exactly — a report rejected by a tile engine must
// not move the router's ownership table either.
func ExceedsMaxSpeed(u ObjectUpdate, maxSpeed float64) bool {
	if maxSpeed <= 0 || u.Kind != Predictive || u.Remove {
		return false
	}
	if len(u.Waypoints) > 0 {
		prev := geo.TimedPoint{P: u.Loc, T: u.T}
		for _, wp := range u.Waypoints {
			if dt := wp.T - prev.T; dt > 0 && wp.P.Dist(prev.P) > maxSpeed*dt {
				return true
			}
			prev = wp
		}
		return false
	}
	return u.Vel.Len() > maxSpeed
}

// objectState is the engine's record of one object: the paper's object
// entry (OID, loc, t, QList).
type objectState struct {
	id ObjectID
	// h is the object's dense handle: its slot in Engine.objsByH and the
	// payload of its grid keys, so every hot-path lookup from a grid
	// visit is a direct array index instead of a map probe.
	h         int32
	kind      ObjectKind
	loc       geo.Point
	vel       geo.Vector
	waypoints []geo.TimedPoint // trajectory representation, when reported
	t         float64

	// swept is the grid-registered trajectory bounding box of a predictive
	// object; the zero Rect when not registered.
	swept      geo.Rect
	sweptValid bool

	// queries is the QList: every query whose answer currently contains
	// this object. A packed slice (membership sets are small — see
	// answerSet) maintained exclusively by setMember, which keeps it an
	// exact mirror of the answer sets.
	queries []*queryState
}

// queryState is the engine's record of one query: the paper's query entry
// plus the incremental-evaluation and recovery bookkeeping.
type queryState struct {
	id QueryID
	// h is the query's dense handle (slot in Engine.qrysByH, payload of
	// its grid keys); see objectState.h.
	h    int32
	kind QueryKind
	t    float64

	region geo.Rect  // current grid-registered region
	focal  geo.Point // KNN focal point
	k      int       // KNN cardinality
	radius float64   // KNN current circle radius (kth distance)
	t1, t2 float64   // PredictiveRange window

	registered bool // region currently present in the grid

	// answer is the OList: the latest answer, maintained incrementally,
	// keyed by object handle (members are always live, so handles cannot
	// dangle).
	answer answerSet

	// committed is the last answer the client provably received, keyed
	// by ObjectID — unlike answer it can outlive its members (a removed
	// object must still produce a negative update on Recover), so it
	// must not reference handles. It is an unordered snapshot slice,
	// rewritten wholesale on every commit (the auto-commit path is hot;
	// Recover, the only reader that needs lookups, sorts it first). See
	// Commit and Recover.
	committed []ObjectID

	// snapClean records that committed (as a set) still equals answer:
	// no membership change since the last commit. Auto-commit fires on
	// every report a moving query sends, but most reporting queries —
	// the ones in quiet cells — have unchanged answers, so commit can
	// skip the snapshot rebuild for them entirely. Cleared by the two
	// answer mutators (setMember, setMemberNew) and by SeedCommitted,
	// set by commit.
	snapClean bool
}

// Engine is the shared, incremental continuous query processor. Methods
// must not be called concurrently; wrap the engine (as internal/server
// does) to serialize access.
type Engine struct {
	opt  Options
	g    *grid.Grid
	now  float64
	objs map[ObjectID]*objectState
	qrys map[QueryID]*queryState

	// Dense handle tables: objsByH[os.h] == os for every live object
	// (nil in freed slots), and symmetrically for queries. Grid keys
	// carry handles, so the join's candidate probes index these arrays
	// directly. Freed handles are recycled LIFO — a deterministic
	// policy, so handle assignment (and with it grid-slab layout) is
	// identical across replicas fed the same report stream.
	objsByH []*objectState
	qrysByH []*queryState
	objFree []int32
	qryFree []int32

	// idByH mirrors objsByH with just the external ID: handle→ID
	// translation (commit snapshots, answer reads, checksums) is a flat
	// array load instead of a pointer chase through the object state.
	// Freed slots keep their stale ID — translation is only ever done
	// for live members, whose slots are current.
	idByH []ObjectID

	objBuf []ObjectUpdate
	qryBuf []QueryUpdate

	dirtyKNN map[QueryID]struct{}

	stats Stats
	m     *engineMetrics

	// Step scratch, reused across evaluations so a steady-state Step is
	// allocation-stable: every buffer below reaches its working size
	// within a few Steps and is then only resliced. None of this state
	// carries semantics between Steps — each buffer is reset (length
	// zero or cleared) before use.
	movedBuf []movedObj    // phase-1 changed-object list
	workers  []*joinWorker // per-worker join scratch; [0] serves the serial path
	deques   []*clDeque    // per-worker batch deques (see join.go)
	dirtyBuf []QueryID     // sorted dirty-kNN drain
	qidBuf   []*queryState // removeObject's sorted QList drain
	hBuf     []int32       // answer-member snapshot for drop scans et al.
	diffBuf  []geo.Rect    // region-difference pieces
	knnBuf   []grid.Neighbor
	knnDrop  []int32 // recomputeKNN's retracted member handles
	knnAdd   []int32 // recomputeKNN's admitted member handles
	prevEmit int     // previous Step's emission count: pre-size hint for out

	// Parallel-join scratch (see join.go): the partition stage's
	// counting-sort buffers and batch table, the per-phase item tables,
	// and the canonical-sort keys.
	partIdx  []int32
	itemCell []int32
	cellCnt  []int32
	batches  []batchSpan
	nActive  int32 // workers participating in the running phase
	qryPlan  []qryPlanEntry
	gItems   []gItem
	gRes     []gRes
	qryCount map[QueryID]int32
	knnQS    []*queryState
	knnCell  []int32
	knnRes   []knnRes
	liveBuf  []movedObj // phase-3 live view, shared with movedBuf's array
	sortKeys []uint64
	sortWide []updSortKey
	sortTmp  []Update

	// Pre-bound grid-visit callbacks for the serial query-update phase
	// (a fresh closure per moved query escapes to the heap; with tens of
	// thousands of query moves per Step that was a dominant allocation
	// source). curQS/curOut carry the query being applied; the apply
	// path runs strictly serially, so one slot suffices.
	curQS        *queryState
	curOut       *[]Update
	rangeVisitCB func(uint64, geo.Point) bool
	predCellCB   func(int) bool
	predRegionCB func(uint64, geo.Rect) bool
}

// NewEngine constructs an engine over the given space.
func NewEngine(opt Options) (*Engine, error) {
	o, err := opt.withDefaults()
	if err != nil {
		return nil, err
	}
	e := &Engine{
		opt:      o,
		g:        grid.New(o.Region, o.GridN),
		objs:     make(map[ObjectID]*objectState),
		qrys:     make(map[QueryID]*queryState),
		dirtyKNN: make(map[QueryID]struct{}),
		qryCount: make(map[QueryID]int32),
		m:        newEngineMetrics(o.Metrics, o.Clock),
	}
	e.rangeVisitCB = func(k uint64, _ geo.Point) bool {
		e.stats.CandidateChecks++
		// Candidates from the region difference A_new − A_old can still
		// be members: phase 1 moves objects before the query phase, so
		// a member may sit in the new area under its new location while
		// its membership dates from the old one. setMember dedupes.
		e.setMember(e.curQS, e.objsByH[k>>1], true, e.curOut)
		return true
	}
	e.predRegionCB = func(k uint64, _ geo.Rect) bool {
		if keyIsQuery(k) {
			return true
		}
		os := e.objsByH[k>>1]
		e.stats.CandidateChecks++
		if e.predictiveMatch(e.curQS, os) {
			e.setMember(e.curQS, os, true, e.curOut)
		}
		return true
	}
	e.predCellCB = func(ci int) bool {
		e.stats.RegionEvalCells++
		e.g.VisitRegionsInCell(ci, e.predRegionCB)
		return true
	}
	return e, nil
}

// MustNewEngine is NewEngine that panics on configuration errors, for use
// in examples and tests.
func MustNewEngine(opt Options) *Engine {
	e, err := NewEngine(opt)
	if err != nil {
		panic(err)
	}
	return e
}

// Grid key space: object and query handles share the grid's uint64 key
// space, disambiguated by the low bit. Keys carry dense handles rather
// than external IDs so a grid visit resolves its subject with one array
// index (objsByH / qrysByH) — the map probes this replaces were over
// half the join phase's CPU at the paper scale. Query keys additionally
// carry the query kind in bits 1–2, so the object-join gather can
// dispatch on kind and test the slab-stored rect before touching the
// (cold) query state at all; the handle sits at bits 3+.
func okeyH(h int32) uint64 { return uint64(uint32(h))<<1 | 0 }

func qkeyH(h int32, kind QueryKind) uint64 {
	return uint64(uint32(h))<<3 | uint64(kind)<<1 | 1
}

func keyIsQuery(k uint64) bool { return k&1 == 1 }

func keyKind(k uint64) QueryKind { return QueryKind(k >> 1 & 3) }

// allocObjHandle assigns os the next free dense handle.
func (e *Engine) allocObjHandle(os *objectState) {
	if n := len(e.objFree); n > 0 {
		os.h = e.objFree[n-1]
		e.objFree = e.objFree[:n-1]
		e.objsByH[os.h] = os
		e.idByH[os.h] = os.id
		return
	}
	os.h = int32(len(e.objsByH))
	e.objsByH = append(e.objsByH, os)
	e.idByH = append(e.idByH, os.id)
}

// allocQryHandle assigns qs the next free dense handle.
func (e *Engine) allocQryHandle(qs *queryState) {
	if n := len(e.qryFree); n > 0 {
		qs.h = e.qryFree[n-1]
		e.qryFree = e.qryFree[:n-1]
		e.qrysByH[qs.h] = qs
		return
	}
	qs.h = int32(len(e.qrysByH))
	e.qrysByH = append(e.qrysByH, qs)
}

// ReportObject buffers an object update for the next Step, mirroring the
// paper's server-side buffering of received updates for bulk processing.
func (e *Engine) ReportObject(u ObjectUpdate) {
	e.objBuf = append(e.objBuf, u)
}

// ReportQuery buffers a query registration, movement, or removal for the
// next Step.
func (e *Engine) ReportQuery(u QueryUpdate) {
	e.qryBuf = append(e.qryBuf, u)
}

// Pending returns the number of buffered, not yet processed reports.
func (e *Engine) Pending() int { return len(e.objBuf) + len(e.qryBuf) }

// Now returns the evaluation timestamp of the last Step.
func (e *Engine) Now() float64 { return e.now }

// NumObjects returns the number of registered objects.
func (e *Engine) NumObjects() int { return len(e.objs) }

// NumQueries returns the number of registered queries.
func (e *Engine) NumQueries() int { return len(e.qrys) }

// Stats returns a copy of the engine's activity counters.
func (e *Engine) Stats() Stats { return e.stats }

// Bounds returns the monitored space.
func (e *Engine) Bounds() geo.Rect { return e.opt.Bounds }

// Region returns the sub-rectangle of the monitored space this engine's
// spatial index spans (Bounds unless Options.Region narrowed it).
func (e *Engine) Region() geo.Rect { return e.opt.Region }

// Answer returns the current answer of query q in ascending ObjectID
// order, or nil and false if the query is unknown.
func (e *Engine) Answer(q QueryID) ([]ObjectID, bool) {
	qs, ok := e.qrys[q]
	if !ok {
		return nil, false
	}
	members := qs.answer.AppendTo(e.hBuf[:0])
	e.hBuf = members
	out := make([]ObjectID, 0, len(members))
	for _, h := range members {
		out = append(out, e.idByH[h])
	}
	slices.Sort(out)
	return out, true
}

// Step processes every buffered object and query report as one bulk
// spatial join at time now, returning the incremental updates to all
// affected query answers. The returned slice is freshly allocated and in
// canonical order (see SortUpdates): feeding the same report stream to
// two engines yields bit-identical update streams.
//
// This is the paper's periodic evaluation: the server buffers updates and
// evaluates them every Δt seconds.
func (e *Engine) Step(now float64) []Update {
	// Freshly allocated per the API contract, but pre-sized from the
	// previous Step's emission count: steady-state workloads emit
	// similar volumes step over step, so append rarely reallocates.
	return e.stepAppend(make([]Update, 0, e.prevEmit), now)
}

// StepAppend is Step writing into a caller-owned buffer: the step's
// updates are appended to dst (which may be nil) and the extended slice
// is returned, with only the appended region in canonical order.
// Callers that drain the updates every tick — the shard workers, the
// bench harness — reuse one buffer across Steps and make the evaluation
// path allocation-free end to end, where Step's contractually fresh
// slice would be the one unavoidable per-tick allocation left.
func (e *Engine) StepAppend(dst []Update, now float64) []Update {
	return e.stepAppend(dst, now)
}

// stepAppend is the shared Step body. It appends this step's updates to
// out, sorts the appended region, and records the step's metrics.
func (e *Engine) stepAppend(out []Update, now float64) []Update {
	base := len(out)
	begin := e.m.tracer.Begin()
	prevPos := e.stats.PositiveUpdates
	prevNeg := e.stats.NegativeUpdates
	prevKNN := e.stats.KNNRecomputes
	nObjReports := len(e.objBuf)
	nQryReports := len(e.qryBuf)

	e.now = now
	e.stats.Steps++

	// Phase 1: apply object reports to the grid and the object table,
	// recording which objects changed for the join phase.
	moved := e.movedBuf[:0]
	for _, u := range e.objBuf {
		e.stats.ObjectReports++
		if u.Remove {
			e.removeObject(u.ID, &out)
			continue
		}
		if len(u.Waypoints) > 0 {
			tr := geo.Trajectory{Start: u.Loc, T0: u.T, Waypoints: u.Waypoints}
			if !tr.Valid() {
				continue // reject malformed trajectories; keep prior state
			}
		}
		if ExceedsMaxSpeed(u, e.opt.MaxSpeed) {
			continue // reject over-speed predictive motion; keep prior state
		}
		os, exists := e.objs[u.ID]
		if !exists {
			os = &objectState{id: u.ID}
			e.allocObjHandle(os)
			e.objs[u.ID] = os
			os.kind = u.Kind
			os.loc = u.Loc
			os.vel = u.Vel
			os.waypoints = u.Waypoints
			os.t = u.T
			e.g.InsertObject(okeyH(os.h), u.Loc)
			e.registerSwept(os)
			moved = append(moved, movedObj{os: os, isNew: true, oldLoc: u.Loc})
			continue
		}
		old := os.loc
		os.kind = u.Kind
		os.vel = u.Vel
		os.waypoints = u.Waypoints
		os.t = u.T
		os.loc = u.Loc
		e.g.MoveObject(okeyH(os.h), old, u.Loc)
		e.registerSwept(os)
		moved = append(moved, movedObj{os: os, oldLoc: old})
	}

	// Phases 2–4 are the query-update join: query re-registrations,
	// the moved-object spatial join, and exact dirty-kNN re-evaluation.
	// Each phase gathers read-only (in parallel, when configured) and
	// applies serially; see join.go for the batch/steal machinery and
	// the determinism argument.
	joinBegin := e.m.tracer.Begin()

	// Phase 2: apply query reports. Range queries are evaluated
	// incrementally over the region difference; kNN queries are marked for
	// exact recomputation; predictive queries are re-joined against
	// trajectory candidates.
	e.queryPhase(&out)

	// Phase 3: object-driven evaluation. For every changed object, first
	// re-check its existing memberships against the (possibly moved)
	// queries, then probe the grid cells at its new position for candidate
	// queries it newly satisfies.
	live := moved[:0]
	for _, m := range moved {
		// Skip objects that were removed later in the same batch: their
		// state is stale and their memberships were already retracted.
		if cur, ok := e.objs[m.os.id]; ok && cur == m.os {
			live = append(live, m)
		}
	}
	e.objectJoinPhase(live, &out)

	// Phase 4: recompute the answer of every dirty kNN query exactly and
	// emit the membership diff, in query order so the grid's region
	// maintenance and the recompute stats are replay-stable.
	nDirty := e.knnPhase(&out)

	e.m.tracer.End(e.m.joinLatency, joinBegin)

	e.objBuf = e.objBuf[:0]
	e.qryBuf = e.qryBuf[:0]
	e.movedBuf = moved
	emitted := len(out) - base
	e.prevEmit = emitted
	e.canonicalize(out[base:])

	// Metrics epilogue: pure atomic adds against pre-resolved
	// instruments (detached ones when no registry was configured), so
	// this block allocates nothing and never branches on "metrics on".
	// Emission counters come from the Stats deltas so the two views
	// cannot drift apart.
	m := e.m
	m.steps.Inc()
	m.objectReports.Add(uint64(nObjReports))
	m.queryReports.Add(uint64(nQryReports))
	m.movedObjects.Add(uint64(len(live)))
	m.dirtyKNN.Add(uint64(nDirty))
	m.posUpdates.Add(e.stats.PositiveUpdates - prevPos)
	m.negUpdates.Add(e.stats.NegativeUpdates - prevNeg)
	m.knnRecomputes.Add(e.stats.KNNRecomputes - prevKNN)
	m.movedHighWater.SetMax(int64(cap(e.movedBuf)))
	m.gatherSlots.SetMax(int64(len(e.workers)))
	m.lastEmitted.Set(int64(emitted))
	m.objects.Set(int64(len(e.objs)))
	m.qrySet.Set(int64(len(e.qrys)))
	m.stepUpdates.Observe(int64(emitted))
	m.tracer.End(m.stepLatency, begin)
	return out
}

// setMember is the single authority over answer membership. Every
// evaluation path funnels through it, which both keeps the QList/OList
// views consistent and deduplicates updates when several phases discover
// the same membership change.
func (e *Engine) setMember(qs *queryState, os *objectState, in bool, out *[]Update) {
	if in {
		if !qs.answer.Add(os.h) {
			return
		}
		if len(os.queries) == cap(os.queries) {
			// Same growth policy as answerSet.Add: jump straight to a
			// working capacity so QLists stop allocating within the
			// steady-state warmup instead of doubling from 1.
			grown := make([]*queryState, len(os.queries), max(answerGrow, 2*cap(os.queries)))
			copy(grown, os.queries)
			os.queries = grown
		}
		os.queries = append(os.queries, qs)
		e.stats.PositiveUpdates++
	} else {
		if !qs.answer.Remove(os.h) {
			return
		}
		ql := os.queries
		for i, q := range ql {
			if q == qs {
				last := len(ql) - 1
				ql[i] = ql[last]
				ql[last] = nil
				os.queries = ql[:last]
				break
			}
		}
		e.stats.NegativeUpdates++
	}
	qs.snapClean = false
	*out = append(*out, Update{Query: qs.id, Object: os.id, Positive: in})
}

// setMemberNew admits an object known to be absent from qs's answer,
// skipping the membership probe setMember pays. Callers must hold a
// structural guarantee of absence; both current callers are kNN adds,
// which are pre-filtered against the answer before being gathered.
// Range region-difference candidates do NOT qualify (an object that
// moved into A_new − A_old in the same step may already be a member)
// and go through setMember. Must never be called when a duplicate is
// possible — the QList would double-link and emit a duplicate positive
// update.
func (e *Engine) setMemberNew(qs *queryState, os *objectState, out *[]Update) {
	qs.answer.addNoCheck(os.h)
	if len(os.queries) == cap(os.queries) {
		grown := make([]*queryState, len(os.queries), max(answerGrow, 2*cap(os.queries)))
		copy(grown, os.queries)
		os.queries = grown
	}
	os.queries = append(os.queries, qs)
	e.stats.PositiveUpdates++
	qs.snapClean = false
	*out = append(*out, Update{Query: qs.id, Object: os.id, Positive: true})
}

// removeObject deregisters an object, emitting negative updates for every
// query whose answer it occupied.
func (e *Engine) removeObject(id ObjectID, out *[]Update) {
	os, ok := e.objs[id]
	if !ok {
		return
	}
	// Retract memberships in ascending QueryID order (collected first:
	// setMember swap-removes from the QList being walked).
	qss := append(e.qidBuf[:0], os.queries...)
	slices.SortFunc(qss, func(a, b *queryState) int {
		if a.id < b.id {
			return -1
		}
		if a.id > b.id {
			return 1
		}
		return 0
	})
	e.qidBuf = qss[:0]
	for _, qs := range qss {
		if qs.kind == KNN {
			// A departed member must be replaced by the next nearest.
			e.dirtyKNN[qs.id] = struct{}{}
		}
		e.setMember(qs, os, false, out)
	}
	e.g.RemoveObject(okeyH(os.h), os.loc)
	if os.sweptValid {
		e.g.RemoveRegion(okeyH(os.h), os.swept)
	}
	delete(e.objs, id)
	e.objsByH[os.h] = nil
	e.objFree = append(e.objFree, os.h)
}

// removeQuery deregisters a query. No updates are emitted: the subscriber
// is gone.
func (e *Engine) removeQuery(id QueryID) {
	qs, ok := e.qrys[id]
	if !ok {
		return
	}
	members := qs.answer.AppendTo(e.hBuf[:0])
	e.hBuf = members
	for _, h := range members {
		e.detachQuery(e.objsByH[h], qs)
	}
	if qs.registered {
		e.g.RemoveRegion(qkeyH(qs.h, qs.kind), qs.region)
	}
	delete(e.qrys, id)
	delete(e.dirtyKNN, id)
	e.qrysByH[qs.h] = nil
	e.qryFree = append(e.qryFree, qs.h)
}

// detachQuery drops qs from an object's QList without touching qs's own
// answer (the caller is discarding it wholesale).
func (e *Engine) detachQuery(os *objectState, qs *queryState) {
	ql := os.queries
	for i, q := range ql {
		if q == qs {
			last := len(ql) - 1
			ql[i] = ql[last]
			ql[last] = nil
			os.queries = ql[:last]
			return
		}
	}
}

// newQuery registers a fresh query state under a newly assigned handle.
func (e *Engine) newQuery(id QueryID, kind QueryKind) *queryState {
	qs := &queryState{id: id, kind: kind}
	e.allocQryHandle(qs)
	e.qrys[id] = qs
	return qs
}

// registerSwept (re)registers the trajectory bounding box of a predictive
// object over the configured horizon.
func (e *Engine) registerSwept(os *objectState) {
	if os.sweptValid {
		e.g.RemoveRegion(okeyH(os.h), os.swept)
		os.sweptValid = false
	}
	if os.kind != Predictive {
		return
	}
	horizon := os.t + e.opt.PredictiveHorizon
	if len(os.waypoints) > 0 {
		tr := geo.Trajectory{Start: os.loc, T0: os.t, Waypoints: os.waypoints}
		os.swept = tr.BBoxDuring(os.t, horizon)
	} else {
		m := geo.Motion{Start: os.loc, Vel: os.vel, T0: os.t}
		os.swept = m.SweptBBox(os.t, horizon)
	}
	os.sweptValid = true
	e.g.InsertRegion(okeyH(os.h), os.swept)
}

// applyQueryUpdate registers a new query or applies a movement report to
// an existing one. Updates with an unknown kind are rejected up front,
// before any state is touched: an invalid report must not auto-commit an
// existing query or overwrite its timestamp.
func (e *Engine) applyQueryUpdate(u QueryUpdate, out *[]Update) {
	switch u.Kind {
	case Range, KNN, PredictiveRange:
	default:
		return
	}
	qs, exists := e.qrys[u.ID]
	if exists && qs.kind != u.Kind {
		// A query changing kind is a re-registration: tear down the old
		// query silently and start fresh.
		e.removeQuery(u.ID)
		exists = false
	}
	if !exists {
		qs = e.newQuery(u.ID, u.Kind)
	}

	// Receiving any report from a query's client proves the client is
	// connected and has consumed the stream so far: auto-commit (paper
	// §3.3, moving queries commit implicitly). Replica engines skip the
	// snapshot — their committed state is never consulted (see
	// Options.Replica).
	if !e.opt.Replica {
		e.commit(qs)
	}

	qs.t = u.T
	switch u.Kind {
	case Range:
		e.applyRangeUpdate(qs, u.Region, out)
	case KNN:
		qs.focal = u.Focal
		qs.k = u.K
		e.dirtyKNN[qs.id] = struct{}{}
	case PredictiveRange:
		e.applyPredictiveUpdate(qs, u.Region, u.T1, u.T2, out)
	}
}

// movedObj records one object changed in phase 1 of a Step, queued for
// the phase-3 join.
type movedObj struct {
	os     *objectState
	isNew  bool
	oldLoc geo.Point
}
