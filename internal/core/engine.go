package core

import (
	"fmt"
	"slices"
	"sync"

	"cqp/internal/geo"
	"cqp/internal/grid"
	"cqp/internal/obs"
)

// Options configures an Engine.
type Options struct {
	// Bounds is the monitored space. Required (the zero Rect is rejected).
	Bounds geo.Rect

	// Region, when non-zero, restricts the engine's spatial index to a
	// sub-rectangle of Bounds: the grid spans Region instead of the whole
	// monitored space. Geometry outside Region is not rejected — it is
	// clamped into the region's edge cells, exactly as out-of-Bounds
	// geometry is clamped by a full-space engine — so answers depend only
	// on the raw reported geometry, never on the index bounds. This is
	// what lets internal/shard build one engine per tile over just that
	// tile's rectangle (plus a halo margin) while keeping the merged
	// stream identical to a single full-space engine's: an engine's answer
	// over any object population is invariant under the choice of Region.
	// Defaults to Bounds; must be a non-empty sub-rectangle of Bounds.
	Region geo.Rect

	// GridN is the per-axis cell count of the shared grid. Defaults to 64.
	GridN int

	// MaxSpeed, when positive, bounds the speed of predictive motion: a
	// Predictive object report whose velocity magnitude — or any waypoint
	// leg of its trajectory — exceeds MaxSpeed is rejected wholesale,
	// keeping the prior state, exactly like a malformed trajectory. The
	// bound is what allows a sharded router to route a predictive query
	// only to the tiles its region could be reached from within the
	// horizon (region expanded by MaxSpeed × PredictiveHorizon) instead
	// of replicating it everywhere. 0 (the default) means unlimited.
	MaxSpeed float64

	// PredictiveHorizon is how far (in time units) ahead of its report a
	// predictive object's trajectory is registered in the grid. Predictive
	// queries whose window ends more than a horizon after the reporting
	// time of an object may miss that object, so configure the horizon to
	// cover the longest window in use. Defaults to 100.
	PredictiveHorizon float64

	// Parallelism fans the read-only gather phase of the object-driven
	// join out across this many goroutines when a bulk step carries enough
	// moved objects. 0 or 1 keeps evaluation single-threaded (the
	// default); results are identical either way, only update order within
	// a batch differs.
	Parallelism int

	// Metrics, when non-nil, registers the engine's observability
	// instruments (step counters, update counters, latency histograms,
	// scratch high-water marks) in the given registry. Instruments are
	// resolved once here at construction — the evaluation path performs
	// only atomic updates and allocates nothing for them. Metrics never
	// influence evaluation: the update stream is bit-identical with
	// metrics on or off.
	Metrics *obs.Registry

	// Clock drives the step-latency histogram. The engine itself never
	// reads the wall clock (the determinism analyzer forbids it): the
	// server layer injects obs.WallClock, tests inject fakes, and a nil
	// Clock disables latency timing while every other metric still
	// functions.
	Clock obs.Clock

	// Replica marks the engine as an internal replica behind a router —
	// a shard tile or a cluster worker engine. The router is the single
	// source of truth for the client commit/recover protocol, so a
	// replica skips the per-report committed-answer snapshot that a
	// moving query's auto-commit would otherwise rebuild on every tick
	// (the snapshot would never be consulted). Explicit Commit and
	// Recover calls still work; only the implicit auto-commit is elided.
	// The update stream is bit-identical with or without the flag.
	Replica bool
}

func (o *Options) withDefaults() (Options, error) {
	out := *o
	if out.Bounds.Empty() {
		return out, fmt.Errorf("core: Options.Bounds must be a non-empty rectangle, got %v", out.Bounds)
	}
	if out.Region == (geo.Rect{}) {
		out.Region = out.Bounds
	}
	if out.Region.Empty() {
		return out, fmt.Errorf("core: Options.Region must be a non-empty rectangle, got %v", out.Region)
	}
	if !out.Bounds.ContainsRect(out.Region) {
		return out, fmt.Errorf("core: Options.Region %v must lie inside Bounds %v", out.Region, out.Bounds)
	}
	if out.MaxSpeed < 0 {
		return out, fmt.Errorf("core: Options.MaxSpeed must be non-negative, got %v", out.MaxSpeed)
	}
	if out.GridN == 0 {
		out.GridN = 64
	}
	if out.GridN < 1 {
		return out, fmt.Errorf("core: Options.GridN must be positive, got %d", out.GridN)
	}
	if out.PredictiveHorizon == 0 {
		out.PredictiveHorizon = 100
	}
	if out.PredictiveHorizon < 0 {
		return out, fmt.Errorf("core: Options.PredictiveHorizon must be positive, got %v", out.PredictiveHorizon)
	}
	if out.Parallelism < 0 {
		return out, fmt.Errorf("core: Options.Parallelism must be non-negative, got %d", out.Parallelism)
	}
	return out, nil
}

// Normalized returns the options with every default applied, validated
// exactly as NewEngine validates them. Layers that derive engine
// parameters — the shard router computing predictive routing bounds
// from PredictiveHorizon, the cluster coordinator building worker
// assignments — normalize once so their view never drifts from the
// engines'.
func (o Options) Normalized() (Options, error) { return o.withDefaults() }

// ExceedsMaxSpeed reports whether an object update violates a predictive
// speed cap: a Predictive report whose velocity magnitude, or any
// waypoint leg, is faster than maxSpeed. A non-positive maxSpeed never
// rejects. Exported because the shard router must mirror the engines'
// acceptance decision exactly — a report rejected by a tile engine must
// not move the router's ownership table either.
func ExceedsMaxSpeed(u ObjectUpdate, maxSpeed float64) bool {
	if maxSpeed <= 0 || u.Kind != Predictive || u.Remove {
		return false
	}
	if len(u.Waypoints) > 0 {
		prev := geo.TimedPoint{P: u.Loc, T: u.T}
		for _, wp := range u.Waypoints {
			if dt := wp.T - prev.T; dt > 0 && wp.P.Dist(prev.P) > maxSpeed*dt {
				return true
			}
			prev = wp
		}
		return false
	}
	return u.Vel.Len() > maxSpeed
}

// objectState is the engine's record of one object: the paper's object
// entry (OID, loc, t, QList).
type objectState struct {
	id        ObjectID
	kind      ObjectKind
	loc       geo.Point
	vel       geo.Vector
	waypoints []geo.TimedPoint // trajectory representation, when reported
	t         float64

	// swept is the grid-registered trajectory bounding box of a predictive
	// object; the zero Rect when not registered.
	swept      geo.Rect
	sweptValid bool

	// queries is the QList: every query whose answer currently contains
	// this object.
	queries map[QueryID]struct{}
}

// queryState is the engine's record of one query: the paper's query entry
// plus the incremental-evaluation and recovery bookkeeping.
type queryState struct {
	id   QueryID
	kind QueryKind
	t    float64

	region geo.Rect  // current grid-registered region
	focal  geo.Point // KNN focal point
	k      int       // KNN cardinality
	radius float64   // KNN current circle radius (kth distance)
	t1, t2 float64   // PredictiveRange window

	registered bool // region currently present in the grid

	// answer is the OList: the latest answer, maintained incrementally.
	answer map[ObjectID]struct{}

	// committed is the last answer the client provably received; nil until
	// the first commit. See Commit and Recover.
	committed map[ObjectID]struct{}
}

// Engine is the shared, incremental continuous query processor. Methods
// must not be called concurrently; wrap the engine (as internal/server
// does) to serialize access.
type Engine struct {
	opt  Options
	g    *grid.Grid
	now  float64
	objs map[ObjectID]*objectState
	qrys map[QueryID]*queryState

	objBuf []ObjectUpdate
	qryBuf []QueryUpdate

	dirtyKNN map[QueryID]struct{}

	stats Stats
	m     *engineMetrics

	// Step scratch, reused across evaluations so a steady-state Step is
	// allocation-stable: every buffer below reaches its working size
	// within a few Steps and is then only resliced. None of this state
	// carries semantics between Steps — each buffer is reset (length
	// zero or cleared) before use.
	movedBuf []movedObj     // phase-1 changed-object list
	gathers  []*movedGather // per-worker gather scratch; [0] serves the serial path
	dirtyBuf []QueryID      // sorted dirty-kNN drain
	qidBuf   []QueryID      // removeObject's sorted QList drain
	dropBuf  []*objectState // range/predictive membership-drop collection
	diffBuf  []geo.Rect     // region-difference pieces
	knnBuf   []grid.Neighbor
	knnNew   map[ObjectID]struct{} // recomputeKNN's next answer
	knnDrop  []ObjectID
	knnAdd   []ObjectID
	prevEmit int // previous Step's emission count: pre-size hint for out

	// Pre-bound grid-visit callbacks for the serial query-update phase
	// (a fresh closure per moved query escapes to the heap; with tens of
	// thousands of query moves per Step that was a dominant allocation
	// source). curQS/curOut carry the query being applied; both phases
	// run strictly serially, so one slot suffices.
	curQS        *queryState
	curOut       *[]Update
	rangeVisitCB func(uint64, geo.Point) bool
	predCellCB   func(int) bool
	predRegionCB func(uint64, geo.Rect) bool
}

// NewEngine constructs an engine over the given space.
func NewEngine(opt Options) (*Engine, error) {
	o, err := opt.withDefaults()
	if err != nil {
		return nil, err
	}
	e := &Engine{
		opt:      o,
		g:        grid.New(o.Region, o.GridN),
		objs:     make(map[ObjectID]*objectState),
		qrys:     make(map[QueryID]*queryState),
		dirtyKNN: make(map[QueryID]struct{}),
		knnNew:   make(map[ObjectID]struct{}),
		m:        newEngineMetrics(o.Metrics, o.Clock),
	}
	e.rangeVisitCB = func(k uint64, _ geo.Point) bool {
		e.stats.CandidateChecks++
		e.setMember(e.curQS, e.objs[keyObject(k)], true, e.curOut)
		return true
	}
	e.predRegionCB = func(k uint64, _ geo.Rect) bool {
		if keyIsQuery(k) {
			return true
		}
		os := e.objs[keyObject(k)]
		e.stats.CandidateChecks++
		if e.predictiveMatch(e.curQS, os) {
			e.setMember(e.curQS, os, true, e.curOut)
		}
		return true
	}
	e.predCellCB = func(ci int) bool {
		e.stats.RegionEvalCells++
		e.g.VisitRegionsInCell(ci, e.predRegionCB)
		return true
	}
	return e, nil
}

// MustNewEngine is NewEngine that panics on configuration errors, for use
// in examples and tests.
func MustNewEngine(opt Options) *Engine {
	e, err := NewEngine(opt)
	if err != nil {
		panic(err)
	}
	return e
}

// Grid key space: object and query identifiers share the grid's uint64
// key space, disambiguated by the low bit.
func okey(id ObjectID) uint64 { return uint64(id)<<1 | 0 }
func qkey(id QueryID) uint64  { return uint64(id)<<1 | 1 }

func keyIsQuery(k uint64) bool    { return k&1 == 1 }
func keyObject(k uint64) ObjectID { return ObjectID(k >> 1) }
func keyQuery(k uint64) QueryID   { return QueryID(k >> 1) }

// ReportObject buffers an object update for the next Step, mirroring the
// paper's server-side buffering of received updates for bulk processing.
func (e *Engine) ReportObject(u ObjectUpdate) {
	e.objBuf = append(e.objBuf, u)
}

// ReportQuery buffers a query registration, movement, or removal for the
// next Step.
func (e *Engine) ReportQuery(u QueryUpdate) {
	e.qryBuf = append(e.qryBuf, u)
}

// Pending returns the number of buffered, not yet processed reports.
func (e *Engine) Pending() int { return len(e.objBuf) + len(e.qryBuf) }

// Now returns the evaluation timestamp of the last Step.
func (e *Engine) Now() float64 { return e.now }

// NumObjects returns the number of registered objects.
func (e *Engine) NumObjects() int { return len(e.objs) }

// NumQueries returns the number of registered queries.
func (e *Engine) NumQueries() int { return len(e.qrys) }

// Stats returns a copy of the engine's activity counters.
func (e *Engine) Stats() Stats { return e.stats }

// Bounds returns the monitored space.
func (e *Engine) Bounds() geo.Rect { return e.opt.Bounds }

// Region returns the sub-rectangle of the monitored space this engine's
// spatial index spans (Bounds unless Options.Region narrowed it).
func (e *Engine) Region() geo.Rect { return e.opt.Region }

// Answer returns the current answer of query q in ascending ObjectID
// order, or nil and false if the query is unknown.
func (e *Engine) Answer(q QueryID) ([]ObjectID, bool) {
	qs, ok := e.qrys[q]
	if !ok {
		return nil, false
	}
	out := make([]ObjectID, 0, len(qs.answer))
	for id := range qs.answer {
		out = append(out, id)
	}
	slices.Sort(out)
	return out, true
}

// Step processes every buffered object and query report as one bulk
// spatial join at time now, returning the incremental updates to all
// affected query answers. The returned slice is freshly allocated and in
// canonical order (see SortUpdates): feeding the same report stream to
// two engines yields bit-identical update streams.
//
// This is the paper's periodic evaluation: the server buffers updates and
// evaluates them every Δt seconds.
func (e *Engine) Step(now float64) []Update {
	// Freshly allocated per the API contract, but pre-sized from the
	// previous Step's emission count: steady-state workloads emit
	// similar volumes step over step, so append rarely reallocates.
	return e.stepAppend(make([]Update, 0, e.prevEmit), now)
}

// StepAppend is Step writing into a caller-owned buffer: the step's
// updates are appended to dst (which may be nil) and the extended slice
// is returned, with only the appended region in canonical order.
// Callers that drain the updates every tick — the shard workers, the
// bench harness — reuse one buffer across Steps and make the evaluation
// path allocation-free end to end, where Step's contractually fresh
// slice would be the one unavoidable per-tick allocation left.
func (e *Engine) StepAppend(dst []Update, now float64) []Update {
	return e.stepAppend(dst, now)
}

// stepAppend is the shared Step body. It appends this step's updates to
// out, sorts the appended region, and records the step's metrics.
func (e *Engine) stepAppend(out []Update, now float64) []Update {
	base := len(out)
	begin := e.m.tracer.Begin()
	prevPos := e.stats.PositiveUpdates
	prevNeg := e.stats.NegativeUpdates
	prevKNN := e.stats.KNNRecomputes
	nObjReports := len(e.objBuf)
	nQryReports := len(e.qryBuf)

	e.now = now
	e.stats.Steps++

	// Phase 1: apply object reports to the grid and the object table,
	// recording which objects changed for the join phase.
	moved := e.movedBuf[:0]
	for _, u := range e.objBuf {
		e.stats.ObjectReports++
		if u.Remove {
			e.removeObject(u.ID, &out)
			continue
		}
		if len(u.Waypoints) > 0 {
			tr := geo.Trajectory{Start: u.Loc, T0: u.T, Waypoints: u.Waypoints}
			if !tr.Valid() {
				continue // reject malformed trajectories; keep prior state
			}
		}
		if ExceedsMaxSpeed(u, e.opt.MaxSpeed) {
			continue // reject over-speed predictive motion; keep prior state
		}
		os, exists := e.objs[u.ID]
		if !exists {
			os = &objectState{id: u.ID, queries: make(map[QueryID]struct{})}
			e.objs[u.ID] = os
			os.kind = u.Kind
			os.loc = u.Loc
			os.vel = u.Vel
			os.waypoints = u.Waypoints
			os.t = u.T
			e.g.InsertObject(okey(u.ID), u.Loc)
			e.registerSwept(os)
			moved = append(moved, movedObj{os: os, isNew: true, oldLoc: u.Loc})
			continue
		}
		old := os.loc
		os.kind = u.Kind
		os.vel = u.Vel
		os.waypoints = u.Waypoints
		os.t = u.T
		os.loc = u.Loc
		e.g.MoveObject(okey(u.ID), old, u.Loc)
		e.registerSwept(os)
		moved = append(moved, movedObj{os: os, oldLoc: old})
	}

	// Phase 2: apply query reports. Range queries are evaluated
	// incrementally over the region difference; kNN queries are marked for
	// exact recomputation; predictive queries are re-joined against
	// trajectory candidates.
	for _, u := range e.qryBuf {
		e.stats.QueryReports++
		if u.Remove {
			e.removeQuery(u.ID)
			continue
		}
		e.applyQueryUpdate(u, &out)
	}

	// Phase 3: object-driven evaluation. For every changed object, first
	// re-check its existing memberships against the (possibly moved)
	// queries, then probe the grid cells at its new position for candidate
	// queries it newly satisfies.
	//
	// The phase is structured as a read-only gather over the moved objects
	// followed by a serial apply, so the gather can fan out across
	// Options.Parallelism goroutines: during it, the grid, the query
	// regions, and (for the kNN dirtiness test) the answers and radii are
	// all immutable.
	live := moved[:0]
	for _, m := range moved {
		// Skip objects that were removed later in the same batch: their
		// state is stale and their memberships were already retracted.
		if cur, ok := e.objs[m.os.id]; ok && cur == m.os {
			live = append(live, m)
		}
	}
	workers := e.opt.Parallelism
	if workers <= 1 || len(live) < 2*workers {
		g := e.gatherScratch(1)
		for _, m := range live {
			e.gatherMovedObject(m.os, g[0])
		}
		e.applyGather(g[0], &out)
	} else {
		gathers := e.gatherScratch(workers)
		var wg sync.WaitGroup
		chunk := (len(live) + workers - 1) / workers
		for w := 0; w < workers; w++ {
			lo := w * chunk
			hi := lo + chunk
			if hi > len(live) {
				hi = len(live)
			}
			if lo >= hi {
				break
			}
			wg.Add(1)
			go func(g *movedGather, part []movedObj) {
				defer wg.Done()
				for _, m := range part {
					e.gatherMovedObject(m.os, g)
				}
			}(gathers[w], live[lo:hi])
		}
		wg.Wait()
		for _, g := range gathers {
			e.applyGather(g, &out)
		}
	}

	// Phase 4: recompute the answer of every dirty kNN query exactly and
	// emit the membership diff, in query order so the grid's region
	// maintenance and the recompute stats are replay-stable.
	nDirty := 0
	if len(e.dirtyKNN) > 0 {
		dirty := e.dirtyBuf[:0]
		for qid := range e.dirtyKNN {
			dirty = append(dirty, qid)
		}
		slices.Sort(dirty)
		clear(e.dirtyKNN)
		nDirty = len(dirty)
		for _, qid := range dirty {
			if qs, ok := e.qrys[qid]; ok {
				e.recomputeKNN(qs, &out)
			}
		}
		e.dirtyBuf = dirty
	}

	e.objBuf = e.objBuf[:0]
	e.qryBuf = e.qryBuf[:0]
	e.movedBuf = moved
	emitted := len(out) - base
	e.prevEmit = emitted
	SortUpdates(out[base:])

	// Metrics epilogue: pure atomic adds against pre-resolved
	// instruments (detached ones when no registry was configured), so
	// this block allocates nothing and never branches on "metrics on".
	// Emission counters come from the Stats deltas so the two views
	// cannot drift apart.
	m := e.m
	m.steps.Inc()
	m.objectReports.Add(uint64(nObjReports))
	m.queryReports.Add(uint64(nQryReports))
	m.movedObjects.Add(uint64(len(live)))
	m.dirtyKNN.Add(uint64(nDirty))
	m.posUpdates.Add(e.stats.PositiveUpdates - prevPos)
	m.negUpdates.Add(e.stats.NegativeUpdates - prevNeg)
	m.knnRecomputes.Add(e.stats.KNNRecomputes - prevKNN)
	m.movedHighWater.SetMax(int64(cap(e.movedBuf)))
	m.gatherSlots.SetMax(int64(len(e.gathers)))
	m.lastEmitted.Set(int64(emitted))
	m.objects.Set(int64(len(e.objs)))
	m.qrySet.Set(int64(len(e.qrys)))
	m.stepUpdates.Observe(int64(emitted))
	m.tracer.End(m.stepLatency, begin)
	return out
}

// gatherScratch returns n reset movedGather scratch slots, growing the
// engine's pool as needed. The backing buffers and pre-bound grid-visit
// callbacks inside each slot are retained across Steps, which is what
// keeps the gather phase allocation-free at steady state. Slots are
// pointers because the callbacks close over their slot.
func (e *Engine) gatherScratch(n int) []*movedGather {
	for len(e.gathers) < n {
		e.gathers = append(e.gathers, newMovedGather(e))
	}
	g := e.gathers[:n]
	for _, s := range g {
		s.props = s.props[:0]
		s.dirty = s.dirty[:0]
		s.checks = 0
	}
	return g
}

// setMember is the single authority over answer membership. Every
// evaluation path funnels through it, which both keeps the QList/OList
// views consistent and deduplicates updates when several phases discover
// the same membership change.
func (e *Engine) setMember(qs *queryState, os *objectState, in bool, out *[]Update) {
	_, has := qs.answer[os.id]
	if has == in {
		return
	}
	if in {
		qs.answer[os.id] = struct{}{}
		os.queries[qs.id] = struct{}{}
		e.stats.PositiveUpdates++
	} else {
		delete(qs.answer, os.id)
		delete(os.queries, qs.id)
		e.stats.NegativeUpdates++
	}
	*out = append(*out, Update{Query: qs.id, Object: os.id, Positive: in})
}

// removeObject deregisters an object, emitting negative updates for every
// query whose answer it occupied.
func (e *Engine) removeObject(id ObjectID, out *[]Update) {
	os, ok := e.objs[id]
	if !ok {
		return
	}
	qids := e.qidBuf[:0]
	for qid := range os.queries {
		qids = append(qids, qid)
	}
	slices.Sort(qids)
	e.qidBuf = qids
	for _, qid := range qids {
		qs := e.qrys[qid]
		if qs.kind == KNN {
			// A departed member must be replaced by the next nearest.
			e.dirtyKNN[qid] = struct{}{}
		}
		e.setMember(qs, os, false, out)
	}
	e.g.RemoveObject(okey(id), os.loc)
	if os.sweptValid {
		e.g.RemoveRegion(okey(id), os.swept)
	}
	delete(e.objs, id)
}

// removeQuery deregisters a query. No updates are emitted: the subscriber
// is gone.
func (e *Engine) removeQuery(id QueryID) {
	qs, ok := e.qrys[id]
	if !ok {
		return
	}
	for oid := range qs.answer {
		delete(e.objs[oid].queries, id)
	}
	if qs.registered {
		e.g.RemoveRegion(qkey(id), qs.region)
	}
	delete(e.qrys, id)
	delete(e.dirtyKNN, id)
}

// registerSwept (re)registers the trajectory bounding box of a predictive
// object over the configured horizon.
func (e *Engine) registerSwept(os *objectState) {
	if os.sweptValid {
		e.g.RemoveRegion(okey(os.id), os.swept)
		os.sweptValid = false
	}
	if os.kind != Predictive {
		return
	}
	horizon := os.t + e.opt.PredictiveHorizon
	if len(os.waypoints) > 0 {
		tr := geo.Trajectory{Start: os.loc, T0: os.t, Waypoints: os.waypoints}
		os.swept = tr.BBoxDuring(os.t, horizon)
	} else {
		m := geo.Motion{Start: os.loc, Vel: os.vel, T0: os.t}
		os.swept = m.SweptBBox(os.t, horizon)
	}
	os.sweptValid = true
	e.g.InsertRegion(okey(os.id), os.swept)
}

// applyQueryUpdate registers a new query or applies a movement report to
// an existing one. Updates with an unknown kind are rejected up front,
// before any state is touched: an invalid report must not auto-commit an
// existing query or overwrite its timestamp.
func (e *Engine) applyQueryUpdate(u QueryUpdate, out *[]Update) {
	switch u.Kind {
	case Range, KNN, PredictiveRange:
	default:
		return
	}
	qs, exists := e.qrys[u.ID]
	if exists && qs.kind != u.Kind {
		// A query changing kind is a re-registration: tear down the old
		// query silently and start fresh.
		e.removeQuery(u.ID)
		exists = false
	}
	if !exists {
		qs = &queryState{
			id:     u.ID,
			kind:   u.Kind,
			answer: make(map[ObjectID]struct{}),
		}
		e.qrys[u.ID] = qs
	}

	// Receiving any report from a query's client proves the client is
	// connected and has consumed the stream so far: auto-commit (paper
	// §3.3, moving queries commit implicitly). Replica engines skip the
	// snapshot — their committed state is never consulted (see
	// Options.Replica).
	if !e.opt.Replica {
		e.commit(qs)
	}

	qs.t = u.T
	switch u.Kind {
	case Range:
		e.applyRangeUpdate(qs, u.Region, out)
	case KNN:
		qs.focal = u.Focal
		qs.k = u.K
		e.dirtyKNN[qs.id] = struct{}{}
	case PredictiveRange:
		e.applyPredictiveUpdate(qs, u.Region, u.T1, u.T2, out)
	}
}

// movedObj records one object changed in phase 1 of a Step, queued for
// the phase-3 join.
type movedObj struct {
	os     *objectState
	isNew  bool
	oldLoc geo.Point
}

// objectProposal is one membership decision produced by the read-only
// gather phase of the object-driven join and applied serially afterwards.
type objectProposal struct {
	qs *queryState
	os *objectState
	in bool
}

// movedGather accumulates the outcome of gathering one or more moved
// objects: membership proposals, kNN queries to mark dirty, and the
// candidate-check count. Each worker of a parallel Step owns one.
//
// The grid-visit callbacks are bound once at construction and read the
// current object from the os field: a fresh closure per moved object
// escapes to the heap, which at 100K moves/step was the single largest
// allocation source in the gather phase.
type movedGather struct {
	e      *Engine
	props  []objectProposal
	dirty  []QueryID
	checks uint64

	os            *objectState                // object currently being gathered
	regionsAtCB   func(uint64, geo.Rect) bool // candidate probe at os.loc
	sweptCellCB   func(int) bool              // predictive swept-box cell walk
	sweptRegionCB func(uint64, geo.Rect) bool // predictive candidate probe
}

// newMovedGather builds a gather slot with its callbacks pre-bound.
func newMovedGather(e *Engine) *movedGather {
	g := &movedGather{e: e}
	g.regionsAtCB = func(k uint64, _ geo.Rect) bool {
		if !keyIsQuery(k) {
			return true
		}
		os := g.os
		qs := e.qrys[keyQuery(k)]
		g.checks++
		switch qs.kind {
		case Range:
			if qs.region.Contains(os.loc) {
				g.props = append(g.props, objectProposal{qs, os, true})
			}
		case KNN:
			// Inside the current circle (or the query is still starved):
			// the exact answer may change. (Answers and radii are stable
			// throughout the gather phase: they only change in the apply
			// and kNN-recompute phases.)
			if len(qs.answer) < qs.k || qs.focal.Dist(os.loc) <= qs.radius {
				g.dirty = append(g.dirty, qs.id)
			}
		case PredictiveRange:
			if os.kind == Predictive && e.predictiveMatch(qs, os) {
				g.props = append(g.props, objectProposal{qs, os, true})
			}
		}
		return true
	}
	g.sweptRegionCB = func(k uint64, _ geo.Rect) bool {
		if !keyIsQuery(k) {
			return true
		}
		qs := e.qrys[keyQuery(k)]
		if qs.kind != PredictiveRange {
			return true
		}
		g.checks++
		if e.predictiveMatch(qs, g.os) {
			g.props = append(g.props, objectProposal{qs, g.os, true})
		}
		return true
	}
	g.sweptCellCB = func(ci int) bool {
		e.g.VisitRegionsInCell(ci, g.sweptRegionCB)
		return true
	}
	return g
}

// gatherMovedObject is the object side of the spatial join, restructured
// as a pure read: it re-checks the object's existing memberships against
// current query state and probes the grid for newly satisfied candidate
// queries, appending its findings to g. It never mutates engine state —
// the property that makes the gather phase safe to run on several moved
// objects concurrently.
func (e *Engine) gatherMovedObject(os *objectState, g *movedGather) {
	// Existing memberships: detach from queries the object no longer
	// satisfies.
	for qid := range os.queries {
		qs := e.qrys[qid]
		g.checks++
		switch qs.kind {
		case Range:
			if !qs.region.Contains(os.loc) {
				g.props = append(g.props, objectProposal{qs, os, false})
			}
		case KNN:
			// Any movement of a member can reorder the k nearest.
			g.dirty = append(g.dirty, qid)
		case PredictiveRange:
			if !e.predictiveMatch(qs, os) {
				g.props = append(g.props, objectProposal{qs, os, false})
			}
		}
	}

	// Candidate queries registered in the cell of the new location.
	g.os = os
	e.g.VisitRegionsAt(os.loc, g.regionsAtCB)

	// A predictive object additionally joins against predictive queries
	// wherever its trajectory box reaches, not only at its current point.
	if os.kind == Predictive && os.sweptValid {
		e.g.VisitCells(os.swept, g.sweptCellCB)
	}
}

// applyGather integrates a gather's findings: dirty marks, stats, and
// membership proposals (deduplicated by setMember).
func (e *Engine) applyGather(g *movedGather, out *[]Update) {
	for _, qid := range g.dirty {
		e.dirtyKNN[qid] = struct{}{}
	}
	e.stats.CandidateChecks += g.checks
	for _, p := range g.props {
		e.setMember(p.qs, p.os, p.in, out)
	}
}
