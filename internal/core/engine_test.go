package core

import (
	"sort"
	"testing"

	"cqp/internal/geo"
)

func newTestEngine(t *testing.T) *Engine {
	t.Helper()
	e, err := NewEngine(Options{Bounds: geo.R(0, 0, 10, 10), GridN: 8})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// sortUpdates orders updates deterministically for comparison.
func sortUpdates(us []Update) []Update {
	sort.Slice(us, func(i, j int) bool {
		if us[i].Query != us[j].Query {
			return us[i].Query < us[j].Query
		}
		if us[i].Object != us[j].Object {
			return us[i].Object < us[j].Object
		}
		return !us[i].Positive
	})
	return us
}

func updatesEqual(a, b []Update) bool {
	a, b = sortUpdates(append([]Update(nil), a...)), sortUpdates(append([]Update(nil), b...))
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestNewEngineValidation(t *testing.T) {
	if _, err := NewEngine(Options{}); err == nil {
		t.Error("empty bounds should fail")
	}
	if _, err := NewEngine(Options{Bounds: geo.R(0, 0, 1, 1), GridN: -1}); err == nil {
		t.Error("negative GridN should fail")
	}
	if _, err := NewEngine(Options{Bounds: geo.R(0, 0, 1, 1), PredictiveHorizon: -5}); err == nil {
		t.Error("negative horizon should fail")
	}
	if _, err := NewEngine(Options{Bounds: geo.R(0, 0, 1, 1)}); err != nil {
		t.Errorf("defaults should apply: %v", err)
	}
	defer func() {
		if recover() == nil {
			t.Error("MustNewEngine should panic on bad options")
		}
	}()
	MustNewEngine(Options{})
}

func TestRangeBasicLifecycle(t *testing.T) {
	e := newTestEngine(t)

	// Register a query over an empty space: no updates.
	e.ReportQuery(QueryUpdate{ID: 1, Kind: Range, Region: geo.R(2, 2, 5, 5)})
	if got := e.Step(0); len(got) != 0 {
		t.Fatalf("updates over empty space: %v", got)
	}

	// An object appears inside: one positive update.
	e.ReportObject(ObjectUpdate{ID: 10, Kind: Moving, Loc: geo.Pt(3, 3)})
	got := e.Step(1)
	want := []Update{{Query: 1, Object: 10, Positive: true}}
	if !updatesEqual(got, want) {
		t.Fatalf("appearance: got %v, want %v", got, want)
	}

	// The object moves within the region: no updates (incremental!).
	e.ReportObject(ObjectUpdate{ID: 10, Kind: Moving, Loc: geo.Pt(4, 4)})
	if got := e.Step(2); len(got) != 0 {
		t.Fatalf("intra-region move: %v", got)
	}

	// The object leaves: one negative update.
	e.ReportObject(ObjectUpdate{ID: 10, Kind: Moving, Loc: geo.Pt(8, 8)})
	got = e.Step(3)
	want = []Update{{Query: 1, Object: 10, Positive: false}}
	if !updatesEqual(got, want) {
		t.Fatalf("departure: got %v, want %v", got, want)
	}

	// Unregistering emits nothing.
	e.ReportQuery(QueryUpdate{ID: 1, Remove: true})
	if got := e.Step(4); len(got) != 0 {
		t.Fatalf("removal: %v", got)
	}
	if e.NumQueries() != 0 {
		t.Fatalf("NumQueries = %d", e.NumQueries())
	}
}

func TestRangeMovingQueryDiffOnly(t *testing.T) {
	e := newTestEngine(t)
	// Objects along a row.
	for i := 0; i < 10; i++ {
		e.ReportObject(ObjectUpdate{ID: ObjectID(i + 1), Kind: Stationary, Loc: geo.Pt(float64(i)+0.5, 5)})
	}
	e.ReportQuery(QueryUpdate{ID: 1, Kind: Range, Region: geo.R(0, 4, 4, 6)})
	got := e.Step(0)
	// Objects at x = 0.5,1.5,2.5,3.5 → ids 1..4.
	want := []Update{
		{1, 1, true}, {1, 2, true}, {1, 3, true}, {1, 4, true},
	}
	if !updatesEqual(got, want) {
		t.Fatalf("initial: got %v want %v", got, want)
	}

	// Slide the query right by 2: ids 1,2 leave; 5,6 enter; 3,4 stay
	// silent (the A_new ∩ A_old area is not re-evaluated).
	e.ReportQuery(QueryUpdate{ID: 1, Kind: Range, Region: geo.R(2, 4, 6, 6)})
	got = e.Step(1)
	want = []Update{
		{1, 1, false}, {1, 2, false},
		{1, 5, true}, {1, 6, true},
	}
	if !updatesEqual(got, want) {
		t.Fatalf("slide: got %v want %v", got, want)
	}
	if err := e.CheckConsistency(true); err != nil {
		t.Fatal(err)
	}
}

func TestObjectAndQueryMoveSameStep(t *testing.T) {
	e := newTestEngine(t)
	e.ReportObject(ObjectUpdate{ID: 1, Kind: Moving, Loc: geo.Pt(1, 1)})
	e.ReportQuery(QueryUpdate{ID: 1, Kind: Range, Region: geo.R(0, 0, 2, 2)})
	e.Step(0)

	// Object and query both jump so the object stays inside: no updates.
	e.ReportObject(ObjectUpdate{ID: 1, Kind: Moving, Loc: geo.Pt(7, 7)})
	e.ReportQuery(QueryUpdate{ID: 1, Kind: Range, Region: geo.R(6, 6, 8, 8)})
	if got := e.Step(1); len(got) != 0 {
		t.Fatalf("coordinated jump should be silent, got %v", got)
	}

	// Both jump so the object falls out: exactly one negative.
	e.ReportObject(ObjectUpdate{ID: 1, Kind: Moving, Loc: geo.Pt(1, 1)})
	e.ReportQuery(QueryUpdate{ID: 1, Kind: Range, Region: geo.R(4, 4, 5, 5)})
	got := e.Step(2)
	want := []Update{{1, 1, false}}
	if !updatesEqual(got, want) {
		t.Fatalf("divergent jump: got %v want %v", got, want)
	}
}

func TestObjectRemoval(t *testing.T) {
	e := newTestEngine(t)
	e.ReportObject(ObjectUpdate{ID: 1, Kind: Moving, Loc: geo.Pt(3, 3)})
	e.ReportQuery(QueryUpdate{ID: 1, Kind: Range, Region: geo.R(2, 2, 4, 4)})
	e.ReportQuery(QueryUpdate{ID: 2, Kind: Range, Region: geo.R(0, 0, 5, 5)})
	e.Step(0)

	e.ReportObject(ObjectUpdate{ID: 1, Remove: true})
	got := e.Step(1)
	want := []Update{{1, 1, false}, {2, 1, false}}
	if !updatesEqual(got, want) {
		t.Fatalf("removal: got %v want %v", got, want)
	}
	if e.NumObjects() != 0 {
		t.Fatalf("NumObjects = %d", e.NumObjects())
	}
	// Removing twice is a no-op.
	e.ReportObject(ObjectUpdate{ID: 1, Remove: true})
	if got := e.Step(2); len(got) != 0 {
		t.Fatalf("double removal: %v", got)
	}
}

func TestDuplicateReportsInOneBatch(t *testing.T) {
	e := newTestEngine(t)
	e.ReportQuery(QueryUpdate{ID: 1, Kind: Range, Region: geo.R(0, 0, 5, 5)})
	// The same object reports twice in one batch; only the final position
	// matters and exactly one positive update is emitted.
	e.ReportObject(ObjectUpdate{ID: 1, Kind: Moving, Loc: geo.Pt(8, 8)})
	e.ReportObject(ObjectUpdate{ID: 1, Kind: Moving, Loc: geo.Pt(2, 2)})
	got := e.Step(0)
	want := []Update{{1, 1, true}}
	if !updatesEqual(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
}

func TestAnswerAccessors(t *testing.T) {
	e := newTestEngine(t)
	if _, ok := e.Answer(99); ok {
		t.Error("unknown query should report !ok")
	}
	e.ReportObject(ObjectUpdate{ID: 3, Kind: Moving, Loc: geo.Pt(1, 1)})
	e.ReportObject(ObjectUpdate{ID: 1, Kind: Moving, Loc: geo.Pt(1.2, 1)})
	e.ReportQuery(QueryUpdate{ID: 1, Kind: Range, Region: geo.R(0, 0, 2, 2)})
	e.Step(0)
	got, ok := e.Answer(1)
	if !ok || len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("Answer = %v, %v", got, ok)
	}
	if e.NumObjects() != 2 || e.NumQueries() != 1 {
		t.Fatalf("counts: %d objects, %d queries", e.NumObjects(), e.NumQueries())
	}
	if e.Now() != 0 {
		t.Fatalf("Now = %v", e.Now())
	}
	st := e.Stats()
	if st.Steps != 1 || st.ObjectReports != 2 || st.QueryReports != 1 || st.PositiveUpdates != 2 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestQueryKindChangeReregisters(t *testing.T) {
	e := newTestEngine(t)
	e.ReportObject(ObjectUpdate{ID: 1, Kind: Moving, Loc: geo.Pt(1, 1)})
	e.ReportQuery(QueryUpdate{ID: 1, Kind: Range, Region: geo.R(0, 0, 2, 2)})
	e.Step(0)

	// Same ID re-registers as kNN; the range membership is dropped
	// silently and the kNN answer is built fresh.
	e.ReportQuery(QueryUpdate{ID: 1, Kind: KNN, Focal: geo.Pt(5, 5), K: 1})
	got := e.Step(1)
	want := []Update{{1, 1, true}}
	if !updatesEqual(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
	if err := e.CheckConsistency(true); err != nil {
		t.Fatal(err)
	}
}

func TestStationaryObjectsAndPendingCount(t *testing.T) {
	e := newTestEngine(t)
	e.ReportObject(ObjectUpdate{ID: 1, Kind: Stationary, Loc: geo.Pt(1, 1)})
	e.ReportQuery(QueryUpdate{ID: 1, Kind: Range, Region: geo.R(0, 0, 2, 2)})
	if e.Pending() != 2 {
		t.Fatalf("Pending = %d", e.Pending())
	}
	e.Step(0)
	if e.Pending() != 0 {
		t.Fatalf("Pending after Step = %d", e.Pending())
	}
}

// TestUnknownQueryKindNoSideEffects: an update with an unrecognized
// kind must be rejected before any state is touched — in particular it
// must not auto-commit an existing query's answer or overwrite its
// timestamp, and the query must keep working afterwards.
func TestUnknownQueryKindNoSideEffects(t *testing.T) {
	e := newTestEngine(t)

	// An unknown kind must not register a query at all.
	e.ReportQuery(QueryUpdate{ID: 7, Kind: QueryKind(99)})
	e.Step(0)
	if e.NumQueries() != 0 {
		t.Fatal("unknown kind registered a query")
	}

	e.ReportObject(ObjectUpdate{ID: 1, Kind: Moving, Loc: geo.Pt(2, 2), T: 1})
	e.ReportQuery(QueryUpdate{ID: 1, Kind: Range, Region: geo.R(1, 1, 3, 3), T: 1})
	e.Step(1)
	// Registration committed the then-empty answer; the object joined
	// afterwards, so the answer is uncommitted.
	if got, _ := e.Answer(1); len(got) != 1 {
		t.Fatalf("answer = %v", got)
	}
	if ca, _ := e.CommittedAnswer(1); len(ca) != 0 {
		t.Fatalf("committed = %v before the probe", ca)
	}

	e.ReportQuery(QueryUpdate{ID: 1, Kind: QueryKind(99), T: 2})
	e.Step(2)
	if ca, _ := e.CommittedAnswer(1); len(ca) != 0 {
		t.Fatalf("unknown-kind update auto-committed: %v", ca)
	}

	// The query still evaluates normally.
	e.ReportObject(ObjectUpdate{ID: 1, Kind: Moving, Loc: geo.Pt(9, 9), T: 3})
	got := e.Step(3)
	want := []Update{{Query: 1, Object: 1, Positive: false}}
	if !updatesEqual(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
	if err := e.CheckConsistency(true); err != nil {
		t.Fatal(err)
	}
}
