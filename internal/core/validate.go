package core

import (
	"fmt"
	"slices"
)

// EvalFromScratch computes the ground-truth answer of query q by brute
// force over every registered object, bypassing the grid and all
// incremental state. It exists for validation: property tests assert that
// the incrementally maintained answer always equals this oracle.
func (e *Engine) EvalFromScratch(q QueryID) ([]ObjectID, bool) {
	qs, ok := e.qrys[q]
	if !ok {
		return nil, false
	}
	var out []ObjectID
	switch qs.kind {
	case Range:
		for oid, os := range e.objs {
			if qs.region.Contains(os.loc) {
				out = append(out, oid)
			}
		}
	case KNN:
		type cand struct {
			id ObjectID
			d  float64
		}
		cands := make([]cand, 0, len(e.objs))
		for oid, os := range e.objs {
			cands = append(cands, cand{oid, qs.focal.Dist(os.loc)})
		}
		slices.SortFunc(cands, func(a, b cand) int {
			if a.d != b.d {
				if a.d < b.d {
					return -1
				}
				return 1
			}
			if a.id < b.id {
				return -1
			}
			if a.id > b.id {
				return 1
			}
			return 0
		})
		n := qs.k
		if len(cands) < n {
			n = len(cands)
		}
		for _, c := range cands[:n] {
			out = append(out, c.id)
		}
	case PredictiveRange:
		for oid, os := range e.objs {
			if e.predictedIntersects(os, qs.region, qs.t1, qs.t2) {
				out = append(out, oid)
			}
		}
	}
	slices.Sort(out)
	return out, true
}

// CheckConsistency verifies the engine's internal invariants, returning
// an error describing the first violation. Intended for tests; it is
// O(objects × queries) for the answer oracle comparison when deep is
// true, and structural-only otherwise.
//
// Invariants checked:
//   - QList/OList symmetry: o ∈ q.answer ⇔ q ∈ o.queries;
//   - every answer references live objects and vice versa;
//   - with deep: every non-kNN answer equals the brute-force oracle, and
//     every kNN answer is a valid k-nearest set (distance-equivalent to
//     the oracle, allowing ties to differ).
func (e *Engine) CheckConsistency(deep bool) error {
	for qid, qs := range e.qrys {
		var members []int32
		members = qs.answer.AppendTo(members)
		for _, h := range members {
			if h < 0 || int(h) >= len(e.objsByH) || e.objsByH[h] == nil {
				return fmt.Errorf("query %d answer references dead object handle %d", qid, h)
			}
			os := e.objsByH[h]
			if cur, ok := e.objs[os.id]; !ok || cur != os {
				return fmt.Errorf("query %d answer references unknown object %d", qid, os.id)
			}
			if !slices.Contains(os.queries, qs) {
				return fmt.Errorf("object %d missing back-reference to query %d", os.id, qid)
			}
		}
	}
	for oid, os := range e.objs {
		if os.h < 0 || int(os.h) >= len(e.objsByH) || e.objsByH[os.h] != os {
			return fmt.Errorf("object %d handle %d does not round-trip through the handle table", oid, os.h)
		}
		for _, qs := range os.queries {
			if cur, ok := e.qrys[qs.id]; !ok || cur != qs {
				return fmt.Errorf("object %d references unknown query %d", oid, qs.id)
			}
			if !qs.answer.Has(os.h) {
				return fmt.Errorf("object %d claims membership in query %d but is not in its answer", oid, qs.id)
			}
		}
	}
	for qid, qs := range e.qrys {
		if qs.h < 0 || int(qs.h) >= len(e.qrysByH) || e.qrysByH[qs.h] != qs {
			return fmt.Errorf("query %d handle %d does not round-trip through the handle table", qid, qs.h)
		}
	}
	if !deep {
		return nil
	}
	qids := make([]QueryID, 0, len(e.qrys))
	for qid := range e.qrys {
		qids = append(qids, qid)
	}
	slices.Sort(qids)
	for _, qid := range qids {
		qs := e.qrys[qid]
		want, _ := e.EvalFromScratch(qid)
		got, _ := e.Answer(qid)
		if qs.kind == KNN {
			if err := knnEquivalent(e, qs, got, want); err != nil {
				return fmt.Errorf("query %d (knn): %v", qid, err)
			}
			continue
		}
		if !equalIDs(got, want) {
			return fmt.Errorf("query %d (%v): answer %v, oracle %v", qid, qs.kind, got, want)
		}
	}
	return nil
}

// knnEquivalent accepts any answer whose sorted distance multiset matches
// the oracle's: ties at the k-th distance may legitimately resolve to
// different objects.
func knnEquivalent(e *Engine, qs *queryState, got, want []ObjectID) error {
	if len(got) != len(want) {
		return fmt.Errorf("answer size %d, oracle %d", len(got), len(want))
	}
	gd := make([]float64, len(got))
	wd := make([]float64, len(want))
	for i := range got {
		gd[i] = qs.focal.Dist(e.objs[got[i]].loc)
		wd[i] = qs.focal.Dist(e.objs[want[i]].loc)
	}
	slices.Sort(gd)
	slices.Sort(wd)
	for i := range gd {
		if diff := gd[i] - wd[i]; diff > 1e-9 || diff < -1e-9 {
			return fmt.Errorf("distance[%d] %v, oracle %v", i, gd[i], wd[i])
		}
	}
	return nil
}

func equalIDs(a, b []ObjectID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// ApplyUpdates replays an update stream onto a client-side answer set,
// exactly as a subscriber would. It is exported so clients, tests, and
// examples share one replay semantic.
func ApplyUpdates(answer map[ObjectID]struct{}, updates []Update, q QueryID) {
	for _, u := range updates {
		if u.Query != q {
			continue
		}
		if u.Positive {
			answer[u.Object] = struct{}{}
		} else {
			delete(answer, u.Object)
		}
	}
}
