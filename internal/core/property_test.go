package core

import (
	"math/rand"
	"testing"

	"cqp/internal/geo"
)

// clientState mirrors what a subscriber reconstructs from the update
// stream, including commit/recovery behaviour.
type clientState struct {
	answer map[ObjectID]struct{}
}

// TestRandomWorkloadInvariant is the central property test of the engine:
// under an arbitrary interleaving of object moves, insertions, removals,
// query registrations, movements and removals — across all three query
// kinds — replaying the emitted update stream always reproduces exactly
// the from-scratch answer of every query, and the engine's internal
// bookkeeping stays consistent.
func TestRandomWorkloadInvariant(t *testing.T) {
	seeds := []int64{1, 2, 3, 7, 1234}
	for _, seed := range seeds {
		seed := seed
		t.Run("", func(t *testing.T) {
			runRandomWorkload(t, seed, 120)
		})
	}
}

func runRandomWorkload(t *testing.T, seed int64, steps int) {
	rng := rand.New(rand.NewSource(seed))
	bounds := geo.R(0, 0, 1, 1)
	e := MustNewEngine(Options{Bounds: bounds, GridN: 1 + rng.Intn(12), PredictiveHorizon: 50})

	const (
		maxObjects = 80
		maxQueries = 25
	)
	type objInfo struct {
		kind ObjectKind
	}
	objects := map[ObjectID]objInfo{}
	queryKinds := map[QueryID]QueryKind{}
	clients := map[QueryID]*clientState{}
	nextO, nextQ := ObjectID(1), QueryID(1)

	randPoint := func() geo.Point { return geo.Pt(rng.Float64(), rng.Float64()) }
	randRegion := func() geo.Rect {
		return geo.RectAt(randPoint(), 0.02+rng.Float64()*0.3)
	}
	randVel := func() geo.Vector {
		return geo.Vec(rng.Float64()*0.1-0.05, rng.Float64()*0.1-0.05)
	}

	now := 0.0
	for step := 0; step < steps; step++ {
		now += 1
		// Queries whose removal is queued this step may still legitimately
		// receive updates emitted earlier in the same batch (object-removal
		// negatives are processed before query removals).
		var removedThisStep []QueryID
		// Mutate a random number of objects and queries.
		for n := rng.Intn(10); n > 0; n-- {
			switch {
			case len(objects) == 0 || (len(objects) < maxObjects && rng.Float64() < 0.3):
				kind := ObjectKind(rng.Intn(3))
				id := nextO
				nextO++
				objects[id] = objInfo{kind}
				e.ReportObject(ObjectUpdate{ID: id, Kind: kind, Loc: randPoint(), Vel: randVel(), T: now})
			case rng.Float64() < 0.1:
				// Remove a random object.
				var id ObjectID
				for id = range objects {
					break
				}
				delete(objects, id)
				e.ReportObject(ObjectUpdate{ID: id, Remove: true, T: now})
			default:
				// Move a random object (kind retained).
				var id ObjectID
				for id = range objects {
					break
				}
				e.ReportObject(ObjectUpdate{ID: id, Kind: objects[id].kind, Loc: randPoint(), Vel: randVel(), T: now})
			}
		}
		for n := rng.Intn(4); n > 0; n-- {
			switch {
			case len(queryKinds) == 0 || (len(queryKinds) < maxQueries && rng.Float64() < 0.4):
				kind := QueryKind(rng.Intn(3))
				id := nextQ
				nextQ++
				queryKinds[id] = kind
				clients[id] = &clientState{answer: map[ObjectID]struct{}{}}
				e.ReportQuery(randQueryUpdate(rng, id, kind, now, randRegion, randPoint))
			case rng.Float64() < 0.1:
				var id QueryID
				for id = range queryKinds {
					break
				}
				delete(queryKinds, id)
				removedThisStep = append(removedThisStep, id)
				e.ReportQuery(QueryUpdate{ID: id, Remove: true, T: now})
			default:
				// Move a random query, keeping its kind.
				var id QueryID
				for id = range queryKinds {
					break
				}
				e.ReportQuery(randQueryUpdate(rng, id, queryKinds[id], now, randRegion, randPoint))
			}
		}

		updates := e.Step(now)

		// Replay into every client.
		for _, u := range updates {
			c, ok := clients[u.Query]
			if !ok {
				t.Fatalf("step %d (seed %d): update %v for unknown query", step, seed, u)
			}
			if u.Positive {
				if _, dup := c.answer[u.Object]; dup {
					t.Fatalf("step %d (seed %d): duplicate positive %v", step, seed, u)
				}
				c.answer[u.Object] = struct{}{}
			} else {
				if _, ok := c.answer[u.Object]; !ok {
					t.Fatalf("step %d (seed %d): negative for absent member %v", step, seed, u)
				}
				delete(c.answer, u.Object)
			}
		}
		// Drop subscribers whose removal took effect during this step.
		for _, id := range removedThisStep {
			delete(clients, id)
		}

		// Every client answer must equal the engine's answer and the
		// engine's answer must match the brute-force oracle.
		for qid, c := range clients {
			got, ok := e.Answer(qid)
			if !ok {
				t.Fatalf("step %d (seed %d): engine lost query %d", step, seed, qid)
			}
			if len(got) != len(c.answer) {
				t.Fatalf("step %d (seed %d): query %d client=%d server=%d",
					step, seed, qid, len(c.answer), len(got))
			}
			for _, oid := range got {
				if _, ok := c.answer[oid]; !ok {
					t.Fatalf("step %d (seed %d): query %d client missing %d", step, seed, qid, oid)
				}
			}
		}
		if err := e.CheckConsistency(true); err != nil {
			t.Fatalf("step %d (seed %d): %v", step, seed, err)
		}
	}
}

func randQueryUpdate(rng *rand.Rand, id QueryID, kind QueryKind, now float64,
	randRegion func() geo.Rect, randPoint func() geo.Point) QueryUpdate {
	u := QueryUpdate{ID: id, Kind: kind, T: now}
	switch kind {
	case Range:
		u.Region = randRegion()
	case KNN:
		u.Focal = randPoint()
		u.K = 1 + rng.Intn(6)
	case PredictiveRange:
		u.Region = randRegion()
		u.T1 = now + rng.Float64()*10
		u.T2 = u.T1 + rng.Float64()*10
	}
	return u
}

// TestRandomRecovery interleaves disconnections (lost update batches),
// commits, and recoveries, asserting that a recovering client always
// converges to the server answer.
//
// It models the full recovery protocol: the client snapshots its answer
// whenever it commits and rolls back to that snapshot on reconnection
// before applying the server's committed→current diff. (Without the
// rollback, an object that entered and left the answer entirely within
// the uncommitted window would linger on the client.)
func TestRandomRecovery(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	e := MustNewEngine(Options{Bounds: geo.R(0, 0, 1, 1), GridN: 8})

	const q = QueryID(1)
	e.ReportQuery(QueryUpdate{ID: q, Kind: Range, Region: geo.R(0.3, 0.3, 0.7, 0.7)})
	for i := ObjectID(1); i <= 40; i++ {
		e.ReportObject(ObjectUpdate{ID: i, Kind: Moving, Loc: geo.Pt(rng.Float64(), rng.Float64())})
	}
	updates := e.Step(0)

	client := map[ObjectID]struct{}{}
	ApplyUpdates(client, updates, q)

	copySet := func(s map[ObjectID]struct{}) map[ObjectID]struct{} {
		out := make(map[ObjectID]struct{}, len(s))
		for k := range s {
			out[k] = struct{}{}
		}
		return out
	}
	e.Commit(q)
	snapshot := copySet(client)
	connected := true

	for step := 1; step <= 300; step++ {
		// Random object churn.
		for n := rng.Intn(8); n > 0; n-- {
			id := ObjectID(1 + rng.Intn(40))
			e.ReportObject(ObjectUpdate{ID: id, Kind: Moving, Loc: geo.Pt(rng.Float64(), rng.Float64()), T: float64(step)})
		}
		updates := e.Step(float64(step))

		switch {
		case connected && rng.Float64() < 0.2:
			connected = false // disconnect; this batch and later ones are lost
		case !connected && rng.Float64() < 0.3:
			// Reconnect: roll back to the commit snapshot, then apply the
			// recovery diff.
			rec, ok := e.Recover(q)
			if !ok {
				t.Fatal("Recover failed")
			}
			client = copySet(snapshot)
			ApplyUpdates(client, rec, q)
			// Recover commits server-side; mirror that on the client.
			snapshot = copySet(client)
			connected = true
		}
		if connected {
			ApplyUpdates(client, updates, q)
			if rng.Float64() < 0.3 {
				e.Commit(q)
				snapshot = copySet(client)
			}
		}

		if connected {
			server, _ := e.Answer(q)
			if len(server) != len(client) {
				t.Fatalf("step %d: client=%d server=%d", step, len(client), len(server))
			}
			for _, id := range server {
				if _, ok := client[id]; !ok {
					t.Fatalf("step %d: client missing %d", step, id)
				}
			}
		}
	}
}
