package core

import (
	"math"
	"testing"

	"cqp/internal/geo"
)

func TestKNNStarvedThenFed(t *testing.T) {
	e := newTestEngine(t)
	// k=3 with no objects at all: empty answer, no updates.
	e.ReportQuery(QueryUpdate{ID: 1, Kind: KNN, Focal: geo.Pt(5, 5), K: 3})
	if got := e.Step(0); len(got) != 0 {
		t.Fatalf("starved query emitted %v", got)
	}

	// Objects trickle in anywhere in the space; a starved kNN query must
	// capture each one no matter how far away it appears.
	e.ReportObject(ObjectUpdate{ID: 1, Kind: Moving, Loc: geo.Pt(9.9, 9.9)})
	got := e.Step(1)
	if !updatesEqual(got, []Update{{1, 1, true}}) {
		t.Fatalf("first feed: %v", got)
	}
	e.ReportObject(ObjectUpdate{ID: 2, Kind: Moving, Loc: geo.Pt(0.1, 0.1)})
	e.ReportObject(ObjectUpdate{ID: 3, Kind: Moving, Loc: geo.Pt(5, 9)})
	got = e.Step(2)
	if !updatesEqual(got, []Update{{1, 2, true}, {1, 3, true}}) {
		t.Fatalf("second feed: %v", got)
	}

	// A fourth object closer than all three displaces the farthest.
	e.ReportObject(ObjectUpdate{ID: 4, Kind: Moving, Loc: geo.Pt(5, 5.1)})
	got = e.Step(3)
	if len(got) != 2 {
		t.Fatalf("displacement: %v", got)
	}
	if err := e.CheckConsistency(true); err != nil {
		t.Fatal(err)
	}
}

func TestKNNMemberRemovalRefills(t *testing.T) {
	e := newTestEngine(t)
	for i := ObjectID(1); i <= 5; i++ {
		e.ReportObject(ObjectUpdate{ID: i, Kind: Moving, Loc: geo.Pt(float64(i), 5)})
	}
	e.ReportQuery(QueryUpdate{ID: 1, Kind: KNN, Focal: geo.Pt(0, 5), K: 2})
	e.Step(0) // answer = {1, 2}

	// Removing a member must refill from the next nearest.
	e.ReportObject(ObjectUpdate{ID: 1, Remove: true})
	got := e.Step(1)
	want := []Update{{1, 1, false}, {1, 3, true}}
	if !updatesEqual(got, want) {
		t.Fatalf("refill: got %v want %v", sortUpdates(got), sortUpdates(want))
	}

	// Removing below k leaves a short answer.
	e.ReportObject(ObjectUpdate{ID: 2, Remove: true})
	e.ReportObject(ObjectUpdate{ID: 3, Remove: true})
	e.ReportObject(ObjectUpdate{ID: 4, Remove: true})
	e.ReportObject(ObjectUpdate{ID: 5, Remove: true})
	e.Step(2)
	ans, _ := e.Answer(1)
	if len(ans) != 0 {
		t.Fatalf("after removing everything: %v", ans)
	}
	if err := e.CheckConsistency(true); err != nil {
		t.Fatal(err)
	}
}

func TestKNNMovingFocal(t *testing.T) {
	e := newTestEngine(t)
	e.ReportObject(ObjectUpdate{ID: 1, Kind: Moving, Loc: geo.Pt(1, 5)})
	e.ReportObject(ObjectUpdate{ID: 2, Kind: Moving, Loc: geo.Pt(9, 5)})
	e.ReportQuery(QueryUpdate{ID: 1, Kind: KNN, Focal: geo.Pt(0, 5), K: 1})
	got := e.Step(0)
	if !updatesEqual(got, []Update{{1, 1, true}}) {
		t.Fatalf("initial: %v", got)
	}

	// The query's client moves across the space: the answer flips.
	e.ReportQuery(QueryUpdate{ID: 1, Kind: KNN, Focal: geo.Pt(10, 5), K: 1})
	got = e.Step(1)
	want := []Update{{1, 1, false}, {1, 2, true}}
	if !updatesEqual(got, want) {
		t.Fatalf("focal move: got %v want %v", sortUpdates(got), sortUpdates(want))
	}

	// Changing k re-evaluates.
	e.ReportQuery(QueryUpdate{ID: 1, Kind: KNN, Focal: geo.Pt(10, 5), K: 2})
	got = e.Step(2)
	if !updatesEqual(got, []Update{{1, 1, true}}) {
		t.Fatalf("k change: %v", got)
	}
}

func TestKNNUntouchedByFarMovement(t *testing.T) {
	e := newTestEngine(t)
	e.ReportObject(ObjectUpdate{ID: 1, Kind: Moving, Loc: geo.Pt(5, 5)})
	e.ReportObject(ObjectUpdate{ID: 2, Kind: Moving, Loc: geo.Pt(5.2, 5)})
	e.ReportObject(ObjectUpdate{ID: 3, Kind: Moving, Loc: geo.Pt(9, 9)})
	e.ReportQuery(QueryUpdate{ID: 1, Kind: KNN, Focal: geo.Pt(5, 5), K: 2})
	e.Step(0)
	before := e.Stats().KNNRecomputes

	// A non-member moving far outside the circle must not trigger an
	// exact re-search (the dirty-circle pruning).
	e.ReportObject(ObjectUpdate{ID: 3, Kind: Moving, Loc: geo.Pt(9.5, 9.5), T: 1})
	if got := e.Step(1); len(got) != 0 {
		t.Fatalf("far movement emitted %v", got)
	}
	if after := e.Stats().KNNRecomputes; after != before {
		t.Fatalf("far movement caused %d recomputes", after-before)
	}

	// A non-member entering the circle does.
	e.ReportObject(ObjectUpdate{ID: 3, Kind: Moving, Loc: geo.Pt(5.1, 5), T: 2})
	got := e.Step(2)
	want := []Update{{1, 2, false}, {1, 3, true}}
	if !updatesEqual(got, want) {
		t.Fatalf("intrusion: got %v want %v", sortUpdates(got), sortUpdates(want))
	}
	if after := e.Stats().KNNRecomputes; after == before {
		t.Fatal("intrusion did not recompute")
	}
}

func TestKNNRadiusAccessor(t *testing.T) {
	e := newTestEngine(t)
	if _, ok := e.KNNRadius(1); ok {
		t.Error("unknown query radius should be !ok")
	}
	e.ReportQuery(QueryUpdate{ID: 1, Kind: Range, Region: geo.R(0, 0, 1, 1)})
	e.Step(0)
	if _, ok := e.KNNRadius(1); ok {
		t.Error("range query radius should be !ok")
	}
	e.ReportQuery(QueryUpdate{ID: 2, Kind: KNN, Focal: geo.Pt(0, 0), K: 1})
	e.ReportObject(ObjectUpdate{ID: 1, Kind: Moving, Loc: geo.Pt(3, 4)})
	e.Step(1)
	r, ok := e.KNNRadius(2)
	if !ok || math.Abs(r-5) > 1e-9 {
		t.Fatalf("radius = %v, %v", r, ok)
	}
}

func TestKNNManyTies(t *testing.T) {
	e := newTestEngine(t)
	// Four objects equidistant from the focal point; k=2 must pick some
	// two of them, and the engine's answer must remain a valid kNN set.
	e.ReportObject(ObjectUpdate{ID: 1, Kind: Moving, Loc: geo.Pt(4, 5)})
	e.ReportObject(ObjectUpdate{ID: 2, Kind: Moving, Loc: geo.Pt(6, 5)})
	e.ReportObject(ObjectUpdate{ID: 3, Kind: Moving, Loc: geo.Pt(5, 4)})
	e.ReportObject(ObjectUpdate{ID: 4, Kind: Moving, Loc: geo.Pt(5, 6)})
	e.ReportQuery(QueryUpdate{ID: 1, Kind: KNN, Focal: geo.Pt(5, 5), K: 2})
	got := e.Step(0)
	if len(got) != 2 {
		t.Fatalf("tie answer: %v", got)
	}
	if err := e.CheckConsistency(true); err != nil {
		t.Fatal(err)
	}
}
