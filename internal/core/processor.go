package core

import "cqp/internal/geo"

// Processor is the evaluation contract shared by every continuous query
// processor in the repository: the single-space Engine and the spatially
// sharded engine (internal/shard) both satisfy it, and the network layer
// (internal/server) is written against it exclusively.
//
// The contract mirrors the Engine's documented semantics:
//
//   - ReportObject and ReportQuery buffer reports; Step applies every
//     buffered report as one bulk evaluation at the given time and
//     returns the incremental (Q, ±A) updates in canonical order (see
//     SortUpdates). Feeding the same report stream to any Processor
//     yields a bit-identical update stream — the reproducibility the
//     out-of-sync protocol and the differential shard tests rely on.
//   - Replaying the update stream against a query's previously reported
//     answer always yields exactly its current Answer.
//   - Commit, Recover, CommittedAnswer, the checksums, and SeedCommitted
//     implement the paper's out-of-sync client protocol.
//
// Like the Engine, a Processor is not safe for concurrent use: callers
// serialize access (internal/server holds its own mutex).
type Processor interface {
	// ReportObject buffers an object update for the next Step.
	ReportObject(ObjectUpdate)
	// ReportQuery buffers a query registration, movement, or removal.
	ReportQuery(QueryUpdate)
	// Pending returns the number of buffered, not yet processed reports.
	Pending() int
	// Step processes every buffered report as one bulk evaluation at
	// time now and returns the incremental answer updates.
	Step(now float64) []Update
	// StepAppend is Step writing into a caller-owned buffer: the step's
	// updates are appended to dst (which may be nil) and the extended
	// slice is returned, with only the appended region in canonical
	// order. Per-tick callers reuse one buffer to keep evaluation
	// allocation-free.
	StepAppend(dst []Update, now float64) []Update
	// Answer returns the current answer of q in ascending ObjectID
	// order, or nil and false if q is unknown.
	Answer(q QueryID) ([]ObjectID, bool)
	// AnswerChecksum returns the order-independent checksum of q's
	// current answer.
	AnswerChecksum(q QueryID) (uint64, bool)
	// Commit records that q's client provably received the stream so
	// far; it reports whether q is registered.
	Commit(q QueryID) bool
	// CommittedAnswer returns the last committed answer of q in
	// ascending ObjectID order.
	CommittedAnswer(q QueryID) ([]ObjectID, bool)
	// CommittedChecksum returns the checksum of q's committed answer.
	CommittedChecksum(q QueryID) (uint64, bool)
	// SeedCommitted installs a committed answer for q (repository
	// restore after restart); it reports whether q is registered.
	SeedCommitted(q QueryID, objs []ObjectID) bool
	// Recover returns the updates an out-of-sync client needs: the diff
	// between the committed and current answers, which is then
	// committed.
	Recover(q QueryID) ([]Update, bool)
	// Stats returns a copy of the processor's activity counters.
	Stats() Stats
	// Now returns the evaluation timestamp of the last Step.
	Now() float64
	// Bounds returns the monitored space.
	Bounds() geo.Rect
	// NumObjects returns the number of registered objects.
	NumObjects() int
	// NumQueries returns the number of registered queries.
	NumQueries() int
}

var _ Processor = (*Engine)(nil)
