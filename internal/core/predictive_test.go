package core

import (
	"testing"

	"cqp/internal/geo"
)

func newPredictiveEngine(t *testing.T, horizon float64) *Engine {
	t.Helper()
	return MustNewEngine(Options{
		Bounds:            geo.R(0, 0, 10, 10),
		GridN:             8,
		PredictiveHorizon: horizon,
	})
}

func TestPredictiveOnlyMatchesPredictiveObjects(t *testing.T) {
	e := newPredictiveEngine(t, 50)
	// A moving (sampled) object sitting inside the region must not match:
	// its future cannot be predicted.
	e.ReportObject(ObjectUpdate{ID: 1, Kind: Moving, Loc: geo.Pt(5, 5)})
	// A stationary object must not match either (it reports no velocity);
	// model parked-but-predictable objects as Predictive with zero
	// velocity instead.
	e.ReportObject(ObjectUpdate{ID: 2, Kind: Stationary, Loc: geo.Pt(5.5, 5.5)})
	// A predictive object parked inside matches.
	e.ReportObject(ObjectUpdate{ID: 3, Kind: Predictive, Loc: geo.Pt(5.2, 5.2), Vel: geo.Vec(0, 0), T: 0})
	e.ReportQuery(QueryUpdate{ID: 1, Kind: PredictiveRange, Region: geo.R(4, 4, 6, 6), T1: 5, T2: 10})
	got := e.Step(0)
	if !updatesEqual(got, []Update{{1, 3, true}}) {
		t.Fatalf("got %v", sortUpdates(got))
	}
}

func TestPredictiveHorizonClipping(t *testing.T) {
	e := newPredictiveEngine(t, 10)
	// Object heading toward the region, arriving at t=20 — beyond the
	// 10-unit horizon of its t=0 report. The prediction is undefined
	// there, so it must not match.
	e.ReportObject(ObjectUpdate{ID: 1, Kind: Predictive, Loc: geo.Pt(0, 5), Vel: geo.Vec(0.25, 0), T: 0})
	e.ReportQuery(QueryUpdate{ID: 1, Kind: PredictiveRange, Region: geo.R(4.9, 4.5, 5.5, 5.5), T1: 19, T2: 21, T: 0})
	if got := e.Step(0); len(got) != 0 {
		t.Fatalf("beyond-horizon match: %v", got)
	}

	// A fresh report at t=15 brings the window within the horizon.
	e.ReportObject(ObjectUpdate{ID: 1, Kind: Predictive, Loc: geo.Pt(3.75, 5), Vel: geo.Vec(0.25, 0), T: 15})
	got := e.Step(15)
	if !updatesEqual(got, []Update{{1, 1, true}}) {
		t.Fatalf("within-horizon: %v", got)
	}
	if err := e.CheckConsistency(true); err != nil {
		t.Fatal(err)
	}
}

func TestPredictiveWindowInThePast(t *testing.T) {
	e := newPredictiveEngine(t, 50)
	// The object's report postdates the whole query window: the window
	// clips to empty and the object cannot match, even though backward
	// extrapolation would cross the region.
	e.ReportObject(ObjectUpdate{ID: 1, Kind: Predictive, Loc: geo.Pt(5, 5), Vel: geo.Vec(1, 0), T: 30})
	e.ReportQuery(QueryUpdate{ID: 1, Kind: PredictiveRange, Region: geo.R(4, 4, 6, 6), T1: 10, T2: 20, T: 30})
	if got := e.Step(30); len(got) != 0 {
		t.Fatalf("past window matched: %v", got)
	}
}

func TestPredictiveQueryMoves(t *testing.T) {
	e := newPredictiveEngine(t, 100)
	e.ReportObject(ObjectUpdate{ID: 1, Kind: Predictive, Loc: geo.Pt(1, 5), Vel: geo.Vec(0.5, 0), T: 0})
	e.ReportObject(ObjectUpdate{ID: 2, Kind: Predictive, Loc: geo.Pt(1, 1), Vel: geo.Vec(0.5, 0), T: 0})
	// Window [6,8]: object 1 spans x ∈ [4,5] at y=5; object 2 the same at
	// y=1.
	e.ReportQuery(QueryUpdate{ID: 1, Kind: PredictiveRange, Region: geo.R(4, 4.5, 5, 5.5), T1: 6, T2: 8, T: 0})
	got := e.Step(0)
	if !updatesEqual(got, []Update{{1, 1, true}}) {
		t.Fatalf("initial: %v", got)
	}

	// The query slides down to straddle object 2's track instead.
	e.ReportQuery(QueryUpdate{ID: 1, Kind: PredictiveRange, Region: geo.R(4, 0.5, 5, 1.5), T1: 6, T2: 8, T: 1})
	got = e.Step(1)
	want := []Update{{1, 1, false}, {1, 2, true}}
	if !updatesEqual(got, want) {
		t.Fatalf("slide: got %v want %v", sortUpdates(got), sortUpdates(want))
	}

	// Narrowing the window past both tracks empties the answer.
	e.ReportQuery(QueryUpdate{ID: 1, Kind: PredictiveRange, Region: geo.R(4, 0.5, 5, 1.5), T1: 20, T2: 25, T: 2})
	got = e.Step(2)
	if !updatesEqual(got, []Update{{1, 2, false}}) {
		t.Fatalf("window change: %v", got)
	}
	if err := e.CheckConsistency(true); err != nil {
		t.Fatal(err)
	}
}

func TestPredictiveObjectBecomesMoving(t *testing.T) {
	e := newPredictiveEngine(t, 50)
	e.ReportObject(ObjectUpdate{ID: 1, Kind: Predictive, Loc: geo.Pt(5, 5), Vel: geo.Vec(0, 0), T: 0})
	e.ReportQuery(QueryUpdate{ID: 1, Kind: PredictiveRange, Region: geo.R(4, 4, 6, 6), T1: 1, T2: 5, T: 0})
	e.Step(0)

	// The object downgrades to sampled reports (loses its velocity
	// sensor): it can no longer satisfy predictive queries.
	e.ReportObject(ObjectUpdate{ID: 1, Kind: Moving, Loc: geo.Pt(5, 5), T: 1})
	got := e.Step(1)
	if !updatesEqual(got, []Update{{1, 1, false}}) {
		t.Fatalf("downgrade: %v", got)
	}
	if err := e.CheckConsistency(true); err != nil {
		t.Fatal(err)
	}
}

func TestPredictiveRemovalAndStats(t *testing.T) {
	e := newPredictiveEngine(t, 50)
	e.ReportObject(ObjectUpdate{ID: 1, Kind: Predictive, Loc: geo.Pt(5, 5), Vel: geo.Vec(0, 0), T: 0})
	e.ReportQuery(QueryUpdate{ID: 1, Kind: PredictiveRange, Region: geo.R(4, 4, 6, 6), T1: 1, T2: 5, T: 0})
	e.Step(0)
	e.ReportObject(ObjectUpdate{ID: 1, Remove: true})
	got := e.Step(1)
	if !updatesEqual(got, []Update{{1, 1, false}}) {
		t.Fatalf("removal: %v", got)
	}
	if e.NumObjects() != 0 {
		t.Fatalf("NumObjects = %d", e.NumObjects())
	}
	st := e.Stats()
	if st.CandidateChecks == 0 || st.RegionEvalCells == 0 {
		t.Fatalf("stats not recorded: %+v", st)
	}
}
