package core

import (
	"math/rand"
	"sort"
	"testing"

	"cqp/internal/geo"
)

// This file pins the reproducibility half of the update-stream contract:
// Step output is in the canonical order of SortUpdates, identical runs
// produce identical streams (bit-for-bit, not just as multisets), and
// the recovery surfaces (Recover, CommittedAnswer, checksums) are
// independent of map iteration order. These are the invariants cqp-lint's
// maporder/determinism analyzers enforce mechanically; the tests keep
// them honest at runtime.

// driveRandom feeds a deterministic random workload to eng, returning
// the concatenated update stream with step boundaries marked by index.
func driveRandom(eng *Engine, seed int64, steps int) [][]Update {
	rng := rand.New(rand.NewSource(seed))
	streams := make([][]Update, 0, steps)
	for step := 0; step < steps; step++ {
		now := float64(step)
		for n := 0; n < 60; n++ {
			u := ObjectUpdate{
				ID:   ObjectID(1 + rng.Intn(150)),
				Kind: ObjectKind(rng.Intn(3)),
				Loc:  geo.Pt(rng.Float64(), rng.Float64()),
				Vel:  geo.Vec(rng.Float64()*0.02-0.01, rng.Float64()*0.02-0.01),
				T:    now,
			}
			if rng.Float64() < 0.05 {
				u = ObjectUpdate{ID: u.ID, Remove: true, T: now}
			}
			eng.ReportObject(u)
		}
		for n := 0; n < 6; n++ {
			q := QueryUpdate{ID: QueryID(1 + rng.Intn(25)), T: now}
			switch rng.Intn(3) {
			case 0:
				q.Kind = Range
				q.Region = geo.RectAt(geo.Pt(rng.Float64(), rng.Float64()), 0.1+rng.Float64()*0.2)
			case 1:
				q.Kind = KNN
				q.Focal = geo.Pt(rng.Float64(), rng.Float64())
				q.K = 1 + rng.Intn(5)
			case 2:
				q.Kind = PredictiveRange
				q.Region = geo.RectAt(geo.Pt(rng.Float64(), rng.Float64()), 0.2)
				q.T1, q.T2 = now+2, now+20
			}
			eng.ReportQuery(q)
		}
		streams = append(streams, eng.Step(now))
	}
	return streams
}

func inCanonicalOrder(us []Update) bool {
	for i := 1; i < len(us); i++ {
		a, b := us[i-1], us[i]
		if a.Query > b.Query || (a.Query == b.Query && a.Object > b.Object) {
			return false
		}
	}
	return true
}

func streamsIdentical(a, b [][]Update) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

// TestStepCanonicalOrder asserts every Step output is sorted by
// (Query, Object).
func TestStepCanonicalOrder(t *testing.T) {
	eng := MustNewEngine(Options{Bounds: geo.R(0, 0, 1, 1), GridN: 12})
	for i, stream := range driveRandom(eng, 7, 60) {
		if !inCanonicalOrder(stream) {
			t.Fatalf("step %d emitted out of canonical order: %v", i, stream)
		}
	}
}

// TestStepStreamReproducible runs the same workload through a serial
// engine, a second serial engine, and a parallel one, and requires the
// three update streams to be identical element-for-element — the
// bit-reproducibility the server's per-client streams inherit.
func TestStepStreamReproducible(t *testing.T) {
	opt := Options{Bounds: geo.R(0, 0, 1, 1), GridN: 12}
	popt := opt
	popt.Parallelism = 4

	first := driveRandom(MustNewEngine(opt), 99, 60)
	second := driveRandom(MustNewEngine(opt), 99, 60)
	parallel := driveRandom(MustNewEngine(popt), 99, 60)

	if !streamsIdentical(first, second) {
		t.Fatal("two serial runs of the same workload produced different update streams")
	}
	if !streamsIdentical(first, parallel) {
		t.Fatal("parallel gather changed the update stream relative to the serial engine")
	}
}

// TestRecoverPinnedOrder pins Recover's documented output order exactly:
// negatives in ascending ObjectID order first (the client prunes before
// it grows), then positives in ascending ObjectID order.
func TestRecoverPinnedOrder(t *testing.T) {
	eng := MustNewEngine(Options{Bounds: geo.R(0, 0, 10, 10), GridN: 4})
	const q = QueryID(1)
	eng.ReportQuery(QueryUpdate{ID: q, Kind: Range, Region: geo.R(0, 0, 5, 5)})
	for _, o := range []ObjectID{4, 2, 9, 7} {
		eng.ReportObject(ObjectUpdate{ID: o, Loc: geo.Pt(1, 1)})
	}
	eng.Step(1)
	if !eng.Commit(q) {
		t.Fatal("commit failed")
	}
	// Drift the answer: 2 and 7 leave, 12 and 11 arrive.
	eng.ReportObject(ObjectUpdate{ID: 2, Loc: geo.Pt(9, 9)})
	eng.ReportObject(ObjectUpdate{ID: 7, Remove: true})
	eng.ReportObject(ObjectUpdate{ID: 12, Loc: geo.Pt(2, 2)})
	eng.ReportObject(ObjectUpdate{ID: 11, Loc: geo.Pt(3, 3)})
	eng.Step(2)

	got, ok := eng.Recover(q)
	if !ok {
		t.Fatal("recover failed")
	}
	want := []Update{
		{Query: q, Object: 2, Positive: false},
		{Query: q, Object: 7, Positive: false},
		{Query: q, Object: 11, Positive: true},
		{Query: q, Object: 12, Positive: true},
	}
	if len(got) != len(want) {
		t.Fatalf("recover diff = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("recover diff[%d] = %v, want %v (full: %v)", i, got[i], want[i], got)
		}
	}
}

// TestCommittedAnswerSorted pins CommittedAnswer's ascending order.
func TestCommittedAnswerSorted(t *testing.T) {
	eng := MustNewEngine(Options{Bounds: geo.R(0, 0, 10, 10), GridN: 4})
	const q = QueryID(3)
	eng.ReportQuery(QueryUpdate{ID: q, Kind: Range, Region: geo.R(0, 0, 5, 5)})
	for _, o := range []ObjectID{31, 5, 17, 2, 23} {
		eng.ReportObject(ObjectUpdate{ID: o, Loc: geo.Pt(1, 1)})
	}
	eng.Step(1)
	eng.Commit(q)
	got, ok := eng.CommittedAnswer(q)
	if !ok {
		t.Fatal("query lost")
	}
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Fatalf("committed answer not sorted: %v", got)
	}
	if len(got) != 5 {
		t.Fatalf("committed answer = %v, want 5 members", got)
	}
}

// TestChecksumOrderIndependent verifies the XOR fold behind the
// out-of-sync handshake really is permutation-invariant — the property
// the //lint:allow annotation on checksumSet claims.
func TestChecksumOrderIndependent(t *testing.T) {
	ids := []ObjectID{10, 99, 3, 42, 77, 5, 123456789}
	want := ChecksumIDs(ids)
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		rng.Shuffle(len(ids), func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
		if got := ChecksumIDs(ids); got != want {
			t.Fatalf("checksum depends on order: %x != %x for %v", got, want, ids)
		}
	}
	// And the set-based checksum agrees with the slice-based one.
	eng := MustNewEngine(Options{Bounds: geo.R(0, 0, 10, 10), GridN: 4})
	const q = QueryID(1)
	eng.ReportQuery(QueryUpdate{ID: q, Kind: Range, Region: geo.R(0, 0, 5, 5)})
	for _, o := range []ObjectID{10, 99, 3} {
		eng.ReportObject(ObjectUpdate{ID: o, Loc: geo.Pt(1, 1)})
	}
	eng.Step(1)
	ans, _ := eng.Answer(q)
	sum, ok := eng.AnswerChecksum(q)
	if !ok || sum != ChecksumIDs(ans) {
		t.Fatalf("AnswerChecksum %x != ChecksumIDs(answer) %x", sum, ChecksumIDs(ans))
	}
}

// TestRemoveObjectOrderedNegatives pins that a removed object's
// retraction stream arrives in ascending query order within the sorted
// step output.
func TestRemoveObjectOrderedNegatives(t *testing.T) {
	eng := MustNewEngine(Options{Bounds: geo.R(0, 0, 10, 10), GridN: 4})
	for _, q := range []QueryID{8, 1, 5, 3} {
		eng.ReportQuery(QueryUpdate{ID: q, Kind: Range, Region: geo.R(0, 0, 5, 5)})
	}
	eng.ReportObject(ObjectUpdate{ID: 42, Loc: geo.Pt(1, 1)})
	eng.Step(1)

	eng.ReportObject(ObjectUpdate{ID: 42, Remove: true})
	got := eng.Step(2)
	want := []Update{
		{Query: 1, Object: 42, Positive: false},
		{Query: 3, Object: 42, Positive: false},
		{Query: 5, Object: 42, Positive: false},
		{Query: 8, Object: 42, Positive: false},
	}
	if len(got) != len(want) {
		t.Fatalf("removal stream = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("removal stream[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

// TestSortUpdatesStable verifies that canonical sorting preserves the
// relative order of updates for the same (Query, Object) pair, so a
// −/+ sequence (leave then re-enter within one step) replays correctly.
func TestSortUpdatesStable(t *testing.T) {
	us := []Update{
		{Query: 2, Object: 7, Positive: true},
		{Query: 1, Object: 9, Positive: false},
		{Query: 1, Object: 9, Positive: true},
		{Query: 1, Object: 3, Positive: true},
	}
	SortUpdates(us)
	want := []Update{
		{Query: 1, Object: 3, Positive: true},
		{Query: 1, Object: 9, Positive: false},
		{Query: 1, Object: 9, Positive: true},
		{Query: 2, Object: 7, Positive: true},
	}
	for i := range want {
		if us[i] != want[i] {
			t.Fatalf("SortUpdates[%d] = %v, want %v (full: %v)", i, us[i], want[i], us)
		}
	}
}
