package core

import (
	"math/bits"
	"slices"
)

// Commit records that the client of query q has provably received the
// update stream so far: the current answer becomes the committed answer.
// Stationary queries send explicit commit messages (paper §3.3); moving
// queries commit implicitly whenever the server hears from them, which
// applyQueryUpdate performs automatically. Commit reports whether q is
// registered.
func (e *Engine) Commit(q QueryID) bool {
	qs, ok := e.qrys[q]
	if !ok {
		return false
	}
	e.commit(qs)
	return true
}

func (e *Engine) commit(qs *queryState) {
	// No membership change since the last snapshot: committed already
	// equals the answer, so the rebuild below would reproduce it. (An
	// object removal that could invalidate a committed ID always went
	// through setMember first, clearing the flag.)
	if qs.snapClean {
		return
	}
	// Reuse the previous committed snapshot's storage: moving queries
	// auto-commit on every report, so allocating a fresh snapshot per
	// report dominated the query-move path's allocation profile. The
	// answer holds handles; the snapshot stores ObjectIDs, because the
	// committed set can outlive its members (see queryState.committed).
	dst := qs.committed[:0]
	if qs.answer.bits != nil {
		for wi, w := range qs.answer.bits {
			base := int32(wi << 6)
			for w != 0 {
				h := base + int32(bits.TrailingZeros64(w))
				w &= w - 1
				dst = append(dst, e.idByH[h])
			}
		}
	} else {
		for _, h := range qs.answer.small {
			dst = append(dst, e.idByH[h])
		}
	}
	qs.committed = dst
	qs.snapClean = true
}

// Recover computes the updates an out-of-sync client needs after a
// disconnection: the difference between the last committed answer and the
// current answer, as positive and negative updates. The result is far
// smaller than resending the whole answer when the disconnection was
// short (the paper's motivating case). The recovered state is then
// committed, since the client receives it as part of reconnecting.
//
// A query that has never committed recovers from the empty answer, i.e.
// the full current answer is returned as positive updates — equivalent to
// the naive wakeup protocol.
//
// The second result reports whether q is registered.
func (e *Engine) Recover(q QueryID) ([]Update, bool) {
	qs, ok := e.qrys[q]
	if !ok {
		return nil, false
	}
	// The snapshot is unordered (commit is the hot path and appends
	// blindly); sort it here so membership tests are binary searches.
	// Recover is rare, and the snapshot is rewritten below anyway.
	slices.Sort(qs.committed)
	var out []Update
	for _, oid := range qs.committed {
		if os, live := e.objs[oid]; !live || !qs.answer.Has(os.h) {
			out = append(out, Update{Query: q, Object: oid, Positive: false})
		}
	}
	members := qs.answer.AppendTo(e.hBuf[:0])
	e.hBuf = members
	for _, h := range members {
		oid := e.idByH[h]
		if _, ok := slices.BinarySearch(qs.committed, oid); !ok {
			out = append(out, Update{Query: q, Object: oid, Positive: true})
		}
	}
	slices.SortFunc(out, compareRecovery)
	e.commit(qs)
	return out, true
}

// compareRecovery orders a recovery diff: negatives first (the client
// prunes before it grows), then ascending ObjectID.
func compareRecovery(a, b Update) int {
	if a.Positive != b.Positive {
		if !a.Positive {
			return -1
		}
		return 1
	}
	if a.Object < b.Object {
		return -1
	}
	if a.Object > b.Object {
		return 1
	}
	return 0
}

// CommittedAnswer returns the last committed answer of q in ascending
// ObjectID order. The second result is false if q is unknown; a
// registered query that has never committed returns an empty slice.
func (e *Engine) CommittedAnswer(q QueryID) ([]ObjectID, bool) {
	qs, ok := e.qrys[q]
	if !ok {
		return nil, false
	}
	out := append(make([]ObjectID, 0, len(qs.committed)), qs.committed...)
	slices.Sort(out)
	return out, true
}
