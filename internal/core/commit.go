package core

import "slices"

// Commit records that the client of query q has provably received the
// update stream so far: the current answer becomes the committed answer.
// Stationary queries send explicit commit messages (paper §3.3); moving
// queries commit implicitly whenever the server hears from them, which
// applyQueryUpdate performs automatically. Commit reports whether q is
// registered.
func (e *Engine) Commit(q QueryID) bool {
	qs, ok := e.qrys[q]
	if !ok {
		return false
	}
	e.commit(qs)
	return true
}

func (e *Engine) commit(qs *queryState) {
	// Reuse the previous committed map: moving queries auto-commit on
	// every report, so allocating a fresh snapshot per report dominated
	// the query-move path's allocation profile.
	if qs.committed == nil {
		qs.committed = make(map[ObjectID]struct{}, len(qs.answer))
	} else {
		clear(qs.committed)
	}
	for oid := range qs.answer {
		qs.committed[oid] = struct{}{}
	}
}

// Recover computes the updates an out-of-sync client needs after a
// disconnection: the difference between the last committed answer and the
// current answer, as positive and negative updates. The result is far
// smaller than resending the whole answer when the disconnection was
// short (the paper's motivating case). The recovered state is then
// committed, since the client receives it as part of reconnecting.
//
// A query that has never committed recovers from the empty answer, i.e.
// the full current answer is returned as positive updates — equivalent to
// the naive wakeup protocol.
//
// The second result reports whether q is registered.
func (e *Engine) Recover(q QueryID) ([]Update, bool) {
	qs, ok := e.qrys[q]
	if !ok {
		return nil, false
	}
	var out []Update
	for oid := range qs.committed {
		if _, still := qs.answer[oid]; !still {
			out = append(out, Update{Query: q, Object: oid, Positive: false})
		}
	}
	for oid := range qs.answer {
		if _, had := qs.committed[oid]; !had {
			out = append(out, Update{Query: q, Object: oid, Positive: true})
		}
	}
	slices.SortFunc(out, compareRecovery)
	e.commit(qs)
	return out, true
}

// compareRecovery orders a recovery diff: negatives first (the client
// prunes before it grows), then ascending ObjectID.
func compareRecovery(a, b Update) int {
	if a.Positive != b.Positive {
		if !a.Positive {
			return -1
		}
		return 1
	}
	if a.Object < b.Object {
		return -1
	}
	if a.Object > b.Object {
		return 1
	}
	return 0
}

// CommittedAnswer returns the last committed answer of q in ascending
// ObjectID order. The second result is false if q is unknown; a
// registered query that has never committed returns an empty slice.
func (e *Engine) CommittedAnswer(q QueryID) ([]ObjectID, bool) {
	qs, ok := e.qrys[q]
	if !ok {
		return nil, false
	}
	out := make([]ObjectID, 0, len(qs.committed))
	for oid := range qs.committed {
		out = append(out, oid)
	}
	slices.Sort(out)
	return out, true
}
