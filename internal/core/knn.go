package core

// notQueryKey filters a grid search down to object entries. Package-level
// so passing it as a callback never allocates a closure.
func notQueryKey(k uint64) bool { return !keyIsQuery(k) }

// recomputeKNN performs an exact k-nearest-neighbor search for a dirty
// kNN query, emits the diff against the stored answer, and re-registers
// the query's circular region in the grid. (The parallel phase-4 path
// performs the same transitions split into gatherKNN/applyGatheredKNN;
// see join.go.)
//
// Following the paper, a kNN query lives in the grid "as the smallest
// circular region that contains the k nearest objects": a focal-centered
// circle whose radius is the distance to the k-th neighbor. Membership
// changes are detected cheaply (a member moved, or a non-member intruded
// into the circle) and trigger this exact re-search; the emitted updates
// are only the diff, e.g. (Q, −p2) (Q, +p1) when p1 displaces p2.
//
// The neighbor list and the drop/add diff live in engine scratch reused
// across recomputes, so steady-state kNN upkeep does not allocate. The
// diff is emitted in search/answer order, not sorted: the step's
// canonical sort fixes the stream, and no pair appears twice.
func (e *Engine) recomputeKNN(qs *queryState, out *[]Update) {
	e.stats.KNNRecomputes++

	neighbors := e.g.KNearestAppend(e.knnBuf[:0], qs.focal, qs.k, notQueryKey)
	e.knnBuf = neighbors
	radius := 0.0
	for _, n := range neighbors {
		if n.Dist > radius {
			radius = n.Dist
		}
	}

	// Diff against the stored answer (collected first: setMember mutates
	// qs.answer mid-iteration otherwise).
	drop, add := e.knnDrop[:0], e.knnAdd[:0]
	members := qs.answer.AppendTo(e.hBuf[:0])
	e.hBuf = members
	for _, h := range members {
		if !neighborsContain(neighbors, h) {
			drop = append(drop, h)
		}
	}
	for _, n := range neighbors {
		if h := int32(n.ID >> 1); !qs.answer.Has(h) {
			add = append(add, h)
		}
	}
	for _, h := range drop {
		e.setMember(qs, e.objsByH[h], false, out)
	}
	for _, h := range add {
		// Pre-filtered against the answer above — provably absent.
		e.setMemberNew(qs, e.objsByH[h], out)
	}
	e.knnDrop, e.knnAdd = drop, add

	e.reRegisterKNN(qs, len(neighbors), radius)
}

// KNNRadius returns the current circle radius of a kNN query (the
// distance to its k-th neighbor), or false if q is not a registered kNN
// query. Exposed for tests and monitoring.
func (e *Engine) KNNRadius(q QueryID) (float64, bool) {
	qs, ok := e.qrys[q]
	if !ok || qs.kind != KNN {
		return 0, false
	}
	return qs.radius, true
}
