package core

import (
	"slices"

	"cqp/internal/geo"
)

// notQueryKey filters a grid search down to object entries. Package-level
// so passing it as a callback never allocates a closure.
func notQueryKey(k uint64) bool { return !keyIsQuery(k) }

// recomputeKNN performs an exact k-nearest-neighbor search for a dirty
// kNN query, emits the diff against the stored answer, and re-registers
// the query's circular region in the grid.
//
// Following the paper, a kNN query lives in the grid "as the smallest
// circular region that contains the k nearest objects": a focal-centered
// circle whose radius is the distance to the k-th neighbor. Membership
// changes are detected cheaply (a member moved, or a non-member intruded
// into the circle) and trigger this exact re-search; the emitted updates
// are only the diff, e.g. (Q, −p2) (Q, +p1) when p1 displaces p2.
//
// The neighbor list, the next-answer set, and the drop/add diff all live
// in engine scratch reused across recomputes, so steady-state kNN upkeep
// does not allocate.
func (e *Engine) recomputeKNN(qs *queryState, out *[]Update) {
	e.stats.KNNRecomputes++

	neighbors := e.g.KNearestAppend(e.knnBuf, qs.focal, qs.k, notQueryKey)
	e.knnBuf = neighbors

	clear(e.knnNew)
	newAnswer := e.knnNew
	radius := 0.0
	for _, n := range neighbors {
		newAnswer[keyObject(n.ID)] = struct{}{}
		if n.Dist > radius {
			radius = n.Dist
		}
	}

	// Emit the diff in object order (collect first: setMember mutates
	// qs.answer; sort so the update stream never inherits map order).
	drop, add := e.knnDrop[:0], e.knnAdd[:0]
	for oid := range qs.answer {
		if _, keep := newAnswer[oid]; !keep {
			drop = append(drop, oid)
		}
	}
	for oid := range newAnswer {
		if _, had := qs.answer[oid]; !had {
			add = append(add, oid)
		}
	}
	slices.Sort(drop)
	slices.Sort(add)
	for _, oid := range drop {
		e.setMember(qs, e.objs[oid], false, out)
	}
	for _, oid := range add {
		e.setMember(qs, e.objs[oid], true, out)
	}
	e.knnDrop, e.knnAdd = drop, add

	// Region maintenance: while the query is starved (fewer than k objects
	// exist) any insertion anywhere can extend the answer, so the query
	// watches the whole space.
	var region geo.Rect
	if len(newAnswer) < qs.k {
		region = e.g.Bounds()
	} else {
		region = geo.Circle{C: qs.focal, R: radius}.BBox()
	}
	if qs.registered {
		e.g.MoveRegion(qkey(qs.id), qs.region, region)
	} else {
		e.g.InsertRegion(qkey(qs.id), region)
		qs.registered = true
	}
	qs.region = region
	qs.radius = radius
}

// KNNRadius returns the current circle radius of a kNN query (the
// distance to its k-th neighbor), or false if q is not a registered kNN
// query. Exposed for tests and monitoring.
func (e *Engine) KNNRadius(q QueryID) (float64, bool) {
	qs, ok := e.qrys[q]
	if !ok || qs.kind != KNN {
		return 0, false
	}
	return qs.radius, true
}
