package core

import (
	"math/rand"
	"testing"

	"cqp/internal/geo"
)

// TestTrajectoryRepresentation exercises the paper's trajectory movement
// representation end to end: a route-planned object reports timed
// waypoints and predictive queries evaluate against the polyline.
func TestTrajectoryRepresentation(t *testing.T) {
	e := MustNewEngine(Options{Bounds: geo.R(0, 0, 10, 10), GridN: 8, PredictiveHorizon: 100})

	// A delivery van: east along y=1, then north along x=9.
	e.ReportObject(ObjectUpdate{
		ID: 1, Kind: Predictive, Loc: geo.Pt(1, 1), T: 0,
		Waypoints: []geo.TimedPoint{
			{P: geo.Pt(9, 1), T: 20},
			{P: geo.Pt(9, 9), T: 40},
		},
	})
	// Zone A straddles the first leg; zone B the second; zone C neither.
	e.ReportQuery(QueryUpdate{ID: 1, Kind: PredictiveRange, Region: geo.R(4, 0.5, 6, 1.5), T1: 5, T2: 15})
	e.ReportQuery(QueryUpdate{ID: 2, Kind: PredictiveRange, Region: geo.R(8.5, 4, 9.5, 6), T1: 25, T2: 35})
	e.ReportQuery(QueryUpdate{ID: 3, Kind: PredictiveRange, Region: geo.R(1, 8, 3, 9), T1: 0, T2: 100})
	got := e.Step(0)
	want := []Update{{1, 1, true}, {2, 1, true}}
	if !updatesEqual(got, want) {
		t.Fatalf("got %v want %v", sortUpdates(got), sortUpdates(want))
	}

	// A window that misses the van's passage through zone A.
	e.ReportQuery(QueryUpdate{ID: 1, Kind: PredictiveRange, Region: geo.R(4, 0.5, 6, 1.5), T1: 15, T2: 18, T: 1})
	got = e.Step(1)
	if !updatesEqual(got, []Update{{1, 1, false}}) {
		t.Fatalf("window shift: %v", got)
	}

	// The van re-plans: turns around at (5,1) heading back west. Zone B is
	// no longer crossed — and the return trip passes back through zone A
	// exactly during its (shifted) window, so Q1 regains the van.
	e.ReportObject(ObjectUpdate{
		ID: 1, Kind: Predictive, Loc: geo.Pt(5, 1), T: 10,
		Waypoints: []geo.TimedPoint{{P: geo.Pt(1, 1), T: 30}},
	})
	got = e.Step(10)
	want = []Update{{2, 1, false}, {1, 1, true}}
	if !updatesEqual(got, want) {
		t.Fatalf("re-plan: got %v want %v", sortUpdates(got), sortUpdates(want))
	}
	if err := e.CheckConsistency(true); err != nil {
		t.Fatal(err)
	}
}

func TestTrajectoryDestinationHoldMatches(t *testing.T) {
	e := MustNewEngine(Options{Bounds: geo.R(0, 0, 10, 10), GridN: 8, PredictiveHorizon: 100})
	// The object arrives inside the region at t=10 and parks there; a
	// much later window must still match (the hold is part of the
	// prediction).
	e.ReportObject(ObjectUpdate{
		ID: 1, Kind: Predictive, Loc: geo.Pt(0, 0), T: 0,
		Waypoints: []geo.TimedPoint{{P: geo.Pt(5, 5), T: 10}},
	})
	e.ReportQuery(QueryUpdate{ID: 1, Kind: PredictiveRange, Region: geo.R(4, 4, 6, 6), T1: 50, T2: 60})
	got := e.Step(0)
	if !updatesEqual(got, []Update{{1, 1, true}}) {
		t.Fatalf("hold: %v", got)
	}
}

func TestInvalidTrajectoryRejected(t *testing.T) {
	e := MustNewEngine(Options{Bounds: geo.R(0, 0, 10, 10), GridN: 8})
	e.ReportQuery(QueryUpdate{ID: 1, Kind: Range, Region: geo.R(0, 0, 2, 2)})
	e.Step(0)

	// Non-increasing waypoint times: the report is dropped entirely (the
	// object is not created).
	e.ReportObject(ObjectUpdate{
		ID: 1, Kind: Predictive, Loc: geo.Pt(1, 1), T: 10,
		Waypoints: []geo.TimedPoint{{P: geo.Pt(2, 2), T: 5}},
	})
	if got := e.Step(1); len(got) != 0 {
		t.Fatalf("invalid trajectory produced %v", got)
	}
	if e.NumObjects() != 0 {
		t.Fatalf("invalid trajectory created object")
	}

	// A later valid report works normally.
	e.ReportObject(ObjectUpdate{ID: 1, Kind: Predictive, Loc: geo.Pt(1, 1), T: 12,
		Waypoints: []geo.TimedPoint{{P: geo.Pt(2, 2), T: 15}}})
	got := e.Step(2)
	if !updatesEqual(got, []Update{{1, 1, true}}) {
		t.Fatalf("valid follow-up: %v", got)
	}
}

// TestTrajectoryRandomWorkload extends the central replay invariant to
// trajectory-reporting objects.
func TestTrajectoryRandomWorkload(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	e := MustNewEngine(Options{Bounds: geo.R(0, 0, 1, 1), GridN: 8, PredictiveHorizon: 100})

	clients := map[QueryID]map[ObjectID]struct{}{}
	now := 0.0
	for q := QueryID(1); q <= 8; q++ {
		u := QueryUpdate{
			ID: q, Kind: PredictiveRange,
			Region: geo.RectAt(geo.Pt(rng.Float64(), rng.Float64()), 0.1+rng.Float64()*0.2),
			T1:     rng.Float64() * 20, T2: 20 + rng.Float64()*20,
		}
		e.ReportQuery(u)
		clients[q] = map[ObjectID]struct{}{}
	}

	for step := 0; step < 60; step++ {
		now += 1
		for n := rng.Intn(6); n > 0; n-- {
			id := ObjectID(1 + rng.Intn(30))
			u := ObjectUpdate{ID: id, Kind: Predictive, Loc: geo.Pt(rng.Float64(), rng.Float64()), T: now}
			if rng.Float64() < 0.7 {
				// Trajectory representation with 1–3 waypoints.
				wt := now
				for legs := 1 + rng.Intn(3); legs > 0; legs-- {
					wt += 1 + rng.Float64()*10
					u.Waypoints = append(u.Waypoints, geo.TimedPoint{
						P: geo.Pt(rng.Float64(), rng.Float64()), T: wt,
					})
				}
			} else {
				u.Vel = geo.Vec(rng.Float64()*0.02-0.01, rng.Float64()*0.02-0.01)
			}
			e.ReportObject(u)
		}
		updates := e.Step(now)
		for _, u := range updates {
			if u.Positive {
				clients[u.Query][u.Object] = struct{}{}
			} else {
				delete(clients[u.Query], u.Object)
			}
		}
		for q, ans := range clients {
			oracle, _ := e.EvalFromScratch(q)
			if len(oracle) != len(ans) {
				t.Fatalf("step %d query %d: client=%d oracle=%v", step, q, len(ans), oracle)
			}
			for _, id := range oracle {
				if _, ok := ans[id]; !ok {
					t.Fatalf("step %d query %d: missing %d", step, q, id)
				}
			}
		}
		if err := e.CheckConsistency(true); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
	}
}
