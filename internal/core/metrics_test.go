package core

import (
	"fmt"
	"math/rand"
	"testing"

	"cqp/internal/geo"
	"cqp/internal/obs"
)

// fakeClock is a deterministic obs.Clock for tests: each reading
// advances by a fixed step, so latency histograms fill without any wall
// time passing.
func fakeClock() obs.Clock {
	var t int64
	return func() int64 {
		t += 1_000_000 // 1ms per reading
		return t
	}
}

// metricsBenchEngine is benchEngine with observability fully enabled:
// a live registry and a deterministic clock.
func metricsBenchEngine(objects, queries int, kind QueryKind, reg *obs.Registry) (*Engine, *rand.Rand) {
	e := MustNewEngine(Options{
		Bounds: geo.R(0, 0, 1, 1), GridN: 64, PredictiveHorizon: 100,
		Metrics: reg, Clock: fakeClock(),
	})
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < objects; i++ {
		e.ReportObject(ObjectUpdate{
			ID: ObjectID(i + 1), Kind: Moving,
			Loc: geo.Pt(rng.Float64(), rng.Float64()),
		})
	}
	for j := 0; j < queries; j++ {
		u := QueryUpdate{ID: QueryID(j + 1), Kind: kind}
		switch kind {
		case Range:
			u.Region = geo.RectAt(geo.Pt(rng.Float64(), rng.Float64()), 0.01)
		case KNN:
			u.Focal = geo.Pt(rng.Float64(), rng.Float64())
			u.K = 5
		}
		e.ReportQuery(u)
	}
	e.Step(0)
	return e, rng
}

// TestStepSteadyStateAllocsWithMetrics proves the observability layer
// costs nothing on the hot path: a fully instrumented steady-state Step
// (registry, clock, and latency histograms all live) must fit the SAME
// allocation budget as the uninstrumented engine pinned by
// TestStepSteadyStateAllocs. If instrumentation ever allocates — a
// name lookup, a boxed value, a fresh closure — this fails before any
// benchmark shows the regression.
func TestStepSteadyStateAllocsWithMetrics(t *testing.T) {
	const objects, queries, moves = 10000, 10000, 100
	reg := obs.NewRegistry()
	e, rng := metricsBenchEngine(objects, queries, Range, reg)
	for i := 0; i < 100; i++ {
		stepChurn(e, rng, objects, moves, float64(i))
	}
	tick := 100
	avg := testing.AllocsPerRun(20, func() {
		stepChurn(e, rng, objects, moves, float64(tick))
		tick++
	})
	const budget = 50 // identical to TestStepSteadyStateAllocs: metrics add zero
	t.Logf("steady-state Step with metrics: %.1f allocs/tick (budget %d)", avg, budget)
	if avg > budget {
		t.Errorf("metrics-enabled steady-state Step allocates %.1f times per tick; budget is %d", avg, budget)
	}
	if got := reg.Counter("engine.steps").Value(); got == 0 {
		t.Fatal("metrics were not recording: engine.steps is 0")
	}
	if got := reg.Histogram("engine.step_ns", obs.DurationBuckets).Count(); got == 0 {
		t.Fatal("step latency histogram recorded nothing despite a configured clock")
	}
}

// TestStepAppendSteadyStateAllocs pins the StepAppend path: with the
// caller reusing one output buffer across ticks, even Step's one
// contractual allocation (the fresh result slice) disappears, so the
// budget here is strictly below the Step budget.
func TestStepAppendSteadyStateAllocs(t *testing.T) {
	// As with TestStepSteadyStateAllocs, the work-stealing join runs on
	// engine-owned scratch and must fit the same budget as the serial
	// path.
	for _, par := range []int{0, 4} {
		t.Run(fmt.Sprintf("parallelism=%d", par), func(t *testing.T) {
			const objects, queries, moves = 10000, 10000, 100
			e, rng := benchEngineP(objects, queries, Range, par)
			var buf []Update
			churnAppend := func(tick float64) {
				for n := 0; n < moves; n++ {
					id := ObjectID(1 + rng.Intn(objects))
					e.ReportObject(ObjectUpdate{
						ID: id, Kind: Moving,
						Loc: geo.Pt(rng.Float64(), rng.Float64()), T: tick,
					})
				}
				buf = e.StepAppend(buf[:0], tick)
			}
			for i := 0; i < 100; i++ {
				churnAppend(float64(i))
			}
			tick := 100
			avg := testing.AllocsPerRun(20, func() {
				churnAppend(float64(tick))
				tick++
			})
			const budget = 49 // must beat Step's budget: the output slice is reused
			t.Logf("steady-state StepAppend: %.1f allocs/tick (budget %d)", avg, budget)
			if avg > budget {
				t.Errorf("steady-state StepAppend allocates %.1f times per tick; budget is %d", avg, budget)
			}
		})
	}
}

// TestStepAppendPreservesPrefixAndSortsSuffix checks the append
// contract: dst's existing contents are untouched and only the
// appended region is (canonically) sorted.
func TestStepAppendPreservesPrefixAndSortsSuffix(t *testing.T) {
	e := MustNewEngine(Options{Bounds: geo.R(0, 0, 1, 1)})
	e.ReportQuery(QueryUpdate{ID: 1, Kind: Range, Region: geo.R(0, 0, 1, 1)})
	e.ReportObject(ObjectUpdate{ID: 7, Kind: Moving, Loc: geo.Pt(0.5, 0.5)})
	e.ReportObject(ObjectUpdate{ID: 3, Kind: Moving, Loc: geo.Pt(0.25, 0.25)})

	sentinel := Update{Query: 99, Object: 99, Positive: false}
	out := e.StepAppend([]Update{sentinel}, 1)
	if len(out) != 3 {
		t.Fatalf("expected sentinel + 2 updates, got %v", out)
	}
	if out[0] != sentinel {
		t.Fatalf("prefix clobbered: %v", out[0])
	}
	want := []Update{
		{Query: 1, Object: 3, Positive: true},
		{Query: 1, Object: 7, Positive: true},
	}
	for i, w := range want {
		if out[1+i] != w {
			t.Fatalf("appended region = %v, want %v", out[1:], want)
		}
	}
}

// TestMetricsDoNotAffectUpdates is the differential guarantee the
// Options.Metrics docs promise: the same report stream through a bare
// engine and a fully instrumented one yields bit-identical update
// streams, step by step.
func TestMetricsDoNotAffectUpdates(t *testing.T) {
	reg := obs.NewRegistry()
	bare, rngA := benchEngine(500, 500, Range)
	inst, rngB := metricsBenchEngine(500, 500, Range, reg)

	for tick := 1; tick <= 30; tick++ {
		for n := 0; n < 50; n++ {
			// Identical draws on both sides: the seeded rngs are in
			// lockstep by construction.
			bare.ReportObject(ObjectUpdate{
				ID: ObjectID(1 + rngA.Intn(500)), Kind: Moving,
				Loc: geo.Pt(rngA.Float64(), rngA.Float64()), T: float64(tick),
			})
			inst.ReportObject(ObjectUpdate{
				ID: ObjectID(1 + rngB.Intn(500)), Kind: Moving,
				Loc: geo.Pt(rngB.Float64(), rngB.Float64()), T: float64(tick),
			})
		}
		a := bare.Step(float64(tick))
		b := inst.Step(float64(tick))
		if len(a) != len(b) {
			t.Fatalf("tick %d: %d updates bare vs %d instrumented", tick, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("tick %d update %d: %v bare vs %v instrumented", tick, i, a[i], b[i])
			}
		}
	}

	// The mirrored counters must agree exactly with the Stats they
	// shadow.
	st := inst.Stats()
	checks := []struct {
		name string
		want uint64
	}{
		{"engine.steps", st.Steps},
		{"engine.reports.objects", st.ObjectReports},
		{"engine.reports.queries", st.QueryReports},
		{"engine.updates.positive", st.PositiveUpdates},
		{"engine.updates.negative", st.NegativeUpdates},
		{"engine.knn.recomputes", st.KNNRecomputes},
	}
	for _, c := range checks {
		if got := reg.Counter(c.name).Value(); got != c.want {
			t.Errorf("%s = %d, want %d (Stats mirror drifted)", c.name, got, c.want)
		}
	}
}
