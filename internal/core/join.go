package core

import (
	"slices"
	"sync"

	"cqp/internal/geo"
	"cqp/internal/grid"
)

// This file is the parallel query-update join: phases 2–4 of a Step
// restructured as a two-stage batch join.
//
// Stage 1 (partition): the step's dirty work — query re-registrations,
// moved objects, dirty-kNN re-evaluations — is bucketed into per-cell
// batches by a stable counting sort over grid-cell indices. Cell-major
// batches give each worker spatial locality (MOIST-style grouping: one
// batch's items probe the same neighborhood of the flat slab arrays).
//
// Stage 2 (execution): Options.Parallelism workers drain the batches
// from per-worker deques with Chase-Lev-style stealing (deque.go).
// Workers only *gather*: they evaluate predicates against the frozen
// grid and answer sets and record their findings (membership proposals,
// drop/add handle spans, dirty marks) in per-worker scratch that the
// engine owns and reslices each step, so the hot loop allocates
// nothing. Workers never mutate shared engine state.
//
// A short serial apply then merges the per-worker deltas in a
// deterministic order and the step's appended region is canonically
// sorted (sort.go), which makes the emitted stream bit-identical to the
// serial engine's at any worker count and any steal schedule:
//
//   - gathers are pure reads of state no apply has touched yet, so what
//     a worker finds is independent of which worker found it;
//   - for one (query, object) pair all proposals within a phase carry
//     the same sign (a drop test and an add probe cannot both fire —
//     they evaluate the same predicate), and setMember suppresses
//     same-sign duplicates against the live answer, so the emitted
//     multiset is apply-order-invariant;
//   - everything order-sensitive — auto-commit snapshots, grid region
//     registration, per-item emission — happens in the serial apply, in
//     report-buffer or sorted-query order, never in steal order.

// joinParallelMin is the per-phase work-item floor below which the
// serial path is used outright: batching a handful of items costs more
// than it saves.
const joinParallelMin = 32

// batchTargetItems computes the batch granularity rule: aim for
// stealFanout batches per worker (enough slack for stealing to level
// load skew) but never fewer than minBatchItems items per batch (below
// that, deque traffic dominates the work).
func batchTargetItems(n, workers int) int {
	const (
		stealFanout   = 8
		minBatchItems = 8
	)
	t := n / (workers * stealFanout)
	if t < minBatchItems {
		t = minBatchItems
	}
	return t
}

// Join phases, in step order.
const (
	phaseQuery  = iota // phase 2: query re-registrations
	phaseObject        // phase 3: moved-object join
	phaseKNN           // phase 4: dirty-kNN re-evaluation
)

// batchSpan is one batch: a half-open range of e.partIdx.
type batchSpan struct{ lo, hi int32 }

// memberProposal is one membership decision produced by the phase-3
// gather and applied serially afterwards, by handle.
type memberProposal struct {
	qh, oh int32
	in     bool
}

// Phase-2 item classification.
const (
	qmSerial uint8 = iota // removals, duplicate IDs, KNN, unknown kinds: applied one at a time
	qmGather              // Range/PredictiveRange singleton: parallel gather + ordered apply
)

// qryPlanEntry records, per report-buffer slot, how phase 2 handles it.
type qryPlanEntry struct {
	mode uint8
	gi   int32 // gItems index when mode == qmGather
}

// gItem is one gatherable phase-2 work item.
type gItem struct {
	buf   int32       // index into e.qryBuf
	qs    *queryState // existing state; nil for brand-new registrations
	fresh bool        // kind change: qs torn down at apply, started fresh
	cell  int32       // partition cell (region center)
}

// gRes is a phase-2 gather result: drop and add handle spans in the
// owning worker's ids scratch.
type gRes struct {
	worker         int32
	dropLo, dropHi int32
	addLo, addHi   int32
}

// knnRes is a phase-4 gather result: the neighbor search's outcome plus
// drop/add handle spans.
type knnRes struct {
	worker         int32
	dropLo, dropHi int32
	addLo, addHi   int32
	found          int32   // neighbors found (< k while starved)
	radius         float64 // distance to the farthest neighbor
}

// joinWorker is one worker's engine-owned scratch: gather findings,
// pre-bound grid-visit callbacks, and drain counters. Slot 0 also
// serves the serial path, so serial and parallel steps execute the same
// gather code.
type joinWorker struct {
	e  *Engine
	id int32

	// Gather findings. props/dirty are phase 3's output; ids holds
	// phase 2's and phase 4's drop/add spans (indices recorded in
	// gRes/knnRes stay valid across growth — spans are resolved against
	// the current slice header at apply time).
	props []memberProposal
	dirty []int32 // query handles to mark kNN-dirty
	ids   []int32 // flat object-handle span storage

	// Per-phase counters, merged into Stats/metrics by the serial apply.
	checks    uint64
	evalCells uint64
	batches   uint64
	steals    uint64

	diffBuf []geo.Rect
	knnBuf  []grid.Neighbor
	memBuf  []int32 // answer-member snapshots during gathers

	// qStamp is an epoch-stamped membership filter for the phase-3
	// candidate probe: qStamp[qh] == stampCur exactly when the moved
	// object currently being gathered is a member of query qh's answer.
	// It is rebuilt per object from the object's own QList — walked
	// anyway for the drop side — so the probe rejects the dominant
	// already-a-member case with one flat array load, touching neither
	// the (cold) query state nor its answer set. Sized to the query
	// handle table by workerScratch; resizing resets the epoch.
	qStamp   []uint32
	stampCur uint32

	// Current-item slots read by the pre-bound callbacks.
	curOS        *objectState
	curRegion    geo.Rect
	curT1, curT2 float64

	objRegionsCB func(uint64, geo.Rect) bool // phase-3 candidate probe at curOS.loc
	sweptCellCB  func(int) bool              // phase-3 predictive swept-box walk
	sweptRegCB   func(uint64, geo.Rect) bool
	rangeAddCB   func(uint64, geo.Point) bool // phase-2 range add scan
	predCellCB   func(int) bool               // phase-2 predictive add scan
	predRegCB    func(uint64, geo.Rect) bool
}

// newJoinWorker builds a worker slot with its callbacks pre-bound (a
// fresh closure per item escapes to the heap; these visit millions of
// candidates per second).
func newJoinWorker(e *Engine, id int32) *joinWorker {
	w := &joinWorker{e: e, id: id}
	w.objRegionsCB = func(k uint64, r geo.Rect) bool {
		if !keyIsQuery(k) {
			return true
		}
		os := w.curOS
		w.checks++
		// The kind comes from the key and the region from the slab the
		// grid is already walking, so the common non-matching candidate
		// is rejected without touching the (cold) query state at all.
		switch keyKind(k) {
		case Range:
			// The stamp filter is a frozen-state read (QList membership
			// at gather start), so it is steal-schedule-independent; it
			// keeps the common case — a moved object still inside a
			// region it was in — out of the serial apply without ever
			// loading the query state: kind and handle come from the
			// key, the region from the slab.
			if r.Contains(os.loc) && w.qStamp[k>>3] != w.stampCur {
				w.props = append(w.props, memberProposal{int32(k >> 3), os.h, true})
			}
		case KNN:
			// r is the circle's bounding box (the whole space while the
			// query is starved), so outside it the object can neither
			// enter the circle nor extend a short answer. A member kNN
			// query was already marked dirty by the drop loop, so the
			// stamp skips it here. Inside, the exact test: within the
			// current radius, or still starved — the exact answer may
			// change. (Answers and radii are stable throughout the
			// gather phase: they only change in the apply and
			// kNN-recompute phases.)
			if r.Contains(os.loc) && w.qStamp[k>>3] != w.stampCur {
				qs := e.qrysByH[k>>3]
				if qs.answer.Len() < qs.k || qs.focal.Dist(os.loc) <= qs.radius {
					w.dirty = append(w.dirty, qs.h)
				}
			}
		case PredictiveRange:
			if os.kind == Predictive && w.qStamp[k>>3] != w.stampCur {
				if qs := e.qrysByH[k>>3]; e.predictiveMatch(qs, os) {
					w.props = append(w.props, memberProposal{qs.h, os.h, true})
				}
			}
		}
		return true
	}
	w.sweptRegCB = func(k uint64, _ geo.Rect) bool {
		if !keyIsQuery(k) || keyKind(k) != PredictiveRange || w.qStamp[k>>3] == w.stampCur {
			return true
		}
		qs := e.qrysByH[k>>3]
		w.checks++
		if e.predictiveMatch(qs, w.curOS) {
			w.props = append(w.props, memberProposal{qs.h, w.curOS.h, true})
		}
		return true
	}
	w.sweptCellCB = func(ci int) bool {
		e.g.VisitRegionsInCell(ci, w.sweptRegCB)
		return true
	}
	w.rangeAddCB = func(k uint64, _ geo.Point) bool {
		w.checks++
		w.ids = append(w.ids, int32(k>>1))
		return true
	}
	w.predRegCB = func(k uint64, _ geo.Rect) bool {
		if keyIsQuery(k) {
			return true
		}
		os := e.objsByH[k>>1]
		w.checks++
		if e.predictedIntersects(os, w.curRegion, w.curT1, w.curT2) {
			w.ids = append(w.ids, os.h)
		}
		return true
	}
	w.predCellCB = func(ci int) bool {
		w.evalCells++
		e.g.VisitRegionsInCell(ci, w.predRegCB)
		return true
	}
	return w
}

// workerScratch returns n reset worker slots, growing the engine's pool
// as needed. Backing buffers and callbacks are retained across Steps,
// which keeps the join allocation-free at steady state.
func (e *Engine) workerScratch(n int) []*joinWorker {
	for len(e.workers) < n {
		e.workers = append(e.workers, newJoinWorker(e, int32(len(e.workers))))
	}
	ws := e.workers[:n]
	for _, w := range ws {
		w.props = w.props[:0]
		w.dirty = w.dirty[:0]
		w.ids = w.ids[:0]
		w.checks, w.evalCells = 0, 0
		w.batches, w.steals = 0, 0
		if len(w.qStamp) < len(e.qrysByH) {
			// Query population grew: new zeroed array, fresh epoch.
			// Steady state never resizes, so the hot path stays
			// allocation-free.
			w.qStamp = make([]uint32, len(e.qrysByH))
			w.stampCur = 0
		}
	}
	return ws
}

// mergeWorkerStats folds the first n workers' counters into the
// engine's Stats and join metrics after a phase's apply.
func (e *Engine) mergeWorkerStats(n int) {
	for _, w := range e.workers[:n] {
		e.stats.CandidateChecks += w.checks
		e.stats.RegionEvalCells += w.evalCells
		if w.batches != 0 || w.steals != 0 {
			e.m.joinBatches.Add(w.batches)
			e.m.joinSteals.Add(w.steals)
			e.m.workerBatches.Observe(int64(w.batches))
		}
		w.checks, w.evalCells, w.batches, w.steals = 0, 0, 0, 0
	}
}

// partition buckets n work items into cell-major order (stable counting
// sort over grid-cell indices) and cuts e.batches into spans of roughly
// batchTargetItems items. Items of one cell always land in one batch —
// the locality grouping — so a batch's grid probes cluster spatially.
func (e *Engine) partition(phase, n, workers int) {
	ncells := e.g.N()*e.g.N() + 1
	cnt := e.cellCnt
	if cap(cnt) < ncells {
		cnt = make([]int32, ncells)
	}
	cnt = cnt[:ncells]
	for i := range cnt {
		cnt[i] = 0
	}
	cells := e.itemCell
	if cap(cells) < n {
		cells = make([]int32, n)
	}
	cells = cells[:n]
	for i := 0; i < n; i++ {
		var c int32
		switch phase {
		case phaseQuery:
			c = e.gItems[i].cell
		case phaseObject:
			c = int32(e.g.CellIndex(e.liveBuf[i].os.loc))
		case phaseKNN:
			c = e.knnCell[i]
		}
		cells[i] = c
		cnt[c]++
	}
	var run int32
	for c := 0; c < ncells; c++ {
		v := cnt[c]
		cnt[c] = run
		run += v
	}
	idx := e.partIdx
	if cap(idx) < n {
		idx = make([]int32, n)
	}
	idx = idx[:n]
	for i := 0; i < n; i++ {
		c := cells[i]
		idx[cnt[c]] = int32(i)
		cnt[c]++
	}
	e.cellCnt, e.itemCell, e.partIdx = cnt, cells, idx

	target := int32(batchTargetItems(n, workers))
	e.batches = e.batches[:0]
	lo, prevEnd := int32(0), int32(0)
	for c := 0; c < ncells; c++ {
		end := cnt[c] // after the scatter, cnt[c] is cell c's end offset
		if end == prevEnd {
			continue
		}
		prevEnd = end
		if end-lo >= target {
			e.batches = append(e.batches, batchSpan{lo, end})
			lo = end
		}
	}
	if lo < int32(n) {
		e.batches = append(e.batches, batchSpan{lo, int32(n)})
	}
}

// runBatches executes the partitioned batches across up to maxW workers:
// each worker's deque is preloaded with a contiguous run of batch
// indices (contiguity preserves the cell-major locality), workers drain
// their own deque LIFO and steal FIFO from victims when it runs dry.
// The calling goroutine participates as worker 0.
func (e *Engine) runBatches(phase, maxW int) {
	nb := len(e.batches)
	if nb == 0 {
		return
	}
	W := maxW
	if W > nb {
		W = nb
	}
	for len(e.deques) < W {
		e.deques = append(e.deques, &clDeque{})
	}
	for w := 0; w < W; w++ {
		e.deques[w].reset(int32(w*nb/W), int32((w+1)*nb/W))
	}
	e.nActive = int32(W)
	var wg sync.WaitGroup
	wg.Add(W - 1)
	for w := 1; w < W; w++ {
		go e.workers[w].runPhase(phase, &wg)
	}
	e.workers[0].runPhase(phase, nil)
	wg.Wait()
}

// runPhase is one worker's drain loop: own deque first (LIFO), then
// steal scan. Batches only ever leave deques mid-phase — nothing is
// pushed — so a full steal scan that finds every victim empty proves
// global completion.
func (w *joinWorker) runPhase(phase int, wg *sync.WaitGroup) {
	e := w.e
	own := e.deques[w.id]
	for {
		b, ok := own.popBottom()
		if !ok {
			break
		}
		w.batches++
		w.processBatch(phase, b)
	}
	n := int(e.nActive)
	for {
		stole := false
		for k := 1; k < n; k++ {
			if b, ok := e.deques[(int(w.id)+k)%n].steal(); ok {
				w.steals++
				w.batches++
				w.processBatch(phase, b)
				stole = true
				break
			}
		}
		if !stole {
			break
		}
	}
	if wg != nil {
		wg.Done()
	}
}

// processBatch gathers every item of batch b into this worker's scratch.
func (w *joinWorker) processBatch(phase int, b int32) {
	e := w.e
	sp := e.batches[b]
	switch phase {
	case phaseQuery:
		for _, i := range e.partIdx[sp.lo:sp.hi] {
			w.gatherQuery(&e.gItems[i], &e.gRes[i])
		}
	case phaseObject:
		for _, i := range e.partIdx[sp.lo:sp.hi] {
			w.gatherMovedObject(e.liveBuf[i].os)
		}
	case phaseKNN:
		for _, i := range e.partIdx[sp.lo:sp.hi] {
			w.gatherKNN(e.knnQS[i], &e.knnRes[i])
		}
	}
}

// ---------------------------------------------------------------------------
// Phase 2: query re-registrations.

// queryPhase applies the step's buffered query reports. With a single
// worker (or too few gatherable items) every report runs through the
// serial applyQueryUpdate path; otherwise singleton Range and
// PredictiveRange reports are gathered in parallel and every report is
// then applied in report-buffer order, so ordering-sensitive semantics
// (duplicate reports, removals, auto-commit timing) are untouched.
func (e *Engine) queryPhase(out *[]Update) {
	n := len(e.qryBuf)
	if n == 0 {
		return
	}
	maxW := e.opt.Parallelism
	if maxW > 1 && n >= joinParallelMin {
		if e.queryPhaseParallel(out, maxW) {
			return
		}
	}
	for _, u := range e.qryBuf {
		e.stats.QueryReports++
		if u.Remove {
			e.removeQuery(u.ID)
			continue
		}
		e.applyQueryUpdate(u, out)
	}
}

// queryPhaseParallel classifies, gathers, and applies the buffered query
// reports. Returns false (having touched nothing) when too few reports
// are gatherable to be worth batching, leaving the serial path to run.
func (e *Engine) queryPhaseParallel(out *[]Update, maxW int) bool {
	n := len(e.qryBuf)
	plan := e.qryPlan
	if cap(plan) < n {
		plan = make([]qryPlanEntry, n)
	}
	plan = plan[:n]
	counts := e.qryCount
	for _, u := range e.qryBuf {
		counts[u.ID]++
	}
	items := e.gItems[:0]
	for i := range e.qryBuf {
		u := &e.qryBuf[i]
		p := qryPlanEntry{mode: qmSerial, gi: -1}
		// Only the sole report for its ID is gatherable: duplicate-ID
		// sequences have intra-buffer data dependencies (each sees its
		// predecessor's state), so they take the one-at-a-time path.
		if !u.Remove && counts[u.ID] == 1 {
			switch u.Kind {
			case Range, PredictiveRange:
				it := gItem{
					buf:  int32(i),
					qs:   e.qrys[u.ID],
					cell: int32(e.g.CellIndex(u.Region.Center())),
				}
				if it.qs != nil && it.qs.kind != u.Kind {
					it.qs, it.fresh = nil, true
				}
				p.mode = qmGather
				p.gi = int32(len(items))
				items = append(items, it)
			}
		}
		plan[i] = p
	}
	clear(counts)
	e.qryPlan, e.gItems = plan, items
	if len(items) < joinParallelMin {
		return false
	}
	res := e.gRes
	if cap(res) < len(items) {
		res = make([]gRes, len(items))
	}
	e.gRes = res[:len(items)]

	e.workerScratch(maxW)
	e.partition(phaseQuery, len(items), maxW)
	e.runBatches(phaseQuery, maxW)

	// Serial apply, in report-buffer order.
	for i := range e.qryBuf {
		u := &e.qryBuf[i]
		e.stats.QueryReports++
		if p := plan[i]; p.mode == qmGather {
			e.applyGatheredQuery(u, &e.gItems[p.gi], &e.gRes[p.gi], out)
		} else if u.Remove {
			e.removeQuery(u.ID)
		} else {
			e.applyQueryUpdate(*u, out)
		}
	}
	e.mergeWorkerStats(maxW)
	return true
}

// gatherQuery evaluates one gatherable query report read-only: which
// current members fall out of the new region/window (drops) and which
// grid candidates newly match (adds), recorded as handle spans in this
// worker's ids scratch. The grid, object locations, and this query's
// answer are all frozen during the phase — no apply has run yet, and
// gatherable items are the only report for their ID.
func (w *joinWorker) gatherQuery(it *gItem, r *gRes) {
	e := w.e
	u := &e.qryBuf[it.buf]
	qs := it.qs
	r.worker = w.id
	r.dropLo = int32(len(w.ids))
	switch u.Kind {
	case Range:
		if qs != nil {
			members := qs.answer.AppendTo(w.memBuf[:0])
			w.memBuf = members
			for _, h := range members {
				w.checks++
				if !u.Region.Contains(e.objsByH[h].loc) {
					w.ids = append(w.ids, h)
				}
			}
		}
		r.dropHi = int32(len(w.ids))
		r.addLo = r.dropHi
		var diff []geo.Rect
		if qs != nil && qs.registered {
			diff = u.Region.Difference(qs.region, w.diffBuf)
		} else {
			diff = append(w.diffBuf[:0], u.Region)
		}
		w.diffBuf = diff
		for _, piece := range diff {
			w.evalCells += uint64(e.g.CountCells(piece))
			e.g.VisitObjectsIn(piece, w.rangeAddCB)
		}
		r.addHi = int32(len(w.ids))
	case PredictiveRange:
		w.curRegion, w.curT1, w.curT2 = u.Region, u.T1, u.T2
		if qs != nil {
			members := qs.answer.AppendTo(w.memBuf[:0])
			w.memBuf = members
			for _, h := range members {
				w.checks++
				if !e.predictedIntersects(e.objsByH[h], u.Region, u.T1, u.T2) {
					w.ids = append(w.ids, h)
				}
			}
		}
		r.dropHi = int32(len(w.ids))
		r.addLo = r.dropHi
		e.g.VisitCells(u.Region, w.predCellCB)
		r.addHi = int32(len(w.ids))
	}
}

// applyGatheredQuery is the serial apply of one gathered query report:
// the same state transitions as applyQueryUpdate, with the drop/add
// scans replaced by the gather's recorded spans.
func (e *Engine) applyGatheredQuery(u *QueryUpdate, it *gItem, r *gRes, out *[]Update) {
	qs := it.qs
	if it.fresh {
		e.removeQuery(u.ID)
	}
	if qs == nil {
		qs = e.newQuery(u.ID, u.Kind)
	}
	if !e.opt.Replica {
		e.commit(qs)
	}
	qs.t = u.T
	if u.Kind == PredictiveRange {
		qs.t1, qs.t2 = u.T1, u.T2
	}
	w := e.workers[r.worker]
	for _, h := range w.ids[r.dropLo:r.dropHi] {
		e.setMember(qs, e.objsByH[h], false, out)
	}
	for _, h := range w.ids[r.addLo:r.addHi] {
		e.setMember(qs, e.objsByH[h], true, out)
	}
	if qs.registered {
		e.g.MoveRegion(qkeyH(qs.h, qs.kind), qs.region, u.Region)
	} else {
		e.g.InsertRegion(qkeyH(qs.h, qs.kind), u.Region)
		qs.registered = true
	}
	qs.region = u.Region
}

// ---------------------------------------------------------------------------
// Phase 3: moved-object join.

// objectJoinPhase joins every changed object against the registered
// queries: membership re-checks plus grid candidate probes, gathered
// (in parallel, when configured) and applied serially.
func (e *Engine) objectJoinPhase(live []movedObj, out *[]Update) {
	n := len(live)
	if n == 0 {
		return
	}
	maxW := e.opt.Parallelism
	if maxW <= 1 || n < joinParallelMin {
		ws := e.workerScratch(1)
		for i := range live {
			ws[0].gatherMovedObject(live[i].os)
		}
		e.applyObjectJoins(1, out)
		return
	}
	e.workerScratch(maxW)
	e.liveBuf = live
	e.partition(phaseObject, n, maxW)
	e.runBatches(phaseObject, maxW)
	e.applyObjectJoins(maxW, out)
	e.liveBuf = nil
}

// applyObjectJoins integrates the workers' phase-3 findings: dirty
// marks, stats, and membership proposals (deduplicated by setMember).
// Worker order is fine here — all proposals for one (query, object)
// pair carry the same sign, so the emitted multiset is order-invariant
// and the canonical sort fixes the stream.
func (e *Engine) applyObjectJoins(n int, out *[]Update) {
	for _, w := range e.workers[:n] {
		for _, qh := range w.dirty {
			e.dirtyKNN[e.qrysByH[qh].id] = struct{}{}
		}
		for _, p := range w.props {
			e.setMember(e.qrysByH[p.qh], e.objsByH[p.oh], p.in, out)
		}
	}
	e.mergeWorkerStats(n)
}

// gatherMovedObject is the object side of the spatial join, a pure
// read: it re-checks the object's existing memberships against current
// query state and probes the grid for newly satisfied candidate
// queries, appending its findings to this worker's scratch.
func (w *joinWorker) gatherMovedObject(os *objectState) {
	e := w.e
	// New epoch: stamps from previous objects become invalid without
	// clearing. On the (rare) wrap to 0, every slot must be wiped —
	// a slot stamped 0 in a previous cycle would alias the new epoch.
	w.stampCur++
	if w.stampCur == 0 {
		clear(w.qStamp)
		w.stampCur = 1
	}
	// Existing memberships: stamp, and detach from queries the object
	// no longer satisfies.
	for _, qs := range os.queries {
		w.qStamp[qs.h] = w.stampCur
		w.checks++
		switch qs.kind {
		case Range:
			if !qs.region.Contains(os.loc) {
				w.props = append(w.props, memberProposal{qs.h, os.h, false})
			}
		case KNN:
			// Any movement of a member can reorder the k nearest.
			w.dirty = append(w.dirty, qs.h)
		case PredictiveRange:
			if !e.predictiveMatch(qs, os) {
				w.props = append(w.props, memberProposal{qs.h, os.h, false})
			}
		}
	}

	// Candidate queries registered in the cell of the new location.
	w.curOS = os
	e.g.VisitRegionsAt(os.loc, w.objRegionsCB)

	// A predictive object additionally joins against predictive queries
	// wherever its trajectory box reaches, not only at its current point.
	if os.kind == Predictive && os.sweptValid {
		e.g.VisitCells(os.swept, w.sweptCellCB)
	}
}

// ---------------------------------------------------------------------------
// Phase 4: dirty-kNN re-evaluation.

// knnPhase drains the dirty-kNN set in ascending QueryID order,
// re-searching each query exactly and emitting its membership diff.
// Returns the number of dirty marks drained.
func (e *Engine) knnPhase(out *[]Update) int {
	if len(e.dirtyKNN) == 0 {
		return 0
	}
	dirty := e.dirtyBuf[:0]
	for qid := range e.dirtyKNN {
		dirty = append(dirty, qid)
	}
	slices.Sort(dirty)
	clear(e.dirtyKNN)
	e.dirtyBuf = dirty

	maxW := e.opt.Parallelism
	if maxW <= 1 || len(dirty) < joinParallelMin {
		for _, qid := range dirty {
			if qs, ok := e.qrys[qid]; ok {
				e.recomputeKNN(qs, out)
			}
		}
		return len(dirty)
	}

	qss := e.knnQS[:0]
	cells := e.knnCell[:0]
	for _, qid := range dirty {
		if qs, ok := e.qrys[qid]; ok {
			qss = append(qss, qs)
			cells = append(cells, int32(e.g.CellIndex(qs.focal)))
		}
	}
	e.knnQS, e.knnCell = qss, cells
	res := e.knnRes
	if cap(res) < len(qss) {
		res = make([]knnRes, len(qss))
	}
	e.knnRes = res[:len(qss)]

	e.workerScratch(maxW)
	e.partition(phaseKNN, len(qss), maxW)
	e.runBatches(phaseKNN, maxW)

	// Serial apply in sorted-query order, so region maintenance hits the
	// grid in the same order as the serial engine.
	for i, qs := range qss {
		e.applyGatheredKNN(qs, &e.knnRes[i], out)
	}
	e.mergeWorkerStats(maxW)
	// Reset the retained pointer slice so stale *queryState values don't
	// outlive their queries.
	e.knnQS = qss[:0]
	clear(qss)
	return len(dirty)
}

// gatherKNN re-searches one dirty kNN query read-only: the exact
// neighbor set from the frozen grid, recorded as drop/add handle spans
// plus the new radius.
func (w *joinWorker) gatherKNN(qs *queryState, r *knnRes) {
	e := w.e
	neighbors := e.g.KNearestAppend(w.knnBuf[:0], qs.focal, qs.k, notQueryKey)
	w.knnBuf = neighbors
	r.worker = w.id
	r.found = int32(len(neighbors))
	radius := 0.0
	for _, n := range neighbors {
		if n.Dist > radius {
			radius = n.Dist
		}
	}
	r.radius = radius

	r.dropLo = int32(len(w.ids))
	members := qs.answer.AppendTo(w.memBuf[:0])
	w.memBuf = members
	for _, h := range members {
		if !neighborsContain(neighbors, h) {
			w.ids = append(w.ids, h)
		}
	}
	r.dropHi = int32(len(w.ids))
	r.addLo = r.dropHi
	for _, n := range neighbors {
		if h := int32(n.ID >> 1); !qs.answer.Has(h) {
			w.ids = append(w.ids, h)
		}
	}
	r.addHi = int32(len(w.ids))
}

// neighborsContain reports whether handle h is among the neighbor keys
// (linear scan: k is small).
func neighborsContain(ns []grid.Neighbor, h int32) bool {
	for _, n := range ns {
		if int32(n.ID>>1) == h {
			return true
		}
	}
	return false
}

// applyGatheredKNN is the serial apply of one gathered kNN re-search:
// the same transitions as recomputeKNN with the search and diff scans
// replaced by the gather's result.
func (e *Engine) applyGatheredKNN(qs *queryState, r *knnRes, out *[]Update) {
	e.stats.KNNRecomputes++
	w := e.workers[r.worker]
	for _, h := range w.ids[r.dropLo:r.dropHi] {
		e.setMember(qs, e.objsByH[h], false, out)
	}
	for _, h := range w.ids[r.addLo:r.addHi] {
		// Gathered as answer non-members from a distinct neighbor
		// list — provably absent (see setMemberNew).
		e.setMemberNew(qs, e.objsByH[h], out)
	}
	e.reRegisterKNN(qs, int(r.found), r.radius)
}

// reRegisterKNN re-registers a kNN query's circular region after a
// re-search found `found` neighbors with the given radius. While the
// query is starved (fewer than k objects exist) any insertion anywhere
// can extend the answer, so the query watches the whole space.
func (e *Engine) reRegisterKNN(qs *queryState, found int, radius float64) {
	var region geo.Rect
	if found < qs.k {
		region = e.g.Bounds()
	} else {
		region = geo.Circle{C: qs.focal, R: radius}.BBox()
	}
	if qs.registered {
		e.g.MoveRegion(qkeyH(qs.h, KNN), qs.region, region)
	} else {
		e.g.InsertRegion(qkeyH(qs.h, KNN), region)
		qs.registered = true
	}
	qs.region = region
	qs.radius = radius
}
