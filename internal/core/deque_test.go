package core

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// TestDequeSerialDrain checks the owner-only path: a preloaded run pops
// LIFO (back to front) and exactly once.
func TestDequeSerialDrain(t *testing.T) {
	var d clDeque
	d.reset(3, 10)
	var got []int32
	for {
		b, ok := d.popBottom()
		if !ok {
			break
		}
		got = append(got, b)
	}
	if len(got) != 7 {
		t.Fatalf("drained %d batches, want 7: %v", len(got), got)
	}
	for i, b := range got {
		if want := int32(9 - i); b != want {
			t.Fatalf("pop %d = %d, want %d (LIFO from bottom)", i, b, want)
		}
	}
	if _, ok := d.steal(); ok {
		t.Fatal("steal from drained deque succeeded")
	}
}

// TestDequeStealExactlyOnce hammers one deque with a popping owner and
// several concurrent thieves, asserting every batch index is claimed by
// exactly one goroutine. Run under -race this is also the memory-model
// check on the top/bottom protocol.
func TestDequeStealExactlyOnce(t *testing.T) {
	const (
		rounds  = 200
		batches = 64
		thieves = 4
	)
	for round := 0; round < rounds; round++ {
		var d clDeque
		d.reset(0, batches)
		var claimed [batches]atomic.Int32
		var wg sync.WaitGroup
		wg.Add(thieves)
		for i := 0; i < thieves; i++ {
			go func() {
				defer wg.Done()
				for {
					b, ok := d.steal()
					if !ok {
						return
					}
					claimed[b].Add(1)
					runtime.Gosched()
				}
			}()
		}
		for {
			b, ok := d.popBottom()
			if !ok {
				break
			}
			claimed[b].Add(1)
		}
		wg.Wait()
		for b := range claimed {
			if n := claimed[b].Load(); n != 1 {
				t.Fatalf("round %d: batch %d claimed %d times", round, b, n)
			}
		}
	}
}
