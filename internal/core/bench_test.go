package core

import (
	"math/rand"
	"testing"

	"cqp/internal/geo"
)

// benchEngine builds an engine with a uniform population.
func benchEngine(objects, queries int, kind QueryKind) (*Engine, *rand.Rand) {
	e := MustNewEngine(Options{Bounds: geo.R(0, 0, 1, 1), GridN: 64, PredictiveHorizon: 100})
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < objects; i++ {
		e.ReportObject(ObjectUpdate{
			ID: ObjectID(i + 1), Kind: Moving,
			Loc: geo.Pt(rng.Float64(), rng.Float64()),
		})
	}
	for j := 0; j < queries; j++ {
		u := QueryUpdate{ID: QueryID(j + 1), Kind: kind}
		switch kind {
		case Range:
			u.Region = geo.RectAt(geo.Pt(rng.Float64(), rng.Float64()), 0.01)
		case KNN:
			u.Focal = geo.Pt(rng.Float64(), rng.Float64())
			u.K = 5
		}
		e.ReportQuery(u)
	}
	e.Step(0)
	return e, rng
}

// BenchmarkStepObjectMoves measures the per-evaluation cost of object
// movement against 10K range queries: the object side of the shared join.
func BenchmarkStepObjectMoves(b *testing.B) {
	e, rng := benchEngine(10000, 10000, Range)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for n := 0; n < 100; n++ {
			id := ObjectID(1 + rng.Intn(10000))
			e.ReportObject(ObjectUpdate{
				ID: id, Kind: Moving,
				Loc: geo.Pt(rng.Float64(), rng.Float64()), T: float64(i),
			})
		}
		e.Step(float64(i))
	}
	b.ReportMetric(100, "moves/op")
}

// BenchmarkStepQueryMoves measures the query side: incremental
// A_new − A_old evaluation for sliding regions.
func BenchmarkStepQueryMoves(b *testing.B) {
	e, rng := benchEngine(10000, 10000, Range)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for n := 0; n < 100; n++ {
			id := QueryID(1 + rng.Intn(10000))
			e.ReportQuery(QueryUpdate{
				ID: id, Kind: Range,
				Region: geo.RectAt(geo.Pt(rng.Float64(), rng.Float64()), 0.01),
				T:      float64(i),
			})
		}
		e.Step(float64(i))
	}
	b.ReportMetric(100, "moves/op")
}

// BenchmarkStepKNNMaintenance measures dirty-circle kNN upkeep under
// object churn.
func BenchmarkStepKNNMaintenance(b *testing.B) {
	e, rng := benchEngine(10000, 1000, KNN)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for n := 0; n < 100; n++ {
			id := ObjectID(1 + rng.Intn(10000))
			e.ReportObject(ObjectUpdate{
				ID: id, Kind: Moving,
				Loc: geo.Pt(rng.Float64(), rng.Float64()), T: float64(i),
			})
		}
		e.Step(float64(i))
	}
	b.ReportMetric(float64(e.Stats().KNNRecomputes)/float64(b.N), "recomputes/op")
}
