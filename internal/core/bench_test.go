package core

import (
	"fmt"
	"math/rand"
	"testing"

	"cqp/internal/geo"
)

// benchEngine builds an engine with a uniform population.
func benchEngine(objects, queries int, kind QueryKind) (*Engine, *rand.Rand) {
	return benchEngineP(objects, queries, kind, 0)
}

// benchEngineP is benchEngine with an explicit Parallelism, so the
// steady-state pins can cover the work-stealing join as well as the
// serial path.
func benchEngineP(objects, queries int, kind QueryKind, parallelism int) (*Engine, *rand.Rand) {
	e := MustNewEngine(Options{Bounds: geo.R(0, 0, 1, 1), GridN: 64, PredictiveHorizon: 100, Parallelism: parallelism})
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < objects; i++ {
		e.ReportObject(ObjectUpdate{
			ID: ObjectID(i + 1), Kind: Moving,
			Loc: geo.Pt(rng.Float64(), rng.Float64()),
		})
	}
	for j := 0; j < queries; j++ {
		u := QueryUpdate{ID: QueryID(j + 1), Kind: kind}
		switch kind {
		case Range:
			u.Region = geo.RectAt(geo.Pt(rng.Float64(), rng.Float64()), 0.01)
		case KNN:
			u.Focal = geo.Pt(rng.Float64(), rng.Float64())
			u.K = 5
		}
		e.ReportQuery(u)
	}
	e.Step(0)
	return e, rng
}

// BenchmarkStepObjectMoves measures the per-evaluation cost of object
// movement against 10K range queries: the object side of the shared join.
func BenchmarkStepObjectMoves(b *testing.B) {
	e, rng := benchEngine(10000, 10000, Range)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for n := 0; n < 100; n++ {
			id := ObjectID(1 + rng.Intn(10000))
			e.ReportObject(ObjectUpdate{
				ID: id, Kind: Moving,
				Loc: geo.Pt(rng.Float64(), rng.Float64()), T: float64(i),
			})
		}
		e.Step(float64(i))
	}
	b.ReportMetric(100, "moves/op")
}

// BenchmarkStepQueryMoves measures the query side: incremental
// A_new − A_old evaluation for sliding regions.
func BenchmarkStepQueryMoves(b *testing.B) {
	e, rng := benchEngine(10000, 10000, Range)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for n := 0; n < 100; n++ {
			id := QueryID(1 + rng.Intn(10000))
			e.ReportQuery(QueryUpdate{
				ID: id, Kind: Range,
				Region: geo.RectAt(geo.Pt(rng.Float64(), rng.Float64()), 0.01),
				T:      float64(i),
			})
		}
		e.Step(float64(i))
	}
	b.ReportMetric(100, "moves/op")
}

// BenchmarkStepKNNMaintenance measures dirty-circle kNN upkeep under
// object churn.
func BenchmarkStepKNNMaintenance(b *testing.B) {
	e, rng := benchEngine(10000, 1000, KNN)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for n := 0; n < 100; n++ {
			id := ObjectID(1 + rng.Intn(10000))
			e.ReportObject(ObjectUpdate{
				ID: id, Kind: Moving,
				Loc: geo.Pt(rng.Float64(), rng.Float64()), T: float64(i),
			})
		}
		e.Step(float64(i))
	}
	b.ReportMetric(float64(e.Stats().KNNRecomputes)/float64(b.N), "recomputes/op")
}

// stepChurn applies one steady-state tick: nMoves objects re-report random
// locations and the engine steps.
func stepChurn(e *Engine, rng *rand.Rand, objects, nMoves int, t float64) {
	for n := 0; n < nMoves; n++ {
		id := ObjectID(1 + rng.Intn(objects))
		e.ReportObject(ObjectUpdate{
			ID: id, Kind: Moving,
			Loc: geo.Pt(rng.Float64(), rng.Float64()), T: t,
		})
	}
	e.Step(t)
}

// BenchmarkStepSteadyState is the allocation-regression sentinel: a warmed
// engine under constant object churn, where every scratch buffer has
// reached its working size. allocs/op here is the number that must stay
// small — see TestStepSteadyStateAllocs for the hard pin.
func BenchmarkStepSteadyState(b *testing.B) {
	const objects, queries, moves = 10000, 10000, 100
	e, rng := benchEngine(objects, queries, Range)
	for i := 0; i < 5; i++ { // reach scratch steady state before measuring
		stepChurn(e, rng, objects, moves, float64(i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stepChurn(e, rng, objects, moves, float64(5+i))
	}
	b.ReportMetric(moves, "moves/op")
}

// TestStepSteadyStateAllocs pins the allocation count of a steady-state
// Step so regressions fail loudly rather than silently eroding the flat
// grid's gains. The budget covers the per-Step contract allocation (the
// returned update slice), answer-map resizes under churn, and sort
// scratch; it does NOT leave room for per-candidate or per-cell
// allocations — reintroducing any of those blows the budget immediately
// (a 100-move tick against 10K queries used to cost thousands of
// allocations with closure sorts and per-visit temporaries).
func TestStepSteadyStateAllocs(t *testing.T) {
	// The parallel variant shares the serial budget: worker scratch is
	// engine-owned and resliced per step, so the work-stealing join must
	// not add steady-state allocations (goroutine starts reuse runtime
	// stacks; deques and batch spans live on the engine).
	for _, par := range []int{0, 4} {
		t.Run(fmt.Sprintf("parallelism=%d", par), func(t *testing.T) {
			const objects, queries, moves = 10000, 10000, 100
			e, rng := benchEngineP(objects, queries, Range, par)
			// Long warmup: grid cell slabs and answer sets keep growing
			// toward their high-water marks for tens of ticks under
			// random churn.
			for i := 0; i < 100; i++ {
				stepChurn(e, rng, objects, moves, float64(i))
			}
			tick := 100
			avg := testing.AllocsPerRun(20, func() {
				stepChurn(e, rng, objects, moves, float64(tick))
				tick++
			})
			const budget = 50
			t.Logf("steady-state Step: %.1f allocs/tick (budget %d)", avg, budget)
			if avg > budget {
				t.Errorf("steady-state Step allocates %.1f times per tick; budget is %d", avg, budget)
			}
		})
	}
}
