package core

import "cqp/internal/geo"

// predictiveMatch reports whether a predictive object's trajectory
// intersects the query region during the query's future window. The
// motion extrapolates from the object's last report; as in the paper's
// Example III, answers are revised whenever an object reports a new
// velocity vector.
//
// A prediction is only defined from the object's report time to one
// PredictiveHorizon past it — the span whose swept bounding box is
// registered in the grid — so the query window is clipped to
// [os.t, os.t + horizon] before the predicate is evaluated. An empty
// clipped window never matches.
func (e *Engine) predictiveMatch(qs *queryState, os *objectState) bool {
	return e.predictedIntersects(os, qs.region, qs.t1, qs.t2)
}

// predictedIntersects is the single prediction predicate shared by the
// incremental evaluation paths and the brute-force oracle: does the
// object's predicted movement — velocity vector or waypoint trajectory —
// pass through region during the window, clipped to the prediction's
// validity span?
func (e *Engine) predictedIntersects(os *objectState, region geo.Rect, t1, t2 float64) bool {
	if os.kind != Predictive {
		return false
	}
	t1, t2, ok := e.clipToHorizon(t1, t2, os.t)
	if !ok {
		return false
	}
	if len(os.waypoints) > 0 {
		tr := geo.Trajectory{Start: os.loc, T0: os.t, Waypoints: os.waypoints}
		return tr.IntersectsRectDuring(region, t1, t2)
	}
	m := geo.Motion{Start: os.loc, Vel: os.vel, T0: os.t}
	return m.IntersectsRectDuring(region, t1, t2)
}

// clipToHorizon intersects a query window with the validity span of a
// prediction reported at rt.
func (e *Engine) clipToHorizon(t1, t2, rt float64) (float64, float64, bool) {
	if t1 < rt {
		t1 = rt
	}
	if max := rt + e.opt.PredictiveHorizon; t2 > max {
		t2 = max
	}
	return t1, t2, t1 <= t2
}

// applyPredictiveUpdate applies a (re)registration of a predictive range
// query: region and window are replaced, members failing the new
// predicate produce negatives, and candidate predictive objects whose
// registered trajectory boxes overlap the new region produce positives.
//
// The incremental saving mirrors the range-query path: candidates are
// limited to trajectory boxes registered in the cells of the (new)
// region, and an unchanged object/query pair that already agrees on
// membership emits nothing.
func (e *Engine) applyPredictiveUpdate(qs *queryState, newRegion geo.Rect, t1, t2 float64, out *[]Update) {
	oldRegion := qs.region
	wasRegistered := qs.registered

	qs.region = newRegion
	qs.t1, qs.t2 = t1, t2

	// Negatives: members failing the predicate under the new region or
	// window (members snapshotted first; see applyRangeUpdate).
	members := qs.answer.AppendTo(e.hBuf[:0])
	e.hBuf = members
	for _, h := range members {
		os := e.objsByH[h]
		e.stats.CandidateChecks++
		if !e.predictiveMatch(qs, os) {
			e.setMember(qs, os, false, out)
		}
	}

	// Positives: predictive objects whose trajectory boxes are registered
	// in the cells the new region overlaps.
	e.curQS, e.curOut = qs, out
	e.g.VisitCells(newRegion, e.predCellCB)
	e.curQS, e.curOut = nil, nil

	if wasRegistered {
		e.g.MoveRegion(qkeyH(qs.h, PredictiveRange), oldRegion, newRegion)
	} else {
		e.g.InsertRegion(qkeyH(qs.h, PredictiveRange), newRegion)
		qs.registered = true
	}
}
