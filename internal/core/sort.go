package core

import "slices"

// canonicalize puts a step's appended updates into canonical emission
// order: the same order SortUpdates produces, computed faster. The
// public SortUpdates is a stable sort by (Query, Object); stability is
// equivalent to sorting by the three-part key (Query, Object, original
// position), and an unstable pattern-defeating sort over explicit keys
// beats the stable sort's block merges by a wide margin at paper-point
// volumes (tens of thousands of updates per step). When the step's IDs
// fit, the three parts pack into one uint64 and the sort runs over bare
// integers with no comparator indirection at all.
//
// The keys and the permutation scratch are engine-owned and reused
// across steps, so canonicalization allocates nothing at steady state.
func (e *Engine) canonicalize(upds []Update) {
	n := len(upds)
	if n < 2 {
		return
	}
	tmp := e.sortTmp[:0]
	if cap(tmp) < n {
		tmp = make([]Update, 0, n)
	}
	tmp = append(tmp, upds...)

	// Packed path: Query and Object in 22 bits each, position in 20.
	const posBits, idMax = 20, 1 << 22
	packable := n <= 1<<posBits
	if packable {
		for i := range upds {
			if upds[i].Query >= idMax || upds[i].Object >= idMax {
				packable = false
				break
			}
		}
	}
	if packable {
		keys := e.sortKeys[:0]
		if cap(keys) < n {
			keys = make([]uint64, 0, n)
		}
		for i, u := range upds {
			keys = append(keys, uint64(u.Query)<<42|uint64(u.Object)<<posBits|uint64(i))
		}
		slices.Sort(keys)
		for i, k := range keys {
			upds[i] = tmp[k&(1<<posBits-1)]
		}
		e.sortKeys = keys
	} else {
		// Wide path: explicit key structs, same ordering.
		keys := e.sortWide[:0]
		if cap(keys) < n {
			keys = make([]updSortKey, 0, n)
		}
		for i, u := range upds {
			keys = append(keys, updSortKey{q: u.Query, o: u.Object, pos: int32(i)})
		}
		slices.SortFunc(keys, compareSortKeys)
		for i := range keys {
			upds[i] = tmp[keys[i].pos]
		}
		e.sortWide = keys
	}
	e.sortTmp = tmp[:0]
}

// updSortKey is the wide canonical-sort key: (Query, Object, original
// position). Position breaks ties, which is exactly stability.
type updSortKey struct {
	q   QueryID
	o   ObjectID
	pos int32
}

func compareSortKeys(a, b updSortKey) int {
	switch {
	case a.q != b.q:
		if a.q < b.q {
			return -1
		}
		return 1
	case a.o != b.o:
		if a.o < b.o {
			return -1
		}
		return 1
	case a.pos < b.pos:
		return -1
	default:
		return 1
	}
}
