package core

import "cqp/internal/obs"

// engineMetrics are the engine's pre-resolved observability
// instruments. They are bound once in NewEngine — never looked up by
// name on the evaluation path — so a metrics-enabled Step performs
// only atomic adds and stays inside the steady-state allocation
// budget (TestStepSteadyStateAllocsWithMetrics pins this).
//
// Metrics mirror (and never replace) the Stats counters: Stats is the
// engine's own cumulative view, metrics are the externally scraped
// one. When several engines share one registry — the sharded engine
// resolves these same names once per tile — the counters aggregate
// across all of them.
type engineMetrics struct {
	tracer *obs.Tracer

	stepLatency *obs.Histogram // full Step duration (needs a Clock)
	stepUpdates *obs.Histogram // updates emitted per Step

	// Parallel-join instruments (see join.go): total batches drained,
	// batches stolen off other workers' deques, the distribution of
	// batches drained per worker per phase (a tight distribution means
	// the partition balanced; a wide one means stealing did the work),
	// and the latency of the whole join (phases 2–4).
	joinBatches   *obs.Counter
	joinSteals    *obs.Counter
	workerBatches *obs.Histogram
	joinLatency   *obs.Histogram

	steps         *obs.Counter
	objectReports *obs.Counter
	queryReports  *obs.Counter
	movedObjects  *obs.Counter // changed objects entering the join phase
	dirtyKNN      *obs.Counter // kNN queries recomputed exactly
	posUpdates    *obs.Counter
	negUpdates    *obs.Counter
	knnRecomputes *obs.Counter

	// Scratch-slab high-water marks: the retained working-set sizes
	// that make steady-state Steps allocation-stable. A mark that keeps
	// climbing under a stable workload is a leak in scratch reuse.
	movedHighWater  *obs.Gauge // cap of the phase-1 changed-object list
	gatherSlots     *obs.Gauge // per-worker gather slots materialized
	lastEmitted     *obs.Gauge // updates emitted by the last Step
	objects, qrySet *obs.Gauge // registered population after the last Step
}

// newEngineMetrics resolves every instrument against reg (nil reg
// yields detached instruments) and binds the injected clock.
func newEngineMetrics(reg *obs.Registry, clock obs.Clock) *engineMetrics {
	return &engineMetrics{
		tracer:         obs.NewTracer(clock),
		stepLatency:    reg.Histogram("engine.step_ns", obs.DurationBuckets),
		stepUpdates:    reg.Histogram("engine.step_updates", obs.SizeBuckets),
		joinBatches:    reg.Counter("engine.join.batches"),
		joinSteals:     reg.Counter("engine.join.steals"),
		workerBatches:  reg.Histogram("engine.join.worker_batches", obs.SizeBuckets),
		joinLatency:    reg.Histogram("engine.join_ns", obs.DurationBuckets),
		steps:          reg.Counter("engine.steps"),
		objectReports:  reg.Counter("engine.reports.objects"),
		queryReports:   reg.Counter("engine.reports.queries"),
		movedObjects:   reg.Counter("engine.moved_objects"),
		dirtyKNN:       reg.Counter("engine.knn.dirty"),
		posUpdates:     reg.Counter("engine.updates.positive"),
		negUpdates:     reg.Counter("engine.updates.negative"),
		knnRecomputes:  reg.Counter("engine.knn.recomputes"),
		movedHighWater: reg.Gauge("engine.scratch.moved_cap"),
		gatherSlots:    reg.Gauge("engine.scratch.gather_slots"),
		lastEmitted:    reg.Gauge("engine.last_emitted"),
		objects:        reg.Gauge("engine.objects"),
		qrySet:         reg.Gauge("engine.queries"),
	}
}
